// Package quant analyzes W4A16 (LLM-Compressor AWQ) quantization on the
// simulated platform (§V-F): the sweep aggregates behind Tables XVIII and
// XIX, and the accuracy/latency deltas of Fig 14. The mechanical effects
// (4-bit weight streaming, INT8 compute fallback) live in model.DType and
// gpusim; the behavioural effects (small accuracy loss, shorter outputs)
// live in the llm calibration cells. This package composes both into the
// paper's comparison artifacts.
package quant

import (
	"fmt"

	"edgereasoning/internal/data"
	"edgereasoning/internal/gpusim"
	"edgereasoning/internal/llm"
	"edgereasoning/internal/model"
	"edgereasoning/internal/power"
)

// SweepStats aggregates one phase across a sequence-length sweep, the way
// Tables XVIII/XIX report it.
type SweepStats struct {
	MeanTime   float64 // seconds per phase invocation, averaged over sweep
	TokPerSec  float64 // throughput over the whole sweep
	MeanPower  float64 // watts, time-weighted
	MeanEnergy float64 // joules per token
}

// PrefillSweep averages prefill behaviour over input lengths
// [128, 4096] (Table XVIII's protocol).
func PrefillSweep(sim *gpusim.Sim, meter *power.Meter, a model.Arch, dt model.DType) SweepStats {
	lengths := []int{128, 256, 512, 1024, 2048, 4096}
	return aggregate(meter, func(yield func(gpusim.Result)) {
		for _, n := range lengths {
			yield(sim.Prefill(a, dt, n, 1))
		}
	})
}

// DecodeSweep averages decode behaviour at 512-token input over output
// lengths [128, 2048] (Table XIX's protocol).
func DecodeSweep(sim *gpusim.Sim, meter *power.Meter, a model.Arch, dt model.DType) SweepStats {
	lengths := []int{128, 256, 512, 1024, 2048}
	return aggregate(meter, func(yield func(gpusim.Result)) {
		for _, n := range lengths {
			yield(sim.DecodeRun(a, dt, 512, n, 1))
		}
	})
}

func aggregate(meter *power.Meter, sweep func(func(gpusim.Result))) SweepStats {
	var n int
	var time, tokens, energy float64
	sweep(func(r gpusim.Result) {
		n++
		time += r.Time
		tokens += float64(r.Tokens)
		energy += meter.Energy(r)
	})
	if n == 0 || time <= 0 {
		return SweepStats{}
	}
	return SweepStats{
		MeanTime:   time / float64(n),
		TokPerSec:  tokens / time,
		MeanPower:  energy / time,
		MeanEnergy: energy / tokens,
	}
}

// Comparison is one model's base-vs-quantized report (Fig 14).
type Comparison struct {
	Model model.ID

	BasePrefill, QuantPrefill SweepStats
	BaseDecode, QuantDecode   SweepStats

	// Accuracy and mean output tokens on a benchmark (from calibration).
	BaseAccuracy, QuantAccuracy float64
	BaseTokens, QuantTokens     float64
	HaveAccuracy                bool
}

// PrefillSpeedup returns base/quant mean prefill time.
func (c Comparison) PrefillSpeedup() float64 {
	if c.QuantPrefill.MeanTime <= 0 {
		return 0
	}
	return c.BasePrefill.MeanTime / c.QuantPrefill.MeanTime
}

// DecodeSpeedup returns base/quant mean decode time.
func (c Comparison) DecodeSpeedup() float64 {
	if c.QuantDecode.MeanTime <= 0 {
		return 0
	}
	return c.BaseDecode.MeanTime / c.QuantDecode.MeanTime
}

// AccuracyDropPct returns the relative accuracy loss in percent
// (positive = quantized is worse), as Fig 14 reports.
func (c Comparison) AccuracyDropPct() float64 {
	if !c.HaveAccuracy || c.BaseAccuracy == 0 {
		return 0
	}
	return (c.BaseAccuracy - c.QuantAccuracy) / c.BaseAccuracy * 100
}

// Compare builds the full base-vs-W4 comparison for a spec, pulling
// accuracy from the benchmark's calibration cells when available.
func Compare(sim *gpusim.Sim, meter *power.Meter, spec model.Spec, bench data.Benchmark) (Comparison, error) {
	if spec.IsQuantized() {
		return Comparison{}, fmt.Errorf("quant: pass the base spec, not %s", spec.ID)
	}
	q := spec.Quantized()
	c := Comparison{
		Model:        spec.ID,
		BasePrefill:  PrefillSweep(sim, meter, spec.Arch, spec.DType),
		QuantPrefill: PrefillSweep(sim, meter, q.Arch, q.DType),
		BaseDecode:   DecodeSweep(sim, meter, spec.Arch, spec.DType),
		QuantDecode:  DecodeSweep(sim, meter, q.Arch, q.DType),
	}
	if base, ok := llm.Calibrated(spec.ID, bench, "base"); ok {
		if quant, ok2 := llm.Calibrated(q.ID, bench, "base"); ok2 {
			c.BaseAccuracy, c.QuantAccuracy = base.Accuracy, quant.Accuracy
			c.BaseTokens, c.QuantTokens = base.MeanTokens, quant.MeanTokens
			c.HaveAccuracy = true
		}
	}
	return c, nil
}
