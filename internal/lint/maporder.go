package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder flags ranging over a map where the loop body reaches an
// output sink (fmt.Fprint*/Print*, io.WriteString, writer/table/encoder
// methods): Go's map iteration order is randomized per run, so any
// bytes emitted under it are nondeterministic — the exact class of the
// PR 1 scorecard bug. The fix is always to extract the keys, sort, and
// range over the slice; loops that only collect into a slice for later
// sorting are untouched.
//
// Deliberately order-independent emission (none exists today) can carry
// an //edgereasoning:allow maporder directive with a reason.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "forbid writing to an output sink from inside a range over a map " +
		"(iteration order is nondeterministic)",
	Run: runMapOrder,
}

// sinkMethods are method names that emit bytes to a report, table,
// stream, or encoder. Matching by name (any receiver) is deliberate:
// the repository's sinks are experiments.Table.AddRow, io.Writer
// wrappers, and encoding/json encoders, and a rare false positive is an
// allow-directive away.
var sinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"AddRow": true, "AddNote": true, "Encode": true,
	"Print": true, "Printf": true, "Println": true,
}

// sinkFmtFuncs are the fmt functions that emit directly to a stream.
// The Sprint* family builds strings (which a caller may still sort) and
// is not a sink.
var sinkFmtFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func runMapOrder(pass *Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			ast.Inspect(rng.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := sinkCallName(pass.TypesInfo, call); ok {
					pass.Reportf(rng.Pos(),
						"range over map reaches output sink %s; map iteration order is nondeterministic — "+
							"collect keys, sort, then emit", name)
					return false
				}
				return true
			})
			return true
		})
	}
	return nil
}

// sinkCallName reports whether call writes to an output sink, naming it
// for the diagnostic.
func sinkCallName(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := info.Uses[id].(*types.PkgName); ok {
			switch pn.Imported().Path() {
			case "fmt":
				if sinkFmtFuncs[name] {
					return "fmt." + name, true
				}
			case "io":
				if name == "WriteString" || name == "Copy" {
					return "io." + name, true
				}
			}
			return "", false
		}
	}
	if sinkMethods[name] {
		return "(method) " + name, true
	}
	return "", false
}
