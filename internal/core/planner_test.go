package core

import (
	"testing"
	"testing/quick"

	"edgereasoning/internal/control"
	"edgereasoning/internal/data"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/model"
)

func newTestPlanner(t *testing.T) *Planner {
	t.Helper()
	p, err := NewPlanner(hw.JetsonAGXOrin64GB(), data.MMLURedux, 7)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCandidatesEnumerateCatalog(t *testing.T) {
	p := newTestPlanner(t)
	cands, err := p.Candidates()
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 20 {
		t.Fatalf("only %d candidates; expected the full config grid", len(cands))
	}
	seenModels := map[model.ID]bool{}
	for i, c := range cands {
		seenModels[c.Model] = true
		if c.Latency <= 0 || c.Accuracy <= 0 || c.Accuracy > 1 {
			t.Errorf("candidate %s has implausible point (%.2fs, %.3f)", c.Label(), c.Latency, c.Accuracy)
		}
		if c.EnergyPerQ <= 0 || c.CostPerM <= 0 {
			t.Errorf("candidate %s has non-positive energy/cost", c.Label())
		}
		if i > 0 && cands[i].Latency < cands[i-1].Latency {
			t.Error("candidates must be sorted by latency")
		}
	}
	for _, id := range []model.ID{model.DSR1Qwen1_5B, model.DSR1Llama8B, model.DSR1Qwen14B, model.L1Max, model.Qwen25_7Bit} {
		if !seenModels[id] {
			t.Errorf("catalog model %s missing from candidates", id)
		}
	}
}

// Table X cross-check: the Base candidates' modeled latency lands near
// the measured per-question averages (18.92 / 87.16 / 259.02 s).
func TestCandidateLatenciesNearTableX(t *testing.T) {
	p := newTestPlanner(t)
	cands, err := p.Candidates()
	if err != nil {
		t.Fatal(err)
	}
	want := map[model.ID]float64{
		model.DSR1Qwen1_5B: 18.92,
		model.DSR1Llama8B:  87.16,
		model.DSR1Qwen14B:  259.02,
	}
	for _, c := range cands {
		if c.Policy.Kind != control.Base || c.SF != 1 {
			continue
		}
		w, ok := want[c.Model]
		if !ok {
			continue
		}
		if c.Latency < w*0.6 || c.Latency > w*1.45 {
			t.Errorf("%s Base latency = %.1fs, paper %.1fs (±40%%)", c.Model, c.Latency, w)
		}
	}
}

func TestPlanRespectsBudget(t *testing.T) {
	p := newTestPlanner(t)
	for _, budget := range []float64{2, 8, 25, 100, 400} {
		c, ok, err := p.Plan(budget)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("budget %.0fs: no recipe found", budget)
			continue
		}
		if c.Latency > budget {
			t.Errorf("budget %.0fs: plan %s exceeds it (%.1fs)", budget, c.Label(), c.Latency)
		}
	}
}

// Larger budgets can only improve the achievable accuracy.
func TestPlanMonotoneInBudget(t *testing.T) {
	p := newTestPlanner(t)
	cands, err := p.Candidates()
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, budget := range []float64{1, 5, 10, 20, 40, 80, 160, 320} {
		c, ok, err := PickWithinBudget(cands, budget)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		if c.Accuracy < prev {
			t.Errorf("budget %.0fs: accuracy %.3f regressed below %.3f", budget, c.Accuracy, prev)
		}
		prev = c.Accuracy
	}
}

// §V-A regimes: tiny budgets are served by 1.5B-class models; generous
// budgets by DSR1-Qwen-14B.
func TestPlanRegimeEndpoints(t *testing.T) {
	p := newTestPlanner(t)
	cands, err := p.Candidates()
	if err != nil {
		t.Fatal(err)
	}
	fast, ok, _ := PickWithinBudget(cands, 3)
	if !ok {
		t.Fatal("no recipe within 3s")
	}
	fastSpec := model.MustLookup(fast.Model)
	if fastSpec.Arch.ParamCount() > 3e9 {
		t.Errorf("3s budget picked %s (%.1fB params); paper: only 1.5B-class fits",
			fast.Label(), float64(fastSpec.Arch.ParamCount())/1e9)
	}
	slow, ok, _ := PickWithinBudget(cands, 400)
	if !ok {
		t.Fatal("no recipe within 400s")
	}
	if slow.Model != model.DSR1Qwen14B && slow.Model != "dsr1-qwen-14b-w4" {
		t.Errorf("400s budget picked %s; paper: 14B dominates open budgets", slow.Label())
	}
}

// The energy budget binds: with a tight joule cap the planner must trade
// accuracy away relative to the unconstrained plan.
func TestPlanWithEnergyBudget(t *testing.T) {
	p := newTestPlanner(t)
	unconstrained, ok, err := p.PlanWithEnergy(300, 0)
	if err != nil || !ok {
		t.Fatalf("unconstrained: ok=%v err=%v", ok, err)
	}
	tight, ok, err := p.PlanWithEnergy(300, 100) // 100 J per question
	if err != nil || !ok {
		t.Fatalf("tight: ok=%v err=%v", ok, err)
	}
	if tight.EnergyPerQ > 100 {
		t.Errorf("energy cap violated: %.0f J", tight.EnergyPerQ)
	}
	if tight.Accuracy > unconstrained.Accuracy {
		t.Error("a binding energy cap cannot improve accuracy")
	}
	if unconstrained.EnergyPerQ <= 100 {
		t.Skip("cap did not bind at this calibration")
	}
	if tight.Accuracy == unconstrained.Accuracy {
		t.Error("cap should have changed the pick")
	}
}

func TestMaxTokensWithinPlanner(t *testing.T) {
	p := newTestPlanner(t)
	spec := model.MustLookup(model.DSR1Qwen14B)
	n20, err := p.MaxTokensWithin(spec, 20)
	if err != nil {
		t.Fatal(err)
	}
	n60, err := p.MaxTokensWithin(spec, 60)
	if err != nil {
		t.Fatal(err)
	}
	if n20 <= 0 || n60 <= n20 {
		t.Errorf("token budgets not increasing: %d @20s, %d @60s", n20, n60)
	}
}

func TestParetoFrontierProperties(t *testing.T) {
	p := newTestPlanner(t)
	cands, err := p.Candidates()
	if err != nil {
		t.Fatal(err)
	}
	front := ParetoFrontier(cands)
	if len(front) == 0 || len(front) > len(cands) {
		t.Fatalf("frontier size %d of %d", len(front), len(cands))
	}
	// Strictly increasing in both axes.
	for i := 1; i < len(front); i++ {
		if front[i].Latency <= front[i-1].Latency || front[i].Accuracy <= front[i-1].Accuracy {
			t.Error("frontier must strictly improve accuracy as latency grows")
		}
	}
	// No frontier member is dominated by any candidate.
	for _, f := range front {
		for _, c := range cands {
			if Dominates(c, f) {
				t.Errorf("frontier member %s dominated by %s", f.Label(), c.Label())
			}
		}
	}
}

func TestDominates(t *testing.T) {
	a := Candidate{Latency: 1, Accuracy: 0.5}
	b := Candidate{Latency: 2, Accuracy: 0.4}
	if !Dominates(a, b) || Dominates(b, a) {
		t.Error("dominance wrong")
	}
	if Dominates(a, a) {
		t.Error("a candidate must not dominate itself")
	}
}

func TestRegimesOf(t *testing.T) {
	p := newTestPlanner(t)
	cands, err := p.Candidates()
	if err != nil {
		t.Fatal(err)
	}
	regimes := RegimesOf(cands, []float64{5, 30})
	if len(regimes) != 3 {
		t.Fatalf("want 3 regimes, got %d", len(regimes))
	}
	if !regimes[0].Found || !regimes[2].Found {
		t.Error("sub-5s and >30s regimes must both be populated")
	}
	// The open-ended regime holds the highest accuracy.
	if regimes[2].Best.Accuracy <= regimes[0].Best.Accuracy {
		t.Error(">30s regime should beat sub-5s accuracy")
	}
	for _, r := range regimes {
		if r.String() == "" {
			t.Error("regime must render")
		}
	}
}

// Property: the frontier of a frontier is itself.
func TestFrontierIdempotentProperty(t *testing.T) {
	f := func(seed uint8) bool {
		cands := []Candidate{}
		x := float64(seed) + 1
		for i := 0; i < 20; i++ {
			x = x * 1.7
			if x > 1000 {
				x -= 997
			}
			cands = append(cands, Candidate{Latency: 1 + x/10, Accuracy: 0.2 + x/2000})
		}
		f1 := ParetoFrontier(cands)
		f2 := ParetoFrontier(f1)
		if len(f1) != len(f2) {
			return false
		}
		for i := range f1 {
			if f1[i] != f2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
