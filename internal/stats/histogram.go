package stats

import (
	"fmt"
	"math"
)

// Histogram is a fixed-bucket counting histogram: observations land in
// the first bucket whose upper bound is >= the value, with an implicit
// +Inf bucket at the end. Two histograms over the same bounds merge by
// element-wise addition, so per-replica distributions fold into a
// fleet-wide one without re-observing — the property exporters rely on.
// Bounds are upper-inclusive (value <= bound), matching the Prometheus
// `le` convention the text exporter emits.
type Histogram struct {
	bounds []float64 // ascending, finite upper bounds
	counts []uint64  // len(bounds)+1; last is the +Inf overflow bucket
	sum    float64
	n      uint64
}

// NewHistogram builds a histogram over the given ascending finite upper
// bounds. At least one bound is required.
func NewHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("stats: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return nil, fmt.Errorf("stats: histogram bound %d is not finite: %v", i, b)
		}
		if i > 0 && b <= bounds[i-1] {
			return nil, fmt.Errorf("stats: histogram bounds not strictly ascending at %d: %v <= %v", i, b, bounds[i-1])
		}
	}
	own := make([]float64, len(bounds))
	copy(own, bounds)
	return &Histogram{bounds: own, counts: make([]uint64, len(own)+1)}, nil
}

// MustHistogram is NewHistogram for static bound tables (panics on a bad
// table — programmer error).
func MustHistogram(bounds []float64) *Histogram {
	h, err := NewHistogram(bounds)
	if err != nil {
		panic(err)
	}
	return h
}

// Observe records one value. NaN observations are ignored (the same
// poisoning guard Percentile applies).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Bounds returns the bucket upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCount returns the count of bucket i, where i == len(Bounds())
// addresses the +Inf overflow bucket.
func (h *Histogram) BucketCount(i int) uint64 { return h.counts[i] }

// Cumulative returns the count of observations <= Bounds()[i] (the
// Prometheus `le` cumulative), or Count() for the +Inf index.
func (h *Histogram) Cumulative(i int) uint64 {
	var c uint64
	for j := 0; j <= i && j < len(h.counts); j++ {
		c += h.counts[j]
	}
	return c
}

// Merge adds o's counts into h. The two histograms must share identical
// bounds.
func (h *Histogram) Merge(o *Histogram) error {
	if len(o.bounds) != len(h.bounds) {
		return fmt.Errorf("stats: merge of mismatched histograms (%d vs %d buckets)", len(h.bounds), len(o.bounds))
	}
	for i := range h.bounds {
		if h.bounds[i] != o.bounds[i] {
			return fmt.Errorf("stats: merge of mismatched histograms (bound %d: %v vs %v)", i, h.bounds[i], o.bounds[i])
		}
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.sum += o.sum
	h.n += o.n
	return nil
}

// Clone returns an independent copy (the merge-fold scratch).
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{bounds: h.bounds, counts: make([]uint64, len(h.counts)), sum: h.sum, n: h.n}
	copy(c.counts, h.counts)
	return c
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation
// within the containing bucket, the standard fixed-bucket estimator.
// The first bucket interpolates from 0; the overflow bucket reports its
// lower bound (the largest finite bound) — there is no upper edge to
// interpolate toward. An empty histogram returns 0; q is clamped.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 || math.IsNaN(q) {
		return 0
	}
	q = Clamp(q, 0, 1)
	rank := q * float64(h.n)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next || i == len(h.counts)-1 {
			if i == len(h.counts)-1 {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - cum) / float64(c)
			return lo + Clamp(frac, 0, 1)*(h.bounds[i]-lo)
		}
		cum = next
	}
	return h.bounds[len(h.bounds)-1]
}

// ExpBuckets returns n upper bounds growing geometrically from start by
// factor — the standard latency-bucket shape. start must be positive and
// factor > 1; n < 1 returns nil.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		return nil
	}
	out := make([]float64, n)
	b := start
	for i := range out {
		out[i] = b
		b *= factor
	}
	return out
}
