package telemetry

// SeriesKind distinguishes gauges (sampled level) from counters
// (monotone cumulative total) for the Prometheus exporter.
type SeriesKind int

const (
	// Gauge samples a level that moves both ways (queue depth, cache
	// occupancy, power).
	Gauge SeriesKind = iota
	// Counter samples a monotone cumulative total (breaker opens,
	// crashes); Add is the natural producer call.
	Counter
)

// String names the kind in the Prometheus TYPE line.
func (k SeriesKind) String() string {
	if k == Counter {
		return "counter"
	}
	return "gauge"
}

// Point is one sample on the simulated clock.
type Point struct {
	T, V float64
}

// Series is one bounded sampled time-series, owned by a single producer
// goroutine (per-replica series belong to that replica's drain; fleet
// series to the dispatch loop). Overflow degrades resolution, never
// correctness: when the point budget fills, every other point is dropped
// and the minimum sample gap doubles, so a series covers any run length
// in O(maxPoints) memory with uniform-in-time thinning.
type Series struct {
	Name  string
	Label string // track attribution ("" for fleet-wide series)
	Kind  SeriesKind

	minGap float64
	pts    []Point // cap fixed at creation; thinning keeps it bounded
	total  float64 // Counter accumulator
}

// Sample records value v at simulated time t. Samples closer than the
// minimum gap to the previous point update it in place (latest value
// wins) instead of appending.
func (s *Series) Sample(t, v float64) {
	if n := len(s.pts); n > 0 && t-s.pts[n-1].T < s.minGap {
		s.pts[n-1].V = v
		return
	}
	if len(s.pts) == cap(s.pts) {
		s.thin()
	}
	s.pts = append(s.pts, Point{T: t, V: v})
}

// Add advances a counter by delta at time t and samples the new total.
func (s *Series) Add(t, delta float64) {
	s.total += delta
	s.Sample(t, s.total)
}

// thin halves the stored points (keeping every other one plus the
// latest) and doubles the minimum gap.
func (s *Series) thin() {
	keep := 0
	for i := 0; i < len(s.pts); i += 2 {
		s.pts[keep] = s.pts[i]
		keep++
	}
	if last := s.pts[len(s.pts)-1]; keep > 0 && s.pts[keep-1] != last {
		s.pts[keep-1] = last
	}
	s.pts = s.pts[:keep]
	if s.minGap <= 0 {
		s.minGap = 0.001
	} else {
		s.minGap *= 2
	}
}

// Points returns the recorded samples in time order (shared; do not
// mutate).
func (s *Series) Points() []Point { return s.pts }

// Last returns the final sample, if any.
func (s *Series) Last() (Point, bool) {
	if len(s.pts) == 0 {
		return Point{}, false
	}
	return s.pts[len(s.pts)-1], true
}
