package faults

import (
	"math"
	"reflect"
	"testing"
)

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
	}{
		{"replica out of range", Event{Replica: 3, Kind: Crash, At: 1}},
		{"negative replica", Event{Replica: -1, Kind: Crash, At: 1}},
		{"negative time", Event{Kind: Crash, At: -1}},
		{"NaN time", Event{Kind: Crash, At: math.NaN()}},
		{"infinite time", Event{Kind: Crash, At: math.Inf(1)}},
		{"negative restart", Event{Kind: Crash, At: 1, Restart: -2}},
		{"zero stall duration", Event{Kind: Stall, At: 1}},
		{"negative throttle duration", Event{Kind: Throttle, At: 1, Duration: -1, Factor: 2}},
		{"throttle factor below one", Event{Kind: Throttle, At: 1, Duration: 1, Factor: 0.5}},
		{"throttle factor NaN", Event{Kind: Throttle, At: 1, Duration: 1, Factor: math.NaN()}},
		{"unknown kind", Event{Kind: Kind(99), At: 1}},
	}
	for _, tc := range cases {
		s := Schedule{Events: []Event{tc.ev}}
		if err := s.Validate(3); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.ev)
		}
	}
	ok := Schedule{Events: []Event{
		{Replica: 0, Kind: Crash, At: 5, Restart: 10},
		{Replica: 2, Kind: Crash, At: 5}, // permanent
		{Replica: 1, Kind: Stall, At: 0, Duration: 2},
		{Replica: 1, Kind: Throttle, At: 3, Duration: 4, Factor: 2.5},
	}}
	if err := ok.Validate(3); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

func TestSortedCanonicalOrderAndCopy(t *testing.T) {
	s := Schedule{Events: []Event{
		{Replica: 1, Kind: Throttle, At: 5, Duration: 1, Factor: 2},
		{Replica: 0, Kind: Stall, At: 5, Duration: 1},
		{Replica: 0, Kind: Crash, At: 5},
		{Replica: 0, Kind: Crash, At: 1},
	}}
	got := s.Sorted()
	want := []Event{
		{Replica: 0, Kind: Crash, At: 1},
		{Replica: 0, Kind: Crash, At: 5},
		{Replica: 0, Kind: Stall, At: 5, Duration: 1},
		{Replica: 1, Kind: Throttle, At: 5, Duration: 1, Factor: 2},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Sorted order:\n got %+v\nwant %+v", got, want)
	}
	if s.Events[0].At != 5 {
		t.Fatal("Sorted must not reorder the receiver")
	}
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	cfg := GenConfig{
		Replicas: 3, Horizon: 120,
		CrashRate: 1.5, RestartDelay: 8,
		StallRate: 2, StallDuration: 3,
		ThrottleRate: 1, ThrottleDuration: 10, ThrottleFactor: 2,
	}
	a, err := Generate(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (config, seed) must generate the same schedule")
	}
	if len(a.Events) == 0 {
		t.Fatal("non-zero rates generated no events")
	}
	if err := a.Validate(cfg.Replicas); err != nil {
		t.Fatalf("generated schedule fails its own validation: %v", err)
	}
	for _, ev := range a.Events {
		if ev.At >= cfg.Horizon {
			t.Fatalf("event at %v outside horizon %v", ev.At, cfg.Horizon)
		}
		if ev.Kind == Crash && ev.Restart != cfg.RestartDelay {
			t.Fatalf("crash restart %v, want %v", ev.Restart, cfg.RestartDelay)
		}
	}
	other, err := Generate(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, other) {
		t.Fatal("different seeds generated identical schedules")
	}
}

// TestGenerateReplicaStreamsIndependent pins the named-stream property:
// growing the fleet adds events for the new replicas without perturbing
// the faults already drawn for existing ones.
func TestGenerateReplicaStreamsIndependent(t *testing.T) {
	cfg := GenConfig{Replicas: 2, Horizon: 100, CrashRate: 2, StallRate: 1, StallDuration: 2}
	small, err := Generate(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Replicas = 4
	big, err := Generate(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	filter := func(s Schedule, below int) []Event {
		var out []Event
		for _, ev := range s.Events {
			if ev.Replica < below {
				out = append(out, ev)
			}
		}
		return out
	}
	if !reflect.DeepEqual(filter(small, 2), filter(big, 2)) {
		t.Fatal("adding replicas perturbed the existing replicas' fault streams")
	}
}

func TestGenerateConfigValidation(t *testing.T) {
	bad := []GenConfig{
		{Replicas: 0, Horizon: 10},
		{Replicas: 1, Horizon: 0},
		{Replicas: 1, Horizon: 10, CrashRate: -1},
		{Replicas: 1, Horizon: 10, RestartDelay: math.Inf(1)},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg, 1); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	// A factor <= 1 disables throttling rather than erroring.
	s, err := Generate(GenConfig{Replicas: 1, Horizon: 10, ThrottleRate: 5, ThrottleDuration: 1, ThrottleFactor: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 0 {
		t.Fatalf("factor 1 throttles should be disabled, got %d events", len(s.Events))
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Crash: "crash", Stall: "stall", Throttle: "throttle", Kind(9): "kind(9)"} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
