package engine

import (
	"fmt"
	"math"
	"testing"

	"edgereasoning/internal/model"
)

func timed(id string, arrival float64, prompt, output int, deadline float64) TimedRequest {
	return TimedRequest{
		Request:  Request{ID: id, PromptTokens: prompt, OutputTokens: output},
		Arrival:  arrival,
		Deadline: deadline,
	}
}

func TestServeSingleRequest(t *testing.T) {
	e := newOrinEngine(t, model.DSR1Qwen1_5B)
	m, err := e.Serve([]TimedRequest{timed("a", 5, 64, 100, 0)}, 1, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Requests) != 1 {
		t.Fatalf("completed %d requests", len(m.Requests))
	}
	// The engine must idle-jump to the arrival, then serve.
	if len(m.Latencies) != 1 || m.Latencies[0] <= 0 {
		t.Errorf("latency accounting wrong: %v", m.Latencies)
	}
	// Latency excludes pre-arrival time.
	if m.Latencies[0] > 10 {
		t.Errorf("latency %.2f includes idle time before arrival", m.Latencies[0])
	}
	if st := e.CacheStats(); st.UsedBlocks != 0 {
		t.Errorf("leaked blocks: %+v", st)
	}
}

func TestServeRejectsPastArrivals(t *testing.T) {
	e := newOrinEngine(t, model.DSR1Qwen1_5B)
	if _, err := e.Generate(Request{ID: "warm", PromptTokens: 32, OutputTokens: 32}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Serve([]TimedRequest{timed("late", 0, 32, 32, 0)}, 1, FCFS); err == nil {
		t.Error("arrival before the engine clock must be rejected")
	}
}

func TestServeLatencyIncludesQueueing(t *testing.T) {
	e := newOrinEngine(t, model.DSR1Llama8B)
	// Two requests arriving together, served at batch 1: the second waits.
	m, err := e.Serve([]TimedRequest{
		timed("a", 0, 64, 200, 0),
		timed("b", 0, 64, 200, 0),
	}, 1, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Latencies) != 2 {
		t.Fatal("want 2 completions")
	}
	if m.Latencies[1] < m.Latencies[0]*1.8 {
		t.Errorf("second request should wait for the first: %.2f vs %.2f", m.Latencies[1], m.Latencies[0])
	}
}

func TestServeDeadlineAccounting(t *testing.T) {
	e := newOrinEngine(t, model.DSR1Qwen1_5B)
	m, err := e.Serve([]TimedRequest{
		timed("fits", 0, 64, 50, 60),     // generous deadline
		timed("misses", 0, 64, 2000, 10), // 2000 tokens cannot fit 10s
	}, 2, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if m.DeadlinesTotal != 2 {
		t.Fatalf("deadline total = %d, want 2", m.DeadlinesTotal)
	}
	if m.DeadlinesMet != 1 {
		t.Errorf("deadlines met = %d, want 1", m.DeadlinesMet)
	}
	if math.Abs(m.HitRate()-0.5) > 1e-9 {
		t.Errorf("hit rate = %v, want 0.5", m.HitRate())
	}
}

func TestServeEDFPrioritizesUrgent(t *testing.T) {
	// Three requests arrive together; the most urgent is listed last.
	// EDF must serve it first at batch 1; FCFS must not.
	build := func() []TimedRequest {
		return []TimedRequest{
			timed("loose1", 0, 64, 400, 500),
			timed("loose2", 0, 64, 400, 500),
			timed("urgent", 0, 64, 100, 18),
		}
	}
	run := func(pol SchedPolicy) ServeMetrics {
		e := newOrinEngine(t, model.DSR1Qwen1_5B)
		m, err := e.Serve(build(), 1, pol)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	fcfs := run(FCFS)
	edf := run(EDF)
	if edf.DeadlinesMet <= fcfs.DeadlinesMet {
		t.Errorf("EDF met %d deadlines, FCFS %d; EDF should win", edf.DeadlinesMet, fcfs.DeadlinesMet)
	}
	// EDF completes "urgent" first.
	if edf.Requests[0].ID != "urgent" {
		t.Errorf("EDF first completion = %s, want urgent", edf.Requests[0].ID)
	}
}

func TestServeIdleGapsDoNotBill(t *testing.T) {
	e := newOrinEngine(t, model.DSR1Qwen1_5B)
	// Two requests separated by a long idle gap.
	m, err := e.Serve([]TimedRequest{
		timed("a", 0, 64, 50, 0),
		timed("b", 1000, 64, 50, 0),
	}, 1, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	// Both latencies small despite the 1000s wall span.
	for _, l := range m.Latencies {
		if l > 30 {
			t.Errorf("latency %.1fs includes the idle gap", l)
		}
	}
	if m.WallTime < 1000 {
		t.Errorf("wall time %.1f should span the idle gap", m.WallTime)
	}
}

func TestServeEnergyConservation(t *testing.T) {
	e := newOrinEngine(t, model.DSR1Qwen1_5B)
	var reqs []TimedRequest
	for i := 0; i < 10; i++ {
		reqs = append(reqs, timed(fmt.Sprintf("q%d", i), float64(i)*2, 64, 60+10*i, 0))
	}
	m, err := e.Serve(reqs, 4, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, r := range m.Requests {
		sum += r.Energy()
	}
	if math.Abs(sum-m.TotalEnergy)/m.TotalEnergy > 1e-9 {
		t.Errorf("energy: per-request sum %.2f vs total %.2f", sum, m.TotalEnergy)
	}
	if st := e.CacheStats(); st.UsedBlocks != 0 {
		t.Errorf("leaked blocks: %+v", st)
	}
}

func TestServePercentilesOrdered(t *testing.T) {
	e := newOrinEngine(t, model.DSR1Qwen1_5B)
	var reqs []TimedRequest
	for i := 0; i < 30; i++ {
		reqs = append(reqs, timed(fmt.Sprintf("q%d", i), float64(i), 64, 40+5*i, 0))
	}
	m, err := e.Serve(reqs, 4, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if !(m.P50Latency <= m.P95Latency && m.P95Latency <= m.P99Latency) {
		t.Errorf("percentiles out of order: %v %v %v", m.P50Latency, m.P95Latency, m.P99Latency)
	}
	if m.MeanLatency <= 0 {
		t.Error("mean latency missing")
	}
}

// TestServeEdgeCases covers the serving loop's boundary conditions in
// one table: empty streams, hopeless deadlines, tie-breaking, and the
// degenerate batch sizes.
func TestServeEdgeCases(t *testing.T) {
	together := func(deadlines ...float64) []TimedRequest {
		reqs := make([]TimedRequest, len(deadlines))
		for i, d := range deadlines {
			reqs[i] = timed(fmt.Sprintf("q%d", i), 0, 64, 50, d)
		}
		return reqs
	}
	cases := []struct {
		name     string
		reqs     []TimedRequest
		maxBatch int
		policy   SchedPolicy
		check    func(t *testing.T, m ServeMetrics)
	}{
		{
			name: "empty workload", reqs: nil, maxBatch: 4, policy: FCFS,
			check: func(t *testing.T, m ServeMetrics) {
				if len(m.Requests) != 0 || len(m.Latencies) != 0 {
					t.Errorf("empty workload produced completions: %+v", m)
				}
				if m.WallTime != 0 || m.TotalEnergy != 0 {
					t.Errorf("empty workload billed time/energy: %+v", m)
				}
				if m.HitRate() != 1 {
					t.Errorf("empty workload hit rate = %v, want 1 (vacuous)", m.HitRate())
				}
			},
		},
		{
			name: "all deadlines missed", reqs: together(0.001, 0.001, 0.001), maxBatch: 2, policy: EDF,
			check: func(t *testing.T, m ServeMetrics) {
				if m.DeadlinesTotal != 3 || m.DeadlinesMet != 0 {
					t.Errorf("met %d of %d, want 0 of 3", m.DeadlinesMet, m.DeadlinesTotal)
				}
				if m.HitRate() != 0 {
					t.Errorf("hit rate = %v, want 0", m.HitRate())
				}
				if len(m.Requests) != 3 {
					t.Errorf("missed requests must still complete: %d of 3", len(m.Requests))
				}
			},
		},
		{
			name: "EDF ties on deadline keep arrival order", reqs: together(40, 40, 40), maxBatch: 1, policy: EDF,
			check: func(t *testing.T, m ServeMetrics) {
				for i, want := range []string{"q0", "q1", "q2"} {
					if m.Requests[i].ID != want {
						t.Errorf("completion %d = %s, want %s (stable sort on equal deadlines)", i, m.Requests[i].ID, want)
					}
				}
			},
		},
		{
			name: "EDF parks deadline-less requests last", reqs: together(0, 40, 0), maxBatch: 1, policy: EDF,
			check: func(t *testing.T, m ServeMetrics) {
				if m.Requests[0].ID != "q1" {
					t.Errorf("first completion = %s, want the deadline-bearing q1", m.Requests[0].ID)
				}
				// The two deadline-less requests retain arrival order.
				if m.Requests[1].ID != "q0" || m.Requests[2].ID != "q2" {
					t.Errorf("deadline-less tail order %s, %s, want q0, q2", m.Requests[1].ID, m.Requests[2].ID)
				}
			},
		},
		{
			name: "FCFS ties on arrival keep input order", reqs: together(30, 0, 30), maxBatch: 1, policy: FCFS,
			check: func(t *testing.T, m ServeMetrics) {
				for i, want := range []string{"q0", "q1", "q2"} {
					if m.Requests[i].ID != want {
						t.Errorf("completion %d = %s, want %s", i, m.Requests[i].ID, want)
					}
				}
			},
		},
		{
			name: "maxBatch=1 serializes", reqs: together(0, 0, 0), maxBatch: 1, policy: FCFS,
			check: func(t *testing.T, m ServeMetrics) {
				// Strictly serial: each queue wait exceeds its predecessor's.
				for i := 1; i < len(m.Requests); i++ {
					if m.Requests[i].QueueTime <= m.Requests[i-1].QueueTime {
						t.Errorf("request %d queue %.3f not after %d's %.3f",
							i, m.Requests[i].QueueTime, i-1, m.Requests[i-1].QueueTime)
					}
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := newOrinEngine(t, model.DSR1Qwen1_5B)
			m, err := e.Serve(tc.reqs, tc.maxBatch, tc.policy)
			if err != nil {
				t.Fatal(err)
			}
			tc.check(t, m)
			if st := e.CacheStats(); st.UsedBlocks != 0 {
				t.Errorf("leaked blocks: %+v", st)
			}
		})
	}
}

// TestServeMaxBatchZeroClampsToOne pins the documented clamp: a
// non-positive maxBatch degenerates to serial batch-1 serving.
func TestServeMaxBatchZeroClampsToOne(t *testing.T) {
	build := func() []TimedRequest {
		return []TimedRequest{
			timed("a", 0, 64, 60, 0),
			timed("b", 0, 64, 60, 0),
		}
	}
	e0 := newOrinEngine(t, model.DSR1Qwen1_5B)
	m0, err := e0.Serve(build(), 0, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	e1 := newOrinEngine(t, model.DSR1Qwen1_5B)
	m1, err := e1.Serve(build(), 1, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if m0.WallTime != m1.WallTime || m0.TotalEnergy != m1.TotalEnergy {
		t.Errorf("maxBatch=0 (wall %.4f, energy %.2f) differs from maxBatch=1 (wall %.4f, energy %.2f)",
			m0.WallTime, m0.TotalEnergy, m1.WallTime, m1.TotalEnergy)
	}
}

func TestSchedPolicyString(t *testing.T) {
	if FCFS.String() != "FCFS" || EDF.String() != "EDF" {
		t.Error("policy names wrong")
	}
}
