package experiments

import (
	"fmt"

	"edgereasoning/internal/control"
	"edgereasoning/internal/core"
	"edgereasoning/internal/data"
	"edgereasoning/internal/fit"
	"edgereasoning/internal/gpusim"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/llm"
	"edgereasoning/internal/model"
	"edgereasoning/internal/power"
)

func init() {
	register("fig2", fig2PrefillLatency)
	register("fig3", fig3DecodeLatency)
	register("table6", table6LatencyMAPE)
	register("table7", table7PrefillDecodeRatios)
	register("fig4", fig4PrefillPowerEnergy)
	register("fig5", fig5DecodePowerEnergy)
	register("table8", table8EnergyMAPE)
	register("cpu", cpuVsGPU)
}

// fig2PrefillLatency reproduces Fig 2 (prefill latency vs input length,
// with the 128-token steps) and Table IV (fitted Eqn 1 coefficients).
func fig2PrefillLatency(opts Options) ([]Table, error) {
	sim := gpusim.New(hw.JetsonAGXOrin64GB())
	series := Table{
		ID: "fig2", Title: "Prefill latency vs. input sequence length",
		Columns: []string{"model", "input_len", "latency_s"},
	}
	coeffs := Table{
		ID: "table4", Title: "Fitted coefficients for prefill latency model (vs. paper)",
		Columns: []string{"model", "a", "b", "c", "paper_a", "paper_b", "paper_c", "fit_mape_pct"},
	}
	paper := core.PaperPrefillModels()
	for _, spec := range model.DSR1Family() {
		for i := 16; i <= 640; i += 16 {
			res := sim.Prefill(spec.Arch, spec.DType, i, 1)
			series.AddRow(string(spec.ID), di(i), f4(res.Time))
		}
		pm, rep, err := core.FitPrefillModel(sim, spec.Arch, spec.DType, 2048)
		if err != nil {
			return nil, err
		}
		pp := paper[spec.ID]
		coeffs.AddRow(string(spec.ID), sci(pm.A), sci(pm.B), f3(pm.C),
			sci(pp.A), sci(pp.B), f3(pp.C), f1(rep.MAPE*100))
	}
	return []Table{series, coeffs}, nil
}

// fig3DecodeLatency reproduces Fig 3 (decode latency vs output length;
// TBT vs input length) and Table V (fitted Eqn 2 coefficients).
func fig3DecodeLatency(opts Options) ([]Table, error) {
	sim := gpusim.New(hw.JetsonAGXOrin64GB())
	latSeries := Table{
		ID: "fig3a", Title: "Decode latency vs output length (input = 512)",
		Columns: []string{"model", "output_len", "latency_s"},
	}
	tbtSeries := Table{
		ID: "fig3b", Title: "Time between tokens vs input length",
		Columns: []string{"model", "input_len", "tbt_s"},
	}
	coeffs := Table{
		ID: "table5", Title: "Fitted coefficients for decode latency model (vs. paper)",
		Columns: []string{"model", "m", "n", "paper_m", "paper_n", "fit_mape_pct"},
		Notes:   []string{"paper_n for the 8B follows the prose TBT (~0.096s); Table V's 0.010 is a typo"},
	}
	paper := core.PaperDecodeModels()
	for _, spec := range model.DSR1Family() {
		for _, o := range []int{64, 256, 512, 1024, 2048, 3072, 4096} {
			res := sim.DecodeRun(spec.Arch, spec.DType, 512, o, 1)
			latSeries.AddRow(string(spec.ID), di(o), f2(res.Time))
		}
		for _, i := range []int{1, 256, 512, 1024, 2048, 4096} {
			tbtSeries.AddRow(string(spec.ID), di(i), f4(sim.TBT(spec.Arch, spec.DType, i)))
		}
		dm, rep, err := core.FitDecodeModel(sim, spec.Arch, spec.DType)
		if err != nil {
			return nil, err
		}
		pp := paper[spec.ID]
		coeffs.AddRow(string(spec.ID), sci(dm.M), f4(dm.N), sci(pp.M), f4(pp.N), f2(rep.MAPE*100))
	}
	return []Table{latSeries, tbtSeries, coeffs}, nil
}

// heldOutWorkload samples (prompt, output) pairs from real twin behaviour
// for validation, as the paper validates on 50 held-out MMLU questions.
func heldOutWorkload(spec model.Spec, opts Options, n int) ([][2]int, error) {
	bank := data.MustLoad(data.MMLURedux, opts.Seed+1) // held-out: different seed
	tw := llm.NewTwin(spec, bank, opts.Seed+1)
	var out [][2]int
	for _, q := range bank.Questions[:n] {
		g, err := tw.Generate(q, control.BasePolicy())
		if err != nil {
			return nil, err
		}
		out = append(out, [2]int{q.PromptTokens, g.OutputTokens})
	}
	return out, nil
}

// table6LatencyMAPE reproduces Table VI: latency-model MAPE on 50
// held-out questions.
func table6LatencyMAPE(opts Options) ([]Table, error) {
	sim := gpusim.New(hw.JetsonAGXOrin64GB())
	t := Table{
		ID: "table6", Title: "MAPE of latency model on 50 held-out questions (paper: <2% total)",
		Columns: []string{"model", "prefill_pct", "decode_pct", "total_pct"},
	}
	for _, spec := range model.DSR1Family() {
		lm, err := core.FitLatencyModel(sim, spec)
		if err != nil {
			return nil, err
		}
		workload, err := heldOutWorkload(spec, opts, 50)
		if err != nil {
			return nil, err
		}
		p, d, tot := core.ValidateLatencyModel(sim, spec.Arch, spec.DType, lm, workload)
		t.AddRow(string(spec.ID), f2(p*100), f2(d*100), f2(tot*100))
	}
	return []Table{t}, nil
}

// table7PrefillDecodeRatios reproduces Table VII: token and latency
// ratios over the full MMLU-Redux run.
func table7PrefillDecodeRatios(opts Options) ([]Table, error) {
	sim := gpusim.New(hw.JetsonAGXOrin64GB())
	bank := data.MustLoad(data.MMLURedux, opts.Seed)
	n := opts.sample(bank.Size())
	sub := bank.Subsample(n)
	t := Table{
		ID: "table7", Title: "Prefill-to-decode ratios, full MMLU-Redux (paper: 1:2.4-7.3 tokens, 1:192-569 latency)",
		Columns: []string{"model", "p_tokens", "d_tokens", "token_ratio", "latency_ratio", "decode_share_pct"},
	}
	for _, spec := range model.DSR1Family() {
		tw := llm.NewTwin(spec, bank, opts.Seed)
		var pTok, dTok int
		var pLat, dLat float64
		for _, q := range sub.Questions {
			g, err := tw.Generate(q, control.BasePolicy())
			if err != nil {
				return nil, err
			}
			pTok += q.PromptTokens
			dTok += g.OutputTokens
			pLat += sim.Prefill(spec.Arch, spec.DType, q.PromptTokens, 1).Time
			dLat += sim.DecodeRun(spec.Arch, spec.DType, q.PromptTokens, g.OutputTokens, 1).Time
		}
		t.AddRow(string(spec.ID), di(pTok), di(dTok),
			fmt.Sprintf("1:%.1f", float64(dTok)/float64(pTok)),
			fmt.Sprintf("1:%.0f", dLat/pLat),
			pct(dLat/(pLat+dLat)))
	}
	return []Table{t}, nil
}

// fig4PrefillPowerEnergy reproduces Fig 4: prefill power and energy per
// token vs input length.
func fig4PrefillPowerEnergy(opts Options) ([]Table, error) {
	d := hw.JetsonAGXOrin64GB()
	sim := gpusim.New(d)
	meter := power.NewMeter(d)
	t := Table{
		ID: "fig4", Title: "Prefill power and energy/token vs input length",
		Columns: []string{"model", "input_len", "power_w", "energy_j_per_tok"},
	}
	for _, spec := range model.DSR1Family() {
		for _, i := range []int{128, 256, 512, 1024, 2048, 3072, 4096} {
			res := sim.Prefill(spec.Arch, spec.DType, i, 1)
			t.AddRow(string(spec.ID), di(i), f1(meter.ObservedPower(res)), f4(meter.EnergyPerToken(res)))
		}
	}
	return []Table{t}, nil
}

// fig5DecodePowerEnergy reproduces Fig 5: decode power and energy per
// token vs output length at 512-token input.
func fig5DecodePowerEnergy(opts Options) ([]Table, error) {
	d := hw.JetsonAGXOrin64GB()
	sim := gpusim.New(d)
	meter := power.NewMeter(d)
	t := Table{
		ID: "fig5", Title: "Decode power and energy/token vs output length (input = 512)",
		Columns: []string{"model", "output_len", "power_w", "energy_j_per_tok"},
	}
	for _, spec := range model.DSR1Family() {
		for _, o := range []int{128, 256, 512, 1024, 1536, 2048} {
			res := sim.DecodeRun(spec.Arch, spec.DType, 512, o, 1)
			t.AddRow(string(spec.ID), di(o), f1(meter.Power(res)), f3(meter.EnergyPerToken(res)))
		}
	}
	return []Table{t}, nil
}

// table8EnergyMAPE reproduces Table VIII (energy-model MAPE) and dumps
// the fitted power/energy coefficients (Tables XX/XXI analogues).
func table8EnergyMAPE(opts Options) ([]Table, error) {
	d := hw.JetsonAGXOrin64GB()
	sim := gpusim.New(d)
	meter := power.NewMeter(d)
	mape := Table{
		ID: "table8", Title: "MAPE of energy model (paper: ~6% decode/total)",
		Columns: []string{"model", "total_pct"},
	}
	params := Table{
		ID: "table21", Title: "Fitted decode power/energy model parameters (Table XXI analogue)",
		Columns: []string{"model", "power_alpha", "power_beta", "energy_alpha", "energy_beta"},
	}
	for _, spec := range model.DSR1Family() {
		pe, err := core.FitPrefillEnergy(sim, meter, spec.Arch, spec.DType)
		if err != nil {
			return nil, err
		}
		de, err := core.FitDecodeEnergy(sim, meter, spec.Arch, spec.DType)
		if err != nil {
			return nil, err
		}
		workload, err := heldOutWorkload(spec, opts, 30)
		if err != nil {
			return nil, err
		}
		m := core.ValidateEnergyModel(sim, meter, spec.Arch, spec.DType, pe, de, workload)
		mape.AddRow(string(spec.ID), f1(m*100))

		dp, err := core.FitDecodePower(sim, meter, spec.Arch, spec.DType)
		if err != nil {
			return nil, err
		}
		pAlpha, pBeta := logLinearTerms(dp.Curve.High)
		eAlpha, eBeta := logLinearTerms(de.Curve.High)
		params.AddRow(string(spec.ID), f3(pAlpha), f3(pBeta), f4(eAlpha), f4(eBeta))
	}
	return []Table{mape, params}, nil
}

// logLinearTerms extracts (α, β) from a fitted y = α·ln(x) + β branch,
// or zeros when the branch has another form.
func logLinearTerms(c fit.Curve) (alpha, beta float64) {
	if ll, ok := c.(fit.LogLinear); ok {
		return ll.Alpha, ll.Beta
	}
	return 0, 0
}

// cpuVsGPU reproduces Tables XVI and XVII: the ARM Cortex-A78AE complex
// as an alternative inference engine.
func cpuVsGPU(opts Options) ([]Table, error) {
	gpu := gpusim.New(hw.JetsonAGXOrin64GB())
	cpu := gpusim.New(hw.OrinCortexA78AE())
	prefill := Table{
		ID: "table16", Title: "Prefill latency: CPU vs GPU (s)",
		Columns: []string{"input_len", "model", "cpu_s", "gpu_s", "gpu_speedup"},
	}
	for _, n := range []int{128, 256, 512, 1024} {
		for _, spec := range model.DSR1Family() {
			tc := cpu.Prefill(spec.Arch, spec.DType, n, 1).Time
			tg := gpu.Prefill(spec.Arch, spec.DType, n, 1).Time
			prefill.AddRow(di(n), string(spec.ID), f2(tc), f3(tg), f1(tc/tg))
		}
	}
	decode := Table{
		ID: "table17", Title: "Decode latency: CPU vs GPU (s), input 512",
		Columns: []string{"output_len", "model", "cpu_s", "gpu_s", "gpu_speedup"},
		Notes:   []string{"the paper's 64-token row is anomalous (0.81 s/token vs 0.10 at all other lengths); we report consistent sweeps"},
	}
	for _, o := range []int{64, 128, 256, 1024} {
		for _, spec := range model.DSR1Family()[1:] { // 8B and 14B, as in the paper
			tc := cpu.DecodeRun(spec.Arch, spec.DType, 512, o, 1).Time
			tg := gpu.DecodeRun(spec.Arch, spec.DType, 512, o, 1).Time
			decode.AddRow(di(o), string(spec.ID), f1(tc), f1(tg), f1(tc/tg))
		}
	}
	return []Table{prefill, decode}, nil
}
