package kvcache

import "testing"

// syms returns n distinct token symbols offset by base, so tests can
// build prompts with controlled shared prefixes.
func syms(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)
	}
	return out
}

func newPrefixCache(t *testing.T, blockSize, numBlocks int) (*Cache, *PrefixIndex) {
	t.Helper()
	c, err := New(Config{BlockSize: blockSize, NumBlocks: numBlocks})
	if err != nil {
		t.Fatal(err)
	}
	return c, NewPrefixIndex(c)
}

// runTurn acquires a sequence for promptSyms, appends the unmatched
// prompt suffix plus the output, and releases it with retention.
func runTurn(t *testing.T, c *Cache, ix *PrefixIndex, id string, promptSyms, outputSyms []uint64) int {
	t.Helper()
	matched, err := ix.Acquire(id, promptSyms)
	if err != nil {
		t.Fatalf("%s: acquire: %v", id, err)
	}
	h, err := c.Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AppendTokensH(h, len(promptSyms)-matched+len(outputSyms)); err != nil {
		t.Fatalf("%s: append: %v", id, err)
	}
	if err := ix.Release(h, promptSyms, outputSyms); err != nil {
		t.Fatalf("%s: release: %v", id, err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return matched
}

func TestPrefixColdThenWarm(t *testing.T) {
	c, ix := newPrefixCache(t, 4, 64)
	prompt := syms(100, 10)
	out := syms(1000, 6)

	if m := runTurn(t, c, ix, "t0", prompt, out); m != 0 {
		t.Fatalf("cold acquire matched %d tokens, want 0", m)
	}
	// 16 tokens retained => 4 full blocks held by the index.
	if got := ix.Metrics().Retained; got != 4 {
		t.Fatalf("retained %d blocks, want 4", got)
	}

	// Same prompt again: full blocks match, but at least one token must
	// remain for prefill, so 10 tokens cap at 2 blocks = 8 tokens.
	if m := runTurn(t, c, ix, "t1", prompt, syms(2000, 2)); m != 8 {
		t.Fatalf("warm acquire matched %d tokens, want 8", m)
	}

	// Next turn's prompt extends the first turn's prompt+output: all 4
	// retained blocks match.
	history := append(append([]uint64{}, prompt...), out...)
	next := append(append([]uint64{}, history...), syms(3000, 5)...)
	if m := runTurn(t, c, ix, "t2", next, nil); m != 16 {
		t.Fatalf("extended acquire matched %d tokens, want 16", m)
	}

	m := ix.Metrics()
	if m.Lookups != 3 || m.Hits != 2 {
		t.Fatalf("lookups/hits = %d/%d, want 3/2", m.Lookups, m.Hits)
	}
	if m.SavedTokens != 24 {
		t.Fatalf("saved %d tokens, want 24", m.SavedTokens)
	}
}

func TestPrefixSharedBlocksWhileLive(t *testing.T) {
	c, ix := newPrefixCache(t, 4, 64)
	prompt := syms(100, 9)
	runTurn(t, c, ix, "t0", prompt, nil)

	// Two concurrent branches off the same retained history: both share
	// the retained blocks fork-style.
	for _, id := range []string{"b0", "b1"} {
		if _, err := ix.Acquire(id, prompt); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Stats().SharedBlocks; got != 2 {
		t.Fatalf("SharedBlocks = %d, want 2 (index + two branches on 2 blocks)", got)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"b0", "b1"} {
		if err := c.Free(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixDuplicateContentKeepsOneCopy(t *testing.T) {
	c, ix := newPrefixCache(t, 4, 64)
	prompt := syms(100, 8)
	// Two sequences with identical content complete without ever seeing
	// each other (both cold). The second release must not double-retain.
	for _, id := range []string{"a", "b"} {
		if _, err := ix.Acquire(id, prompt); err != nil {
			t.Fatal(err)
		}
		h, err := c.Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AppendTokensH(h, len(prompt)); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []string{"a", "b"} {
		h, err := c.Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Release(h, prompt, nil); err != nil {
			t.Fatal(err)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	if got := ix.Metrics().Retained; got != 2 {
		t.Fatalf("retained %d blocks, want 2 (one copy of the 2 full blocks)", got)
	}
	// Only the canonical copy survives; the duplicate's blocks are free.
	if free := c.FreeBlocks(); free != 62 {
		t.Fatalf("free %d blocks, want 62", free)
	}
}

func TestPrefixEvictionLRULeafFirst(t *testing.T) {
	c, ix := newPrefixCache(t, 4, 16)
	// Retain two chains: "old" (2 blocks) then "hot" (2 blocks).
	old := syms(100, 8)
	hot := syms(5000, 8)
	runTurn(t, c, ix, "a", old, nil)
	runTurn(t, c, ix, "b", hot, nil)
	// Touch the old chain so the hot one becomes LRU.
	if got := ix.Probe(append(append([]uint64{}, old...), 9)); got != 2 {
		t.Fatalf("probe matched %d blocks, want 2", got)
	}

	if c.FreeBlocks() != 12 {
		t.Fatalf("free %d, want 12", c.FreeBlocks())
	}
	// Ask for more free blocks than exist outside the index: the two
	// hot-chain blocks must go (leaf first, then its parent), the
	// recently-probed old chain survives.
	ix.EnsureFree(14)
	if c.FreeBlocks() != 14 {
		t.Fatalf("free %d after eviction, want 14", c.FreeBlocks())
	}
	m := ix.Metrics()
	if m.Evictions != 2 || m.Retained != 2 {
		t.Fatalf("evictions/retained = %d/%d, want 2/2", m.Evictions, m.Retained)
	}
	if got := ix.Probe(append(append([]uint64{}, old...), 9)); got != 2 {
		t.Fatalf("old chain lost: probe matched %d blocks, want 2", got)
	}
	if got := ix.Probe(append(append([]uint64{}, hot...), 9)); got != 0 {
		t.Fatalf("evicted chain still matches %d blocks", got)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Draining the index completely frees everything.
	ix.EnsureFree(16)
	if c.FreeBlocks() != 16 || ix.Metrics().Retained != 0 {
		t.Fatalf("drain left free=%d retained=%d", c.FreeBlocks(), ix.Metrics().Retained)
	}
}

func TestPrefixEvictSharedBlockDoesNotFreeIt(t *testing.T) {
	c, ix := newPrefixCache(t, 4, 8)
	prompt := syms(100, 8)
	runTurn(t, c, ix, "t0", prompt, nil) // retains 2 blocks
	// A live sequence shares both retained blocks.
	if m, err := ix.Acquire("live", append(append([]uint64{}, prompt...), 9)); err != nil || m != 8 {
		t.Fatalf("acquire = %d, %v; want 8 matched", m, err)
	}
	// Evicting a shared leaf drops only the index ref and frees nothing;
	// EnsureFree notices the zero-reclaim round and stops instead of
	// draining the rest of the chain for no capacity.
	ix.EnsureFree(8)
	if got := ix.Metrics().Retained; got != 1 {
		t.Fatalf("retained %d after zero-reclaim stop, want 1", got)
	}
	if got := ix.Metrics().Evictions; got != 1 {
		t.Fatalf("evictions %d, want 1", got)
	}
	if free := c.FreeBlocks(); free != 6 {
		t.Fatalf("free %d, want 6 (live sequence still holds 2)", free)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := c.Free("live"); err != nil {
		t.Fatal(err)
	}
	// The evicted leaf's block frees with the sequence; the surviving
	// entry keeps its block retained.
	if free := c.FreeBlocks(); free != 7 {
		t.Fatalf("free %d after live free, want 7", free)
	}
}

// TestEnsureFreeSharedLeavesDoNotDrainIndex is the regression test for
// the eviction wipeout: when the least-recently-used leaf is still
// shared with a live sequence, each eviction reclaims zero blocks, and
// the pre-fix loop would keep going — destroying every warm session
// history in the index without freeing any capacity at all. The fixed
// loop stops after the first zero-reclaim round, so the warm chains
// behind the shared one survive. (Pre-fix, Retained ends at 0 and both
// warm probes miss.)
func TestEnsureFreeSharedLeavesDoNotDrainIndex(t *testing.T) {
	c, ix := newPrefixCache(t, 4, 8)
	promptA := syms(100, 8)
	promptB := syms(2000, 8)
	runTurn(t, c, ix, "a0", promptA, nil) // chain A: 2 blocks
	// A live sequence shares chain A, then warmer chain B retains after,
	// leaving A's leaf at the LRU head.
	if m, err := ix.Acquire("liveA", append(append([]uint64{}, promptA...), 9)); err != nil || m != 8 {
		t.Fatalf("acquire = %d, %v; want 8 matched", m, err)
	}
	runTurn(t, c, ix, "b0", promptB, nil) // chain B: 2 blocks
	// 4 retained + 2 shared-live = 6 used, 2 free. An unreachable target
	// forces eviction to run until it stops on its own.
	ix.EnsureFree(8)
	if got := ix.Metrics().Retained; got != 3 {
		t.Fatalf("retained %d after EnsureFree, want 3 (only A's shared leaf evicted)", got)
	}
	if got := ix.Probe(append(append([]uint64{}, promptB...), 9)); got != 2 {
		t.Fatalf("warm chain B probe matched %d blocks after eviction, want 2", got)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixReLeafedParentKeepsItsRecency(t *testing.T) {
	c, ix := newPrefixCache(t, 4, 16)
	x := syms(100, 8)  // chain X: blocks X0, X1
	z := syms(2000, 5) // chain Z: one block
	y := syms(3000, 5) // chain Y: one block
	runTurn(t, c, ix, "a", x, nil)
	runTurn(t, c, ix, "c", z, nil)
	// Refresh only X0 (a one-block probe), leaving X1 the oldest leaf.
	if got := ix.Probe(x[:5]); got != 1 {
		t.Fatalf("short probe matched %d blocks, want 1", got)
	}
	runTurn(t, c, ix, "d", y, nil)

	// Evict one: X1 is LRU. Its parent X0 re-leafs and must re-enter the
	// list at its own (probe-refreshed) recency — after Z, before Y.
	ix.EnsureFree(c.FreeBlocks() + 1)
	if got := ix.Probe(x[:5]); got != 1 {
		t.Fatal("X0 evicted with its child — chain torn down too far")
	}
	// Next eviction must take Z (older than the re-leafed X0).
	ix.EnsureFree(c.FreeBlocks() + 1)
	if got := ix.Probe(z); got != 0 {
		t.Fatal("Z survived an eviction it should have lost (re-leafed X0 inserted at the head)")
	}
	if got := ix.Probe(x[:5]); got != 1 {
		t.Fatal("X0 gone before Z")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Retaining after evictions recycles pooled entry shells; the index
	// must behave identically.
	before := ix.Metrics().Evictions
	runTurn(t, c, ix, "e", syms(4000, 9), nil)
	if got := ix.Probe(syms(4000, 9)); got != 2 {
		t.Fatalf("post-eviction retain matched %d blocks, want 2", got)
	}
	if ix.Metrics().Evictions != before {
		t.Fatal("retain must not evict")
	}
}

func TestPrefixAcquireDuplicateID(t *testing.T) {
	c, ix := newPrefixCache(t, 4, 8)
	if _, err := ix.Acquire("a", syms(0, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Acquire("a", syms(0, 5)); err != ErrSequenceExists {
		t.Fatalf("duplicate acquire: got %v, want ErrSequenceExists", err)
	}
	_ = c
}

func TestPrefixReleaseStaleHandle(t *testing.T) {
	c, ix := newPrefixCache(t, 4, 8)
	if _, err := ix.Acquire("a", syms(0, 5)); err != nil {
		t.Fatal(err)
	}
	h, err := c.Lookup("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.FreeH(h); err != nil {
		t.Fatal(err)
	}
	if err := ix.Release(h, syms(0, 5), nil); err != ErrUnknownSequence {
		t.Fatalf("stale release: got %v, want ErrUnknownSequence", err)
	}
}

func TestSecondPrefixIndexPanics(t *testing.T) {
	c, _ := newPrefixCache(t, 4, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("second NewPrefixIndex did not panic")
		}
	}()
	NewPrefixIndex(c)
}
