// Prefix index: cross-request KV reuse in the style of vLLM's automatic
// prefix caching and SGLang's RadixAttention. Completed sequences donate
// their full blocks to a content-addressed index (chained block hashes
// over token symbols); a later request whose prompt shares a prefix
// re-acquires those blocks with fork-style refcount bumps and only
// prefills the unmatched suffix. Retained blocks are reclaimable
// capacity: when the free list runs low, the least-recently-used leaf
// entries are evicted first, so hot session histories survive while cold
// ones make room.
package kvcache

import (
	"fmt"
	"sort"
)

// prefixSeed is the FNV-64a offset basis; block hash chains start here.
const prefixSeed uint64 = 14695981039346656037

// prefixMix folds one 64-bit token symbol into a running hash with a
// single xor-multiply-rotate step (an FNV-style mix widened to 64-bit
// lanes). Prefix matching hashes every prompt token on admission, so the
// step must be one multiply, not eight.
func prefixMix(h, sym uint64) uint64 {
	h = (h ^ sym) * 0x9e3779b97f4a7c15
	return h>>29 | h<<35
}

// PrefixMetrics counts index activity since construction.
type PrefixMetrics struct {
	// Lookups counts Acquire calls; Hits those that matched >= 1 block.
	Lookups int
	Hits    int
	// SavedTokens is the total prefill work avoided by matches.
	SavedTokens int
	// Retained is the current number of index-held device blocks.
	Retained int
	// Evictions counts entries dropped for good under capacity pressure
	// (demotions to the host tier are not evictions — the state survives).
	Evictions int
	// Host-tier counters, all zero without an attached host tier.
	// Demotions and Promotions count block moves device->host and back;
	// HostHits counts Acquires that restored at least one host block;
	// HostRetained is the current host-resident block count.
	Demotions    int
	Promotions   int
	HostHits     int
	HostRetained int
	// RestoreSeconds accumulates host-link transfer time charged by
	// promotions (blocks x block bytes / link bandwidth). The engine
	// folds per-Acquire deltas into that request's TTFT.
	RestoreSeconds float64
	// CrashWipes counts CrashReset calls; CrashDropped the entries they
	// destroyed (device entries always; host entries unless the tier was
	// kept and their whole chain was host-resident).
	CrashWipes   int
	CrashDropped int
}

// hostBlock marks an entry whose block contents live on the host tier:
// it holds no device block until promoted back.
const hostBlock = -1

// prefixEntry is one retained block keyed by its chained content hash.
type prefixEntry struct {
	hash uint64
	// block is the device block holding the contents, or hostBlock when
	// the entry has been demoted to the host tier.
	block  int
	parent *prefixEntry
	// children counts device-resident entries hashing through this one;
	// only device leaves (children == 0) are device-evictable, so a
	// chain always demotes or evicts tail-first. hostChildren counts
	// host-resident children separately: they never block device
	// eviction (the demoted tail below rides along), but pin a host
	// entry against host-tier eviction.
	children     int
	hostChildren int
	// onHost marks the entry's contents as host-resident. Host entries
	// form contiguous chain tails: a host entry never has a device child.
	onHost bool
	// lastUse is the logical tick of the most recent match through this
	// entry; each tier's evictable list stays sorted ascending by it.
	lastUse uint64
	// prev/next link the entry into its tier's evictable LRU list while
	// it is a leaf there (least-recent at the front).
	prev, next *prefixEntry
	inLRU      bool
}

// lruList is one tier's evictable-leaf list, sorted ascending by
// lastUse (least-recent at the head).
type lruList struct {
	head, tail *prefixEntry
}

// PrefixIndex maps chained block hashes to retained cache blocks. It is
// bound to one Cache and, like the Cache, is not safe for concurrent
// use. At most one index may be attached to a cache.
type PrefixIndex struct {
	c       *Cache
	entries map[uint64]*prefixEntry
	// lru is the device-evictable leaf list (LRU at head).
	lru lruList
	// host is the optional host-DRAM second tier (nil when disabled):
	// device eviction demotes into it instead of dropping entries.
	host *hostTier
	// tick is the logical clock stamping lastUse.
	tick uint64
	m    PrefixMetrics
	// match is the scratch chain reused across Probe/Acquire walks. The
	// memo fields identify the last walked syms slice (by backing array
	// and length) and the index mutation count it ran under, so the
	// Probe-then-Acquire admission pattern hashes the prompt once, not
	// twice. mut is bumped by every entry insert and eviction.
	match    []*prefixEntry
	memoSym0 *uint64
	memoLen  int
	memoMut  uint64
	mut      uint64
	// pool recycles evicted entry shells so steady-state retain/evict
	// churn is allocation-free; slab batch-allocates fresh shells so
	// first-time retention costs one allocation per 256 entries.
	pool []*prefixEntry
	slab []prefixEntry
}

// NewPrefixIndex attaches a prefix index to the cache. The cache starts
// tracking index-held references so CheckInvariants stays exact.
func NewPrefixIndex(c *Cache) *PrefixIndex {
	if c.indexRefs != nil {
		panic("kvcache: cache already has a prefix index attached")
	}
	// Non-nil zero-length sentinel: marks the index attached while growing
	// lazily with the watermark via Cache.indexRef.
	c.indexRefs = make([]int, 0)
	return &PrefixIndex{c: c, entries: make(map[uint64]*prefixEntry)}
}

// Metrics returns a snapshot of the index counters.
func (ix *PrefixIndex) Metrics() PrefixMetrics { return ix.m }

// walk matches syms against the index block by block, refreshing every
// matched entry's recency, and leaves the chain in ix.match. Only full
// blocks participate, and at least one token is always left unmatched so
// the engine has a suffix to prefill (real engines recompute the last
// prompt token to produce first-step logits). A repeat walk of the same
// (never-mutated) syms slice against an unmutated index — the engine's
// Probe-then-Acquire admission, and its per-event retries of a blocked
// stream head — reuses the previous result instead of re-hashing the
// whole prompt.
func (ix *PrefixIndex) walk(syms []uint64) []*prefixEntry {
	if len(syms) > 0 && ix.memoSym0 == &syms[0] && ix.memoLen == len(syms) && ix.memoMut == ix.mut {
		return ix.match
	}
	ix.match = ix.match[:0]
	bs := ix.c.cfg.BlockSize
	maxBlocks := (len(syms) - 1) / bs
	h := prefixSeed
	for k := 0; k < maxBlocks; k++ {
		for _, sym := range syms[k*bs : (k+1)*bs] {
			h = prefixMix(h, sym)
		}
		e := ix.entries[h]
		if e == nil {
			break
		}
		ix.touch(e)
		ix.match = append(ix.match, e)
	}
	if len(syms) > 0 {
		ix.memoSym0, ix.memoLen, ix.memoMut = &syms[0], len(syms), ix.mut
	}
	return ix.match
}

// Probe returns how many blocks of syms the index currently holds on
// the device tier, refreshing the whole matched chain's recency (host
// segments included). It allocates nothing and takes no blocks.
// Host-resident matches are excluded deliberately: promoting them back
// consumes device capacity exactly like a cold prefill of the same
// span, so admission control must budget for them as unmatched demand.
func (ix *PrefixIndex) Probe(syms []uint64) int {
	chain := ix.walk(syms)
	for i, e := range chain {
		if e.onHost {
			// Host entries are contiguous chain tails: the device-resident
			// match is everything before the first one.
			return i
		}
	}
	return len(chain)
}

// Acquire creates seqID seeded with the longest indexed prefix of syms
// (fork-style: matched blocks are shared copy-on-write via refcount
// bumps) and returns the number of tokens reused. A zero return means a
// cold start; the sequence then exists with length 0 and the caller
// appends the whole prompt. A match that walks onto a host-resident
// chain tail promotes it back to the device tier block by block,
// charging RestoreSeconds for the host-link transfer; if the cache runs
// out of blocks mid-promotion the chain is truncated there (the
// already-promoted prefix is kept). The caller must not evict between a
// Probe and the Acquire that relies on it — both walk the same index
// state.
func (ix *PrefixIndex) Acquire(seqID string, syms []uint64) (int, error) {
	if _, ok := ix.c.seqs[seqID]; ok {
		return 0, ErrSequenceExists
	}
	ix.m.Lookups++
	chain := ix.walk(syms)
	promoted := 0
	for i, e := range chain {
		if !e.onHost {
			continue
		}
		if !ix.promote(e) {
			chain = chain[:i]
			break
		}
		promoted++
	}
	if promoted > 0 {
		ix.m.HostHits++
		ix.m.RestoreSeconds += ix.restoreCost(promoted)
	}
	s := ix.c.newSequence(len(chain))
	for _, e := range chain {
		ix.c.retain(e.block)
		s.blocks = append(s.blocks, e.block)
	}
	s.length = len(chain) * ix.c.cfg.BlockSize
	ix.c.seqs[seqID] = s
	if s.length > 0 {
		ix.m.Hits++
		ix.m.SavedTokens += s.length
	}
	return s.length, nil
}

// Release frees the handle's sequence while retaining every full block
// whose content is identified by promptSyms followed by outputSyms. Blocks
// past the identified (or partial-tail) region are released normally. A
// block already indexed under the same chain hash is not re-retained: the
// existing entry wins and the sequence's reference is simply dropped.
func (ix *PrefixIndex) Release(h Handle, promptSyms, outputSyms []uint64) error {
	if !ix.c.valid(h) {
		return ErrUnknownSequence
	}
	s := h.s
	bs := ix.c.cfg.BlockSize
	covered := len(promptSyms) + len(outputSyms)
	if covered > s.length {
		covered = s.length
	}
	full := covered / bs
	hh := prefixSeed
	var parent *prefixEntry
	for k := 0; k < full; k++ {
		for i := k * bs; i < (k+1)*bs; i++ {
			if i < len(promptSyms) {
				hh = prefixMix(hh, promptSyms[i])
			} else {
				hh = prefixMix(hh, outputSyms[i-len(promptSyms)])
			}
		}
		e := ix.entries[hh]
		if e == nil {
			if parent != nil && parent.onHost {
				// Growing a device entry under a host-resident parent would
				// break the chain-tail invariant (host entries never have
				// device children). Demotion and host eviction are both
				// leaf-first, so nothing deeper can be indexed either: stop
				// retaining here and release the rest normally.
				break
			}
			ix.tick++
			e = ix.newEntry()
			*e = prefixEntry{hash: hh, block: s.blocks[k], parent: parent, lastUse: ix.tick}
			ix.c.retain(e.block)
			ix.c.indexRef(e.block, 1)
			ix.entries[hh] = e
			ix.mut++
			if parent != nil {
				parent.children++
				ix.lru.remove(parent) // interior entries are not evictable
			}
			ix.lru.push(e)
			ix.m.Retained++
		} else {
			ix.touch(e)
		}
		parent = e
	}
	ix.c.freeSeq(h.id, s)
	return nil
}

// EnsureFree evicts (or, with a host tier, demotes) least-recently-used
// device leaf entries until the cache has at least n free blocks,
// nothing evictable remains, or an eviction round reclaims no capacity.
// The last condition is load-bearing: an evicted leaf whose block is
// still shared with a live sequence frees nothing now (the block frees
// when the sequence does), and before the stop a single admission under
// that kind of pressure would keep evicting zero-reclaim leaves until
// the entire index — every warm session history — was destroyed for no
// capacity at all.
func (ix *PrefixIndex) EnsureFree(n int) {
	for ix.c.FreeBlocks() < n {
		before := ix.c.FreeBlocks()
		if !ix.evictOne() {
			return
		}
		if ix.c.FreeBlocks() == before {
			return
		}
	}
}

// evictOne reclaims the least-recently-used device leaf entry —
// demoting it to the host tier when one is attached, dropping it for
// good otherwise — reporting false when none remains.
func (ix *PrefixIndex) evictOne() bool {
	if ix.host != nil {
		return ix.demoteOne()
	}
	e := ix.lru.head
	if e == nil {
		return false
	}
	ix.lru.remove(e)
	delete(ix.entries, e.hash)
	ix.mut++
	ix.c.indexRef(e.block, -1)
	ix.c.release(e.block)
	ix.m.Retained--
	ix.m.Evictions++
	if p := e.parent; p != nil {
		p.children--
		if p.children == 0 {
			// The parent becomes a leaf again; re-enter the evictable list
			// at its true recency, so a cold chain keeps tearing down
			// before any recently-matched chain is touched.
			ix.lru.insertSorted(p)
		}
	}
	ix.pool = append(ix.pool, e)
	return true
}

// CrashReset models a device power loss: every device-resident entry is
// dropped — HBM contents do not survive a crash — and its block
// reference released. With keepHost (and a host tier attached), host
// entries whose entire hash chain is host-resident survive, modeling
// persistent host DRAM; a host tail whose upper chain lived on the
// device is orphaned by the wipe (its chained hashes can no longer be
// reached from the chain root) and is dropped with it. Without keepHost
// the host tier is cleared too. Live sequences are untouched: the
// serving layer aborts them separately, and their blocks free when they
// do. Index invariants hold afterwards.
func (ix *PrefixIndex) CrashReset(keepHost bool) {
	ix.m.CrashWipes++
	if len(ix.entries) == 0 {
		return
	}
	survives := func(e *prefixEntry) bool {
		if !keepHost || !e.onHost {
			return false
		}
		for p := e; p != nil; p = p.parent {
			if !p.onHost {
				return false
			}
		}
		return true
	}
	var kept []*prefixEntry
	for _, e := range ix.entries {
		if survives(e) {
			kept = append(kept, e)
			continue
		}
		if e.onHost {
			ix.m.HostRetained--
			ix.host.resident--
		} else {
			ix.c.indexRef(e.block, -1)
			ix.c.release(e.block)
			ix.m.Retained--
		}
		ix.m.CrashDropped++
		ix.pool = append(ix.pool, e)
	}
	// Rebuild wholesale. Survivors keep their exact counters: a
	// surviving host entry's parent is host and surviving (the whole
	// chain is), every host child of a survivor survives with it, and
	// host entries never have device children — so children and
	// hostChildren are already right. Only the map and the LRU lists
	// need reconstructing; unique lastUse ticks give a deterministic
	// order regardless of map iteration.
	ix.entries = make(map[uint64]*prefixEntry, len(kept))
	ix.lru = lruList{}
	if ix.host != nil {
		ix.host.lru = lruList{}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].lastUse < kept[j].lastUse })
	for _, e := range kept {
		e.prev, e.next, e.inLRU = nil, nil, false
		ix.entries[e.hash] = e
	}
	for _, e := range kept {
		if e.hostChildren == 0 {
			ix.host.lru.push(e) // ascending lastUse: push keeps it sorted
		}
	}
	ix.mut++
}

// newEntry returns an entry shell, recycled from the pool when possible
// and carved from the current slab otherwise.
func (ix *PrefixIndex) newEntry() *prefixEntry {
	if n := len(ix.pool); n > 0 {
		e := ix.pool[n-1]
		ix.pool[n-1] = nil
		ix.pool = ix.pool[:n-1]
		return e
	}
	if len(ix.slab) == 0 {
		ix.slab = make([]prefixEntry, 256)
	}
	e := &ix.slab[0]
	ix.slab = ix.slab[1:]
	return e
}

// touch stamps an entry's recency and, if it is evictable, moves it to
// the MRU end of its tier's list.
func (ix *PrefixIndex) touch(e *prefixEntry) {
	ix.tick++
	e.lastUse = ix.tick
	if !e.inLRU {
		return
	}
	l := &ix.lru
	if e.onHost {
		l = &ix.host.lru
	}
	if l.tail == e {
		return
	}
	l.remove(e)
	l.push(e)
}

// push appends e at the MRU end (callers guarantee e.lastUse is the
// newest tick, keeping the list sorted).
func (l *lruList) push(e *prefixEntry) {
	if e.inLRU {
		panic(fmt.Sprintf("kvcache: prefix entry for block %d already on LRU list", e.block))
	}
	e.inLRU = true
	e.prev = l.tail
	e.next = nil
	if l.tail != nil {
		l.tail.next = e
	} else {
		l.head = e
	}
	l.tail = e
}

// insertSorted places e at the position its lastUse dictates (the list
// is sorted ascending). Used when an interior entry becomes a leaf
// again: its recency predates entries touched since, so it usually
// lands near the front after a short walk from the tail.
func (l *lruList) insertSorted(e *prefixEntry) {
	at := l.tail // insert after at; nil means at the head
	for at != nil && at.lastUse > e.lastUse {
		at = at.prev
	}
	if at == l.tail {
		l.push(e)
		return
	}
	if e.inLRU {
		panic(fmt.Sprintf("kvcache: prefix entry for block %d already on LRU list", e.block))
	}
	e.inLRU = true
	if at == nil {
		e.prev = nil
		e.next = l.head
		l.head.prev = e
		l.head = e
		return
	}
	e.prev = at
	e.next = at.next
	at.next.prev = e
	at.next = e
}

// remove unlinks e if it is on the list.
func (l *lruList) remove(e *prefixEntry) {
	if !e.inLRU {
		return
	}
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
	e.inLRU = false
}
