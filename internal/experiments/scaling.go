package experiments

import (
	"fmt"

	"edgereasoning/internal/control"
	"edgereasoning/internal/data"
	"edgereasoning/internal/engine"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/llm"
	"edgereasoning/internal/model"
	"edgereasoning/internal/tts"
)

func init() {
	register("fig9", fig9ParallelAccuracy)
	register("fig10", fig10ParallelCost)
}

// fig9Models is the Fig 9 lineup: the DSR1 trio plus the budget-aware L1.
func fig9Models() []model.ID {
	return []model.ID{model.DSR1Qwen1_5B, model.DSR1Llama8B, model.DSR1Qwen14B, model.L1Max}
}

// fig9ParallelAccuracy reproduces Fig 9: accuracy vs parallel scaling
// factor at output budgets 128 (panel a) and 512 (panel b), full
// MMLU-Redux with majority voting.
func fig9ParallelAccuracy(opts Options) ([]Table, error) {
	bank := data.MustLoad(data.MMLURedux, opts.Seed)
	sub := bank.Subsample(opts.sample(bank.Size()))
	var out []Table
	for _, panel := range []struct {
		suffix string
		budget int
	}{{"a", 128}, {"b", 512}} {
		t := Table{
			ID:      "fig9" + panel.suffix,
			Title:   fmt.Sprintf("Accuracy vs parallel scaling factor (output budget %d)", panel.budget),
			Columns: []string{"model", "sf", "accuracy_pct", "mean_agreement"},
		}
		for _, id := range fig9Models() {
			tw := llm.NewTwin(model.MustLookup(id), bank, opts.Seed)
			rs, err := tts.Sweep(tw, sub, control.HardLimit(panel.budget), tts.PaperScalingFactors())
			if err != nil {
				return nil, err
			}
			for _, r := range rs {
				t.AddRow(string(id), di(r.SF), pct(r.Accuracy), f2(r.MeanAgreement))
			}
		}
		out = append(out, t)
	}
	return out, nil
}

// fig10ParallelCost reproduces Fig 10: decode latency, energy per
// question, and power/GPU-utilization across parallel scaling factors at
// a fixed 128-token output budget (prefill once at batch 1, decode at
// batch SF — the §V-E protocol).
func fig10ParallelCost(opts Options) ([]Table, error) {
	t := Table{
		ID: "fig10", Title: "Parallel scaling on Orin: decode latency, energy/question, power, GPU utilization (128-token budget)",
		Columns: []string{"model", "sf", "decode_latency_s", "energy_j_per_q", "power_w", "gpu_util_pct"},
	}
	const prompt, budget = 512, 128
	for _, spec := range model.DSR1Family() {
		for _, sf := range tts.PaperScalingFactors() {
			eng, err := engine.New(engine.Config{Spec: spec, Device: hw.JetsonAGXOrin64GB()})
			if err != nil {
				return nil, err
			}
			outputs := make([]int, sf)
			for i := range outputs {
				outputs[i] = budget
			}
			b, err := eng.RunParallel(prompt, outputs)
			if err != nil {
				return nil, err
			}
			decodeLat := 0.0
			if len(b.Requests) > 0 {
				decodeLat = b.Requests[0].DecodeTime
			}
			// Energy per question: the whole SF fan-out answers one question.
			util := eng.Meter().GPUUtilization(
				eng.SimDecodeProbe(prompt, budget, sf))
			t.AddRow(string(spec.ID), di(sf), f2(decodeLat), f1(b.TotalEnergy), f1(b.AvgPower()), f1(util))
		}
	}
	return []Table{t}, nil
}
