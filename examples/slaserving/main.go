// SLA serving: Takeaway #6 in action. A deadline-bound service pairs the
// budget-aware L1 model with the fitted latency model: each incoming
// request's deadline is inverted (Eqn 3) into a hard token budget, the
// request is served through the engine, and the deadline hit-rate is
// audited. This is the paper's recipe for "deterministic latency control
// essential for real-time applications".
package main

import (
	"fmt"
	"log"
	"time"

	"edgereasoning"
)

type request struct {
	name     string
	prompt   int
	deadline time.Duration
}

func main() {
	platform := edgereasoning.NewOrinPlatform()
	dep, err := platform.Deploy(edgereasoning.L1Max)
	if err != nil {
		log.Fatal(err)
	}

	workload := []request{
		{"collision check", 64, 800 * time.Millisecond},
		{"grasp planning", 128, 2 * time.Second},
		{"route replan", 256, 5 * time.Second},
		{"task decomposition", 200, 10 * time.Second},
		{"dialogue turn", 96, 3 * time.Second},
		{"tight reflex", 48, 200 * time.Millisecond},
	}

	fmt.Printf("Deadline-bound serving with %s on %s\n\n", dep.Model(), platform.DeviceName())
	fmt.Println("request             deadline   budget(tok)  served(s)  met?")
	fmt.Println("-------             --------   -----------  ---------  ----")

	met := 0
	for _, r := range workload {
		// Invert the latency model: deadline -> max decodable tokens.
		budget := dep.MaxTokensWithin(r.prompt, r.deadline)
		if budget <= 0 {
			fmt.Printf("%-18s  %8s   %11s  %9s  REJECT (prefill alone misses)\n",
				r.name, r.deadline, "-", "-")
			continue
		}
		// L1 adheres to the budget; serve through the engine with the
		// hard cap as the output length (worst case).
		gen, err := dep.Generate(r.prompt, budget)
		if err != nil {
			log.Fatal(err)
		}
		ok := gen.TotalTime() <= r.deadline.Seconds()
		if ok {
			met++
		}
		fmt.Printf("%-18s  %8s   %11d  %9.2f  %v\n",
			r.name, r.deadline, budget, gen.TotalTime(), ok)
	}
	fmt.Printf("\nDeadline hit rate: %d/%d (worst-case budgets)\n", met, len(workload))

	// Show the accuracy price of each deadline via the interpolated
	// budget-accuracy curve on MMLU-Redux.
	fmt.Println("\nAccuracy attainable per deadline (L1, MMLU-Redux):")
	for _, d := range []time.Duration{500 * time.Millisecond, 2 * time.Second, 8 * time.Second} {
		budget := dep.MaxTokensWithin(128, d)
		if budget <= 0 {
			fmt.Printf("  %8s: infeasible\n", d)
			continue
		}
		res, err := dep.Evaluate(edgereasoning.MMLURedux, edgereasoning.Hard(budget), 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %8s: %4d-token budget -> %.1f%% accuracy\n", d, budget, res.Accuracy*100)
	}
}
