// Command edgeplan answers the paper's motivating question from Fig 1:
// given a latency budget, which {model, token-control, parallel-scaling}
// recipe maximizes accuracy on the Jetson AGX Orin?
//
// Usage:
//
//	edgeplan -latency 20s                  # plan for MMLU-Redux at 20s
//	edgeplan -latency 500ms -bench mmlu-redux
//	edgeplan -frontier                     # print the Pareto frontier
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"edgereasoning"
)

func main() {
	latency := flag.Duration("latency", 20*time.Second, "per-question latency budget")
	bench := flag.String("bench", string(edgereasoning.MMLURedux), "benchmark (mmlu-redux, mmlu, naturalplan-*)")
	frontier := flag.Bool("frontier", false, "print the full accuracy-latency Pareto frontier")
	tokens := flag.Bool("tokens", false, "also print per-model max token budgets for the deadline")
	flag.Parse()

	if err := run(*latency, edgereasoning.Benchmark(*bench), *frontier, *tokens); err != nil {
		fmt.Fprintln(os.Stderr, "edgeplan:", err)
		os.Exit(1)
	}
}

func run(budget time.Duration, bench edgereasoning.Benchmark, showFrontier, showTokens bool) error {
	platform := edgereasoning.NewOrinPlatform()

	if showFrontier {
		front, err := platform.Frontier(bench)
		if err != nil {
			return err
		}
		fmt.Printf("Pareto frontier on %s (%s):\n", bench, platform.DeviceName())
		for _, r := range front {
			fmt.Printf("  %7.2fs  %5.1f%%  $%.3f/1M  %s\n", r.Latency, r.Accuracy*100, r.CostPerM, r.Label())
		}
		return nil
	}

	recipe, ok, err := platform.PlanRecipe(bench, budget)
	if err != nil {
		return err
	}
	if !ok {
		fmt.Printf("No recipe meets %s on %s — even the fastest configuration is slower.\n", budget, bench)
		return nil
	}
	fmt.Printf("Optimal recipe @ %s on %s:\n", budget, bench)
	fmt.Printf("  recipe:    %s\n", recipe.Label())
	fmt.Printf("  accuracy:  %.1f%%\n", recipe.Accuracy*100)
	fmt.Printf("  latency:   %.2fs per question (modeled)\n", recipe.Latency)
	fmt.Printf("  energy:    %.0f J per question\n", recipe.EnergyPerQ)
	fmt.Printf("  cost:      $%.3f per 1M tokens\n", recipe.CostPerM)
	if recipe.Interpolated {
		fmt.Println("  note:      rests on interpolated calibration (not a paper-tabulated cell)")
	}

	if showTokens {
		fmt.Println("\nMax decodable tokens within the deadline (Eqn 3 inverted):")
		for _, id := range []edgereasoning.ModelID{
			edgereasoning.DSR1Qwen1_5B, edgereasoning.DSR1Llama8B, edgereasoning.DSR1Qwen14B,
		} {
			dep, err := platform.Deploy(id)
			if err != nil {
				return err
			}
			fmt.Printf("  %-18s %6d tokens\n", id, dep.MaxTokensWithin(180, budget))
		}
	}
	return nil
}
