// Package model describes the transformer architectures the paper deploys
// and derives the quantities the simulator needs from first principles:
// parameter counts, weight bytes, KV-cache bytes, and per-phase FLOP and
// memory-traffic costs. Architecture geometry (layer counts, hidden sizes,
// GQA head counts, vocabularies) matches the public model cards of the
// DeepSeek-R1 distills and the non-reasoning baselines, so derived numbers
// like "16.06 GB of FP16 weights for DSR1-Llama-8B" fall out of the
// geometry rather than being hard-coded.
package model

import "fmt"

// DType is a weight/activation storage format.
type DType int

const (
	// FP16 stores weights in 16-bit floats (the paper's base precision).
	FP16 DType = iota
	// W4A16 stores weights in 4 bits with FP16 activations (LLM-Compressor
	// AWQ, §V-F). Group-wise scales add ~6% overhead on top of the packed
	// weights; on Orin's Ampere GPU compute falls back to INT8/FP16 since
	// the architecture has no INT4 tensor-core path.
	W4A16
	// FP32 stores weights in 32-bit floats (used by the AIME cost study).
	FP32
)

// String returns the conventional name of the format.
func (d DType) String() string {
	switch d {
	case FP16:
		return "fp16"
	case W4A16:
		return "w4a16"
	case FP32:
		return "fp32"
	default:
		return fmt.Sprintf("dtype(%d)", int(d))
	}
}

// BytesPerParam returns the storage cost of one weight in this format,
// including quantization-scale overhead for W4A16.
func (d DType) BytesPerParam() float64 {
	switch d {
	case FP16:
		return 2
	case W4A16:
		return 0.53125 // 4 bits packed + FP16 scale per 32-weight group
	case FP32:
		return 4
	default:
		return 2
	}
}

// Arch is the geometric description of a decoder-only transformer.
type Arch struct {
	Name     string
	Layers   int
	Hidden   int // model (embedding) dimension
	Heads    int // query heads
	KVHeads  int // key/value heads (GQA)
	HeadDim  int // per-head dimension
	Inter    int // FFN intermediate dimension (gated MLP: gate+up+down)
	Vocab    int
	TiedEmbd bool // lm_head shares the embedding matrix
	AttnBias bool // Qwen-style QKV biases
}

// Validate reports whether the geometry is self-consistent.
func (a Arch) Validate() error {
	switch {
	case a.Name == "":
		return fmt.Errorf("model: arch missing name")
	case a.Layers <= 0 || a.Hidden <= 0 || a.Heads <= 0 || a.KVHeads <= 0:
		return fmt.Errorf("model: %s: non-positive dimension", a.Name)
	case a.HeadDim <= 0 || a.Inter <= 0 || a.Vocab <= 0:
		return fmt.Errorf("model: %s: non-positive dimension", a.Name)
	case a.Heads%a.KVHeads != 0:
		return fmt.Errorf("model: %s: Heads (%d) not divisible by KVHeads (%d)", a.Name, a.Heads, a.KVHeads)
	}
	return nil
}

// AttnParams returns the attention parameter count of one layer:
// Q, O projections at full width plus GQA-narrowed K, V projections.
func (a Arch) AttnParams() int64 {
	qWidth := int64(a.Heads) * int64(a.HeadDim)
	kvWidth := int64(a.KVHeads) * int64(a.HeadDim)
	h := int64(a.Hidden)
	p := h*qWidth + // Q
		2*h*kvWidth + // K, V
		qWidth*h // O
	if a.AttnBias {
		p += qWidth + 2*kvWidth
	}
	return p
}

// MLPParams returns the gated-MLP parameter count of one layer
// (gate, up, down projections).
func (a Arch) MLPParams() int64 {
	return 3 * int64(a.Hidden) * int64(a.Inter)
}

// EmbeddingParams returns the token embedding (and untied LM head)
// parameter count.
func (a Arch) EmbeddingParams() int64 {
	e := int64(a.Vocab) * int64(a.Hidden)
	if !a.TiedEmbd {
		e *= 2
	}
	return e
}

// ParamCount returns the total parameter count, including the small
// RMSNorm vectors (2 per layer plus the final norm).
func (a Arch) ParamCount() int64 {
	perLayer := a.AttnParams() + a.MLPParams() + 2*int64(a.Hidden)
	return int64(a.Layers)*perLayer + a.EmbeddingParams() + int64(a.Hidden)
}

// WeightBytes returns the resident weight footprint in the given format.
func (a Arch) WeightBytes(dt DType) int64 {
	return int64(float64(a.ParamCount()) * dt.BytesPerParam())
}

// KVBytesPerToken returns the KV-cache growth per generated or prefilled
// token. KV entries stay in FP16 for all formats the paper evaluates.
func (a Arch) KVBytesPerToken() int64 {
	return 2 /*K+V*/ * int64(a.Layers) * int64(a.KVHeads) * int64(a.HeadDim) * 2 /*fp16*/
}

// PrefillFLOPs returns the floating-point work to prefill n prompt tokens:
// 2·params per token for the dense projections plus the quadratic
// attention term (QKᵀ and attention·V, causal ≈ half the full square,
// but kernels compute the full rectangle on padded tiles — we charge the
// full square as CUTLASS does).
func (a Arch) PrefillFLOPs(n int) float64 {
	if n <= 0 {
		return 0
	}
	nn := float64(n)
	dense := 2 * float64(a.ParamCount()-a.EmbeddingParams()/denseEmbdDivisor(a)) * nn
	attn := 4 * float64(a.Layers) * nn * nn * float64(a.Heads) * float64(a.HeadDim)
	return dense + attn
}

// denseEmbdDivisor discounts the embedding lookup (gather, not matmul) but
// keeps the LM head GEMM. Tied models run the head once, untied models
// hold both matrices but still multiply only one.
func denseEmbdDivisor(a Arch) int64 {
	if a.TiedEmbd {
		return 1 // single matrix: charged once as the LM head
	}
	return 2 // of embed+head, only the head multiplies
}

// DecodeFLOPs returns the floating-point work to generate one token at the
// given context length: 2·params dense work plus linear attention reads.
func (a Arch) DecodeFLOPs(context int) float64 {
	dense := 2 * float64(a.ParamCount()-a.EmbeddingParams()/denseEmbdDivisor(a))
	attn := 4 * float64(a.Layers) * float64(context) * float64(a.KVHeads) * float64(a.HeadDim)
	return dense + attn
}

// DecodeReadBytes returns the bytes a decode step must stream: the full
// weight set (batch-amortized by the caller) plus this sequence's KV cache.
func (a Arch) DecodeReadBytes(dt DType, context int) int64 {
	return a.WeightBytes(dt) + int64(context)*a.KVBytesPerToken()
}

// PrefillReadBytes returns the bytes a prefill pass streams: one weight
// read (token-parallel reuse) plus activations traffic approximated by the
// KV writes.
func (a Arch) PrefillReadBytes(dt DType, n int) int64 {
	return a.WeightBytes(dt) + int64(n)*a.KVBytesPerToken()
}
