package telemetry

import "sort"

// RequestPhases is one served request's end-to-end latency decomposed
// from its trace spans. The phases tile [Arrival, Finish] exactly:
//
//	Ingress + RetryWait + AbortedWall + ReplicaWait
//	  + Stall + Restore + Prefill + Decode + Gap  ==  Finish − Arrival
//
// (up to float re-summation; Residual reports the difference). Gap is
// the time inside the serving window not attributable to the request's
// own phases — batchmate prefills and admission work interleaved by
// continuous batching.
type RequestPhases struct {
	ID       string
	Track    string  // replica that served the final attempt
	Arrival  float64 // original arrival (first queue span start)
	Finish   float64 // final attempt completion
	Attempts int     // crash-aborted attempts before the served one
	// Phase sums in simulated seconds.
	Ingress     float64 // shared-ingress queue wait, all attempts
	RetryWait   float64 // crash-to-re-admission backoff windows
	AbortedWall float64 // dispatch-to-crash wall time of destroyed attempts
	LostWork    float64 // estimated executed-and-thrown-away service seconds
	ReplicaWait float64 // engine-local ready-queue wait before admission
	Stall       float64
	Restore     float64
	Prefill     float64
	Decode      float64
	Gap         float64
	CachedTok   int // prompt tokens served from the prefix cache
}

// E2E is the request's end-to-end latency.
func (r RequestPhases) E2E() float64 { return r.Finish - r.Arrival }

// Residual is E2E minus the phase sum — float rounding noise when the
// trace is consistent, something structural when it is not.
func (r RequestPhases) Residual() float64 {
	return r.E2E() - (r.Ingress + r.RetryWait + r.AbortedWall + r.ReplicaWait +
		r.Stall + r.Restore + r.Prefill + r.Decode + r.Gap)
}

// Breakdown folds the trace's spans into per-request phase
// decompositions for every request that completed (has a KindRequest
// span), sorted by (arrival, ID). Requests that were dropped — never
// served — are not included.
func (t *Trace) Breakdown() []RequestPhases {
	byID := map[string]*RequestPhases{}
	get := func(id string) *RequestPhases {
		rp, ok := byID[id]
		if !ok {
			rp = &RequestPhases{ID: id, Arrival: -1}
			byID[id] = rp
		}
		return rp
	}
	served := map[string]bool{}
	for _, tr := range t.Tracks() {
		for _, s := range tr.Spans() {
			if s.ID == "" {
				continue
			}
			rp := get(s.ID)
			switch s.Kind {
			case KindQueue:
				rp.Ingress += s.Dur()
				if s.Attempt == 0 {
					rp.Arrival = s.Start
				}
			case KindRetryWait:
				rp.RetryWait += s.Dur()
			case KindAborted:
				rp.AbortedWall += s.Dur()
				rp.LostWork += s.Lost
				rp.Attempts++
			case KindRequest:
				served[s.ID] = true
				rp.Track = tr.Name()
				rp.Finish = s.End
				rp.ReplicaWait = s.Wait
				rp.CachedTok = s.Cached
				// Gap starts as the full serving window; the request's own
				// phase children below subtract themselves out.
				rp.Gap += s.Dur()
			case KindStall:
				rp.Stall += s.Dur()
				rp.Gap -= s.Dur()
			case KindRestore:
				rp.Restore += s.Dur()
				rp.Gap -= s.Dur()
			case KindPrefill:
				rp.Prefill += s.Dur()
				rp.Gap -= s.Dur()
			case KindDecode:
				rp.Decode += s.Dur()
				rp.Gap -= s.Dur()
			}
		}
	}
	out := make([]RequestPhases, 0, len(served))
	for id, rp := range byID {
		if !served[id] {
			continue
		}
		if rp.Arrival < 0 {
			// No ingress span (engine-only trace): the serving window is
			// the whole story; arrival backs out of the replica wait.
			rp.Arrival = rp.Finish - (rp.Gap + rp.Stall + rp.Restore + rp.Prefill + rp.Decode) - rp.ReplicaWait
		}
		out = append(out, *rp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Arrival != out[j].Arrival {
			return out[i].Arrival < out[j].Arrival
		}
		return out[i].ID < out[j].ID
	})
	return out
}
