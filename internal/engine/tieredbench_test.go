// Tiered-serving benchmark: external test package for the same
// import-cycle reason as sessionbench_test.go.
package engine_test

import (
	"testing"

	"edgereasoning/internal/engine"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/model"
	"edgereasoning/internal/session"
)

// BenchmarkTieredServe is BenchmarkSessionServe on a starved device
// cache with the host-DRAM tier attached, tracked in BENCH_serve.json:
// the session stream overflows 192 device blocks, so the run demotes
// and promotes continuously — the steady state a memory-tight edge
// deployment lives in. CI gates allocs/op via scripts/bench.sh +
// cmd/benchcheck.
func BenchmarkTieredServe(b *testing.B) {
	reqs, err := session.Generate(session.AgentLoop(8, 4, 2), 7)
	if err != nil {
		b.Fatal(err)
	}
	spec := model.MustLookup(model.DSR1Qwen1_5B)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, err := engine.New(engine.Config{
			Spec: spec, Device: hw.JetsonAGXOrin64GB(), PrefixCache: true,
			DeviceBlocks: 192, HostTierBlocks: 1024,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		sm, err := e.Serve(reqs, 8, engine.FCFS)
		if err != nil {
			b.Fatal(err)
		}
		if sm.Served != len(reqs) {
			b.Fatalf("served %d of %d", sm.Served, len(reqs))
		}
		if pm := e.PrefixMetrics(); pm.Promotions == 0 {
			b.Fatal("tiered run never promoted")
		}
	}
}
