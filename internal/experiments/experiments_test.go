package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func quickOpts() Options { return Options{Seed: 7, Quick: true} }

// runOne executes a driver and sanity-checks the artifacts render.
func runOne(t *testing.T, id string) []Table {
	t.Helper()
	tables, err := Run(id, quickOpts())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tables) == 0 {
		t.Fatalf("%s: no tables", id)
	}
	for _, tb := range tables {
		if tb.ID == "" || tb.Title == "" || len(tb.Columns) == 0 {
			t.Errorf("%s: malformed table %+v", id, tb)
		}
		if len(tb.Rows) == 0 {
			t.Errorf("%s/%s: empty table", id, tb.ID)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Columns) {
				t.Errorf("%s/%s: row width %d != %d columns", id, tb.ID, len(row), len(tb.Columns))
			}
		}
		var buf bytes.Buffer
		if err := tb.Render(&buf); err != nil {
			t.Errorf("%s/%s: render: %v", id, tb.ID, err)
		}
		if err := tb.WriteCSV(&buf); err != nil {
			t.Errorf("%s/%s: csv: %v", id, tb.ID, err)
		}
	}
	return tables
}

func TestAllExperimentsRun(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) { runOne(t, id) })
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("fig99", quickOpts()); err == nil {
		t.Error("unknown id must error")
	}
}

func TestIDsCoverEveryPaperArtifact(t *testing.T) {
	want := []string{
		"fig1", "table2", "table3", "fig2", "fig3", "table6", "table7",
		"fig4", "fig5", "table8", "fig6", "fig7", "fig8", "table10",
		"table11", "fig9", "fig10", "quant", "table9", "table12",
		"naturalplan", "cpu", "pareto",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
}

// cellFloat parses a numeric cell.
func cellFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

// findTable locates a sub-table by ID.
func findTable(t *testing.T, tables []Table, id string) Table {
	t.Helper()
	for _, tb := range tables {
		if tb.ID == id {
			return tb
		}
	}
	t.Fatalf("table %s not produced", id)
	return Table{}
}

// Table II content check: reasoning models are more accurate but far
// slower than direct models of comparable size.
func TestTable2Orderings(t *testing.T) {
	tb := findTable(t, runOne(t, "table2"), "table2")
	get := func(name string) []float64 {
		for _, row := range tb.Rows {
			if row[0] == name {
				return []float64{cellFloat(t, row[1]), cellFloat(t, row[2])}
			}
		}
		t.Fatalf("row %q missing", name)
		return nil
	}
	dsr14 := get("DSR1-Qwen-14B")
	llama := get("Llama3.1-8B-it")
	dsr8 := get("DSR1-Llama-8B")
	if dsr14[0] <= llama[0] {
		t.Errorf("14B reasoning accuracy (%.1f) must beat direct Llama (%.1f)", dsr14[0], llama[0])
	}
	if dsr8[1] < 10*llama[1] {
		t.Errorf("reasoning 8B time (%.1fs) must dwarf direct 8B (%.1fs): paper reports >20x", dsr8[1], llama[1])
	}
}

// Table III content check: batching collapses cost per token.
func TestTable3BatchingEconomics(t *testing.T) {
	tb := findTable(t, runOne(t, "table3"), "table3")
	var price1, price30 float64
	for _, row := range tb.Rows {
		if row[0] == "price_output_per_1M" {
			price1 = cellFloat(t, row[2])
			price30 = cellFloat(t, row[3])
		}
	}
	if price1 <= 0 || price30 <= 0 {
		t.Fatal("prices missing")
	}
	if price30 >= price1/3 {
		t.Errorf("batch-30 price (%.3f) should collapse vs batch-1 (%.3f); paper: 0.027 vs 0.302", price30, price1)
	}
	// Edge batch-1 must still be far under cloud's $60/M.
	if price1 > 2 {
		t.Errorf("edge price %.3f per 1M implausible", price1)
	}
}

// Fig 9 content check: accuracy rises with SF at the 128 budget.
func TestFig9ScalingShape(t *testing.T) {
	tables := runOne(t, "fig9")
	tb := findTable(t, tables, "fig9a")
	acc := map[string]map[int]float64{}
	for _, row := range tb.Rows {
		m := row[0]
		sf := int(cellFloat(t, row[1]))
		if acc[m] == nil {
			acc[m] = map[int]float64{}
		}
		acc[m][sf] = cellFloat(t, row[2])
	}
	for _, m := range []string{"dsr1-llama-8b", "dsr1-qwen-14b"} {
		if acc[m][32] <= acc[m][1] {
			t.Errorf("%s: SF32 (%.1f) should beat SF1 (%.1f) at 128 budget", m, acc[m][32], acc[m][1])
		}
	}
}

// Fig 10 content check: latency and power rise with SF but sublinearly.
func TestFig10ParallelShape(t *testing.T) {
	tb := findTable(t, runOne(t, "fig10"), "fig10")
	lat := map[string]map[int]float64{}
	pow := map[string]map[int]float64{}
	for _, row := range tb.Rows {
		m, sf := row[0], int(cellFloat(t, row[1]))
		if lat[m] == nil {
			lat[m], pow[m] = map[int]float64{}, map[int]float64{}
		}
		lat[m][sf] = cellFloat(t, row[2])
		pow[m][sf] = cellFloat(t, row[4])
	}
	for m := range lat {
		if lat[m][32] <= lat[m][1] {
			t.Errorf("%s: decode latency must rise with SF", m)
		}
		if lat[m][32] > 3*lat[m][1] {
			t.Errorf("%s: SF32 latency %.1fx of SF1; paper reports ~2x at SF64", m, lat[m][32]/lat[m][1])
		}
		if pow[m][32] <= pow[m][1] {
			t.Errorf("%s: power must rise with SF", m)
		}
	}
}

// Pareto regimes: the fast regime is served by small models, the open
// regime by the 14B.
func TestParetoRegimeContents(t *testing.T) {
	tables := runOne(t, "pareto")
	rt := findTable(t, tables, "regimes")
	if len(rt.Rows) < 2 {
		t.Fatal("expected at least 2 regimes")
	}
	last := rt.Rows[len(rt.Rows)-1]
	if !strings.Contains(last[1], "14B") {
		t.Errorf("open-ended regime won by %q, expected a 14B recipe", last[1])
	}
}

// Table 10 includes all three families.
func TestTable10Families(t *testing.T) {
	tb := findTable(t, runOne(t, "table10"), "table10")
	fam := map[string]int{}
	for _, row := range tb.Rows {
		fam[row[0]]++
	}
	if fam["Base"] < 4 || fam["Quantized"] < 3 || fam["Direct"] < 3 {
		t.Errorf("family counts wrong: %v", fam)
	}
}

// CPU tables: the GPU wins every cell.
func TestCPUAlwaysSlower(t *testing.T) {
	for _, tb := range runOne(t, "cpu") {
		for _, row := range tb.Rows {
			speedup := cellFloat(t, row[4])
			if speedup <= 1 {
				t.Errorf("%s: GPU speedup %.2f <= 1 in row %v", tb.ID, speedup, row)
			}
		}
	}
}

func TestOptionsSample(t *testing.T) {
	full := Options{Seed: 1}
	if full.sample(3000) != 3000 {
		t.Error("full options must not subsample")
	}
	q := Options{Seed: 1, Quick: true}
	if got := q.sample(3000); got != 300 {
		t.Errorf("quick sample = %d, want 300", got)
	}
	if got := q.sample(100); got != 100 {
		t.Errorf("quick sample of small bank = %d, want 100", got)
	}
}
