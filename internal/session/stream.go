package session

import (
	"container/heap"
	"fmt"

	"edgereasoning/internal/engine"
	"edgereasoning/internal/stats"
)

// Source streams the merged session stream lazily. Sessions activate
// only when simulated time reaches their Poisson start and are dropped
// as soon as their last request is emitted, so live memory scales with
// the concurrently-active session population (start rate × session
// duration), not the total session count. The emitted order is
// element-identical to Generate's stable sort: a k-way merge keyed
// (arrival, session index), exploiting that session starts are monotone
// and each session's requests are non-decreasing in arrival.
type Source struct {
	p      Profile
	seed   uint64
	shared *stats.RNG
	system []uint64
	// nextSI / nextStart identify the first not-yet-activated session and
	// its already-drawn Poisson start.
	nextSI    int
	nextStart float64
	cursors   cursorHeap
}

// cursor walks one activated session's request list.
type cursor struct {
	reqs []engine.TimedRequest
	pos  int
	si   int
}

// cursorHeap is a min-heap on (head arrival, session index). Session
// indices are unique across cursors, so the order is total and the merge
// reproduces the stable sort's tie-breaking exactly.
type cursorHeap []*cursor

func (h cursorHeap) Len() int { return len(h) }
func (h cursorHeap) Less(i, j int) bool {
	ai, aj := h[i].reqs[h[i].pos].Arrival, h[j].reqs[h[j].pos].Arrival
	if ai != aj {
		return ai < aj
	}
	return h[i].si < h[j].si
}
func (h cursorHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *cursorHeap) Push(x interface{}) { *h = append(*h, x.(*cursor)) }
func (h *cursorHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return c
}

// NewSource validates the profile and prepares the lazily-merged stream.
// Determinism is (profile, seed), exactly as for Generate.
func NewSource(p Profile, seed uint64) (*Source, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	shared := stats.NewRNG(seed, fmt.Sprintf("session/shared/n%d", p.Sessions))
	system := make([]uint64, p.SystemPromptTokens)
	for i := range system {
		system[i] = symOf(shared)
	}
	s := &Source{p: p, seed: seed, shared: shared, system: system}
	// Session starts follow a Poisson process on the shared stream; the
	// first start is drawn eagerly so activation can compare against it.
	s.nextStart = expSample(shared, 1/p.StartRate)
	return s, nil
}

// activate materializes every session whose start could precede (or tie
// with — larger session indices lose ties anyway) the current merge head.
func (s *Source) activate() {
	for s.nextSI < s.p.Sessions &&
		(len(s.cursors) == 0 || s.nextStart <= s.cursors[0].reqs[s.cursors[0].pos].Arrival) {
		rng := stats.NewRNG(s.seed, fmt.Sprintf("session/%d", s.nextSI))
		reqs := generateSession(s.p, s.nextSI, s.nextStart, s.system, rng)
		if len(reqs) > 0 {
			heap.Push(&s.cursors, &cursor{reqs: reqs, si: s.nextSI})
		}
		s.nextSI++
		if s.nextSI < s.p.Sessions {
			s.nextStart += expSample(s.shared, 1/s.p.StartRate)
		}
	}
}

// Next yields the globally next request across all sessions.
func (s *Source) Next() (engine.TimedRequest, bool) {
	s.activate()
	if len(s.cursors) == 0 {
		return engine.TimedRequest{}, false
	}
	c := s.cursors[0]
	tr := c.reqs[c.pos]
	c.pos++
	if c.pos >= len(c.reqs) {
		heap.Pop(&s.cursors) // session drained; release its requests
	} else {
		heap.Fix(&s.cursors, 0)
	}
	return tr, true
}
