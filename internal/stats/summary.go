package stats

import (
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics. An empty input yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Percentile(xs, 50)
	return s
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of the slice.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between closest ranks. The input need not be sorted.
//
// Guards: non-finite samples (NaN, ±Inf) are ignored — they would
// otherwise poison the sort and the interpolation; an input with no
// finite samples returns 0 (matching the empty-input convention); p is
// clamped to [0, 100]; a NaN p returns NaN. With at least one finite
// sample and a finite p the result is always finite and lies within
// [min, max] of the finite samples (the fuzz target in fuzz_test.go
// holds this contract).
func Percentile(xs []float64, p float64) float64 {
	sorted := sortedFinite(xs)
	return percentileSorted(sorted, p)
}

// Percentiles returns the percentile for each p over a single sort of the
// input — the multi-quantile call sites (P50/P95/P99 reporting) pay one
// O(n log n) pass instead of one per quantile. Each element follows the
// same guarded contract as Percentile.
func Percentiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	sorted := sortedFinite(xs)
	for i, p := range ps {
		out[i] = percentileSorted(sorted, p)
	}
	return out
}

// Percentiles3 returns the 50th, 95th, and 99th percentiles — the
// latency triple every serving fold reports — without allocating a
// result slice. Values are identical to Percentiles(xs, 50, 95, 99).
func Percentiles3(xs []float64) (p50, p95, p99 float64) {
	sorted := sortedFinite(xs)
	return percentileSorted(sorted, 50), percentileSorted(sorted, 95), percentileSorted(sorted, 99)
}

// sortedFinite returns a sorted copy of the finite samples in xs.
func sortedFinite(xs []float64) []float64 {
	sorted := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			sorted = append(sorted, x)
		}
	}
	sort.Float64s(sorted)
	return sorted
}

// percentileSorted interpolates the p-th percentile over pre-sorted
// finite samples.
func percentileSorted(sorted []float64, p float64) float64 {
	if math.IsNaN(p) {
		return math.NaN()
	}
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MAPE returns the mean absolute percentage error between predictions and
// actuals, expressed as a fraction (0.02 == 2%). Pairs with a zero actual
// are skipped; mismatched lengths or no valid pairs return NaN.
func MAPE(predicted, actual []float64) float64 {
	if len(predicted) != len(actual) {
		return math.NaN()
	}
	sum, n := 0.0, 0
	for i := range actual {
		if actual[i] == 0 {
			continue
		}
		sum += math.Abs((predicted[i] - actual[i]) / actual[i])
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// RSquared returns the coefficient of determination of predictions against
// actuals. A constant actual vector returns NaN.
func RSquared(predicted, actual []float64) float64 {
	if len(predicted) != len(actual) || len(actual) == 0 {
		return math.NaN()
	}
	mean := Mean(actual)
	ssRes, ssTot := 0.0, 0.0
	for i := range actual {
		r := actual[i] - predicted[i]
		ssRes += r * r
		d := actual[i] - mean
		ssTot += d * d
	}
	if ssTot == 0 {
		return math.NaN()
	}
	return 1 - ssRes/ssTot
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
// n < 2 returns []float64{lo}.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}
