// Command edgereasoning regenerates the paper's tables and figures on the
// simulated Jetson AGX Orin platform.
//
// Usage:
//
//	edgereasoning list                 # show available experiment IDs
//	edgereasoning run <id> [flags]     # run one experiment
//	edgereasoning all [flags]          # run the full suite
//	edgereasoning fleet [flags]        # heterogeneous-fleet serving sweep
//	edgereasoning sessions [flags]     # multi-turn agentic serving study
//	edgereasoning tiering [flags]      # host-DRAM KV tier vs device-cache size
//	edgereasoning autoscale [flags]    # elastic fleet + ingress admission study
//	edgereasoning saturate [flags]     # saturation-knee capacity analysis
//	edgereasoning drills [flags]       # fault-injection outage drills
//	edgereasoning soak [flags]         # streamed large-N soak (sim-events/sec)
//	edgereasoning trace [flags]        # faulted autoscaled run with telemetry export
//	edgereasoning sweep <id> [flags]   # fan one experiment across seeds
//
// Flags:
//
//	-seed N       random seed (default 7; mutually exclusive with -seeds)
//	-quick        subsample the large banks (fast smoke runs)
//	-csv DIR      also write each table as DIR/<table-id>.csv
//	-parallel N   worker count (default GOMAXPROCS)
//	-timeout D    per-driver timeout, e.g. 90s (default none)
//	-metrics      print per-driver wall time and table counts to stderr
//	-cpuprofile F write a CPU profile of the run to F
//	-memprofile F write a heap profile at exit to F
//	-seeds LIST   comma-separated seeds (sweep only; default 1..8)
//	-replicas N   fleet size (fleet only; default 4)
//	-devices L    comma-separated device cycle (fleet and autoscale)
//	-policy P     routing policy or "all" (fleet and sessions)
//	-qps Q        offered load in requests/s (fleet; autoscale background load)
//	-sessions N   concurrent sessions (sessions and tiering; default 10)
//	-turns N      agent-loop turns per session (sessions and tiering; default 5)
//	-branch N     parallel think samples at branch turns (sessions and tiering; default 2)
//	-device-blocks L comma-separated device-cache sweep in blocks (tiering only; default 192,384,768)
//	-host-blocks N   host-tier capacity in blocks (tiering only; default 1024)
//	-bw B            host-link bandwidth in bytes/s (tiering only; default 16e9)
//	-min N        autoscale pool floor (autoscale only; default 1)
//	-max N        autoscale pool ceiling (autoscale only; default 6)
//	-admission D  ingress discipline: fifo | edf | sjf | shed (autoscale only)
//	-scale-on S   scale-up signals: depth | miss | both (autoscale only)
//	-replicas N   drills: pool size under fault injection (default 3)
//	-restart X    drills: crash restart delay in seconds (default 5)
//	-slo X        saturate: p99 bound in seconds, or hitrate floor in [0,1]
//	-metric M     saturate: p99 | hitrate (default p99)
//	-requests N   saturate: requests per probe; soak: requests to stream (1e6)
//	-out F        trace: Chrome trace-event JSON output path (default trace.json)
//	-metrics-out F trace: Prometheus text-format snapshot output path
//
// Experiments run on a worker pool but the report is emitted in registry
// order, so output is byte-identical at any parallelism.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"edgereasoning/internal/engine"
	"edgereasoning/internal/experiments"
	"edgereasoning/internal/fleet"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/model"
	"edgereasoning/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "edgereasoning:", err)
		os.Exit(1)
	}
}

// config is the parsed flag set for one invocation.
type config struct {
	opts       experiments.Options
	csvDir     string
	parallel   int
	timeout    time.Duration
	metrics    bool
	cpuProfile string
	memProfile string
	seeds      []uint64
	// seedSet / seedsSet record which of the mutually-exclusive seed
	// flags the user passed, so the wrong one for a command is rejected
	// instead of silently ignored.
	seedSet  bool
	seedsSet bool
}

func (c config) runnerOptions() experiments.RunnerOptions {
	return experiments.RunnerOptions{Parallelism: c.parallel, Timeout: c.timeout}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing command")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "list":
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	case "run":
		if len(rest) == 0 {
			return fmt.Errorf("run: missing experiment id")
		}
		cfg, err := parseFlags(rest[1:], false, false, false, false, false, false)
		if err != nil {
			return err
		}
		if cfg.seedsSet {
			return fmt.Errorf("run: -seeds only applies to sweep (use -seed)")
		}
		return execute([]string{rest[0]}, cfg)
	case "all":
		cfg, err := parseFlags(rest, false, false, false, false, false, false)
		if err != nil {
			return err
		}
		if cfg.seedsSet {
			return fmt.Errorf("all: -seeds only applies to sweep (use -seed)")
		}
		return execute(experiments.IDs(), cfg)
	case "fleet":
		cfg, err := parseFlags(rest, true, false, false, false, false, false)
		if err != nil {
			return err
		}
		if cfg.seedsSet {
			return fmt.Errorf("fleet: -seeds only applies to sweep (use -seed)")
		}
		return execute([]string{"fleet"}, cfg)
	case "sessions":
		cfg, err := parseFlags(rest, false, true, false, false, false, false)
		if err != nil {
			return err
		}
		if cfg.seedsSet {
			return fmt.Errorf("sessions: -seeds only applies to sweep (use -seed)")
		}
		return execute([]string{"sessions"}, cfg)
	case "tiering":
		cfg, err := parseFlags(rest, false, false, false, false, true, false)
		if err != nil {
			return err
		}
		if cfg.seedsSet {
			return fmt.Errorf("tiering: -seeds only applies to sweep (use -seed)")
		}
		return execute([]string{"tiering"}, cfg)
	case "autoscale":
		cfg, err := parseFlags(rest, false, false, true, false, false, false)
		if err != nil {
			return err
		}
		if cfg.seedsSet {
			return fmt.Errorf("autoscale: -seeds only applies to sweep (use -seed)")
		}
		return execute([]string{"autoscale"}, cfg)
	case "saturate":
		cfg, err := parseFlags(rest, false, false, false, true, false, false)
		if err != nil {
			return err
		}
		if cfg.seedsSet {
			return fmt.Errorf("saturate: -seeds only applies to sweep (use -seed)")
		}
		return execute([]string{"saturate"}, cfg)
	case "drills":
		cfg, err := parseFlags(rest, false, false, false, false, false, true)
		if err != nil {
			return err
		}
		if cfg.seedsSet {
			return fmt.Errorf("drills: -seeds only applies to sweep (use -seed)")
		}
		return execute([]string{"drills"}, cfg)
	case "soak":
		return soak(rest)
	case "trace":
		return traceCmd(rest)
	case "sweep":
		if len(rest) == 0 {
			return fmt.Errorf("sweep: missing experiment id")
		}
		cfg, err := parseFlags(rest[1:], false, false, false, false, false, false)
		if err != nil {
			return err
		}
		if cfg.seedSet {
			return fmt.Errorf("sweep: -seed does not apply to sweep; pass the seeds via -seeds")
		}
		return sweep(rest[0], cfg)
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// parseFlags parses the shared flag set; withFleet, withSessions,
// withAutoscale, withSaturate, withTiering, and withDrills additionally
// register their subcommands' knobs.
func parseFlags(args []string, withFleet, withSessions, withAutoscale, withSaturate, withTiering, withDrills bool) (config, error) {
	fs := flag.NewFlagSet("edgereasoning", flag.ContinueOnError)
	seed := fs.Uint64("seed", 7, "random seed")
	quick := fs.Bool("quick", false, "subsample large banks")
	csvDir := fs.String("csv", "", "directory for CSV output")
	parallel := fs.Int("parallel", 0, "worker count (0 = GOMAXPROCS)")
	timeout := fs.Duration("timeout", 0, "per-driver timeout (0 = none)")
	metrics := fs.Bool("metrics", false, "print per-driver metrics to stderr")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile at exit to this file")
	seeds := fs.String("seeds", "", "comma-separated seeds for sweep (default 1..8)")
	var replicas *int
	var devices, policy *string
	var qps *float64
	if withFleet {
		replicas = fs.Int("replicas", 0, "fleet size (0 = driver default of 4)")
		devices = fs.String("devices", "", "comma-separated device cycle (default orin,orin-50w,orin-30w)")
		policy = fs.String("policy", "all", "routing policy (round-robin, least-queue, latency-weighted, deadline-aware, all)")
		qps = fs.Float64("qps", 0, "offered load in requests/s (0 = driver default)")
	}
	var sessionCount, sessionTurns, sessionBranch *int
	var sessionPolicy *string
	if withSessions || withTiering {
		sessionCount = fs.Int("sessions", 0, "concurrent sessions (0 = driver default of 10)")
		sessionTurns = fs.Int("turns", 0, "agent-loop turns per session (0 = driver default of 5)")
		sessionBranch = fs.Int("branch", 0, "parallel think samples at branch turns (0 = driver default of 2)")
	}
	if withSessions {
		sessionPolicy = fs.String("policy", "all", "affinity-table routing policy (round-robin, least-queue, session-affinity, all)")
	}
	var tierDeviceBlocks *string
	var tierHostBlocks *int
	var tierBW *float64
	if withTiering {
		tierDeviceBlocks = fs.String("device-blocks", "", "comma-separated device-cache sweep in blocks (default 192,384,768)")
		tierHostBlocks = fs.Int("host-blocks", 0, "host-tier capacity in blocks (0 = driver default of 1024)")
		tierBW = fs.Float64("bw", 0, "host-link bandwidth in bytes/s (0 = driver default of 16e9)")
	}
	var drillReplicas *int
	var drillRestart *float64
	if withDrills {
		drillReplicas = fs.Int("replicas", 0, "pool size under fault injection (0 = driver default of 3)")
		drillRestart = fs.Float64("restart", 0, "crash restart delay in seconds (0 = driver default of 5)")
		devices = fs.String("devices", "", "comma-separated device cycle (default orin,orin-50w,orin-30w)")
	}
	var satSLO *float64
	var satMetric *string
	var satRequests *int
	if withSaturate {
		satSLO = fs.Float64("slo", 0, "objective: p99 bound in seconds or hit-rate floor in [0,1] (0 = metric default)")
		satMetric = fs.String("metric", "", "saturation metric: p99 | hitrate (default p99)")
		satRequests = fs.Int("requests", 0, "requests offered per probe (0 = driver default of 240)")
		devices = fs.String("devices", "", "comma-separated device cycle (default orin,orin-50w,orin-30w)")
	}
	var autoMin, autoMax *int
	var autoAdmission, autoScaleOn *string
	if withAutoscale {
		autoMin = fs.Int("min", 0, "autoscale pool floor (0 = driver default of 1)")
		autoMax = fs.Int("max", 0, "autoscale pool ceiling (0 = driver default of 6)")
		autoAdmission = fs.String("admission", "", "ingress discipline (fifo, edf, sjf, shed; default fifo)")
		autoScaleOn = fs.String("scale-on", "", "scale-up signals (depth, miss, both; default both)")
		devices = fs.String("devices", "", "comma-separated device cycle (default orin,orin-50w,orin-30w)")
		qps = fs.Float64("qps", 0, "background load in requests/s (0 = driver default of 0.2; the spike is 100x)")
	}
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if fs.NArg() > 0 {
		return config{}, fmt.Errorf("unexpected arguments %q (flags go after the experiment id)", fs.Args())
	}
	cfg := config{
		opts:       experiments.Options{Seed: *seed, Quick: *quick},
		csvDir:     *csvDir,
		parallel:   *parallel,
		timeout:    *timeout,
		metrics:    *metrics,
		cpuProfile: *cpuProfile,
		memProfile: *memProfile,
	}
	if withFleet {
		// Validate the policy spelling here so a typo fails before the
		// fleet spins up its engines.
		if *policy != "" && *policy != "all" {
			if _, err := fleet.ParsePolicy(*policy); err != nil {
				return config{}, err
			}
		}
		if _, err := fleet.ParseDevices(*devices); err != nil {
			return config{}, err
		}
		cfg.opts.FleetReplicas = *replicas
		cfg.opts.FleetDevices = *devices
		cfg.opts.FleetPolicy = *policy
		cfg.opts.FleetQPS = *qps
	}
	if withSessions || withTiering {
		if *sessionCount < 0 || *sessionTurns < 0 || *sessionBranch < 0 {
			return config{}, fmt.Errorf("-sessions, -turns, and -branch must be non-negative")
		}
		cfg.opts.SessionCount = *sessionCount
		cfg.opts.SessionTurns = *sessionTurns
		cfg.opts.SessionBranch = *sessionBranch
	}
	if withSessions {
		if *sessionPolicy != "" && *sessionPolicy != "all" {
			if _, err := fleet.ParsePolicy(*sessionPolicy); err != nil {
				return config{}, err
			}
		}
		cfg.opts.SessionPolicy = *sessionPolicy
	}
	if withTiering {
		// Validate the sweep spelling here so a typo fails before any
		// engine spins up.
		if _, err := experiments.ParseDeviceBlocks(*tierDeviceBlocks); err != nil {
			return config{}, err
		}
		if *tierHostBlocks < 0 {
			return config{}, fmt.Errorf("tiering: -host-blocks must be non-negative")
		}
		if *tierBW < 0 {
			return config{}, fmt.Errorf("tiering: -bw must be non-negative")
		}
		cfg.opts.TierDeviceBlocks = *tierDeviceBlocks
		cfg.opts.TierHostBlocks = *tierHostBlocks
		cfg.opts.TierLinkBW = *tierBW
	}
	if withSaturate {
		if *satMetric != "" && *satMetric != "p99" && *satMetric != "hitrate" {
			return config{}, fmt.Errorf("saturate: unknown -metric %q (want p99 or hitrate)", *satMetric)
		}
		if *satSLO < 0 {
			return config{}, fmt.Errorf("saturate: -slo must be non-negative")
		}
		if *satMetric == "hitrate" && *satSLO > 1 {
			return config{}, fmt.Errorf("saturate: hitrate -slo is a fraction in [0,1], got %g", *satSLO)
		}
		if *satRequests < 0 {
			return config{}, fmt.Errorf("saturate: -requests must be non-negative")
		}
		if _, err := fleet.ParseDevices(*devices); err != nil {
			return config{}, err
		}
		cfg.opts.SatSLO = *satSLO
		cfg.opts.SatMetric = *satMetric
		cfg.opts.SatRequests = *satRequests
		cfg.opts.FleetDevices = *devices
	}
	if withDrills {
		if *drillReplicas < 0 {
			return config{}, fmt.Errorf("drills: -replicas must be non-negative")
		}
		if *drillRestart < 0 {
			return config{}, fmt.Errorf("drills: -restart must be non-negative")
		}
		if _, err := fleet.ParseDevices(*devices); err != nil {
			return config{}, err
		}
		cfg.opts.DrillReplicas = *drillReplicas
		cfg.opts.DrillRestart = *drillRestart
		cfg.opts.FleetDevices = *devices
	}
	if withAutoscale {
		// Validate the spellings here so a typo fails before the fleet
		// spins up its engines.
		if *autoAdmission != "" {
			if _, err := fleet.ParseAdmission(*autoAdmission); err != nil {
				return config{}, err
			}
		}
		if _, err := fleet.ParseScaleSignal(*autoScaleOn); err != nil {
			return config{}, err
		}
		if _, err := fleet.ParseDevices(*devices); err != nil {
			return config{}, err
		}
		if *autoMin < 0 || *autoMax < 0 {
			return config{}, fmt.Errorf("autoscale: -min and -max must be non-negative")
		}
		if *autoMax > 0 && *autoMax < *autoMin {
			return config{}, fmt.Errorf("autoscale: -max %d below -min %d", *autoMax, *autoMin)
		}
		cfg.opts.AutoMin = *autoMin
		cfg.opts.AutoMax = *autoMax
		cfg.opts.AutoAdmission = *autoAdmission
		cfg.opts.AutoScaleOn = *autoScaleOn
		cfg.opts.FleetDevices = *devices
		cfg.opts.FleetQPS = *qps
	}
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "seed":
			cfg.seedSet = true
		case "seeds":
			cfg.seedsSet = true
		}
	})
	if cfg.seedsSet && *seeds == "" {
		return config{}, fmt.Errorf("-seeds requires a non-empty list")
	}
	var err error
	if cfg.seeds, err = parseSeeds(*seeds); err != nil {
		return config{}, err
	}
	return cfg, nil
}

func parseSeeds(list string) ([]uint64, error) {
	if list == "" {
		seeds := make([]uint64, 8)
		for i := range seeds {
			seeds[i] = uint64(i + 1)
		}
		return seeds, nil
	}
	parts := strings.Split(list, ",")
	seeds := make([]uint64, 0, len(parts))
	seen := make(map[uint64]bool, len(parts))
	for _, p := range parts {
		s, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %w", p, err)
		}
		// Duplicates would render the same section twice and silently
		// clobber each other's seed-tagged CSV.
		if seen[s] {
			return nil, fmt.Errorf("duplicate seed %d", s)
		}
		seen[s] = true
		seeds = append(seeds, s)
	}
	return seeds, nil
}

// execute runs the IDs on the worker pool and streams each result's
// tables through Render/CSV in registry order as they become ready.
// Driver failures are collected rather than aborting the suite.
func execute(ids []string, cfg config) error {
	return emit(cfg, len(ids), false, func(ctx context.Context) <-chan experiments.Result {
		return experiments.Stream(ctx, ids, cfg.opts, cfg.runnerOptions())
	})
}

// soak streams a large open-loop workload through a single engine with
// lean metrics — the request stream is generated lazily and never
// materialized, so live memory is O(active batch), not O(requests) —
// and reports simulation throughput in sim-events/sec (prefills plus
// decode chunks, the clock-advancing units of work).
func soak(args []string) error {
	fs := flag.NewFlagSet("soak", flag.ContinueOnError)
	requests := fs.Float64("requests", 1e6, "requests to stream (accepts 1e6 notation)")
	qps := fs.Float64("qps", 0.8, "offered load in requests/s (keep below the single-engine knee of ~1.1)")
	seed := fs.Uint64("seed", 7, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("soak: unexpected arguments %q", fs.Args())
	}
	n := int(*requests)
	if n <= 0 || float64(n) != *requests {
		return fmt.Errorf("soak: -requests must be a positive integer, got %g", *requests)
	}
	if *qps <= 0 {
		return fmt.Errorf("soak: -qps must be positive")
	}
	src, err := workload.NewSource(workload.InteractiveAssistant(*qps, n), *seed)
	if err != nil {
		return err
	}
	eng, err := engine.New(engine.Config{Spec: model.MustLookup(model.Qwen25_1_5Bit), Device: hw.JetsonAGXOrin64GB()})
	if err != nil {
		return err
	}
	start := time.Now()
	m, err := eng.ServeSource(src, 8, engine.FCFS, engine.ServeOpts{LeanMetrics: true})
	if err != nil {
		return err
	}
	wall := time.Since(start)
	runtime.GC() // settle the heap so the live figure excludes garbage
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Printf("soak: %d requests streamed in %s wall (%.0f sim-events/s)\n",
		n, wall.Round(time.Millisecond), float64(m.Events)/wall.Seconds())
	fmt.Printf("  served %d, events %d, sim time %.0fs, p99 %.2fs, mean %.3fs\n",
		m.Served, m.Events, eng.Clock(), m.P99Latency, m.MeanLatency)
	fmt.Printf("  live heap after run %.1f MB\n", float64(ms.HeapAlloc)/(1<<20))
	return nil
}

// sweep fans one driver across seeds and renders each seed's tables in
// seed order, tagging the section headers with the seed.
func sweep(id string, cfg config) error {
	// Pre-flight the ID: an unknown experiment is one typo, not one
	// failure per seed.
	if !experiments.Known(id) {
		return experiments.UnknownIDError(id)
	}
	return emit(cfg, len(cfg.seeds), true, func(ctx context.Context) <-chan experiments.Result {
		return experiments.StreamSweep(ctx, id, cfg.seeds, cfg.opts, cfg.runnerOptions())
	})
}

// label names one result in failure lists and metrics rows; sweep results
// are qualified by seed since every row shares the experiment ID.
func label(r experiments.Result, bySeed bool) string {
	if bySeed {
		return fmt.Sprintf("%s@seed%d", r.ID, r.Seed)
	}
	return r.ID
}

// emit consumes an ordered result stream under an interrupt-aware
// context, rendering each successful result's tables to stdout (and CSV)
// as they arrive and collecting failures instead of aborting on the
// first one. bySeed switches on the sweep dressing: per-result seed
// headers and seed-tagged CSV names.
func emit(cfg config, total int, bySeed bool, stream func(context.Context) <-chan experiments.Result) (retErr error) {
	stopProfiles, err := startProfiles(cfg.cpuProfile, cfg.memProfile)
	if err != nil {
		return err
	}
	defer func() {
		// A broken profile write should not mask a driver failure.
		if perr := stopProfiles(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()
	if cfg.csvDir != "" {
		if err := os.MkdirAll(cfg.csvDir, 0o755); err != nil {
			return err
		}
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	start := time.Now()
	var stats []driverStat
	var failed []string
	var firstErr error
	interrupted := 0
	for res := range stream(ctx) {
		stats = append(stats, driverStat{
			label:  label(res, bySeed),
			wall:   res.Wall,
			tables: res.TableCount(),
			err:    res.Err,
		})
		if res.Err != nil {
			// A Ctrl-C is not a driver failure: count cancelled results
			// separately and report the interrupt once at the end.
			if errors.Is(res.Err, context.Canceled) {
				interrupted++
				continue
			}
			if firstErr == nil {
				firstErr = res.Err
			}
			failed = append(failed, label(res, bySeed))
			// With a single experiment the returned error already carries
			// the cause; the extra stderr line would print it twice.
			if total > 1 {
				fmt.Fprintf(os.Stderr, "edgereasoning: %s: %v\n", label(res, bySeed), res.Err)
			}
			continue
		}
		if bySeed {
			fmt.Printf("-- %s @ seed %d --\n", res.ID, res.Seed)
		}
		for i := range res.Tables {
			if err := res.Tables[i].Render(os.Stdout); err != nil {
				return fmt.Errorf("%s: render: %w", label(res, bySeed), err)
			}
			if cfg.csvDir != "" {
				t := res.Tables[i]
				if bySeed {
					t.ID = fmt.Sprintf("%s-seed%d", t.ID, res.Seed)
				}
				if err := writeCSV(cfg.csvDir, &t); err != nil {
					return fmt.Errorf("%s: csv: %w", label(res, bySeed), err)
				}
			}
		}
	}
	if cfg.metrics {
		printMetrics(stats, time.Since(start))
	}
	switch {
	case len(failed) == 0 && interrupted == 0:
		return nil
	case len(failed) == 1 && total == 1:
		// Preserve the error chain when a single experiment was asked for.
		return fmt.Errorf("%s: %w", failed[0], firstErr)
	case interrupted > 0 && len(failed) == 0:
		// "not completed", not "not run": an in-flight driver abandoned by
		// the interrupt had started, its work discarded.
		return fmt.Errorf("interrupted: %d of %d experiments not completed", interrupted, total)
	case interrupted > 0:
		return fmt.Errorf("%d of %d experiments failed (%s); interrupted with %d more not completed",
			len(failed), total, strings.Join(failed, ", "), interrupted)
	default:
		return fmt.Errorf("%d of %d experiments failed: %s",
			len(failed), total, strings.Join(failed, ", "))
	}
}

// startProfiles begins CPU profiling (when cpuPath is set) and returns a
// stop function that ends it and writes a heap profile (when memPath is
// set), so suite runs can be profiled without editing code:
//
//	edgereasoning all -quick -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
func startProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				first = err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if first == nil {
					first = err
				}
				return first
			}
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = err
			}
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}

// driverStat is the lightweight per-driver record kept for -metrics, so
// rendered tables can be dropped as soon as they are emitted.
type driverStat struct {
	label  string
	wall   time.Duration
	tables int
	err    error
}

// printMetrics writes per-driver and suite-level metrics to stderr so the
// report on stdout stays byte-stable.
func printMetrics(stats []driverStat, elapsed time.Duration) {
	fmt.Fprintf(os.Stderr, "\n%-20s %10s %7s  %s\n", "experiment", "wall", "tables", "status")
	var driverTime time.Duration
	var tables, errs, interrupted int
	for _, s := range stats {
		status := "ok"
		switch {
		case s.err == nil:
		case errors.Is(s.err, context.Canceled):
			// Match emit's classification: a Ctrl-C is not a failure.
			status = "interrupted"
			interrupted++
		default:
			status = s.err.Error()
			errs++
		}
		fmt.Fprintf(os.Stderr, "%-20s %10s %7d  %s\n",
			s.label, s.wall.Round(time.Millisecond), s.tables, status)
		driverTime += s.wall
		tables += s.tables
	}
	speedup := float64(driverTime) / float64(elapsed)
	suffix := ""
	if interrupted > 0 {
		suffix = fmt.Sprintf(", %d interrupted", interrupted)
	}
	fmt.Fprintf(os.Stderr,
		"suite: %d drivers, %d tables, %d errors%s; driver time %s, wall %s (%.1fx)\n",
		len(stats), tables, errs, suffix,
		driverTime.Round(time.Millisecond), elapsed.Round(time.Millisecond), speedup)
}

func writeCSV(dir string, t *experiments.Table) error {
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

func usage() {
	fmt.Fprintln(os.Stderr, `edgereasoning — reproduce the EdgeReasoning paper's evaluation

commands:
  list                 show available experiment IDs
  run <id> [flags]     run one experiment (e.g. "run table2")
  all [flags]          run the full suite
  fleet [flags]        route open-loop traffic across a heterogeneous fleet
  sessions [flags]     multi-turn agentic serving with prefix KV caching
  tiering [flags]      host-DRAM KV tier swept against device-cache size
  autoscale [flags]    elastic replica pool + ingress admission disciplines
  saturate [flags]     binary-search offered QPS to the SLO saturation knee
  drills [flags]       fault-injection outage drills: crashes, stalls, throttling
  soak [flags]         stream a large open-loop run end to end (sim-events/sec)
  trace [flags]        trace a faulted autoscaled run; export Perfetto JSON +
                       Prometheus snapshot (-out, -metrics-out, -requests, -qps,
                       -replicas, -max, -seed, -crash-rate, -throttle,
                       -cpuprofile, -memprofile)
  sweep <id> [flags]   fan one experiment across seeds (variance estimation)

flags:
  -seed N       random seed (default 7; run/all/fleet/sessions only — sweep
                takes -seeds, and passing the wrong one is an error)
  -quick        subsample large banks
  -csv DIR      also write CSV files
  -parallel N   worker count (default GOMAXPROCS)
  -timeout D    per-driver timeout, e.g. 90s (default none)
  -metrics      print per-driver metrics to stderr
  -cpuprofile F write a CPU profile of the run to F
  -memprofile F write a heap profile at exit to F
  -seeds LIST   comma-separated seeds (sweep only; default 1..8)
  -replicas N   fleet size (fleet; default 4) or drill pool size (drills; default 3)
  -devices L    device cycle, e.g. orin,orin-50w (fleet and autoscale)
  -policy P     fleet: round-robin | least-queue | latency-weighted | deadline-aware | all
                sessions: round-robin | least-queue | session-affinity | all
  -qps Q        offered load in requests/s (fleet: default 2.0;
                autoscale: background load, default 0.2, spike is 100x)
  -sessions N   concurrent sessions (sessions and tiering; default 10)
  -turns N      agent-loop turns per session (sessions and tiering; default 5)
  -branch N     parallel think samples at branch turns (sessions and tiering; default 2)
  -device-blocks L  tiering: device-cache sweep in blocks (default 192,384,768)
  -host-blocks N    tiering: host-tier capacity in blocks (default 1024)
  -bw B             tiering: host-link bandwidth in bytes/s (default 16e9)
  -min N        autoscale pool floor (autoscale only; default 1)
  -max N        autoscale pool ceiling (autoscale only; default 6)
  -admission D  autoscale: fifo | edf | sjf | shed (default fifo)
  -scale-on S   autoscale: depth | miss | both (default both)
  -restart X    drills: crash restart delay in seconds (default 5)
  -slo X        saturate: p99 bound in seconds or hit-rate floor (metric default)
  -metric M     saturate: p99 | hitrate (default p99)
  -requests N   saturate: requests per probe (default 240)
                soak: requests to stream, 1e6 notation ok (default 1e6)`)
}
