package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Shadow is a native reimplementation of the x/tools `shadow` stock
// pass (the x/tools module is unavailable offline; `nilness` needs its
// SSA package and stays gated until the dependency can be vendored),
// tuned for signal: it reports an inner re-declaration of a variable
// that shadows a same-typed outer one only when the NEXT use of the
// outer variable after the shadowing scope is a read — the case where
// the reader almost certainly expected the inner value and gets a
// stale one instead.
//
// Deliberately out of scope (the noise that got the stock pass dropped
// from `go vet`'s default set):
//
//   - `if err := f(); err != nil` and friends — statement-scoped on
//     purpose;
//   - `m, err := f()` inside a closure — the closure owns its error
//     handling;
//   - shadows where the outer variable is reassigned before its next
//     read — the stale value is dead.
var Shadow = &Analyzer{
	Name: "shadow",
	Doc: "report inner declarations that shadow a same-typed outer " +
		"variable whose stale value is read after the inner scope ends",
	Run: runShadow,
}

func runShadow(pass *Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkShadow(pass, fd)
		}
	}
	return nil
}

type posRange struct{ from, to token.Pos }

func (r posRange) contains(p token.Pos) bool { return p > r.from && p < r.to }

func checkShadow(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	inits := initClauseStmts(fd.Body)
	writes := writePositions(fd.Body)
	var lits []posRange
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, posRange{fl.Pos(), fl.End()})
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var idents []*ast.Ident
		switch n := n.(type) {
		case *ast.AssignStmt:
			// `if err := f(); err != nil` and friends scope the variable
			// to the statement on purpose — idiomatic, not a shadow bug.
			if n.Tok != token.DEFINE || inits[n] {
				return true
			}
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					idents = append(idents, id)
				}
			}
		case *ast.GenDecl:
			if n.Tok != token.VAR {
				return true
			}
			for _, spec := range n.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					idents = append(idents, vs.Names...)
				}
			}
		default:
			return true
		}
		for _, id := range idents {
			if id.Name == "_" {
				continue
			}
			inner, ok := info.Defs[id].(*types.Var)
			if !ok {
				continue
			}
			reportShadowed(pass, fd, inner, id, writes, lits)
		}
		return true
	})
}

// initClauseStmts collects the Init statements of if/for/switch
// statements, which deliberately scope their declarations.
func initClauseStmts(body *ast.BlockStmt) map[ast.Stmt]bool {
	out := make(map[ast.Stmt]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if n.Init != nil {
				out[n.Init] = true
			}
		case *ast.ForStmt:
			if n.Init != nil {
				out[n.Init] = true
			}
		case *ast.SwitchStmt:
			if n.Init != nil {
				out[n.Init] = true
			}
		case *ast.TypeSwitchStmt:
			if n.Init != nil {
				out[n.Init] = true
			}
		}
		return true
	})
	return out
}

// writePositions records every identifier position that is an
// assignment target (plain `=` or a `:=` re-using an existing
// variable): a use at such a position overwrites, it does not read.
func writePositions(body *ast.BlockStmt) map[token.Pos]bool {
	out := make(map[token.Pos]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					out[id.Pos()] = true
				}
			}
		case *ast.RangeStmt:
			if n.Tok == token.ASSIGN {
				if id, ok := n.Key.(*ast.Ident); ok {
					out[id.Pos()] = true
				}
				if id, ok := n.Value.(*ast.Ident); ok {
					out[id.Pos()] = true
				}
			}
		}
		return true
	})
	return out
}

// reportShadowed reports inner if it shadows a same-typed variable
// declared earlier in the same function whose stale value is read
// after inner's scope closes.
func reportShadowed(pass *Pass, fd *ast.FuncDecl, inner *types.Var, id *ast.Ident, writes map[token.Pos]bool, lits []posRange) {
	scope := inner.Parent()
	if scope == nil || scope.Parent() == nil {
		return
	}
	// Look up the name in enclosing scopes, skipping inner's own scope.
	_, outer := scope.Parent().LookupParent(inner.Name(), inner.Pos())
	ov, ok := outer.(*types.Var)
	if !ok || ov.IsField() {
		return
	}
	// The outer declaration must live inside the same function —
	// shadowing package-level state is a different (idiomatic) pattern.
	if ov.Pos() <= fd.Pos() || ov.Pos() >= fd.End() {
		return
	}
	if !types.Identical(ov.Type(), inner.Type()) {
		return
	}
	// A re-declaration inside a closure that does not also own the
	// outer variable is closure-scoped error handling, not a shadow.
	innermost := posRange{}
	for _, r := range lits {
		if r.contains(inner.Pos()) && (innermost.from == 0 || r.from > innermost.from) {
			innermost = r
		}
	}
	if innermost.from != 0 && !innermost.contains(ov.Pos()) {
		return
	}
	// Find the outer variable's next use after the inner scope ends; a
	// write (or no use) means the stale value is dead and the shadow is
	// harmless.
	innerEnd := scope.End()
	var next token.Pos
	for useID, obj := range pass.TypesInfo.Uses {
		if obj == ov && useID.Pos() > innerEnd && useID.Pos() < fd.End() {
			if next == 0 || useID.Pos() < next {
				next = useID.Pos()
			}
		}
	}
	if next == 0 || writes[next] {
		return
	}
	pass.Reportf(id.Pos(),
		"declaration of %q shadows declaration at line %d; the outer variable's stale value is read after this scope ends",
		inner.Name(), pass.Fset.Position(ov.Pos()).Line)
}
