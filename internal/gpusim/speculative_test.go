package gpusim

import (
	"math"
	"testing"

	"edgereasoning/internal/hw"
	"edgereasoning/internal/model"
)

func specCfg(gamma int, alpha float64) SpeculativeConfig {
	draft := model.MustLookup(model.DSR1Qwen1_5B)
	return SpeculativeConfig{Draft: draft.Arch, DraftDType: draft.DType, Gamma: gamma, AcceptRate: alpha}
}

func TestExpectedTokensPerIteration(t *testing.T) {
	cases := []struct {
		gamma int
		alpha float64
		want  float64
	}{
		{0, 0.9, 1},      // no drafting: one token per pass
		{4, 0, 1},        // nothing accepted
		{4, 1, 5},        // everything accepted: γ+1
		{4, 0.7, 2.7731}, // (1-0.7^5)/0.3
		{2, 0.5, 1.75},   // (1-0.5^3)/0.5
	}
	for _, c := range cases {
		got := specCfg(c.gamma, c.alpha).ExpectedTokensPerIteration()
		if math.Abs(got-c.want) > 1e-3 {
			t.Errorf("γ=%d α=%v: yield = %v, want %v", c.gamma, c.alpha, got, c.want)
		}
	}
}

func TestSpeculativeSpeedsUpLargeTargets(t *testing.T) {
	s := New(hw.JetsonAGXOrin64GB())
	target := model.MustLookup(model.DSR1Qwen14B)
	_, speedup := s.DecodeRunSpeculative(target.Arch, target.DType, specCfg(4, 0.8), 512, 1024)
	if speedup < 1.3 {
		t.Errorf("14B with a good draft should speed up >1.3x, got %.2f", speedup)
	}
	if speedup > 4 {
		t.Errorf("speedup %.2f implausibly high", speedup)
	}
}

func TestSpeculativeLowAcceptanceHurts(t *testing.T) {
	s := New(hw.JetsonAGXOrin64GB())
	target := model.MustLookup(model.DSR1Llama8B)
	_, speedup := s.DecodeRunSpeculative(target.Arch, target.DType, specCfg(8, 0.3), 512, 1024)
	if speedup >= 1 {
		t.Errorf("long drafts at 30%% acceptance should lose, got %.2fx", speedup)
	}
}

func TestSpeculativeZeroGammaIsPlain(t *testing.T) {
	s := New(hw.JetsonAGXOrin64GB())
	target := model.MustLookup(model.DSR1Llama8B)
	res, speedup := s.DecodeRunSpeculative(target.Arch, target.DType, specCfg(0, 0.9), 512, 256)
	plain := s.DecodeRun(target.Arch, target.DType, 512, 256, 1)
	if speedup != 1 || res.Time != plain.Time {
		t.Error("γ=0 must degenerate to plain decoding")
	}
}

func TestSpeculativeTokenConservation(t *testing.T) {
	s := New(hw.JetsonAGXOrin64GB())
	target := model.MustLookup(model.DSR1Qwen14B)
	res, _ := s.DecodeRunSpeculative(target.Arch, target.DType, specCfg(4, 0.7), 512, 777)
	if res.Tokens != 777 {
		t.Errorf("committed tokens = %d, want 777", res.Tokens)
	}
	if res.Time <= 0 || res.Bytes <= 0 || res.FLOPs <= 0 {
		t.Errorf("degenerate result: %+v", res)
	}
}

// Speedup grows with acceptance rate at fixed gamma.
func TestSpeculativeMonotoneInAcceptance(t *testing.T) {
	s := New(hw.JetsonAGXOrin64GB())
	target := model.MustLookup(model.DSR1Qwen14B)
	prev := 0.0
	for _, alpha := range []float64{0.3, 0.5, 0.7, 0.9} {
		_, speedup := s.DecodeRunSpeculative(target.Arch, target.DType, specCfg(4, alpha), 512, 1024)
		if speedup < prev {
			t.Errorf("speedup must grow with α: %.2f after %.2f", speedup, prev)
		}
		prev = speedup
	}
}

func TestHostOverlapReducesTBT(t *testing.T) {
	a := model.MustLookup(model.DSR1Llama8B).Arch
	base := New(hw.JetsonAGXOrin64GB())
	overlapped := New(hw.JetsonAGXOrin64GB())
	overlapped.HostOverlap = 1.0
	t0 := base.TBT(a, model.FP16, 512)
	t1 := overlapped.TBT(a, model.FP16, 512)
	if t1 >= t0 {
		t.Errorf("full overlap must reduce TBT: %.4f -> %.4f", t0, t1)
	}
	// The hidden portion is the launch overhead: ~8-10% for the 8B.
	reduction := (t0 - t1) / t0
	if reduction < 0.03 || reduction > 0.20 {
		t.Errorf("overlap reduction = %.1f%%, expected single-digit to low-teens", reduction*100)
	}
}

func TestHostOverlapClamped(t *testing.T) {
	a := model.MustLookup(model.DSR1Qwen1_5B).Arch
	s := New(hw.JetsonAGXOrin64GB())
	s.HostOverlap = 5 // clamps to 1
	over := s.TBT(a, model.FP16, 512)
	s.HostOverlap = 1
	exact := s.TBT(a, model.FP16, 512)
	if over != exact {
		t.Error("HostOverlap must clamp to [0,1]")
	}
	s.HostOverlap = -3 // clamps to 0
	under := s.TBT(a, model.FP16, 512)
	s.HostOverlap = 0
	if under != s.TBT(a, model.FP16, 512) {
		t.Error("negative HostOverlap must clamp to 0")
	}
}
