// Package cost implements the paper's deployment-economics model
// (§III-B): edge inference is billed as metered electricity plus amortized
// hardware, normalized to dollars per million tokens, and compared against
// cloud API pricing (Table III).
package cost

import "fmt"

// Rates captures the billing assumptions.
type Rates struct {
	// ElectricityPerKWh is the energy tariff in $/kWh.
	ElectricityPerKWh float64
	// HardwarePerHour is the amortized platform cost in $/hour.
	HardwarePerHour float64
}

// PaperRates returns the paper's assumptions: $0.15/kWh electricity and
// the Jetson AGX Orin amortized at $0.045/hour.
func PaperRates() Rates {
	return Rates{ElectricityPerKWh: 0.15, HardwarePerHour: 0.045}
}

// Breakdown is the cost of one workload.
type Breakdown struct {
	EnergyKWh    float64
	WallHours    float64
	Tokens       int
	EnergyCost   float64 // dollars
	HardwareCost float64
}

// Total returns the workload's total cost in dollars.
func (b Breakdown) Total() float64 { return b.EnergyCost + b.HardwareCost }

// PerMillionTokens returns $/1M tokens (the Table III unit).
func (b Breakdown) PerMillionTokens() float64 {
	if b.Tokens <= 0 {
		return 0
	}
	return b.Total() / float64(b.Tokens) * 1e6
}

// EnergyPerMillionTokens returns the energy component in $/1M tokens.
func (b Breakdown) EnergyPerMillionTokens() float64 {
	if b.Tokens <= 0 {
		return 0
	}
	return b.EnergyCost / float64(b.Tokens) * 1e6
}

// HardwarePerMillionTokens returns the amortization component in $/1M.
func (b Breakdown) HardwarePerMillionTokens() float64 {
	if b.Tokens <= 0 {
		return 0
	}
	return b.HardwareCost / float64(b.Tokens) * 1e6
}

// String renders the breakdown in the paper's style.
func (b Breakdown) String() string {
	return fmt.Sprintf("$%.3f/1M tokens ($%.4f energy + $%.4f hardware)",
		b.PerMillionTokens(), b.EnergyPerMillionTokens(), b.HardwarePerMillionTokens())
}

// Bill prices a workload: energy in joules, wall time in seconds, and the
// token count processed (prompt + generated, as the paper bills).
func Bill(r Rates, energyJoules, wallSeconds float64, tokens int) Breakdown {
	b := Breakdown{
		EnergyKWh: energyJoules / 3.6e6,
		WallHours: wallSeconds / 3600,
		Tokens:    tokens,
	}
	b.EnergyCost = b.EnergyKWh * r.ElectricityPerKWh
	b.HardwareCost = b.WallHours * r.HardwarePerHour
	return b
}

// CloudPrice is a commercial API price point for comparison.
type CloudPrice struct {
	Name             string
	InputPerMillion  float64 // $/1M input tokens
	OutputPerMillion float64
	UserTPS          float64 // reported single-user decode throughput
}

// PaperCloudPrices returns the cloud reference points of Table III and
// §III-B: OpenAI o1-preview and o4-mini.
func PaperCloudPrices() []CloudPrice {
	return []CloudPrice{
		{Name: "openai-o1-preview", InputPerMillion: 15, OutputPerMillion: 60, UserTPS: 89.7},
		{Name: "openai-o4-mini", InputPerMillion: 1.1, OutputPerMillion: 4.4},
	}
}

// CloudCost prices a workload against a cloud API.
func CloudCost(p CloudPrice, inputTokens, outputTokens int) float64 {
	return float64(inputTokens)/1e6*p.InputPerMillion + float64(outputTokens)/1e6*p.OutputPerMillion
}
