// Package power models the Jetson's rail power and energy consumption.
// Average power during a simulated phase is derived from the utilization
// signals the GPU simulator reports (bandwidth fraction, compute fraction,
// SM occupancy), with two second-order effects the paper's measurements
// show: a DVFS residency boost for long sustained runs (power grows
// logarithmically with sequence length, Takeaway #3) and a sampling-window
// blend that models how short phases read lower on a finite-rate power
// meter (the reason the paper sees only 6 W during 1.5B prefill).
package power

import (
	"math"

	"edgereasoning/internal/gpusim"
	"edgereasoning/internal/hw"
)

// Meter converts simulated utilization into watts and joules.
type Meter struct {
	Device *hw.Device

	// BWSpan is the dynamic power at full memory-bandwidth utilization;
	// ComputeSpan at full achievable compute utilization. Both calibrated
	// so the DSR1 trio's decode power lands on Table XIX (19.6 / 24.4 /
	// 26.5 W) and prefill power on Fig 4a.
	BWSpan      float64
	ComputeSpan float64

	// ResidencyRho scales the DVFS boost for sustained runs: power grows
	// with log10 of the per-sequence token count.
	ResidencyRho float64

	// SampleWindow is the power meter's averaging window in seconds.
	// Phases shorter than the window read blended with idle power (only
	// ObservedPower applies this; Energy never does).
	SampleWindow float64

	// QuantizeStates, when true, snaps power to the device's discrete
	// DVFS states (the step pattern of Fig 10c).
	QuantizeStates bool
}

// NewMeter returns a meter with the Orin MAXN calibration.
func NewMeter(d *hw.Device) *Meter {
	return &Meter{
		Device:       d,
		BWSpan:       25.0,
		ComputeSpan:  18.0,
		ResidencyRho: 0.10,
		SampleWindow: 2.0, // tegrastats-style ~1 Hz sampling over short phases
	}
}

// Power returns the true average rail power (watts) during the phase.
func (m *Meter) Power(r gpusim.Result) float64 {
	d := m.Device
	if r.Time <= 0 {
		return d.IdlePower
	}
	occ := r.Occupancy
	if occ <= 0 {
		occ = 1
	}
	// Compute utilization relative to what the device can actually achieve
	// (SM busy fraction tracks achievable, not theoretical, peak).
	computeRel := r.ComputeUtil / d.ComputeEff
	if computeRel > 1 {
		computeRel = 1
	}
	bwFrac := r.BWUtil
	if bwFrac > 1 {
		bwFrac = 1
	}
	p := d.IdlePower + m.BWSpan*bwFrac*occ + m.ComputeSpan*computeRel*occ

	// DVFS residency: sustained decode keeps clocks boosted; power rises
	// logarithmically with the per-sequence run length.
	if m.ResidencyRho > 0 && r.Tokens > 0 && r.Phase == gpusim.PhaseDecode {
		perSeq := float64(r.Tokens)
		p *= 1 + m.ResidencyRho*math.Log10(1+perSeq/64)
	}
	if p > d.MaxPower {
		p = d.MaxPower
	}
	if m.QuantizeStates {
		p = m.quantize(p)
	}
	return p
}

// quantize snaps power onto the device's discrete DVFS ladder.
func (m *Meter) quantize(p float64) float64 {
	d := m.Device
	if d.PowerStates <= 1 {
		return p
	}
	step := (d.MaxPower - d.IdlePower) / float64(d.PowerStates)
	n := math.Round((p - d.IdlePower) / step)
	return d.IdlePower + n*step
}

// ObservedPower returns what a finite-rate power meter would report for
// the phase: the true power blended with idle when the phase is shorter
// than the sampling window.
func (m *Meter) ObservedPower(r gpusim.Result) float64 {
	p := m.Power(r)
	if m.SampleWindow <= 0 || r.Time >= m.SampleWindow {
		return p
	}
	return (p*r.Time + m.Device.IdlePower*(m.SampleWindow-r.Time)) / m.SampleWindow
}

// Energy returns the joules consumed by the phase (true power × time;
// the sampling window never distorts energy).
func (m *Meter) Energy(r gpusim.Result) float64 {
	return m.Power(r) * r.Time
}

// EnergyPerToken returns joules per processed token, or 0 for empty
// phases.
func (m *Meter) EnergyPerToken(r gpusim.Result) float64 {
	if r.Tokens <= 0 {
		return 0
	}
	return m.Energy(r) / float64(r.Tokens)
}

// GPUUtilization returns the utilization percentage a tool like
// tegrastats would report for the phase: the occupancy-weighted busy
// fraction (Fig 10c secondary axis).
func (m *Meter) GPUUtilization(r gpusim.Result) float64 {
	d := m.Device
	computeRel := r.ComputeUtil / d.ComputeEff
	bwRel := r.BWUtil / d.MemEff
	u := math.Max(computeRel, bwRel)
	if u > 1 {
		u = 1
	}
	occ := r.Occupancy
	if occ <= 0 {
		occ = 1
	}
	return 100 * u * occ
}
