package lint

import (
	"path/filepath"
	"testing"
)

// fixture runs one analyzer over one testdata/src package and reports
// every mismatch against the // want expectations.
func fixture(t *testing.T, a *Analyzer, pkg string) {
	t.Helper()
	problems, err := CheckFixture(a, filepath.Join("testdata", "src"), pkg)
	if err != nil {
		t.Fatalf("fixture %s/%s: %v", a.Name, pkg, err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

func TestSimClockFixture(t *testing.T)   { fixture(t, SimClock, "simclock") }
func TestSimClockCmdExempt(t *testing.T) { fixture(t, SimClock, "cmd/profiler") }

func TestSeededRandFixture(t *testing.T)  { fixture(t, SeededRand, "seededrand") }
func TestSeededRandProvider(t *testing.T) { fixture(t, SeededRand, "internal/stats") }

func TestMapOrderFixture(t *testing.T) { fixture(t, MapOrder, "maporder") }

func TestHotPathFixture(t *testing.T) { fixture(t, HotPath, "hotpath") }

func TestTraceOffFixture(t *testing.T) { fixture(t, TraceOff, "traceoff") }

func TestShadowFixture(t *testing.T) { fixture(t, Shadow, "shadow") }

// TestAllRegistry pins the suite's composition: every analyzer is
// resolvable by name and names are unique (allow directives key on
// them).
func TestAllRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		got, ok := ByName(a.Name)
		if !ok || got != a {
			t.Errorf("ByName(%q) = %v, %v; want the registered analyzer", a.Name, got, ok)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName accepted an unknown analyzer")
	}
	for _, want := range []string{"simclock", "seededrand", "maporder", "hotpath", "traceoff", "shadow"} {
		if !seen[want] {
			t.Errorf("suite is missing analyzer %q", want)
		}
	}
}

// TestAllowDirectiveParsing pins the directive grammar the analyzers
// and cmd/benchcheck share.
func TestAllowDirectiveParsing(t *testing.T) {
	names, ok := parseAllow("//edgereasoning:allow hotpath simclock -- reason text")
	if !ok || len(names) != 2 || names[0] != "hotpath" || names[1] != "simclock" {
		t.Errorf("parseAllow = %v, %v", names, ok)
	}
	if _, ok := parseAllow("//edgereasoning:allow"); ok {
		t.Error("parseAllow accepted a directive with no analyzer names")
	}
	if _, ok := parseAllow("// plain comment"); ok {
		t.Error("parseAllow accepted a plain comment")
	}

	d, ok := parseDirective("//edgereasoning:hotpath bench=BenchmarkServeHotLoop -- the serve loop")
	if !ok || d.Kind != "hotpath" || d.Arg("bench") != "BenchmarkServeHotLoop" {
		t.Errorf("parseDirective = %+v, %v", d, ok)
	}
	if _, ok := parseDirective("//edgereasoning:allow hotpath"); ok {
		t.Error("parseDirective must not claim allow directives")
	}
	if _, ok := parseDirective("//go:noinline"); ok {
		t.Error("parseDirective accepted a non-edgereasoning directive")
	}
}

// TestFixtureLoaderResolvesSubpackages pins the fixture import scheme:
// traceoff imports its own telemetry stand-in by relative path.
func TestFixtureLoaderResolvesSubpackages(t *testing.T) {
	loader := NewFixtureLoader(filepath.Join("testdata", "src"))
	pkg, err := loader.Load("traceoff")
	if err != nil {
		t.Fatalf("Load(traceoff): %v", err)
	}
	found := false
	for _, imp := range pkg.Types.Imports() {
		if imp.Path() == "traceoff/telemetry" {
			found = true
		}
	}
	if !found {
		t.Errorf("traceoff should import the fixture telemetry package; imports: %v", pkg.Types.Imports())
	}
}
