package kvcache

import "testing"

// benchTokensPerOp is the generation length each KV bench appends per
// iteration, so the per-token and bulk variants report comparable ns/op.
const benchTokensPerOp = 4096

func newBenchCache(b *testing.B) *Cache {
	b.Helper()
	c, err := New(Config{BlockSize: 16, NumBlocks: 1 << 16, BytesPerToken: 131072})
	if err != nil {
		b.Fatal(err)
	}
	// One untimed warm-up lifecycle: the sequence shell and its block
	// table land in the recycling pool, so timed iterations measure the
	// steady state even at -benchtime=1x (the CI smoke setting).
	if err := c.Allocate("s", 1); err != nil {
		b.Fatal(err)
	}
	if err := c.AppendTokens("s", benchTokensPerOp); err != nil {
		b.Fatal(err)
	}
	if err := c.Free("s"); err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkKVAppend measures the same lifecycle as BenchmarkKVAppendToken
// through the bulk handle path the engine uses: one Lookup, one chunked
// AppendTokensH per decode event (the engine's admission grain is 16–32
// steps), one FreeH. Tracked in BENCH_serve.json by scripts/bench.sh.
func BenchmarkKVAppend(b *testing.B) {
	c := newBenchCache(b)
	const chunk = 32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Allocate("s", 1); err != nil {
			b.Fatal(err)
		}
		h, err := c.Lookup("s")
		if err != nil {
			b.Fatal(err)
		}
		for t := 0; t < benchTokensPerOp; t += chunk {
			if err := c.AppendTokensH(h, chunk); err != nil {
				b.Fatal(err)
			}
		}
		if err := c.FreeH(h); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKVAppendToken measures one sequence lifecycle — allocate,
// append a long reasoning trace one token at a time, free — through the
// per-token path the engine used before bulk accounting landed.
func BenchmarkKVAppendToken(b *testing.B) {
	c := newBenchCache(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Allocate("s", 1); err != nil {
			b.Fatal(err)
		}
		for t := 0; t < benchTokensPerOp; t++ {
			if err := c.AppendToken("s"); err != nil {
				b.Fatal(err)
			}
		}
		if err := c.Free("s"); err != nil {
			b.Fatal(err)
		}
	}
}
