package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// renderResults renders every table from every successful result, in
// stream order, exactly as the CLI does.
func renderResults(t *testing.T, results []Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.ID, r.Err)
		}
		for i := range r.Tables {
			if err := r.Tables[i].Render(&buf); err != nil {
				t.Fatalf("%s: render: %v", r.ID, err)
			}
		}
	}
	return buf.Bytes()
}

// TestParallelReportByteIdentical runs the full suite twice each at
// parallelism 1 and parallelism 8 and asserts all four rendered reports
// match byte for byte: output must depend only on the requested ID
// order and the seed — never on completion order or scheduling luck.
// Run under -race this also exercises the pool for data races across
// all drivers.
func TestParallelReportByteIdentical(t *testing.T) {
	ids := IDs()
	opts := Options{Seed: 7, Quick: true}
	runs := []struct {
		name        string
		parallelism int
	}{
		{"sequential-1st", 1},
		{"sequential-2nd", 1},
		{"parallel-1st", 8},
		{"parallel-2nd", 8},
	}
	var golden []byte
	for _, r := range runs {
		results := RunAll(context.Background(), ids, opts, RunnerOptions{Parallelism: r.parallelism})
		if len(results) != len(ids) {
			t.Fatalf("%s: %d results, want %d", r.name, len(results), len(ids))
		}
		out := renderResults(t, results)
		if golden == nil {
			golden = out
			continue
		}
		if !bytes.Equal(out, golden) {
			t.Errorf("%s report differs from the first run (%d vs %d bytes)", r.name, len(out), len(golden))
		}
	}
}

// fakeRegistry builds a lookup over synthetic drivers for pool tests.
func fakeRegistry(drivers map[string]Driver) func(string) (Driver, bool) {
	return func(id string) (Driver, bool) {
		d, ok := drivers[id]
		return d, ok
	}
}

// tableFor is a minimal single-row artifact for synthetic drivers.
func tableFor(id string, opts Options) []Table {
	return []Table{{
		ID:      id,
		Title:   "synthetic",
		Columns: []string{"seed"},
		Rows:    [][]string{{fmt.Sprintf("%d", opts.Seed)}},
	}}
}

func TestStreamPreservesRequestOrder(t *testing.T) {
	// Early drivers sleep longer than later ones, so completion order is
	// the reverse of request order.
	drivers := map[string]Driver{}
	ids := make([]string, 6)
	for i := range ids {
		id := fmt.Sprintf("d%d", i)
		ids[i] = id
		delay := time.Duration(len(ids)-i) * 5 * time.Millisecond
		drivers[id] = func(o Options) ([]Table, error) {
			time.Sleep(delay)
			return tableFor(id, o), nil
		}
	}
	cfg := RunnerOptions{Parallelism: len(ids), lookup: fakeRegistry(drivers)}
	var got []string
	for r := range Stream(context.Background(), ids, Options{Seed: 1}, cfg) {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.ID, r.Err)
		}
		got = append(got, r.ID)
	}
	if strings.Join(got, ",") != strings.Join(ids, ",") {
		t.Errorf("stream order %v, want %v", got, ids)
	}
}

func TestRunAllFailSoft(t *testing.T) {
	boom := errors.New("boom")
	drivers := map[string]Driver{
		"ok1":    func(o Options) ([]Table, error) { return tableFor("ok1", o), nil },
		"broken": func(o Options) ([]Table, error) { return nil, boom },
		"panics": func(o Options) ([]Table, error) { panic("kaboom") },
		"ok2":    func(o Options) ([]Table, error) { return tableFor("ok2", o), nil },
	}
	ids := []string{"ok1", "broken", "panics", "missing", "ok2"}
	cfg := RunnerOptions{Parallelism: 2, lookup: fakeRegistry(drivers)}
	results := RunAll(context.Background(), ids, Options{Seed: 3}, cfg)
	if len(results) != len(ids) {
		t.Fatalf("got %d results, want %d", len(results), len(ids))
	}
	for i, r := range results {
		if r.ID != ids[i] {
			t.Errorf("result %d is %s, want %s", i, r.ID, ids[i])
		}
	}
	if !errors.Is(results[1].Err, boom) {
		t.Errorf("broken driver error = %v, want %v", results[1].Err, boom)
	}
	if results[2].Err == nil || !strings.Contains(results[2].Err.Error(), "panicked") {
		t.Errorf("panicking driver error = %v, want panic report", results[2].Err)
	}
	if results[3].Err == nil || !strings.Contains(results[3].Err.Error(), "unknown") {
		t.Errorf("missing driver error = %v, want unknown-experiment report", results[3].Err)
	}
	for _, i := range []int{0, 4} {
		if results[i].Err != nil {
			t.Errorf("%s must survive neighbours failing: %v", results[i].ID, results[i].Err)
		}
		if results[i].TableCount() != 1 {
			t.Errorf("%s table count = %d, want 1", results[i].ID, results[i].TableCount())
		}
	}
	m := Summarize(results)
	if m.Drivers != 5 || m.Errors != 3 || m.Tables != 2 {
		t.Errorf("metrics = %+v, want 5 drivers / 3 errors / 2 tables", m)
	}
}

// TestCancellationStopsPromptly cancels the context while a slow driver
// is in flight and asserts the pool returns quickly with the completed
// prefix delivered and the rest marked cancelled.
func TestCancellationStopsPromptly(t *testing.T) {
	release := make(chan struct{})
	drivers := map[string]Driver{
		"fast": func(o Options) ([]Table, error) { return tableFor("fast", o), nil },
		"slow": func(o Options) ([]Table, error) {
			<-release
			return tableFor("slow", o), nil
		},
	}
	defer close(release)
	ids := []string{"fast", "slow", "fast", "slow"}
	ctx, cancel := context.WithCancel(context.Background())
	cfg := RunnerOptions{Parallelism: 1, lookup: fakeRegistry(drivers)}

	ch := Stream(ctx, ids, Options{Seed: 1}, cfg)
	first := <-ch
	if first.Err != nil || first.ID != "fast" {
		t.Fatalf("first result = %+v, want clean fast", first)
	}
	cancel()

	done := make(chan []Result, 1)
	go func() { done <- collect(ch, len(ids)-1) }()
	var rest []Result
	select {
	case rest = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("pool did not stop promptly after cancellation")
	}
	if len(rest) != len(ids)-1 {
		t.Fatalf("got %d trailing results, want %d", len(rest), len(ids)-1)
	}
	for _, r := range rest {
		if r.Err == nil || !errors.Is(r.Err, context.Canceled) {
			t.Errorf("%s after cancel: err = %v, want context.Canceled", r.ID, r.Err)
		}
	}
}

// TestCancellationNoGoroutineLeak cancels mid-suite and asserts two
// things the CLI depends on: every requested ID still yields exactly one
// fail-soft Result (no aborts, no holes), and — once the abandoned
// drivers are released — the pool's goroutines all drain away.
func TestCancellationNoGoroutineLeak(t *testing.T) {
	release := make(chan struct{})
	drivers := map[string]Driver{
		"ok": func(o Options) ([]Table, error) { return tableFor("ok", o), nil },
		"block": func(o Options) ([]Table, error) {
			<-release
			return tableFor("block", o), nil
		},
	}
	ids := []string{"ok", "block", "block", "ok", "block", "ok"}
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	cfg := RunnerOptions{Parallelism: 3, lookup: fakeRegistry(drivers)}
	ch := Stream(ctx, ids, Options{Seed: 1}, cfg)
	first := <-ch
	if first.ID != "ok" || first.Err != nil {
		t.Fatalf("first result = %+v, want clean ok", first)
	}
	cancel()
	results := append([]Result{first}, collect(ch, len(ids)-1)...)

	if len(results) != len(ids) {
		t.Fatalf("got %d results, want %d (fail-soft: one per requested ID)", len(results), len(ids))
	}
	for i, r := range results {
		if r.ID != ids[i] {
			t.Errorf("result %d is %s, want %s", i, r.ID, ids[i])
		}
		if r.Err != nil && !errors.Is(r.Err, context.Canceled) {
			t.Errorf("%s: err = %v, want nil or context.Canceled", r.ID, r.Err)
		}
	}

	// Unblock the abandoned driver goroutines; the pool must then return
	// to its pre-Stream goroutine census. Poll because their final sends
	// land on buffered channels asynchronously.
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // nudge finalization so the count settles
		if runtime.NumGoroutine() <= baseline+1 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestPerDriverTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	drivers := map[string]Driver{
		"stuck": func(o Options) ([]Table, error) { <-release; return nil, nil },
		"fine":  func(o Options) ([]Table, error) { return tableFor("fine", o), nil },
	}
	cfg := RunnerOptions{
		Parallelism: 2,
		Timeout:     10 * time.Millisecond,
		lookup:      fakeRegistry(drivers),
	}
	results := RunAll(context.Background(), []string{"stuck", "fine"}, Options{}, cfg)
	if results[0].Err == nil || !strings.Contains(results[0].Err.Error(), "timeout") {
		t.Errorf("stuck driver error = %v, want timeout", results[0].Err)
	}
	if results[1].Err != nil {
		t.Errorf("fine driver must not time out: %v", results[1].Err)
	}
}

func TestRunSweep(t *testing.T) {
	drivers := map[string]Driver{
		"sweepme": func(o Options) ([]Table, error) {
			if !o.Quick {
				return nil, errors.New("base options not threaded through")
			}
			return tableFor("sweepme", o), nil
		},
	}
	seeds := []uint64{11, 22, 33, 44}
	cfg := RunnerOptions{Parallelism: 4, lookup: fakeRegistry(drivers)}
	results := RunSweep(context.Background(), "sweepme", seeds, Options{Quick: true}, cfg)
	if len(results) != len(seeds) {
		t.Fatalf("got %d results, want %d", len(results), len(seeds))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("seed %d: %v", seeds[i], r.Err)
		}
		if r.Seed != seeds[i] {
			t.Errorf("result %d seed = %d, want %d (seed order must be preserved)", i, r.Seed, seeds[i])
		}
		if got := r.Tables[0].Rows[0][0]; got != fmt.Sprintf("%d", seeds[i]) {
			t.Errorf("result %d ran with seed %s, want %d", i, got, seeds[i])
		}
	}
}

// TestSweepStochasticDriverVariance runs a real stochastic driver across
// seeds and checks the sweep machinery against the registry end to end.
func TestSweepStochasticDriverVariance(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	results := RunSweep(context.Background(), "table2", seeds, Options{Quick: true}, RunnerOptions{})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("seed %d: %v", seeds[i], r.Err)
		}
		if len(r.Tables) == 0 {
			t.Fatalf("seed %d: no tables", seeds[i])
		}
		if r.Wall <= 0 {
			t.Errorf("seed %d: wall time not recorded", seeds[i])
		}
	}
	// Same seed must reproduce exactly; that is what makes the sweep a
	// variance estimator rather than noise.
	again := RunSweep(context.Background(), "table2", seeds[:1], Options{Quick: true}, RunnerOptions{})
	var a, b bytes.Buffer
	if err := results[0].Tables[0].Render(&a); err != nil {
		t.Fatal(err)
	}
	if err := again[0].Tables[0].Render(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same seed must render identically across sweep runs")
	}
}

func TestRunnerDefaultParallelism(t *testing.T) {
	if w := (RunnerOptions{}).workers(); w < 1 {
		t.Errorf("default worker count = %d, want >= 1", w)
	}
	if w := (RunnerOptions{Parallelism: 3}).workers(); w != 3 {
		t.Errorf("worker count = %d, want 3", w)
	}
}

func TestRunAllEmptyIDs(t *testing.T) {
	results := RunAll(context.Background(), nil, Options{}, RunnerOptions{})
	if len(results) != 0 {
		t.Errorf("empty ID list produced %d results", len(results))
	}
}
