// Host-DRAM second tier for the prefix index. On device-memory
// pressure, evicted leaf entries are demoted to a capacity-bounded
// host-side store (its own LRU) instead of being dropped; a later
// Acquire that walks onto a host-resident chain segment promotes it
// back, charging a size-proportional restore cost over the host link
// (bytes / link bandwidth — the PCIe-class transfer the paper's §VI
// heterogeneous-computing discussion prices). Demotion is leaf-first,
// so host-resident entries always form contiguous tails of their hash
// chains: a host entry's children are host, and promotion proceeds
// top-down along the walked chain.
package kvcache

import "fmt"

// DefaultHostLinkBandwidth is the host-link transfer rate used when a
// HostTierConfig leaves LinkBandwidth zero: 16 GB/s, a PCIe 4.0 x8
// class link (the discrete-accelerator configuration the offload
// discussion assumes; an AGX Orin's unified memory would be faster,
// making this a conservative restore-cost model).
const DefaultHostLinkBandwidth = 16e9

// HostTierConfig sizes the host-DRAM tier behind a PrefixIndex.
type HostTierConfig struct {
	// Blocks bounds host-resident KV blocks; at capacity the
	// least-recently-used host leaf is dropped for good.
	Blocks int
	// LinkBandwidth is the host<->device transfer rate in bytes/second
	// charged on promotion (default DefaultHostLinkBandwidth).
	LinkBandwidth float64
}

func (c HostTierConfig) withDefaults() HostTierConfig {
	if c.LinkBandwidth <= 0 {
		c.LinkBandwidth = DefaultHostLinkBandwidth
	}
	return c
}

// Validate rejects unusable tier configurations.
func (c HostTierConfig) Validate() error {
	if c.Blocks <= 0 {
		return fmt.Errorf("kvcache: host tier Blocks must be positive, got %d", c.Blocks)
	}
	return nil
}

// hostTier is the host-side store: pure accounting (the simulator moves
// no bytes), bounded by cfg.Blocks, with its own LRU over host leaves.
type hostTier struct {
	cfg      HostTierConfig
	resident int // host-held blocks (one per host entry)
	lru      lruList
}

// AttachHostTier enables the host-DRAM second tier on the index.
// Must be called before any entry is retained, and at most once.
func (ix *PrefixIndex) AttachHostTier(cfg HostTierConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if ix.host != nil {
		return fmt.Errorf("kvcache: prefix index already has a host tier")
	}
	if len(ix.entries) > 0 {
		return fmt.Errorf("kvcache: host tier must attach before entries are retained")
	}
	ix.host = &hostTier{cfg: cfg.withDefaults()}
	return nil
}

// demoteOne moves the least-recently-used device leaf to the host tier,
// releasing its device block (the block frees now unless a live
// sequence still shares it). Reports false when no device leaf remains.
// A demotion that pushes the host tier past capacity drops the
// least-recently-used host leaf for good.
func (ix *PrefixIndex) demoteOne() bool {
	e := ix.lru.head
	if e == nil {
		return false
	}
	ix.lru.remove(e)
	ix.c.indexRef(e.block, -1)
	ix.c.release(e.block)
	e.block = hostBlock
	e.onHost = true
	ix.m.Retained--
	ix.m.Demotions++
	ix.m.HostRetained++
	ix.host.resident++
	// Leaf-first demotion: e's parent (device or nil — a host parent
	// would mean e was a device child of a host entry, which the
	// tail-contiguity invariant forbids) keeps the child, on the other
	// tier.
	if p := e.parent; p != nil {
		p.children--
		p.hostChildren++
		if p.children == 0 {
			// The parent has no device children left; it re-enters the
			// device-evictable list at its true recency.
			ix.lru.insertSorted(p)
		}
	}
	if e.hostChildren == 0 {
		// e is a host leaf. Its recency can exceed older host entries'
		// (probes refresh host recency without promoting), so it enters
		// sorted, not pushed.
		ix.host.lru.insertSorted(e)
	}
	for ix.host.resident > ix.host.cfg.Blocks {
		ix.dropHostLRU()
	}
	return true
}

// dropHostLRU evicts the least-recently-used host leaf for good. The
// host tier always has a leaf while it holds any entry (host entries
// form chain tails), so the call cannot stall.
func (ix *PrefixIndex) dropHostLRU() {
	h := ix.host.lru.head
	if h == nil {
		panic("kvcache: host tier over capacity with no evictable leaf")
	}
	ix.host.lru.remove(h)
	delete(ix.entries, h.hash)
	ix.mut++
	ix.m.HostRetained--
	ix.m.Evictions++
	ix.host.resident--
	if p := h.parent; p != nil {
		p.hostChildren--
		if p.onHost && p.hostChildren == 0 {
			// A host parent with no children left becomes the chain's new
			// host leaf. Device parents are unaffected: host children never
			// block the device-evictable list.
			ix.host.lru.insertSorted(p)
		}
	}
	ix.pool = append(ix.pool, h)
}

// promote restores a host entry to the device tier, grabbing a device
// block for it. Reports false when the cache has no free block — the
// caller truncates the acquired chain there. The caller charges the
// restore cost for all promoted blocks in one step.
func (ix *PrefixIndex) promote(e *prefixEntry) bool {
	b, err := ix.c.grab()
	if err != nil {
		return false
	}
	ix.host.lru.remove(e) // no-op when e is an interior host entry
	e.block = b
	e.onHost = false
	ix.c.indexRef(b, 1)
	ix.host.resident--
	ix.m.HostRetained--
	ix.m.Retained++
	ix.m.Promotions++
	if p := e.parent; p != nil {
		// Promotion walks the chain top-down, so e's parent is already
		// device-resident (or nil): it gains a device child and stops
		// being device-evictable.
		p.hostChildren--
		p.children++
		ix.lru.remove(p)
	}
	if e.children == 0 {
		// e's remaining children (if any) are still host-resident, so e is
		// a device leaf. The walk just touched it, so its tick is the
		// newest on the list.
		ix.lru.push(e)
	}
	return true
}

// restoreCost returns the host-link seconds to move n blocks.
func (ix *PrefixIndex) restoreCost(n int) float64 {
	bytes := float64(n) * float64(ix.c.cfg.BlockSize) * float64(ix.c.cfg.BytesPerToken)
	return bytes / ix.host.cfg.LinkBandwidth
}

// Peek reports how many leading blocks of syms are resident on the
// device and host tiers, without refreshing recency or walk-memo state.
// Routing layers use it to rank replicas by session warmth; unlike
// Probe it never perturbs eviction order, so peeking at every dispatch
// is safe. Host-resident entries are chain tails, so the device count
// is always the contiguous head of the match.
func (ix *PrefixIndex) Peek(syms []uint64) (deviceBlocks, hostBlocks int) {
	bs := ix.c.cfg.BlockSize
	maxBlocks := (len(syms) - 1) / bs
	h := prefixSeed
	for k := 0; k < maxBlocks; k++ {
		for _, sym := range syms[k*bs : (k+1)*bs] {
			h = prefixMix(h, sym)
		}
		e := ix.entries[h]
		if e == nil {
			break
		}
		if e.onHost {
			hostBlocks++
		} else {
			deviceBlocks++
		}
	}
	return deviceBlocks, hostBlocks
}

// CheckInvariants audits the index and its cache: the cache's refcount
// reconciliation, tier residency counters, the chain-tail invariant
// (a host entry never has a device child), child-counter exactness,
// and LRU membership/order on both tiers. Used by property tests.
func (ix *PrefixIndex) CheckInvariants() error {
	if err := ix.c.CheckInvariants(); err != nil {
		return err
	}
	device, host := 0, 0
	children := make(map[*prefixEntry]int, len(ix.entries))
	hostChildren := make(map[*prefixEntry]int, len(ix.entries))
	for hh, e := range ix.entries {
		if e.hash != hh {
			return fmt.Errorf("kvcache: entry keyed %d carries hash %d", hh, e.hash)
		}
		if e.onHost {
			host++
			if e.block != hostBlock {
				return fmt.Errorf("kvcache: host entry %d still holds device block %d", hh, e.block)
			}
			if e.children != 0 {
				return fmt.Errorf("kvcache: host entry %d has %d device children (chains must demote tail-first)", hh, e.children)
			}
		} else {
			device++
			if e.block < 0 {
				return fmt.Errorf("kvcache: device entry %d has no block", hh)
			}
		}
		if p := e.parent; p != nil {
			if found := ix.entries[p.hash]; found != p {
				return fmt.Errorf("kvcache: entry %d has a dangling parent", hh)
			}
			if e.onHost {
				hostChildren[p]++
			} else {
				children[p]++
			}
		}
	}
	if device != ix.m.Retained {
		return fmt.Errorf("kvcache: %d device entries, Retained metric says %d", device, ix.m.Retained)
	}
	if host != ix.m.HostRetained {
		return fmt.Errorf("kvcache: %d host entries, HostRetained metric says %d", host, ix.m.HostRetained)
	}
	if ix.host != nil {
		if host != ix.host.resident {
			return fmt.Errorf("kvcache: %d host entries, tier resident counter says %d", host, ix.host.resident)
		}
		if ix.host.resident > ix.host.cfg.Blocks {
			return fmt.Errorf("kvcache: host tier holds %d blocks over its %d capacity", ix.host.resident, ix.host.cfg.Blocks)
		}
	} else if host != 0 {
		return fmt.Errorf("kvcache: %d host entries with no host tier attached", host)
	}
	for hh, e := range ix.entries {
		if e.children != children[e] {
			return fmt.Errorf("kvcache: entry %d counts %d device children, %d found", hh, e.children, children[e])
		}
		if e.hostChildren != hostChildren[e] {
			return fmt.Errorf("kvcache: entry %d counts %d host children, %d found", hh, e.hostChildren, hostChildren[e])
		}
		wantLRU := e.children == 0 && !e.onHost
		wantHostLRU := e.onHost && e.hostChildren == 0
		if e.inLRU != (wantLRU || wantHostLRU) {
			return fmt.Errorf("kvcache: entry %d LRU membership %v, want %v", hh, e.inLRU, wantLRU || wantHostLRU)
		}
	}
	if err := ix.lru.checkSorted("device"); err != nil {
		return err
	}
	if ix.host != nil {
		if err := ix.host.lru.checkSorted("host"); err != nil {
			return err
		}
	}
	return nil
}

// checkSorted verifies the list links are consistent and lastUse is
// non-decreasing front to back.
func (l *lruList) checkSorted(name string) error {
	var prev *prefixEntry
	for e := l.head; e != nil; e = e.next {
		if e.prev != prev {
			return fmt.Errorf("kvcache: %s LRU back-link broken at block %d", name, e.block)
		}
		if prev != nil && prev.lastUse > e.lastUse {
			return fmt.Errorf("kvcache: %s LRU out of order (%d after %d)", name, e.lastUse, prev.lastUse)
		}
		prev = e
	}
	if l.tail != prev {
		return fmt.Errorf("kvcache: %s LRU tail does not terminate the list", name)
	}
	return nil
}
