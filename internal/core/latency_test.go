package core

import (
	"math"
	"testing"
	"testing/quick"

	"edgereasoning/internal/gpusim"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/model"
)

func orinSim() *gpusim.Sim { return gpusim.New(hw.JetsonAGXOrin64GB()) }

func TestPrefillModelPredictAndPad(t *testing.T) {
	pm := PrefillModel{A: 1e-7, B: 1e-4, C: 0.1, Tile: 128}
	// 100 tokens pad to 128.
	want := 1e-7*128*128 + 1e-4*128 + 0.1
	if got := pm.Predict(100); math.Abs(got-want) > 1e-12 {
		t.Errorf("Predict(100) = %v, want %v", got, want)
	}
	if pm.Predict(0) != 0.0+pm.C {
		// Pad(0) is 0, so prediction degenerates to C.
		t.Errorf("Predict(0) = %v, want C", pm.Predict(0))
	}
}

func TestDecodeModelMatchesEqn2(t *testing.T) {
	dm := DecodeModel{M: 1e-6, N: 0.1}
	// Sum of TBT over O steps starting at context I.
	i, o := 512, 100
	var want float64
	for step := 0; step < o; step++ {
		want += dm.TBT(i + step)
	}
	if got := dm.Predict(i, o); math.Abs(got-want) > 1e-9 {
		t.Errorf("Predict = %v, want TBT sum %v", got, want)
	}
	if dm.Predict(i, 0) != 0 {
		t.Error("zero output must cost zero")
	}
}

// The fitted coefficients must land near the paper's Table IV/V values:
// the simulator and the fitting pipeline together reproduce §IV-A.
func TestFittedDecodeCoefficientsNearPaper(t *testing.T) {
	sim := orinSim()
	paper := PaperDecodeModels()
	for _, spec := range model.DSR1Family() {
		dm, rep, err := FitDecodeModel(sim, spec.Arch, spec.DType)
		if err != nil {
			t.Fatal(err)
		}
		want := paper[spec.ID]
		if math.Abs(dm.N-want.N)/want.N > 0.15 {
			t.Errorf("%s: fitted n = %.4f, paper %.4f (±15%%)", spec.ID, dm.N, want.N)
		}
		// m is tiny; check the same order of magnitude and sign where the
		// paper's value is meaningfully positive.
		if want.M > 1e-7 {
			if dm.M < want.M/3 || dm.M > want.M*3 {
				t.Errorf("%s: fitted m = %.3g, paper %.3g (same decade)", spec.ID, dm.M, want.M)
			}
		}
		if rep.MAPE > 0.05 {
			t.Errorf("%s: decode fit MAPE = %.3f, want < 5%%", spec.ID, rep.MAPE)
		}
	}
}

func TestFittedPrefillConstantNearPaper(t *testing.T) {
	sim := orinSim()
	paper := PaperPrefillModels()
	for _, spec := range model.DSR1Family() {
		pm, rep, err := FitPrefillModel(sim, spec.Arch, spec.DType, 2048)
		if err != nil {
			t.Fatal(err)
		}
		want := paper[spec.ID]
		// The constant c is the weight-read floor + launch overhead; it is
		// the most physically grounded coefficient. ±50% tolerance.
		if math.Abs(pm.C-want.C)/want.C > 0.5 {
			t.Errorf("%s: fitted c = %.3f, paper %.3f", spec.ID, pm.C, want.C)
		}
		if rep.MAPE > 0.15 {
			t.Errorf("%s: prefill fit MAPE = %.3f", spec.ID, rep.MAPE)
		}
	}
}

// Table VI: the analytic model tracks held-out workloads with total MAPE
// under a few percent.
func TestLatencyModelValidationMAPE(t *testing.T) {
	sim := orinSim()
	spec := model.MustLookup(model.DSR1Llama8B)
	lm, err := FitLatencyModel(sim, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Held-out workload: (I, O) pairs the fits never saw.
	workload := [][2]int{{96, 300}, {200, 700}, {333, 950}, {700, 1500}, {150, 90}, {1500, 2500}}
	pMAPE, dMAPE, tMAPE := ValidateLatencyModel(sim, spec.Arch, spec.DType, lm, workload)
	if dMAPE > 0.03 {
		t.Errorf("decode MAPE = %.4f, paper reports < 0.6%%", dMAPE)
	}
	if tMAPE > 0.03 {
		t.Errorf("total MAPE = %.4f, paper reports < 0.6%%", tMAPE)
	}
	// Prefill MAPE is larger (padding steps), as in the paper (7–13%).
	if pMAPE > 0.25 {
		t.Errorf("prefill MAPE = %.4f, paper reports 7-13%%", pMAPE)
	}
}

func TestMaxTokensWithinInvertsTotal(t *testing.T) {
	sim := orinSim()
	spec := model.MustLookup(model.DSR1Qwen14B)
	lm, err := FitLatencyModel(sim, spec)
	if err != nil {
		t.Fatal(err)
	}
	const prompt = 180
	for _, budget := range []float64{5, 20, 60, 120} {
		o := lm.MaxTokensWithin(prompt, budget)
		if o <= 0 {
			if budget > 2 {
				t.Errorf("budget %.0fs: no tokens fit (prefill alone is %.2fs)", budget, lm.Prefill.Predict(prompt))
			}
			continue
		}
		if lm.Total(prompt, o) > budget+1e-6 {
			t.Errorf("budget %.0fs: %d tokens overshoot to %.2fs", budget, o, lm.Total(prompt, o))
		}
		if lm.Total(prompt, o+2) <= budget {
			t.Errorf("budget %.0fs: inversion not tight (%d tokens fit too)", budget, o+2)
		}
	}
}

// Paper example (§V-A): DSR1-Qwen-14B with >113-token budgets becomes
// preferable beyond ~21s. Our inversion should place ~100-130 tokens
// within a 21s budget for the 14B.
func TestFig7CrossoverTokenBudget(t *testing.T) {
	sim := orinSim()
	spec := model.MustLookup(model.DSR1Qwen14B)
	lm, err := FitLatencyModel(sim, spec)
	if err != nil {
		t.Fatal(err)
	}
	o := lm.MaxTokensWithin(180, 21)
	if o < 85 || o > 140 {
		t.Errorf("14B tokens within 21s = %d, paper implies ~113", o)
	}
}

// Property: MaxTokensWithin is monotone in the budget.
func TestMaxTokensMonotoneProperty(t *testing.T) {
	lm := LatencyModel{
		Prefill: PrefillModel{A: 1e-7, B: 3e-4, C: 0.1, Tile: 128},
		Decode:  DecodeModel{M: 1e-6, N: 0.187},
	}
	f := func(a, b uint16) bool {
		ba, bb := float64(a%600), float64(b%600)
		if ba > bb {
			ba, bb = bb, ba
		}
		return lm.MaxTokensWithin(180, ba) <= lm.MaxTokensWithin(180, bb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPaperModelTables(t *testing.T) {
	if len(PaperPrefillModels()) != 3 || len(PaperDecodeModels()) != 3 {
		t.Error("paper coefficient tables must cover the DSR1 trio")
	}
	pm := PaperPrefillModels()[model.DSR1Llama8B]
	if pm.C != 0.104 {
		t.Errorf("8B paper c = %v, want 0.104", pm.C)
	}
}
