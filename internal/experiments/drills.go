package experiments

import (
	"fmt"

	"edgereasoning/internal/engine"
	"edgereasoning/internal/faults"
	"edgereasoning/internal/fleet"
	"edgereasoning/internal/model"
	"edgereasoning/internal/workload"
)

func init() {
	register("drills", drillsStudy)
}

// drillsStudy is the fault-injection outage drill: a deadline-bearing
// stream is served through a fleet under generated fault schedules —
// lossy crashes with restarts, transient stalls, thermal-throttle
// windows — swept over crash rate x throttle depth, and each fault
// point is run twice: once with no recovery machinery (aborted work is
// abandoned) and once with retry re-admission, circuit breakers, and
// health-aware routing. The verify table locks the recovery claims at
// every fault point: the recovery leg must strictly beat abandonment on
// goodput (served) and deadline hit rate, and both legs must conserve
// work exactly — a request lost between a crash and its re-admission is
// precisely the bug this drill exists to catch.
func drillsStudy(opts Options) ([]Table, error) {
	replicas := opts.DrillReplicas
	if replicas <= 0 {
		replicas = 3
	}
	restart := opts.DrillRestart
	if restart <= 0 {
		restart = 5
	}
	devices, err := fleet.ParseDevices(opts.FleetDevices)
	if err != nil {
		return nil, err
	}
	spec := model.MustLookup(model.Qwen25_1_5Bit)

	// A busy but unsaturated load (~0.8 QPS per replica against a ~1.1
	// single-replica knee): enough in-flight work that a crash always
	// has something to abort, enough headroom that a re-admitted retry
	// can land on a healthy replica and still meet its deadline. Past
	// the knee the drill is meaningless — retries only deepen a queue
	// that was already hopeless.
	const qps = 2.4
	n := opts.sample(600)
	profile := workload.InteractiveAssistant(qps, n)
	profile.DeadlineSlack = 3
	profile.DeadlineSlackMax = 9
	reqs, err := workload.Generate(profile, opts.Seed)
	if err != nil {
		return nil, err
	}
	horizon := float64(n) / qps

	type point struct {
		crashRate float64 // expected crashes per replica over the run
		factor    float64 // thermal-throttle slowdown (1 = none)
	}
	points := []point{
		{1, 1},
		{1, 2},
		{2, 1},
		{2, 2},
	}

	serve := func(p point, recover bool) (fleet.Metrics, error) {
		sched, err := faults.Generate(faults.GenConfig{
			Replicas: replicas, Horizon: horizon,
			CrashRate: p.crashRate, RestartDelay: restart,
			StallRate: 1, StallDuration: 2,
			ThrottleRate: 2, ThrottleDuration: horizon / 8, ThrottleFactor: p.factor,
		}, opts.Seed)
		if err != nil {
			return fleet.Metrics{}, err
		}
		cfg := fleet.Config{
			Replicas: fleet.HeterogeneousReplicas(replicas, devices, spec),
			Policy:   fleet.DeadlineAware,
			Faults:   &sched,
		}
		if recover {
			// Hedge: a crash abort is not a transient server error — the
			// work is known-lost and capacity exists elsewhere, so the
			// first re-admission goes out immediately. The breaker needs
			// two consecutive crashes to open and probes quickly: with a
			// single-digit fleet, fencing off a replica for long costs
			// more goodput than the occasional re-abort it prevents.
			cfg.Retry = &fleet.RetryPolicy{Hedge: true}
			cfg.Health = &fleet.HealthConfig{FailureThreshold: 2, ProbeAfter: 1}
		}
		return fleet.ServeSource(cfg, engine.NewSliceSource(reqs))
	}

	sweep := Table{
		ID: "drills",
		Title: fmt.Sprintf("Outage drills: %d requests at %.1f QPS (3-9s slack) on a %d-replica pool, crash rate x throttle depth, restart %.0fs",
			n, qps, replicas, restart),
		Columns: []string{"crashes/replica", "throttle", "recovery", "crashes", "aborted", "retried",
			"served", "dropped", "lost_s", "breaker_opens", "hit_rate_pct", "p99_s"},
		Notes: []string{
			"each fault point runs the same stream and schedule twice: recovery=none abandons aborted work, retry+health re-admits it through the shared ingress",
			"lost_s is crashed work already executed and thrown away; stalls and throttles stretch time but lose nothing",
		},
	}
	verify := Table{
		ID:      "drills-verify",
		Title:   "Drills verify: retry+health vs no recovery at every fault point",
		Columns: []string{"fault_point", "metric", "none", "retry+health", "check"},
		Notes: []string{
			"recovery must strictly beat abandonment on served requests and deadline hit rate at every fault point",
			"conserved requires Served + Dropped == Offered exactly on both legs — zero requests silently lost",
			"the win marks are calibrated at the default operating point (below the knee, survivable outages); past the knee retries deepen a hopeless queue and abandonment wins on latency",
		},
	}
	check := func(ok bool) string {
		if ok {
			return "pass"
		}
		return "FAIL"
	}
	legName := func(recover bool) string {
		if recover {
			return "retry+health"
		}
		return "none"
	}
	for _, p := range points {
		var byLeg [2]fleet.Metrics
		for i, recover := range []bool{false, true} {
			m, err := serve(p, recover)
			if err != nil {
				return nil, err
			}
			byLeg[i] = m
			sweep.AddRow(f1(p.crashRate), f1(p.factor), legName(recover),
				di(m.Crashes), di(m.Aborted), di(m.Retried),
				di(m.Served), di(m.Dropped), f1(m.LostWorkSeconds), di(m.BreakerOpens),
				f1(m.HitRate()*100), f2(m.P99Latency))
		}
		none, rec := byLeg[0], byLeg[1]
		label := fmt.Sprintf("cr=%.0f,thr=%.0fx", p.crashRate, p.factor)
		verify.AddRow(label, "served", di(none.Served), di(rec.Served),
			check(rec.Served > none.Served))
		verify.AddRow(label, "hit_rate_pct", f1(none.HitRate()*100), f1(rec.HitRate()*100),
			check(rec.HitRate() > none.HitRate()))
		conserved := none.Served+none.Dropped == none.Offered && rec.Served+rec.Dropped == rec.Offered &&
			none.Offered == len(reqs) && rec.Offered == len(reqs)
		verify.AddRow(label, "conserved", di(none.Served+none.Dropped), di(rec.Served+rec.Dropped),
			check(conserved))
	}
	return []Table{sweep, verify}, nil
}
