package data

import (
	"math"
	"testing"
)

func TestLoadSizes(t *testing.T) {
	cases := []struct {
		b    Benchmark
		want int
	}{
		{MMLURedux, 3000},
		{MMLU, 15000},
		{AIME2024, 30},
		{Math500, 500},
	}
	for _, c := range cases {
		bank := MustLoad(c.b, 1)
		if bank.Size() != c.want {
			t.Errorf("%s: size = %d, want %d", c.b, bank.Size(), c.want)
		}
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("nope", 1); err == nil {
		t.Error("unknown benchmark must fail")
	}
}

func TestLoadDeterministic(t *testing.T) {
	a := MustLoad(MMLURedux, 42)
	b := MustLoad(MMLURedux, 42)
	for i := range a.Questions {
		if a.Questions[i].Difficulty != b.Questions[i].Difficulty ||
			a.Questions[i].PromptTokens != b.Questions[i].PromptTokens {
			t.Fatal("same seed must reproduce the identical bank")
		}
	}
	c := MustLoad(MMLURedux, 43)
	if a.Questions[0].Difficulty == c.Questions[0].Difficulty {
		t.Error("different seeds should differ (almost surely)")
	}
}

func TestQuestionShape(t *testing.T) {
	bank := MustLoad(MMLURedux, 1)
	for _, q := range bank.Questions {
		if q.Difficulty < 0 || q.Difficulty > 1 {
			t.Fatalf("difficulty out of range: %v", q.Difficulty)
		}
		if q.Choices != 4 {
			t.Fatalf("MMLU questions must have 4 choices, got %d", q.Choices)
		}
		if len(q.DistractorBias) != 3 {
			t.Fatalf("want 3 distractor weights, got %d", len(q.DistractorBias))
		}
		if q.PromptTokens < 16 {
			t.Fatalf("prompt too short: %d", q.PromptTokens)
		}
	}
}

func TestExactMatchQuestions(t *testing.T) {
	bank := MustLoad(NaturalPlanCalendar, 1)
	for _, q := range bank.Questions[:50] {
		if q.Choices != 0 {
			t.Fatal("Natural-Plan must be exact-match (Choices == 0)")
		}
		if len(q.DistractorBias) != 0 {
			t.Fatal("exact-match questions carry no distractor profile")
		}
		if q.WrongAttractor <= 0 {
			t.Fatal("exact-match questions need a wrong-answer collision rate")
		}
	}
}

func TestPromptLengths(t *testing.T) {
	mmlu := MustLoad(MMLURedux, 1)
	np := MustLoad(NaturalPlanTrip, 1)
	mean := func(b *Bank) float64 {
		s := 0.0
		for _, q := range b.Questions {
			s += float64(q.PromptTokens)
		}
		return s / float64(b.Size())
	}
	mMMLU, mNP := mean(mmlu), mean(np)
	if math.Abs(mMMLU-180)/180 > 0.10 {
		t.Errorf("MMLU mean prompt = %.0f, want ~180", mMMLU)
	}
	if mNP < 2*mMMLU {
		t.Errorf("Natural-Plan prompts (%.0f) should be much longer than MMLU (%.0f)", mNP, mMMLU)
	}
}

func TestDominantDistractorRate(t *testing.T) {
	bank := MustLoad(MMLURedux, 1)
	dominant := 0
	for _, q := range bank.Questions {
		maxW, sumW := 0.0, 0.0
		for _, w := range q.DistractorBias {
			sumW += w
			if w > maxW {
				maxW = w
			}
		}
		if maxW/sumW > 0.6 {
			dominant++
		}
	}
	rate := float64(dominant) / float64(bank.Size())
	if rate < 0.15 || rate > 0.30 {
		t.Errorf("dominant-distractor rate = %.2f, want ~0.22", rate)
	}
}

func TestSubsample(t *testing.T) {
	bank := MustLoad(MMLURedux, 1)
	sub := bank.Subsample(150)
	if sub.Size() != 150 {
		t.Errorf("subsample size = %d, want 150", sub.Size())
	}
	if sub.Questions[0].Index != bank.Questions[0].Index {
		t.Error("subsample must take the first questions")
	}
	if bank.Subsample(1<<30).Size() != bank.Size() {
		t.Error("oversized subsample must clamp")
	}
}

func TestNaturalPlanTasksAndAll(t *testing.T) {
	if len(NaturalPlanTasks()) != 3 {
		t.Error("want 3 Natural-Plan tasks")
	}
	for _, b := range All() {
		if _, err := Load(b, 1); err != nil {
			t.Errorf("All() contains unloadable %s: %v", b, err)
		}
	}
}

func TestDifficultyDistributionByBenchmark(t *testing.T) {
	// Natural-Plan should skew much harder than MMLU.
	mean := func(b Benchmark) float64 {
		bank := MustLoad(b, 1)
		s := 0.0
		for _, q := range bank.Questions {
			s += q.Difficulty
		}
		return s / float64(bank.Size())
	}
	if mean(NaturalPlanTrip) <= mean(MMLURedux) {
		t.Error("Natural-Plan must be harder than MMLU on average")
	}
}
