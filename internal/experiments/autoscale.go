package experiments

import (
	"fmt"
	"math"

	"edgereasoning/internal/engine"
	"edgereasoning/internal/fleet"
	"edgereasoning/internal/model"
	"edgereasoning/internal/workload"
)

func init() {
	register("autoscale", autoscaleStudy)
}

// autoscaleStudy is the elastic-fleet experiment: a bursty deadline-
// bearing stream (a steady trickle with a sharp spike riding on it) is
// served three ways — a fixed pool at the autoscaler's floor, a fixed
// pool sized to the elastic run's average replica-seconds, and the
// elastic pool itself — and the ingress admission disciplines are
// compared on a sustained overload. Two verify tables lock the claims:
// the autoscaled pool must strictly beat the equal-replica-seconds
// fixed pool on p99 latency and deadline hit rate, and shedding
// admission must strictly beat blocking FIFO on hit rate under
// overload.
func autoscaleStudy(opts Options) ([]Table, error) {
	min := opts.AutoMin
	if min <= 0 {
		min = 1
	}
	max := opts.AutoMax
	if max <= 0 {
		max = 6
	}
	if max < min {
		return nil, fmt.Errorf("autoscale: -max %d below -min %d", max, min)
	}
	admission := fleet.FIFO
	if opts.AutoAdmission != "" {
		var err error
		if admission, err = fleet.ParseAdmission(opts.AutoAdmission); err != nil {
			return nil, err
		}
	}
	scaleOn, err := fleet.ParseScaleSignal(opts.AutoScaleOn)
	if err != nil {
		return nil, err
	}
	devices, err := fleet.ParseDevices(opts.FleetDevices)
	if err != nil {
		return nil, err
	}
	spec := model.MustLookup(model.Qwen25_1_5Bit)

	// The stress shape: a 0.2 QPS background trickle over a ~4-minute
	// span, with a 10 QPS spike arriving two minutes in. A fixed pool
	// sized for the background drowns in the spike; one sized for the
	// spike idles away most of its replica-seconds.
	baseQPS := opts.FleetQPS
	if baseQPS <= 0 {
		baseQPS = 0.2
	}
	spikeQPS := baseQPS * 100
	nBase, nSpike := 50, 120
	if opts.Quick {
		nBase, nSpike = 30, 90
	}
	background := workload.InteractiveAssistant(baseQPS, nBase)
	background.DeadlineSlack = 3
	background.DeadlineSlackMax = 8
	spike := workload.InteractiveAssistant(spikeQPS, nSpike)
	spike.DeadlineSlack = 3
	spike.DeadlineSlackMax = 8
	const burstStart = 120.0
	reqs, err := workload.Bursty(background, spike, burstStart, opts.Seed)
	if err != nil {
		return nil, err
	}

	auto := &fleet.AutoscaleConfig{
		Min: min, Max: max,
		Spec: spec, Devices: devices,
		ColdStart:       2,
		DepthPerReplica: 2,
		IdleRetire:      10,
		Cooldown:        0.5,
		ScaleOn:         scaleOn,
	}
	serve := func(replicas int, autoscale *fleet.AutoscaleConfig) (fleet.Metrics, error) {
		return fleet.ServeSource(fleet.Config{
			Replicas:  fleet.HeterogeneousReplicas(replicas, devices, spec),
			Policy:    fleet.DeadlineAware,
			Admission: admission,
			Autoscale: autoscale,
		}, engine.NewSliceSource(reqs))
	}
	elastic, err := serve(min, auto)
	if err != nil {
		return nil, err
	}
	floor, err := serve(min, nil)
	if err != nil {
		return nil, err
	}
	// The fair fixed baseline: at least the elastic run's average
	// resource bill, held constant for the whole span. Rounding up
	// makes the comparison conservative — the fixed pool gets more
	// replica-seconds than the elastic one actually spent.
	eqN := int(math.Ceil(elastic.ReplicaSeconds / elastic.WallTime))
	if eqN < 1 {
		eqN = 1
	}
	fixed, err := serve(eqN, nil)
	if err != nil {
		return nil, err
	}

	pools := Table{
		ID: "autoscale",
		Title: fmt.Sprintf("Elastic vs fixed pools: bursty stream (%.1f QPS + %.1f QPS spike at t=%.0fs, 3-8s slack) on Qwen2.5-1.5B-it",
			baseQPS, spikeQPS, burstStart),
		Columns: []string{"pool", "replicas", "served", "dropped", "p50_s", "p99_s",
			"hit_rate_pct", "replica_s", "energy_kj"},
		Notes: []string{fmt.Sprintf("replica_s bills each replica from provision to retirement; the equal-cost pool holds %d replicas (elastic average %.1f)",
			eqN, elastic.ReplicaSeconds/elastic.WallTime)},
	}
	row := func(name, replicas string, m fleet.Metrics, replicaSeconds float64) {
		pools.AddRow(name, replicas, di(m.Served), di(m.Dropped), f2(m.P50Latency), f2(m.P99Latency),
			f1(m.HitRate()*100), f1(replicaSeconds), f2(m.TotalEnergy/1e3))
	}
	row("fixed-floor", di(min), floor, float64(min)*floor.WallTime)
	row("fixed-equal-cost", di(eqN), fixed, float64(eqN)*fixed.WallTime)
	row("autoscaled", fmt.Sprintf("%d..%d(peak %d)", min, max, elastic.PeakReplicas), elastic, elastic.ReplicaSeconds)

	events := Table{
		ID:      "autoscale-events",
		Title:   fmt.Sprintf("Autoscaler timeline: %d scale-ups, %d scale-downs (cold start %.0fs, idle retire %.0fs)", elastic.ScaleUps, elastic.ScaleDowns, auto.ColdStart, auto.IdleRetire),
		Columns: []string{"t_s", "event", "replica", "live", "reason"},
		Notes:   []string{"retirements are billed at idle-timer expiry, which can precede the dispatch event that noticed them"},
	}
	for _, ev := range elastic.ScaleEvents {
		dir := "down"
		if ev.Up {
			dir = "up"
		}
		events.AddRow(f1(ev.Time), dir, ev.Replica, di(ev.Live), ev.Reason)
	}

	// Admission-discipline leg: a sustained overload on a fixed
	// two-replica pool, where reordering and shedding at the ingress is
	// the only variable.
	overload := workload.InteractiveAssistant(6, 3*nBase)
	overload.DeadlineSlack = 2
	overload.DeadlineSlackMax = 6
	oreqs, err := workload.Generate(overload, opts.Seed)
	if err != nil {
		return nil, err
	}
	disciplines := Table{
		ID:      "autoscale-admission",
		Title:   fmt.Sprintf("Ingress admission disciplines under overload: %d requests at 6.0 QPS, 2-6s slack, fixed 2-replica pool", len(oreqs)),
		Columns: []string{"admission", "served", "shed", "p50_s", "p99_s", "hit_rate_pct"},
		Notes:   []string{"shed drops certain-miss work at the ingress (counted as missed deadlines) instead of serving it late"},
	}
	byDiscipline := map[fleet.Admission]fleet.Metrics{}
	for _, a := range fleet.Admissions() {
		m, err := fleet.ServeSource(fleet.Config{
			Replicas:  fleet.HeterogeneousReplicas(2, devices, spec),
			Policy:    fleet.LeastQueue,
			Admission: a,
		}, engine.NewSliceSource(oreqs))
		if err != nil {
			return nil, err
		}
		byDiscipline[a] = m
		disciplines.AddRow(a.String(), di(m.Served), di(m.Shed), f2(m.P50Latency), f2(m.P99Latency),
			f1(m.HitRate()*100))
	}

	check := func(ok bool) string {
		if ok {
			return "pass"
		}
		return "FAIL"
	}
	verify := Table{
		ID:      "autoscale-verify",
		Title:   "Autoscale verify: elastic pool vs equal-cost fixed pool; shedding vs blocking FIFO",
		Columns: []string{"metric", "baseline", "elastic/shed", "check"},
		Notes: []string{
			"the autoscaled pool must strictly beat the equal-replica-seconds fixed pool on p99 and hit rate",
			"shed admission must strictly beat blocking FIFO on hit rate under overload",
		},
	}
	verify.AddRow("p99_s (fixed-equal-cost vs autoscaled)", f2(fixed.P99Latency), f2(elastic.P99Latency),
		check(elastic.P99Latency < fixed.P99Latency))
	verify.AddRow("hit_rate_pct (fixed-equal-cost vs autoscaled)", f1(fixed.HitRate()*100), f1(elastic.HitRate()*100),
		check(elastic.HitRate() > fixed.HitRate()))
	fifoM, shedM := byDiscipline[fleet.FIFO], byDiscipline[fleet.Shed]
	verify.AddRow("hit_rate_pct (fifo vs shed, overload)", f1(fifoM.HitRate()*100), f1(shedM.HitRate()*100),
		check(shedM.HitRate() > fifoM.HitRate()))
	return []Table{pools, events, disciplines, verify}, nil
}
