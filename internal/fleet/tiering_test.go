package fleet

import (
	"testing"

	"edgereasoning/internal/engine"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/session"
)

func tieredOpts() cacheOptions {
	return cacheOptions{prefixCache: true, deviceBlocks: 64, hostTierBlocks: 128}
}

func sessHist(base uint64, n int) []uint64 {
	h := make([]uint64, n)
	for i := range h {
		h[i] = base + uint64(i)
	}
	return h
}

func sessTurn(id, sid string, arrival float64, hist []uint64, prompt, output int) engine.TimedRequest {
	tr := timed(id, arrival, prompt, output, 0)
	tr.SessionID = sid
	tr.PromptSyms = hist[:prompt]
	if prompt+output <= len(hist) {
		tr.OutputSyms = hist[prompt : prompt+output]
	}
	return tr
}

// TestSessionAffinityPrefersWarmHostOverCold pins the tentpole's routing
// rule: when a session must (re-)pin, a replica holding its history on
// the device cache wins, one holding it demoted in host DRAM beats a
// cold replica, and untiered fleets keep the legacy least-pinned pick.
func TestSessionAffinityPrefersWarmHostOverCold(t *testing.T) {
	mk := func(name string) *replica {
		r, err := newReplica(ReplicaConfig{
			Name: name, Spec: smallSpec(), Device: hw.JetsonAGXOrin64GB(),
		}.withDefaults(0), tieredOpts())
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	cold, hostWarm, devWarm := mk("cold"), mk("host"), mk("dev")
	histA := sessHist(1<<40, 2048)
	histB := sessHist(1<<41, 2048)

	// hostWarm serves session A, then pressure from sessions B and C
	// demotes A's history to its host tier entirely (demotion is
	// leaf-first, so one pressure round leaves the chain head on device).
	histC := sessHist(1<<42, 2048)
	if _, err := hostWarm.eng.Serve([]engine.TimedRequest{sessTurn("a0", "sA", 0, histA, 512, 256)}, 4, engine.FCFS); err != nil {
		t.Fatal(err)
	}
	if _, err := hostWarm.eng.Serve([]engine.TimedRequest{sessTurn("b0", "sB", 1000, histB, 512, 256)}, 4, engine.FCFS); err != nil {
		t.Fatal(err)
	}
	if _, err := hostWarm.eng.Serve([]engine.TimedRequest{sessTurn("c0", "sC", 2000, histC, 512, 256)}, 4, engine.FCFS); err != nil {
		t.Fatal(err)
	}
	// devWarm serves session A with no pressure: history stays on device.
	if _, err := devWarm.eng.Serve([]engine.TimedRequest{sessTurn("a0", "sA", 0, histA, 512, 256)}, 4, engine.FCFS); err != nil {
		t.Fatal(err)
	}

	turn := sessTurn("a1", "sA", 3000, histA, 512+256+128, 64)
	if dev, host := hostWarm.eng.PeekPrefix(turn.PromptSyms); dev != 0 || host == 0 {
		t.Fatalf("setup: hostWarm peek = (%d, %d), want (0, >0)", dev, host)
	}
	if dev, _ := devWarm.eng.PeekPrefix(turn.PromptSyms); dev == 0 {
		t.Fatalf("setup: devWarm history not device-resident")
	}

	ro := &router{replicas: []*replica{cold, hostWarm, devWarm}, policy: SessionAffinity, tiered: true}
	if got := ro.choose([]int{0, 1, 2}, turn, 3000); got != 2 {
		t.Fatalf("full candidate set pinned to %d, want 2 (device-warm)", got)
	}
	delete(ro.sticky, "sA")
	ro.pinned[2]--
	// Device-warm replica saturated: host-warm must beat cold.
	if got := ro.choose([]int{0, 1}, turn, 3000); got != 1 {
		t.Fatalf("without device-warm candidate pinned to %d, want 1 (host-warm)", got)
	}

	// Untiered router on the same replicas: least-pinned tie falls to the
	// first candidate, warmth ignored.
	legacy := &router{replicas: []*replica{cold, hostWarm, devWarm}, policy: SessionAffinity}
	if got := legacy.choose([]int{0, 1, 2}, turn, 3000); got != 0 {
		t.Fatalf("untiered router pinned to %d, want 0 (legacy least-pinned)", got)
	}
}

// TestTieredFleetServesSessionsUnderPressure runs the full stack: a
// session stream over starved tiered replicas must complete with tier
// traffic surfaced in the fleet metrics, and generate exactly the same
// tokens as the untiered fleet.
func TestTieredFleetServesSessionsUnderPressure(t *testing.T) {
	reqs, err := session.Generate(session.AgentLoop(6, 3, 1), 7)
	if err != nil {
		t.Fatal(err)
	}
	run := func(hostBlocks int) Metrics {
		cfg := homogeneousFleet(2, SessionAffinity)
		cfg.PrefixCache = true
		cfg.DeviceBlocks = 192
		cfg.HostTierBlocks = hostBlocks
		m, err := Serve(cfg, reqs)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	on := run(1024)
	off := run(0)

	if on.Served != len(reqs) || off.Served != len(reqs) {
		t.Fatalf("served %d (on) / %d (off) of %d", on.Served, off.Served, len(reqs))
	}
	if on.TierDemotions == 0 || on.TierPromotions == 0 || on.HostHits == 0 || on.RestoreSeconds <= 0 {
		t.Fatalf("tier traffic missing from fleet metrics: %+v", on)
	}
	if off.TierDemotions != 0 || off.RestoreSeconds != 0 {
		t.Fatalf("untiered fleet reported tier traffic: demotions %d restore %.6f",
			off.TierDemotions, off.RestoreSeconds)
	}
	// Tiering moves blocks, not tokens.
	total := 0
	for _, r := range reqs {
		total += r.PromptTokens + r.OutputTokens
	}
	for _, m := range []Metrics{on, off} {
		got := 0
		for _, rm := range m.Replicas {
			got += rm.TotalTokens
		}
		if got != total {
			t.Fatalf("fleet token conservation broken: %d, want %d", got, total)
		}
	}
	if on.PrefixHitRate() < off.PrefixHitRate() {
		t.Fatalf("host tier lowered fleet hit rate: on %.4f off %.4f",
			on.PrefixHitRate(), off.PrefixHitRate())
	}
}
