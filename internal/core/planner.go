package core

import (
	"fmt"
	"sort"

	"edgereasoning/internal/control"
	"edgereasoning/internal/cost"
	"edgereasoning/internal/data"
	"edgereasoning/internal/gpusim"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/llm"
	"edgereasoning/internal/model"
	"edgereasoning/internal/power"
	"edgereasoning/internal/tts"
)

// Candidate is one deployable inference recipe with its predicted
// operating point: {model, token control, parallel scaling factor} →
// {accuracy, latency, energy, cost}.
type Candidate struct {
	Model   model.ID
	Display string
	Policy  control.Policy
	SF      int

	Accuracy   float64 // benchmark accuracy (fraction)
	MeanTokens float64 // output tokens per question per branch
	Latency    float64 // seconds per question (analytic model)
	EnergyPerQ float64 // joules per question
	CostPerM   float64 // $/1M tokens
	// Interpolated marks candidates resting on interpolated calibration.
	Interpolated bool
}

// Label renders the paper-style name, e.g. "DSR1-Qwen-14B 256T" or
// "DSR1-Llama-8B Base x8".
func (c Candidate) Label() string {
	s := fmt.Sprintf("%s %s", c.Display, c.Policy.Label())
	if c.SF > 1 {
		s += fmt.Sprintf(" x%d", c.SF)
	}
	return s
}

// Planner enumerates and prices candidate recipes for one benchmark on
// one device, using fitted latency models for speed (the paper's stated
// reason for building them: full-dataset measurement takes days, the
// analytic model answers in seconds).
type Planner struct {
	Device *hw.Device
	Bench  data.Benchmark
	Seed   uint64
	// SampleQuestions bounds the per-candidate accuracy simulation for
	// SF>1 recipes (default 600).
	SampleQuestions int
	// ScalingFactors lists parallel-scaling options to consider for
	// hard-budget recipes (default {1}).
	ScalingFactors []int
	// Rates prices the recipes (default PaperRates).
	Rates cost.Rates

	sim      *gpusim.Sim
	meter    *power.Meter
	bank     *data.Bank
	latCache map[model.ID]LatencyModel
}

// NewPlanner builds a planner for a benchmark on a device.
func NewPlanner(device *hw.Device, bench data.Benchmark, seed uint64) (*Planner, error) {
	if err := device.Validate(); err != nil {
		return nil, err
	}
	bank, err := data.Load(bench, seed)
	if err != nil {
		return nil, err
	}
	return &Planner{
		Device:          device,
		Bench:           bench,
		Seed:            seed,
		SampleQuestions: 600,
		ScalingFactors:  []int{1},
		Rates:           cost.PaperRates(),
		sim:             gpusim.New(device),
		meter:           power.NewMeter(device),
		bank:            bank,
		latCache:        map[model.ID]LatencyModel{},
	}, nil
}

// meanPromptTokens averages the bank's prompt lengths.
func (p *Planner) meanPromptTokens() int {
	if p.bank.Size() == 0 {
		return 0
	}
	sum := 0
	for _, q := range p.bank.Questions {
		sum += q.PromptTokens
	}
	return sum / p.bank.Size()
}

// latencyModel returns (fitting on first use) the analytic model for a
// spec.
func (p *Planner) latencyModel(spec model.Spec) (LatencyModel, error) {
	if lm, ok := p.latCache[spec.ID]; ok {
		return lm, nil
	}
	lm, err := FitLatencyModel(p.sim, spec)
	if err != nil {
		return LatencyModel{}, err
	}
	p.latCache[spec.ID] = lm
	return lm, nil
}

// specsToConsider returns every catalog spec (and its quantized variant)
// that has any calibration on the benchmark.
func (p *Planner) specsToConsider() []model.Spec {
	var out []model.Spec
	for _, s := range model.All() {
		if len(llm.CalibratedConfigs(s.ID, p.Bench)) > 0 {
			out = append(out, s)
		}
		q := s.Quantized()
		if len(llm.CalibratedConfigs(q.ID, p.Bench)) > 0 {
			out = append(out, q)
		}
	}
	return out
}

// price fills a candidate's latency, energy, and cost from the analytic
// models and simulator.
func (p *Planner) price(spec model.Spec, c *Candidate) error {
	lm, err := p.latencyModel(spec)
	if err != nil {
		return err
	}
	prompt := p.meanPromptTokens()
	out := int(c.MeanTokens + 0.5)
	if out < 1 {
		out = 1
	}
	if c.SF <= 1 {
		c.Latency = lm.Total(prompt, out)
	} else {
		// Parallel scaling: one prefill plus a batched decode run.
		dres := p.sim.DecodeRun(spec.Arch, spec.DType, prompt, out, c.SF)
		c.Latency = lm.Prefill.Predict(prompt) + dres.Time
	}
	pres := p.sim.Prefill(spec.Arch, spec.DType, prompt, 1)
	dres := p.sim.DecodeRun(spec.Arch, spec.DType, prompt, out, c.SF)
	c.EnergyPerQ = p.meter.Energy(pres) + p.meter.Energy(dres)
	tokens := prompt + out*c.SF
	// Figs 6-8 / Tables X-XI price recipes from energy measurements alone
	// ("average cost per million tokens derived from energy measurements",
	// §V); hardware amortization enters only the Table III deployment
	// economics.
	bill := cost.Bill(p.Rates, c.EnergyPerQ, 0, tokens)
	c.CostPerM = bill.PerMillionTokens()
	return nil
}

// Candidates enumerates every calibrated recipe: each (model, config)
// cell at SF=1, plus hard-budget cells at the configured scaling factors.
func (p *Planner) Candidates() ([]Candidate, error) {
	var out []Candidate
	for _, spec := range p.specsToConsider() {
		for _, key := range llm.CalibratedConfigs(spec.ID, p.Bench) {
			pol, err := control.ParseKey(key)
			if err != nil {
				return nil, err
			}
			beh, ok := llm.Calibrated(spec.ID, p.Bench, key)
			if !ok {
				continue
			}
			sfs := []int{1}
			if pol.Kind == control.Hard {
				sfs = p.ScalingFactors
			}
			for _, sf := range sfs {
				if sf < 1 {
					continue
				}
				c := Candidate{
					Model:        spec.ID,
					Display:      spec.DisplayName,
					Policy:       pol,
					SF:           sf,
					MeanTokens:   beh.MeanTokens,
					Interpolated: beh.Interpolated,
				}
				if sf == 1 {
					c.Accuracy = beh.Accuracy
				} else {
					acc, err := p.votedAccuracy(spec, pol, sf)
					if err != nil {
						return nil, err
					}
					c.Accuracy = acc
				}
				if err := p.price(spec, &c); err != nil {
					return nil, err
				}
				out = append(out, c)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Latency < out[j].Latency })
	return out, nil
}

// votedAccuracy estimates majority-vote accuracy on a bank subsample.
func (p *Planner) votedAccuracy(spec model.Spec, pol control.Policy, sf int) (float64, error) {
	sub := p.bank.Subsample(p.SampleQuestions)
	tw := llm.NewTwin(spec, p.bank, p.Seed)
	res, err := tts.EvaluateBank(tw, sub, pol, sf)
	if err != nil {
		return 0, err
	}
	return res.Accuracy, nil
}

// Plan returns the highest-accuracy candidate whose modeled latency fits
// the budget (ties break toward lower latency). ok is false when nothing
// fits.
func (p *Planner) Plan(latencyBudget float64) (Candidate, bool, error) {
	cands, err := p.Candidates()
	if err != nil {
		return Candidate{}, false, err
	}
	return PickWithinBudget(cands, latencyBudget)
}

// PickWithinBudget selects from precomputed candidates.
func PickWithinBudget(cands []Candidate, latencyBudget float64) (Candidate, bool, error) {
	return PickWithinBudgets(cands, latencyBudget, 0)
}

// PickWithinBudgets selects the highest-accuracy candidate meeting both a
// latency budget and (when positive) a per-question energy budget in
// joules — the battery-constrained variant a mobile robot plans with.
func PickWithinBudgets(cands []Candidate, latencyBudget, energyBudget float64) (Candidate, bool, error) {
	best := Candidate{Accuracy: -1}
	found := false
	for _, c := range cands {
		if c.Latency > latencyBudget {
			continue
		}
		if energyBudget > 0 && c.EnergyPerQ > energyBudget {
			continue
		}
		if c.Accuracy > best.Accuracy || (c.Accuracy == best.Accuracy && c.Latency < best.Latency) {
			best = c
			found = true
		}
	}
	return best, found, nil
}

// PlanWithEnergy is Plan with an additional per-question energy budget
// (joules). A zero energy budget disables the constraint.
func (p *Planner) PlanWithEnergy(latencyBudget, energyBudget float64) (Candidate, bool, error) {
	cands, err := p.Candidates()
	if err != nil {
		return Candidate{}, false, err
	}
	return PickWithinBudgets(cands, latencyBudget, energyBudget)
}

// MaxTokensWithin exposes the latency-model inversion for a spec: the
// hard token budget that meets a latency target at this benchmark's mean
// prompt length. Combined with a budget-aware model like L1 this is
// Takeaway #6's deployment recipe.
func (p *Planner) MaxTokensWithin(spec model.Spec, latencyBudget float64) (int, error) {
	lm, err := p.latencyModel(spec)
	if err != nil {
		return 0, err
	}
	return lm.MaxTokensWithin(p.meanPromptTokens(), latencyBudget), nil
}
