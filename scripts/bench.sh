#!/usr/bin/env sh
# bench.sh — run the perf-trajectory benchmarks and maintain BENCH_serve.json.
#
#   scripts/bench.sh            # regression gate: fail if allocs/op regressed
#   scripts/bench.sh update     # re-measure and rewrite the "current" section
#
# Environment:
#   BENCHTIME   go test -benchtime value (default 2s; CI smoke uses 1x)
#
# The tracked targets are the serving hot loop (engine.Serve / engine.Run
# over a long-generation open-loop stream), the session-serving loop
# (multi-turn agentic stream, warm prefix cache vs cold), and the
# KV-cache append paths (bulk handle-based vs per-token). Only allocs/op
# is gated — it is
# deterministic across machines — while ns/op is recorded for the
# before/after table in the README. The pre-optimization reference in
# BENCH_serve.json's "pre_pr" section is preserved across updates.
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-2s}"
MODE="${1:-check}"

run_benches() {
  go test -run '^$' -bench 'BenchmarkServeHotLoop$|BenchmarkRunHotLoop$|BenchmarkSessionServe$' \
    -benchmem -benchtime "$BENCHTIME" -count 1 ./internal/engine
  go test -run '^$' -bench 'BenchmarkKVAppend$|BenchmarkKVAppendToken$' \
    -benchmem -benchtime "$BENCHTIME" -count 1 ./internal/kvcache
}

case "$MODE" in
  update)
    run_benches | tee /dev/stderr | go run ./cmd/benchcheck -baseline BENCH_serve.json -update
    ;;
  check)
    run_benches | tee /dev/stderr | go run ./cmd/benchcheck -baseline BENCH_serve.json
    ;;
  *)
    echo "usage: scripts/bench.sh [check|update]" >&2
    exit 2
    ;;
esac
