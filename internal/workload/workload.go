// Package workload generates open-loop request streams for serving
// studies: Poisson arrivals with lognormal prompt/output lengths and
// optional per-request deadlines. Together with engine.Serve it extends
// the paper's closed-batch cost study (§III-B: "edge deployment costs
// also benefit from batching and increased QPS") into a queueing-aware
// QPS sweep.
package workload

import (
	"fmt"
	"math"
	"sort"

	"edgereasoning/internal/engine"
	"edgereasoning/internal/stats"
)

// Profile shapes a request stream.
type Profile struct {
	// QPS is the mean arrival rate (Poisson process).
	QPS float64
	// N is the number of requests.
	N int
	// PromptMean / PromptSigma parameterize the lognormal prompt length.
	PromptMean  float64
	PromptSigma float64
	// OutputMean / OutputSigma parameterize the lognormal output length.
	OutputMean  float64
	OutputSigma float64
	// DeadlineSlack, when positive, assigns each request a deadline of
	// arrival + DeadlineSlack seconds.
	DeadlineSlack float64
	// DeadlineSlackMax, when above DeadlineSlack, draws each request's
	// slack uniformly from [DeadlineSlack, DeadlineSlackMax] — a mixed
	// urgency population where EDF meaningfully reorders FCFS.
	DeadlineSlackMax float64
}

// Validate rejects unusable profiles. Non-finite parameters are refused
// here so a poisoned profile can never emit NaN/Inf arrivals or
// deadlines into a serving run.
func (p Profile) Validate() error {
	finite := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
	switch {
	case !(p.QPS > 0) || !finite(p.QPS):
		return fmt.Errorf("workload: QPS must be positive and finite")
	case p.N <= 0:
		return fmt.Errorf("workload: N must be positive")
	case !(p.PromptMean > 0) || !finite(p.PromptMean) || !(p.OutputMean > 0) || !finite(p.OutputMean):
		return fmt.Errorf("workload: length means must be positive and finite")
	case math.IsNaN(p.PromptSigma) || p.PromptSigma < 0 || math.IsInf(p.PromptSigma, 0):
		return fmt.Errorf("workload: prompt sigma must be finite and non-negative")
	case math.IsNaN(p.OutputSigma) || p.OutputSigma < 0 || math.IsInf(p.OutputSigma, 0):
		return fmt.Errorf("workload: output sigma must be finite and non-negative")
	case math.IsNaN(p.DeadlineSlack) || p.DeadlineSlack < 0 || math.IsInf(p.DeadlineSlack, 0):
		return fmt.Errorf("workload: deadline slack must be finite and non-negative")
	case math.IsNaN(p.DeadlineSlackMax) || p.DeadlineSlackMax < 0 || math.IsInf(p.DeadlineSlackMax, 0):
		return fmt.Errorf("workload: deadline slack max must be finite and non-negative")
	}
	return nil
}

// Generate synthesizes the stream deterministically in (profile, seed).
func Generate(p Profile, seed uint64) ([]engine.TimedRequest, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(seed, fmt.Sprintf("workload/qps%.3f/n%d", p.QPS, p.N))
	out := make([]engine.TimedRequest, p.N)
	clock := 0.0
	for i := range out {
		// Exponential inter-arrival times (Poisson process).
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		clock += -math.Log(u) / p.QPS
		prompt := int(rng.LogNormalMean(p.PromptMean, p.PromptSigma))
		if prompt < 8 {
			prompt = 8
		}
		output := int(rng.LogNormalMean(p.OutputMean, p.OutputSigma))
		if output < 1 {
			output = 1
		}
		tr := engine.TimedRequest{
			Request: engine.Request{
				ID:           fmt.Sprintf("w%d", i),
				PromptTokens: prompt,
				OutputTokens: output,
			},
			Arrival: clock,
		}
		if p.DeadlineSlack > 0 {
			slack := p.DeadlineSlack
			if p.DeadlineSlackMax > p.DeadlineSlack {
				slack += rng.Float64() * (p.DeadlineSlackMax - p.DeadlineSlack)
			}
			tr.Deadline = clock + slack
		}
		out[i] = tr
	}
	return out, nil
}

// Bursty synthesizes a steady background stream with a traffic spike
// riding on top: the background profile runs from t=0 while the burst
// profile's requests (arrivals and deadlines both) are shifted to start
// at burstStart. IDs are prefixed "s" (steady) and "b" (burst) so the
// merged stream stays collision-free, and the result is sorted by
// arrival. This is the elastic-pool stress shape: a fixed fleet sized
// for the background drowns in the burst, one sized for the burst idles
// the rest of the time.
func Bursty(background, burst Profile, burstStart float64, seed uint64) ([]engine.TimedRequest, error) {
	if math.IsNaN(burstStart) || math.IsInf(burstStart, 0) || burstStart < 0 {
		return nil, fmt.Errorf("workload: burst start must be finite and non-negative")
	}
	steady, err := Generate(background, seed)
	if err != nil {
		return nil, fmt.Errorf("workload: background: %w", err)
	}
	spike, err := Generate(burst, seed^0x9e3779b97f4a7c15)
	if err != nil {
		return nil, fmt.Errorf("workload: burst: %w", err)
	}
	out := make([]engine.TimedRequest, 0, len(steady)+len(spike))
	for _, tr := range steady {
		tr.ID = "s" + tr.ID
		out = append(out, tr)
	}
	for _, tr := range spike {
		tr.ID = "b" + tr.ID
		tr.Arrival += burstStart
		if tr.Deadline > 0 {
			tr.Deadline += burstStart
		}
		out = append(out, tr)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Arrival < out[j].Arrival })
	return out, nil
}

// InteractiveAssistant is a short-output conversational profile (direct
// non-reasoning responses, ~40 tokens).
func InteractiveAssistant(qps float64, n int) Profile {
	return Profile{
		QPS: qps, N: n,
		PromptMean: 180, PromptSigma: 0.35,
		OutputMean: 40, OutputSigma: 0.4,
	}
}

// ReasoningBatch is a long-chain offline profile (AIME-style reasoning).
func ReasoningBatch(qps float64, n int) Profile {
	return Profile{
		QPS: qps, N: n,
		PromptMean: 150, PromptSigma: 0.2,
		OutputMean: 2500, OutputSigma: 0.5,
	}
}
