package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a throwaway source tree with hotpath annotations
// in the three states the warning logic distinguishes: gated, naming a
// missing benchmark, and missing the bench= argument entirely.
func writeTree(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"a.go": `package a

//edgereasoning:hotpath bench=BenchmarkGated
func gated() {}

//edgereasoning:hotpath bench=BenchmarkMissing
func ungated() {}

//edgereasoning:hotpath
func unnamed() {}

func cold() {}
`,
		"a_test.go": `package a

//edgereasoning:hotpath bench=BenchmarkTestOnly
func testOnly() {}
`,
		"testdata/skip.go": `package skip

//edgereasoning:hotpath bench=BenchmarkSkipped
func skipped() {}
`,
	}
	for name, src := range files {
		p := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestHotpathWarnings(t *testing.T) {
	root := writeTree(t)
	targets := map[string]Measurement{"BenchmarkGated": {AllocsPerOp: 3}}
	warns, err := hotpathWarnings(root, targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) != 2 {
		t.Fatalf("got %d warnings, want 2: %v", len(warns), warns)
	}
	joined := strings.Join(warns, "\n")
	if !strings.Contains(joined, "ungated") || !strings.Contains(joined, "BenchmarkMissing") {
		t.Errorf("missing-target warning absent: %v", warns)
	}
	if !strings.Contains(joined, "unnamed") || !strings.Contains(joined, "no bench= argument") {
		t.Errorf("no-bench-argument warning absent: %v", warns)
	}
	// Test files and testdata stay out of scope.
	if strings.Contains(joined, "testOnly") || strings.Contains(joined, "skipped") {
		t.Errorf("exempt files leaked into warnings: %v", warns)
	}
}

func TestHotpathWarningsAllGated(t *testing.T) {
	root := t.TempDir()
	src := `package a

//edgereasoning:hotpath bench=BenchmarkGated
func gated() {}
`
	if err := os.WriteFile(filepath.Join(root, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	warns, err := hotpathWarnings(root, map[string]Measurement{"BenchmarkGated": {}})
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) != 0 {
		t.Fatalf("fully gated tree must not warn: %v", warns)
	}
}

// TestRepoHotpathsAllGated pins the in-tree invariant the CI bench gate
// relies on: every hotpath annotation in this repository names a
// benchmark that BENCH_serve.json actually gates.
func TestRepoHotpathsAllGated(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_serve.json"))
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	warns, err := hotpathWarnings(filepath.Join("..", ".."), f.Current.Targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) != 0 {
		t.Errorf("hotpath annotations without a gated benchmark:\n%s", strings.Join(warns, "\n"))
	}
}
