// Package control defines the reasoning-token control policies the paper
// evaluates (§V): unconstrained Base decoding, prompt-based soft limits
// ([n]-NC), enforced hard limits ([n]T), no-reasoning injection (NR), and
// direct generation for non-reasoning models. A policy describes *intent*;
// how a given model responds to it (adherence, accuracy) is calibrated in
// the llm twins.
package control

import "fmt"

// Kind is the control mechanism.
type Kind int

const (
	// Base decodes without any length control.
	Base Kind = iota
	// Soft asks for a budget in the prompt without enforcement ([n]-NC —
	// natural completion). Models overshoot freely.
	Soft
	// Hard asks for a budget and enforces it with a token cutoff ([n]T).
	Hard
	// NoReason injects a pre-completed thinking block so the model skips
	// its chain of thought (the NR configuration, after [22]).
	NoReason
	// Direct is plain generation for non-reasoning models.
	Direct
)

// String names the kind as in the paper's figure legends.
func (k Kind) String() string {
	switch k {
	case Base:
		return "Base"
	case Soft:
		return "NC"
	case Hard:
		return "T"
	case NoReason:
		return "NR"
	case Direct:
		return "Direct"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Policy is one configuration of token control.
type Policy struct {
	Kind   Kind
	Budget int // requested token budget for Soft and Hard; 0 otherwise
}

// Presets matching the paper's evaluated configurations.
func BasePolicy() Policy     { return Policy{Kind: Base} }
func SoftLimit(n int) Policy { return Policy{Kind: Soft, Budget: n} }
func HardLimit(n int) Policy { return Policy{Kind: Hard, Budget: n} }
func NoReasoning() Policy    { return Policy{Kind: NoReason} }
func DirectAnswer() Policy   { return Policy{Kind: Direct} }

// Key is the stable identifier used by calibration tables and reports:
// "base", "soft-128", "hard-256", "nr", "direct".
func (p Policy) Key() string {
	switch p.Kind {
	case Soft:
		return fmt.Sprintf("soft-%d", p.Budget)
	case Hard:
		return fmt.Sprintf("hard-%d", p.Budget)
	case NoReason:
		return "nr"
	case Direct:
		return "direct"
	default:
		return "base"
	}
}

// Label renders the paper's marker label (128T, 256-NC, NR, Base, Direct).
func (p Policy) Label() string {
	switch p.Kind {
	case Soft:
		return fmt.Sprintf("%d-NC", p.Budget)
	case Hard:
		return fmt.Sprintf("%dT", p.Budget)
	case NoReason:
		return "NR"
	case Direct:
		return "Direct"
	default:
		return "Base"
	}
}

// Cap returns the enforced output-token ceiling (0 = uncapped). Only Hard
// policies truncate; soft limits are advisory and the paper shows models
// overshoot them by 4x and more.
func (p Policy) Cap() int {
	if p.Kind == Hard && p.Budget > 0 {
		return p.Budget
	}
	return 0
}

// Validate rejects nonsensical policies.
func (p Policy) Validate() error {
	switch p.Kind {
	case Soft, Hard:
		if p.Budget <= 0 {
			return fmt.Errorf("control: %s policy needs a positive budget", p.Kind)
		}
	default:
		if p.Budget != 0 {
			return fmt.Errorf("control: %s policy cannot carry a budget", p.Kind)
		}
	}
	return nil
}

// ParseKey inverts Key(): "base", "soft-128", "hard-256", "nr", "direct".
func ParseKey(s string) (Policy, error) {
	switch s {
	case "base":
		return BasePolicy(), nil
	case "nr":
		return NoReasoning(), nil
	case "direct":
		return DirectAnswer(), nil
	}
	var n int
	if _, err := fmt.Sscanf(s, "soft-%d", &n); err == nil && n > 0 {
		return SoftLimit(n), nil
	}
	if _, err := fmt.Sscanf(s, "hard-%d", &n); err == nil && n > 0 {
		return HardLimit(n), nil
	}
	return Policy{}, fmt.Errorf("control: cannot parse policy key %q", s)
}

// PaperSweep returns the configurations Figs 6–8 evaluate on reasoning
// models: Base, 128/256 soft, 128/256 hard, NR.
func PaperSweep() []Policy {
	return []Policy{
		BasePolicy(),
		SoftLimit(128), SoftLimit(256),
		HardLimit(128), HardLimit(256),
		NoReasoning(),
	}
}
