// End-to-end request tracing: a faulted three-replica fleet serves a
// deadline-bearing stream with telemetry on, and the recorded trace is
// worked three ways. First the span ledger is decomposed per request —
// every served request's latency split into ingress queue, retry
// backoff, destroyed attempts, replica wait, stall, restore, prefill,
// decode, and the continuous-batching gap, phases that tile the
// measured latency exactly. Then the trace is exported as Chrome
// trace-event JSON (load it at ui.perfetto.dev: one track per replica,
// flow arrows from each crash abort to its retry) and as a Prometheus
// text snapshot of the gauge/counter/histogram registry. The same
// instrumented run with Config.Trace left nil records nothing and
// produces byte-identical metrics — tracing is free when off.
package main

import (
	"fmt"
	"log"
	"os"

	"edgereasoning/internal/engine"
	"edgereasoning/internal/faults"
	"edgereasoning/internal/fleet"
	"edgereasoning/internal/model"
	"edgereasoning/internal/telemetry"
	"edgereasoning/internal/workload"
)

func main() {
	const seed = 7
	spec := model.MustLookup(model.Qwen25_1_5Bit)
	devices := fleet.DefaultDevices()

	profile := workload.InteractiveAssistant(2.2, 300)
	profile.DeadlineSlack = 3
	profile.DeadlineSlackMax = 9
	reqs, err := workload.Generate(profile, seed)
	if err != nil {
		log.Fatal(err)
	}
	sched, err := faults.Generate(faults.GenConfig{
		Replicas: 3, Horizon: 136,
		CrashRate: 1.5, RestartDelay: 6,
		StallRate: 1, StallDuration: 2,
		ThrottleRate: 1, ThrottleDuration: 17, ThrottleFactor: 2,
	}, seed)
	if err != nil {
		log.Fatal(err)
	}

	trace := telemetry.New(telemetry.Config{SpanCap: 1 << 16})
	m, err := fleet.ServeSource(fleet.Config{
		Replicas: fleet.HeterogeneousReplicas(3, devices, spec),
		Policy:   fleet.DeadlineAware,
		Faults:   &sched,
		Retry:    &fleet.RetryPolicy{Hedge: true},
		Health:   &fleet.HealthConfig{FailureThreshold: 2, ProbeAfter: 1},
		Trace:    trace,
	}, engine.NewSliceSource(reqs))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Served %d/%d requests over %.0fs sim: %d crashes, %d aborted dispatches, %d retries\n\n",
		m.Served, m.Offered, m.WallTime, m.Crashes, m.Aborted, m.Retried)

	// 1. Per-request latency decomposition from the span ledger. The
	// phases tile the measured end-to-end latency exactly; show the
	// requests a crash touched, where retry backoff and destroyed
	// attempts dominate.
	fmt.Println("Crash-touched requests (phases in seconds, tiling end-to-end exactly):")
	fmt.Printf("  %-8s %-4s %8s %8s %8s %8s %8s %8s %8s\n",
		"request", "try", "ingress", "retry", "aborted", "prefill", "decode", "other", "e2e")
	shown := 0
	for _, r := range trace.Breakdown() {
		if r.Attempts == 0 {
			continue
		}
		other := r.ReplicaWait + r.Stall + r.Restore + r.Gap
		fmt.Printf("  %-8s %-4d %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n",
			r.ID, r.Attempts, r.Ingress, r.RetryWait, r.AbortedWall, r.Prefill, r.Decode, other, r.E2E())
		if shown++; shown == 8 {
			break
		}
	}

	// 2. Per-replica accounting straight off the fleet metrics.
	fmt.Println("\nPer-replica totals:")
	for _, rb := range m.PerReplica() {
		fmt.Printf("  %-32s served %4d  busy %6.1fs  crashes %d\n",
			rb.Name, rb.Served, rb.BusySeconds, rb.Crashes)
	}

	// 3. Export both artifact formats; both are validated before use
	// elsewhere (cmd/tracecheck runs the same validators in CI).
	tf, err := os.Create("trace.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := trace.WriteChromeTrace(tf); err != nil {
		log.Fatal(err)
	}
	if err := tf.Close(); err != nil {
		log.Fatal(err)
	}
	mf, err := os.Create("metrics.prom")
	if err != nil {
		log.Fatal(err)
	}
	if err := trace.WritePrometheus(mf); err != nil {
		log.Fatal(err)
	}
	if err := mf.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nWrote trace.json (open at ui.perfetto.dev) and metrics.prom")
}
