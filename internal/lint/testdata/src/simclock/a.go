// Package simclock is the fixture for the simclock analyzer: wall-clock
// reads are rejected, duration arithmetic and the two exemption
// mechanisms (function directive, line allow) pass.
package simclock

import "time"

func bad() {
	_ = time.Now()               // want "time.Now reads the host clock"
	time.Sleep(time.Millisecond) // want "time.Sleep reads the host clock"
}

func badSince(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since reads the host clock"
}

func badTimer(d time.Duration) *time.Timer {
	return time.NewTimer(d) // want "time.NewTimer reads the host clock"
}

// profiled measures host time on purpose, like the experiment runner's
// timeout machinery.
//
//edgereasoning:wallclock -- fixture: host-side profiling
func profiled() time.Time {
	return time.Now()
}

func durationsAreFine(d time.Duration) float64 {
	return d.Seconds()
}

func allowedLine() {
	t := time.Now() //edgereasoning:allow simclock -- fixture escape hatch
	_ = t
}
