package lint

import (
	"go/ast"
	"go/types"
)

// SimClock rejects wall-clock reads inside simulator packages: simulated
// time must come from the event clock, never from the host. A stray
// time.Now() (or a timer) silently couples results to machine speed and
// breaks byte-stable goldens.
//
// Exempt: packages under a cmd/ or examples/ path segment (driver UX
// legitimately reports host wall time), _test.go files, and functions
// annotated //edgereasoning:wallclock (the experiment runner's
// host-side timeout/profiling machinery).
var SimClock = &Analyzer{
	Name: "simclock",
	Doc: "forbid time.Now/Since/Sleep and timers in simulator packages; " +
		"sim time must come from the event clock",
	Run: runSimClock,
}

// wallClockFuncs are the time-package functions that read or wait on
// the host clock. time.Duration arithmetic and constants stay legal.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

func runSimClock(pass *Pass) error {
	if pathHasSegment(pass.Pkg.Path(), "cmd") || pathHasSegment(pass.Pkg.Path(), "examples") {
		return nil
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, exempt := FuncDirective(fd, "wallclock"); exempt {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || !wallClockFuncs[sel.Sel.Name] {
					return true
				}
				if !isPkgRef(pass.TypesInfo, sel.X, "time") {
					return true
				}
				pass.Reportf(sel.Pos(),
					"time.%s reads the host clock in a simulator package; derive time from the event clock "+
						"(or annotate the function //edgereasoning:wallclock with a reason)", sel.Sel.Name)
				return true
			})
		}
	}
	return nil
}

// isPkgRef reports whether expr is a reference to the package named by
// import path (e.g. the "time" in time.Now).
func isPkgRef(info *types.Info, expr ast.Expr, path string) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == path
}
