// Elastic fleet serving: the ROADMAP's autoscaling and ingress-admission
// items in one walkthrough. A bursty stream — a background trickle with
// a sharp spike two minutes in — is served by a fixed single replica,
// by a fixed pool sized to the elastic run's average bill, and by an
// autoscaled pool that provisions cold replicas on queue pressure and
// retires them when idle. A second drill overloads a fixed pool and
// compares the ingress admission disciplines, where shedding hopeless
// deadline work beats serving it late.
package main

import (
	"fmt"
	"log"
	"math"

	"edgereasoning/internal/fleet"
	"edgereasoning/internal/model"
	"edgereasoning/internal/workload"
)

func main() {
	const seed = 7
	spec := model.MustLookup(model.Qwen25_1_5Bit)
	devices := fleet.DefaultDevices()

	background := workload.InteractiveAssistant(0.2, 50)
	background.DeadlineSlack = 3
	background.DeadlineSlackMax = 8
	spike := workload.InteractiveAssistant(20, 120)
	spike.DeadlineSlack = 3
	spike.DeadlineSlackMax = 8
	reqs, err := workload.Bursty(background, spike, 120, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Workload: %d requests — 0.2 QPS background, 20 QPS spike at t=120s, 3-8s slack\n\n", len(reqs))

	serve := func(n int, auto *fleet.AutoscaleConfig) fleet.Metrics {
		m, err := fleet.Serve(fleet.Config{
			Replicas:  fleet.HeterogeneousReplicas(n, devices, spec),
			Policy:    fleet.DeadlineAware,
			Autoscale: auto,
		}, reqs)
		if err != nil {
			log.Fatal(err)
		}
		return m
	}

	auto := &fleet.AutoscaleConfig{
		Min: 1, Max: 6,
		Spec: spec, Devices: devices,
		ColdStart:       2,
		DepthPerReplica: 2,
		IdleRetire:      10,
		Cooldown:        0.5,
	}
	elastic := serve(1, auto)

	fmt.Println("Autoscaler timeline (scale up on queue depth / deadline pressure, down on idle):")
	for _, ev := range elastic.ScaleEvents {
		dir := "▼ retire"
		if ev.Up {
			dir = "▲ provision"
		}
		fmt.Printf("  t=%6.1fs  %-11s %-32s live=%d (%s)\n", ev.Time, dir, ev.Replica, ev.Live, ev.Reason)
	}

	avg := elastic.ReplicaSeconds / elastic.WallTime
	eqN := int(math.Ceil(avg))
	if eqN < 1 {
		eqN = 1
	}
	fmt.Printf("\nElastic bill: %.0f replica-seconds over %.0fs wall (average %.1f replicas, peak %d)\n\n",
		elastic.ReplicaSeconds, elastic.WallTime, avg, elastic.PeakReplicas)

	fmt.Println("pool              replicas   p50(s)  p99(s)  hit-rate  replica-s")
	fmt.Println("----              --------   ------  ------  --------  ---------")
	rowFor := func(name, replicas string, m fleet.Metrics, bill float64) {
		fmt.Printf("%-16s  %-9s  %6.2f  %6.2f  %7.1f%%  %9.0f\n",
			name, replicas, m.P50Latency, m.P99Latency, m.HitRate()*100, bill)
	}
	floor := serve(1, nil)
	fixed := serve(eqN, nil)
	rowFor("fixed-floor", "1", floor, floor.WallTime)
	rowFor("fixed-equal", fmt.Sprint(eqN), fixed, float64(eqN)*fixed.WallTime)
	rowFor("autoscaled", "1..6", elastic, elastic.ReplicaSeconds)

	// Overload drill: a fixed two-replica pool at 2x its capacity, under
	// each ingress admission discipline. FIFO blocks the head and serves
	// everything late; EDF and SJF reorder the waiting set; shed drops
	// certain-miss work at the door so the rest can still make it.
	overload := workload.InteractiveAssistant(6, 150)
	overload.DeadlineSlack = 2
	overload.DeadlineSlackMax = 6
	oreqs, err := workload.Generate(overload, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nOverload drill: %d requests at 6 QPS on a fixed 2-replica pool (2-6s slack)\n\n", len(oreqs))
	fmt.Println("admission  served  shed  p99(s)  hit-rate")
	fmt.Println("---------  ------  ----  ------  --------")
	for _, a := range fleet.Admissions() {
		m, err := fleet.Serve(fleet.Config{
			Replicas:  fleet.HeterogeneousReplicas(2, devices, spec),
			Policy:    fleet.LeastQueue,
			Admission: a,
		}, oreqs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s  %6d  %4d  %6.2f  %7.1f%%\n",
			a, m.Served, m.Shed, m.P99Latency, m.HitRate()*100)
	}
}
