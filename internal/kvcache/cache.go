// Package kvcache implements a paged key/value cache in the style of
// vLLM's PagedAttention: fixed-size token blocks, per-sequence block
// tables, and reference-counted copy-on-write sharing. The engine uses it
// to account for memory capacity and to share prompt KV across parallel
// test-time-scaling decoders (§V-E: "the prefill phase is executed once
// ... during the decode phase we increase the batch size").
package kvcache

import (
	"errors"
	"fmt"
)

// Common error conditions.
var (
	// ErrOutOfBlocks means the allocation would exceed cache capacity.
	ErrOutOfBlocks = errors.New("kvcache: out of blocks")
	// ErrUnknownSequence means the sequence ID has no allocation.
	ErrUnknownSequence = errors.New("kvcache: unknown sequence")
	// ErrSequenceExists means Allocate was called twice for one ID.
	ErrSequenceExists = errors.New("kvcache: sequence already allocated")
)

// Config sizes a cache.
type Config struct {
	BlockSize     int   // tokens per block (vLLM default: 16)
	NumBlocks     int   // total blocks available
	BytesPerToken int64 // KV bytes one token occupies (from model.Arch)
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.BlockSize <= 0 {
		return fmt.Errorf("kvcache: BlockSize must be positive, got %d", c.BlockSize)
	}
	if c.NumBlocks <= 0 {
		return fmt.Errorf("kvcache: NumBlocks must be positive, got %d", c.NumBlocks)
	}
	return nil
}

// ConfigForMemory sizes a cache to fill the given byte budget.
func ConfigForMemory(budgetBytes int64, blockSize int, bytesPerToken int64) Config {
	if blockSize <= 0 {
		blockSize = 16
	}
	blockBytes := int64(blockSize) * bytesPerToken
	n := 0
	if blockBytes > 0 {
		n = int(budgetBytes / blockBytes)
	}
	return Config{BlockSize: blockSize, NumBlocks: n, BytesPerToken: bytesPerToken}
}

// sequence is a live allocation.
type sequence struct {
	blocks []int // indices into the block pool
	length int   // tokens stored
}

// Cache is a paged KV cache. It is not safe for concurrent use; the
// engine serializes access.
type Cache struct {
	cfg      Config
	refcount []int // per-block; 0 = free
	free     []int // free-list (LIFO)
	seqs     map[string]*sequence
	// peakUsed tracks the high-water mark of allocated blocks.
	peakUsed int
}

// New builds an empty cache.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{
		cfg:      cfg,
		refcount: make([]int, cfg.NumBlocks),
		free:     make([]int, 0, cfg.NumBlocks),
		seqs:     make(map[string]*sequence),
	}
	for i := cfg.NumBlocks - 1; i >= 0; i-- {
		c.free = append(c.free, i)
	}
	return c, nil
}

// blocksFor returns the block count holding n tokens.
func (c *Cache) blocksFor(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + c.cfg.BlockSize - 1) / c.cfg.BlockSize
}

// grab pops one free block, or fails.
func (c *Cache) grab() (int, error) {
	if len(c.free) == 0 {
		return 0, ErrOutOfBlocks
	}
	b := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	c.refcount[b] = 1
	if used := c.cfg.NumBlocks - len(c.free); used > c.peakUsed {
		c.peakUsed = used
	}
	return b, nil
}

// release decrements a block's refcount, returning it to the free list at
// zero.
func (c *Cache) release(b int) {
	if c.refcount[b] <= 0 {
		panic(fmt.Sprintf("kvcache: release of free block %d", b))
	}
	c.refcount[b]--
	if c.refcount[b] == 0 {
		c.free = append(c.free, b)
	}
}

// Allocate reserves blocks for a new sequence of the given token length.
// On failure nothing is allocated.
func (c *Cache) Allocate(seqID string, tokens int) error {
	if _, ok := c.seqs[seqID]; ok {
		return ErrSequenceExists
	}
	need := c.blocksFor(tokens)
	if need > len(c.free) {
		return ErrOutOfBlocks
	}
	s := &sequence{length: tokens}
	for i := 0; i < need; i++ {
		b, err := c.grab()
		if err != nil {
			// Cannot happen: capacity checked above. Roll back defensively.
			for _, rb := range s.blocks {
				c.release(rb)
			}
			return err
		}
		s.blocks = append(s.blocks, b)
	}
	c.seqs[seqID] = s
	return nil
}

// AppendToken extends a sequence by one token, allocating a fresh block at
// block boundaries and copying a shared tail block (copy-on-write) before
// writing into it.
func (c *Cache) AppendToken(seqID string) error {
	s, ok := c.seqs[seqID]
	if !ok {
		return ErrUnknownSequence
	}
	// Block boundary: need a new block.
	if s.length%c.cfg.BlockSize == 0 {
		b, err := c.grab()
		if err != nil {
			return err
		}
		s.blocks = append(s.blocks, b)
		s.length++
		return nil
	}
	// Writing into the tail block: copy first if shared.
	tail := s.blocks[len(s.blocks)-1]
	if c.refcount[tail] > 1 {
		nb, err := c.grab()
		if err != nil {
			return err
		}
		c.release(tail)
		s.blocks[len(s.blocks)-1] = nb
	}
	s.length++
	return nil
}

// Fork creates childID sharing all of parentID's blocks copy-on-write.
// This is how parallel test-time scaling reuses one prefill across SF
// decoders at near-zero memory cost.
func (c *Cache) Fork(parentID, childID string) error {
	p, ok := c.seqs[parentID]
	if !ok {
		return ErrUnknownSequence
	}
	if _, ok := c.seqs[childID]; ok {
		return ErrSequenceExists
	}
	child := &sequence{length: p.length, blocks: make([]int, len(p.blocks))}
	copy(child.blocks, p.blocks)
	for _, b := range p.blocks {
		c.refcount[b]++
	}
	c.seqs[childID] = child
	return nil
}

// Free releases a sequence's blocks.
func (c *Cache) Free(seqID string) error {
	s, ok := c.seqs[seqID]
	if !ok {
		return ErrUnknownSequence
	}
	for _, b := range s.blocks {
		c.release(b)
	}
	delete(c.seqs, seqID)
	return nil
}

// Length returns a sequence's token count.
func (c *Cache) Length(seqID string) (int, error) {
	s, ok := c.seqs[seqID]
	if !ok {
		return 0, ErrUnknownSequence
	}
	return s.length, nil
}

// Stats summarizes occupancy.
type Stats struct {
	TotalBlocks  int
	FreeBlocks   int
	UsedBlocks   int
	PeakUsed     int
	Sequences    int
	UsedBytes    int64
	TotalBytes   int64
	SharedBlocks int // blocks with refcount > 1
}

// Stats returns current occupancy.
func (c *Cache) Stats() Stats {
	shared := 0
	for _, r := range c.refcount {
		if r > 1 {
			shared++
		}
	}
	used := c.cfg.NumBlocks - len(c.free)
	blockBytes := int64(c.cfg.BlockSize) * c.cfg.BytesPerToken
	return Stats{
		TotalBlocks:  c.cfg.NumBlocks,
		FreeBlocks:   len(c.free),
		UsedBlocks:   used,
		PeakUsed:     c.peakUsed,
		Sequences:    len(c.seqs),
		UsedBytes:    int64(used) * blockBytes,
		TotalBytes:   int64(c.cfg.NumBlocks) * blockBytes,
		SharedBlocks: shared,
	}
}

// CheckInvariants verifies internal consistency: every block is either on
// the free list with refcount 0 or referenced by refcount sequences, and
// per-sequence block counts match lengths. Used by property tests.
func (c *Cache) CheckInvariants() error {
	refs := make([]int, c.cfg.NumBlocks)
	for id, s := range c.seqs {
		if got, want := len(s.blocks), c.blocksFor(s.length); got != want {
			return fmt.Errorf("kvcache: seq %s holds %d blocks for %d tokens (want %d)", id, got, s.length, want)
		}
		for _, b := range s.blocks {
			refs[b]++
		}
	}
	onFree := make(map[int]bool, len(c.free))
	for _, b := range c.free {
		if onFree[b] {
			return fmt.Errorf("kvcache: block %d appears twice on the free list", b)
		}
		onFree[b] = true
	}
	for b := range c.refcount {
		if refs[b] != c.refcount[b] {
			return fmt.Errorf("kvcache: block %d refcount %d, %d references found", b, c.refcount[b], refs[b])
		}
		if (c.refcount[b] == 0) != onFree[b] {
			return fmt.Errorf("kvcache: block %d free-list membership inconsistent with refcount %d", b, c.refcount[b])
		}
	}
	return nil
}
