package control

import "testing"

func TestKeys(t *testing.T) {
	cases := []struct {
		p    Policy
		want string
	}{
		{BasePolicy(), "base"},
		{SoftLimit(128), "soft-128"},
		{SoftLimit(256), "soft-256"},
		{HardLimit(128), "hard-128"},
		{HardLimit(512), "hard-512"},
		{NoReasoning(), "nr"},
		{DirectAnswer(), "direct"},
	}
	for _, c := range cases {
		if got := c.p.Key(); got != c.want {
			t.Errorf("Key() = %q, want %q", got, c.want)
		}
	}
}

func TestLabelsMatchPaperMarkers(t *testing.T) {
	cases := []struct {
		p    Policy
		want string
	}{
		{BasePolicy(), "Base"},
		{SoftLimit(128), "128-NC"},
		{HardLimit(256), "256T"},
		{NoReasoning(), "NR"},
		{DirectAnswer(), "Direct"},
	}
	for _, c := range cases {
		if got := c.p.Label(); got != c.want {
			t.Errorf("Label() = %q, want %q", got, c.want)
		}
	}
}

func TestCapOnlyForHard(t *testing.T) {
	if HardLimit(128).Cap() != 128 {
		t.Error("hard limit must cap")
	}
	for _, p := range []Policy{BasePolicy(), SoftLimit(128), NoReasoning(), DirectAnswer()} {
		if p.Cap() != 0 {
			t.Errorf("%s must not cap", p.Key())
		}
	}
}

func TestValidate(t *testing.T) {
	if err := HardLimit(0).Validate(); err == nil {
		t.Error("zero hard budget must fail")
	}
	if err := SoftLimit(-5).Validate(); err == nil {
		t.Error("negative soft budget must fail")
	}
	if err := (Policy{Kind: Base, Budget: 7}).Validate(); err == nil {
		t.Error("base with budget must fail")
	}
	for _, p := range PaperSweep() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Key(), err)
		}
	}
}

func TestPaperSweepContents(t *testing.T) {
	sweep := PaperSweep()
	if len(sweep) != 6 {
		t.Fatalf("sweep has %d entries, want 6", len(sweep))
	}
	seen := map[string]bool{}
	for _, p := range sweep {
		seen[p.Key()] = true
	}
	for _, want := range []string{"base", "soft-128", "soft-256", "hard-128", "hard-256", "nr"} {
		if !seen[want] {
			t.Errorf("sweep missing %q", want)
		}
	}
}

func TestKindString(t *testing.T) {
	if Base.String() != "Base" || Hard.String() != "T" || Soft.String() != "NC" {
		t.Error("Kind String wrong")
	}
}
