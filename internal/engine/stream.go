package engine

// Source is a pull-based stream of timed requests. Next returns the next
// request and true, or a zero value and false once the stream is
// exhausted. Requests must be yielded in non-decreasing Arrival order —
// the serving loop consumes the stream lazily and never looks ahead more
// than one element, so a generator-backed Source runs million-request
// workloads with O(1) live memory.
type Source interface {
	Next() (TimedRequest, bool)
}

// SliceSource adapts an arrival-sorted slice to a Source.
type SliceSource struct {
	reqs []TimedRequest
	i    int
}

// NewSliceSource wraps reqs, which must already be sorted by Arrival.
func NewSliceSource(reqs []TimedRequest) *SliceSource {
	return &SliceSource{reqs: reqs}
}

// Reset repoints the source at a new slice and rewinds it, so a caller
// draining many slices (the fleet's per-replica sub-streams) can reuse
// one SliceSource instead of allocating per drain.
func (s *SliceSource) Reset(reqs []TimedRequest) { s.reqs, s.i = reqs, 0 }

// Next yields the next request in slice order.
func (s *SliceSource) Next() (TimedRequest, bool) {
	if s.i >= len(s.reqs) {
		return TimedRequest{}, false
	}
	tr := s.reqs[s.i]
	s.i++
	return tr, true
}

// Collect drains a source into a slice — the bridge from the streaming
// API back to the slice API, used by the legacy generators and by tests
// pinning stream-vs-slice equivalence.
func Collect(src Source) []TimedRequest {
	var out []TimedRequest
	for {
		tr, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, tr)
	}
}

// Peekable wraps a Source with one-item lookahead: stream consumers (the
// serving loop, the fleet ingress) need to see the next arrival time —
// to jump an idle clock or bound a decode chunk — without consuming it.
// A Peekable is itself a Source.
type Peekable struct {
	src  Source
	buf  TimedRequest
	have bool
	done bool
}

// NewPeekable wraps src with one-item lookahead.
func NewPeekable(src Source) *Peekable { return &Peekable{src: src} }

// Peek returns the next request without consuming it.
func (p *Peekable) Peek() (TimedRequest, bool) {
	if p.have {
		return p.buf, true
	}
	if p.done {
		return TimedRequest{}, false
	}
	tr, ok := p.src.Next()
	if !ok {
		p.done = true
		return TimedRequest{}, false
	}
	p.buf, p.have = tr, true
	return tr, true
}

// Next consumes and returns the next request.
func (p *Peekable) Next() (TimedRequest, bool) {
	tr, ok := p.Peek()
	p.have = false
	if ok {
		p.buf = TimedRequest{} // drop payload references once consumed
	}
	return tr, ok
}

// More reports whether the stream has unconsumed requests.
func (p *Peekable) More() bool {
	_, ok := p.Peek()
	return ok
}
