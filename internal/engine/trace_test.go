package engine

import (
	"reflect"
	"testing"

	"edgereasoning/internal/model"
	"edgereasoning/internal/telemetry"
)

// TestServeTraceTransparency pins the zero-overhead-when-off contract
// at the engine layer from both sides: a traced serve returns
// ServeMetrics deep-equal to the untraced run of the same stream and
// fault schedule (tracing observes, never perturbs), and the recorded
// spans nest cleanly and stay within the run's clock span.
func TestServeTraceTransparency(t *testing.T) {
	stream := []TimedRequest{
		timed("a", 0, 128, 160, 0),
		timed("b", 0.5, 96, 140, 0),
		timed("c", 1, 200, 80, 0),
		timed("d", 4, 64, 120, 0),
	}
	fx := &FaultInjection{
		Stalls:    []StallWindow{{From: 2, To: 3}},
		Throttles: []ThrottleWindow{{From: 5, To: 9, Factor: 2}},
	}

	plainEng := newOrinEngine(t, model.DSR1Qwen1_5B)
	plain, err := plainEng.ServeSource(NewSliceSource(stream), 2, FCFS, ServeOpts{Faults: fx})
	if err != nil {
		t.Fatal(err)
	}

	tra := telemetry.New(telemetry.Config{})
	tracedEng := newOrinEngine(t, model.DSR1Qwen1_5B)
	tracedEng.cfg.Trace = tra.Track("r0")
	traced, err := tracedEng.ServeSource(NewSliceSource(stream), 2, FCFS, ServeOpts{Faults: fx})
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain, traced) {
		t.Errorf("tracing perturbed ServeMetrics:\n plain %+v\ntraced %+v", plain, traced)
	}
	if plainEng.Clock() != tracedEng.Clock() {
		t.Errorf("tracing perturbed the clock: %v vs %v", plainEng.Clock(), tracedEng.Clock())
	}
	if err := telemetry.ValidateSpans(tra); err != nil {
		t.Errorf("recorded spans malformed: %v", err)
	}
	track := tra.Tracks()[0]
	requests, prefills := 0, 0
	for _, s := range track.Spans() {
		if s.Start < 0 || s.End > tracedEng.Clock() {
			t.Errorf("span %s/%s [%v, %v] escapes the run's clock span [0, %v]",
				s.Kind, s.ID, s.Start, s.End, tracedEng.Clock())
		}
		switch s.Kind {
		case telemetry.KindRequest:
			requests++
		case telemetry.KindPrefill:
			prefills++
		}
	}
	if requests != len(stream) || prefills != len(stream) {
		t.Errorf("span ledger incomplete: %d request spans, %d prefill spans, want %d each",
			requests, prefills, len(stream))
	}
}

// BenchmarkTracedServeOff is the zero-overhead gate's bench target: the
// exact BenchmarkServeHotLoop workload with a nil Tracer. scripts/
// bench.sh records it next to BenchmarkServeHotLoop and cmd/benchcheck
// gates its allocs/op, so the tracing hooks adding so much as one
// alloc to the hot loop while disabled fails CI.
func BenchmarkTracedServeOff(b *testing.B) {
	benchTracedServe(b, false)
}

// BenchmarkTracedServeOn measures the same workload with a live Track,
// quantifying the pay-for-what-you-use cost of span recording and gauge
// sampling (reported, not gated — the on-path is allowed to allocate).
func BenchmarkTracedServeOn(b *testing.B) {
	benchTracedServe(b, true)
}

func benchTracedServe(b *testing.B, on bool) {
	reqs := benchStream()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := benchEngine(b)
		if on {
			e.cfg.Trace = telemetry.New(telemetry.Config{}).Track("r0")
		}
		b.StartTimer()
		sm, err := e.Serve(reqs, 8, FCFS)
		if err != nil {
			b.Fatal(err)
		}
		if len(sm.Requests) != len(reqs) {
			b.Fatalf("served %d of %d", len(sm.Requests), len(reqs))
		}
	}
}
