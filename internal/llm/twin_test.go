package llm

import (
	"math"
	"testing"

	"edgereasoning/internal/control"
	"edgereasoning/internal/data"
	"edgereasoning/internal/model"
)

const testSeed = 7

// evaluate runs a twin over a bank at SF=1 and returns (accuracy, mean
// output tokens).
func evaluate(t *testing.T, id model.ID, bench data.Benchmark, pol control.Policy) (float64, float64) {
	t.Helper()
	bank := data.MustLoad(bench, testSeed)
	tw := NewTwin(model.MustLookup(id), bank, testSeed)
	correct, tokens := 0, 0
	for _, q := range bank.Questions {
		g, err := tw.Generate(q, pol)
		if err != nil {
			t.Fatalf("%s/%s/%s: %v", id, bench, pol.Key(), err)
		}
		if g.Correct {
			correct++
		}
		tokens += g.OutputTokens
	}
	n := float64(bank.Size())
	return float64(correct) / n, float64(tokens) / n
}

// The twins must reproduce the paper's appendix tables. Accuracy within
// ±2.5 points and mean tokens within ±8% at 3k questions.
func TestTwinReproducesTableXAndXI(t *testing.T) {
	cases := []struct {
		id       model.ID
		pol      control.Policy
		wantAcc  float64 // percent
		wantToks float64
	}{
		{model.DSR1Qwen1_5B, control.BasePolicy(), 38.3, 740.2},
		{model.DSR1Llama8B, control.BasePolicy(), 61.7, 811.1},
		{model.DSR1Qwen14B, control.BasePolicy(), 80.6, 1317.8},
		{model.L1Max, control.BasePolicy(), 43.8, 312.6},
		{model.DSR1Llama8B, control.SoftLimit(128), 60.4, 437.0},
		{model.DSR1Llama8B, control.HardLimit(128), 37.9, 76.3},
		{model.DSR1Qwen1_5B, control.HardLimit(128), 15.9, 91.5},
		{model.DSR1Qwen14B, control.HardLimit(256), 58.6, 112.9},
		{model.DSR1Qwen14B, control.NoReasoning(), 69.0, 180.7},
		{model.Qwen25_7Bit, control.DirectAnswer(), 60.9, 40.2},
		{model.Llama31_8Bit, control.DirectAnswer(), 58.3, 63.5},
	}
	for _, c := range cases {
		acc, toks := evaluate(t, c.id, data.MMLURedux, c.pol)
		if math.Abs(acc*100-c.wantAcc) > 2.5 {
			t.Errorf("%s %s: accuracy = %.1f%%, want %.1f ±2.5", c.id, c.pol.Key(), acc*100, c.wantAcc)
		}
		if math.Abs(toks-c.wantToks)/c.wantToks > 0.08 {
			t.Errorf("%s %s: mean tokens = %.1f, want %.1f ±8%%", c.id, c.pol.Key(), toks, c.wantToks)
		}
	}
}

func TestHardLimitNeverExceedsCap(t *testing.T) {
	bank := data.MustLoad(data.MMLURedux, testSeed)
	tw := NewTwin(model.MustLookup(model.DSR1Qwen14B), bank, testSeed)
	for _, q := range bank.Questions[:500] {
		g, err := tw.Generate(q, control.HardLimit(128))
		if err != nil {
			t.Fatal(err)
		}
		if g.OutputTokens > 128 {
			t.Fatalf("hard-128 emitted %d tokens", g.OutputTokens)
		}
		if g.OutputTokens == 128 && !g.Truncated {
			t.Error("cap-length generation should be marked truncated")
		}
	}
}

func TestTwinDeterministic(t *testing.T) {
	bank := data.MustLoad(data.MMLURedux, testSeed)
	q := bank.Questions[42]
	spec := model.MustLookup(model.DSR1Llama8B)
	a, err := NewTwin(spec, bank, testSeed).Generate(q, control.BasePolicy())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTwin(spec, bank, testSeed).Generate(q, control.BasePolicy())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed must reproduce: %+v vs %+v", a, b)
	}
}

func TestQuantizedTwinCells(t *testing.T) {
	// Table X quantized rows resolve through -w4 specs.
	acc, toks := evaluate(t, "dsr1-llama-8b-w4", data.MMLURedux, control.BasePolicy())
	if math.Abs(acc*100-57.9) > 2.5 {
		t.Errorf("8B-W4 accuracy = %.1f%%, want 57.9", acc*100)
	}
	if math.Abs(toks-549.1)/549.1 > 0.08 {
		t.Errorf("8B-W4 tokens = %.1f, want 549.1", toks)
	}
}

func TestMMLU15kCells(t *testing.T) {
	acc, toks := evaluate(t, model.DSR1Qwen14B, data.MMLU, control.BasePolicy())
	if math.Abs(acc*100-86.59) > 2.0 {
		t.Errorf("14B MMLU accuracy = %.2f%%, want 86.59", acc*100)
	}
	if math.Abs(toks-1145.4)/1145.4 > 0.08 {
		t.Errorf("14B MMLU tokens = %.1f, want 1145.4", toks)
	}
}

func TestNaturalPlanCells(t *testing.T) {
	acc, toks := evaluate(t, model.DSR1Qwen14B, data.NaturalPlanMeeting, control.BasePolicy())
	if math.Abs(acc*100-19.3) > 2.5 {
		t.Errorf("14B meeting accuracy = %.1f%%, want 19.3", acc*100)
	}
	if math.Abs(toks-1494)/1494 > 0.08 {
		t.Errorf("14B meeting tokens = %.0f, want 1494", toks)
	}
}

func TestUncalibratedCombinationErrors(t *testing.T) {
	bank := data.MustLoad(data.AIME2024, testSeed)
	tw := NewTwin(model.MustLookup(model.Gemma7Bit), bank, testSeed)
	if _, err := tw.Generate(bank.Questions[0], control.BasePolicy()); err == nil {
		t.Error("expected error for uncalibrated model/benchmark pair")
	}
}

func TestGenerateVotesShareQuestionState(t *testing.T) {
	bank := data.MustLoad(data.MMLURedux, testSeed)
	tw := NewTwin(model.MustLookup(model.DSR1Qwen14B), bank, testSeed)
	gens, err := tw.GenerateVotes(bank.Questions[7], control.HardLimit(128), 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 32 {
		t.Fatalf("want 32 votes, got %d", len(gens))
	}
	// Votes must vary (not all identical answers across a hard question)
	// over the bank; check globally that at least some questions split.
	split := 0
	for _, q := range bank.Questions[:200] {
		gs, err := tw.GenerateVotes(q, control.HardLimit(128), 8)
		if err != nil {
			t.Fatal(err)
		}
		first := gs[0].Answer
		for _, g := range gs[1:] {
			if g.Answer != first {
				split++
				break
			}
		}
	}
	if split < 50 {
		t.Errorf("only %d/200 questions produced split votes; voting would be vacuous", split)
	}
}

func TestVotesInvalidCount(t *testing.T) {
	bank := data.MustLoad(data.MMLURedux, testSeed)
	tw := NewTwin(model.MustLookup(model.DSR1Qwen14B), bank, testSeed)
	if _, err := tw.GenerateVotes(bank.Questions[0], control.BasePolicy(), 0); err == nil {
		t.Error("k=0 must error")
	}
}

func TestThinkAnswerSplit(t *testing.T) {
	bank := data.MustLoad(data.MMLURedux, testSeed)
	// Reasoning model: mostly thinking.
	tw := NewTwin(model.MustLookup(model.DSR1Llama8B), bank, testSeed)
	g, err := tw.Generate(bank.Questions[0], control.BasePolicy())
	if err != nil {
		t.Fatal(err)
	}
	if g.ThinkTokens <= g.AnswerTokens {
		t.Errorf("reasoning model should think more than it answers: %+v", g)
	}
	if g.ThinkTokens+g.AnswerTokens != g.OutputTokens {
		t.Error("split must conserve tokens")
	}
	// Direct model: no thinking.
	twd := NewTwin(model.MustLookup(model.Qwen25_7Bit), bank, testSeed)
	gd, err := twd.Generate(bank.Questions[0], control.DirectAnswer())
	if err != nil {
		t.Fatal(err)
	}
	if gd.ThinkTokens != 0 {
		t.Errorf("direct model must not think: %+v", gd)
	}
	// NR: stub think block.
	gnr, err := tw.Generate(bank.Questions[1], control.NoReasoning())
	if err != nil {
		t.Fatal(err)
	}
	if gnr.ThinkTokens == 0 || gnr.ThinkTokens > 16 {
		t.Errorf("NR think stub should be small and nonzero: %+v", gnr)
	}
}

func TestCensoredMeanMath(t *testing.T) {
	// With a cap far above the mean, the censored mean approaches the
	// uncensored one.
	mu, sigma := 5.0, 0.4
	uncensored := math.Exp(mu + sigma*sigma/2)
	if got := censoredMean(mu, sigma, 1e9); math.Abs(got-uncensored)/uncensored > 1e-9 {
		t.Errorf("censoredMean with huge cap = %v, want %v", got, uncensored)
	}
	// With the cap at the median, the mean must fall strictly below cap
	// and below the uncensored mean.
	capAt := math.Exp(mu)
	got := censoredMean(mu, sigma, capAt)
	if got >= capAt || got >= uncensored {
		t.Errorf("censoredMean at median = %v, cap %v, uncensored %v", got, capAt, uncensored)
	}
}

func TestSolveCensoredMuRoundTrip(t *testing.T) {
	target, sigma, c := 91.5, 0.45, 128.0
	mu := solveCensoredMu(target, sigma, c)
	if got := censoredMean(mu, sigma, c); math.Abs(got-target)/target > 0.001 {
		t.Errorf("round trip: censoredMean(solve(%v)) = %v", target, got)
	}
}
