package session

import (
	"math"
	"testing"

	"edgereasoning/internal/engine"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/model"
)

func TestGenerateDeterministic(t *testing.T) {
	p := AgentLoop(4, 3, 2)
	a, err := Generate(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Arrival != b[i].Arrival ||
			a[i].PromptTokens != b[i].PromptTokens || a[i].OutputTokens != b[i].OutputTokens {
			t.Fatalf("request %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c, err := Generate(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].PromptTokens != c[i].PromptTokens || a[i].Arrival != c[i].Arrival {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced an identical stream")
	}
}

func TestGenerateStructure(t *testing.T) {
	p := AgentLoop(3, 4, 2)
	reqs, err := Generate(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	// 3 sessions x 4 turns x (think + act), plus one extra branch sample
	// on each of turns 1 and 3 per session.
	want := 3 * (4*2 + 2)
	if len(reqs) != want {
		t.Fatalf("generated %d requests, want %d", len(reqs), want)
	}
	last := -1.0
	perSession := map[string][]engine.TimedRequest{}
	for _, r := range reqs {
		if r.Arrival < last {
			t.Fatalf("stream not sorted: %q at %.3f after %.3f", r.ID, r.Arrival, last)
		}
		last = r.Arrival
		if r.SessionID == "" {
			t.Fatalf("request %q has no session", r.ID)
		}
		if len(r.PromptSyms) != r.PromptTokens {
			t.Fatalf("request %q: %d prompt syms for %d tokens", r.ID, len(r.PromptSyms), r.PromptTokens)
		}
		if len(r.OutputSyms) != r.OutputTokens {
			t.Fatalf("request %q: %d output syms for %d tokens", r.ID, len(r.OutputSyms), r.OutputTokens)
		}
		if r.Deadline > 0 && r.Deadline <= r.Arrival {
			t.Fatalf("request %q: deadline %.3f not after arrival %.3f", r.ID, r.Deadline, r.Arrival)
		}
		perSession[r.SessionID] = append(perSession[r.SessionID], r)
	}
	if len(perSession) != 3 {
		t.Fatalf("saw %d sessions, want 3", len(perSession))
	}
	for sid, rs := range perSession {
		// Within a session, prompts grow monotonically (shared history)
		// and every prompt extends the previous canonical history.
		prev := rs[0]
		for _, r := range rs[1:] {
			if r.PromptTokens < prev.PromptTokens {
				t.Fatalf("%s: prompt shrank from %d to %d at %q", sid, prev.PromptTokens, r.PromptTokens, r.ID)
			}
			for i := 0; i < prev.PromptTokens; i++ {
				if r.PromptSyms[i] != prev.PromptSyms[i] {
					t.Fatalf("%s: %q diverges from session history at token %d", sid, r.ID, i)
				}
			}
			prev = r
		}
	}
	// All sessions share the system prompt verbatim.
	first := perSession["s0"][0]
	for _, sid := range []string{"s1", "s2"} {
		other := perSession[sid][0]
		for i := 0; i < p.SystemPromptTokens; i++ {
			if other.PromptSyms[i] != first.PromptSyms[i] {
				t.Fatalf("%s does not share the system prompt at token %d", sid, i)
			}
		}
		if other.PromptSyms[p.SystemPromptTokens] == first.PromptSyms[p.SystemPromptTokens] {
			t.Fatalf("%s preamble identical to s0 — sessions must diverge", sid)
		}
	}
}

func TestGenerateValidate(t *testing.T) {
	bad := []Profile{
		{},
		{Sessions: 1, Turns: 0, StartRate: 1, ObsMean: 1, ThinkMean: 1, ActMean: 1},
		{Sessions: 1, Turns: 1, StartRate: math.NaN(), ObsMean: 1, ThinkMean: 1, ActMean: 1},
		{Sessions: 1, Turns: 1, StartRate: 1, ObsMean: -1, ThinkMean: 1, ActMean: 1},
		{Sessions: 1, Turns: 1, StartRate: 1, ObsMean: 1, ThinkMean: 1, ActMean: 1, ObsSigma: math.Inf(1)},
		{Sessions: 1, Turns: 1, StartRate: 1, ObsMean: 1, ThinkMean: 1, ActMean: 1, TurnGapMean: -2},
		{Sessions: 1, Turns: 1, StartRate: 1, ObsMean: 1, ThinkMean: 1, ActMean: 1, Branch: -1},
		{Sessions: 1, Turns: 1, StartRate: 1, ObsMean: 1, ThinkMean: 1, ActMean: 1, ActSlack: math.NaN()},
	}
	for i, p := range bad {
		if _, err := Generate(p, 1); err == nil {
			t.Errorf("profile %d accepted: %+v", i, p)
		}
	}
	if _, err := Generate(AgentLoop(1, 1, 1), 1); err != nil {
		t.Errorf("AgentLoop rejected: %v", err)
	}
	// Zero gaps are legal: all of a session's requests arrive back to
	// back (a replayed trace with timing stripped).
	p := AgentLoop(2, 2, 1)
	p.PhaseGapMean, p.TurnGapMean = 0, 0
	reqs, err := Generate(p, 1)
	if err != nil {
		t.Fatalf("zero-gap profile rejected: %v", err)
	}
	for _, r := range reqs[1:] {
		if r.SessionID == reqs[0].SessionID && r.Arrival != reqs[0].Arrival {
			t.Fatalf("zero-gap session has spread arrivals: %+v", r)
		}
	}
}

// TestSessionsServeWarmBeatsCold is the end-to-end seam: the same
// session stream on the same device, cold versus prefix-cached.
func TestSessionsServeWarmBeatsCold(t *testing.T) {
	reqs, err := Generate(AgentLoop(4, 3, 2), 7)
	if err != nil {
		t.Fatal(err)
	}
	spec := model.MustLookup(model.DSR1Qwen1_5B)
	run := func(prefix bool) engine.ServeMetrics {
		e, err := engine.New(engine.Config{Spec: spec, Device: hw.JetsonAGXOrin64GB(), PrefixCache: prefix})
		if err != nil {
			t.Fatal(err)
		}
		m, err := e.Serve(reqs, 8, engine.FCFS)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	warm, cold := run(true), run(false)
	if len(warm.Requests) != len(reqs) || len(cold.Requests) != len(reqs) {
		t.Fatalf("served %d/%d of %d", len(warm.Requests), len(cold.Requests), len(reqs))
	}
	if warm.SavedPrefillTokens <= 0 {
		t.Fatal("warm run saved no prefill tokens")
	}
	if warm.PrefixHitRate() < 0.5 {
		t.Errorf("prefix hit rate %.2f below 0.5 — turns are not finding their history", warm.PrefixHitRate())
	}
	if warm.P99Latency >= cold.P99Latency {
		t.Errorf("warm p99 %.3fs not better than cold %.3fs", warm.P99Latency, cold.P99Latency)
	}
}
