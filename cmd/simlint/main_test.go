package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTreeClean is the command-level acceptance gate: the repository's
// own source must pass its own analyzers. CI runs the same thing as
// `go run ./cmd/simlint ./...`.
func TestTreeClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", filepath.Join("..", ".."), "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("simlint over the repository exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}

func TestListAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d: %s", code, stderr.String())
	}
	for _, name := range []string{"simclock", "seededrand", "maporder", "hotpath", "traceoff", "shadow"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout.String())
		}
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers", "nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown analyzer exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing diagnosis: %s", stderr.String())
	}
}

// TestDiagnosticsExitOne builds a throwaway module with one simclock
// violation and checks the multichecker convention: findings on stdout,
// a summary on stderr, exit status 1.
func TestDiagnosticsExitOne(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module throwaway\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `package main

import "time"

func main() {
	_ = time.Now()
}
`
	if err := os.WriteFile(filepath.Join(root, "main.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", root, "-analyzers", "simclock", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("violating module exited %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "time.Now reads the host clock") {
		t.Errorf("diagnostic missing from stdout:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "1 diagnostic(s)") {
		t.Errorf("summary missing from stderr:\n%s", stderr.String())
	}
}

// TestSubsetSkipsOtherAnalyzers pins -analyzers: the same violating
// module is clean under an unrelated analyzer.
func TestSubsetSkipsOtherAnalyzers(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module throwaway\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `package main

import "time"

func main() {
	_ = time.Now()
}
`
	if err := os.WriteFile(filepath.Join(root, "main.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", root, "-analyzers", "maporder", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("maporder-only run exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}
