package kvcache

import (
	"fmt"
	"math/rand/v2"
	"testing"
)

// TestForkAppendProperty drives interleaved Fork / AppendTokensH / FreeH
// traffic — the exact path the prefix index leans on — and checks the
// full invariant set after every operation: refcounts reconcile against
// sequence block tables, copy-on-write tail copies never corrupt the
// free list, the O(1) shared counter matches the scan, and no block
// leaks once everything is freed.
func TestForkAppendProperty(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewPCG(seed, 0x5eed))
			c, err := New(Config{BlockSize: 4, NumBlocks: 48})
			if err != nil {
				t.Fatal(err)
			}
			type live struct {
				id     string
				handle Handle
				length int
			}
			var seqs []live
			next := 0
			handleOf := func(id string) Handle {
				h, err := c.Lookup(id)
				if err != nil {
					t.Fatalf("lookup %s: %v", id, err)
				}
				return h
			}
			check := func(op string) {
				t.Helper()
				if err := c.CheckInvariants(); err != nil {
					t.Fatalf("after %s: %v", op, err)
				}
			}

			for op := 0; op < 400; op++ {
				switch k := rng.IntN(10); {
				case k < 3 && len(seqs) < 12: // allocate
					id := fmt.Sprintf("s%d", next)
					next++
					tokens := 1 + rng.IntN(10)
					if err := c.Allocate(id, tokens); err != nil {
						if err != ErrOutOfBlocks {
							t.Fatalf("allocate %s: %v", id, err)
						}
						check("failed allocate")
						continue
					}
					seqs = append(seqs, live{id: id, handle: handleOf(id), length: tokens})
					check("allocate " + id)
				case k < 6 && len(seqs) > 0: // append through the handle
					i := rng.IntN(len(seqs))
					n := 1 + rng.IntN(9)
					err := c.AppendTokensH(seqs[i].handle, n)
					got, lerr := c.LengthH(seqs[i].handle)
					if lerr != nil {
						t.Fatalf("length %s: %v", seqs[i].id, lerr)
					}
					if err != nil {
						if err != ErrOutOfBlocks {
							t.Fatalf("append %s: %v", seqs[i].id, err)
						}
						// Partial progress must still reconcile exactly.
						seqs[i].length = got
						check("failed append " + seqs[i].id)
						continue
					}
					seqs[i].length += n
					if got != seqs[i].length {
						t.Fatalf("append %s: length %d, want %d", seqs[i].id, got, seqs[i].length)
					}
					check("append " + seqs[i].id)
				case k < 8 && len(seqs) > 0 && len(seqs) < 12: // fork
					i := rng.IntN(len(seqs))
					id := fmt.Sprintf("s%d", next)
					next++
					if err := c.Fork(seqs[i].id, id); err != nil {
						t.Fatalf("fork %s -> %s: %v", seqs[i].id, id, err)
					}
					seqs = append(seqs, live{id: id, handle: handleOf(id), length: seqs[i].length})
					check("fork " + id)
				case len(seqs) > 0: // free
					i := rng.IntN(len(seqs))
					if err := c.FreeH(seqs[i].handle); err != nil {
						t.Fatalf("free %s: %v", seqs[i].id, err)
					}
					// The handle is dead now; every path must reject it.
					if err := c.AppendTokensH(seqs[i].handle, 1); err != ErrUnknownSequence {
						t.Fatalf("stale handle append: got %v, want ErrUnknownSequence", err)
					}
					seqs[i] = seqs[len(seqs)-1]
					seqs = seqs[:len(seqs)-1]
					check("free")
				}
			}

			for _, s := range seqs {
				if err := c.FreeH(s.handle); err != nil {
					t.Fatalf("final free %s: %v", s.id, err)
				}
			}
			check("final drain")
			st := c.Stats()
			if st.FreeBlocks != st.TotalBlocks {
				t.Fatalf("leak: %d of %d blocks free after drain", st.FreeBlocks, st.TotalBlocks)
			}
			if st.SharedBlocks != 0 {
				t.Fatalf("shared counter %d after drain, want 0", st.SharedBlocks)
			}
		})
	}
}
