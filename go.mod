module edgereasoning

go 1.22
