package workload

import (
	"math"
	"testing"
)

// FuzzGenerate hammers the stream generator with arbitrary profile
// parameters (including NaN/Inf, which Validate must refuse) and checks
// the invariants every downstream consumer relies on: arrivals are
// finite, non-negative, and non-decreasing; token counts are positive;
// deadlines are finite and never precede their request's arrival.
func FuzzGenerate(f *testing.F) {
	f.Add(uint64(7), 0.3, 50, 180.0, 0.35, 40.0, 0.4, 5.0, 20.0)
	f.Add(uint64(1), 100.0, 1, 8.0, 0.0, 1.0, 0.0, 0.0, 0.0)
	f.Add(uint64(42), 1e-6, 10, 1e6, 3.0, 1e6, 3.0, 1e6, 1e-6)
	f.Add(uint64(3), math.NaN(), 10, 180.0, 0.35, 40.0, 0.4, 0.0, 0.0)
	f.Add(uint64(4), 0.5, 10, 180.0, 700.0, 40.0, 0.4, math.Inf(1), 0.0)
	f.Fuzz(func(t *testing.T, seed uint64, qps float64, n int,
		promptMean, promptSigma, outputMean, outputSigma, slack, slackMax float64) {
		// Bound the stream length so a wild n cannot stall the fuzzer;
		// everything else goes through as-is.
		if n > 512 {
			n = 512
		}
		p := Profile{
			QPS: qps, N: n,
			PromptMean: promptMean, PromptSigma: promptSigma,
			OutputMean: outputMean, OutputSigma: outputSigma,
			DeadlineSlack: slack, DeadlineSlackMax: slackMax,
		}
		reqs, err := Generate(p, seed)
		if err != nil {
			return // rejected profiles are fine; silent corruption is not
		}
		if len(reqs) != n {
			t.Fatalf("generated %d requests, want %d", len(reqs), n)
		}
		prev := 0.0
		for i, r := range reqs {
			if math.IsNaN(r.Arrival) || math.IsInf(r.Arrival, 0) || r.Arrival < 0 {
				t.Fatalf("request %d: bad arrival %v", i, r.Arrival)
			}
			if r.Arrival < prev {
				t.Fatalf("request %d: arrival %v before predecessor %v", i, r.Arrival, prev)
			}
			prev = r.Arrival
			if r.PromptTokens < 8 {
				t.Fatalf("request %d: prompt %d below the generator floor", i, r.PromptTokens)
			}
			if r.OutputTokens < 1 {
				t.Fatalf("request %d: output %d below 1", i, r.OutputTokens)
			}
			if math.IsNaN(r.Deadline) || math.IsInf(r.Deadline, 0) {
				t.Fatalf("request %d: non-finite deadline %v", i, r.Deadline)
			}
			if r.Deadline != 0 && r.Deadline < r.Arrival {
				t.Fatalf("request %d: deadline %v precedes arrival %v", i, r.Deadline, r.Arrival)
			}
		}
		// Same (profile, seed) must reproduce byte-for-byte.
		again, err := Generate(p, seed)
		if err != nil {
			t.Fatalf("second generation failed: %v", err)
		}
		for i := range reqs {
			if reqs[i].Request != again[i].Request || reqs[i].Arrival != again[i].Arrival ||
				reqs[i].Deadline != again[i].Deadline {
				t.Fatalf("request %d not deterministic: %+v vs %+v", i, reqs[i], again[i])
			}
		}
	})
}
