package model

import (
	"fmt"
	"sort"
)

// Class partitions the catalog the way the paper's evaluation does (§V).
type Class int

const (
	// Reasoning models emit an explicit chain of thought before the answer
	// (the DeepSeek-R1 distills).
	Reasoning Class = iota
	// NonReasoning models answer directly (Qwen2.5-it, Llama3.1-it, Gemma).
	NonReasoning
	// BudgetAware models are RL-fine-tuned to respect token budgets (L1).
	BudgetAware
)

// String names the class as used in the paper's tables.
func (c Class) String() string {
	switch c {
	case Reasoning:
		return "reasoning"
	case NonReasoning:
		return "non-reasoning"
	case BudgetAware:
		return "budget-aware"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// ID identifies a model in the catalog.
type ID string

// Catalog model identifiers. The DSR1 trio, L1, and DeepScaleR are the
// reasoning side of the study; the -it models are the direct baselines.
const (
	DSR1Qwen1_5B  ID = "dsr1-qwen-1.5b"
	DSR1Llama8B   ID = "dsr1-llama-8b"
	DSR1Qwen14B   ID = "dsr1-qwen-14b"
	L1Max         ID = "l1-max"
	DeepScaleR1_5 ID = "deepscaler-1.5b"
	Qwen25_1_5Bit ID = "qwen2.5-1.5b-it"
	Qwen25_7Bit   ID = "qwen2.5-7b-it"
	Qwen25_14Bit  ID = "qwen2.5-14b-it"
	Llama31_8Bit  ID = "llama3.1-8b-it"
	Gemma7Bit     ID = "gemma-7b-it"
)

// Spec is one deployable model: an architecture plus its behavioural class
// and weight format.
type Spec struct {
	ID          ID
	DisplayName string
	Arch        Arch
	Class       Class
	DType       DType
}

// Quantized returns the W4A16 (LLM-Compressor AWQ) variant of the spec,
// as evaluated in §V-F. The architecture is unchanged; only the weight
// format differs. Behavioural deltas (accuracy loss, shorter outputs) are
// applied by the llm twins, not here.
func (s Spec) Quantized() Spec {
	q := s
	q.ID = s.ID + "-w4"
	q.DisplayName = s.DisplayName + "-W4"
	q.DType = W4A16
	return q
}

// IsQuantized reports whether the spec stores 4-bit weights.
func (s Spec) IsQuantized() bool { return s.DType == W4A16 }

// Architecture geometries from the public model cards.
var (
	archQwen25_1_5B = Arch{
		Name: "qwen2.5-1.5b", Layers: 28, Hidden: 1536, Heads: 12, KVHeads: 2,
		HeadDim: 128, Inter: 8960, Vocab: 151936, TiedEmbd: true, AttnBias: true,
	}
	archLlama31_8B = Arch{
		Name: "llama3.1-8b", Layers: 32, Hidden: 4096, Heads: 32, KVHeads: 8,
		HeadDim: 128, Inter: 14336, Vocab: 128256,
	}
	archQwen25_14B = Arch{
		Name: "qwen2.5-14b", Layers: 48, Hidden: 5120, Heads: 40, KVHeads: 8,
		HeadDim: 128, Inter: 13824, Vocab: 152064, AttnBias: true,
	}
	archQwen25_7B = Arch{
		Name: "qwen2.5-7b", Layers: 28, Hidden: 3584, Heads: 28, KVHeads: 4,
		HeadDim: 128, Inter: 18944, Vocab: 152064, AttnBias: true,
	}
	archGemma7B = Arch{
		Name: "gemma-7b", Layers: 28, Hidden: 3072, Heads: 16, KVHeads: 16,
		HeadDim: 256, Inter: 24576, Vocab: 256000, TiedEmbd: true,
	}
)

// catalog is the full model zoo in a stable order.
var catalog = []Spec{
	{ID: DSR1Qwen1_5B, DisplayName: "DSR1-Qwen-1.5B", Arch: archQwen25_1_5B, Class: Reasoning, DType: FP16},
	{ID: DSR1Llama8B, DisplayName: "DSR1-Llama-8B", Arch: archLlama31_8B, Class: Reasoning, DType: FP16},
	{ID: DSR1Qwen14B, DisplayName: "DSR1-Qwen-14B", Arch: archQwen25_14B, Class: Reasoning, DType: FP16},
	{ID: L1Max, DisplayName: "L1-Max", Arch: archQwen25_1_5B, Class: BudgetAware, DType: FP16},
	{ID: DeepScaleR1_5, DisplayName: "DeepScaleR-1.5B", Arch: archQwen25_1_5B, Class: Reasoning, DType: FP16},
	{ID: Qwen25_1_5Bit, DisplayName: "Qwen2.5-1.5B-it", Arch: archQwen25_1_5B, Class: NonReasoning, DType: FP16},
	{ID: Qwen25_7Bit, DisplayName: "Qwen2.5-7B-it", Arch: archQwen25_7B, Class: NonReasoning, DType: FP16},
	{ID: Qwen25_14Bit, DisplayName: "Qwen2.5-14B-it", Arch: archQwen25_14B, Class: NonReasoning, DType: FP16},
	{ID: Llama31_8Bit, DisplayName: "Llama3.1-8B-it", Arch: archLlama31_8B, Class: NonReasoning, DType: FP16},
	{ID: Gemma7Bit, DisplayName: "Gemma-7B-it", Arch: archGemma7B, Class: NonReasoning, DType: FP16},
}

// Lookup returns the spec for an ID. Quantized IDs ("<base>-w4") resolve
// to the Quantized() variant of the base spec.
func Lookup(id ID) (Spec, error) {
	for _, s := range catalog {
		if s.ID == id {
			return s, nil
		}
	}
	// Try the -w4 suffix convention.
	const suffix = "-w4"
	if n := len(id) - len(suffix); n > 0 && string(id[n:]) == suffix {
		base, err := Lookup(id[:n])
		if err == nil {
			return base.Quantized(), nil
		}
	}
	return Spec{}, fmt.Errorf("model: unknown id %q", id)
}

// MustLookup is Lookup for known-good IDs; it panics on error.
func MustLookup(id ID) Spec {
	s, err := Lookup(id)
	if err != nil {
		panic(err)
	}
	return s
}

// All returns the catalog in stable order.
func All() []Spec {
	out := make([]Spec, len(catalog))
	copy(out, catalog)
	return out
}

// ByClass returns catalog entries of one class, sorted by parameter count.
func ByClass(c Class) []Spec {
	var out []Spec
	for _, s := range catalog {
		if s.Class == c {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Arch.ParamCount() < out[j].Arch.ParamCount()
	})
	return out
}

// DSR1Family returns the three DeepSeek-R1 distills in size order —
// the models every characterization figure sweeps.
func DSR1Family() []Spec {
	return []Spec{
		MustLookup(DSR1Qwen1_5B),
		MustLookup(DSR1Llama8B),
		MustLookup(DSR1Qwen14B),
	}
}
