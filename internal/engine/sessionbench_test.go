// Session-serving benchmarks live in the external test package: they
// drive engine.Serve with internal/session streams, and session imports
// engine, so an in-package test file would be an import cycle.
package engine_test

import (
	"testing"

	"edgereasoning/internal/engine"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/model"
	"edgereasoning/internal/session"
)

// BenchmarkSessionServe is the session-grade counterpart of
// BenchmarkServeHotLoop, tracked in BENCH_serve.json: one open-loop run
// over a multi-turn agentic stream, warm (prefix cache on, turns reuse
// their history) versus cold (every turn re-prefills from scratch). CI
// gates allocs/op for both via scripts/bench.sh + cmd/benchcheck.
func BenchmarkSessionServe(b *testing.B) {
	reqs, err := session.Generate(session.AgentLoop(8, 4, 2), 7)
	if err != nil {
		b.Fatal(err)
	}
	spec := model.MustLookup(model.DSR1Qwen1_5B)
	for _, mode := range []struct {
		name   string
		prefix bool
	}{{"warm", true}, {"cold", false}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				e, err := engine.New(engine.Config{
					Spec: spec, Device: hw.JetsonAGXOrin64GB(), PrefixCache: mode.prefix,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				sm, err := e.Serve(reqs, 8, engine.FCFS)
				if err != nil {
					b.Fatal(err)
				}
				if len(sm.Requests) != len(reqs) {
					b.Fatalf("served %d of %d", len(sm.Requests), len(reqs))
				}
				if mode.prefix && sm.SavedPrefillTokens == 0 {
					b.Fatal("warm run saved nothing")
				}
			}
		})
	}
}
