// Package llm implements statistical twins of the models the paper
// deploys. A twin does not run a neural network; it reproduces the
// *measured behaviour* of the real model on a benchmark — output-length
// distributions and accuracy — calibrated cell-by-cell against the
// paper's appendix tables (X–XV). Question-level heterogeneity (difficulty,
// seductive distractors) is layered on top so that test-time scaling
// dynamics (majority voting, Fig 9) emerge from the same machinery the
// real system exhibits rather than being painted on.
package llm

import (
	"fmt"

	"edgereasoning/internal/data"
	"edgereasoning/internal/model"
)

// Behavior is the calibrated behaviour of one (model, benchmark, policy)
// cell: how many tokens the model emits on average and how accurate it is.
type Behavior struct {
	// MeanTokens is the mean output length per question (after any hard
	// enforcement — it matches the "Avg toks/question" table columns).
	MeanTokens float64
	// Sigma is the lognormal spread of per-question output length.
	Sigma float64
	// Accuracy is the mean benchmark accuracy (fraction, 0..1).
	Accuracy float64
	// Dispersion is the Beta concentration ν of per-question correctness
	// probability; lower values spread question difficulty wider and give
	// majority voting more to work with.
	Dispersion float64
	// VoteCorr is the probability a parallel branch repeats the model's
	// modal answer instead of sampling independently. Longer reasoning
	// budgets converge branches onto the same answer, which is what makes
	// parallel-scaling gains plateau at the 512-token budget (Fig 9b)
	// while staying large at 128 tokens (Fig 9a). Single-sample accuracy
	// is unaffected by this parameter.
	VoteCorr float64
	// Interpolated marks cells not present in the paper's tables
	// (synthesized from neighbouring measurements; see DESIGN.md §7).
	Interpolated bool
}

type cellKey struct {
	model  model.ID
	bench  data.Benchmark
	config string
}

// cell builds a calibration entry from the paper's units (accuracy in %,
// tokens per question).
func cell(accPct, meanToks float64) Behavior {
	return Behavior{
		MeanTokens: meanToks,
		Sigma:      0.45,
		Accuracy:   accPct / 100,
		Dispersion: 4.0,
	}
}

func interp(accPct, meanToks float64) Behavior {
	b := cell(accPct, meanToks)
	b.Interpolated = true
	return b
}

// calibration is the master table. Sources:
//   - MMLU-Redux base/quantized/direct: Table X
//   - MMLU-Redux budgeted decoding:     Table XI
//   - MMLU (15k):                        Table XII
//   - Natural-Plan:                      Tables XIII–XV
//   - AIME2024 / MATH500:                Table III
//
// Cells marked interp() are not in the paper (the paper plots but does not
// tabulate them); values are interpolated from the surrounding
// measurements and the figures' visual positions.
var calibration = map[cellKey]Behavior{
	// ---------------- MMLU-Redux (3k), Table X: Base ----------------
	{model.DSR1Qwen1_5B, data.MMLURedux, "base"}: cell(38.3, 740.2),
	{model.DSR1Llama8B, data.MMLURedux, "base"}:  cell(61.7, 811.1),
	{model.DSR1Qwen14B, data.MMLURedux, "base"}:  cell(80.6, 1317.8),
	{model.L1Max, data.MMLURedux, "base"}:        cell(43.8, 312.6),

	// Table X: Quantized (LLMC-AWQ-W4).
	{"dsr1-qwen-1.5b-w4", data.MMLURedux, "base"}: cell(37.9, 698.5),
	{"dsr1-llama-8b-w4", data.MMLURedux, "base"}:  cell(57.9, 549.1),
	{"dsr1-qwen-14b-w4", data.MMLURedux, "base"}:  cell(80.1, 1235.8),

	// Table X: Direct (non-reasoning) models.
	{model.Qwen25_7Bit, data.MMLURedux, "direct"}:  cell(60.9, 40.2),
	{model.Gemma7Bit, data.MMLURedux, "direct"}:    cell(33.9, 44.7),
	{model.Llama31_8Bit, data.MMLURedux, "direct"}: cell(58.3, 63.5),
	// Plotted in Figs 6c/7c but not tabulated:
	{model.Qwen25_1_5Bit, data.MMLURedux, "direct"}: interp(46.0, 34.0),
	{model.Qwen25_14Bit, data.MMLURedux, "direct"}:  interp(71.5, 42.0),

	// ---------------- MMLU-Redux, Table XI: budgeted ----------------
	{model.DSR1Llama8B, data.MMLURedux, "soft-128"}: cell(60.4, 437.0),
	{model.DSR1Llama8B, data.MMLURedux, "soft-256"}: cell(64.3, 933.0),
	{model.DSR1Llama8B, data.MMLURedux, "nr"}:       cell(51.0, 182.9),
	{model.DSR1Llama8B, data.MMLURedux, "hard-128"}: cell(37.9, 76.3),
	{model.DSR1Llama8B, data.MMLURedux, "hard-256"}: cell(41.2, 143.6),

	{model.DSR1Qwen1_5B, data.MMLURedux, "soft-128"}: cell(35.5, 1474.0),
	{model.DSR1Qwen1_5B, data.MMLURedux, "soft-256"}: cell(39.4, 734.8),
	{model.DSR1Qwen1_5B, data.MMLURedux, "nr"}:       cell(41.0, 234.9),
	{model.DSR1Qwen1_5B, data.MMLURedux, "hard-128"}: cell(15.9, 91.5),
	{model.DSR1Qwen1_5B, data.MMLURedux, "hard-256"}: cell(23.2, 144.1),

	{model.DSR1Qwen14B, data.MMLURedux, "soft-128"}: cell(76.9, 599.0),
	{model.DSR1Qwen14B, data.MMLURedux, "soft-256"}: cell(77.2, 374.2),
	{model.DSR1Qwen14B, data.MMLURedux, "nr"}:       cell(69.0, 180.7),
	{model.DSR1Qwen14B, data.MMLURedux, "hard-128"}: cell(46.1, 78.2),
	{model.DSR1Qwen14B, data.MMLURedux, "hard-256"}: cell(58.6, 112.9),

	{model.L1Max, data.MMLURedux, "soft-128"}: cell(17.8, 54.3),
	{model.L1Max, data.MMLURedux, "soft-256"}: cell(17.1, 62.3),
	{model.L1Max, data.MMLURedux, "hard-128"}: cell(16.2, 40.7),
	{model.L1Max, data.MMLURedux, "hard-256"}: cell(18.3, 48.9),

	// Hard-512 anchors for the parallel-scaling study (Fig 9b runs a
	// 512-token output budget; SF=1 accuracy read from the figure).
	{model.DSR1Qwen1_5B, data.MMLURedux, "hard-512"}: interp(30.0, 390),
	{model.DSR1Llama8B, data.MMLURedux, "hard-512"}:  interp(52.0, 430),
	{model.DSR1Qwen14B, data.MMLURedux, "hard-512"}:  interp(68.0, 455),
	{model.L1Max, data.MMLURedux, "hard-512"}:        interp(43.0, 300),

	// ---------------- MMLU 15k, Table XII ----------------
	{model.DSR1Qwen1_5B, data.MMLU, "base"}:      cell(41.67, 1141.6),
	{model.DSR1Qwen1_5B, data.MMLU, "hard-128"}:  cell(24.60, 88.7),
	{model.DSR1Qwen1_5B, data.MMLU, "hard-256"}:  cell(29.60, 113.7),
	{"dsr1-qwen-1.5b-w4", data.MMLU, "base"}:     cell(37.73, 984.4),
	{"dsr1-qwen-1.5b-w4", data.MMLU, "hard-128"}: cell(24.60, 86.9),
	{"dsr1-qwen-1.5b-w4", data.MMLU, "hard-256"}: cell(29.10, 120.4),

	{model.DSR1Llama8B, data.MMLU, "base"}:      cell(60.38, 345.6),
	{model.DSR1Llama8B, data.MMLU, "hard-128"}:  cell(31.03, 101.5),
	{model.DSR1Llama8B, data.MMLU, "hard-256"}:  cell(41.80, 169.3),
	{"dsr1-llama-8b-w4", data.MMLU, "base"}:     cell(60.44, 455.4),
	{"dsr1-llama-8b-w4", data.MMLU, "hard-128"}: cell(32.10, 97.7),
	{"dsr1-llama-8b-w4", data.MMLU, "hard-256"}: cell(43.50, 157.1),

	{model.DSR1Qwen14B, data.MMLU, "base"}:      cell(86.59, 1145.4),
	{model.DSR1Qwen14B, data.MMLU, "hard-128"}:  cell(28.30, 193.4),
	{model.DSR1Qwen14B, data.MMLU, "hard-256"}:  cell(37.70, 185.7),
	{"dsr1-qwen-14b-w4", data.MMLU, "base"}:     cell(86.69, 1148.4),
	{"dsr1-qwen-14b-w4", data.MMLU, "hard-128"}: cell(27.10, 109.6),
	{"dsr1-qwen-14b-w4", data.MMLU, "hard-256"}: cell(37.10, 162.0),

	// ---------------- Natural-Plan, Table XIII (Base) ----------------
	{model.DSR1Qwen1_5B, data.NaturalPlanCalendar, "base"}: cell(0.60, 2792),
	{model.DSR1Qwen1_5B, data.NaturalPlanMeeting, "base"}:  cell(1.00, 3880),
	{model.DSR1Qwen1_5B, data.NaturalPlanTrip, "base"}:     cell(1.25, 2490),
	{model.DSR1Llama8B, data.NaturalPlanCalendar, "base"}:  cell(9.00, 2798),
	{model.DSR1Llama8B, data.NaturalPlanMeeting, "base"}:   cell(10.00, 2866),
	{model.DSR1Llama8B, data.NaturalPlanTrip, "base"}:      cell(7.88, 2251),
	{model.DSR1Qwen14B, data.NaturalPlanCalendar, "base"}:  cell(11.70, 2297),
	{model.DSR1Qwen14B, data.NaturalPlanMeeting, "base"}:   cell(19.30, 1494),
	{model.DSR1Qwen14B, data.NaturalPlanTrip, "base"}:      cell(13.88, 2340),

	// Table XIV (NR + hard 512).
	{model.DSR1Qwen1_5B, data.NaturalPlanCalendar, "hard-512"}: cell(2.00, 511),
	{model.DSR1Qwen1_5B, data.NaturalPlanMeeting, "hard-512"}:  cell(1.90, 425),
	{model.DSR1Qwen1_5B, data.NaturalPlanTrip, "hard-512"}:     cell(0.05, 507),
	{model.DSR1Llama8B, data.NaturalPlanCalendar, "hard-512"}:  cell(8.10, 67),
	{model.DSR1Llama8B, data.NaturalPlanMeeting, "hard-512"}:   cell(11.90, 284),
	{model.DSR1Llama8B, data.NaturalPlanTrip, "hard-512"}:      cell(3.90, 398),
	{model.DSR1Qwen14B, data.NaturalPlanCalendar, "hard-512"}:  cell(12.60, 40),
	{model.DSR1Qwen14B, data.NaturalPlanMeeting, "hard-512"}:   cell(19.00, 341),
	{model.DSR1Qwen14B, data.NaturalPlanTrip, "hard-512"}:      cell(10.90, 380),

	// Table XV (Direct Qwen2.5).
	{model.Qwen25_1_5Bit, data.NaturalPlanCalendar, "direct"}: cell(5.30, 22),
	{model.Qwen25_1_5Bit, data.NaturalPlanMeeting, "direct"}:  cell(9.40, 271),
	{model.Qwen25_1_5Bit, data.NaturalPlanTrip, "direct"}:     cell(2.50, 242),
	{model.Qwen25_14Bit, data.NaturalPlanCalendar, "direct"}:  cell(31.90, 28),
	{model.Qwen25_14Bit, data.NaturalPlanMeeting, "direct"}:   cell(27.20, 283),
	{model.Qwen25_14Bit, data.NaturalPlanTrip, "direct"}:      cell(6.44, 259),

	// ---------------- AIME2024 / MATH500, Table III ----------------
	// DeepScaleR-1.5B: 43.1% on AIME2024; the Orin profile processed
	// 195,624 tokens over 30 questions ≈ 6,520 tokens/question.
	{model.DeepScaleR1_5, data.AIME2024, "base"}: cell(43.1, 6520),
	{model.DeepScaleR1_5, data.Math500, "base"}:  cell(87.8, 2600),
}

// init assigns vote correlations by configuration: truncated short chains
// produce noisy answers (low correlation, big voting gains); generous
// budgets converge branches (high correlation, early plateau). L1's
// budget-tuned decoding is near-deterministic regardless of budget.
func init() {
	for k, b := range calibration {
		switch {
		case k.model == model.L1Max:
			b.VoteCorr = 0.80
		case k.config == "hard-128":
			// Short truncated chains answer noisily (almost no branch
			// correlation) but the latent per-question skill is fairly
			// concentrated — together these give plurality voting the most
			// headroom, matching Fig 9a's 1.5-1.8x gains at SF=32.
			b.VoteCorr = 0.04
			b.Dispersion = 8.0
		case k.config == "hard-256":
			b.VoteCorr = 0.30
		case k.config == "hard-512":
			b.VoteCorr = 0.60
		default:
			b.VoteCorr = 0.65
		}
		calibration[k] = b
	}
}

// Calibrated returns the paper-measured behaviour of a (model, benchmark,
// policy-key) cell, if the paper (or an interpolation) provides one.
func Calibrated(m model.ID, b data.Benchmark, configKey string) (Behavior, bool) {
	beh, ok := calibration[cellKey{m, b, configKey}]
	return beh, ok
}

// MustCalibrated panics when a cell is missing — used by experiment
// drivers whose cells are guaranteed present.
func MustCalibrated(m model.ID, b data.Benchmark, configKey string) Behavior {
	beh, ok := Calibrated(m, b, configKey)
	if !ok {
		panic(fmt.Sprintf("llm: no calibration for %s/%s/%s", m, b, configKey))
	}
	return beh
}

// CalibratedConfigs lists the config keys available for a (model,
// benchmark) pair, in no particular order.
func CalibratedConfigs(m model.ID, b data.Benchmark) []string {
	var out []string
	for k := range calibration {
		if k.model == m && k.bench == b {
			out = append(out, k.config)
		}
	}
	return out
}
