package kvcache

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestTierCycleProperties drives randomized demote -> promote ->
// re-demote cycles through a small tiered cache and audits the full
// invariant set (cache refcount conservation, tier residency, chain
// tails, child counters, LRU order on both tiers) after every single
// operation. Eight seeds; run under -race in CI.
func TestTierCycleProperties(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runTierCycleSeed(t, seed)
		})
	}
}

func runTierCycleSeed(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	c, err := New(Config{BlockSize: 4, NumBlocks: 24, BytesPerToken: 512})
	if err != nil {
		t.Fatal(err)
	}
	ix := NewPrefixIndex(c)
	if err := ix.AttachHostTier(HostTierConfig{Blocks: 8}); err != nil {
		t.Fatal(err)
	}

	type liveSeq struct {
		id     string
		prompt []uint64
	}
	var (
		histories [][]uint64 // session prompt histories, grown per turn
		live      []liveSeq
		nextSym   = uint64(1)
		nextID    int
	)
	freshSyms := func(n int) []uint64 {
		out := syms(nextSym, n)
		nextSym += uint64(n)
		return out
	}
	check := func(op string) {
		t.Helper()
		if err := ix.CheckInvariants(); err != nil {
			t.Fatalf("after %s: %v", op, err)
		}
	}

	const ops = 400
	for i := 0; i < ops; i++ {
		switch k := rng.Intn(10); {
		case k < 4: // start a turn: acquire + append, leave it live
			var prompt []uint64
			if len(histories) > 0 && rng.Intn(3) > 0 {
				base := histories[rng.Intn(len(histories))]
				prompt = append(append([]uint64{}, base...), freshSyms(1+rng.Intn(8))...)
			} else {
				prompt = freshSyms(4 + rng.Intn(12))
			}
			id := fmt.Sprintf("q%d", nextID)
			nextID++
			ix.EnsureFree((len(prompt) + 3) / 4)
			check("ensure-before-acquire")
			matched, err := ix.Acquire(id, prompt)
			if err != nil {
				check("acquire-failed")
				continue
			}
			check("acquire")
			h, err := c.Lookup(id)
			if err != nil {
				t.Fatalf("lookup %s: %v", id, err)
			}
			if err := c.AppendTokensH(h, len(prompt)-matched); err != nil {
				// Out of capacity mid-turn: abandon the sequence.
				if err := c.Free(id); err != nil {
					t.Fatalf("free %s: %v", id, err)
				}
				check("append-failed-free")
				continue
			}
			check("append")
			live = append(live, liveSeq{id: id, prompt: prompt})
		case k < 6: // finish a turn: release with retention
			if len(live) == 0 {
				continue
			}
			j := rng.Intn(len(live))
			s := live[j]
			live = append(live[:j], live[j+1:]...)
			h, err := c.Lookup(s.id)
			if err != nil {
				t.Fatalf("lookup %s: %v", s.id, err)
			}
			out := freshSyms(rng.Intn(6))
			if err := ix.Release(h, s.prompt, out); err != nil {
				t.Fatalf("release %s: %v", s.id, err)
			}
			check("release")
			histories = append(histories, append(append([]uint64{}, s.prompt...), out...))
			if len(histories) > 24 {
				histories = histories[1:]
			}
		case k < 7: // abandon a live sequence without retention
			if len(live) == 0 {
				continue
			}
			j := rng.Intn(len(live))
			s := live[j]
			live = append(live[:j], live[j+1:]...)
			if err := c.Free(s.id); err != nil {
				t.Fatalf("free %s: %v", s.id, err)
			}
			check("free")
		case k < 9: // memory pressure: demote (and maybe drop) LRU state
			ix.EnsureFree(1 + rng.Intn(24))
			check("ensure-free")
		default: // observe: probe touches recency, peek must not
			if len(histories) == 0 {
				continue
			}
			p := histories[rng.Intn(len(histories))]
			ix.Probe(p)
			check("probe")
			ix.Peek(p)
			check("peek")
		}
	}
	for _, s := range live {
		if err := c.Free(s.id); err != nil {
			t.Fatalf("final free %s: %v", s.id, err)
		}
		check("final-free")
	}
	m := ix.Metrics()
	if m.Demotions == 0 || m.Promotions == 0 || m.Evictions == 0 {
		t.Fatalf("seed %d never exercised the full cycle: demotions %d promotions %d evictions %d",
			seed, m.Demotions, m.Promotions, m.Evictions)
	}
}
