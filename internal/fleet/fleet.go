// Package fleet simulates serving one open-loop request stream across a
// pool of heterogeneous replica engines — mixed device profiles (AGX
// Orin power modes, server parts) and mixed weight formats (FP16 and
// W4A16). A deterministic router assigns each arriving request to a
// replica under a pluggable Policy; each replica then executes its
// sub-stream on the full vLLM-style engine (engine.Serve), and the
// per-replica results are folded into fleet-wide Metrics.
//
// The router works on calibrated estimates (a batch-1 probe of each
// replica's prefill and decode rates) while the replicas execute on the
// exact simulator, mirroring a real load balancer that routes on cheap
// health signals rather than ground truth. Admission is a global FIFO
// queue with per-replica capacity: when every routable replica is at
// capacity, the stream head waits (head-of-line blocking, as a real
// shared ingress queue would) and later requests queue behind it.
package fleet

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"edgereasoning/internal/engine"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/model"
	"edgereasoning/internal/stats"
)

// ReplicaConfig describes one engine in the fleet.
type ReplicaConfig struct {
	// Name labels the replica in metrics (default "r<i>-<device>").
	Name   string
	Spec   model.Spec
	Device *hw.Device
	// MaxBatch bounds concurrent decoders on the replica (default 4).
	MaxBatch int
	// Capacity bounds outstanding (queued + executing) requests the
	// router may park on the replica (default 16).
	Capacity int
	// WarmupDelay keeps the replica unroutable before this simulated
	// time — a cold start loading weights. Zero means warm at t=0.
	WarmupDelay float64
	// FailAt, when positive, makes the replica unroutable at and after
	// this simulated time. Requests routed earlier still complete (a
	// drain-style failure, not a crash).
	FailAt float64
}

func (rc ReplicaConfig) withDefaults(i int) ReplicaConfig {
	if rc.MaxBatch <= 0 {
		rc.MaxBatch = 4
	}
	if rc.Capacity <= 0 {
		rc.Capacity = 16
	}
	if rc.Name == "" && rc.Device != nil {
		rc.Name = fmt.Sprintf("r%d-%s", i, rc.Device.Name)
	}
	return rc
}

// Config assembles a fleet.
type Config struct {
	Replicas []ReplicaConfig
	Policy   Policy
	// PrefixCache builds every replica engine with a cross-request prefix
	// KV cache, so session-tagged streams reuse their history on whichever
	// replica holds it (see Policy SessionAffinity).
	PrefixCache bool
}

// ReplicaMetrics reports one replica's share of the run.
type ReplicaMetrics struct {
	Name   string
	Device string
	Model  string
	// Assigned counts requests routed to the replica.
	Assigned int
	engine.ServeMetrics
	// BusyTime sums per-request service time (prefill + decode); batched
	// decode double-counts overlap, so compare it across replicas, not
	// against wall time.
	BusyTime float64
}

// Metrics aggregates a fleet run.
type Metrics struct {
	Policy   Policy
	Replicas []ReplicaMetrics
	// Served counts completed requests; Dropped counts requests no
	// replica could ever take (all failed or never warm).
	Served  int
	Dropped int
	// Fleet-wide latency distribution over all completions.
	P50Latency  float64
	P95Latency  float64
	P99Latency  float64
	MeanLatency float64
	// Deadline accounting; dropped deadline-bearing requests count as
	// missed.
	DeadlinesMet   int
	DeadlinesTotal int
	TotalEnergy    float64 // joules across the fleet
	// WallTime is the last completion time on any replica.
	WallTime float64
	// Imbalance is the coefficient of variation of per-replica BusyTime:
	// 0 is a perfectly even spread, higher means hot spots.
	Imbalance float64
	// Prefix-cache accounting summed over replicas (zero without
	// Config.PrefixCache or without PromptSyms on the stream).
	PrefixLookups      int
	PrefixHits         int
	PrefixLookupTokens int
	SavedPrefillTokens int
}

// HitRate returns the fraction of deadline-bearing requests that met
// their deadline (1.0 when none carry deadlines).
func (m Metrics) HitRate() float64 {
	if m.DeadlinesTotal == 0 {
		return 1
	}
	return float64(m.DeadlinesMet) / float64(m.DeadlinesTotal)
}

// PrefixHitRate is the fleet-wide token-weighted cache hit rate — saved
// prefill tokens over prompt tokens that consulted a replica's cache (0
// when never consulted).
func (m Metrics) PrefixHitRate() float64 {
	if m.PrefixLookupTokens == 0 {
		return 0
	}
	return float64(m.SavedPrefillTokens) / float64(m.PrefixLookupTokens)
}

// replica is the router-side state for one engine.
type replica struct {
	cfg ReplicaConfig
	eng *engine.Engine
	// Calibrated batch-1 rates from the warm-up probe.
	prefillPerTok float64
	decodePerTok  float64
	// assigned is the replica's sub-stream, in dispatch order.
	assigned []engine.TimedRequest
	// delays records per-request global-queue wait (dispatch − arrival),
	// folded back into latency accounting after the engine runs.
	delays map[string]float64
	// finishes holds estimated completion times of outstanding requests,
	// sorted ascending; estFreeAt is the serial-backlog horizon.
	finishes  []float64
	estFreeAt float64
	wrrCredit float64
}

// estService estimates the batch-1 service time of a request.
func (r *replica) estService(tr engine.TimedRequest) float64 {
	return r.prefillPerTok*float64(tr.PromptTokens) + r.decodePerTok*float64(tr.OutputTokens)
}

// speed is the router's weight for latency-weighted spreading: estimated
// throughput on a reference interactive request.
func (r *replica) speed() float64 {
	ref := engine.TimedRequest{Request: engine.Request{PromptTokens: 180, OutputTokens: 40}}
	if s := r.estService(ref); s > 0 {
		return 1 / s
	}
	return 0
}

// routableAt reports whether the router may hand the replica a request
// at time t (warm and not failed); capacity is checked separately.
func (r *replica) routableAt(t float64) bool {
	if t < r.cfg.WarmupDelay {
		return false
	}
	if r.cfg.FailAt > 0 && t >= r.cfg.FailAt {
		return false
	}
	return true
}

// depth drops completed estimates and returns outstanding count at t.
func (r *replica) depth(t float64) int {
	done := sort.Search(len(r.finishes), func(k int) bool { return r.finishes[k] > t })
	r.finishes = r.finishes[done:]
	return len(r.finishes)
}

// take records the dispatch of tr at time t.
func (r *replica) take(tr engine.TimedRequest, t float64) {
	est := math.Max(r.estFreeAt, t) + r.estService(tr)
	r.estFreeAt = est
	i := sort.SearchFloat64s(r.finishes, est)
	r.finishes = append(r.finishes, 0)
	copy(r.finishes[i+1:], r.finishes[i:])
	r.finishes[i] = est
	r.assigned = append(r.assigned, tr)
}

// Serve routes the open-loop stream across the fleet and executes every
// replica's sub-stream. Requests must not predate t=0; the input slice
// is not modified.
func Serve(cfg Config, reqs []engine.TimedRequest) (Metrics, error) {
	if len(cfg.Replicas) == 0 {
		return Metrics{}, fmt.Errorf("fleet: no replicas configured")
	}
	replicas := make([]*replica, len(cfg.Replicas))
	for i, rc := range cfg.Replicas {
		rc = rc.withDefaults(i)
		eng, err := engine.New(engine.Config{Spec: rc.Spec, Device: rc.Device, PrefixCache: cfg.PrefixCache})
		if err != nil {
			return Metrics{}, fmt.Errorf("fleet: replica %s: %w", rc.Name, err)
		}
		// Calibrate the router's service-time estimate with a scratch
		// engine so the serving engine's clock stays at zero.
		probe, err := engine.New(engine.Config{Spec: rc.Spec, Device: rc.Device})
		if err != nil {
			return Metrics{}, fmt.Errorf("fleet: replica %s: %w", rc.Name, err)
		}
		const probePrompt, probeOut = 256, 128
		pm, err := probe.Generate(engine.Request{ID: "probe", PromptTokens: probePrompt, OutputTokens: probeOut})
		if err != nil {
			return Metrics{}, fmt.Errorf("fleet: replica %s probe: %w", rc.Name, err)
		}
		replicas[i] = &replica{
			cfg:           rc,
			eng:           eng,
			prefillPerTok: pm.PrefillTime / probePrompt,
			decodePerTok:  pm.DecodeTime / probeOut,
			delays:        map[string]float64{},
		}
	}

	stream := make([]engine.TimedRequest, len(reqs))
	copy(stream, reqs)
	sort.SliceStable(stream, func(i, j int) bool { return stream[i].Arrival < stream[j].Arrival })
	if len(stream) > 0 && stream[0].Arrival < 0 {
		return Metrics{}, fmt.Errorf("fleet: request %q arrives at negative time %.3f", stream[0].ID, stream[0].Arrival)
	}

	var out Metrics
	out.Policy = cfg.Policy
	router := &router{replicas: replicas, policy: cfg.Policy}
	for _, tr := range stream {
		// Global FIFO queue: a request cannot be dispatched before the
		// one ahead of it (head-of-line blocking under full admission).
		t := math.Max(tr.Arrival, router.lastDispatch)
		r, admitAt, ok := router.place(tr, t)
		if !ok {
			out.Dropped++
			if tr.Deadline > 0 {
				out.DeadlinesTotal++
			}
			continue
		}
		// The engine sees the dispatch time as the arrival; the wait in
		// the global queue is re-added to the request's latency below.
		adjusted := tr
		adjusted.Arrival = admitAt
		if admitAt > tr.Arrival {
			r.delays[tr.ID] = admitAt - tr.Arrival
		}
		r.take(adjusted, admitAt)
		router.lastDispatch = admitAt
	}

	discipline := cfg.Policy.LocalDiscipline()
	var latencies []float64
	var busy []float64
	// The replicas' sub-streams are independent once routed, so their
	// drain phases simulate concurrently; results are folded back in
	// replica order, keeping the output deterministic at any parallelism.
	type drained struct {
		sm  engine.ServeMetrics
		err error
	}
	results := make([]drained, len(replicas))
	var wg sync.WaitGroup
	for i, r := range replicas {
		wg.Add(1)
		go func(i int, r *replica) {
			defer wg.Done()
			sm, err := r.eng.Serve(r.assigned, r.cfg.MaxBatch, discipline)
			results[i] = drained{sm: sm, err: err}
		}(i, r)
	}
	wg.Wait()
	for i, r := range replicas {
		sm, err := results[i].sm, results[i].err
		if err != nil {
			return out, fmt.Errorf("fleet: replica %s: %w", r.cfg.Name, err)
		}
		// Fold the global-queue wait back into end-to-end latency.
		// Requests and Latencies are parallel slices in completion order.
		if len(r.delays) > 0 {
			for j := range sm.Requests {
				if d := r.delays[sm.Requests[j].ID]; d > 0 {
					sm.Requests[j].QueueTime += d
					sm.Latencies[j] += d
				}
			}
			if len(sm.Latencies) > 0 {
				sm.MeanLatency = stats.Mean(sm.Latencies)
				p := stats.Percentiles(sm.Latencies, 50, 95, 99)
				sm.P50Latency, sm.P95Latency, sm.P99Latency = p[0], p[1], p[2]
			}
		}
		rm := ReplicaMetrics{
			Name:         r.cfg.Name,
			Device:       r.cfg.Device.Name,
			Model:        string(r.cfg.Spec.ID),
			Assigned:     len(r.assigned),
			ServeMetrics: sm,
		}
		for _, m := range sm.Requests {
			rm.BusyTime += m.TotalTime()
		}
		out.Replicas = append(out.Replicas, rm)
		out.Served += len(sm.Requests)
		out.DeadlinesMet += sm.DeadlinesMet
		out.DeadlinesTotal += sm.DeadlinesTotal
		out.TotalEnergy += sm.TotalEnergy
		out.PrefixLookups += sm.PrefixLookups
		out.PrefixHits += sm.PrefixHits
		out.PrefixLookupTokens += sm.PrefixLookupTokens
		out.SavedPrefillTokens += sm.SavedPrefillTokens
		if r.eng.Clock() > out.WallTime {
			out.WallTime = r.eng.Clock()
		}
		latencies = append(latencies, sm.Latencies...)
		busy = append(busy, rm.BusyTime)
	}
	if len(latencies) > 0 {
		out.MeanLatency = stats.Mean(latencies)
		p := stats.Percentiles(latencies, 50, 95, 99)
		out.P50Latency, out.P95Latency, out.P99Latency = p[0], p[1], p[2]
	}
	out.Imbalance = imbalance(busy)
	return out, nil
}

// imbalance is the population coefficient of variation.
func imbalance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mean := stats.Mean(xs)
	if mean <= 0 {
		return 0
	}
	ss := 0.0
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(xs))) / mean
}

// router owns the dispatch-time state shared across requests.
type router struct {
	replicas     []*replica
	policy       Policy
	rrNext       int
	lastDispatch float64
	// sticky maps a session ID to the replica index its turns are pinned
	// to (SessionAffinity only; re-pinned on fallback), and pinned counts
	// sessions per replica so new sessions spread instead of piling onto
	// the lowest index while queues are momentarily empty.
	sticky map[string]int
	pinned []int
}

// place finds the replica and admission time for tr: at time t if a
// routable replica has capacity, else at the earliest moment one frees
// up or warms up. ok is false when no replica can ever take the request.
func (ro *router) place(tr engine.TimedRequest, t float64) (*replica, float64, bool) {
	for {
		var candidates []int
		for i, r := range ro.replicas {
			if r.routableAt(t) && r.depth(t) < r.cfg.Capacity {
				candidates = append(candidates, i)
			}
		}
		if len(candidates) > 0 {
			return ro.replicas[ro.choose(candidates, tr, t)], t, true
		}
		// Everyone is full, cold, or dead: advance to the next time a
		// replica could accept — its earliest outstanding completion, or
		// the end of its warm-up.
		next := math.Inf(1)
		for _, r := range ro.replicas {
			switch {
			case r.cfg.FailAt > 0 && t >= r.cfg.FailAt:
				// Dead for good.
			case t < r.cfg.WarmupDelay:
				if r.cfg.FailAt <= 0 || r.cfg.WarmupDelay < r.cfg.FailAt {
					next = math.Min(next, r.cfg.WarmupDelay)
				}
			case len(r.finishes) > 0:
				free := r.finishes[0]
				if r.cfg.FailAt <= 0 || free < r.cfg.FailAt {
					next = math.Min(next, free)
				}
			}
		}
		if math.IsInf(next, 1) {
			return nil, 0, false
		}
		t = next
	}
}

// choose applies the routing policy over the candidate indices (which
// are always non-empty and sorted ascending).
func (ro *router) choose(candidates []int, tr engine.TimedRequest, t float64) int {
	switch ro.policy {
	case LeastQueue:
		return leastQueued(ro.replicas, candidates)
	case SessionAffinity:
		// A session's turns chase their prefix KV: stay on the pinned
		// replica while it can take the request. A new (or displaced)
		// session pins to the replica carrying the fewest sessions —
		// least-connections, so concurrent sessions spread even while
		// queues are momentarily empty — with queue depth breaking ties.
		// When the pinned replica is saturated, cold, or failed, the turn
		// falls back the same way and re-pins; the history is rebuilt on
		// the new replica at that turn's cold prefill.
		if tr.SessionID != "" {
			if p, ok := ro.sticky[tr.SessionID]; ok {
				for _, c := range candidates {
					if c == p {
						return p
					}
				}
				ro.pinned[p]--
			}
		}
		if tr.SessionID == "" {
			return leastQueued(ro.replicas, candidates)
		}
		if ro.sticky == nil {
			ro.sticky = make(map[string]int)
			ro.pinned = make([]int, len(ro.replicas))
		}
		best := candidates[0]
		for _, i := range candidates[1:] {
			if ro.pinned[i] < ro.pinned[best] ||
				(ro.pinned[i] == ro.pinned[best] && len(ro.replicas[i].finishes) < len(ro.replicas[best].finishes)) {
				best = i
			}
		}
		ro.sticky[tr.SessionID] = best
		ro.pinned[best]++
		return best
	case LatencyWeighted:
		// Smooth weighted round-robin (nginx-style): deterministic and
		// proportional to replica speed over any window.
		total := 0.0
		for _, i := range candidates {
			w := ro.replicas[i].speed()
			ro.replicas[i].wrrCredit += w
			total += w
		}
		best := candidates[0]
		for _, i := range candidates[1:] {
			if ro.replicas[i].wrrCredit > ro.replicas[best].wrrCredit {
				best = i
			}
		}
		ro.replicas[best].wrrCredit -= total
		return best
	case DeadlineAware:
		// Earliest estimated completion: the replica most likely to get
		// the request in under its deadline.
		best, bestFinish := candidates[0], math.Inf(1)
		for _, i := range candidates {
			r := ro.replicas[i]
			est := math.Max(r.estFreeAt, t) + r.estService(tr)
			if est < bestFinish {
				best, bestFinish = i, est
			}
		}
		return best
	default: // RoundRobin
		n := len(ro.replicas)
		for off := 0; off < n; off++ {
			i := (ro.rrNext + off) % n
			for _, c := range candidates {
				if c == i {
					ro.rrNext = i + 1
					return i
				}
			}
		}
		return candidates[0] // unreachable: candidates is non-empty
	}
}

// leastQueued picks the candidate with the fewest outstanding requests,
// breaking ties by index.
func leastQueued(replicas []*replica, candidates []int) int {
	best := candidates[0]
	for _, i := range candidates[1:] {
		if len(replicas[i].finishes) < len(replicas[best].finishes) {
			best = i
		}
	}
	return best
}
