package experiments

import (
	"fmt"

	"edgereasoning/internal/engine"
	"edgereasoning/internal/fleet"
	"edgereasoning/internal/model"
	"edgereasoning/internal/workload"
)

func init() {
	register("fleet", fleetSweep)
}

// fleetSweep extends the single-device QPS study to a heterogeneous
// fleet: one shared open-loop stream routed across mixed Orin power
// modes and mixed FP16/W4A16 replicas under every routing policy, at
// half and full fleet size. A second verify table pits deadline-aware
// routing against the round-robin baseline on tail latency and deadline
// hit rate — the fleet-level version of the paper's SLA takeaway.
func fleetSweep(opts Options) ([]Table, error) {
	size := opts.FleetReplicas
	if size <= 0 {
		size = 4
	}
	qps := opts.FleetQPS
	if qps <= 0 {
		// Saturating-but-stable load for the default 4-replica Orin mix:
		// round-robin visibly misses deadlines while deadline-aware
		// routing still wins on both the tail and the SLA, across seeds.
		qps = 2.0
	}
	devices, err := fleet.ParseDevices(opts.FleetDevices)
	if err != nil {
		return nil, err
	}
	policies := fleet.Policies()
	if opts.FleetPolicy != "" && opts.FleetPolicy != "all" {
		p, err := fleet.ParsePolicy(opts.FleetPolicy)
		if err != nil {
			return nil, err
		}
		policies = []fleet.Policy{p}
	}

	n := 240
	if opts.Quick {
		n = 120
	}
	profile := workload.InteractiveAssistant(qps, n)
	profile.DeadlineSlack = 2
	profile.DeadlineSlackMax = 10
	reqs, err := workload.Generate(profile, opts.Seed)
	if err != nil {
		return nil, err
	}

	spec := model.MustLookup(model.Qwen25_7Bit)
	run := func(replicas int, p fleet.Policy) (fleet.Metrics, error) {
		cfg := fleet.Config{
			Replicas: fleet.HeterogeneousReplicas(replicas, devices, spec),
			Policy:   p,
		}
		// reqs is already arrival-sorted, so the streaming ingress consumes
		// it directly — no per-run copy and re-sort.
		return fleet.ServeSource(cfg, engine.NewSliceSource(reqs))
	}

	sweep := Table{
		ID:    "fleet",
		Title: fmt.Sprintf("Heterogeneous fleet serving: policy × fleet size (Qwen2.5-7B-it FP16/W4, %.1f QPS, 2-10s slack)", qps),
		Columns: []string{"policy", "replicas", "served", "dropped",
			"p50_s", "p99_s", "hit_rate_pct", "energy_j", "imbalance"},
		Notes: []string{"devices cycle " + opts.FleetDevices + defaultDeviceNote(opts.FleetDevices)},
	}
	sizes := []int{size}
	if half := size / 2; half >= 1 && half != size {
		sizes = []int{half, size}
	}
	// Cache the full-size round-robin and deadline-aware runs for the
	// verify table so they are computed exactly once.
	type key struct {
		size   int
		policy fleet.Policy
	}
	cache := map[key]fleet.Metrics{}
	runCached := func(replicas int, p fleet.Policy) (fleet.Metrics, error) {
		k := key{replicas, p}
		if m, ok := cache[k]; ok {
			return m, nil
		}
		m, err := run(replicas, p)
		if err != nil {
			return fleet.Metrics{}, err
		}
		cache[k] = m
		return m, nil
	}
	for _, p := range policies {
		for _, replicas := range sizes {
			m, err := runCached(replicas, p)
			if err != nil {
				return nil, err
			}
			sweep.AddRow(p.String(), di(replicas), di(m.Served), di(m.Dropped),
				f2(m.P50Latency), f2(m.P99Latency), f1(m.HitRate()*100),
				f1(m.TotalEnergy), f2(m.Imbalance))
		}
	}

	rr, err := runCached(size, fleet.RoundRobin)
	if err != nil {
		return nil, err
	}
	dl, err := runCached(size, fleet.DeadlineAware)
	if err != nil {
		return nil, err
	}
	check := func(ok bool) string {
		if ok {
			return "pass"
		}
		return "FAIL"
	}
	verify := Table{
		ID:      "fleet-verify",
		Title:   fmt.Sprintf("Fleet verify: deadline-aware vs round-robin at %d replicas", size),
		Columns: []string{"metric", "round-robin", "deadline-aware", "check"},
		Notes:   []string{"deadline-aware must match or beat the blind baseline on both the tail and the SLA"},
	}
	verify.AddRow("p99_s", f2(rr.P99Latency), f2(dl.P99Latency), check(dl.P99Latency <= rr.P99Latency))
	verify.AddRow("hit_rate_pct", f1(rr.HitRate()*100), f1(dl.HitRate()*100), check(dl.HitRate() >= rr.HitRate()))
	verify.AddRow("dropped", di(rr.Dropped), di(dl.Dropped), check(dl.Dropped <= rr.Dropped))
	return []Table{sweep, verify}, nil
}

// defaultDeviceNote spells out the device cycle when -devices was left
// at the default.
func defaultDeviceNote(devices string) string {
	if devices != "" {
		return ""
	}
	return "(default): orin, orin-50w, orin-30w; weights alternate FP16, W4A16"
}
