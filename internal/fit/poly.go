package fit

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Poly is a fitted polynomial y = Σ Coeffs[i]·xⁱ (Coeffs[0] is the
// constant term).
type Poly struct {
	Coeffs []float64
}

// PolyFit fits a polynomial of the given degree to (x, y) by least
// squares. It requires at least degree+1 samples with distinct x values.
func PolyFit(x, y []float64, degree int) (Poly, error) {
	if degree < 0 {
		return Poly{}, errors.New("fit: negative degree")
	}
	if len(x) != len(y) {
		return Poly{}, errors.New("fit: x/y length mismatch")
	}
	if len(x) < degree+1 {
		return Poly{}, ErrSingular
	}
	design := make([][]float64, len(x))
	for i, xv := range x {
		row := make([]float64, degree+1)
		pow := 1.0
		for d := 0; d <= degree; d++ {
			row[d] = pow
			pow *= xv
		}
		design[i] = row
	}
	coeffs, err := leastSquares(design, y)
	if err != nil {
		return Poly{}, err
	}
	return Poly{Coeffs: coeffs}, nil
}

// Eval evaluates the polynomial at x (Horner's method).
func (p Poly) Eval(x float64) float64 {
	y := 0.0
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		y = y*x + p.Coeffs[i]
	}
	return y
}

// Degree returns the polynomial degree (−1 for an empty polynomial).
func (p Poly) Degree() int { return len(p.Coeffs) - 1 }

// String renders the polynomial in the paper's aI²+bI+c style.
func (p Poly) String() string {
	if len(p.Coeffs) == 0 {
		return "0"
	}
	var b strings.Builder
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		if b.Len() > 0 {
			b.WriteString(" + ")
		}
		switch i {
		case 0:
			fmt.Fprintf(&b, "%.4g", p.Coeffs[i])
		case 1:
			fmt.Fprintf(&b, "%.4g·x", p.Coeffs[i])
		default:
			fmt.Fprintf(&b, "%.4g·x^%d", p.Coeffs[i], i)
		}
	}
	return b.String()
}

// LinearFit fits y = m·x + n and returns (m, n).
func LinearFit(x, y []float64) (m, n float64, err error) {
	p, err := PolyFit(x, y, 1)
	if err != nil {
		return 0, 0, err
	}
	return p.Coeffs[1], p.Coeffs[0], nil
}

// LogLinear is a fitted y = Alpha·ln(x) + Beta model — the form the paper
// uses for power vs sequence length (Eqns 4 and 6).
type LogLinear struct {
	Alpha, Beta float64
}

// LogLinearFit fits y = α·ln(x) + β. All x must be positive.
func LogLinearFit(x, y []float64) (LogLinear, error) {
	lx := make([]float64, len(x))
	for i, xv := range x {
		if xv <= 0 {
			return LogLinear{}, errors.New("fit: log-linear requires positive x")
		}
		lx[i] = math.Log(xv)
	}
	m, n, err := LinearFit(lx, y)
	if err != nil {
		return LogLinear{}, err
	}
	return LogLinear{Alpha: m, Beta: n}, nil
}

// Eval evaluates the model at x (x must be positive for a meaningful
// result; x <= 0 returns Beta).
func (l LogLinear) Eval(x float64) float64 {
	if x <= 0 {
		return l.Beta
	}
	return l.Alpha*math.Log(x) + l.Beta
}
