// Prefix index: cross-request KV reuse in the style of vLLM's automatic
// prefix caching and SGLang's RadixAttention. Completed sequences donate
// their full blocks to a content-addressed index (chained block hashes
// over token symbols); a later request whose prompt shares a prefix
// re-acquires those blocks with fork-style refcount bumps and only
// prefills the unmatched suffix. Retained blocks are reclaimable
// capacity: when the free list runs low, the least-recently-used leaf
// entries are evicted first, so hot session histories survive while cold
// ones make room.
package kvcache

import "fmt"

// prefixSeed is the FNV-64a offset basis; block hash chains start here.
const prefixSeed uint64 = 14695981039346656037

// prefixMix folds one 64-bit token symbol into a running hash with a
// single xor-multiply-rotate step (an FNV-style mix widened to 64-bit
// lanes). Prefix matching hashes every prompt token on admission, so the
// step must be one multiply, not eight.
func prefixMix(h, sym uint64) uint64 {
	h = (h ^ sym) * 0x9e3779b97f4a7c15
	return h>>29 | h<<35
}

// PrefixMetrics counts index activity since construction.
type PrefixMetrics struct {
	// Lookups counts Acquire calls; Hits those that matched >= 1 block.
	Lookups int
	Hits    int
	// SavedTokens is the total prefill work avoided by matches.
	SavedTokens int
	// Retained is the current number of index-held blocks.
	Retained int
	// Evictions counts entries dropped under capacity pressure.
	Evictions int
}

// prefixEntry is one retained block keyed by its chained content hash.
type prefixEntry struct {
	hash   uint64
	block  int
	parent *prefixEntry
	// children counts entries hashing through this one; only leaves
	// (children == 0) are evictable, so a chain always evicts tail-first.
	children int
	// lastUse is the logical tick of the most recent match through this
	// entry; the evictable list stays sorted ascending by it.
	lastUse uint64
	// prev/next link the entry into the evictable LRU list while it is a
	// leaf (least-recent at the front).
	prev, next *prefixEntry
	inLRU      bool
}

// PrefixIndex maps chained block hashes to retained cache blocks. It is
// bound to one Cache and, like the Cache, is not safe for concurrent
// use. At most one index may be attached to a cache.
type PrefixIndex struct {
	c       *Cache
	entries map[uint64]*prefixEntry
	// lruHead/lruTail bound the evictable-leaf list (LRU at head).
	lruHead, lruTail *prefixEntry
	// tick is the logical clock stamping lastUse.
	tick uint64
	m    PrefixMetrics
	// match is the scratch chain reused across Probe/Acquire walks. The
	// memo fields identify the last walked syms slice (by backing array
	// and length) and the index mutation count it ran under, so the
	// Probe-then-Acquire admission pattern hashes the prompt once, not
	// twice. mut is bumped by every entry insert and eviction.
	match    []*prefixEntry
	memoSym0 *uint64
	memoLen  int
	memoMut  uint64
	mut      uint64
	// pool recycles evicted entry shells so steady-state retain/evict
	// churn is allocation-free; slab batch-allocates fresh shells so
	// first-time retention costs one allocation per 256 entries.
	pool []*prefixEntry
	slab []prefixEntry
}

// NewPrefixIndex attaches a prefix index to the cache. The cache starts
// tracking index-held references so CheckInvariants stays exact.
func NewPrefixIndex(c *Cache) *PrefixIndex {
	if c.indexRefs != nil {
		panic("kvcache: cache already has a prefix index attached")
	}
	// Non-nil zero-length sentinel: marks the index attached while growing
	// lazily with the watermark via Cache.indexRef.
	c.indexRefs = make([]int, 0)
	return &PrefixIndex{c: c, entries: make(map[uint64]*prefixEntry)}
}

// Metrics returns a snapshot of the index counters.
func (ix *PrefixIndex) Metrics() PrefixMetrics { return ix.m }

// walk matches syms against the index block by block, refreshing every
// matched entry's recency, and leaves the chain in ix.match. Only full
// blocks participate, and at least one token is always left unmatched so
// the engine has a suffix to prefill (real engines recompute the last
// prompt token to produce first-step logits). A repeat walk of the same
// (never-mutated) syms slice against an unmutated index — the engine's
// Probe-then-Acquire admission, and its per-event retries of a blocked
// stream head — reuses the previous result instead of re-hashing the
// whole prompt.
func (ix *PrefixIndex) walk(syms []uint64) []*prefixEntry {
	if len(syms) > 0 && ix.memoSym0 == &syms[0] && ix.memoLen == len(syms) && ix.memoMut == ix.mut {
		return ix.match
	}
	ix.match = ix.match[:0]
	bs := ix.c.cfg.BlockSize
	maxBlocks := (len(syms) - 1) / bs
	h := prefixSeed
	for k := 0; k < maxBlocks; k++ {
		for _, sym := range syms[k*bs : (k+1)*bs] {
			h = prefixMix(h, sym)
		}
		e := ix.entries[h]
		if e == nil {
			break
		}
		ix.touch(e)
		ix.match = append(ix.match, e)
	}
	if len(syms) > 0 {
		ix.memoSym0, ix.memoLen, ix.memoMut = &syms[0], len(syms), ix.mut
	}
	return ix.match
}

// Probe returns how many blocks of syms the index currently holds,
// refreshing their recency. It allocates nothing and takes no blocks.
func (ix *PrefixIndex) Probe(syms []uint64) int { return len(ix.walk(syms)) }

// Acquire creates seqID seeded with the longest indexed prefix of syms
// (fork-style: matched blocks are shared copy-on-write via refcount
// bumps) and returns the number of tokens reused. A zero return means a
// cold start; the sequence then exists with length 0 and the caller
// appends the whole prompt. The caller must not evict between a Probe
// and the Acquire that relies on it — both walk the same index state.
func (ix *PrefixIndex) Acquire(seqID string, syms []uint64) (int, error) {
	if _, ok := ix.c.seqs[seqID]; ok {
		return 0, ErrSequenceExists
	}
	ix.m.Lookups++
	chain := ix.walk(syms)
	s := ix.c.newSequence(len(chain))
	for _, e := range chain {
		ix.c.retain(e.block)
		s.blocks = append(s.blocks, e.block)
	}
	s.length = len(chain) * ix.c.cfg.BlockSize
	ix.c.seqs[seqID] = s
	if s.length > 0 {
		ix.m.Hits++
		ix.m.SavedTokens += s.length
	}
	return s.length, nil
}

// Release frees the handle's sequence while retaining every full block
// whose content is identified by promptSyms followed by outputSyms. Blocks
// past the identified (or partial-tail) region are released normally. A
// block already indexed under the same chain hash is not re-retained: the
// existing entry wins and the sequence's reference is simply dropped.
func (ix *PrefixIndex) Release(h Handle, promptSyms, outputSyms []uint64) error {
	if !ix.c.valid(h) {
		return ErrUnknownSequence
	}
	s := h.s
	bs := ix.c.cfg.BlockSize
	covered := len(promptSyms) + len(outputSyms)
	if covered > s.length {
		covered = s.length
	}
	full := covered / bs
	hh := prefixSeed
	var parent *prefixEntry
	for k := 0; k < full; k++ {
		for i := k * bs; i < (k+1)*bs; i++ {
			if i < len(promptSyms) {
				hh = prefixMix(hh, promptSyms[i])
			} else {
				hh = prefixMix(hh, outputSyms[i-len(promptSyms)])
			}
		}
		e := ix.entries[hh]
		if e == nil {
			ix.tick++
			e = ix.newEntry()
			*e = prefixEntry{hash: hh, block: s.blocks[k], parent: parent, lastUse: ix.tick}
			ix.c.retain(e.block)
			ix.c.indexRef(e.block, 1)
			ix.entries[hh] = e
			ix.mut++
			if parent != nil {
				parent.children++
				ix.lruRemove(parent) // interior entries are not evictable
			}
			ix.lruPush(e)
			ix.m.Retained++
		} else {
			ix.touch(e)
		}
		parent = e
	}
	ix.c.freeSeq(h.id, s)
	return nil
}

// EnsureFree evicts least-recently-used leaf entries until the cache has
// at least n free blocks or nothing evictable remains. Evicting an entry
// whose block is still shared with a live sequence reclaims no capacity
// immediately (the block frees when the sequence does), so the loop keeps
// going until the target is met or the index is drained.
func (ix *PrefixIndex) EnsureFree(n int) {
	for ix.c.FreeBlocks() < n {
		if !ix.evictOne() {
			return
		}
	}
}

// evictOne drops the least-recently-used leaf entry, reporting false when
// none remains.
func (ix *PrefixIndex) evictOne() bool {
	e := ix.lruHead
	if e == nil {
		return false
	}
	ix.lruRemove(e)
	delete(ix.entries, e.hash)
	ix.mut++
	ix.c.indexRef(e.block, -1)
	ix.c.release(e.block)
	ix.m.Retained--
	ix.m.Evictions++
	if p := e.parent; p != nil {
		p.children--
		if p.children == 0 {
			// The parent becomes a leaf again; re-enter the evictable list
			// at its true recency, so a cold chain keeps tearing down
			// before any recently-matched chain is touched.
			ix.lruInsert(p)
		}
	}
	ix.pool = append(ix.pool, e)
	return true
}

// newEntry returns an entry shell, recycled from the pool when possible
// and carved from the current slab otherwise.
func (ix *PrefixIndex) newEntry() *prefixEntry {
	if n := len(ix.pool); n > 0 {
		e := ix.pool[n-1]
		ix.pool[n-1] = nil
		ix.pool = ix.pool[:n-1]
		return e
	}
	if len(ix.slab) == 0 {
		ix.slab = make([]prefixEntry, 256)
	}
	e := &ix.slab[0]
	ix.slab = ix.slab[1:]
	return e
}

// touch stamps an entry's recency and, if it is evictable, moves it to
// the MRU end of the list.
func (ix *PrefixIndex) touch(e *prefixEntry) {
	ix.tick++
	e.lastUse = ix.tick
	if !e.inLRU || ix.lruTail == e {
		return
	}
	ix.lruRemove(e)
	ix.lruPush(e)
}

// lruPush appends e at the MRU end (callers guarantee e.lastUse is the
// newest tick, keeping the list sorted).
func (ix *PrefixIndex) lruPush(e *prefixEntry) {
	if e.inLRU {
		panic(fmt.Sprintf("kvcache: prefix entry for block %d already on LRU list", e.block))
	}
	e.inLRU = true
	e.prev = ix.lruTail
	e.next = nil
	if ix.lruTail != nil {
		ix.lruTail.next = e
	} else {
		ix.lruHead = e
	}
	ix.lruTail = e
}

// lruInsert places e at the position its lastUse dictates (the list is
// sorted ascending). Used when an interior entry becomes a leaf again:
// its recency predates entries touched since, so it usually lands near
// the front after a short walk from the tail.
func (ix *PrefixIndex) lruInsert(e *prefixEntry) {
	at := ix.lruTail // insert after at; nil means at the head
	for at != nil && at.lastUse > e.lastUse {
		at = at.prev
	}
	if at == ix.lruTail {
		ix.lruPush(e)
		return
	}
	if e.inLRU {
		panic(fmt.Sprintf("kvcache: prefix entry for block %d already on LRU list", e.block))
	}
	e.inLRU = true
	if at == nil {
		e.prev = nil
		e.next = ix.lruHead
		ix.lruHead.prev = e
		ix.lruHead = e
		return
	}
	e.prev = at
	e.next = at.next
	at.next.prev = e
	at.next = e
}

// lruRemove unlinks e if it is on the list.
func (ix *PrefixIndex) lruRemove(e *prefixEntry) {
	if !e.inLRU {
		return
	}
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		ix.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		ix.lruTail = e.prev
	}
	e.prev, e.next = nil, nil
	e.inLRU = false
}
