package lint

// All returns the simlint suite in the order the multichecker runs it:
// the five contract analyzers plus the reimplemented `shadow` stock
// pass. The x/tools `nilness` pass needs go/ssa and is gated until
// golang.org/x/tools can be vendored; `shadow` is reimplemented
// natively in shadow.go so the suite still carries a stock
// correctness pass.
func All() []*Analyzer {
	return []*Analyzer{HotPath, MapOrder, SeededRand, Shadow, SimClock, TraceOff}
}

// ByName resolves one analyzer, for the multichecker's filter flag.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}
