package workload

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"

	"edgereasoning/internal/engine"
	"edgereasoning/internal/stats"
)

// legacyGenerate is the frozen pre-streaming Generate implementation: it
// materializes the whole slice eagerly from the same RNG stream. The
// streaming Source must reproduce it element-for-element forever.
func legacyGenerate(p Profile, seed uint64) ([]engine.TimedRequest, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(seed, fmt.Sprintf("workload/qps%.3f/n%d", p.QPS, p.N))
	out := make([]engine.TimedRequest, p.N)
	clock := 0.0
	for i := range out {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		clock += -math.Log(u) / p.QPS
		prompt := int(rng.LogNormalMean(p.PromptMean, p.PromptSigma))
		if prompt < 8 {
			prompt = 8
		}
		output := int(rng.LogNormalMean(p.OutputMean, p.OutputSigma))
		if output < 1 {
			output = 1
		}
		tr := engine.TimedRequest{
			Request: engine.Request{
				ID:           fmt.Sprintf("w%d", i),
				PromptTokens: prompt,
				OutputTokens: output,
			},
			Arrival: clock,
		}
		if p.DeadlineSlack > 0 {
			slack := p.DeadlineSlack
			if p.DeadlineSlackMax > p.DeadlineSlack {
				slack += rng.Float64() * (p.DeadlineSlackMax - p.DeadlineSlack)
			}
			tr.Deadline = clock + slack
		}
		out[i] = tr
	}
	return out, nil
}

// legacyBursty is the frozen pre-streaming Bursty implementation:
// concatenate prefixed steady and shifted burst streams, then stable
// sort by arrival.
func legacyBursty(background, burst Profile, burstStart float64, seed uint64) ([]engine.TimedRequest, error) {
	steady, err := legacyGenerate(background, seed)
	if err != nil {
		return nil, err
	}
	spike, err := legacyGenerate(burst, seed^0x9e3779b97f4a7c15)
	if err != nil {
		return nil, err
	}
	out := make([]engine.TimedRequest, 0, len(steady)+len(spike))
	for _, tr := range steady {
		tr.ID = "s" + tr.ID
		out = append(out, tr)
	}
	for _, tr := range spike {
		tr.ID = "b" + tr.ID
		tr.Arrival += burstStart
		if tr.Deadline > 0 {
			tr.Deadline += burstStart
		}
		out = append(out, tr)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Arrival < out[j].Arrival })
	return out, nil
}

var streamSeeds = []uint64{1, 2, 3, 7, 42, 1337, 99991, 1 << 40}

// TestSourceMatchesLegacyGenerate pins stream-vs-slice equivalence: the
// collected Source output and the collector Generate are both
// element-identical to the frozen legacy implementation across seeds and
// deadline shapes.
func TestSourceMatchesLegacyGenerate(t *testing.T) {
	profiles := map[string]Profile{
		"plain":      InteractiveAssistant(4, 300),
		"deadline":   {QPS: 2, N: 250, PromptMean: 120, PromptSigma: 0.3, OutputMean: 60, OutputSigma: 0.5, DeadlineSlack: 4},
		"mixedslack": {QPS: 8, N: 400, PromptMean: 200, PromptSigma: 0.4, OutputMean: 900, OutputSigma: 0.6, DeadlineSlack: 2, DeadlineSlackMax: 9},
	}
	for name, p := range profiles {
		for _, seed := range streamSeeds {
			want, err := legacyGenerate(p, seed)
			if err != nil {
				t.Fatalf("%s/seed %d: legacy: %v", name, seed, err)
			}
			src, err := NewSource(p, seed)
			if err != nil {
				t.Fatalf("%s/seed %d: NewSource: %v", name, seed, err)
			}
			got := engine.Collect(src)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s/seed %d: streamed output diverges from legacy slice", name, seed)
			}
			viaGen, err := Generate(p, seed)
			if err != nil {
				t.Fatalf("%s/seed %d: Generate: %v", name, seed, err)
			}
			if !reflect.DeepEqual(viaGen, want) {
				t.Fatalf("%s/seed %d: collector Generate diverges from legacy slice", name, seed)
			}
		}
	}
}

// TestBurstySourceMatchesLegacy pins the lazy two-way merge against the
// frozen concatenate-and-stable-sort implementation.
func TestBurstySourceMatchesLegacy(t *testing.T) {
	background := InteractiveAssistant(0.5, 150)
	background.DeadlineSlack, background.DeadlineSlackMax = 3, 8
	burst := InteractiveAssistant(12, 200)
	burst.DeadlineSlack, burst.DeadlineSlackMax = 3, 8
	for _, seed := range streamSeeds {
		want, err := legacyBursty(background, burst, 30, seed)
		if err != nil {
			t.Fatalf("seed %d: legacy: %v", seed, err)
		}
		src, err := NewBurstySource(background, burst, 30, seed)
		if err != nil {
			t.Fatalf("seed %d: NewBurstySource: %v", seed, err)
		}
		got := engine.Collect(src)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: streamed bursty output diverges from legacy slice", seed)
		}
		viaBursty, err := Bursty(background, burst, 30, seed)
		if err != nil {
			t.Fatalf("seed %d: Bursty: %v", seed, err)
		}
		if !reflect.DeepEqual(viaBursty, want) {
			t.Fatalf("seed %d: collector Bursty diverges from legacy slice", seed)
		}
	}
}
