// Package traceoff is the fixture for the traceoff analyzer: calls on
// nil-when-off tracers must be dominated by a nil check.
package traceoff

import "traceoff/telemetry"

type engine struct{ tra telemetry.Tracer }

func unguarded(tra telemetry.Tracer) {
	tra.Record(telemetry.Span{}) // want "tra.Record on a nil-when-off tracer without a nil guard"
}

func guarded(tra telemetry.Tracer) {
	if tra != nil {
		tra.Record(telemetry.Span{})
	}
}

func guardedChain(tra telemetry.Tracer, on bool) {
	if tra != nil && on {
		tra.Record(telemetry.Span{})
	}
}

func earlyReturn(tra telemetry.Tracer) {
	if tra == nil {
		return
	}
	tra.Record(telemetry.Span{})
}

func elseBranch(tra telemetry.Tracer, n int) int {
	if tra == nil {
		n++
	} else {
		tra.Record(telemetry.Span{})
	}
	return n
}

func guardPersistsIntoLoop(tra telemetry.Tracer, n int) {
	if tra == nil {
		return
	}
	for i := 0; i < n; i++ {
		tra.Record(telemetry.Span{})
	}
}

func fieldReceiver(e *engine) {
	e.tra.Record(telemetry.Span{}) // want "e.tra.Record on a nil-when-off tracer without a nil guard"
	if e.tra != nil {
		e.tra.Record(telemetry.Span{})
	}
}

// A closure may outlive the guard it was created under, so its body
// starts a fresh guard scope.
func closureEscapes(tra telemetry.Tracer) func() {
	if tra != nil {
		return func() {
			tra.Record(telemetry.Span{}) // want "tra.Record on a nil-when-off tracer without a nil guard"
		}
	}
	return nil
}

func closureWithOwnGuard(tra telemetry.Tracer) func() {
	return func() {
		if tra != nil {
			tra.Record(telemetry.Span{})
		}
	}
}

// wrapper is the fleet-style concrete dispatch tracer: nil when tracing
// is off, so callers guard.
//
//edgereasoning:tracer
type wrapper struct{ tr *telemetry.Track }

// hook records through the concrete track; the receiver is guarded by
// contract (the caller checked), so calls on w inside pass.
func (w *wrapper) hook(t float64) {
	w.emit(t)
}

func (w *wrapper) emit(t float64) {
	_ = t
}

func callsWrapper(w *wrapper) {
	w.hook(1) // want "w.hook on a nil-when-off tracer without a nil guard"
	if w != nil {
		w.hook(2)
	}
}
