package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
)

// A HotPathSite is one //edgereasoning:hotpath annotation found in the
// tree: the annotated function, the benchmark target its bench=
// argument names ("" when the annotation carries none), and where it
// lives. cmd/benchcheck cross-references these against the gated
// targets in BENCH_serve.json, so a hot-path contract never exists only
// statically — without a benchmark behind it, the allocs/op number it
// protects is unmeasured.
type HotPathSite struct {
	Func  string // function or method name as written
	Bench string // bench=... argument, "" if absent
	Pos   token.Position
}

// ScanHotPaths walks the Go source under root (skipping test files,
// testdata, and hidden directories) and returns every hotpath-annotated
// function. It only parses — no type checking — so callers like
// cmd/benchcheck stay fast and dependency-light.
func ScanHotPaths(root string) ([]HotPathSite, error) {
	fset := token.NewFileSet()
	var sites []HotPathSite
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if dir, ok := FuncDirective(fd, "hotpath"); ok {
				sites = append(sites, HotPathSite{
					Func:  fd.Name.Name,
					Bench: dir.Arg("bench"),
					Pos:   fset.Position(fd.Pos()),
				})
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sites, nil
}
