// Package telemetry is the simulator's observability substrate: bounded
// per-track span recording and sampled time-series, driven entirely off
// the simulated event clock, with Chrome trace-event (Perfetto) and
// Prometheus text-format exporters. The layer is zero-overhead when off:
// every producer call site guards on a nil Tracer, so an untraced run
// executes byte-identically to a build without the package.
//
// The track model mirrors the serving stack: one track per replica
// engine (its lanes are the engine's batch-arena slots, so sibling spans
// on a lane never overlap), one ingress track for shared-queue waits,
// and one faults track for crash/stall/throttle windows and aborted
// attempts. Tracks are single-writer — each replica's drain goroutine
// records only into its own track — so concurrent drains need no
// per-record locking; the shared registry is only touched at
// registration time, under a mutex.
package telemetry

// Span kinds. A request's life renders as one enclosing KindRequest span
// per attempt that reached an engine, with phase children inside it, plus
// ingress/fault spans on the shared tracks.
const (
	// KindRequest encloses one served attempt on a replica track:
	// engine admission to completion. Wait carries the engine-local
	// ready-queue wait that precedes the span.
	KindRequest = "request"
	// KindQueue is a shared-ingress wait: arrival (or retry re-admission)
	// to dispatch.
	KindQueue = "queue"
	// KindRetryWait is the backoff window between a crash abort and the
	// request's re-admission to the ingress.
	KindRetryWait = "retry-wait"
	// KindAborted is a crash-destroyed attempt: dispatch to the crash
	// instant. Lost carries the estimated executed-and-thrown-away
	// service seconds.
	KindAborted = "aborted"
	// KindRestore is a host-tier promotion charged ahead of prefill.
	KindRestore = "restore"
	// KindPrefill is the prompt prefill (Tokens prefilled, Cached served
	// from the prefix cache).
	KindPrefill = "prefill"
	// KindDecode is one decode-chunk segment (Tokens generated); a
	// request's segments sum exactly to its DecodeTime, and the gaps
	// between them are batchmate interference.
	KindDecode = "decode"
	// KindStall is a no-progress fault window as experienced by one
	// sequence (on replica tracks) or as scheduled (on the faults track).
	KindStall = "stall"
	// KindThrottle is a scheduled thermal-throttle window on the faults
	// track (Factor is the slowdown).
	KindThrottle = "throttle"
	// KindCrash is a zero-duration crash instant on the faults track.
	KindCrash = "crash"
)

// Span is one sim-time interval (or instant, when End == Start) on a
// track lane. It is a plain value — recording one is a copy into a
// preallocated ring, no allocation. Zero-valued attribute fields are
// omitted at export.
type Span struct {
	ID   string // request ID; "" for scheduled fault windows
	Kind string // one of the Kind constants
	// Lane is the sub-track: the engine arena slot on replica tracks, an
	// allocator-assigned lane on shared tracks. Spans on one lane of one
	// track never overlap.
	Lane  int
	Start float64 // simulated seconds
	End   float64
	// Attributes.
	Session string  // session ID, when the request carries one
	Cause   string  // fault attribution: replica name, "throttle", ...
	Attempt int     // retry ordinal (0 = first attempt)
	Tokens  int     // tokens moved by this span (prefill/decode/request)
	Cached  int     // prompt tokens served from the prefix cache
	Wait    float64 // engine-local ready-queue wait preceding a request span
	Lost    float64 // executed-and-lost service seconds on an aborted span
	Factor  float64 // throttle slowdown factor on fault windows
	// Flow links a crash abort to its retry across tracks: the aborted
	// span opens the flow (FlowStart) and the retry's spans close it.
	Flow      uint64
	FlowStart bool
}

// Dur is the span's duration in simulated seconds.
func (s Span) Dur() float64 { return s.End - s.Start }

// LaneAllocator assigns non-overlapping lanes to intervals greedily:
// each interval takes the first lane whose last-placed end is at or
// before the interval's start, opening a new lane otherwise. Every
// placement requires lastEnd <= start <= end, so spans within one lane
// can never overlap regardless of record order; recording in roughly
// ascending start order keeps the lane count near the true maximum
// concurrency.
type LaneAllocator struct {
	ends []float64
}

// Lane places [start, end] and returns its lane.
func (a *LaneAllocator) Lane(start, end float64) int {
	for i, e := range a.ends {
		if e <= start {
			a.ends[i] = end
			return i
		}
	}
	a.ends = append(a.ends, end)
	return len(a.ends) - 1
}
