package fleet

import (
	"fmt"
	"math"
	"testing"

	"edgereasoning/internal/engine"
	"edgereasoning/internal/faults"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/workload"
)

// crashSchedule is a one-event helper: replica r crashes at t and
// restarts after d seconds (permanent when d == 0).
func crashSchedule(r int, t, d float64) *faults.Schedule {
	return &faults.Schedule{Events: []faults.Event{{Replica: r, Kind: faults.Crash, At: t, Restart: d}}}
}

func TestRetryPolicyRequeueSemantics(t *testing.T) {
	mk := func(p RetryPolicy) (*chaos, *Metrics) {
		out := &Metrics{}
		var delays map[string]float64
		return &chaos{retry: p.withDefaults(), retryOn: true, delays: &delays, out: out}, out
	}

	// Backoff doubles per abort; MaxAttempts bounds total dispatches.
	cx, out := mk(RetryPolicy{MaxAttempts: 3, Backoff: 0.5})
	tr := timed("r1", 0, 64, 40, 0)
	cx.requeue(tr, 10) // first abort: attempt 2 allowed at 10.5
	cx.requeue(tr, 20) // second abort: attempt 3 allowed at 21
	if out.Retried != 2 || out.AbortedDropped != 0 {
		t.Fatalf("retried %d abortedDropped %d, want 2/0", out.Retried, out.AbortedDropped)
	}
	if got := cx.pending[0].at; got != 10.5 {
		t.Errorf("first re-admission at %v, want 10.5", got)
	}
	if got := cx.pending[1].at; got != 21 {
		t.Errorf("second re-admission at %v, want 21 (backoff doubled)", got)
	}
	cx.requeue(tr, 30) // third abort: attempts exhausted
	if out.Retried != 2 || out.AbortedDropped != 1 || out.Dropped != 1 {
		t.Errorf("after exhaustion: retried %d abortedDropped %d dropped %d, want 2/1/1",
			out.Retried, out.AbortedDropped, out.Dropped)
	}

	// Hedge: the first re-admission is immediate, later ones back off.
	cx, _ = mk(RetryPolicy{Hedge: true})
	cx.requeue(tr, 10)
	if got := cx.pending[0].at; got != 10 {
		t.Errorf("hedged re-admission at %v, want 10 (no backoff)", got)
	}
	cx.requeue(tr, 20)
	if got := cx.pending[1].at; got != 21 {
		t.Errorf("post-hedge re-admission at %v, want 21 (default 0.5 doubled once)", got)
	}

	// Deadline budget: a re-admission at or past the deadline is dropped.
	cx, out = mk(RetryPolicy{Backoff: 2})
	dl := timed("d1", 0, 64, 40, 11.9)
	cx.requeue(dl, 10) // re-admit at 12 >= deadline 11.9
	if out.Retried != 0 || out.AbortedDropped != 1 {
		t.Errorf("deadline-budget abort: retried %d abortedDropped %d, want 0/1", out.Retried, out.AbortedDropped)
	}
	if out.DeadlinesTotal != 1 {
		t.Errorf("dropped deadline-bearing abort must count toward DeadlinesTotal, got %d", out.DeadlinesTotal)
	}

	// Retry disabled: every abort drops.
	cx, out = mk(RetryPolicy{})
	cx.retryOn = false
	cx.requeue(tr, 5)
	if out.Retried != 0 || out.AbortedDropped != 1 {
		t.Errorf("no-retry abort: retried %d abortedDropped %d, want 0/1", out.Retried, out.AbortedDropped)
	}
}

func TestHealthStateBreakerLifecycle(t *testing.T) {
	h := &healthState{cfg: HealthConfig{FailureThreshold: 2, ProbeAfter: 5}.withDefaults()}

	// Below threshold: one crash does not open.
	if h.strike(10) {
		t.Fatal("first strike opened a threshold-2 breaker")
	}
	if blocked, _ := h.blockedAt(11); blocked {
		t.Fatal("closed breaker must not block")
	}
	// Second consecutive crash opens until restart + ProbeAfter.
	if !h.strike(20) {
		t.Fatal("second strike must open the breaker")
	}
	if blocked, until := h.blockedAt(21); !blocked || until != 25 {
		t.Fatalf("open breaker blockedAt(21) = %v until %v, want true/25", blocked, until)
	}
	// Half-open: one probe admitted; others wait on its estimated finish.
	if blocked, _ := h.blockedAt(25); blocked {
		t.Fatal("half-open breaker must admit the probe")
	}
	h.noteTake("p1", 25, 28)
	if blocked, until := h.blockedAt(26); !blocked || until != 28 {
		t.Fatalf("probing breaker blockedAt(26) = %v until %v, want true/28", blocked, until)
	}
	// A crash during the probe re-opens from the new restart.
	h.strike(30)
	if blocked, until := h.blockedAt(31); !blocked || until != 35 {
		t.Fatalf("re-opened breaker blockedAt(31) = %v until %v, want true/35", blocked, until)
	}
	// Probe completes uneventfully: settle closes and resets the count.
	h.noteTake("p2", 35, 37)
	h.settle(37)
	if h.open || h.fails != 0 {
		t.Fatalf("settled breaker open=%v fails=%d, want closed/0", h.open, h.fails)
	}
	// The count restarts: one new crash stays below threshold again.
	if h.strike(40) {
		t.Fatal("strike after reset opened a threshold-2 breaker")
	}
}

// TestCrashAbortsInFlightWork runs a crash with no retry policy: the
// aborted suffix is dropped, conservation holds, and nothing the router
// dispatched is silently stranded.
func TestCrashAbortsInFlightWork(t *testing.T) {
	cfg := homogeneousFleet(2, LeastQueue)
	cfg.Faults = crashSchedule(0, 1, 5)
	reqs := burst(20, 0, 0) // all arrive at t=0, queues deep on both replicas
	m, err := Serve(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Crashes != 1 {
		t.Fatalf("crashes %d, want 1", m.Crashes)
	}
	if m.Aborted == 0 {
		t.Fatal("a t=1 crash under a t=0 burst must abort in-flight work")
	}
	if m.Served+m.Dropped != m.Offered || m.Offered != len(reqs) {
		t.Fatalf("conservation: served %d + dropped %d != offered %d", m.Served, m.Dropped, m.Offered)
	}
	if m.AbortedDropped != m.Aborted || m.Retried != 0 {
		t.Errorf("no-retry aborts: abortedDropped %d retried %d, want %d/0", m.AbortedDropped, m.Retried, m.Aborted)
	}
	if m.LostWorkSeconds <= 0 {
		t.Error("aborting started work must account lost seconds")
	}
	assigned := 0
	for _, rm := range m.Replicas {
		assigned += rm.Assigned
	}
	if assigned != m.Served {
		t.Errorf("assigned %d != served %d: aborts must leave the drained sub-streams", assigned, m.Served)
	}
}

// TestRetryRecoversCrashedWork is the recovery half: with a retry policy
// the same crash loses nothing — every abort re-enters the ingress and
// completes on the surviving or restarted replica.
func TestRetryRecoversCrashedWork(t *testing.T) {
	cfg := homogeneousFleet(2, LeastQueue)
	cfg.Faults = crashSchedule(0, 1, 5)
	cfg.Retry = &RetryPolicy{}
	reqs := burst(20, 0, 0)
	// A second wave after the t=6 restart: the healthy replica is still
	// digesting the retried burst, so the restarted one takes new work.
	for i := 0; i < 6; i++ {
		reqs = append(reqs, timed(fmt.Sprintf("w%d", i), 7+0.1*float64(i), 64, 40, 0))
	}
	m, err := Serve(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Aborted == 0 || m.Retried != m.Aborted {
		t.Fatalf("aborted %d retried %d, want every abort re-admitted", m.Aborted, m.Retried)
	}
	if m.Served != len(reqs) || m.Dropped != 0 {
		t.Fatalf("served %d dropped %d of %d, want full recovery (no deadlines, capacity to spare)",
			m.Served, m.Dropped, len(reqs))
	}
	// The crashed replica's restart lands a cache wipe on its next take.
	if m.Replicas[0].Assigned == 0 {
		t.Error("restarted replica took no post-crash work")
	}
}

// TestHealthAwareRoutingAvoidsStalledReplica pins stall avoidance: the
// health-aware router steers every arrival inside the stall window away
// from the frozen replica, while the blind router keeps feeding it.
func TestHealthAwareRoutingAvoidsStalledReplica(t *testing.T) {
	stall := &faults.Schedule{Events: []faults.Event{{Replica: 0, Kind: faults.Stall, At: 0, Duration: 100}}}
	run := func(health *HealthConfig) Metrics {
		cfg := homogeneousFleet(2, LeastQueue)
		cfg.Faults = stall
		cfg.Health = health
		m, err := Serve(cfg, burst(8, 0.2, 0))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	aware := run(&HealthConfig{})
	if aware.Replicas[0].Assigned != 0 {
		t.Errorf("health-aware router sent %d requests into the stall window", aware.Replicas[0].Assigned)
	}
	if aware.Served != 8 {
		t.Errorf("aware fleet served %d of 8", aware.Served)
	}
	blind := run(nil)
	if blind.Replicas[0].Assigned == 0 {
		t.Error("blind router should keep dispatching into the stall")
	}
	// The blind fleet pays the freeze physically at drain time.
	if blind.P99Latency <= aware.P99Latency {
		t.Errorf("blind P99 %.3f <= aware %.3f: the stall must cost the blind fleet latency",
			blind.P99Latency, aware.P99Latency)
	}
}

// TestCircuitBreakerGatesRestartedReplica runs the breaker end to end:
// after a crash the restarted replica takes no traffic until its
// half-open probe window, and the open is surfaced in the metrics.
func TestCircuitBreakerGatesRestartedReplica(t *testing.T) {
	cfg := homogeneousFleet(2, LeastQueue)
	cfg.Faults = crashSchedule(0, 1, 2) // back up at t=3
	cfg.Retry = &RetryPolicy{}
	cfg.Health = &HealthConfig{FailureThreshold: 1, ProbeAfter: 4} // probe from t=7
	reqs := burst(24, 0.5, 0)                                      // arrivals 0..11.5 straddle the breaker window
	m, err := Serve(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.BreakerOpens != 1 {
		t.Fatalf("breaker opens %d, want 1", m.BreakerOpens)
	}
	if m.Served+m.Dropped != m.Offered {
		t.Fatalf("conservation: served %d + dropped %d != offered %d", m.Served, m.Dropped, m.Offered)
	}
	if m.Served != len(reqs) {
		t.Errorf("served %d of %d, want all (the healthy replica covers the open window)", m.Served, len(reqs))
	}
}

// TestCrashRetryRecoverProperties is the 8-seed crash -> retry ->
// recover property gate (run under -race in CI): for generated fault
// schedules, conservation must hold exactly on both the no-recovery and
// the recovery leg, fault accounting must reconcile, and recovery must
// not serve less than abandonment in aggregate.
func TestCrashRetryRecoverProperties(t *testing.T) {
	type agg struct{ served, aborted, retried, crashes int }
	var on, off agg
	for seed := uint64(1); seed <= 8; seed++ {
		sched, err := faults.Generate(faults.GenConfig{
			Replicas: 3, Horizon: 30,
			CrashRate: 1, RestartDelay: 5,
			StallRate: 1, StallDuration: 2,
			ThrottleRate: 1, ThrottleDuration: 5, ThrottleFactor: 2,
		}, seed)
		if err != nil {
			t.Fatal(err)
		}
		profile := workload.InteractiveAssistant(6, 150)
		profile.DeadlineSlack = 3
		profile.DeadlineSlackMax = 9
		reqs, err := workload.Generate(profile, seed)
		if err != nil {
			t.Fatal(err)
		}
		run := func(recover bool) Metrics {
			cfg := homogeneousFleet(3, DeadlineAware)
			cfg.Faults = &sched
			if recover {
				cfg.Retry = &RetryPolicy{}
				cfg.Health = &HealthConfig{}
			}
			m, err := Serve(cfg, reqs)
			if err != nil {
				t.Fatalf("seed %d recover=%v: %v", seed, recover, err)
			}
			if m.Offered != len(reqs) {
				t.Fatalf("seed %d recover=%v: offered %d of %d — stream truncated", seed, recover, m.Offered, len(reqs))
			}
			if m.Served+m.Dropped != m.Offered {
				t.Fatalf("seed %d recover=%v: served %d + dropped %d != offered %d — work leaked",
					seed, recover, m.Served, m.Dropped, m.Offered)
			}
			if m.Shed+m.AbortedDropped > m.Dropped {
				t.Fatalf("seed %d recover=%v: shed %d + abortedDropped %d exceed dropped %d",
					seed, recover, m.Shed, m.AbortedDropped, m.Dropped)
			}
			if m.Retried+m.AbortedDropped < m.Aborted {
				t.Fatalf("seed %d recover=%v: aborted %d but only %d retried + %d dropped — aborts leaked",
					seed, recover, m.Aborted, m.Retried, m.AbortedDropped)
			}
			crashEvents := 0
			for _, ev := range sched.Events {
				if ev.Kind == faults.Crash {
					crashEvents++
				}
			}
			if m.Crashes != crashEvents {
				t.Fatalf("seed %d recover=%v: processed %d crashes of %d scheduled", seed, recover, m.Crashes, crashEvents)
			}
			return m
		}
		b, r := run(false), run(true)
		if b.Retried != 0 {
			t.Fatalf("seed %d: no-recovery leg retried %d requests", seed, b.Retried)
		}
		off.served += b.Served
		on.served += r.Served
		on.aborted += r.Aborted
		on.retried += r.Retried
		on.crashes += r.Crashes
	}
	if on.crashes == 0 || on.aborted == 0 {
		t.Fatalf("degenerate run: %d crashes, %d aborts across 8 seeds", on.crashes, on.aborted)
	}
	if on.retried == 0 {
		t.Fatal("recovery legs never retried across 8 seeds")
	}
	if on.served < off.served {
		t.Fatalf("recovery served %d < abandonment %d in aggregate", on.served, off.served)
	}
}

// TestSessionAffinityRePinsBySurvivingWarmthAfterCrash covers satellite
// recovery routing: when a session's pinned replica crashes, its sticky
// pin is purged immediately (no stale-pin leak), and the re-pin consults
// what survived the wipe — with persistent host DRAM the session returns
// to its old replica for a host-tier restore; after a full wipe the
// replica is as cold as any other.
func TestSessionAffinityRePinsBySurvivingWarmthAfterCrash(t *testing.T) {
	mk := func(name string) *replica {
		r, err := newReplica(ReplicaConfig{
			Name: name, Spec: smallSpec(), Device: hw.JetsonAGXOrin64GB(),
		}.withDefaults(0), tieredOpts())
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	crashed, other := mk("crashed"), mk("other")
	histA := sessHist(1<<40, 2048)
	histB := sessHist(1<<41, 2048)
	histC := sessHist(1<<42, 2048)
	// Session A's history lands on "crashed", then pressure from B and C
	// demotes it entirely to the host tier — the crash-survivable state.
	for i, hist := range [][]uint64{histA, histB, histC} {
		turn := sessTurn(fmt.Sprintf("w%d", i), fmt.Sprintf("s%d", i), float64(i)*1000, hist, 512, 256)
		if _, err := crashed.eng.Serve([]engine.TimedRequest{turn}, 4, engine.FCFS); err != nil {
			t.Fatal(err)
		}
	}
	turn := sessTurn("a1", "s0", 5000, histA, 512+256+128, 64)
	if dev, host := crashed.eng.PeekPrefix(turn.PromptSyms); dev != 0 || host == 0 {
		t.Fatalf("setup: peek = (%d, %d), want (0, >0) — history fully demoted", dev, host)
	}

	ro := &router{replicas: []*replica{crashed, other}, policy: SessionAffinity, tiered: true}
	if got := ro.choose([]int{0, 1}, turn, 5000); got != 0 {
		t.Fatalf("pinned to %d, want 0 (host-warm)", got)
	}

	// The pinned replica crashes mid-session with host DRAM persistent.
	var out Metrics
	var delays map[string]float64
	cx := &chaos{ro: ro, delays: &delays, out: &out}
	cx.crash(chaosEvent{at: 5100, restart: 5105, replica: 0})
	crashed.eng.CrashResetPrefix(true)

	if _, ok := ro.sticky["s0"]; ok {
		t.Fatal("crash must purge the session's sticky pin")
	}
	if ro.pinned[0] != 0 {
		t.Fatalf("stale pin count %d on the crashed replica", ro.pinned[0])
	}
	// Re-pin after the restart: the surviving host tier beats cold.
	turn2 := sessTurn("a2", "s0", 5200, histA, 512+256+128+64, 32)
	if w := ro.warmth(0, turn2); w != 1 {
		t.Fatalf("post-crash warmth %d, want 1 (host-resident survivor)", w)
	}
	if got := ro.choose([]int{0, 1}, turn2, 5200); got != 0 {
		t.Fatalf("re-pinned to %d, want 0 (host-warm survivor)", got)
	}
	if ro.pinned[0] != 1 || len(ro.sticky) != 1 {
		t.Fatalf("re-pin bookkeeping: pinned %v sticky %d entries", ro.pinned, len(ro.sticky))
	}

	// Without persistent DRAM the wipe leaves nothing to return to.
	crashed.eng.CrashResetPrefix(false)
	if w := ro.warmth(0, turn2); w != 0 {
		t.Fatalf("warmth %d after full wipe, want 0 (cold)", w)
	}
}

// TestCrashTimelineAvailability pins availAt across crash downtime: the
// router's wait planner must see through a restart window and never
// offer a permanently-dead replica.
func TestCrashTimelineAvailability(t *testing.T) {
	r := &replica{cfg: ReplicaConfig{}.withDefaults(0)}
	r.tl = &timeline{
		crashes: []crashPoint{{at: 10, restart: 15}, {at: 20, restart: math.Inf(1)}},
		deadAt:  20,
	}
	if at, never := r.availAt(5); never || at != 5 {
		t.Errorf("availAt(5) = %v/%v, want 5/false", at, never)
	}
	if at, never := r.availAt(12); never || at != 15 {
		t.Errorf("availAt(12) = %v/%v, want 15/false (restart)", at, never)
	}
	if _, never := r.availAt(20); !never {
		t.Error("availAt at the permanent crash must report never")
	}
	if r.routableAt(12) {
		t.Error("down replica must not be routable")
	}
	if !r.routableAt(16) {
		t.Error("restarted replica must be routable between crashes")
	}
	if r.liveAt(25) {
		t.Error("permanently crashed replica must not count live")
	}
	if !r.liveAt(12) {
		t.Error("replica awaiting restart must still count live")
	}
}

// TestThrottleAwareFinishEstimates pins the router's thermal-state
// integration: finishAfter runs work Factor× slower inside throttle
// windows and at full speed outside, compounding overlaps like the
// engine's drain-time stretch — and estFinishFor only reads it under
// health-aware routing, so a blind fleet's estimates are untouched.
func TestThrottleAwareFinishEstimates(t *testing.T) {
	tl := &timeline{throttles: []engine.ThrottleWindow{{From: 10, To: 20, Factor: 2}}}
	cases := []struct {
		start, svc, want float64
	}{
		{0, 5, 5},   // entirely before the window: full speed
		{0, 12, 14}, // 10 work to the window edge, 2 more at 2x
		{12, 4, 20}, // exactly fills the remaining window at 2x
		{12, 6, 22}, // 4 work drains the window, 2 run free after it
		{25, 3, 28}, // entirely after the window: full speed
		{10, 0, 10}, // zero work is free
	}
	for _, c := range cases {
		if got := tl.finishAfter(c.start, c.svc); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("finishAfter(%v, %v) = %v, want %v", c.start, c.svc, got, c.want)
		}
	}
	over := &timeline{throttles: []engine.ThrottleWindow{
		{From: 0, To: 10, Factor: 2}, {From: 5, To: 10, Factor: 2},
	}}
	if got := over.throttleAt(6); got != 4 {
		t.Errorf("overlapping windows must compound: throttleAt(6) = %v, want 4", got)
	}
	if got := over.finishAfter(5, 1); math.Abs(got-9) > 1e-9 {
		t.Errorf("finishAfter(5, 1) under compounded 4x = %v, want 9", got)
	}

	r := &replica{cfg: ReplicaConfig{}.withDefaults(0), decodePerTok: 1, tl: tl}
	tr := engine.TimedRequest{Request: engine.Request{OutputTokens: 12}}
	if got := r.estFinishFor(tr, 0); got != 12 {
		t.Errorf("blind estFinishFor = %v, want unstretched 12", got)
	}
	r.hs = &healthState{cfg: HealthConfig{}.withDefaults()}
	if got := r.estFinishFor(tr, 0); math.Abs(got-14) > 1e-9 {
		t.Errorf("health-aware estFinishFor = %v, want throttle-integrated 14", got)
	}
}
