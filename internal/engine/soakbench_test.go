// The soak benchmark lives in the external test package: it streams an
// internal/workload source, and workload imports engine, so an
// in-package file would be an import cycle.
package engine_test

import (
	"runtime"
	"testing"

	"edgereasoning/internal/engine"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/model"
	"edgereasoning/internal/workload"
)

// BenchmarkSoakServe is the million-request soak, tracked in
// BENCH_serve.json: one fully streamed open-loop run per op — the
// request stream is synthesized lazily by workload.Source and never
// materialized, so live memory stays O(active batch) plus the retained
// latency samples. Reports simulation throughput in sim-events/s
// (prefills plus decode chunks, the clock-advancing units of work) and
// the post-GC live heap with the run's metrics still referenced. CI
// gates allocs/op via scripts/bench.sh + cmd/benchcheck; the custom
// metrics are informational.
func BenchmarkSoakServe(b *testing.B) {
	const requests = 1_000_000
	spec := model.MustLookup(model.Qwen25_1_5Bit)
	// 0.8 QPS sits below the single-engine saturation knee (~1.1), so
	// the soak measures steady-state streaming, not queue growth.
	profile := workload.InteractiveAssistant(0.8, requests)
	var last engine.ServeMetrics
	events := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, err := workload.NewSource(profile, 7)
		if err != nil {
			b.Fatal(err)
		}
		eng, err := engine.New(engine.Config{Spec: spec, Device: hw.JetsonAGXOrin64GB()})
		if err != nil {
			b.Fatal(err)
		}
		m, err := eng.ServeSource(src, 8, engine.FCFS, engine.ServeOpts{LeanMetrics: true})
		if err != nil {
			b.Fatal(err)
		}
		if m.Served != requests {
			b.Fatalf("served %d of %d requests", m.Served, requests)
		}
		events += m.Events
		last = m
	}
	b.StopTimer()
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "sim-events/s")
	// Live heap with one run's results still held: the O(1)-workload
	// claim in numbers (retained latency samples dominate).
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(ms.HeapAlloc)/(1<<20), "live-heap-MB")
	if last.Served == 0 {
		b.Fatal("no requests served")
	}
}
