// Package core implements the paper's primary contribution: analytical
// performance models for LLM inference on edge GPUs, the pipelines that
// fit them to measurements (Eqns 1–6, Tables IV–VI, VIII, XX–XXIII), and
// the deployment planner that inverts them — mapping a latency budget to a
// maximum decodable token count and an optimal {model, token-control,
// scaling} recipe (the "Optimal Recipe @ 20s?" question of Fig 1).
package core

import (
	"fmt"
	"math"

	"edgereasoning/internal/fit"
	"edgereasoning/internal/gpusim"
	"edgereasoning/internal/model"
	"edgereasoning/internal/stats"
)

// PrefillModel is Eqn 1: L_prefill(I) = a·I_pad² + b·I_pad + c, with
// I_pad the input length rounded up to the tensor-core tile.
type PrefillModel struct {
	A, B, C float64
	Tile    int // padding granularity (128 on Orin)
}

// Pad rounds an input length up to the model's tile.
func (p PrefillModel) Pad(i int) float64 {
	if i <= 0 {
		return 0
	}
	t := p.Tile
	if t <= 1 {
		return float64(i)
	}
	return float64((i + t - 1) / t * t)
}

// Predict returns the modeled prefill latency in seconds.
func (p PrefillModel) Predict(i int) float64 {
	ip := p.Pad(i)
	return p.A*ip*ip + p.B*ip + p.C
}

// DecodeModel is Eqn 2: L_decode(I, O) = n·O + m·(I·O + O(O−1)/2),
// derived from a linear time-between-tokens TBT_i = m·I_i + n.
type DecodeModel struct {
	M, N float64
}

// TBT returns the modeled time between tokens at a context length.
func (d DecodeModel) TBT(ctx int) float64 { return d.M*float64(ctx) + d.N }

// Predict returns the modeled decode latency for O output tokens starting
// from input length I.
func (d DecodeModel) Predict(i, o int) float64 {
	if o <= 0 {
		return 0
	}
	oi, of := float64(i), float64(o)
	return d.N*of + d.M*(oi*of+of*(of-1)/2)
}

// LatencyModel is Eqn 3: total = prefill + decode.
type LatencyModel struct {
	Model   model.ID
	Prefill PrefillModel
	Decode  DecodeModel
}

// Total returns the modeled end-to-end latency.
func (l LatencyModel) Total(i, o int) float64 {
	return l.Prefill.Predict(i) + l.Decode.Predict(i, o)
}

// MaxTokensWithin inverts the model: the largest output length O whose
// total latency stays within the budget for input length I. This is the
// hardware-aware "latency budget → maximum decodable tokens" mapping the
// introduction calls for. Returns 0 when even prefill misses the budget.
func (l LatencyModel) MaxTokensWithin(i int, budget float64) int {
	remaining := budget - l.Prefill.Predict(i)
	if remaining <= 0 {
		return 0
	}
	// Solve (m/2)·O² + (n + m·I − m/2)·O − remaining <= 0 for O.
	a := l.Decode.M / 2
	b := l.Decode.N + l.Decode.M*float64(i) - l.Decode.M/2
	if math.Abs(a) < 1e-18 {
		if b <= 0 {
			return 0
		}
		return int(remaining / b)
	}
	disc := b*b + 4*a*remaining
	if disc < 0 {
		return 0
	}
	o := (-b + math.Sqrt(disc)) / (2 * a)
	if o < 0 {
		return 0
	}
	return int(o)
}

// FitReport carries goodness-of-fit for a fitted model.
type FitReport struct {
	Samples int
	MAPE    float64 // fraction
	R2      float64
}

// FitPrefillModel sweeps prefill latency on the simulator at multiples of
// 64 tokens (the paper's protocol: fit only at 64-multiples to step around
// tensor-core padding) and fits Eqn 1.
func FitPrefillModel(sim *gpusim.Sim, a model.Arch, dt model.DType, maxLen int) (PrefillModel, FitReport, error) {
	tile := sim.Device.TileM
	if maxLen < 8*64 {
		maxLen = 8 * 64
	}
	var xs, ys []float64
	for i := 64; i <= maxLen; i += 64 {
		res := sim.Prefill(a, dt, i, 1)
		ipad := float64(sim.Device.PadM(i))
		xs = append(xs, ipad)
		ys = append(ys, res.Time)
	}
	poly, err := fit.PolyFit(xs, ys, 2)
	if err != nil {
		return PrefillModel{}, FitReport{}, fmt.Errorf("core: prefill fit: %w", err)
	}
	pm := PrefillModel{A: poly.Coeffs[2], B: poly.Coeffs[1], C: poly.Coeffs[0], Tile: tile}
	pred := make([]float64, len(xs))
	for i, x := range xs {
		pred[i] = pm.A*x*x + pm.B*x + pm.C
	}
	rep := FitReport{Samples: len(xs), MAPE: stats.MAPE(pred, ys), R2: stats.RSquared(pred, ys)}
	return pm, rep, nil
}

// FitDecodeModel samples decode latency over a grid of (I, O) pairs (the
// paper fits on 100 MMLU-Redux points with varied lengths) and solves
// Eqn 2's coefficients by least squares over the basis
// {O, I·O + O(O−1)/2} with no intercept.
func FitDecodeModel(sim *gpusim.Sim, a model.Arch, dt model.DType) (DecodeModel, FitReport, error) {
	var design [][]float64
	var ys []float64
	for _, i := range []int{1, 128, 512, 1024, 2048, 4096} {
		for _, o := range []int{16, 64, 128, 256, 512, 1024, 2048, 4096} {
			res := sim.DecodeRun(a, dt, i, o, 1)
			of := float64(o)
			design = append(design, []float64{of, float64(i)*of + of*(of-1)/2})
			ys = append(ys, res.Time)
		}
	}
	coef, err := fit.LeastSquares(design, ys)
	if err != nil {
		return DecodeModel{}, FitReport{}, fmt.Errorf("core: decode fit: %w", err)
	}
	dm := DecodeModel{N: coef[0], M: coef[1]}
	pred := make([]float64, len(ys))
	for i, row := range design {
		pred[i] = dm.N*row[0] + dm.M*row[1]
	}
	rep := FitReport{Samples: len(ys), MAPE: stats.MAPE(pred, ys), R2: stats.RSquared(pred, ys)}
	return dm, rep, nil
}

// FitLatencyModel fits both phases.
func FitLatencyModel(sim *gpusim.Sim, spec model.Spec) (LatencyModel, error) {
	pm, _, err := FitPrefillModel(sim, spec.Arch, spec.DType, 2048)
	if err != nil {
		return LatencyModel{}, err
	}
	dm, _, err := FitDecodeModel(sim, spec.Arch, spec.DType)
	if err != nil {
		return LatencyModel{}, err
	}
	return LatencyModel{Model: spec.ID, Prefill: pm, Decode: dm}, nil
}

// ValidateLatencyModel replays a held-out workload (I, O pairs) through
// both the simulator and the model, returning prefill/decode/total MAPE —
// the Table VI protocol.
func ValidateLatencyModel(sim *gpusim.Sim, a model.Arch, dt model.DType, lm LatencyModel, workload [][2]int) (prefillMAPE, decodeMAPE, totalMAPE float64) {
	var pPred, pAct, dPred, dAct, tPred, tAct []float64
	for _, w := range workload {
		i, o := w[0], w[1]
		pres := sim.Prefill(a, dt, i, 1)
		dres := sim.DecodeRun(a, dt, i, o, 1)
		pPred = append(pPred, lm.Prefill.Predict(i))
		pAct = append(pAct, pres.Time)
		dPred = append(dPred, lm.Decode.Predict(i, o))
		dAct = append(dAct, dres.Time)
		tPred = append(tPred, lm.Total(i, o))
		tAct = append(tAct, pres.Time+dres.Time)
	}
	return stats.MAPE(pPred, pAct), stats.MAPE(dPred, dAct), stats.MAPE(tPred, tAct)
}

// PaperPrefillModels returns Table IV's published coefficients for
// side-by-side comparison in EXPERIMENTS.md.
func PaperPrefillModels() map[model.ID]PrefillModel {
	return map[model.ID]PrefillModel{
		model.DSR1Qwen1_5B: {A: 1.56e-7, B: 2.31e-6, C: 0.046, Tile: 128},
		model.DSR1Llama8B:  {A: 6.65e-7, B: 2.90e-4, C: 0.104, Tile: 128},
		model.DSR1Qwen14B:  {A: 1.23e-6, B: 5.3e-4, C: 0.189, Tile: 128},
	}
}

// PaperDecodeModels returns Table V's published coefficients. Note the
// paper's prose TBT values (0.024 / 0.092–0.10 / 0.186–0.187 s) are
// authoritative over the table's 8B n=0.010 (a typo; see DESIGN.md §7).
func PaperDecodeModels() map[model.ID]DecodeModel {
	return map[model.ID]DecodeModel{
		model.DSR1Qwen1_5B: {M: -1.50e-7, N: 0.024},
		model.DSR1Llama8B:  {M: 6.92e-7, N: 0.096},
		model.DSR1Qwen14B:  {M: 1.13e-6, N: 0.187},
	}
}
