package experiments

import (
	"fmt"

	"edgereasoning/internal/control"
	"edgereasoning/internal/cost"
	"edgereasoning/internal/data"
	"edgereasoning/internal/engine"
	"edgereasoning/internal/gpusim"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/llm"
	"edgereasoning/internal/model"
	"edgereasoning/internal/power"
)

func init() {
	register("specdec", ablationSpeculative)
	register("offload", ablationHostOffload)
	register("powermodes", ablationPowerModes)
	register("batchsweep", ablationBatchSweep)
	register("saturation", sequentialSaturation)
}

// ablationSpeculative explores §VI's speculative-decoding opportunity:
// the 1.5B distill drafting for the 8B and 14B targets, swept over draft
// length γ and acceptance rate α.
func ablationSpeculative(opts Options) ([]Table, error) {
	sim := gpusim.New(hw.JetsonAGXOrin64GB())
	draft := model.MustLookup(model.DSR1Qwen1_5B)
	t := Table{
		ID: "specdec", Title: "Speculative decoding ablation (DSR1-Qwen-1.5B drafting, 1024 tokens @512 ctx)",
		Columns: []string{"target", "gamma", "accept_rate", "tokens_per_iter", "tbt_ms", "speedup"},
		Notes:   []string{"a §VI future-work optimization; the paper does not measure it"},
	}
	for _, targetID := range []model.ID{model.DSR1Llama8B, model.DSR1Qwen14B} {
		target := model.MustLookup(targetID)
		for _, gamma := range []int{2, 4, 8} {
			for _, alpha := range []float64{0.5, 0.7, 0.9} {
				cfg := gpusim.SpeculativeConfig{
					Draft: draft.Arch, DraftDType: draft.DType,
					Gamma: gamma, AcceptRate: alpha,
				}
				res, speedup := sim.DecodeRunSpeculative(target.Arch, target.DType, cfg, 512, 1024)
				t.AddRow(string(targetID), di(gamma), f2(alpha),
					f2(cfg.ExpectedTokensPerIteration()),
					f1(res.Time/float64(res.Tokens)*1000), f2(speedup))
			}
		}
	}
	return []Table{t}, nil
}

// ablationHostOffload explores §VI's heterogeneous-computing opportunity:
// hiding per-launch host overhead by overlapping lightweight kernels with
// GPU matmuls on the ≤20%-utilized CPU complex.
func ablationHostOffload(opts Options) ([]Table, error) {
	t := Table{
		ID: "offload", Title: "Host-offload overlap ablation: decode TBT vs hidden launch overhead",
		Columns: []string{"model", "overlap", "tbt_ms", "tbt_reduction_pct"},
		Notes:   []string{"§VI: 'further latency reductions can be unlocked by offloading lightweight graph kernels to the host CPU'"},
	}
	for _, spec := range model.DSR1Family() {
		base := 0.0
		for _, overlap := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
			sim := gpusim.New(hw.JetsonAGXOrin64GB())
			sim.HostOverlap = overlap
			tbt := sim.TBT(spec.Arch, spec.DType, 512)
			if overlap == 0 {
				base = tbt
			}
			t.AddRow(string(spec.ID), f2(overlap), f1(tbt*1000), f1((base-tbt)/base*100))
		}
	}
	return []Table{t}, nil
}

// ablationPowerModes sweeps the Jetson's configurable power envelopes
// (15W/30W/50W/MAXN): the paper runs everything in MAXN; this ablation
// shows the latency/energy frontier the other modes trade along.
func ablationPowerModes(opts Options) ([]Table, error) {
	t := Table{
		ID: "powermodes", Title: "Power-mode ablation: 512-token decode at 512-token input",
		Columns: []string{"model", "mode", "tbt_ms", "decode_s", "avg_power_w", "energy_j_per_tok"},
	}
	base := hw.JetsonAGXOrin64GB()
	for _, spec := range model.DSR1Family() {
		for _, mode := range hw.OrinPowerModes() {
			dev := hw.ApplyPowerMode(base, mode)
			sim := gpusim.New(dev)
			meter := power.NewMeter(dev)
			res := sim.DecodeRun(spec.Arch, spec.DType, 512, 512, 1)
			t.AddRow(string(spec.ID), mode.Name,
				f1(res.Time/float64(res.Tokens)*1000), f1(res.Time),
				f1(meter.Power(res)), f3(meter.EnergyPerToken(res)))
		}
	}
	return []Table{t}, nil
}

// ablationBatchSweep extends the Table III insight ("edge deployment
// costs also benefit from batching and increased QPS"): the AIME workload
// at batch sizes 1..64.
func ablationBatchSweep(opts Options) ([]Table, error) {
	bank := data.MustLoad(data.AIME2024, opts.Seed)
	spec := model.MustLookup(model.DeepScaleR1_5)
	tw := llm.NewTwin(spec, bank, opts.Seed)
	var reqs []engine.Request
	for _, q := range bank.Questions {
		g, err := tw.Generate(q, control.BasePolicy())
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, engine.Request{
			ID: fmt.Sprintf("q%d", q.Index), PromptTokens: q.PromptTokens, OutputTokens: g.OutputTokens,
		})
		// Duplicate the bank to give large batches enough work.
		reqs = append(reqs, engine.Request{
			ID: fmt.Sprintf("q%db", q.Index), PromptTokens: q.PromptTokens, OutputTokens: g.OutputTokens,
		})
	}
	t := Table{
		ID: "batchsweep", Title: "Batch-size sweep: AIME workload on DeepScaleR-1.5B",
		Columns: []string{"batch", "wall_s", "user_tps", "agg_tps", "avg_power_w", "usd_per_1M"},
	}
	rates := cost.PaperRates()
	for _, batch := range []int{1, 2, 4, 8, 16, 30, 64} {
		eng, err := engine.New(engine.Config{Spec: spec, Device: hw.JetsonAGXOrin64GB()})
		if err != nil {
			return nil, err
		}
		cp := make([]engine.Request, len(reqs))
		copy(cp, reqs)
		b, err := eng.Run(cp, batch)
		if err != nil {
			return nil, err
		}
		bill := cost.Bill(rates, b.TotalEnergy, b.WallTime, b.TotalTokens)
		aggTPS := float64(b.OutputTokens()) / b.WallTime
		t.AddRow(di(batch), f1(b.WallTime), f1(b.UserTPS()), f1(aggTPS),
			f1(b.AvgPower()), f3(bill.PerMillionTokens()))
	}
	return []Table{t}, nil
}

// sequentialSaturation quantifies §V-C: where longer chains stop paying —
// ~300 tokens for the 1.5B-class and ~400 for the 8B/14B.
func sequentialSaturation(opts Options) ([]Table, error) {
	t := Table{
		ID: "saturation", Title: "Sequential-scaling saturation: tokens to reach 95% of peak accuracy (paper: ~300 for 1.5B-class, ~400 for 8B/14B)",
		Columns: []string{"model", "saturation_tokens", "peak_acc_pct", "acc_at_saturation_pct"},
	}
	for _, id := range []model.ID{model.DSR1Qwen1_5B, model.DSR1Llama8B, model.DSR1Qwen14B, model.L1Max} {
		curve, ok := llm.NaturalCurve(id, data.MMLURedux)
		if !ok {
			continue
		}
		sat := curve.SaturationTokens(0.05)
		peak := 0.0
		for _, p := range curve.Points {
			if p.Accuracy > peak {
				peak = p.Accuracy
			}
		}
		t.AddRow(string(id), f1(sat), pct(peak), pct(curve.At(sat)))
	}
	return []Table{t}, nil
}
