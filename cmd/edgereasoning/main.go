// Command edgereasoning regenerates the paper's tables and figures on the
// simulated Jetson AGX Orin platform.
//
// Usage:
//
//	edgereasoning list                 # show available experiment IDs
//	edgereasoning run <id> [flags]     # run one experiment
//	edgereasoning all [flags]          # run the full suite
//
// Flags:
//
//	-seed N     random seed (default 7)
//	-quick      subsample the large banks (fast smoke runs)
//	-csv DIR    also write each table as DIR/<table-id>.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"edgereasoning/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "edgereasoning:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing command")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "list":
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	case "run":
		if len(rest) == 0 {
			return fmt.Errorf("run: missing experiment id")
		}
		id := rest[0]
		opts, csvDir, err := parseFlags(rest[1:])
		if err != nil {
			return err
		}
		return execute([]string{id}, opts, csvDir)
	case "all":
		opts, csvDir, err := parseFlags(rest)
		if err != nil {
			return err
		}
		return execute(experiments.IDs(), opts, csvDir)
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func parseFlags(args []string) (experiments.Options, string, error) {
	fs := flag.NewFlagSet("edgereasoning", flag.ContinueOnError)
	seed := fs.Uint64("seed", 7, "random seed")
	quick := fs.Bool("quick", false, "subsample large banks")
	csvDir := fs.String("csv", "", "directory for CSV output")
	if err := fs.Parse(args); err != nil {
		return experiments.Options{}, "", err
	}
	return experiments.Options{Seed: *seed, Quick: *quick}, *csvDir, nil
}

func execute(ids []string, opts experiments.Options, csvDir string) error {
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
	}
	for _, id := range ids {
		tables, err := experiments.Run(id, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		for i := range tables {
			if err := tables[i].Render(os.Stdout); err != nil {
				return err
			}
			if csvDir != "" {
				if err := writeCSV(csvDir, &tables[i]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func writeCSV(dir string, t *experiments.Table) error {
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

func usage() {
	fmt.Fprintln(os.Stderr, `edgereasoning — reproduce the EdgeReasoning paper's evaluation

commands:
  list                 show available experiment IDs
  run <id> [flags]     run one experiment (e.g. "run table2")
  all [flags]          run the full suite

flags:
  -seed N   random seed (default 7)
  -quick    subsample large banks
  -csv DIR  also write CSV files`)
}
