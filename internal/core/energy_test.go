package core

import (
	"testing"

	"edgereasoning/internal/model"
	"edgereasoning/internal/power"
)

func TestFitDecodePowerShape(t *testing.T) {
	sim := orinSim()
	meter := power.NewMeter(sim.Device)
	for _, spec := range model.DSR1Family() {
		pm, err := FitDecodePower(sim, meter, spec.Arch, spec.DType)
		if err != nil {
			t.Fatalf("%s: %v", spec.ID, err)
		}
		// Log growth: power at 2048 must exceed power at 128.
		p128, p2048 := pm.Predict(128), pm.Predict(2048)
		if p2048 <= p128 {
			t.Errorf("%s: decode power model not increasing: %.1f @128 vs %.1f @2048", spec.ID, p128, p2048)
		}
		if p128 < 5 || p2048 > sim.Device.MaxPower {
			t.Errorf("%s: power range [%.1f, %.1f] implausible", spec.ID, p128, p2048)
		}
	}
}

func TestFitPrefillPowerOrdering(t *testing.T) {
	sim := orinSim()
	meter := power.NewMeter(sim.Device)
	small, err := FitPrefillPower(sim, meter, model.MustLookup(model.DSR1Qwen1_5B).Arch, model.FP16)
	if err != nil {
		t.Fatal(err)
	}
	large, err := FitPrefillPower(sim, meter, model.MustLookup(model.DSR1Qwen14B).Arch, model.FP16)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 4a: at 4K input the large models draw far more than the 1.5B.
	if small.Predict(4096) >= large.Predict(4096) {
		t.Errorf("1.5B prefill power (%.1f) should undercut 14B (%.1f)",
			small.Predict(4096), large.Predict(4096))
	}
}

func TestFitPrefillEnergyDecayThenFlat(t *testing.T) {
	sim := orinSim()
	meter := power.NewMeter(sim.Device)
	spec := model.MustLookup(model.DSR1Llama8B)
	em, err := FitPrefillEnergy(sim, meter, spec.Arch, spec.DType)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 4b: energy per token decays from short lengths to a minimum,
	// then stays within a modest band.
	e16 := em.PredictPerToken(16)
	e512 := em.PredictPerToken(512)
	if e16 <= e512 {
		t.Errorf("short-prompt energy/token (%.4f) must exceed amortized (%.4f)", e16, e512)
	}
	if e512 <= 0 {
		t.Errorf("energy per token must stay positive, got %v", e512)
	}
}

func TestFitDecodeEnergyPerTokenOrdering(t *testing.T) {
	sim := orinSim()
	meter := power.NewMeter(sim.Device)
	small, err := FitDecodeEnergy(sim, meter, model.MustLookup(model.DSR1Qwen1_5B).Arch, model.FP16)
	if err != nil {
		t.Fatal(err)
	}
	large, err := FitDecodeEnergy(sim, meter, model.MustLookup(model.DSR1Qwen14B).Arch, model.FP16)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 5b: the 1.5B is ~7x more energy-efficient per decode token.
	ratio := large.PredictPerToken(1024) / small.PredictPerToken(1024)
	if ratio < 3 || ratio > 14 {
		t.Errorf("14B/1.5B energy-per-token ratio = %.1f, paper reports ~7x", ratio)
	}
}

// Table VIII: the energy model validates with single-digit MAPE.
func TestValidateEnergyModelMAPE(t *testing.T) {
	sim := orinSim()
	meter := power.NewMeter(sim.Device)
	spec := model.MustLookup(model.DSR1Llama8B)
	pe, err := FitPrefillEnergy(sim, meter, spec.Arch, spec.DType)
	if err != nil {
		t.Fatal(err)
	}
	de, err := FitDecodeEnergy(sim, meter, spec.Arch, spec.DType)
	if err != nil {
		t.Fatal(err)
	}
	workload := [][2]int{{100, 300}, {250, 600}, {400, 1000}, {600, 1500}, {180, 120}}
	mape := ValidateEnergyModel(sim, meter, spec.Arch, spec.DType, pe, de, workload)
	if mape > 0.15 {
		t.Errorf("total energy MAPE = %.3f, paper reports ~6%%", mape)
	}
}

func TestSweepLengthsCoverage(t *testing.T) {
	xs := sweepLengths(16, 4096)
	if xs[0] != 16 {
		t.Errorf("sweep must start at lo, got %d", xs[0])
	}
	if xs[len(xs)-1] < 2048 {
		t.Errorf("sweep must reach near hi, last = %d", xs[len(xs)-1])
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			t.Fatal("sweep must be strictly increasing")
		}
	}
}
