package gpusim

import (
	"edgereasoning/internal/hw"
	"edgereasoning/internal/model"
	"edgereasoning/internal/stats"
)

// Phase tags a simulated result as prompt processing or token generation.
type Phase int

const (
	// PhasePrefill processes the prompt in parallel.
	PhasePrefill Phase = iota
	// PhaseDecode generates tokens autoregressively.
	PhaseDecode
)

// Result is the outcome of simulating a phase (or a slice of one): wall
// time plus the utilization signals the power model consumes.
type Result struct {
	Phase Phase
	Time  float64 // seconds
	FLOPs float64 // arithmetic performed (padded work included)
	Bytes float64 // DRAM traffic
	// ComputeUtil is achieved FLOP/s over the device peak; BWUtil is
	// achieved bytes/s over peak bandwidth; Occupancy is the time-weighted
	// fraction of SMs kept busy.
	ComputeUtil float64
	BWUtil      float64
	Occupancy   float64
	Kernels     int // launches charged
	Tokens      int // tokens processed (prompt tokens or generated tokens)
}

// merge accumulates r2 into r, time-weighting the utilization signals.
func (r *Result) merge(r2 Result) {
	total := r.Time + r2.Time
	if total > 0 {
		r.ComputeUtil = (r.ComputeUtil*r.Time + r2.ComputeUtil*r2.Time) / total
		r.BWUtil = (r.BWUtil*r.Time + r2.BWUtil*r2.Time) / total
		r.Occupancy = (r.Occupancy*r.Time + r2.Occupancy*r2.Time) / total
	}
	r.Time = total
	r.FLOPs += r2.FLOPs
	r.Bytes += r2.Bytes
	r.Kernels += r2.Kernels
	r.Tokens += r2.Tokens
}

// Sim times transformer phases on a device.
type Sim struct {
	Device *hw.Device
	// JitterFrac is the amplitude of the deterministic CUTLASS
	// kernel-variant noise (keyed by GEMM shape, reproducible run to run).
	// Zero disables it.
	JitterFrac float64
	// HostOverlap is the fraction of per-launch host overhead hidden by
	// offloading lightweight kernels (tokenization, norms, softmax,
	// embedding lookups) to the idle CPU complex and overlapping them with
	// GPU matmuls — the §VI heterogeneous-computing opportunity. 0 (the
	// default) models the paper's measured configuration; 1 hides all of
	// it.
	HostOverlap float64
}

// New returns a simulator for the device with the default kernel-variant
// jitter the paper observes on Orin.
func New(d *hw.Device) *Sim {
	return &Sim{Device: d, JitterFrac: 0.04}
}

// computePeak returns the effective matmul peak for a weight format:
// FP16 runs on tensor cores; W4A16 dequantizes into the INT8 path (Orin's
// Ampere GPU has no INT4 tensor cores, §V-F); FP32 runs on CUDA cores.
func (s *Sim) computePeak(dt model.DType) float64 {
	d := s.Device
	switch dt {
	case model.W4A16:
		return d.PeakINT8OPS * d.ComputeEff
	case model.FP32:
		return d.PeakFP32FLOPS * d.ComputeEff
	default:
		return d.PeakFP16FLOPS * d.ComputeEff
	}
}

// kernelTime rooflines one kernel: max(compute, memory) + launch overhead,
// with shape-keyed jitter to model CUTLASS variant selection.
func (s *Sim) kernelTime(k Kernel, dt model.DType) (time, occ float64) {
	d := s.Device
	peak := s.computePeak(dt) * mfu(d, k.M, k.N, k.K)
	tc := 0.0
	if k.FLOPs > 0 && peak > 0 {
		tc = k.FLOPs / peak
	}
	tm := k.Bytes / d.EffectiveBandwidth()
	t := tc
	if tm > t {
		t = tm
	}
	if s.JitterFrac > 0 && k.Kind == GEMM {
		key := uint64(k.M)<<40 ^ uint64(k.N)<<20 ^ uint64(k.K)
		t = stats.HashJitter(t, s.JitterFrac, key)
	}
	t += d.KernelOverhead
	return t, occupancy(d, k.M, k.N)
}

// prefillKernels builds the per-layer kernel walk for prefilling m tokens
// (already tile-padded). Weights bytes come from the architecture so the
// full walk streams exactly one weight read plus activation traffic. The
// walk is a fixed-size array so the per-prefill call stays heap-free on
// the engine's admission path.
func prefillKernels(a model.Arch, dt model.DType, mPad, mReal int) [8]Kernel {
	bpp := dt.BytesPerParam()
	h := float64(a.Hidden)
	qW := a.Heads * a.HeadDim
	kvW := a.KVHeads * a.HeadDim
	mf := float64(mPad)
	act := 2.0 // fp16 activations
	kvLayerBytes := float64(a.KVBytesPerToken()) / float64(a.Layers)

	kernels := [8]Kernel{
		{
			Name: "qkv_proj", Kind: GEMM, Repeat: a.Layers,
			M: mPad, N: qW + 2*kvW, K: a.Hidden,
			FLOPs: 2 * mf * float64(qW+2*kvW) * h,
			Bytes: float64(qW+2*kvW)*h*bpp + mf*(h+float64(qW+2*kvW))*act,
		},
		{
			Name: "attention", Kind: Attention, Repeat: a.Layers,
			FLOPs: 4 * mf * mf * float64(qW),
			Bytes: float64(mReal)*kvLayerBytes*2 + mf*float64(qW)*act*2,
		},
		{
			Name: "o_proj", Kind: GEMM, Repeat: a.Layers,
			M: mPad, N: a.Hidden, K: qW,
			FLOPs: 2 * mf * h * float64(qW),
			Bytes: h*float64(qW)*bpp + mf*(float64(qW)+h)*act,
		},
		{
			Name: "mlp_up_gate", Kind: GEMM, Repeat: a.Layers,
			M: mPad, N: 2 * a.Inter, K: a.Hidden,
			FLOPs: 2 * mf * float64(2*a.Inter) * h,
			Bytes: float64(2*a.Inter)*h*bpp + mf*(h+float64(2*a.Inter))*act,
		},
		{
			Name: "mlp_down", Kind: GEMM, Repeat: a.Layers,
			M: mPad, N: a.Hidden, K: a.Inter,
			FLOPs: 2 * mf * h * float64(a.Inter),
			Bytes: h*float64(a.Inter)*bpp + mf*(float64(a.Inter)+h)*act,
		},
		{
			Name: "norms_rotary", Kind: Elementwise, Repeat: a.Layers,
			Bytes: mf * h * act * 6,
		},
		// Logits for the last position only (vLLM computes the LM head on
		// the final token during prefill).
		{
			Name: "lm_head", Kind: GEMM,
			M: 1, N: a.Vocab, K: a.Hidden,
			FLOPs: 2 * float64(a.Vocab) * h,
			Bytes: float64(a.Vocab) * h * bpp,
		},
		{Name: "sampling", Kind: Sampling, Bytes: float64(a.Vocab) * 4},
	}
	return kernels
}

// Prefill times prompt processing for n tokens at the given batch size
// (the paper prefills at batch 1; batched prefill concatenates prompts).
func (s *Sim) Prefill(a model.Arch, dt model.DType, n, batch int) Result {
	if n <= 0 || batch <= 0 {
		return Result{Phase: PhasePrefill}
	}
	total := n * batch
	mPad := s.Device.PadM(total)
	res := Result{Phase: PhasePrefill, Tokens: total}
	var occTime float64
	kernels := prefillKernels(a, dt, mPad, total)
	for i := range kernels {
		k := kernels[i]
		t, occ := s.kernelTime(k, dt)
		reps := k.reps()
		elapsed := t * float64(reps)
		res.Time += elapsed
		res.FLOPs += k.TotalFLOPs()
		res.Bytes += k.TotalBytes()
		res.Kernels += reps
		occTime += occ * elapsed
	}
	d := s.Device
	if res.Time > 0 {
		res.ComputeUtil = res.FLOPs / res.Time / d.PeakFP16FLOPS
		res.BWUtil = res.Bytes / res.Time / d.MemBandwidth
		res.Occupancy = occTime / res.Time
	}
	return res
}

// decodeKernelsPerStep is the launch count charged per decode iteration
// per layer (QKV, attention, O, up/gate, down, norms, plus amortized
// head/sampling). This fixed cost is what separates the measured TBT from
// the pure bandwidth bound — on Orin it is the dominant non-memory term.
const decodeKernelsPerStep = 7

// DecodeStep times one decode iteration for a batch of sequences with the
// given context lengths (prompt + generated so far, per sequence).
func (s *Sim) DecodeStep(a model.Arch, dt model.DType, ctxs []int) Result {
	if len(ctxs) == 0 {
		return Result{Phase: PhaseDecode}
	}
	batch := len(ctxs)
	sumCtx := 0
	for _, c := range ctxs {
		if c < 0 {
			c = 0
		}
		sumCtx += c
	}
	return s.decodeAggregate(a, dt, batch, 1, float64(sumCtx))
}

// DecodeRun times n consecutive decode steps for a batch whose members all
// start at startCtx and grow by one token per step. It is the closed-form
// equivalent of calling DecodeStep n times (the sum over the arithmetic
// context series), used by the engine for long generations.
func (s *Sim) DecodeRun(a model.Arch, dt model.DType, startCtx, n, batch int) Result {
	if n <= 0 || batch <= 0 {
		return Result{Phase: PhaseDecode}
	}
	// Σ_{t=0}^{n-1} Σ_batch (startCtx + t) = batch · (n·startCtx + n(n−1)/2)
	sumCtx := float64(batch) * (float64(n)*float64(startCtx) + float64(n)*float64(n-1)/2)
	return s.decodeAggregate(a, dt, batch, n, sumCtx)
}

// DecodeChunk times n consecutive decode steps for a batch whose members
// start at the given (possibly unequal) context lengths, each growing by
// one token per step. The engine uses it to advance a continuous batch
// between admission/completion events in one closed form.
func (s *Sim) DecodeChunk(a model.Arch, dt model.DType, ctxs []int, n int) Result {
	if n <= 0 || len(ctxs) == 0 {
		return Result{Phase: PhaseDecode}
	}
	// Σ_{t=0}^{n-1} Σ_b (ctx_b + t) = n·Σctx_b + B·n(n−1)/2
	sum := 0.0
	for _, c := range ctxs {
		if c < 0 {
			c = 0
		}
		sum += float64(c)
	}
	sumCtx := float64(n)*sum + float64(len(ctxs))*float64(n)*float64(n-1)/2
	return s.decodeAggregate(a, dt, len(ctxs), n, sumCtx)
}

// decodeAggregate is the shared closed form: batch sequences, n steps,
// with sumCtx the total context-token count summed over all (step, seq)
// pairs.
func (s *Sim) decodeAggregate(a model.Arch, dt model.DType, batch, n int, sumCtx float64) Result {
	d := s.Device
	nf := float64(n)
	bf := float64(batch)

	// Memory: weights once per step, KV history per (step, sequence),
	// activations and logits per sequence per step.
	weightBytes := float64(a.WeightBytes(dt))
	kvPerTok := float64(a.KVBytesPerToken())
	actBytes := float64(a.Hidden)*float64(a.Layers)*24 + float64(a.Vocab)*4
	bytes := nf*weightBytes + sumCtx*kvPerTok + nf*bf*actBytes

	// Compute: dense GEMV/GEMM work per (step, sequence) plus linear
	// attention. Small batches cannot feed the tensor cores; efficiency
	// saturates with batch size.
	densePerTok := a.DecodeFLOPs(0)
	attnFLOPs := 4 * float64(a.Layers) * float64(a.KVHeads) * float64(a.HeadDim) * sumCtx
	flops := nf*bf*densePerTok + attnFLOPs
	// Small decode batches cannot feed the tensor cores; efficiency
	// saturates with batch size. CPU SIMD has no such tile penalty.
	batchSat := 1.0
	if d.TileM > 1 {
		batchSat = bf / (bf + 24)
	}
	peak := s.computePeak(dt) * batchSat

	tm := bytes / d.EffectiveBandwidth()
	tc := flops / peak
	t := tm
	if tc > t {
		t = tc
	}
	launches := n * (a.Layers*decodeKernelsPerStep + 2)
	overlap := s.HostOverlap
	if overlap < 0 {
		overlap = 0
	}
	if overlap > 1 {
		overlap = 1
	}
	t += float64(launches) * d.KernelOverhead * (1 - overlap)

	res := Result{
		Phase:   PhaseDecode,
		Time:    t,
		FLOPs:   flops,
		Bytes:   bytes,
		Kernels: launches,
		Tokens:  n * batch,
	}
	if t > 0 {
		res.ComputeUtil = flops / t / d.PeakFP16FLOPS
		res.BWUtil = bytes / t / d.MemBandwidth
	}
	// Decode occupancy: GEMV row-parallel blocks over the hidden width,
	// widened by batching.
	occ := float64(a.Hidden) / 128 / float64(d.SMCount)
	occ *= 1 + 0.15*log2(bf)
	if occ > 1 {
		occ = 1
	}
	res.Occupancy = occ
	return res
}

// TBT returns the marginal time-between-tokens at a context length for
// batch-1 decoding — the quantity Fig 3b plots.
func (s *Sim) TBT(a model.Arch, dt model.DType, ctx int) float64 {
	return s.DecodeStep(a, dt, []int{ctx}).Time
}

func log2(x float64) float64 {
	if x <= 1 {
		return 0
	}
	n := 0.0
	for x > 1 {
		x /= 2
		n++
	}
	return n
}
