package stats

import (
	"math"
	"testing"
)

func TestHistogramObserveAndBuckets(t *testing.T) {
	h := MustHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.0, 1.5, 3.0, 9.0, math.NaN()} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5 (NaN ignored)", h.Count())
	}
	want := []uint64{2, 1, 1, 1} // <=1 (0.5 and the boundary 1.0), <=2, <=4, +Inf
	for i, w := range want {
		if got := h.BucketCount(i); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if got := h.Cumulative(1); got != 3 {
		t.Errorf("Cumulative(1) = %d, want 3", got)
	}
	if got := h.Cumulative(3); got != 5 {
		t.Errorf("Cumulative(+Inf) = %d, want 5", got)
	}
	if math.Abs(h.Sum()-15.0) > 1e-12 {
		t.Errorf("Sum = %v, want 15", h.Sum())
	}
}

func TestHistogramMerge(t *testing.T) {
	a := MustHistogram([]float64{1, 2})
	b := MustHistogram([]float64{1, 2})
	a.Observe(0.5)
	b.Observe(1.5)
	b.Observe(10)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 3 || a.BucketCount(0) != 1 || a.BucketCount(1) != 1 || a.BucketCount(2) != 1 {
		t.Fatalf("merged counts wrong: n=%d buckets=[%d %d %d]",
			a.Count(), a.BucketCount(0), a.BucketCount(1), a.BucketCount(2))
	}
	// Merge equals observing the union directly.
	u := MustHistogram([]float64{1, 2})
	for _, v := range []float64{0.5, 1.5, 10} {
		u.Observe(v)
	}
	for i := 0; i < 3; i++ {
		if a.BucketCount(i) != u.BucketCount(i) {
			t.Errorf("bucket %d: merged %d != union %d", i, a.BucketCount(i), u.BucketCount(i))
		}
	}
	mismatched := MustHistogram([]float64{1, 3})
	if err := a.Merge(mismatched); err == nil {
		t.Error("merge of mismatched bounds should error")
	}
	short := MustHistogram([]float64{1})
	if err := a.Merge(short); err == nil {
		t.Error("merge of mismatched bucket counts should error")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := MustHistogram([]float64{10, 20, 30})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%30) + 0.5)
	}
	if q := h.Quantile(0.5); q < 10 || q > 20 {
		t.Errorf("Quantile(0.5) = %v, want within (10, 20]", q)
	}
	if q := h.Quantile(0); q < 0 || q > 10 {
		t.Errorf("Quantile(0) = %v, want within first bucket", q)
	}
	if q := h.Quantile(1); q != 30 {
		t.Errorf("Quantile(1) = %v, want 30 (no overflow observations)", q)
	}
	empty := MustHistogram([]float64{1})
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty Quantile = %v, want 0", q)
	}
	over := MustHistogram([]float64{1})
	over.Observe(100)
	if q := over.Quantile(0.99); q != 1 {
		t.Errorf("overflow Quantile = %v, want the largest finite bound 1", q)
	}
}

func TestHistogramValidation(t *testing.T) {
	cases := [][]float64{
		nil,
		{},
		{1, 1},
		{2, 1},
		{math.NaN()},
		{math.Inf(1)},
	}
	for _, bounds := range cases {
		if _, err := NewHistogram(bounds); err == nil {
			t.Errorf("NewHistogram(%v) should error", bounds)
		}
	}
}

func TestHistogramClone(t *testing.T) {
	h := MustHistogram([]float64{1})
	h.Observe(0.5)
	c := h.Clone()
	c.Observe(2)
	if h.Count() != 1 || c.Count() != 2 {
		t.Fatalf("clone not independent: h=%d c=%d", h.Count(), c.Count())
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.01, 2, 4)
	want := []float64{0.01, 0.02, 0.04, 0.08}
	if len(b) != len(want) {
		t.Fatalf("len = %d, want %d", len(b), len(want))
	}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-15 {
			t.Errorf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
	if ExpBuckets(0, 2, 4) != nil || ExpBuckets(1, 1, 4) != nil || ExpBuckets(1, 2, 0) != nil {
		t.Error("degenerate ExpBuckets should return nil")
	}
}
