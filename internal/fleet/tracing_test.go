package fleet

import (
	"reflect"
	"testing"

	"edgereasoning/internal/engine"
	"edgereasoning/internal/faults"
	"edgereasoning/internal/model"
	"edgereasoning/internal/telemetry"
	"edgereasoning/internal/workload"
)

// TestTracingTransparencyProperties is the zero-overhead-when-off
// property gate, run under -race in CI: across eight seeds of a faulted
// fleet with the full recovery machinery (and autoscaling on half of
// them), the traced run's Metrics must be deep-equal to the untraced
// run of the same stream and schedule, the recorded spans must nest
// cleanly on every track lane, and the span ledger must match the
// fleet's own accounting — one request span per served request, one
// abort span per destroyed dispatch, one retry-wait span per scheduled
// retry. The concurrent replica drain records into the trace from one
// goroutine per track, so the -race run also proves the single-writer
// discipline holds.
func TestTracingTransparencyProperties(t *testing.T) {
	spec := model.MustLookup(model.Qwen25_1_5Bit)
	devices := DefaultDevices()
	for seed := uint64(1); seed <= 8; seed++ {
		const replicas = 3
		const qps = 2.5
		profile := workload.InteractiveAssistant(qps, 120)
		profile.DeadlineSlack = 3
		profile.DeadlineSlackMax = 9
		reqs, err := workload.Generate(profile, seed)
		if err != nil {
			t.Fatal(err)
		}
		horizon := 120 / qps
		sched, err := faults.Generate(faults.GenConfig{
			Replicas: replicas, Horizon: horizon,
			CrashRate: 1.5, RestartDelay: 5,
			StallRate: 1, StallDuration: 2,
			ThrottleRate: 1, ThrottleDuration: horizon / 8, ThrottleFactor: 2,
		}, seed)
		if err != nil {
			t.Fatal(err)
		}
		cfgFor := func(trace *telemetry.Trace) Config {
			cfg := Config{
				Replicas: HeterogeneousReplicas(replicas, devices, spec),
				Policy:   DeadlineAware,
				Faults:   &sched,
				Retry:    &RetryPolicy{Hedge: true},
				Health:   &HealthConfig{FailureThreshold: 2, ProbeAfter: 1},
				Trace:    trace,
			}
			if seed%2 == 0 {
				cfg.Autoscale = &AutoscaleConfig{
					Min: 1, Max: replicas + 2,
					Spec: spec, Devices: devices,
					ColdStart: 2, DepthPerReplica: 2, Cooldown: 0.5,
				}
			}
			return cfg
		}

		plain, err := ServeSource(cfgFor(nil), engine.NewSliceSource(reqs))
		if err != nil {
			t.Fatal(err)
		}
		trace := telemetry.New(telemetry.Config{SpanCap: 1 << 14})
		traced, err := ServeSource(cfgFor(trace), engine.NewSliceSource(reqs))
		if err != nil {
			t.Fatal(err)
		}

		if !reflect.DeepEqual(plain, traced) {
			t.Errorf("seed %d: tracing perturbed fleet Metrics:\n plain %+v\ntraced %+v", seed, plain, traced)
		}
		if err := telemetry.ValidateSpans(trace); err != nil {
			t.Errorf("seed %d: recorded spans malformed: %v", seed, err)
		}
		requestSpans, abortSpans, retrySpans := 0, 0, 0
		for _, tr := range trace.Tracks() {
			if tr.Dropped() > 0 {
				t.Errorf("seed %d: track %s dropped %d spans under SpanCap", seed, tr.Name(), tr.Dropped())
			}
			for _, s := range tr.Spans() {
				switch s.Kind {
				case telemetry.KindRequest:
					requestSpans++
				case telemetry.KindAborted:
					abortSpans++
				case telemetry.KindRetryWait:
					retrySpans++
				}
			}
		}
		if requestSpans != traced.Served {
			t.Errorf("seed %d: %d request spans, served %d", seed, requestSpans, traced.Served)
		}
		if abortSpans != traced.Aborted {
			t.Errorf("seed %d: %d abort spans, aborted %d", seed, abortSpans, traced.Aborted)
		}
		if retrySpans != traced.Retried {
			t.Errorf("seed %d: %d retry-wait spans, retried %d", seed, retrySpans, traced.Retried)
		}
	}
}

// TestPerReplicaBreakdown pins the Metrics.PerReplica satellite: rows
// come back in replica order and fold served counts, busy seconds, and
// crash strikes consistent with the per-replica metrics they summarize.
func TestPerReplicaBreakdown(t *testing.T) {
	spec := model.MustLookup(model.Qwen25_1_5Bit)
	profile := workload.InteractiveAssistant(2, 60)
	reqs, err := workload.Generate(profile, 7)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := faults.Generate(faults.GenConfig{
		Replicas: 2, Horizon: 30, CrashRate: 1, RestartDelay: 4,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ServeSource(Config{
		Replicas: HeterogeneousReplicas(2, DefaultDevices(), spec),
		Faults:   &sched,
		Retry:    &RetryPolicy{},
	}, engine.NewSliceSource(reqs))
	if err != nil {
		t.Fatal(err)
	}
	rows := m.PerReplica()
	if len(rows) != len(m.Replicas) {
		t.Fatalf("%d rows for %d replicas", len(rows), len(m.Replicas))
	}
	served, crashes := 0, 0
	for i, rb := range rows {
		rm := m.Replicas[i]
		if rb.Name != rm.Name || rb.Served != rm.Served || rb.Crashes != rm.Crashes {
			t.Errorf("row %d = %+v diverges from ReplicaMetrics %s served=%d crashes=%d",
				i, rb, rm.Name, rm.Served, rm.Crashes)
		}
		if rb.BusySeconds < 0 {
			t.Errorf("row %d: negative busy seconds %v", i, rb.BusySeconds)
		}
		served += rb.Served
		crashes += rb.Crashes
	}
	if served != m.Served || crashes != m.Crashes {
		t.Errorf("rows fold to served=%d crashes=%d, metrics say %d/%d", served, crashes, m.Served, m.Crashes)
	}
}
