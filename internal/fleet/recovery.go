// Fault injection and crash-consistent recovery for the fleet. A
// Config.Faults schedule (or a ReplicaConfig.CrashAt shorthand) compiles
// into per-replica timelines: crashes abort the replica's in-flight
// dispatches and wipe its device KV cache (the host tier optionally
// survives), stall windows freeze it, and throttle windows stretch its
// decode rate. The recovery side makes faults survivable: aborted
// requests re-enter the shared ingress under a RetryPolicy (bounded
// attempts, exponential backoff, a deadline budget), and HealthConfig
// adds per-replica health to routing — a consecutive-failure circuit
// breaker with half-open probes, plus stall-window avoidance.
//
// Crash semantics are authoritative at the dispatch level, mirroring how
// the router works on calibrated estimates everywhere else: the abort
// set at a crash is the suffix of the replica's assigned sub-stream
// whose estimated completion lands after the crash instant (estimated
// finishes are monotone in dispatch order), and the surviving prefix
// drains normally. The engine sees the crash only as a cache-wipe marker
// on the first post-restart request plus the stall/throttle timing
// windows, so dispatch decisions and execution can never disagree about
// which requests a crash destroyed.
package fleet

import (
	"fmt"
	"math"
	"sort"

	"edgereasoning/internal/engine"
	"edgereasoning/internal/faults"
)

// RetryPolicy re-admits crash-aborted requests through the shared
// ingress. A nil Config.Retry drops aborted work on the floor — the
// no-recovery baseline the drills experiment compares against.
type RetryPolicy struct {
	// MaxAttempts bounds total dispatch attempts per request, the first
	// included (default 3).
	MaxAttempts int
	// Backoff is the wait before a request's first re-admission,
	// doubling with every further abort (default 0.5 s).
	Backoff float64
	// Hedge skips the backoff on the first re-admission — an immediate
	// hedged retry against the crashed attempt; later attempts back off
	// exponentially from Backoff as usual.
	Hedge bool
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.Backoff <= 0 {
		p.Backoff = 0.5
	}
	return p
}

func (p RetryPolicy) validate() error {
	if math.IsNaN(p.Backoff) || math.IsInf(p.Backoff, 0) || p.Backoff < 0 {
		return fmt.Errorf("fleet: retry Backoff must be finite and non-negative, got %v", p.Backoff)
	}
	return nil
}

// HealthConfig enables health-aware routing: each replica carries a
// consecutive-failure circuit breaker, and the router steers new work
// away from replicas it knows to be stalled. A nil Config.Health routes
// blind — crashes still make a replica physically unroutable while it
// is down, but nothing remembers that it keeps failing.
type HealthConfig struct {
	// FailureThreshold opens a replica's breaker after this many
	// consecutive crashes (default 1).
	FailureThreshold int
	// ProbeAfter is the open-to-half-open delay, measured from the
	// moment the replica is back up (restart instant): the breaker then
	// admits exactly one probe request; a probe whose estimated
	// completion passes without another crash closes the breaker, a
	// crash during the probe re-opens it. Default 5 s.
	ProbeAfter float64
}

func (h HealthConfig) withDefaults() HealthConfig {
	if h.FailureThreshold <= 0 {
		h.FailureThreshold = 1
	}
	if h.ProbeAfter <= 0 {
		h.ProbeAfter = 5
	}
	return h
}

func (h HealthConfig) validate() error {
	if math.IsNaN(h.ProbeAfter) || math.IsInf(h.ProbeAfter, 0) || h.ProbeAfter < 0 {
		return fmt.Errorf("fleet: health ProbeAfter must be finite and non-negative, got %v", h.ProbeAfter)
	}
	return nil
}

// crashPoint is one compiled crash: down over [at, restart).
type crashPoint struct {
	at      float64
	restart float64 // absolute rejoin instant; +Inf when it never returns
}

// timeline is one replica's compiled fault view.
type timeline struct {
	crashes   []crashPoint // sorted ascending by at
	stalls    []engine.StallWindow
	throttles []engine.ThrottleWindow
	keepHost  bool
	// deadAt is the earliest no-restart crash instant (+Inf when every
	// crash restarts): from deadAt on the replica is gone for good.
	deadAt float64
}

// downAt reports whether the replica is crash-down at t, and until when.
func (tl *timeline) downAt(t float64) (bool, float64) {
	for _, c := range tl.crashes {
		if t >= c.at && t < c.restart {
			return true, c.restart
		}
	}
	return false, 0
}

// throttleAt returns the thermal-throttle slowdown factor active at t
// (1 when none; overlapping windows compound, matching the engine's
// drain-time stretch).
func (tl *timeline) throttleAt(t float64) float64 {
	f := 1.0
	for _, w := range tl.throttles {
		if t >= w.From && t < w.To && w.Factor > 1 {
			f *= w.Factor
		}
	}
	return f
}

// finishAfter integrates svc seconds of work starting at t across the
// replica's throttle windows: work inside a window runs Factor× slower,
// work outside runs at full speed. A flat whole-service stretch would
// overshoot badly for work that merely grazes a window.
func (tl *timeline) finishAfter(t, svc float64) float64 {
	rem := svc
	for rem > 0 {
		f := tl.throttleAt(t)
		// Advance to the next window boundary after t; the factor is
		// constant until then.
		next := math.Inf(1)
		for _, w := range tl.throttles {
			if w.From > t && w.From < next {
				next = w.From
			}
			if w.To > t && w.To < next {
				next = w.To
			}
		}
		if math.IsInf(next, 1) || t+rem*f <= next {
			return t + rem*f
		}
		rem -= (next - t) / f
		t = next
	}
	return t
}

// stallEnd returns the earliest instant >= t outside every stall window
// (windows may chain or overlap).
func (tl *timeline) stallEnd(t float64) float64 {
	for changed := true; changed; {
		changed = false
		for _, w := range tl.stalls {
			if t >= w.From && t < w.To {
				t = w.To
				changed = true
			}
		}
	}
	return t
}

// healthState is one replica's circuit breaker. State changes are
// applied at monotone dispatch-clock times by settle/strike/noteTake;
// blockedAt is pure, so the router may probe future instants freely.
type healthState struct {
	cfg         HealthConfig
	fails       int  // consecutive crashes
	open        bool // breaker open: no traffic before openUntil, then one probe
	openUntil   float64
	probing     bool // the half-open probe is outstanding
	probeID     string
	probeFinish float64
}

// strike records a crash at a replica that comes back up at backUpAt,
// reporting whether it freshly opened the breaker.
func (h *healthState) strike(backUpAt float64) bool {
	h.fails++
	h.probing = false
	h.probeID = ""
	if !h.open && h.fails >= h.cfg.FailureThreshold {
		h.open = true
		h.openUntil = backUpAt + h.cfg.ProbeAfter
		return true
	}
	if h.open {
		// A crash while open (the probe went down with it): push the
		// half-open horizon out from the new restart.
		h.openUntil = backUpAt + h.cfg.ProbeAfter
	}
	return false
}

// blockedAt reports whether the breaker blocks dispatch at t, and until
// when it does.
func (h *healthState) blockedAt(t float64) (bool, float64) {
	if !h.open {
		return false, 0
	}
	if t < h.openUntil {
		return true, h.openUntil
	}
	if h.probing && t < h.probeFinish {
		// Half-open admits exactly one probe; everyone else waits for
		// its verdict.
		return true, h.probeFinish
	}
	return false, 0
}

// settle closes the breaker once the outstanding probe's estimated
// completion has passed without a crash taking it down.
func (h *healthState) settle(t float64) {
	if h.open && h.probing && h.probeFinish <= t {
		h.open = false
		h.probing = false
		h.fails = 0
		h.probeID = ""
	}
}

// noteTake records a half-open dispatch as the breaker's probe.
func (h *healthState) noteTake(id string, t, estFinish float64) {
	if h.open && !h.probing && t >= h.openUntil {
		h.probing = true
		h.probeID = id
		h.probeFinish = estFinish
	}
}

// injection assembles the engine-level fault view of this replica's
// drain: its stall and throttle windows plus the crash-boundary cache
// wipes. Nil on fault-free replicas, keeping their drains byte-identical
// to a fault-free run.
func (r *replica) injection() *engine.FaultInjection {
	if r.tl == nil && len(r.wipes) == 0 {
		return nil
	}
	fx := &engine.FaultInjection{CrashWipes: r.wipes}
	if r.tl != nil {
		fx.Stalls = r.tl.stalls
		fx.Throttles = r.tl.throttles
	}
	if len(fx.Stalls) == 0 && len(fx.Throttles) == 0 && len(fx.CrashWipes) == 0 {
		return nil
	}
	return fx
}

// chaosEvent is one crash in the run's global, time-ordered sequence.
type chaosEvent struct {
	at, restart float64
	replica     int
}

// compileFaults attaches per-replica fault timelines from Config.Faults
// and the ReplicaConfig.CrashAt shorthand, returning the global crash
// sequence in processing order. Fault schedules target the configured
// replica set; autoscaler-provisioned replicas are fault-free.
func compileFaults(cfg Config, replicas []*replica) ([]chaosEvent, error) {
	keepHost := cfg.Faults != nil && cfg.Faults.HostSurvivesCrash
	tl := func(i int) *timeline {
		r := replicas[i]
		if r.tl == nil {
			r.tl = &timeline{keepHost: keepHost, deadAt: math.Inf(1)}
		}
		return r.tl
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(len(replicas)); err != nil {
			return nil, err
		}
		for _, ev := range cfg.Faults.Sorted() {
			switch ev.Kind {
			case faults.Crash:
				restart := math.Inf(1)
				if ev.Restart > 0 {
					restart = ev.At + ev.Restart
				}
				tl(ev.Replica).crashes = append(tl(ev.Replica).crashes, crashPoint{at: ev.At, restart: restart})
			case faults.Stall:
				tl(ev.Replica).stalls = append(tl(ev.Replica).stalls,
					engine.StallWindow{From: ev.At, To: ev.At + ev.Duration})
			case faults.Throttle:
				if ev.Factor > 1 {
					tl(ev.Replica).throttles = append(tl(ev.Replica).throttles,
						engine.ThrottleWindow{From: ev.At, To: ev.At + ev.Duration, Factor: ev.Factor})
				}
			}
		}
	}
	for i, r := range replicas {
		if c := r.cfg.CrashAt; c != 0 {
			if math.IsNaN(c) || math.IsInf(c, 0) || c < 0 {
				return nil, fmt.Errorf("fleet: replica %s CrashAt must be finite and non-negative, got %v", r.cfg.Name, c)
			}
			tl(i).crashes = append(tl(i).crashes, crashPoint{at: c, restart: math.Inf(1)})
		}
	}
	var seq []chaosEvent
	for i, r := range replicas {
		if r.tl == nil {
			continue
		}
		sort.SliceStable(r.tl.crashes, func(a, b int) bool { return r.tl.crashes[a].at < r.tl.crashes[b].at })
		for _, c := range r.tl.crashes {
			if math.IsInf(c.restart, 1) && c.at < r.tl.deadAt {
				r.tl.deadAt = c.at
			}
			seq = append(seq, chaosEvent{at: c.at, restart: c.restart, replica: i})
		}
		// Only crash-prone replicas pay the per-dispatch estimated-finish
		// bookkeeping the abort suffix is recovered from.
		r.trackEst = len(r.tl.crashes) > 0
	}
	sort.SliceStable(seq, func(a, b int) bool {
		if seq[a].at != seq[b].at {
			return seq[a].at < seq[b].at
		}
		return seq[a].replica < seq[b].replica
	})
	return seq, nil
}

// retryItem is one crash-aborted request waiting for re-admission; tr
// carries its original arrival so end-to-end latency accounting spans
// every attempt.
type retryItem struct {
	at float64
	tr engine.TimedRequest
}

// chaos owns the dispatch-time fault machinery for one run: the global
// crash sequence, the retry queue, and the recovery accounting. It is
// nil on fault-free runs, keeping the legacy dispatch path untouched.
type chaos struct {
	ro       *router
	retry    RetryPolicy
	retryOn  bool
	healthOn bool
	events   []chaosEvent
	next     int
	pending  []retryItem // sorted ascending by at; consumed from head
	head     int
	attempts map[string]int
	delays   *map[string]float64
	out      *Metrics
	ft       *fleetTracer // nil when tracing is off
}

func (cx *chaos) crashPending() bool { return cx.next < len(cx.events) }

func (cx *chaos) nextCrashAt() (float64, bool) {
	if cx.next < len(cx.events) {
		return cx.events[cx.next].at, true
	}
	return 0, false
}

func (cx *chaos) retryPending() bool { return cx.head < len(cx.pending) }

func (cx *chaos) nextRetryAt() (float64, bool) {
	if cx.head < len(cx.pending) {
		return cx.pending[cx.head].at, true
	}
	return 0, false
}

// popRetryUntil hands back the next re-admission due at or before t.
func (cx *chaos) popRetryUntil(t float64) (engine.TimedRequest, bool) {
	if cx.head >= len(cx.pending) || cx.pending[cx.head].at > t {
		return engine.TimedRequest{}, false
	}
	tr := cx.pending[cx.head].tr
	cx.pending[cx.head] = retryItem{}
	cx.head++
	return tr, true
}

// drainRetries empties the retry queue through drop — the permanent-
// outage path, where re-admission can no longer help.
func (cx *chaos) drainRetries(drop func(engine.TimedRequest)) {
	for cx.head < len(cx.pending) {
		drop(cx.pending[cx.head].tr)
		cx.pending[cx.head] = retryItem{}
		cx.head++
	}
}

// pushRetry inserts sorted by re-admission time, after equal keys.
func (cx *chaos) pushRetry(it retryItem) {
	if cx.head >= 64 && cx.head*2 >= len(cx.pending) {
		n := copy(cx.pending, cx.pending[cx.head:])
		for i := n; i < len(cx.pending); i++ {
			cx.pending[i] = retryItem{}
		}
		cx.pending = cx.pending[:n]
		cx.head = 0
	}
	i := cx.head + sort.Search(len(cx.pending)-cx.head, func(k int) bool {
		return cx.pending[cx.head+k].at > it.at
	})
	cx.pending = append(cx.pending, retryItem{})
	copy(cx.pending[i+1:], cx.pending[i:])
	cx.pending[i] = it
}

// processUpTo handles every crash event at or before t, in global time
// order, and settles the breakers at t. Idempotent and monotone: the
// dispatch loop calls it at every clock advance, and a crash is always
// processed before any dispatch decision at or after its instant.
func (cx *chaos) processUpTo(t float64) {
	for cx.next < len(cx.events) && cx.events[cx.next].at <= t {
		ev := cx.events[cx.next]
		cx.next++
		cx.crash(ev)
	}
	if cx.healthOn && !math.IsInf(t, 1) {
		for _, r := range cx.ro.replicas {
			if r.hs != nil {
				r.hs.settle(t)
			}
		}
	}
}

// crash executes one crash event: abort the in-flight suffix of the
// replica's sub-stream, account the lost work, route each abort to the
// retry queue or the drop ledger, arm the cache wipe for the replica's
// first post-restart dispatch, strike its breaker, and purge its sticky
// sessions so they re-pin by warmth.
func (cx *chaos) crash(ev chaosEvent) {
	r := cx.ro.replicas[ev.replica]
	if r.hs != nil {
		// A probe that was estimated to finish before this crash
		// succeeded: settle it first, so the crash is a fresh strike
		// rather than a continuation of the old open.
		r.hs.settle(ev.at)
	}
	cx.out.Crashes++
	r.crashes++
	if cx.ft != nil {
		cx.ft.crashed(r.cfg.Name, ev.at)
	}
	cut := len(r.assigned)
	for cut > 0 && r.estFinish[cut-1] > ev.at {
		cut--
	}
	for i := cut; i < len(r.assigned); i++ {
		tr := r.assigned[i]
		svc := r.estService(tr)
		lost := 0.0
		if start := r.estFinish[i] - svc; start < ev.at {
			lost = math.Min(ev.at-start, svc)
			cx.out.LostWorkSeconds += lost
		}
		cx.out.Aborted++
		if cx.ft != nil {
			cx.ft.aborted(tr, ev.at, lost, r.cfg.Name, cx.attempts[tr.ID])
		}
		orig := tr
		if *cx.delays != nil {
			if d, ok := (*cx.delays)[tr.ID]; ok {
				// Undo the dispatch-time arrival adjustment so the retry
				// re-enters with its true arrival and the eventual
				// latency spans every attempt.
				orig.Arrival = tr.Arrival - d
				delete(*cx.delays, tr.ID)
			}
		}
		cx.requeue(orig, ev.at)
		r.assigned[i] = engine.TimedRequest{}
	}
	r.assigned = r.assigned[:cut]
	r.estFinish = r.estFinish[:cut]
	// Every surviving dispatch was estimated done by the crash instant,
	// so the outstanding-estimate list empties wholesale.
	r.finishes = r.finishes[:0]
	if !math.IsInf(ev.restart, 1) {
		r.estFreeAt = ev.restart
		r.idleFrom = ev.restart
		// The device KV cache dies with the crash: the first request
		// dispatched after the restart carries the wipe marker into the
		// replica's drain.
		r.pendingWipe = true
	}
	if r.hs != nil {
		backUp := ev.restart
		if math.IsInf(backUp, 1) {
			backUp = ev.at
		}
		if r.hs.strike(backUp) {
			cx.out.BreakerOpens++
			if cx.ft != nil {
				cx.ft.breaker.Add(ev.at, 1)
			}
		}
	}
	cx.ro.purge(ev.replica)
}

// requeue routes one aborted request: back into the ingress at its
// backoff-delayed re-admission time when the retry policy allows, to the
// drop ledger otherwise.
func (cx *chaos) requeue(tr engine.TimedRequest, at float64) {
	dropIt := func() {
		cx.out.AbortedDropped++
		cx.out.Dropped++
		if tr.Deadline > 0 {
			cx.out.DeadlinesTotal++
		}
	}
	if !cx.retryOn {
		dropIt()
		return
	}
	if cx.attempts == nil {
		cx.attempts = make(map[string]int)
	}
	n := cx.attempts[tr.ID] + 1 // the n-th abort of this request
	cx.attempts[tr.ID] = n
	if n+1 > cx.retry.MaxAttempts {
		dropIt()
		return
	}
	back := cx.retry.Backoff * math.Pow(2, float64(n-1))
	if cx.retry.Hedge && n == 1 {
		back = 0
	}
	re := at + back
	if tr.Deadline > 0 && re >= tr.Deadline {
		// The retry budget is the deadline itself: a re-admission that
		// already overruns it could only ever be served late.
		dropIt()
		return
	}
	cx.out.Retried++
	if cx.ft != nil {
		cx.ft.retryScheduled(tr, at, re, n)
	}
	cx.pushRetry(retryItem{at: re, tr: tr})
}
