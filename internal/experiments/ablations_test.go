package experiments

import (
	"strings"
	"testing"
)

func TestAblationIDsRegistered(t *testing.T) {
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range []string{"specdec", "offload", "powermodes", "batchsweep", "saturation"} {
		if !have[id] {
			t.Errorf("ablation %q not registered", id)
		}
	}
}

// The batch sweep must show monotone cost decline and user-TPS decline.
func TestBatchSweepMonotonicity(t *testing.T) {
	tb := findTable(t, runOne(t, "batchsweep"), "batchsweep")
	var prevCost, prevUserTPS, prevWall float64
	for i, row := range tb.Rows {
		wall := cellFloat(t, row[1])
		userTPS := cellFloat(t, row[2])
		aggTPS := cellFloat(t, row[3])
		costPerM := cellFloat(t, row[5])
		if i > 0 {
			if costPerM >= prevCost {
				t.Errorf("batch %s: $/1M %.3f did not fall below %.3f", row[0], costPerM, prevCost)
			}
			if userTPS > prevUserTPS+0.5 {
				t.Errorf("batch %s: user TPS should fall with batching", row[0])
			}
			if wall >= prevWall {
				t.Errorf("batch %s: wall time should fall with batching", row[0])
			}
		}
		if aggTPS < userTPS-0.5 {
			t.Errorf("aggregate TPS %.1f below user TPS %.1f", aggTPS, userTPS)
		}
		prevCost, prevUserTPS, prevWall = costPerM, userTPS, wall
	}
}

// Power-mode derating: lower caps mean slower decode but the energy per
// token stays in a sane band.
func TestPowerModesDerating(t *testing.T) {
	tb := findTable(t, runOne(t, "powermodes"), "powermodes")
	// Collect TBT per (model, mode).
	tbt := map[string]map[string]float64{}
	for _, row := range tb.Rows {
		m, mode := row[0], row[1]
		if tbt[m] == nil {
			tbt[m] = map[string]float64{}
		}
		tbt[m][mode] = cellFloat(t, row[2])
	}
	for m, modes := range tbt {
		if modes["15W"] <= modes["MAXN"] {
			t.Errorf("%s: 15W TBT (%.1f) must exceed MAXN (%.1f)", m, modes["15W"], modes["MAXN"])
		}
		if modes["30W"] <= modes["50W"] {
			t.Errorf("%s: 30W must be slower than 50W", m)
		}
	}
}

// Speculative decoding: high acceptance with the 14B target must win.
func TestSpecdecShowsWins(t *testing.T) {
	tb := findTable(t, runOne(t, "specdec"), "specdec")
	bestSpeedup := 0.0
	for _, row := range tb.Rows {
		if row[0] == "dsr1-qwen-14b" {
			if s := cellFloat(t, row[5]); s > bestSpeedup {
				bestSpeedup = s
			}
		}
	}
	if bestSpeedup < 1.5 {
		t.Errorf("best 14B speculative speedup = %.2f, expected > 1.5x with a 1.5B draft", bestSpeedup)
	}
}

// Offload ablation: reductions grow with overlap; the overhead-bound 1.5B
// gains the most (up to ~30%), the bandwidth-bound 14B the least.
func TestOffloadReductions(t *testing.T) {
	tb := findTable(t, runOne(t, "offload"), "offload")
	maxByModel := map[string]float64{}
	for _, row := range tb.Rows {
		red := cellFloat(t, row[3])
		if red < -0.01 || red > 35 {
			t.Errorf("offload reduction %.1f%% out of range in row %v", red, row)
		}
		if red > maxByModel[row[0]] {
			maxByModel[row[0]] = red
		}
	}
	if maxByModel["dsr1-qwen-1.5b"] <= maxByModel["dsr1-qwen-14b"] {
		t.Errorf("overhead-bound 1.5B (%.1f%%) should gain more than the 14B (%.1f%%)",
			maxByModel["dsr1-qwen-1.5b"], maxByModel["dsr1-qwen-14b"])
	}
}

// Saturation thresholds fall in the paper's few-hundred-token range.
func TestSaturationThresholds(t *testing.T) {
	tb := findTable(t, runOne(t, "saturation"), "saturation")
	if len(tb.Rows) < 4 {
		t.Fatalf("want 4 models, got %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		sat := cellFloat(t, row[1])
		if sat < 100 || sat > 1500 {
			t.Errorf("%s: saturation %.0f tokens outside plausible range", row[0], sat)
		}
	}
	// The 1.5B-class saturates earlier than the 8B.
	var small, eightB float64
	for _, row := range tb.Rows {
		switch row[0] {
		case "dsr1-qwen-1.5b":
			small = cellFloat(t, row[1])
		case "dsr1-llama-8b":
			eightB = cellFloat(t, row[1])
		}
	}
	if small >= eightB {
		t.Errorf("1.5B should saturate before the 8B (%.0f vs %.0f)", small, eightB)
	}
}

// Every ablation table carries its experimental note or sane title.
func TestAblationTitlesMentionContext(t *testing.T) {
	for _, id := range []string{"specdec", "offload"} {
		tables := runOne(t, id)
		joined := tables[0].Title + strings.Join(tables[0].Notes, " ")
		if !strings.Contains(joined, "§VI") && !strings.Contains(joined, "ablation") {
			t.Errorf("%s: table should reference its §VI provenance", id)
		}
	}
}
