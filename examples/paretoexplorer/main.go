// Pareto explorer: sweep every calibrated {model, token-control, scaling}
// recipe on MMLU-Redux, print the accuracy-latency Pareto frontier, and
// identify the paper's three operating regimes (§V-A): sub-5s budgets are
// exclusively served by 1.5B-class models, mid budgets by direct
// non-reasoning models, and open budgets by DSR1-Qwen-14B.
package main

import (
	"fmt"
	"log"

	"edgereasoning"
)

func main() {
	platform := edgereasoning.NewOrinPlatform()

	all, err := platform.Recipes(edgereasoning.MMLURedux)
	if err != nil {
		log.Fatal(err)
	}
	front, err := platform.Frontier(edgereasoning.MMLURedux)
	if err != nil {
		log.Fatal(err)
	}
	onFrontier := make(map[string]bool, len(front))
	for _, r := range front {
		onFrontier[r.Label()] = true
	}

	fmt.Printf("%d recipes evaluated on %s; %d on the Pareto frontier\n\n",
		len(all), platform.DeviceName(), len(front))
	fmt.Println("  latency   accuracy   $/1M      recipe")
	fmt.Println("  -------   --------   -----     ------")
	for _, r := range all {
		marker := " "
		if onFrontier[r.Label()] {
			marker = "*"
		}
		fmt.Printf("%s %7.2fs   %5.1f%%     $%.3f   %s\n",
			marker, r.Latency, r.Accuracy*100, r.CostPerM, r.Label())
	}

	fmt.Println("\nOperating regimes (paper §V-A):")
	regimes := []struct {
		name   string
		lo, hi float64
	}{
		{"sub-5s (real-time)", 0, 5},
		{"5-30s (interactive)", 5, 30},
		{">30s (deliberative)", 30, 1e9},
	}
	for _, reg := range regimes {
		best := edgereasoning.Recipe{Accuracy: -1}
		for _, r := range all {
			if r.Latency > reg.lo && r.Latency <= reg.hi && r.Accuracy > best.Accuracy {
				best = r
			}
		}
		if best.Accuracy < 0 {
			fmt.Printf("  %-22s (none feasible)\n", reg.name)
			continue
		}
		fmt.Printf("  %-22s %s (%.1f%% @ %.1fs)\n", reg.name, best.Label(), best.Accuracy*100, best.Latency)
	}
}
