// Quickstart: deploy a reasoning model on the simulated Jetson AGX Orin,
// predict its latency with the fitted analytical model (Eqn 3), run one
// request through the serving engine, and evaluate it on MMLU-Redux.
package main

import (
	"fmt"
	"log"
	"time"

	"edgereasoning"
)

func main() {
	platform := edgereasoning.NewOrinPlatform()
	fmt.Printf("Platform: %s\n\n", platform.DeviceName())

	// Deploy DSR1-Qwen-14B: verifies it fits the 64 GB of LPDDR5 and fits
	// the analytic latency model against the simulator.
	dep, err := platform.Deploy(edgereasoning.DSR1Qwen14B)
	if err != nil {
		log.Fatal(err)
	}

	// The fitted model answers latency questions in microseconds — the
	// paper's reason for building it (a full hardware sweep takes days).
	fmt.Println("Analytical latency model (Eqn 3):")
	for _, out := range []int{64, 256, 1024} {
		fmt.Printf("  180-token prompt, %4d output tokens -> %6.1f s\n",
			out, dep.PredictLatency(180, out))
	}
	fmt.Printf("  time between tokens at 512 context: %.3f s\n\n", dep.PredictTBT(512))

	// Invert it: how many tokens fit a 20-second deadline? (Takeaway #6)
	budget := 20 * time.Second
	fmt.Printf("Within %s the 14B can decode at most %d tokens.\n\n",
		budget, dep.MaxTokensWithin(180, budget))

	// Run one request end to end through the vLLM-style engine: paged KV
	// cache, simulated kernels, power integration.
	gen, err := dep.Generate(180, 256)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("One simulated request (engine):")
	fmt.Printf("  prefill %.2f s + decode %.1f s = %.1f s total\n",
		gen.PrefillTime, gen.DecodeTime, gen.TotalTime())
	fmt.Printf("  energy %.0f J at %.1f W average\n\n", gen.Energy, gen.AvgPower)

	// Evaluate the model twin on MMLU-Redux under a 256-token hard limit.
	res, err := dep.Evaluate(edgereasoning.MMLURedux, edgereasoning.Hard(256), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MMLU-Redux under a 256-token hard limit:\n")
	fmt.Printf("  accuracy %.1f%%, %.0f tokens/question, %.1f s/question\n",
		res.Accuracy*100, res.MeanTokens, res.MeanLatency)
}
