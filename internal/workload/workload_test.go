package workload

import (
	"math"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	p := InteractiveAssistant(0.2, 50)
	a, err := Generate(p, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Request != b[i].Request || a[i].Arrival != b[i].Arrival || a[i].Deadline != b[i].Deadline {
			t.Fatal("same seed must reproduce the stream")
		}
	}
}

func TestGenerateArrivalRate(t *testing.T) {
	const qps = 0.5
	reqs, err := Generate(InteractiveAssistant(qps, 2000), 1)
	if err != nil {
		t.Fatal(err)
	}
	span := reqs[len(reqs)-1].Arrival - reqs[0].Arrival
	measured := float64(len(reqs)-1) / span
	if math.Abs(measured-qps)/qps > 0.10 {
		t.Errorf("measured rate %.3f, want %.2f", measured, qps)
	}
	// Arrivals strictly increasing.
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival <= reqs[i-1].Arrival {
			t.Fatal("arrivals must increase")
		}
	}
}

func TestGenerateLengthMeans(t *testing.T) {
	p := InteractiveAssistant(1, 5000)
	reqs, err := Generate(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	var prompt, output float64
	for _, r := range reqs {
		prompt += float64(r.PromptTokens)
		output += float64(r.OutputTokens)
	}
	n := float64(len(reqs))
	if math.Abs(prompt/n-p.PromptMean)/p.PromptMean > 0.05 {
		t.Errorf("prompt mean %.1f, want %.0f", prompt/n, p.PromptMean)
	}
	if math.Abs(output/n-p.OutputMean)/p.OutputMean > 0.05 {
		t.Errorf("output mean %.1f, want %.0f", output/n, p.OutputMean)
	}
}

func TestGenerateDeadlines(t *testing.T) {
	p := InteractiveAssistant(1, 100)
	p.DeadlineSlack = 5
	p.DeadlineSlackMax = 50
	reqs, err := Generate(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[float64]bool{}
	for _, r := range reqs {
		slack := r.Deadline - r.Arrival
		if slack < 5 || slack > 50 {
			t.Fatalf("slack %.2f outside [5, 50]", slack)
		}
		distinct[math.Round(slack)] = true
	}
	if len(distinct) < 10 {
		t.Error("slacks should vary across the population")
	}
}

func TestGenerateNoDeadlinesByDefault(t *testing.T) {
	reqs, err := Generate(InteractiveAssistant(1, 10), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		if r.Deadline != 0 {
			t.Fatal("default profile must not assign deadlines")
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Profile{
		{QPS: 0, N: 10, PromptMean: 100, OutputMean: 10},
		{QPS: 1, N: 0, PromptMean: 100, OutputMean: 10},
		{QPS: 1, N: 10, PromptMean: 0, OutputMean: 10},
		{QPS: 1, N: 10, PromptMean: 100, OutputMean: 0},
	}
	for i, p := range bad {
		if _, err := Generate(p, 1); err == nil {
			t.Errorf("profile %d should fail validation", i)
		}
	}
}

func TestReasoningBatchProfile(t *testing.T) {
	p := ReasoningBatch(0.01, 5)
	if p.OutputMean < 1000 {
		t.Error("reasoning profile should have long outputs")
	}
	if _, err := Generate(p, 1); err != nil {
		t.Fatal(err)
	}
}
