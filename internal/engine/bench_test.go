package engine

import (
	"fmt"
	"testing"

	"edgereasoning/internal/hw"
	"edgereasoning/internal/model"
)

// benchEngine builds a fresh 8B/Orin engine outside the timed region.
func benchEngine(b *testing.B) *Engine {
	b.Helper()
	e, err := New(Config{Spec: model.MustLookup(model.DSR1Llama8B), Device: hw.JetsonAGXOrin64GB()})
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// benchStream is the hot-loop workload: a contended open-loop stream of
// long reasoning generations, so the run is dominated by the decode loop
// (KV appends, admission accounting, batch bookkeeping) rather than by
// engine construction.
func benchStream() []TimedRequest {
	reqs := make([]TimedRequest, 16)
	for i := range reqs {
		reqs[i] = TimedRequest{
			Request: Request{
				ID:           fmt.Sprintf("r%d", i),
				PromptTokens: 256,
				OutputTokens: 2048 + 64*i,
			},
			Arrival:  0.25 * float64(i),
			Deadline: 600,
		}
	}
	return reqs
}

// BenchmarkServeHotLoop is the perf-trajectory headline target tracked in
// BENCH_serve.json: one full open-loop Serve over ~35k generated tokens
// at batch 8. scripts/bench.sh records it; the CI benchcheck job gates
// allocs/op regressions against the committed baseline.
func BenchmarkServeHotLoop(b *testing.B) {
	reqs := benchStream()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := benchEngine(b)
		b.StartTimer()
		sm, err := e.Serve(reqs, 8, FCFS)
		if err != nil {
			b.Fatal(err)
		}
		if len(sm.Requests) != len(reqs) {
			b.Fatalf("served %d of %d", len(sm.Requests), len(reqs))
		}
	}
}

// BenchmarkRunHotLoop covers the closed-loop (Run) variant of the same
// decode-dominated workload.
func BenchmarkRunHotLoop(b *testing.B) {
	timed := benchStream()
	reqs := make([]Request, len(timed))
	for i, tr := range timed {
		reqs[i] = tr.Request
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := benchEngine(b)
		b.StartTimer()
		bm, err := e.Run(reqs, 8)
		if err != nil {
			b.Fatal(err)
		}
		if len(bm.Requests) != len(reqs) {
			b.Fatalf("ran %d of %d", len(bm.Requests), len(reqs))
		}
	}
}
