package core

import (
	"fmt"

	"edgereasoning/internal/fit"
	"edgereasoning/internal/gpusim"
	"edgereasoning/internal/model"
	"edgereasoning/internal/power"
	"edgereasoning/internal/stats"
)

// PowerModel is the Eqn 4/6 form: constant power below a sequence-length
// breakpoint, logarithmic growth above it.
type PowerModel struct {
	Curve fit.Piecewise
}

// Predict returns modeled watts at a sequence length.
func (p PowerModel) Predict(n int) float64 { return p.Curve.Eval(float64(n)) }

// EnergyModel is the Eqn 5 form for energy per token: exponential decay at
// short lengths (fixed overheads amortize), logarithmic growth at long
// lengths (attention-bound regime). For models whose measured range never
// reaches the log regime the high branch simply extends the fit.
type EnergyModel struct {
	Curve fit.Piecewise
}

// PredictPerToken returns modeled joules per token at a sequence length.
func (e EnergyModel) PredictPerToken(n int) float64 { return e.Curve.Eval(float64(n)) }

// FitPrefillPower sweeps prefill power over input lengths and fits the
// piecewise constant/log form of Eqn 4.
func FitPrefillPower(sim *gpusim.Sim, meter *power.Meter, a model.Arch, dt model.DType) (PowerModel, error) {
	var xs, ys []float64
	for _, i := range sweepLengths(128, 4096) {
		res := sim.Prefill(a, dt, i, 1)
		xs = append(xs, float64(i))
		ys = append(ys, meter.ObservedPower(res))
	}
	pw, err := fit.PiecewiseConstLogFit(xs, ys)
	if err != nil {
		return PowerModel{}, fmt.Errorf("core: prefill power fit: %w", err)
	}
	return PowerModel{Curve: pw}, nil
}

// FitDecodePower sweeps decode power over output lengths at a fixed
// 512-token input (the paper's protocol, Fig 5a) and fits Eqn 6.
func FitDecodePower(sim *gpusim.Sim, meter *power.Meter, a model.Arch, dt model.DType) (PowerModel, error) {
	var xs, ys []float64
	for _, o := range sweepLengths(16, 2048) {
		res := sim.DecodeRun(a, dt, 512, o, 1)
		xs = append(xs, float64(o))
		ys = append(ys, meter.Power(res))
	}
	pw, err := fit.PiecewiseConstLogFit(xs, ys)
	if err != nil {
		return PowerModel{}, fmt.Errorf("core: decode power fit: %w", err)
	}
	return PowerModel{Curve: pw}, nil
}

// FitPrefillEnergy fits the per-token prefill energy model of Eqn 5
// (exponential decay then log growth, Table XX).
func FitPrefillEnergy(sim *gpusim.Sim, meter *power.Meter, a model.Arch, dt model.DType) (EnergyModel, error) {
	var xs, ys []float64
	for _, i := range sweepLengths(16, 4096) {
		res := sim.Prefill(a, dt, i, 1)
		xs = append(xs, float64(i))
		ys = append(ys, meter.EnergyPerToken(res))
	}
	pw, err := fit.PiecewiseExpLogFit(xs, ys)
	if err != nil {
		return EnergyModel{}, fmt.Errorf("core: prefill energy fit: %w", err)
	}
	return EnergyModel{Curve: pw}, nil
}

// FitDecodeEnergy fits decode energy per token over output length at
// 512-token input (Table XXI's log form).
func FitDecodeEnergy(sim *gpusim.Sim, meter *power.Meter, a model.Arch, dt model.DType) (EnergyModel, error) {
	var xs, ys []float64
	for _, o := range sweepLengths(64, 2048) {
		res := sim.DecodeRun(a, dt, 512, o, 1)
		xs = append(xs, float64(o))
		ys = append(ys, meter.EnergyPerToken(res))
	}
	ll, err := fit.LogLinearFit(xs, ys)
	if err != nil {
		return EnergyModel{}, fmt.Errorf("core: decode energy fit: %w", err)
	}
	return EnergyModel{Curve: fit.Piecewise{Breakpoint: 0, Low: ll, High: ll}}, nil
}

// ValidateEnergyModel replays held-out (I, O) workloads and reports the
// MAPE of total-energy prediction (Table VIII protocol). The model's total
// energy is per-token decode energy × O plus per-token prefill energy × I.
func ValidateEnergyModel(sim *gpusim.Sim, meter *power.Meter, a model.Arch, dt model.DType,
	prefillE, decodeE EnergyModel, workload [][2]int) float64 {
	var pred, act []float64
	for _, w := range workload {
		i, o := w[0], w[1]
		pres := sim.Prefill(a, dt, i, 1)
		dres := sim.DecodeRun(a, dt, i, o, 1)
		actual := meter.Energy(pres) + meter.Energy(dres)
		modeled := prefillE.PredictPerToken(i)*float64(i) + decodeE.PredictPerToken(o)*float64(o)
		pred = append(pred, modeled)
		act = append(act, actual)
	}
	return stats.MAPE(pred, act)
}

// sweepLengths produces a geometric-ish sweep from lo to hi.
func sweepLengths(lo, hi int) []int {
	var out []int
	step := lo
	for v := lo; v <= hi; v += step {
		out = append(out, v)
		if v >= 8*step {
			step *= 2
		}
	}
	return out
}
