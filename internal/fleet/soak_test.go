package fleet

import (
	"testing"

	"edgereasoning/internal/workload"
)

// TestSoakStreamConservation streams a large open-loop workload through
// the fleet ingress — generated lazily, never materialized — and checks
// the conservation invariant end to end: every request that entered the
// ingress is accounted for as served or dropped. Run under -race in CI
// (the soak-smoke step) it also exercises the concurrent replica drain
// at a scale the unit tests never reach. The deadline slack plus shed
// admission keeps both sides of the ledger non-trivial: an overloaded
// pool must actually drop work for the invariant to mean anything.
func TestSoakStreamConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("1e5-request soak; skipped in -short")
	}
	const requests = 100_000
	// 4 QPS across two small replicas is a sustained overload; the tight
	// slack makes shed admission exercise the Dropped path.
	profile := workload.InteractiveAssistant(4, requests)
	profile.DeadlineSlack = 2
	profile.DeadlineSlackMax = 6
	src, err := workload.NewSource(profile, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := homogeneousFleet(2, LeastQueue)
	cfg.Admission = Shed
	m, err := ServeSource(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	if m.Offered != requests {
		t.Fatalf("Offered = %d, want %d (stream truncated?)", m.Offered, requests)
	}
	if m.Served+m.Dropped != m.Offered {
		t.Fatalf("conservation violated: Served %d + Dropped %d != Offered %d",
			m.Served, m.Dropped, m.Offered)
	}
	if m.Served == 0 || m.Dropped == 0 {
		t.Fatalf("degenerate soak: Served %d, Dropped %d — want both paths exercised", m.Served, m.Dropped)
	}
}
