package experiments

import (
	"errors"
	"fmt"

	"edgereasoning/internal/capacity"
	"edgereasoning/internal/fleet"
	"edgereasoning/internal/model"
	"edgereasoning/internal/workload"
)

func init() {
	register("saturate", saturateStudy)
}

// saturateStudy is the capacity-planning experiment: for each fleet
// size, binary-search the offered QPS to the saturation knee — the
// highest load at which the SLO (a p99 latency bound, or a deadline
// hit-rate floor) still holds. Every probe streams a freshly generated
// open-loop workload through the fleet ingress; nothing is
// materialized. The verify table locks the queueing-theory shape (knee
// grows with fleet size, brackets are tight) and the analyzer's typed
// edge behavior: an unreachable SLO reports ErrSLONeverMet instead of
// searching forever, an unsaturable bracket reports ErrSLOAlwaysMet
// instead of calling the ceiling "capacity".
func saturateStudy(opts Options) ([]Table, error) {
	metric := opts.SatMetric
	if metric == "" {
		metric = "p99"
	}
	if metric != "p99" && metric != "hitrate" {
		return nil, fmt.Errorf("saturate: unknown metric %q (want p99 or hitrate)", metric)
	}
	slo := opts.SatSLO
	if slo <= 0 {
		if metric == "p99" {
			// The interactive-assistant tail is heavy: even an unloaded
			// replica shows ~2.5s p99 (one long-form response). The default
			// objective doubles that, so the knee measures queueing
			// headroom rather than the workload's intrinsic tail.
			slo = 5.0 // seconds
		} else {
			slo = 0.95 // deadline hit-rate floor
		}
	}
	n := opts.SatRequests
	if n <= 0 {
		n = 240
		if opts.Quick {
			n = 120
		}
	}
	devices, err := fleet.ParseDevices(opts.FleetDevices)
	if err != nil {
		return nil, err
	}
	spec := model.MustLookup(model.Qwen25_1_5Bit)

	// One probe = one streamed serve run at the offered load. The
	// workload is drawn fresh from the same seed each time (arrival
	// spacing scales with QPS), pulled lazily by the ingress.
	probeFor := func(replicas int, sloAt float64) capacity.Probe {
		return func(qps float64) (capacity.Sample, error) {
			profile := workload.InteractiveAssistant(qps, n)
			if metric == "hitrate" {
				profile.DeadlineSlack = 3
				profile.DeadlineSlackMax = 8
			}
			src, err := workload.NewSource(profile, opts.Seed)
			if err != nil {
				return capacity.Sample{}, err
			}
			m, err := fleet.ServeSource(fleet.Config{
				Replicas: fleet.HeterogeneousReplicas(replicas, devices, spec),
				Policy:   fleet.LeastQueue,
			}, src)
			if err != nil {
				return capacity.Sample{}, err
			}
			if metric == "hitrate" {
				hr := m.HitRate()
				return capacity.Sample{Value: hr, Met: hr >= sloAt}, nil
			}
			return capacity.Sample{Value: m.P99Latency, Met: m.P99Latency <= sloAt}, nil
		}
	}
	searchOpts := capacity.Options{MinQPS: 0.25, MaxQPS: 256, Resolution: 0.05, MaxProbes: 24}

	sloLabel := fmt.Sprintf("p99 <= %.2fs", slo)
	valueCol := "p99_at_knee_s"
	if metric == "hitrate" {
		sloLabel = fmt.Sprintf("hit rate >= %.0f%%", slo*100)
		valueCol = "hit_rate_at_knee_pct"
	}
	knees := Table{
		ID: "saturate",
		Title: fmt.Sprintf("Saturation knees: offered QPS vs fleet size under %s (Qwen2.5-1.5B-it, %d-request probes)",
			sloLabel, n),
		Columns: []string{"replicas", "knee_qps", valueCol, "violated_at_qps", "probes"},
		Notes: []string{
			"knee_qps is the highest probed load meeting the SLO; the true knee lies in (knee_qps, violated_at_qps]",
			"devices cycle " + opts.FleetDevices + defaultDeviceNote(opts.FleetDevices),
		},
	}
	sizes := []int{1, 2, 4}
	results := make([]capacity.Knee, 0, len(sizes))
	for _, replicas := range sizes {
		k, err := capacity.FindKnee(probeFor(replicas, slo), searchOpts)
		if err != nil {
			return nil, fmt.Errorf("saturate: %d replicas: %w", replicas, err)
		}
		results = append(results, k)
		v := f2(k.Value)
		if metric == "hitrate" {
			v = f1(k.Value * 100)
		}
		knees.AddRow(di(replicas), f2(k.QPS), v, f2(k.ViolatedQPS), di(len(k.Probes)))
	}

	check := func(ok bool) string {
		if ok {
			return "pass"
		}
		return "FAIL"
	}
	verify := Table{
		ID:      "saturate-verify",
		Title:   "Saturate verify: knee scaling, bracket tightness, and analyzer edge behavior",
		Columns: []string{"claim", "observed", "check"},
		Notes: []string{
			"capacity must not shrink with fleet size; brackets must close to the search resolution",
			"the analyzer must fail typed — never hang — when the SLO is unreachable or never stressed",
		},
	}
	monotone := true
	for i := 1; i < len(results); i++ {
		if results[i].QPS < results[i-1].QPS {
			monotone = false
		}
	}
	verify.AddRow("knee QPS non-decreasing in fleet size",
		fmt.Sprintf("%s -> %s -> %s", f2(results[0].QPS), f2(results[1].QPS), f2(results[2].QPS)),
		check(monotone))
	tight := true
	for _, k := range results {
		if !(k.QPS < k.ViolatedQPS && k.ViolatedQPS-k.QPS <= searchOpts.Resolution*k.QPS+1e-9) {
			tight = false
		}
	}
	verify.AddRow(fmt.Sprintf("brackets closed to %.0f%% resolution", searchOpts.Resolution*100),
		fmt.Sprintf("widest %.3f QPS", widestBracket(results)), check(tight))
	bounded := true
	for _, k := range results {
		if len(k.Probes) > searchOpts.MaxProbes {
			bounded = false
		}
	}
	verify.AddRow(fmt.Sprintf("probe budget respected (<= %d)", searchOpts.MaxProbes),
		fmt.Sprintf("max %d", maxProbes(results)), check(bounded))

	// Edge legs: drive the analyzer into both terminal conditions on the
	// real fleet probe and verify the typed errors come back.
	_, errNever := capacity.FindKnee(probeFor(1, impossibleSLO(metric)), capacity.Options{
		MinQPS: 0.25, MaxQPS: 1, MaxProbes: 4})
	verify.AddRow("unreachable SLO -> ErrSLONeverMet",
		errString(errNever), check(errors.Is(errNever, capacity.ErrSLONeverMet)))
	_, errAlways := capacity.FindKnee(probeFor(1, trivialSLO(metric)), capacity.Options{
		MinQPS: 0.25, MaxQPS: 0.5, MaxProbes: 4})
	verify.AddRow("never-stressed bracket -> ErrSLOAlwaysMet",
		errString(errAlways), check(errors.Is(errAlways, capacity.ErrSLOAlwaysMet)))

	return []Table{knees, verify}, nil
}

// impossibleSLO is an objective no configuration can meet (sub-ms p99,
// or a hit rate above 1).
func impossibleSLO(metric string) float64 {
	if metric == "hitrate" {
		return 1.1
	}
	return 1e-4
}

// trivialSLO is an objective no load within a small bracket can break.
func trivialSLO(metric string) float64 {
	if metric == "hitrate" {
		return 0
	}
	return 1e9
}

func errString(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}

func widestBracket(ks []capacity.Knee) float64 {
	w := 0.0
	for _, k := range ks {
		if d := k.ViolatedQPS - k.QPS; d > w {
			w = d
		}
	}
	return w
}

func maxProbes(ks []capacity.Knee) int {
	m := 0
	for _, k := range ks {
		if len(k.Probes) > m {
			m = len(k.Probes)
		}
	}
	return m
}
