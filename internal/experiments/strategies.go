package experiments

import (
	"fmt"

	"edgereasoning/internal/control"
	"edgereasoning/internal/core"
	"edgereasoning/internal/cost"
	"edgereasoning/internal/data"
	"edgereasoning/internal/engine"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/llm"
	"edgereasoning/internal/model"
)

func init() {
	register("fig1", fig1Tradeoff)
	register("table2", table2ModelComparison)
	register("table3", table3EdgeVsCloud)
	register("fig6", figAccuracyVsTokens)
	register("fig7", figAccuracyVsLatency)
	register("fig8", figAccuracyVsCost)
	register("table10", table10BaseGrid)
	register("table11", table11BudgetGrid)
	register("pareto", paretoRegimes)
}

// gridCandidates runs the planner once over MMLU-Redux: the full
// (model × config) strategy grid behind Figs 6–8 and Tables X/XI.
func gridCandidates(opts Options) ([]core.Candidate, error) {
	p, err := core.NewPlanner(hw.JetsonAGXOrin64GB(), data.MMLURedux, opts.Seed)
	if err != nil {
		return nil, err
	}
	return p.Candidates()
}

// fig1Tradeoff reproduces Fig 1: the discrete accuracy-latency scatter of
// unconstrained model choices.
func fig1Tradeoff(opts Options) ([]Table, error) {
	cands, err := gridCandidates(opts)
	if err != nil {
		return nil, err
	}
	t := Table{
		ID: "fig1", Title: "Discrete accuracy-latency tradeoffs (Base and Direct configurations)",
		Columns: []string{"model", "config", "latency_s", "accuracy_pct"},
	}
	for _, c := range cands {
		if (c.Policy.Kind == control.Base || c.Policy.Kind == control.Direct) && c.SF == 1 {
			t.AddRow(string(c.Model), c.Policy.Label(), f2(c.Latency), pct(c.Accuracy))
		}
	}
	return []Table{t}, nil
}

// table2ModelComparison reproduces Table II: reasoning vs non-reasoning
// models on 150 MMLU-Redux questions, end to end through the engine.
func table2ModelComparison(opts Options) ([]Table, error) {
	bank := data.MustLoad(data.MMLURedux, opts.Seed).Subsample(150)
	t := Table{
		ID: "table2", Title: "Lightweight reasoning vs non-reasoning models, 150 MMLU-Redux questions",
		Columns: []string{"model", "acc_pct", "time_s", "tps", "perf_per_w", "energy_j_per_q"},
	}
	type entry struct {
		id  model.ID
		pol control.Policy
	}
	lineup := []entry{
		{model.Gemma7Bit, control.DirectAnswer()},
		{model.Llama31_8Bit, control.DirectAnswer()},
		{model.Qwen25_7Bit, control.DirectAnswer()},
		{model.DSR1Qwen1_5B, control.BasePolicy()},
		{model.DSR1Llama8B, control.BasePolicy()},
		{model.DSR1Qwen14B, control.BasePolicy()},
	}
	for _, e := range lineup {
		spec := model.MustLookup(e.id)
		eng, err := engine.New(engine.Config{Spec: spec, Device: hw.JetsonAGXOrin64GB()})
		if err != nil {
			return nil, err
		}
		tw := llm.NewTwin(spec, bank, opts.Seed)
		var correct, tokens int
		var time, energy float64
		for _, q := range bank.Questions {
			g, err := tw.Generate(q, e.pol)
			if err != nil {
				return nil, err
			}
			m, err := eng.Generate(engine.Request{
				ID: fmt.Sprintf("q%d", q.Index), PromptTokens: q.PromptTokens, OutputTokens: g.OutputTokens,
			})
			if err != nil {
				return nil, err
			}
			if g.Correct {
				correct++
			}
			tokens += g.OutputTokens
			time += m.TotalTime()
			energy += m.Energy()
		}
		n := float64(bank.Size())
		tps := float64(tokens) / time
		avgPower := energy / time
		t.AddRow(spec.DisplayName, f1(float64(correct)/n*100), f1(time/n),
			f1(tps), f2(tps/avgPower), f1(energy/n))
	}
	return []Table{t}, nil
}

// table3EdgeVsCloud reproduces Table III and the §III-B cost derivation:
// DeepScaleR-1.5B on AIME2024, single-batch vs batch-30, against cloud
// API pricing.
func table3EdgeVsCloud(opts Options) ([]Table, error) {
	bank := data.MustLoad(data.AIME2024, opts.Seed)
	spec := model.MustLookup(model.DeepScaleR1_5)
	tw := llm.NewTwin(spec, bank, opts.Seed)
	var reqs []engine.Request
	totalOut := 0
	for _, q := range bank.Questions {
		g, err := tw.Generate(q, control.BasePolicy())
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, engine.Request{
			ID: fmt.Sprintf("aime%d", q.Index), PromptTokens: q.PromptTokens, OutputTokens: g.OutputTokens,
		})
		totalOut += g.OutputTokens
	}
	run := func(batch int) (engine.BatchMetrics, error) {
		eng, err := engine.New(engine.Config{Spec: spec, Device: hw.JetsonAGXOrin64GB()})
		if err != nil {
			return engine.BatchMetrics{}, err
		}
		cp := make([]engine.Request, len(reqs))
		copy(cp, reqs)
		return eng.Run(cp, batch)
	}
	b1, err := run(1)
	if err != nil {
		return nil, err
	}
	b30, err := run(30)
	if err != nil {
		return nil, err
	}
	rates := cost.PaperRates()
	bill1 := cost.Bill(rates, b1.TotalEnergy, b1.WallTime, b1.TotalTokens)
	bill30 := cost.Bill(rates, b30.TotalEnergy, b30.WallTime, b30.TotalTokens)
	beh := llm.MustCalibrated(spec.ID, data.AIME2024, "base")

	t := Table{
		ID: "table3", Title: "Costs of reasoning LLM deployments (AIME2024, DeepScaleR-1.5B on Orin)",
		Columns: []string{"metric", "o1-preview (cloud)", "deepscaler b=1", "deepscaler b=30"},
		Notes: []string{
			"paper measures 195,624 tokens / 4,358 s / $0.302 per 1M (b=1) and 398 s / $0.027 per 1M (b=30)",
		},
	}
	o1 := cost.PaperCloudPrices()[0]
	t.AddRow("accuracy_aime2024_pct", "40.0", f1(beh.Accuracy*100), f1(beh.Accuracy*100))
	t.AddRow("tokens_processed", "-", di(b1.TotalTokens), di(b30.TotalTokens))
	t.AddRow("wall_time_s", "-", f1(b1.WallTime), f1(b30.WallTime))
	t.AddRow("user_tps", f1(o1.UserTPS), f1(b1.UserTPS()), f1(b30.UserTPS()))
	t.AddRow("avg_power_w", "-", f1(b1.AvgPower()), f1(b30.AvgPower()))
	t.AddRow("price_output_per_1M", f2(o1.OutputPerMillion), f3(bill1.PerMillionTokens()), f3(bill30.PerMillionTokens()))
	t.AddRow("energy_component_per_1M", "-", f4(bill1.EnergyPerMillionTokens()), f4(bill30.EnergyPerMillionTokens()))
	t.AddRow("hardware_component_per_1M", "-", f4(bill1.HardwarePerMillionTokens()), f4(bill30.HardwarePerMillionTokens()))
	return []Table{t}, nil
}

// strategyFigure renders one of Figs 6/7/8: accuracy against the chosen
// x metric for every (model, config) point, split by panel the way the
// paper splits soft/hard/no-reasoning.
func strategyFigure(opts Options, id, title, xCol string, x func(core.Candidate) string) ([]Table, error) {
	cands, err := gridCandidates(opts)
	if err != nil {
		return nil, err
	}
	panels := []struct {
		suffix string
		keep   func(control.Policy) bool
	}{
		{"a", func(p control.Policy) bool { return p.Kind == control.Base || p.Kind == control.Soft }},
		{"b", func(p control.Policy) bool { return p.Kind == control.Base || p.Kind == control.Hard }},
		{"c", func(p control.Policy) bool {
			return p.Kind == control.Base || p.Kind == control.NoReason || p.Kind == control.Direct
		}},
	}
	var out []Table
	for _, panel := range panels {
		t := Table{
			ID: id + panel.suffix, Title: title + " (panel " + panel.suffix + ")",
			Columns: []string{"model", "config", xCol, "accuracy_pct"},
		}
		for _, c := range cands {
			if c.SF != 1 || !panel.keep(c.Policy) {
				continue
			}
			if c.Policy.Kind == control.Hard && c.Policy.Budget > 256 {
				continue // hard-512 is a Fig 9 anchor, not in Figs 6-8
			}
			t.AddRow(string(c.Model), c.Policy.Label(), x(c), pct(c.Accuracy))
		}
		out = append(out, t)
	}
	return out, nil
}

func figAccuracyVsTokens(opts Options) ([]Table, error) {
	return strategyFigure(opts, "fig6", "Accuracy vs average output tokens", "avg_tokens",
		func(c core.Candidate) string { return f1(c.MeanTokens) })
}

func figAccuracyVsLatency(opts Options) ([]Table, error) {
	return strategyFigure(opts, "fig7", "Accuracy vs latency", "latency_s",
		func(c core.Candidate) string { return f2(c.Latency) })
}

func figAccuracyVsCost(opts Options) ([]Table, error) {
	return strategyFigure(opts, "fig8", "Accuracy vs cost per 1M tokens", "cost_per_1M",
		func(c core.Candidate) string { return f3(c.CostPerM) })
}

// table10BaseGrid reproduces Table X: base, quantized, and direct rows.
func table10BaseGrid(opts Options) ([]Table, error) {
	cands, err := gridCandidates(opts)
	if err != nil {
		return nil, err
	}
	t := Table{
		ID: "table10", Title: "MMLU-Redux: Base, Quantized (W4), and Direct configurations",
		Columns: []string{"family", "model", "acc_pct", "avg_toks", "latency_s", "cost_per_1M"},
	}
	for _, c := range cands {
		if c.SF != 1 {
			continue
		}
		var family string
		switch {
		case c.Policy.Kind == control.Direct:
			family = "Direct"
		case c.Policy.Kind == control.Base && model.MustLookup(c.Model).IsQuantized():
			family = "Quantized"
		case c.Policy.Kind == control.Base:
			family = "Base"
		default:
			continue
		}
		t.AddRow(family, c.Display, pct(c.Accuracy), f1(c.MeanTokens), f2(c.Latency), f3(c.CostPerM))
	}
	return []Table{t}, nil
}

// table11BudgetGrid reproduces Table XI: budgeted decoding rows.
func table11BudgetGrid(opts Options) ([]Table, error) {
	cands, err := gridCandidates(opts)
	if err != nil {
		return nil, err
	}
	t := Table{
		ID: "table11", Title: "MMLU-Redux: budgeted decoding (hard/soft/NR)",
		Columns: []string{"model", "budget_type", "config", "acc_pct", "avg_toks", "latency_s", "cost_per_1M"},
	}
	for _, c := range cands {
		if c.SF != 1 {
			continue
		}
		var btype string
		switch c.Policy.Kind {
		case control.Soft:
			btype = "Soft"
		case control.Hard:
			btype = "Hard"
		case control.NoReason:
			btype = "NR"
		default:
			continue
		}
		if c.Policy.Kind == control.Hard && c.Policy.Budget > 256 {
			continue
		}
		t.AddRow(c.Display, btype, c.Policy.Label(), pct(c.Accuracy), f1(c.MeanTokens), f2(c.Latency), f3(c.CostPerM))
	}
	return []Table{t}, nil
}

// paretoRegimes reproduces the §V-A frontier analysis: the Pareto set and
// the three operating regimes.
func paretoRegimes(opts Options) ([]Table, error) {
	cands, err := gridCandidates(opts)
	if err != nil {
		return nil, err
	}
	front := core.ParetoFrontier(cands)
	ft := Table{
		ID: "pareto", Title: "Accuracy-latency Pareto frontier (MMLU-Redux)",
		Columns: []string{"recipe", "latency_s", "accuracy_pct", "cost_per_1M"},
	}
	for _, c := range front {
		ft.AddRow(c.Label(), f2(c.Latency), pct(c.Accuracy), f3(c.CostPerM))
	}
	rt := Table{
		ID: "regimes", Title: "Operating regimes (paper: <5s -> 1.5B only; 15-30s -> non-reasoning 8B; >30s -> DSR1-Qwen-14B)",
		Columns: []string{"regime", "best_recipe", "accuracy_pct", "latency_s"},
	}
	for _, r := range core.RegimesOf(cands, []float64{5, 30}) {
		if r.Found {
			bound := fmt.Sprintf(">%.0fs", r.MinLatency)
			if r.MaxLatency > 0 {
				bound = fmt.Sprintf("%.0f-%.0fs", r.MinLatency, r.MaxLatency)
			}
			rt.AddRow(bound, r.Best.Label(), pct(r.Best.Accuracy), f2(r.Best.Latency))
		}
	}
	return []Table{ft, rt}, nil
}
