// Package hotpath is the fixture for the hotpath analyzer: annotated
// functions reject allocating constructs, unannotated functions are
// untouched, and the allow directive covers deliberate allocations.
package hotpath

import "fmt"

func sink(v any) { _ = v }

//edgereasoning:hotpath bench=BenchmarkFixture
func closures(x int) int {
	f := func() int { return x } // want "closure captures \"x\""
	g := func(a int) int { return a + 1 }
	return f() + g(1)
}

//edgereasoning:hotpath
func fmtCall(n int) {
	fmt.Println(n) // want "fmt.Println allocates on the hot path"
}

//edgereasoning:hotpath
func boxing(n int) {
	sink(n) // want "argument boxes a concrete value into an interface"
}

//edgereasoning:hotpath
func boxingAssign(n int) any {
	var v any
	v = n // want "assignment boxes a concrete value into an interface"
	return v
}

//edgereasoning:hotpath
func boxingReturn(n int) any {
	return n // want "return boxes a concrete value into an interface"
}

//edgereasoning:hotpath
func interfacePassThrough(v any) any {
	sink(v) // already an interface: no box
	return v
}

//edgereasoning:hotpath
func concat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//edgereasoning:hotpath
func constFold() string {
	const prefix = "edge"
	return prefix + "reasoning" // constant-folded: no allocation
}

//edgereasoning:hotpath
func literals() int {
	m := map[string]int{} // want "map literal allocates"
	s := []int{1, 2}      // want "slice literal allocates"
	b := make([]byte, 8)  // want "make allocates"
	p := new(int)         // want "new allocates"
	a := [2]int{3, 4}     // array literal: stack, fine
	return len(m) + len(s) + len(b) + *p + a[0]
}

//edgereasoning:hotpath
func freshAppend(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want "append into \"out\" grows from nil"
	}
	return out
}

//edgereasoning:hotpath
func reusedAppend(dst []int, xs []int) []int {
	for _, x := range xs {
		dst = append(dst, x) // appending into caller-provided storage: fine
	}
	return dst
}

//edgereasoning:hotpath
func allowedAlloc(n int) []int {
	return make([]int, n) //edgereasoning:allow hotpath -- fixture: one-time growth
}

// cold is not annotated: anything goes.
func cold() string {
	return fmt.Sprintf("x-%d", len(map[string]int{}))
}
