// Package workload generates open-loop request streams for serving
// studies: Poisson arrivals with lognormal prompt/output lengths and
// optional per-request deadlines. Together with engine.Serve it extends
// the paper's closed-batch cost study (§III-B: "edge deployment costs
// also benefit from batching and increased QPS") into a queueing-aware
// QPS sweep.
package workload

import (
	"fmt"
	"math"

	"edgereasoning/internal/engine"
)

// Profile shapes a request stream.
type Profile struct {
	// QPS is the mean arrival rate (Poisson process).
	QPS float64
	// N is the number of requests.
	N int
	// PromptMean / PromptSigma parameterize the lognormal prompt length.
	PromptMean  float64
	PromptSigma float64
	// OutputMean / OutputSigma parameterize the lognormal output length.
	OutputMean  float64
	OutputSigma float64
	// DeadlineSlack, when positive, assigns each request a deadline of
	// arrival + DeadlineSlack seconds.
	DeadlineSlack float64
	// DeadlineSlackMax, when above DeadlineSlack, draws each request's
	// slack uniformly from [DeadlineSlack, DeadlineSlackMax] — a mixed
	// urgency population where EDF meaningfully reorders FCFS.
	DeadlineSlackMax float64
}

// Validate rejects unusable profiles. Non-finite parameters are refused
// here so a poisoned profile can never emit NaN/Inf arrivals or
// deadlines into a serving run.
func (p Profile) Validate() error {
	finite := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
	switch {
	case !(p.QPS > 0) || !finite(p.QPS):
		return fmt.Errorf("workload: QPS must be positive and finite")
	case p.N <= 0:
		return fmt.Errorf("workload: N must be positive")
	case !(p.PromptMean > 0) || !finite(p.PromptMean) || !(p.OutputMean > 0) || !finite(p.OutputMean):
		return fmt.Errorf("workload: length means must be positive and finite")
	case math.IsNaN(p.PromptSigma) || p.PromptSigma < 0 || math.IsInf(p.PromptSigma, 0):
		return fmt.Errorf("workload: prompt sigma must be finite and non-negative")
	case math.IsNaN(p.OutputSigma) || p.OutputSigma < 0 || math.IsInf(p.OutputSigma, 0):
		return fmt.Errorf("workload: output sigma must be finite and non-negative")
	case math.IsNaN(p.DeadlineSlack) || p.DeadlineSlack < 0 || math.IsInf(p.DeadlineSlack, 0):
		return fmt.Errorf("workload: deadline slack must be finite and non-negative")
	case math.IsNaN(p.DeadlineSlackMax) || p.DeadlineSlackMax < 0 || math.IsInf(p.DeadlineSlackMax, 0):
		return fmt.Errorf("workload: deadline slack max must be finite and non-negative")
	}
	return nil
}

// Generate synthesizes the stream deterministically in (profile, seed).
// It is a thin collector over NewSource; callers that never need the
// whole slice at once should pull from the Source directly.
func Generate(p Profile, seed uint64) ([]engine.TimedRequest, error) {
	src, err := NewSource(p, seed)
	if err != nil {
		return nil, err
	}
	out := make([]engine.TimedRequest, 0, p.N)
	for {
		tr, ok := src.Next()
		if !ok {
			return out, nil
		}
		out = append(out, tr)
	}
}

// Bursty synthesizes a steady background stream with a traffic spike
// riding on top: the background profile runs from t=0 while the burst
// profile's requests (arrivals and deadlines both) are shifted to start
// at burstStart. IDs are prefixed "s" (steady) and "b" (burst) so the
// merged stream stays collision-free, and the result is sorted by
// arrival. This is the elastic-pool stress shape: a fixed fleet sized
// for the background drowns in the burst, one sized for the burst idles
// the rest of the time.
// Like Generate it is a thin collector — NewBurstySource streams the
// same merged sequence lazily.
func Bursty(background, burst Profile, burstStart float64, seed uint64) ([]engine.TimedRequest, error) {
	src, err := NewBurstySource(background, burst, burstStart, seed)
	if err != nil {
		return nil, err
	}
	out := make([]engine.TimedRequest, 0, background.N+burst.N)
	for {
		tr, ok := src.Next()
		if !ok {
			return out, nil
		}
		out = append(out, tr)
	}
}

// InteractiveAssistant is a short-output conversational profile (direct
// non-reasoning responses, ~40 tokens).
func InteractiveAssistant(qps float64, n int) Profile {
	return Profile{
		QPS: qps, N: n,
		PromptMean: 180, PromptSigma: 0.35,
		OutputMean: 40, OutputSigma: 0.4,
	}
}

// ReasoningBatch is a long-chain offline profile (AIME-style reasoning).
func ReasoningBatch(qps float64, n int) Profile {
	return Profile{
		QPS: qps, N: n,
		PromptMean: 150, PromptSigma: 0.2,
		OutputMean: 2500, OutputSigma: 0.5,
	}
}
