package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 {
		t.Fatalf("N = %d, want 5", s.N)
	}
	if s.Mean != 3 {
		t.Errorf("Mean = %v, want 3", s.Mean)
	}
	if s.Min != 1 || s.Max != 5 {
		t.Errorf("Min/Max = %v/%v, want 1/5", s.Min, s.Max)
	}
	if s.Median != 3 {
		t.Errorf("Median = %v, want 3", s.Median)
	}
	wantStd := math.Sqrt(2.5)
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Errorf("Std = %v, want %v", s.Std, wantStd)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary should be zero, got %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated input: %v", xs)
	}
}

func TestMAPE(t *testing.T) {
	pred := []float64{110, 90}
	act := []float64{100, 100}
	if got := MAPE(pred, act); math.Abs(got-0.10) > 1e-12 {
		t.Errorf("MAPE = %v, want 0.10", got)
	}
}

func TestMAPESkipsZeroActuals(t *testing.T) {
	got := MAPE([]float64{5, 110}, []float64{0, 100})
	if math.Abs(got-0.10) > 1e-12 {
		t.Errorf("MAPE = %v, want 0.10 (zero actual skipped)", got)
	}
}

func TestMAPEMismatchedReturnsNaN(t *testing.T) {
	if !math.IsNaN(MAPE([]float64{1}, []float64{1, 2})) {
		t.Error("mismatched lengths should return NaN")
	}
}

func TestRSquaredPerfectFit(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := RSquared(xs, xs); math.Abs(got-1) > 1e-12 {
		t.Errorf("RSquared of identical vectors = %v, want 1", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp wrong")
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 10, 5)
	want := []float64{0, 2.5, 5, 7.5, 10}
	for i := range want {
		if math.Abs(xs[i]-want[i]) > 1e-12 {
			t.Fatalf("Linspace = %v, want %v", xs, want)
		}
	}
}

// Property: the mean always lies within [min, max].
func TestMeanBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: percentiles are monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		pa := float64(a % 101)
		pb := float64(b % 101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(xs, pa) <= Percentile(xs, pb)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
