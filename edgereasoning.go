// Package edgereasoning reproduces "EdgeReasoning: Characterizing
// Reasoning LLM Deployment on Edge GPUs" (IISWC 2025) as a simulation
// library: a calibrated Jetson AGX Orin model, a vLLM-style serving
// engine, statistical twins of the paper's models, analytical
// latency/power/energy models (Eqns 1–6), and the deployment planner that
// answers the paper's motivating question — "what is the optimal recipe
// at a 20-second latency budget?".
//
// Quick start:
//
//	platform := edgereasoning.NewOrinPlatform()
//	dep, _ := platform.Deploy(edgereasoning.DSR1Qwen14B)
//	fmt.Println(dep.PredictLatency(180, 256))            // modeled seconds
//	recipe, _, _ := platform.PlanRecipe(edgereasoning.MMLURedux, 20*time.Second)
//	fmt.Println(recipe.Label(), recipe.Accuracy)
//
// Every experiment in the paper is runnable via RunExperiment (see
// ExperimentIDs) or the edgereasoning CLI.
package edgereasoning

import (
	"fmt"
	"time"

	"edgereasoning/internal/control"
	"edgereasoning/internal/core"
	"edgereasoning/internal/cost"
	"edgereasoning/internal/data"
	"edgereasoning/internal/engine"
	"edgereasoning/internal/experiments"
	"edgereasoning/internal/gpusim"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/llm"
	"edgereasoning/internal/model"
	"edgereasoning/internal/power"
	"edgereasoning/internal/tts"
)

// Model identifiers from the paper's zoo.
const (
	DSR1Qwen1_5B  = model.DSR1Qwen1_5B
	DSR1Llama8B   = model.DSR1Llama8B
	DSR1Qwen14B   = model.DSR1Qwen14B
	L1Max         = model.L1Max
	DeepScaleR    = model.DeepScaleR1_5
	Qwen25_1_5Bit = model.Qwen25_1_5Bit
	Qwen25_7Bit   = model.Qwen25_7Bit
	Qwen25_14Bit  = model.Qwen25_14Bit
	Llama31_8Bit  = model.Llama31_8Bit
	Gemma7Bit     = model.Gemma7Bit
)

// Benchmarks.
const (
	MMLURedux           = data.MMLURedux
	MMLU                = data.MMLU
	NaturalPlanCalendar = data.NaturalPlanCalendar
	NaturalPlanMeeting  = data.NaturalPlanMeeting
	NaturalPlanTrip     = data.NaturalPlanTrip
	AIME2024            = data.AIME2024
	Math500             = data.Math500
)

// Re-exported types forming the public surface.
type (
	// ModelID names a catalog model ("<id>-w4" selects the AWQ variant).
	ModelID = model.ID
	// Benchmark names a question bank.
	Benchmark = data.Benchmark
	// Policy is a reasoning-token control configuration.
	Policy = control.Policy
	// Recipe is a deployable configuration with its predicted operating
	// point (accuracy, latency, energy, cost).
	Recipe = core.Candidate
	// Table is a rendered experiment artifact.
	Table = experiments.Table
)

// Token-control constructors (§V): unconstrained decoding, prompt-based
// soft budgets, enforced hard budgets, no-reasoning injection, and direct
// generation.
func Base() Policy        { return control.BasePolicy() }
func Soft(n int) Policy   { return control.SoftLimit(n) }
func Hard(n int) Policy   { return control.HardLimit(n) }
func NoReasoning() Policy { return control.NoReasoning() }
func Direct() Policy      { return control.DirectAnswer() }

// DefaultSeed drives all randomness unless a platform overrides it.
const DefaultSeed uint64 = 7

// Platform is a simulated edge device with its power meter.
type Platform struct {
	device *hw.Device
	sim    *gpusim.Sim
	meter  *power.Meter
	seed   uint64
}

// NewOrinPlatform returns the paper's platform: Jetson AGX Orin 64GB in
// MAXN mode.
func NewOrinPlatform() *Platform {
	d := hw.JetsonAGXOrin64GB()
	return &Platform{device: d, sim: gpusim.New(d), meter: power.NewMeter(d), seed: DefaultSeed}
}

// NewOrinCPUPlatform returns the Appendix C alternative: Orin's 12-core
// ARM Cortex-A78AE complex.
func NewOrinCPUPlatform() *Platform {
	d := hw.OrinCortexA78AE()
	return &Platform{device: d, sim: gpusim.New(d), meter: power.NewMeter(d), seed: DefaultSeed}
}

// WithSeed returns a copy of the platform using a different random seed.
func (p *Platform) WithSeed(seed uint64) *Platform {
	cp := *p
	cp.seed = seed
	return &cp
}

// DeviceName reports the underlying device.
func (p *Platform) DeviceName() string { return p.device.Name }

// Models lists the catalog with display names and parameter counts.
func Models() []ModelInfo {
	var out []ModelInfo
	for _, s := range model.All() {
		out = append(out, ModelInfo{
			ID: s.ID, DisplayName: s.DisplayName,
			Params:    s.Arch.ParamCount(),
			Reasoning: s.Class != model.NonReasoning,
		})
	}
	return out
}

// ModelInfo is a catalog listing entry.
type ModelInfo struct {
	ID          ModelID
	DisplayName string
	Params      int64
	Reasoning   bool
}

// Deployment is one model loaded on a platform: a serving engine plus the
// fitted analytical latency model.
type Deployment struct {
	platform *Platform
	spec     model.Spec
	engine   *engine.Engine
	latency  core.LatencyModel
}

// Deploy verifies the model fits and fits its analytic latency model.
func (p *Platform) Deploy(id ModelID) (*Deployment, error) {
	spec, err := model.Lookup(id)
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(engine.Config{Spec: spec, Device: p.device})
	if err != nil {
		return nil, err
	}
	lm, err := core.FitLatencyModel(p.sim, spec)
	if err != nil {
		return nil, err
	}
	return &Deployment{platform: p, spec: spec, engine: eng, latency: lm}, nil
}

// Model returns the deployment's model ID.
func (d *Deployment) Model() ModelID { return d.spec.ID }

// PredictLatency returns the analytic end-to-end latency (Eqn 3) in
// seconds for a prompt/output token pair.
func (d *Deployment) PredictLatency(promptTokens, outputTokens int) float64 {
	return d.latency.Total(promptTokens, outputTokens)
}

// PredictTBT returns the modeled time between tokens at a context length.
func (d *Deployment) PredictTBT(context int) float64 {
	return d.latency.Decode.TBT(context)
}

// MaxTokensWithin inverts the latency model: the largest output budget
// that meets the deadline at the given prompt length (Takeaway #6).
func (d *Deployment) MaxTokensWithin(promptTokens int, deadline time.Duration) int {
	return d.latency.MaxTokensWithin(promptTokens, deadline.Seconds())
}

// GenerationResult reports one simulated generation.
type GenerationResult struct {
	PromptTokens int
	OutputTokens int
	PrefillTime  float64 // seconds
	DecodeTime   float64
	Energy       float64 // joules
	AvgPower     float64 // watts
}

// TotalTime is the request's service time in seconds.
func (g GenerationResult) TotalTime() float64 { return g.PrefillTime + g.DecodeTime }

// Generate runs one request through the serving engine.
func (d *Deployment) Generate(promptTokens, outputTokens int) (GenerationResult, error) {
	m, err := d.engine.Generate(engine.Request{ID: "api", PromptTokens: promptTokens, OutputTokens: outputTokens})
	if err != nil {
		return GenerationResult{}, err
	}
	out := GenerationResult{
		PromptTokens: m.PromptTokens, OutputTokens: m.OutputTokens,
		PrefillTime: m.PrefillTime, DecodeTime: m.DecodeTime, Energy: m.Energy(),
	}
	if t := out.TotalTime(); t > 0 {
		out.AvgPower = out.Energy / t
	}
	return out, nil
}

// BatchResult reports a batched serving run.
type BatchResult struct {
	Requests int
	WallTime float64 // seconds, first admission to last completion
	Energy   float64 // joules
	Tokens   int     // prompt + generated
	UserTPS  float64 // mean per-request decode throughput
}

// ServeBatch runs n identical requests through the engine with continuous
// batching up to maxBatch concurrent decoders — the §III-B batching study
// (Table III compares batch 1 against batch 30).
func (d *Deployment) ServeBatch(n, promptTokens, outputTokens, maxBatch int) (BatchResult, error) {
	reqs := make([]engine.Request, n)
	for i := range reqs {
		reqs[i] = engine.Request{
			ID:           fmt.Sprintf("batch-%d", i),
			PromptTokens: promptTokens,
			OutputTokens: outputTokens,
		}
	}
	b, err := d.engine.Run(reqs, maxBatch)
	if err != nil {
		return BatchResult{}, err
	}
	return BatchResult{
		Requests: len(b.Requests),
		WallTime: b.WallTime,
		Energy:   b.TotalEnergy,
		Tokens:   b.TotalTokens,
		UserTPS:  b.UserTPS(),
	}, nil
}

// TimedRequest is an open-loop serving request (arrival time + optional
// absolute deadline on the simulated clock).
type TimedRequest = engine.TimedRequest

// Scheduling disciplines for Serve.
const (
	// FCFS serves in arrival order.
	FCFS = engine.FCFS
	// EDF serves earliest-deadline-first.
	EDF = engine.EDF
)

// ServeResult reports an open-loop serving run.
type ServeResult struct {
	Requests    int
	WallTime    float64
	Energy      float64
	P50Latency  float64
	P95Latency  float64
	P99Latency  float64
	MeanLatency float64
	HitRate     float64 // fraction of deadline-bearing requests served in time
}

// Serve runs an open-loop workload (Poisson or hand-built arrivals)
// through the engine with the given concurrency and scheduling policy.
func (d *Deployment) Serve(reqs []TimedRequest, maxBatch int, policy engine.SchedPolicy) (ServeResult, error) {
	m, err := d.engine.Serve(reqs, maxBatch, policy)
	if err != nil {
		return ServeResult{}, err
	}
	return ServeResult{
		Requests:    len(m.Requests),
		WallTime:    m.WallTime,
		Energy:      m.TotalEnergy,
		P50Latency:  m.P50Latency,
		P95Latency:  m.P95Latency,
		P99Latency:  m.P99Latency,
		MeanLatency: m.MeanLatency,
		HitRate:     m.HitRate(),
	}, nil
}

// ReproductionAnchor is one paper-value-vs-measured comparison.
type ReproductionAnchor = experiments.Anchor

// VerifyReproduction measures the headline anchors of the reproduction
// against the paper's published values (the `verify` experiment).
func VerifyReproduction() ([]ReproductionAnchor, error) {
	return experiments.Scorecard(experiments.DefaultOptions())
}

// BenchmarkResult summarizes a benchmark evaluation.
type BenchmarkResult struct {
	Benchmark   Benchmark
	Policy      Policy
	SF          int
	Accuracy    float64
	MeanTokens  float64 // per question per branch
	MeanLatency float64 // modeled seconds per question
	Questions   int
}

// Evaluate runs the deployment's statistical twin over a benchmark with a
// token-control policy and optional parallel scaling (majority voting at
// sf > 1). Latency comes from the analytic model at mean lengths.
func (d *Deployment) Evaluate(bench Benchmark, pol Policy, sf int) (BenchmarkResult, error) {
	if sf < 1 {
		sf = 1
	}
	bank, err := data.Load(bench, d.platform.seed)
	if err != nil {
		return BenchmarkResult{}, err
	}
	tw := llm.NewTwin(d.spec, bank, d.platform.seed)
	res, err := tts.EvaluateBank(tw, bank, pol, sf)
	if err != nil {
		return BenchmarkResult{}, err
	}
	prompt := meanPromptTokens(bank)
	perBranch := res.MeanTokens / float64(sf)
	out := BenchmarkResult{
		Benchmark: bench, Policy: pol, SF: sf,
		Accuracy: res.Accuracy, MeanTokens: perBranch, Questions: res.Questions,
	}
	if sf == 1 {
		out.MeanLatency = d.latency.Total(prompt, int(perBranch+0.5))
	} else {
		dres := d.platform.sim.DecodeRun(d.spec.Arch, d.spec.DType, prompt, int(res.MeanMaxTokens+0.5), sf)
		out.MeanLatency = d.latency.Prefill.Predict(prompt) + dres.Time
	}
	return out, nil
}

func meanPromptTokens(b *data.Bank) int {
	if b.Size() == 0 {
		return 1
	}
	sum := 0
	for _, q := range b.Questions {
		sum += q.PromptTokens
	}
	return sum / b.Size()
}

// PlanRecipe answers the paper's headline question: the highest-accuracy
// {model, control, scaling} recipe meeting a latency budget on a
// benchmark. ok is false when nothing fits.
func (p *Platform) PlanRecipe(bench Benchmark, budget time.Duration) (Recipe, bool, error) {
	planner, err := core.NewPlanner(p.device, bench, p.seed)
	if err != nil {
		return Recipe{}, false, err
	}
	return planner.Plan(budget.Seconds())
}

// PlanRecipeWithEnergy is PlanRecipe with an additional per-question
// energy budget in joules (0 disables the constraint) — the planning mode
// for battery-constrained deployments.
func (p *Platform) PlanRecipeWithEnergy(bench Benchmark, budget time.Duration, energyJoules float64) (Recipe, bool, error) {
	planner, err := core.NewPlanner(p.device, bench, p.seed)
	if err != nil {
		return Recipe{}, false, err
	}
	return planner.PlanWithEnergy(budget.Seconds(), energyJoules)
}

// Frontier returns the accuracy-latency Pareto frontier over all
// calibrated recipes for a benchmark.
func (p *Platform) Frontier(bench Benchmark) ([]Recipe, error) {
	planner, err := core.NewPlanner(p.device, bench, p.seed)
	if err != nil {
		return nil, err
	}
	cands, err := planner.Candidates()
	if err != nil {
		return nil, err
	}
	return core.ParetoFrontier(cands), nil
}

// Recipes enumerates every calibrated recipe for a benchmark (the raw
// candidate grid behind Figs 6–8).
func (p *Platform) Recipes(bench Benchmark) ([]Recipe, error) {
	planner, err := core.NewPlanner(p.device, bench, p.seed)
	if err != nil {
		return nil, err
	}
	return planner.Candidates()
}

// EdgeCost bills a workload at the paper's rates ($0.15/kWh electricity,
// $0.045/h amortized hardware) and returns $/1M tokens.
func EdgeCost(energyJoules, wallSeconds float64, tokens int) float64 {
	return cost.Bill(cost.PaperRates(), energyJoules, wallSeconds, tokens).PerMillionTokens()
}

// RunExperiment executes one paper artifact by ID (see ExperimentIDs).
func RunExperiment(id string) ([]Table, error) {
	return experiments.Run(id, experiments.DefaultOptions())
}

// RunExperimentQuick is RunExperiment with subsampled banks, for smoke
// tests and demos.
func RunExperimentQuick(id string) ([]Table, error) {
	return experiments.Run(id, experiments.Options{Seed: DefaultSeed, Quick: true})
}

// ExperimentIDs lists every reproducible table/figure driver.
func ExperimentIDs() []string { return experiments.IDs() }

// Version identifies the library release.
const Version = "1.0.0"
