package llm

import (
	"testing"

	"edgereasoning/internal/data"
	"edgereasoning/internal/model"
)

func TestNaturalCurveBuilds(t *testing.T) {
	c, ok := NaturalCurve(model.DSR1Qwen14B, data.MMLURedux)
	if !ok {
		t.Fatal("14B should have a natural curve on MMLU-Redux")
	}
	if len(c.Points) < 4 {
		t.Fatalf("want >= 4 points (nr, soft-128, soft-256, base), got %d", len(c.Points))
	}
	for i := 1; i < len(c.Points); i++ {
		if c.Points[i].Tokens < c.Points[i-1].Tokens {
			t.Error("curve points must be sorted by tokens")
		}
	}
}

func TestNaturalCurveMissing(t *testing.T) {
	if _, ok := NaturalCurve(model.Gemma7Bit, data.AIME2024); ok {
		t.Error("Gemma has no AIME calibration; curve must not build")
	}
}

func TestCurveAtInterpolatesAndClamps(t *testing.T) {
	c, _ := NaturalCurve(model.DSR1Qwen14B, data.MMLURedux)
	lo := c.Points[0]
	hi := c.Points[len(c.Points)-1]
	if got := c.At(lo.Tokens - 50); got != lo.Accuracy {
		t.Errorf("below range must clamp to first point: %v", got)
	}
	if got := c.At(hi.Tokens + 500); got != hi.Accuracy {
		t.Errorf("above range must clamp to last point: %v", got)
	}
	mid := (c.Points[0].Tokens + c.Points[1].Tokens) / 2
	got := c.At(mid)
	a, b := c.Points[0].Accuracy, c.Points[1].Accuracy
	if (got < a && got < b) || (got > a && got > b) {
		t.Errorf("interpolation at %v out of segment range: %v (%v..%v)", mid, got, a, b)
	}
}

// §V-C: sequential scaling saturates around a few hundred tokens.
func TestSaturationTokens(t *testing.T) {
	for _, id := range []model.ID{model.DSR1Llama8B, model.DSR1Qwen14B} {
		c, ok := NaturalCurve(id, data.MMLURedux)
		if !ok {
			t.Fatalf("%s: no curve", id)
		}
		sat := c.SaturationTokens(0.05)
		if sat < 100 || sat > 1400 {
			t.Errorf("%s: saturation at %.0f tokens, want a few hundred", id, sat)
		}
	}
}

func TestInterpolateHardBudgetBetweenAnchors(t *testing.T) {
	// Budget 192 sits between the 128 and 256 cells.
	beh, ok := InterpolateHardBudget(model.DSR1Qwen14B, data.MMLURedux, 192)
	if !ok {
		t.Fatal("interpolation failed")
	}
	lo := MustCalibrated(model.DSR1Qwen14B, data.MMLURedux, "hard-128")
	hi := MustCalibrated(model.DSR1Qwen14B, data.MMLURedux, "hard-256")
	if beh.Accuracy < lo.Accuracy || beh.Accuracy > hi.Accuracy {
		t.Errorf("interpolated accuracy %v outside [%v, %v]", beh.Accuracy, lo.Accuracy, hi.Accuracy)
	}
	if !beh.Interpolated {
		t.Error("interpolated cells must be flagged")
	}
}

func TestInterpolateHardBudgetExtremes(t *testing.T) {
	// Tiny budget: accuracy collapses toward chance-ish levels.
	small, ok := InterpolateHardBudget(model.DSR1Qwen14B, data.MMLURedux, 32)
	if !ok {
		t.Fatal("small-budget interpolation failed")
	}
	h128 := MustCalibrated(model.DSR1Qwen14B, data.MMLURedux, "hard-128")
	if small.Accuracy >= h128.Accuracy {
		t.Errorf("32-token budget (%.3f) should underperform 128 (%.3f)", small.Accuracy, h128.Accuracy)
	}
	// Huge budget: converges on Base behaviour.
	big, ok := InterpolateHardBudget(model.DSR1Qwen14B, data.MMLURedux, 100000)
	if !ok {
		t.Fatal("big-budget interpolation failed")
	}
	base := MustCalibrated(model.DSR1Qwen14B, data.MMLURedux, "base")
	if big.Accuracy != base.Accuracy {
		t.Errorf("unbounded budget accuracy %v, want base %v", big.Accuracy, base.Accuracy)
	}
	if _, ok := InterpolateHardBudget(model.DSR1Qwen14B, data.MMLURedux, 0); ok {
		t.Error("zero budget must fail")
	}
}

// Monotone-ish sanity: bigger hard budgets never hurt by much on the
// interpolated curve (the underlying data is mildly noisy; allow a small
// dip).
func TestInterpolateHardBudgetTrend(t *testing.T) {
	prev := 0.0
	for _, budget := range []int{64, 128, 256, 512, 1024, 2048} {
		beh, ok := InterpolateHardBudget(model.DSR1Llama8B, data.MMLURedux, budget)
		if !ok {
			t.Fatalf("budget %d failed", budget)
		}
		if beh.Accuracy < prev-0.05 {
			t.Errorf("budget %d: accuracy %.3f fell >5 points below previous %.3f", budget, beh.Accuracy, prev)
		}
		if beh.Accuracy > prev {
			prev = beh.Accuracy
		}
	}
}

func TestBudgetForLatency(t *testing.T) {
	// 20 s budget, 0.5 s prefill, 0.187 s/token (14B) -> ~104 tokens.
	n := BudgetForLatency(20, 0.5, 0.187)
	if n < 100 || n > 108 {
		t.Errorf("budget = %d tokens, want ~104", n)
	}
	if BudgetForLatency(1, 2, 0.1) != 0 {
		t.Error("negative remaining time must yield 0")
	}
	if BudgetForLatency(10, 0, 0) != 0 {
		t.Error("zero rate must yield 0")
	}
}

func TestCalibratedConfigsList(t *testing.T) {
	keys := CalibratedConfigs(model.DSR1Llama8B, data.MMLURedux)
	want := map[string]bool{"base": true, "soft-128": true, "soft-256": true, "nr": true, "hard-128": true, "hard-256": true, "hard-512": true}
	if len(keys) != len(want) {
		t.Fatalf("got %d configs %v, want %d", len(keys), keys, len(want))
	}
	for _, k := range keys {
		if !want[k] {
			t.Errorf("unexpected config %q", k)
		}
	}
}
