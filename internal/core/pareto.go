package core

import (
	"fmt"
	"sort"
)

// ParetoFrontier extracts the candidates not dominated on the
// (latency ↓, accuracy ↑) plane — the frontier Figs 6–8 trace. The result
// is sorted by latency ascending (and therefore accuracy ascending).
func ParetoFrontier(cands []Candidate) []Candidate {
	if len(cands) == 0 {
		return nil
	}
	sorted := make([]Candidate, len(cands))
	copy(sorted, cands)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Latency != sorted[j].Latency {
			return sorted[i].Latency < sorted[j].Latency
		}
		return sorted[i].Accuracy > sorted[j].Accuracy
	})
	var front []Candidate
	bestAcc := -1.0
	for _, c := range sorted {
		if c.Accuracy > bestAcc {
			front = append(front, c)
			bestAcc = c.Accuracy
		}
	}
	return front
}

// Dominates reports whether a dominates b: no worse on both axes and
// strictly better on at least one.
func Dominates(a, b Candidate) bool {
	if a.Latency > b.Latency || a.Accuracy < b.Accuracy {
		return false
	}
	return a.Latency < b.Latency || a.Accuracy > b.Accuracy
}

// Regime is one operating band of the latency axis and the recipe that
// rules it (§V-A identifies three: sub-5s → 1.5B models, 15–30s →
// non-reasoning 8B, >30s → DSR1-Qwen-14B).
type Regime struct {
	MinLatency, MaxLatency float64 // seconds; MaxLatency <= 0 means open-ended
	Best                   Candidate
	Found                  bool
}

// String renders the regime bound and winner.
func (r Regime) String() string {
	bound := fmt.Sprintf(">%.0fs", r.MinLatency)
	if r.MaxLatency > 0 {
		bound = fmt.Sprintf("%.0f-%.0fs", r.MinLatency, r.MaxLatency)
	}
	if !r.Found {
		return fmt.Sprintf("%s: (no feasible recipe)", bound)
	}
	return fmt.Sprintf("%s: %s (%.1f%% @ %.1fs)", bound, r.Best.Label(), r.Best.Accuracy*100, r.Best.Latency)
}

// RegimesOf partitions the latency axis at the given edges and reports
// the best candidate whose latency falls inside each band.
func RegimesOf(cands []Candidate, edges []float64) []Regime {
	bands := make([]Regime, 0, len(edges)+1)
	lo := 0.0
	for _, hi := range edges {
		bands = append(bands, Regime{MinLatency: lo, MaxLatency: hi})
		lo = hi
	}
	bands = append(bands, Regime{MinLatency: lo, MaxLatency: -1})
	for i := range bands {
		for _, c := range cands {
			if c.Latency <= bands[i].MinLatency {
				continue
			}
			if bands[i].MaxLatency > 0 && c.Latency > bands[i].MaxLatency {
				continue
			}
			if !bands[i].Found || c.Accuracy > bands[i].Best.Accuracy {
				bands[i].Best = c
				bands[i].Found = true
			}
		}
	}
	return bands
}
