// Package shadow is the fixture for the reimplemented shadow stock
// pass.
package shadow

func shadowed(xs []int) int {
	total := 0
	for _, x := range xs {
		if x > 0 {
			total := x * 2 // want "declaration of \"total\" shadows declaration"
			_ = total
		}
	}
	return total
}

func noLaterUse(xs []int) int {
	v := 1
	out := v
	if len(xs) > 0 {
		v := 2
		out += v
	}
	return out
}

func differentType(n int) int {
	if n > 0 {
		n := "positive" // different type: not reported
		_ = n
	}
	return n + 1
}

func ifInitIdiom(m map[string]int) (int, error) {
	v, err := lookup(m, "a")
	if err != nil {
		return 0, err
	}
	// The statement-scoped redeclaration below is idiomatic, not a bug.
	if w, err := lookup(m, "b"); err == nil {
		v += w
	}
	return v, err
}

func closureScoped(m map[string]int) (int, error) {
	v, err := lookup(m, "a")
	if err != nil {
		return 0, err
	}
	f := func() int {
		// Closure-scoped error handling: the closure owns this err.
		w, err := lookup(m, "b")
		if err != nil {
			return 0
		}
		return w
	}
	return v + f(), err
}

func rewrittenBeforeRead(m map[string]int) (int, error) {
	v, err := lookup(m, "a")
	if err != nil {
		return 0, err
	}
	if v > 0 {
		// Harmless: outer err is overwritten below before its next read.
		w, err := lookup(m, "b")
		_, _ = w, err
	}
	v2, err := lookup(m, "c")
	if err != nil {
		return 0, err
	}
	return v + v2, nil
}

func staleErrRead(m map[string]int) (int, error) {
	v, err := lookup(m, "a")
	for k := range m {
		if k != "" {
			v2, err := lookup(m, k) // want "declaration of \"err\" shadows declaration"
			v += v2
			_ = err
		}
	}
	return v, err // reads the outer err, which the loop never updated
}

func lookup(m map[string]int, k string) (int, error) {
	return m[k], nil
}
