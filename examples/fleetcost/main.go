// Fleet cost: the §III-B economics study. A fleet operator weighs serving
// reasoning queries from the cloud (o1-preview-class API) against a
// Jetson AGX Orin running DeepScaleR-1.5B on-device, at batch 1 and with
// request batching. Reproduces the Table III arithmetic: edge batch-30
// serving lands two orders of magnitude under the $60/1M-token cloud API.
package main

import (
	"fmt"
	"log"

	"edgereasoning"
)

func main() {
	platform := edgereasoning.NewOrinPlatform()
	dep, err := platform.Deploy(edgereasoning.DeepScaleR)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's AIME2024 profile: 30 questions, ~6,520 output tokens
	// each, run once at batch 1 and once at batch 30.
	const (
		queries      = 30
		promptTokens = 150
		outputTokens = 6520
		cloudPerM    = 60.0 // o1-preview output pricing, $/1M tokens
	)

	b1, err := dep.ServeBatch(queries, promptTokens, outputTokens, 1)
	if err != nil {
		log.Fatal(err)
	}
	b30, err := dep.ServeBatch(queries, promptTokens, outputTokens, 30)
	if err != nil {
		log.Fatal(err)
	}

	edge1 := edgereasoning.EdgeCost(b1.Energy, b1.WallTime, b1.Tokens)
	edge30 := edgereasoning.EdgeCost(b30.Energy, b30.WallTime, b30.Tokens)

	fmt.Printf("AIME2024-scale workload on %s (DeepScaleR-1.5B)\n\n", platform.DeviceName())
	fmt.Println("                       batch 1      batch 30")
	fmt.Printf("  wall time            %7.0f s    %7.0f s   (%.1fx faster)\n",
		b1.WallTime, b30.WallTime, b1.WallTime/b30.WallTime)
	fmt.Printf("  energy               %7.4f kWh  %7.4f kWh\n", b1.Energy/3.6e6, b30.Energy/3.6e6)
	fmt.Printf("  user TPS             %7.1f      %7.1f\n", b1.UserTPS, b30.UserTPS)
	fmt.Printf("  cost per 1M tokens   $%7.3f     $%7.3f\n\n", edge1, edge30)
	fmt.Println("  paper measured: 4,358 s / $0.302 (b=1) and 398 s / $0.027 (b=30)")

	// Scale to a fleet-month: 2,000 queries/day for 30 days.
	const fleetQueries = 2000 * 30
	tokens := float64(fleetQueries) * (promptTokens + outputTokens)
	cloudBill := tokens / 1e6 * cloudPerM
	edgeBill := tokens / 1e6 * edge30
	fmt.Printf("\nFleet-month (%d queries, %.0fM tokens):\n", fleetQueries, tokens/1e6)
	fmt.Printf("  cloud API bill: $%9.0f\n", cloudBill)
	fmt.Printf("  edge bill:      $%9.2f   (%.0fx cheaper)\n", edgeBill, cloudBill/edgeBill)
}
