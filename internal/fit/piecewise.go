package fit

import (
	"errors"
	"math"
)

// Curve is any fitted single-variable model.
type Curve interface {
	Eval(x float64) float64
}

// Constant is a flat y = Value model — the lower branch of the paper's
// piecewise power models (Eqn 4, 6: constant power at low utilization).
type Constant struct {
	Value float64
}

// Eval returns the constant value regardless of x.
func (c Constant) Eval(float64) float64 { return c.Value }

// Piecewise composes a low-x branch and a high-x branch split at
// Breakpoint: y = Low(x) for x <= Breakpoint, High(x) otherwise.
type Piecewise struct {
	Breakpoint float64
	Low, High  Curve
}

// Eval evaluates the active branch at x.
func (p Piecewise) Eval(x float64) float64 {
	if x <= p.Breakpoint {
		return p.Low.Eval(x)
	}
	return p.High.Eval(x)
}

// PiecewiseConstLogFit fits the paper's Eqn 4/6 form
//
//	y = u              for x <= v
//	y = w·ln(x) + z    for x >  v
//
// by scanning candidate breakpoints over the sample x values and keeping
// the split with the lowest total squared error. Each branch needs at
// least two samples.
func PiecewiseConstLogFit(x, y []float64) (Piecewise, error) {
	if len(x) != len(y) || len(x) < 4 {
		return Piecewise{}, errors.New("fit: piecewise fit needs >= 4 samples")
	}
	// Samples must be processed in x order for contiguous splits.
	idx := sortedIndex(x)
	best := Piecewise{}
	bestErr := math.Inf(1)
	for cut := 2; cut <= len(x)-2; cut++ {
		var lowY, highX, highY []float64
		for i, id := range idx {
			if i < cut {
				lowY = append(lowY, y[id])
			} else {
				highX = append(highX, x[id])
				highY = append(highY, y[id])
			}
		}
		u := mean(lowY)
		ll, err := LogLinearFit(highX, highY)
		if err != nil {
			continue
		}
		bp := x[idx[cut-1]]
		cand := Piecewise{Breakpoint: bp, Low: Constant{Value: u}, High: ll}
		se := 0.0
		for _, id := range idx {
			r := cand.Eval(x[id]) - y[id]
			se += r * r
		}
		if se < bestErr {
			bestErr = se
			best = cand
		}
	}
	if math.IsInf(bestErr, 1) {
		return Piecewise{}, ErrSingular
	}
	return best, nil
}

// PiecewiseExpLogFit fits the paper's Eqn 5 form
//
//	y = A·e^(−λx) + C     for x <= v
//	y = α·ln(x) + β       for x >  v
//
// used for prefill energy per token (Table XX).
func PiecewiseExpLogFit(x, y []float64) (Piecewise, error) {
	if len(x) != len(y) || len(x) < 6 {
		return Piecewise{}, errors.New("fit: piecewise exp/log fit needs >= 6 samples")
	}
	idx := sortedIndex(x)
	best := Piecewise{}
	bestErr := math.Inf(1)
	for cut := 3; cut <= len(x)-2; cut++ {
		var lowX, lowY, highX, highY []float64
		for i, id := range idx {
			if i < cut {
				lowX = append(lowX, x[id])
				lowY = append(lowY, y[id])
			} else {
				highX = append(highX, x[id])
				highY = append(highY, y[id])
			}
		}
		ed, err := ExpDecayFit(lowX, lowY)
		if err != nil {
			continue
		}
		ll, err := LogLinearFit(highX, highY)
		if err != nil {
			continue
		}
		bp := x[idx[cut-1]]
		cand := Piecewise{Breakpoint: bp, Low: ed, High: ll}
		se := 0.0
		for _, id := range idx {
			r := cand.Eval(x[id]) - y[id]
			se += r * r
		}
		if se < bestErr {
			bestErr = se
			best = cand
		}
	}
	if math.IsInf(bestErr, 1) {
		return Piecewise{}, ErrSingular
	}
	return best, nil
}

func sortedIndex(x []float64) []int {
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort: sample counts here are small (tens of points).
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && x[idx[j]] < x[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
