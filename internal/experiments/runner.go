// Concurrent experiment runner: a worker-pool scheduler over the driver
// registry. Drivers are independent pure functions of Options, so the
// suite is embarrassingly parallel; the runner fans them out across
// workers while keeping output deterministic — results are buffered and
// emitted in the order the IDs were requested, so a parallel run renders
// a byte-identical report to a sequential one.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// RunnerOptions configures the worker pool.
type RunnerOptions struct {
	// Parallelism is the worker count; <= 0 means GOMAXPROCS.
	Parallelism int
	// Timeout bounds each driver's wall time; <= 0 means no limit.
	// Drivers are pure functions and cannot be interrupted, so a
	// timed-out driver's goroutine keeps running (its result discarded)
	// while the freed worker starts the next job — after a timeout the
	// number of live driver goroutines can therefore briefly exceed
	// Parallelism. Timeout trades a strict concurrency cap for suite
	// progress past a stuck driver.
	Timeout time.Duration

	// lookup resolves an ID to a driver. Nil means the package registry;
	// tests inject their own to exercise the pool without touching it.
	lookup func(id string) (Driver, bool)
}

func (c RunnerOptions) workers() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

func (c RunnerOptions) resolve(id string) (Driver, bool) {
	if c.lookup != nil {
		return c.lookup(id)
	}
	d, ok := registry[id]
	return d, ok
}

// Result is the outcome of one driver execution. Exactly one Result is
// produced per requested ID; a failed, timed-out, or cancelled driver
// reports through Err instead of aborting the suite.
type Result struct {
	ID     string
	Seed   uint64 // seed the driver ran with (varies across a sweep)
	Tables []Table
	Err    error
	// Wall is the driver's own execution time (zero if never started).
	Wall time.Duration
}

// TableCount reports how many artifacts the driver produced.
func (r Result) TableCount() int { return len(r.Tables) }

// SuiteMetrics aggregates per-driver metrics over a set of results.
type SuiteMetrics struct {
	Drivers int
	Errors  int
	Tables  int
	// DriverTime is the sum of per-driver wall times — the
	// sequential-equivalent cost of the suite.
	DriverTime time.Duration
}

// Summarize folds results into suite-level metrics. Every non-nil Err
// counts as an error, including cancellation; callers that distinguish
// interrupts (as the CLI does) should classify before aggregating.
func Summarize(results []Result) SuiteMetrics {
	var m SuiteMetrics
	for _, r := range results {
		m.Drivers++
		if r.Err != nil {
			m.Errors++
		}
		m.Tables += len(r.Tables)
		m.DriverTime += r.Wall
	}
	return m
}

// job is one unit of pool work: run driver id with opts, deliver at index.
type job struct {
	index int
	id    string
	opts  Options
}

// Stream executes one job per requested ID on a worker pool and delivers
// results on the returned channel in request order, regardless of
// completion order. The channel always carries exactly one Result per ID
// and is closed afterwards. When ctx is cancelled, queued and in-flight
// jobs resolve to Results with Err = ctx.Err() and the channel closes
// promptly; an in-flight driver's goroutine is abandoned (drivers are
// pure functions and cannot be interrupted) and its work discarded.
func Stream(ctx context.Context, ids []string, opts Options, cfg RunnerOptions) <-chan Result {
	jobs := make([]job, len(ids))
	for i, id := range ids {
		jobs[i] = job{index: i, id: id, opts: opts}
	}
	return runPool(ctx, jobs, cfg)
}

// RunAll executes the IDs and returns one Result per ID in request order.
// It never fails as a whole: per-driver errors (including cancellation)
// are carried in each Result.
func RunAll(ctx context.Context, ids []string, opts Options, cfg RunnerOptions) []Result {
	return collect(Stream(ctx, ids, opts, cfg), len(ids))
}

// StreamSweep fans a single driver out across seeds, for variance
// estimation of the stochastic drivers. Results are delivered in seed
// order with Seed set to the sweep point; base supplies every other
// option.
func StreamSweep(ctx context.Context, id string, seeds []uint64, base Options, cfg RunnerOptions) <-chan Result {
	jobs := make([]job, len(seeds))
	for i, seed := range seeds {
		o := base
		o.Seed = seed
		jobs[i] = job{index: i, id: id, opts: o}
	}
	return runPool(ctx, jobs, cfg)
}

// RunSweep collects StreamSweep into a slice, one Result per seed.
func RunSweep(ctx context.Context, id string, seeds []uint64, base Options, cfg RunnerOptions) []Result {
	return collect(StreamSweep(ctx, id, seeds, base, cfg), len(seeds))
}

func collect(ch <-chan Result, n int) []Result {
	out := make([]Result, 0, n)
	for r := range ch {
		out = append(out, r)
	}
	return out
}

// runPool is the shared scheduler behind Stream, RunAll and RunSweep.
func runPool(ctx context.Context, jobs []job, cfg RunnerOptions) <-chan Result {
	type indexed struct {
		index int
		res   Result
	}
	feed := make(chan job)
	done := make(chan indexed, len(jobs))
	out := make(chan Result, len(jobs))

	workers := cfg.workers()
	if workers > len(jobs) && len(jobs) > 0 {
		workers = len(jobs)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range feed {
				done <- indexed{j.index, runJob(ctx, j, cfg)}
			}
		}()
	}

	// Feeder: hand out jobs until ctx cancels, then stop scheduling.
	go func() {
		defer close(feed)
		for _, j := range jobs {
			select {
			case feed <- j:
			case <-ctx.Done():
				return
			}
		}
	}()

	go func() {
		wg.Wait()
		close(done)
	}()

	// Collector: reorder completions into request order, emitting each
	// result as soon as every earlier one has been delivered. After the
	// pool drains, jobs it never ran (cancelled before scheduling) are
	// filled with ctx.Err().
	go func() {
		defer close(out)
		pending := make(map[int]Result, len(jobs))
		next := 0
		for d := range done {
			pending[d.index] = d.res
			for {
				r, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				out <- r
				next++
			}
		}
		for ; next < len(jobs); next++ {
			r, ok := pending[next]
			if !ok {
				j := jobs[next]
				r = Result{ID: j.id, Seed: j.opts.Seed, Err: ctx.Err()}
			}
			out <- r
		}
	}()
	return out
}

// runJob executes one driver with panic recovery, the per-driver timeout,
// and context cancellation. On timeout or cancellation the driver
// goroutine is abandoned and its eventual result dropped.
//
//edgereasoning:wallclock -- host-side driver timeout and wall-time accounting; simulated time lives in the engine's event clock
func runJob(ctx context.Context, j job, cfg RunnerOptions) Result {
	res := Result{ID: j.id, Seed: j.opts.Seed}
	d, ok := cfg.resolve(j.id)
	if !ok {
		res.Err = UnknownIDError(j.id)
		return res
	}
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}

	type outcome struct {
		tables []Table
		err    error
	}
	ch := make(chan outcome, 1)
	start := time.Now()
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- outcome{err: fmt.Errorf("driver %s panicked: %v", j.id, p)}
			}
		}()
		tables, err := d(j.opts)
		ch <- outcome{tables: tables, err: err}
	}()

	var timeout <-chan time.Time
	if cfg.Timeout > 0 {
		t := time.NewTimer(cfg.Timeout)
		defer t.Stop()
		timeout = t.C
	}
	// completed drains ch without blocking: a driver finishing exactly as
	// the deadline (or cancellation) fires leaves both channels ready and
	// select picks randomly — prefer the finished result over reporting a
	// spurious failure and dropping its tables.
	completed := func() bool {
		select {
		case o := <-ch:
			res.Tables, res.Err = o.tables, o.err
			return true
		default:
			return false
		}
	}
	select {
	case o := <-ch:
		res.Tables, res.Err = o.tables, o.err
	case <-timeout:
		if !completed() {
			res.Err = fmt.Errorf("driver %s: timeout after %v", j.id, cfg.Timeout)
		}
	case <-ctx.Done():
		if !completed() {
			res.Err = ctx.Err()
		}
	}
	res.Wall = time.Since(start)
	return res
}
