package fit

import (
	"errors"
	"math"
)

// ExpDecay is a fitted y = A·exp(−λ·x) + C model — the form the paper uses
// for prefill energy per token at short input lengths (Eqn 5, Table XX).
type ExpDecay struct {
	A, Lambda, C float64
}

// Eval evaluates the model at x.
func (e ExpDecay) Eval(x float64) float64 {
	return e.A*math.Exp(-e.Lambda*x) + e.C
}

// ExpDecayFit fits y = A·exp(−λx) + C by scanning λ over a logarithmic
// grid and solving the remaining linear system (A, C) in closed form for
// each candidate, keeping the λ with the lowest squared error. This is
// robust for the decay rates seen in the paper (λ ∈ [1e−4, 1]) and needs
// no derivatives.
func ExpDecayFit(x, y []float64) (ExpDecay, error) {
	if len(x) != len(y) || len(x) < 3 {
		return ExpDecay{}, errors.New("fit: exp decay needs >= 3 samples")
	}
	if !allFinite(x) || !allFinite(y) {
		return ExpDecay{}, ErrNonFinite
	}
	best := ExpDecay{}
	bestErr := math.Inf(1)
	// Two-stage grid: coarse scan then refinement around the winner.
	lambdas := logGrid(1e-5, 1.0, 60)
	for stage := 0; stage < 2; stage++ {
		for _, lam := range lambdas {
			a, c, ok := solveAmplitudeOffset(x, y, lam)
			if !ok {
				continue
			}
			cand := ExpDecay{A: a, Lambda: lam, C: c}
			se := 0.0
			for i := range x {
				r := cand.Eval(x[i]) - y[i]
				se += r * r
			}
			if se < bestErr {
				bestErr = se
				best = cand
			}
		}
		// Refine: dense grid spanning one coarse step either side.
		lo := best.Lambda / 1.3
		hi := best.Lambda * 1.3
		lambdas = linGrid(lo, hi, 80)
	}
	if math.IsInf(bestErr, 1) {
		return ExpDecay{}, ErrSingular
	}
	return best, nil
}

// solveAmplitudeOffset solves the linear subproblem y ≈ A·e^(−λx) + C for
// fixed λ.
func solveAmplitudeOffset(x, y []float64, lambda float64) (a, c float64, ok bool) {
	n := float64(len(x))
	var se, see, sy, sey float64
	for i := range x {
		e := math.Exp(-lambda * x[i])
		se += e
		see += e * e
		sy += y[i]
		sey += e * y[i]
	}
	det := see*n - se*se
	if math.Abs(det) < 1e-18 {
		return 0, 0, false
	}
	a = (sey*n - se*sy) / det
	c = (see*sy - se*sey) / det
	return a, c, true
}

func logGrid(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	llo, lhi := math.Log(lo), math.Log(hi)
	for i := range out {
		out[i] = math.Exp(llo + (lhi-llo)*float64(i)/float64(n-1))
	}
	return out
}

func linGrid(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}
