package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPath is the static complement of the cmd/benchcheck allocs/op
// gate: functions annotated //edgereasoning:hotpath must not contain
// allocating constructs. The annotation marks the serving inner loops
// whose allocs/op the benchmark trajectory freezes (engine admission/
// decode leaves, kvcache handle fast paths, fleet ingress dispatch
// leaves, telemetry's record path); the analyzer rejects the construct
// classes that would show up there as new allocations:
//
//   - closures capturing outer variables (the closure header escapes)
//   - interface boxing of concrete values (arguments, assignments,
//     conversions, returns)
//   - fmt calls (always allocate: boxing plus formatting buffers)
//   - string concatenation (non-constant)
//   - map/slice composite literals, make, new
//   - append into a slice declared fresh in the function without
//     pre-allocation
//
// A deliberate, measured allocation (e.g. kvcache.ReserveH's at most
// one block-table growth per sequence lifetime) carries an
// //edgereasoning:allow hotpath directive with its justification.
//
// The optional bench=BenchmarkName argument names the BENCH_serve.json
// target that gates the function dynamically; cmd/benchcheck warns
// when an annotated function's benchmark is missing from the baseline.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc: "forbid allocating constructs in //edgereasoning:hotpath " +
		"functions (static complement of the benchcheck allocs/op gate)",
	Run: runHotPath,
}

func runHotPath(pass *Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, hot := FuncDirective(fd, "hotpath"); !hot {
				continue
			}
			hc := &hotChecker{pass: pass, fresh: freshSlices(pass.TypesInfo, fd.Body)}
			var sig *types.Signature
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				sig, _ = obj.Type().(*types.Signature)
			}
			hc.walk(fd.Body, sig, fd)
		}
	}
	return nil
}

type hotChecker struct {
	pass *Pass
	// fresh holds slice variables declared in the function without an
	// initializer — appending to them grows from nil.
	fresh map[types.Object]bool
}

// freshSlices collects `var s []T` declarations (no initializer) in the
// function body.
func freshSlices(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		decl, ok := n.(*ast.DeclStmt)
		if !ok {
			return true
		}
		gd, ok := decl.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return true
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) > 0 {
				continue
			}
			for _, name := range vs.Names {
				obj := info.Defs[name]
				if obj == nil {
					continue
				}
				if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// walk visits every node under n, with sig tracking the innermost
// function's signature for return-boxing checks. enclosing is the
// function node whose scope defines "outer" for closure captures.
func (hc *hotChecker) walk(n ast.Node, sig *types.Signature, enclosing ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch node := m.(type) {
		case *ast.FuncLit:
			if cap := hc.captured(node, enclosing); cap != "" {
				hc.pass.Reportf(node.Pos(), "closure captures %q and allocates on the hot path", cap)
			}
			if lt, ok := hc.pass.TypesInfo.Types[node].Type.(*types.Signature); ok {
				hc.walk(node.Body, lt, enclosing)
			}
			return false // body walked above with its own signature
		case *ast.CallExpr:
			hc.call(node)
		case *ast.BinaryExpr:
			if node.Op == token.ADD && hc.isNonConstString(node) {
				hc.pass.Reportf(node.Pos(), "string concatenation allocates on the hot path")
			}
		case *ast.AssignStmt:
			hc.assign(node)
		case *ast.CompositeLit:
			tv, ok := hc.pass.TypesInfo.Types[node]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				hc.pass.Reportf(node.Pos(), "map literal allocates on the hot path")
			case *types.Slice:
				hc.pass.Reportf(node.Pos(), "slice literal allocates on the hot path")
			}
		case *ast.ReturnStmt:
			hc.returns(node, sig)
		}
		return true
	})
}

// captured returns the name of a variable the closure captures from the
// enclosing function, or "".
func (hc *hotChecker) captured(fl *ast.FuncLit, enclosing ast.Node) string {
	name := ""
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := hc.pass.TypesInfo.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured iff declared inside the enclosing function but
		// outside this literal.
		if v.Pos() > enclosing.Pos() && v.Pos() < enclosing.End() &&
			(v.Pos() < fl.Pos() || v.Pos() > fl.End()) {
			name = v.Name()
		}
		return true
	})
	return name
}

func (hc *hotChecker) call(call *ast.CallExpr) {
	info := hc.pass.TypesInfo
	// Builtins and fmt.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			hc.pass.Reportf(call.Pos(), "fmt.%s allocates on the hot path", fn.Name())
			return
		}
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				hc.pass.Reportf(call.Pos(), "make allocates on the hot path")
			case "new":
				hc.pass.Reportf(call.Pos(), "new allocates on the hot path")
			case "append":
				if len(call.Args) > 0 {
					if dst, ok := call.Args[0].(*ast.Ident); ok {
						if obj := info.Uses[dst]; obj != nil && hc.fresh[obj] {
							hc.pass.Reportf(call.Pos(),
								"append into %q grows from nil on the hot path; pre-allocate it outside", dst.Name)
						}
					}
				}
			}
			return
		}
	}
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	// Conversion to an interface type boxes.
	if tv.IsType() {
		if isIface(tv.Type) && len(call.Args) == 1 && hc.boxes(tv.Type, call.Args[0]) {
			hc.pass.Reportf(call.Pos(), "conversion to interface boxes on the hot path")
		}
		return
	}
	// Concrete arguments passed to interface parameters box.
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i == params.Len()-1 && !sig.Variadic()):
			pt = params.At(i).Type()
		case params.Len() > 0:
			pt = params.At(params.Len() - 1).Type()
			if sl, ok := pt.(*types.Slice); ok && sig.Variadic() && !call.Ellipsis.IsValid() {
				pt = sl.Elem()
			}
		default:
			continue
		}
		if hc.boxes(pt, arg) {
			hc.pass.Reportf(arg.Pos(), "argument boxes a concrete value into an interface on the hot path")
		}
	}
}

func (hc *hotChecker) assign(as *ast.AssignStmt) {
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 {
		if tv, ok := hc.pass.TypesInfo.Types[as.Lhs[0]]; ok {
			if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
				hc.pass.Reportf(as.Pos(), "string concatenation allocates on the hot path")
			}
		}
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		lt, ok := hc.pass.TypesInfo.Types[as.Lhs[i]]
		if !ok {
			continue
		}
		if hc.boxes(lt.Type, as.Rhs[i]) {
			hc.pass.Reportf(as.Rhs[i].Pos(), "assignment boxes a concrete value into an interface on the hot path")
		}
	}
}

func (hc *hotChecker) returns(ret *ast.ReturnStmt, sig *types.Signature) {
	if sig == nil || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, expr := range ret.Results {
		if hc.boxes(sig.Results().At(i).Type(), expr) {
			hc.pass.Reportf(expr.Pos(), "return boxes a concrete value into an interface on the hot path")
		}
	}
}

// boxes reports whether assigning expr to a destination of type dst
// converts a concrete value to an interface (an allocation for
// non-pointer-shaped values, a conversion record either way).
func (hc *hotChecker) boxes(dst types.Type, expr ast.Expr) bool {
	if dst == nil || !isIface(dst) {
		return false
	}
	tv, ok := hc.pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	if basic, ok := tv.Type.(*types.Basic); ok && basic.Kind() == types.UntypedNil {
		return false
	}
	return !isIface(tv.Type)
}

func isIface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// isNonConstString reports whether e is a string-typed expression not
// folded to a constant at compile time.
func (hc *hotChecker) isNonConstString(e ast.Expr) bool {
	tv, ok := hc.pass.TypesInfo.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}
