package workload

import (
	"fmt"
	"math"

	"edgereasoning/internal/engine"
	"edgereasoning/internal/stats"
)

// Source streams a profile's request sequence lazily: each Next
// synthesizes one request, so a million-request soak holds O(1) live
// workload memory. The emitted sequence is element-identical to
// Generate's slice — Generate is a thin collector over a Source.
// Arrivals are non-decreasing (cumulative Poisson clock), satisfying the
// engine.Source contract.
type Source struct {
	p     Profile
	rng   *stats.RNG
	clock float64
	i     int
}

// NewSource validates the profile and positions a source at its first
// request. Determinism is (profile, seed), exactly as for Generate.
func NewSource(p Profile, seed uint64) (*Source, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(seed, fmt.Sprintf("workload/qps%.3f/n%d", p.QPS, p.N))
	return &Source{p: p, rng: rng}, nil
}

// Next synthesizes the next request, or returns false after N requests.
func (s *Source) Next() (engine.TimedRequest, bool) {
	if s.i >= s.p.N {
		return engine.TimedRequest{}, false
	}
	// Exponential inter-arrival times (Poisson process).
	u := s.rng.Float64()
	for u == 0 {
		u = s.rng.Float64()
	}
	s.clock += -math.Log(u) / s.p.QPS
	prompt := int(s.rng.LogNormalMean(s.p.PromptMean, s.p.PromptSigma))
	if prompt < 8 {
		prompt = 8
	}
	output := int(s.rng.LogNormalMean(s.p.OutputMean, s.p.OutputSigma))
	if output < 1 {
		output = 1
	}
	tr := engine.TimedRequest{
		Request: engine.Request{
			ID:           fmt.Sprintf("w%d", s.i),
			PromptTokens: prompt,
			OutputTokens: output,
		},
		Arrival: s.clock,
	}
	if s.p.DeadlineSlack > 0 {
		slack := s.p.DeadlineSlack
		if s.p.DeadlineSlackMax > s.p.DeadlineSlack {
			slack += s.rng.Float64() * (s.p.DeadlineSlackMax - s.p.DeadlineSlack)
		}
		tr.Deadline = s.clock + slack
	}
	s.i++
	return tr, true
}

// BurstySource streams the Bursty stream lazily: a two-way merge of the
// steady and (time-shifted) burst sources, steady winning arrival ties —
// element-for-element what stable-sorting the concatenated slices
// produces, without materializing either.
type BurstySource struct {
	steady, burst *Source
	burstStart    float64
	sHead, bHead  engine.TimedRequest
	sOK, bOK      bool
}

// NewBurstySource validates and positions a bursty source at its first
// request. Determinism is (profiles, burstStart, seed), as for Bursty.
func NewBurstySource(background, burst Profile, burstStart float64, seed uint64) (*BurstySource, error) {
	if math.IsNaN(burstStart) || math.IsInf(burstStart, 0) || burstStart < 0 {
		return nil, fmt.Errorf("workload: burst start must be finite and non-negative")
	}
	steady, err := NewSource(background, seed)
	if err != nil {
		return nil, fmt.Errorf("workload: background: %w", err)
	}
	spike, err := NewSource(burst, seed^0x9e3779b97f4a7c15)
	if err != nil {
		return nil, fmt.Errorf("workload: burst: %w", err)
	}
	b := &BurstySource{steady: steady, burst: spike, burstStart: burstStart}
	b.advanceSteady()
	b.advanceBurst()
	return b, nil
}

// advanceSteady pulls the next steady request into the merge head,
// applying the "s" ID prefix.
func (b *BurstySource) advanceSteady() {
	tr, ok := b.steady.Next()
	if ok {
		tr.ID = "s" + tr.ID
	}
	b.sHead, b.sOK = tr, ok
}

// advanceBurst pulls the next burst request into the merge head, applying
// the "b" ID prefix and the burst-start time shift.
func (b *BurstySource) advanceBurst() {
	tr, ok := b.burst.Next()
	if ok {
		tr.ID = "b" + tr.ID
		tr.Arrival += b.burstStart
		if tr.Deadline > 0 {
			tr.Deadline += b.burstStart
		}
	}
	b.bHead, b.bOK = tr, ok
}

// Next yields the earlier merge head (steady on ties).
func (b *BurstySource) Next() (engine.TimedRequest, bool) {
	switch {
	case !b.sOK && !b.bOK:
		return engine.TimedRequest{}, false
	case !b.bOK || (b.sOK && b.sHead.Arrival <= b.bHead.Arrival):
		tr := b.sHead
		b.advanceSteady()
		return tr, true
	default:
		tr := b.bHead
		b.advanceBurst()
		return tr, true
	}
}
