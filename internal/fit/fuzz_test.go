package fit

import (
	"encoding/binary"
	"math"
	"testing"
)

// samplesFromBytes decodes the payload into (x, y) pairs, passing raw
// bit patterns straight through — NaN, ±Inf, subnormals and all — so
// the fits' non-finite guards are genuinely exercised.
func samplesFromBytes(data []byte) (x, y []float64) {
	const pair = 16
	n := len(data) / pair
	if n > 64 {
		n = 64 // keep the grid-search fits fast under the fuzzer
	}
	for i := 0; i < n; i++ {
		x = append(x, math.Float64frombits(binary.LittleEndian.Uint64(data[i*pair:])))
		y = append(y, math.Float64frombits(binary.LittleEndian.Uint64(data[i*pair+8:])))
	}
	return x, y
}

func addSamples(f *testing.F, xs, ys []float64) {
	buf := make([]byte, 0, len(xs)*16)
	for i := range xs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(xs[i]))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(ys[i]))
	}
	f.Add(buf)
}

// FuzzFitCurves asserts the fitting toolbox's core contract: every fit
// either returns an error or a model with finite parameters — never a
// silently poisoned curve. On well-scaled finite samples a successful
// model must also evaluate finite at its own sample points.
func FuzzFitCurves(f *testing.F) {
	addSamples(f, []float64{1, 2, 3, 4, 5, 6, 7, 8}, []float64{2, 5, 10, 17, 26, 37, 50, 65})
	addSamples(f, []float64{1, 10, 100, 1000, 2000, 4000}, []float64{5, 5, 5, 9, 11, 13})
	addSamples(f, []float64{0.5, 1, 2, 4, 8, 16}, []float64{10, 7, 4, 2.5, 2.1, 2})
	addSamples(f, []float64{1, 2, math.NaN(), 4, 5, 6}, []float64{1, 2, 3, 4, 5, 6})
	addSamples(f, []float64{1, 2, 3, 4, 5, 6}, []float64{1, math.Inf(1), 3, 4, 5, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		x, y := samplesFromBytes(data)
		if len(x) < 2 {
			return
		}
		sane := allFinite(x) && allFinite(y)
		for _, v := range append(append([]float64{}, x...), y...) {
			if math.Abs(v) > 1e6 {
				sane = false
			}
		}
		checkCurve := func(name string, c Curve, params ...float64) {
			t.Helper()
			if !allFinite(params) {
				t.Fatalf("%s: accepted fit with non-finite parameters %v (x=%v y=%v)", name, params, x, y)
			}
			if !sane {
				return
			}
			for _, xi := range x {
				if v := c.Eval(xi); math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s: Eval(%v) = %v on sane samples (x=%v y=%v)", name, xi, v, x, y)
				}
			}
		}
		if p, err := PolyFit(x, y, 2); err == nil {
			checkCurve("PolyFit", p, p.Coeffs...)
		}
		if m, n, err := LinearFit(x, y); err == nil {
			checkCurve("LinearFit", Poly{Coeffs: []float64{n, m}}, m, n)
		}
		if ll, err := LogLinearFit(x, y); err == nil {
			checkCurve("LogLinearFit", ll, ll.Alpha, ll.Beta)
		}
		if len(x) >= 3 {
			if ed, err := ExpDecayFit(x, y); err == nil {
				checkCurve("ExpDecayFit", ed, ed.A, ed.Lambda, ed.C)
			}
		}
		if len(x) >= 4 {
			if pw, err := PiecewiseConstLogFit(x, y); err == nil {
				checkCurve("PiecewiseConstLogFit", pw, pw.Breakpoint)
			}
		}
		if len(x) >= 6 {
			if pw, err := PiecewiseExpLogFit(x, y); err == nil {
				checkCurve("PiecewiseExpLogFit", pw, pw.Breakpoint)
			}
		}
	})
}
