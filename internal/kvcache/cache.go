// Package kvcache implements a paged key/value cache in the style of
// vLLM's PagedAttention: fixed-size token blocks, per-sequence block
// tables, and reference-counted copy-on-write sharing. The engine uses it
// to account for memory capacity and to share prompt KV across parallel
// test-time-scaling decoders (§V-E: "the prefill phase is executed once
// ... during the decode phase we increase the batch size").
package kvcache

import (
	"errors"
	"fmt"
)

// Common error conditions.
var (
	// ErrOutOfBlocks means the allocation would exceed cache capacity.
	ErrOutOfBlocks = errors.New("kvcache: out of blocks")
	// ErrUnknownSequence means the sequence ID has no allocation.
	ErrUnknownSequence = errors.New("kvcache: unknown sequence")
	// ErrSequenceExists means Allocate was called twice for one ID.
	ErrSequenceExists = errors.New("kvcache: sequence already allocated")
)

// Config sizes a cache.
type Config struct {
	BlockSize     int   // tokens per block (vLLM default: 16)
	NumBlocks     int   // total blocks available
	BytesPerToken int64 // KV bytes one token occupies (from model.Arch)
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.BlockSize <= 0 {
		return fmt.Errorf("kvcache: BlockSize must be positive, got %d", c.BlockSize)
	}
	if c.NumBlocks <= 0 {
		return fmt.Errorf("kvcache: NumBlocks must be positive, got %d", c.NumBlocks)
	}
	return nil
}

// ConfigForMemory sizes a cache to fill the given byte budget.
func ConfigForMemory(budgetBytes int64, blockSize int, bytesPerToken int64) Config {
	if blockSize <= 0 {
		blockSize = 16
	}
	blockBytes := int64(blockSize) * bytesPerToken
	n := 0
	if blockBytes > 0 {
		n = int(budgetBytes / blockBytes)
	}
	return Config{BlockSize: blockSize, NumBlocks: n, BytesPerToken: bytesPerToken}
}

// sequence is a live allocation.
type sequence struct {
	blocks []int // indices into the block pool
	length int   // tokens stored
	freed  bool  // set on Free so stale Handles fail instead of corrupting
	// gen counts lifetimes of this (pooled, reusable) shell; a Handle
	// carries the gen it was issued under, so handles from a previous
	// lifetime are rejected even after the shell is recycled.
	gen int
}

// Cache is a paged KV cache. It is not safe for concurrent use; the
// engine serializes access.
//
// Block storage is watermark-allocated: len(refcount) is the number of
// blocks ever grabbed, and blocks past it are untouched capacity that
// costs no memory until used. Construction is therefore O(1) and a
// cache's footprint scales with its peak occupancy, not its configured
// capacity — a fleet can provision replicas with multi-GB KV budgets
// without materializing multi-MB bookkeeping per engine. Grab order is
// identical to the historical fully-materialized free list (recycled
// blocks LIFO first, then fresh indices ascending), so block-index
// sequences — and everything downstream that depends on them — are
// byte-for-byte unchanged.
type Cache struct {
	cfg      Config
	refcount []int // per grabbed block; 0 = free; len is the watermark
	free     []int // recycled blocks below the watermark (LIFO)
	seqs     map[string]*sequence
	// pool recycles freed sequence shells (and their block-table
	// capacity) so steady-state admit/free churn is allocation-free.
	pool []*sequence
	// tableCap is the largest block-table reservation seen; new tables
	// are sized to it so recycled shells fit any typical sequence.
	tableCap int
	// peakUsed tracks the high-water mark of allocated blocks.
	peakUsed int
	// shared counts blocks with refcount > 1, maintained incrementally at
	// every 1<->2 refcount transition so Stats never scans the pool.
	shared int
	// indexRefs, when non-nil, counts per-block references held by an
	// attached PrefixIndex (retained prefixes with no owning sequence),
	// so CheckInvariants can reconcile refcounts that no sequence holds.
	// Like refcount it is watermark-sized, growing on first touch.
	indexRefs []int
}

// New builds an empty cache in O(1): no per-block state is materialized
// until blocks are actually grabbed.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Cache{cfg: cfg, seqs: make(map[string]*sequence)}, nil
}

// blocksFor returns the block count holding n tokens.
func (c *Cache) blocksFor(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + c.cfg.BlockSize - 1) / c.cfg.BlockSize
}

// grab pops one free block, or fails: recycled blocks LIFO first, then a
// fresh index from under the watermark — the same order the historical
// materialized free list produced.
func (c *Cache) grab() (int, error) {
	var b int
	switch {
	case len(c.free) > 0:
		b = c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
		c.refcount[b] = 1
	case len(c.refcount) < c.cfg.NumBlocks:
		b = len(c.refcount)
		if c.refcount == nil {
			// Seed the watermark array at a 64-block floor so the early
			// growth doublings (1, 2, 4, ...) never happen; past the floor
			// append's geometric growth takes over.
			c.refcount = make([]int, 0, min(64, c.cfg.NumBlocks))
		}
		c.refcount = append(c.refcount, 1)
	default:
		return 0, ErrOutOfBlocks
	}
	if used := c.cfg.NumBlocks - c.FreeBlocks(); used > c.peakUsed {
		c.peakUsed = used
	}
	return b, nil
}

// retain adds one reference to an already-allocated block (fork-style
// sharing: Fork children and retained prefix index entries both go
// through here so the shared-block counter stays exact).
func (c *Cache) retain(b int) {
	if c.refcount[b] <= 0 {
		panic(fmt.Sprintf("kvcache: retain of free block %d", b))
	}
	c.refcount[b]++
	if c.refcount[b] == 2 {
		c.shared++
	}
}

// release decrements a block's refcount, returning it to the free list at
// zero.
func (c *Cache) release(b int) {
	if c.refcount[b] <= 0 {
		panic(fmt.Sprintf("kvcache: release of free block %d", b))
	}
	if c.refcount[b] == 2 {
		c.shared--
	}
	c.refcount[b]--
	if c.refcount[b] == 0 {
		if c.free == nil {
			c.free = make([]int, 0, min(64, c.cfg.NumBlocks))
		}
		c.free = append(c.free, b)
	}
}

// Allocate reserves blocks for a new sequence of the given token length.
// On failure nothing is allocated.
func (c *Cache) Allocate(seqID string, tokens int) error {
	return c.AllocateReserve(seqID, tokens, tokens)
}

// AllocateReserve is Allocate with the sequence's final token length
// known up front: blocks are grabbed for tokens only, but the block
// table is sized for reserveTokens so later appends never reallocate it
// — one table allocation per sequence lifetime, as ReserveH promises,
// without a grow-then-copy on admission.
func (c *Cache) AllocateReserve(seqID string, tokens, reserveTokens int) error {
	if _, ok := c.seqs[seqID]; ok {
		return ErrSequenceExists
	}
	need := c.blocksFor(tokens)
	if need > c.FreeBlocks() {
		return ErrOutOfBlocks
	}
	capBlocks := c.blocksFor(reserveTokens)
	if capBlocks < need {
		capBlocks = need
	}
	s := c.newSequence(capBlocks)
	s.length = tokens
	for i := 0; i < need; i++ {
		b, _ := c.grab() // cannot fail: capacity checked above
		s.blocks = append(s.blocks, b)
	}
	c.seqs[seqID] = s
	return nil
}

// newSequence returns an empty sequence shell with room for capBlocks,
// recycled from the free pool when possible.
func (c *Cache) newSequence(capBlocks int) *sequence {
	// Size every block table to the high-water reservation seen so far:
	// once one large sequence has passed through, recycled shells fit all
	// smaller ones and admit/free churn stops reallocating tables whose
	// sizes merely vary request to request.
	if capBlocks < c.tableCap {
		capBlocks = c.tableCap
	} else {
		c.tableCap = capBlocks
	}
	if n := len(c.pool); n > 0 {
		s := c.pool[n-1]
		c.pool[n-1] = nil
		c.pool = c.pool[:n-1]
		s.freed = false
		s.length = 0
		if cap(s.blocks) < capBlocks {
			s.blocks = make([]int, 0, capBlocks)
		}
		return s
	}
	return &sequence{blocks: make([]int, 0, capBlocks)}
}

// AppendToken extends a sequence by one token, allocating a fresh block at
// block boundaries and copying a shared tail block (copy-on-write) before
// writing into it. It is a thin wrapper over the bulk path; callers
// appending many tokens should use AppendTokens (or a Handle) instead of
// paying one map lookup per token.
func (c *Cache) AppendToken(seqID string) error {
	return c.AppendTokens(seqID, 1)
}

// AppendTokens extends a sequence by n tokens in one call: one map
// lookup, one copy-on-write check on the shared tail, and O(new blocks)
// grabs — the engine's decode loop advances whole chunks this way
// instead of once per token. n <= 0 is a no-op.
//
// On ErrOutOfBlocks the sequence keeps the partial progress a token-wise
// loop would have made (the tail and every grabbed block filled), so the
// call remains exactly equivalent to n consecutive AppendToken calls,
// error point included.
func (c *Cache) AppendTokens(seqID string, n int) error {
	s, ok := c.seqs[seqID]
	if !ok {
		return ErrUnknownSequence
	}
	return c.appendTokens(s, n)
}

// appendTokens is the shared bulk core behind AppendToken(s) and
// AppendTokensH.
func (c *Cache) appendTokens(s *sequence, n int) error {
	if n <= 0 {
		return nil
	}
	// Writing into a partial tail block: copy it first if shared. Any
	// block allocated past this point is exclusively owned, so one check
	// covers the whole extension.
	if s.length%c.cfg.BlockSize != 0 {
		tail := s.blocks[len(s.blocks)-1]
		if c.refcount[tail] > 1 {
			nb, err := c.grab()
			if err != nil {
				return err
			}
			c.release(tail)
			s.blocks[len(s.blocks)-1] = nb
		}
	}
	need := c.blocksFor(s.length+n) - len(s.blocks)
	if need > c.FreeBlocks() {
		// Capacity exhausted mid-extension: mirror the token-wise loop's
		// partial progress — fill the current tail, then grab blocks until
		// the free list runs dry — and fail at the same point it would.
		got := c.FreeBlocks()
		fit := (len(s.blocks)+got)*c.cfg.BlockSize - s.length
		for i := 0; i < got; i++ {
			b, _ := c.grab()
			s.blocks = append(s.blocks, b)
		}
		s.length += fit
		return ErrOutOfBlocks
	}
	for i := 0; i < need; i++ {
		b, _ := c.grab() // cannot fail: capacity checked above
		s.blocks = append(s.blocks, b)
	}
	s.length += n
	return nil
}

// Handle is a resolved reference to a live sequence: the engine looks a
// sequence up once per lifetime and then appends and frees through the
// handle without further map traffic. A Handle is invalidated by Free or
// FreeH; using it afterwards returns ErrUnknownSequence. Handles are only
// valid on the cache that issued them.
type Handle struct {
	c   *Cache
	s   *sequence
	id  string
	gen int
}

// ID returns the sequence ID the handle resolves.
func (h Handle) ID() string { return h.id }

// Lookup resolves a sequence ID to a Handle for the map-free fast path.
//
//edgereasoning:hotpath bench=BenchmarkKVAppend
func (c *Cache) Lookup(seqID string) (Handle, error) {
	s, ok := c.seqs[seqID]
	if !ok {
		return Handle{}, ErrUnknownSequence
	}
	return Handle{c: c, s: s, id: seqID, gen: s.gen}, nil
}

// valid reports whether h is a live handle issued by this cache for the
// current lifetime of its sequence shell.
//
//edgereasoning:hotpath bench=BenchmarkKVAppend
func (c *Cache) valid(h Handle) bool {
	return h.c == c && h.s != nil && !h.s.freed && h.s.gen == h.gen
}

// ReserveH grows the handle's block-table capacity to cover a final
// length of `tokens`, so a sequence whose total (prompt + output) is
// known at admission pays at most one table allocation for its whole
// lifetime. Only table capacity is reserved — no cache blocks are taken.
//
//edgereasoning:hotpath bench=BenchmarkKVAppend
func (c *Cache) ReserveH(h Handle, tokens int) error {
	if !c.valid(h) {
		return ErrUnknownSequence
	}
	if need := c.blocksFor(tokens); cap(h.s.blocks) < need {
		nb := make([]int, len(h.s.blocks), need) //edgereasoning:allow hotpath -- at most one table growth per sequence lifetime
		copy(nb, h.s.blocks)
		h.s.blocks = nb
	}
	return nil
}

// AppendTokensH is AppendTokens through a resolved Handle: zero map
// lookups on the decode hot path.
//
//edgereasoning:hotpath bench=BenchmarkKVAppend
func (c *Cache) AppendTokensH(h Handle, n int) error {
	if !c.valid(h) {
		return ErrUnknownSequence
	}
	return c.appendTokens(h.s, n)
}

// LengthH returns the handle's token count.
//
//edgereasoning:hotpath bench=BenchmarkKVAppend
func (c *Cache) LengthH(h Handle) (int, error) {
	if !c.valid(h) {
		return 0, ErrUnknownSequence
	}
	return h.s.length, nil
}

// FreeH releases the handle's sequence and invalidates the handle.
//
//edgereasoning:hotpath bench=BenchmarkKVAppend
func (c *Cache) FreeH(h Handle) error {
	if !c.valid(h) {
		return ErrUnknownSequence
	}
	c.freeSeq(h.id, h.s)
	return nil
}

// Fork creates childID sharing all of parentID's blocks copy-on-write.
// This is how parallel test-time scaling reuses one prefill across SF
// decoders at near-zero memory cost.
func (c *Cache) Fork(parentID, childID string) error {
	p, ok := c.seqs[parentID]
	if !ok {
		return ErrUnknownSequence
	}
	if _, ok := c.seqs[childID]; ok {
		return ErrSequenceExists
	}
	child := c.newSequence(len(p.blocks))
	child.length = p.length
	child.blocks = append(child.blocks, p.blocks...)
	for _, b := range p.blocks {
		c.retain(b)
	}
	c.seqs[childID] = child
	return nil
}

// Free releases a sequence's blocks.
func (c *Cache) Free(seqID string) error {
	s, ok := c.seqs[seqID]
	if !ok {
		return ErrUnknownSequence
	}
	c.freeSeq(seqID, s)
	return nil
}

// freeSeq releases the blocks, invalidates outstanding handles, and
// recycles the shell.
func (c *Cache) freeSeq(seqID string, s *sequence) {
	for _, b := range s.blocks {
		c.release(b)
	}
	s.freed = true
	s.gen++
	s.blocks = s.blocks[:0]
	delete(c.seqs, seqID)
	if c.pool == nil {
		// The pool peaks at the max live sequence count (~the batch size);
		// a 16-shell floor skips the early append-growth doublings.
		c.pool = make([]*sequence, 0, 16)
	}
	c.pool = append(c.pool, s)
}

// Length returns a sequence's token count.
func (c *Cache) Length(seqID string) (int, error) {
	s, ok := c.seqs[seqID]
	if !ok {
		return 0, ErrUnknownSequence
	}
	return s.length, nil
}

// Stats summarizes occupancy.
type Stats struct {
	TotalBlocks  int
	FreeBlocks   int
	UsedBlocks   int
	PeakUsed     int
	Sequences    int
	UsedBytes    int64
	TotalBytes   int64
	SharedBlocks int // blocks with refcount > 1
}

// FreeBlocks returns the available capacity in O(1): recycled blocks on
// the free list plus the untouched region past the watermark. Stats()
// reports the same number but the engine's per-admission capacity check
// comes through here.
func (c *Cache) FreeBlocks() int {
	return c.cfg.NumBlocks - len(c.refcount) + len(c.free)
}

// indexRef adjusts the prefix-index reference count for block b, growing
// the watermark-sized counter array on first touch.
func (c *Cache) indexRef(b, delta int) {
	for len(c.indexRefs) <= b {
		c.indexRefs = append(c.indexRefs, 0)
	}
	c.indexRefs[b] += delta
}

// PeakUsed returns the allocation high-water mark in O(1).
func (c *Cache) PeakUsed() int { return c.peakUsed }

// UsedBlocks returns current occupancy in O(1) — the telemetry layer
// samples it as a gauge on every serve event, so it must not pay
// Stats()'s struct assembly.
func (c *Cache) UsedBlocks() int { return c.cfg.NumBlocks - c.FreeBlocks() }

// Stats returns current occupancy. SharedBlocks reads the incrementally
// maintained counter, so the call is O(1); sharedScan is the O(n) audit
// kept as a test-only cross-check (CheckInvariants compares the two).
func (c *Cache) Stats() Stats {
	free := c.FreeBlocks()
	used := c.cfg.NumBlocks - free
	blockBytes := int64(c.cfg.BlockSize) * c.cfg.BytesPerToken
	return Stats{
		TotalBlocks:  c.cfg.NumBlocks,
		FreeBlocks:   free,
		UsedBlocks:   used,
		PeakUsed:     c.peakUsed,
		Sequences:    len(c.seqs),
		UsedBytes:    int64(used) * blockBytes,
		TotalBytes:   int64(c.cfg.NumBlocks) * blockBytes,
		SharedBlocks: c.shared,
	}
}

// sharedScan recounts shared blocks the slow way. It exists only to
// cross-check the incremental counter in CheckInvariants.
func (c *Cache) sharedScan() int {
	n := 0
	for _, r := range c.refcount {
		if r > 1 {
			n++
		}
	}
	return n
}

// CheckInvariants verifies internal consistency: every block is either on
// the free list with refcount 0 or referenced by exactly refcount holders
// (sequences plus any attached prefix index), per-sequence block counts
// match lengths, and the O(1) shared-block counter agrees with a full
// scan. Used by property tests.
func (c *Cache) CheckInvariants() error {
	// Only the watermark region has live state; blocks past it were never
	// grabbed and can hold no references.
	refs := make([]int, len(c.refcount))
	for id, s := range c.seqs {
		if got, want := len(s.blocks), c.blocksFor(s.length); got != want {
			return fmt.Errorf("kvcache: seq %s holds %d blocks for %d tokens (want %d)", id, got, s.length, want)
		}
		for _, b := range s.blocks {
			if b >= len(refs) {
				return fmt.Errorf("kvcache: seq %s holds block %d past watermark %d", id, b, len(refs))
			}
			refs[b]++
		}
	}
	if c.indexRefs != nil {
		for b, n := range c.indexRefs {
			if n < 0 {
				return fmt.Errorf("kvcache: block %d has negative index refcount %d", b, n)
			}
			if n > 0 && b >= len(refs) {
				return fmt.Errorf("kvcache: index holds block %d past watermark %d", b, len(refs))
			}
			if b < len(refs) {
				refs[b] += n
			}
		}
	}
	onFree := make(map[int]bool, len(c.free))
	for _, b := range c.free {
		if onFree[b] {
			return fmt.Errorf("kvcache: block %d appears twice on the free list", b)
		}
		onFree[b] = true
	}
	for b := range c.refcount {
		if refs[b] != c.refcount[b] {
			return fmt.Errorf("kvcache: block %d refcount %d, %d references found", b, c.refcount[b], refs[b])
		}
		if (c.refcount[b] == 0) != onFree[b] {
			return fmt.Errorf("kvcache: block %d free-list membership inconsistent with refcount %d", b, c.refcount[b])
		}
	}
	if scan := c.sharedScan(); scan != c.shared {
		return fmt.Errorf("kvcache: shared counter %d disagrees with scan %d", c.shared, scan)
	}
	return nil
}
