package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestLaneAllocatorNeverOverlaps(t *testing.T) {
	var la LaneAllocator
	type placed struct {
		lane       int
		start, end float64
	}
	// Deliberately out of start order — the allocator must stay safe for
	// any record order.
	spans := [][2]float64{{0, 10}, {2, 4}, {10, 12}, {4, 6}, {1, 2}, {12, 20}, {6, 9}}
	var got []placed
	for _, s := range spans {
		got = append(got, placed{la.Lane(s[0], s[1]), s[0], s[1]})
	}
	for i, a := range got {
		for _, b := range got[i+1:] {
			if a.lane != b.lane {
				continue
			}
			if a.start < b.end && b.start < a.end {
				t.Fatalf("lane %d: [%.0f,%.0f] overlaps [%.0f,%.0f]", a.lane, a.start, a.end, b.start, b.end)
			}
		}
	}
	// Sequential spans reuse lane 0.
	var seq LaneAllocator
	for i := 0; i < 5; i++ {
		if l := seq.Lane(float64(i), float64(i+1)); l != 0 {
			t.Fatalf("sequential span %d got lane %d, want 0", i, l)
		}
	}
}

func TestTrackRingOverflow(t *testing.T) {
	tr := New(Config{SpanCap: 4}).Track("r0")
	for i := 0; i < 7; i++ {
		tr.Record(Span{ID: string(rune('a' + i)), Start: float64(i), End: float64(i) + 0.5})
	}
	if tr.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", tr.Dropped())
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	// Record order preserved: the oldest retained span first.
	for i, s := range spans {
		if want := float64(i + 3); s.Start != want {
			t.Fatalf("span %d start = %v, want %v", i, s.Start, want)
		}
	}
}

func TestSeriesThinningAndCounter(t *testing.T) {
	tra := New(Config{SeriesCap: 8})
	g := tra.GaugeSeries("depth", "")
	for i := 0; i < 100; i++ {
		g.Sample(float64(i), float64(i))
	}
	pts := g.Points()
	if len(pts) > 8 {
		t.Fatalf("series kept %d points, cap 8", len(pts))
	}
	last, ok := g.Last()
	if !ok || last.V != 99 {
		t.Fatalf("last = %+v, want V=99", last)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].T <= pts[i-1].T {
			t.Fatalf("thinned series not strictly increasing in time: %v", pts)
		}
	}
	c := tra.CounterFor("opens", "")
	c.Add(1, 1)
	c.Add(2, 1)
	c.Add(5, 3)
	if last, _ := c.Last(); last.V != 5 {
		t.Fatalf("counter last = %v, want cumulative 5", last.V)
	}
}

// buildTrace assembles a small two-replica faulted trace by hand: one
// clean request on r0, one crash-aborted-then-retried request served by
// r1, with ingress queue spans and nested phase spans.
func buildTrace() *Trace {
	tra := New(Config{})
	ing := tra.Track("ingress")
	fl := tra.Track("faults")
	r0 := tra.Track("r0")
	r1 := tra.Track("r1")

	// Request A: arrives 0, dispatched 0, served on r0 over [0, 3].
	ing.Record(Span{ID: "A", Kind: KindQueue, Lane: 0, Start: 0, End: 0})
	r0.Record(Span{ID: "A", Kind: KindRequest, Lane: 0, Start: 0, End: 3, Wait: 0, Tokens: 300, Cached: 0})
	r0.Record(Span{ID: "A", Kind: KindPrefill, Lane: 0, Start: 0, End: 1, Tokens: 200})
	r0.Record(Span{ID: "A", Kind: KindDecode, Lane: 0, Start: 1, End: 3, Tokens: 100})

	// Request B: arrives 1, dispatched 2 (queue 1s) to r1; r1 crashes at
	// 4 (2s of the attempt lost), retry waits [4, 5], re-dispatched at 6
	// (queue 1s), admitted 6.5 (replica wait 0.5), restored+prefilled,
	// finishes at 10.
	flow := tra.NextFlow()
	ing.Record(Span{ID: "B", Kind: KindQueue, Lane: 0, Start: 1, End: 2})
	fl.Record(Span{ID: "B", Kind: KindAborted, Lane: 0, Start: 2, End: 4, Cause: "r1", Lost: 1.5, Flow: flow, FlowStart: true})
	fl.Record(Span{Kind: KindCrash, Cause: "r1", Lane: 1, Start: 4, End: 4})
	ing.Record(Span{ID: "B", Kind: KindRetryWait, Lane: 1, Start: 4, End: 5, Attempt: 1})
	ing.Record(Span{ID: "B", Kind: KindQueue, Lane: 0, Start: 5, End: 6, Attempt: 1, Flow: flow})
	r1.Record(Span{ID: "B", Kind: KindRequest, Lane: 0, Start: 6.5, End: 10, Wait: 0.5, Tokens: 260, Cached: 64})
	r1.Record(Span{ID: "B", Kind: KindStall, Lane: 0, Start: 6.5, End: 7})
	r1.Record(Span{ID: "B", Kind: KindRestore, Lane: 0, Start: 7, End: 7.25})
	r1.Record(Span{ID: "B", Kind: KindPrefill, Lane: 0, Start: 7.25, End: 8, Tokens: 196, Cached: 64})
	r1.Record(Span{ID: "B", Kind: KindDecode, Lane: 0, Start: 8, End: 10, Tokens: 60})

	tra.GaugeSeries("kv_used_blocks", "r0").Sample(1, 12)
	tra.GaugeSeries("kv_used_blocks", "r1").Sample(8, 20)
	tra.CounterFor("breaker_opens", "").Add(4, 1)
	tra.HistogramFor("ttft_seconds", "r0", TTFTBuckets).Observe(1)
	tra.HistogramFor("ttft_seconds", "r1", TTFTBuckets).Observe(1.5)
	return tra
}

func TestValidateSpansAcceptsWellFormed(t *testing.T) {
	if err := ValidateSpans(buildTrace()); err != nil {
		t.Fatalf("ValidateSpans: %v", err)
	}
}

func TestValidateSpansRejectsOverlapAndInversion(t *testing.T) {
	tra := New(Config{})
	tr := tra.Track("r0")
	tr.Record(Span{ID: "x", Kind: KindRequest, Lane: 0, Start: 0, End: 2})
	tr.Record(Span{ID: "y", Kind: KindRequest, Lane: 0, Start: 1, End: 3})
	if err := ValidateSpans(tra); err == nil {
		t.Fatal("overlapping siblings on one lane not rejected")
	}
	tra2 := New(Config{})
	tra2.Track("r0").Record(Span{ID: "z", Kind: KindDecode, Start: 5, End: 4})
	if err := ValidateSpans(tra2); err == nil {
		t.Fatal("span ending before its start not rejected")
	}
}

func TestChromeTraceExportRoundTrip(t *testing.T) {
	tra := buildTrace()
	var buf bytes.Buffer
	if err := tra.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("exported trace fails validation: %v", err)
	}
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	counts := map[string]int{}
	for _, ev := range doc.TraceEvents {
		counts[ev.Ph]++
	}
	if counts["s"] != 1 || counts["f"] != 1 {
		t.Fatalf("flow events s=%d f=%d, want one of each", counts["s"], counts["f"])
	}
	if counts["C"] == 0 {
		t.Fatal("no counter events exported")
	}
	if counts["i"] == 0 {
		t.Fatal("zero-duration crash marker not exported as an instant")
	}
	// Determinism: a second export is byte-identical.
	var buf2 bytes.Buffer
	if err := tra.WriteChromeTrace(&buf2); err != nil {
		t.Fatalf("second export: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("export is not deterministic")
	}
}

func TestValidateChromeTraceRejectsMalformed(t *testing.T) {
	if err := ValidateChromeTrace([]byte(`{"traceEvents": []}`)); err == nil {
		t.Fatal("empty trace accepted")
	}
	// Every malformed document below names pid 1 so it reaches the check
	// under test instead of failing the metadata requirement first.
	const meta = `{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"p"}}`
	for name, events := range map[string]string{
		"overlapping non-nested spans": `{"name":"a","ph":"X","ts":0,"dur":10,"pid":1,"tid":1},
			{"name":"b","ph":"X","ts":5,"dur":10,"pid":1,"tid":1}`,
		"non-monotone timestamps": `{"name":"a","ph":"X","ts":10,"dur":1,"pid":1,"tid":1},
			{"name":"b","ph":"X","ts":0,"dur":1,"pid":1,"tid":1}`,
		"negative timestamp":        `{"name":"a","ph":"X","ts":-5,"dur":1,"pid":1,"tid":1}`,
		"unknown phase":             `{"name":"a","ph":"Z","ts":0,"pid":1,"tid":1}`,
		"flow finish without start": `{"name":"retry","ph":"f","bp":"e","id":"9","ts":1,"pid":1,"tid":1}`,
		"flow finish before its start": `{"name":"retry","ph":"f","bp":"e","id":"9","ts":1,"pid":1,"tid":1},
			{"name":"retry","ph":"s","id":"9","ts":5,"pid":1,"tid":1}`,
		"event on unnamed pid": `{"name":"a","ph":"X","ts":0,"dur":1,"pid":7,"tid":1}`,
	} {
		doc := `{"traceEvents":[` + meta + `,` + events + `]}`
		if err := ValidateChromeTrace([]byte(doc)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestPrometheusExportRoundTrip(t *testing.T) {
	tra := buildTrace()
	var buf bytes.Buffer
	if err := tra.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	if err := ValidatePrometheus(buf.Bytes()); err != nil {
		t.Fatalf("exported snapshot fails validation: %v", err)
	}
	for _, want := range []string{
		`edgereasoning_kv_used_blocks{replica="r0"} 12`,
		`edgereasoning_breaker_opens_total 1`,
		`edgereasoning_ttft_seconds_count 2`,
		`# TYPE edgereasoning_ttft_seconds histogram`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, out)
		}
	}
	if err := ValidatePrometheus([]byte("not a metric line at all\n")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func TestBreakdownTilesE2E(t *testing.T) {
	tra := buildTrace()
	rows := tra.Breakdown()
	if len(rows) != 2 {
		t.Fatalf("breakdown has %d rows, want 2", len(rows))
	}
	a, b := rows[0], rows[1]
	if a.ID != "A" || b.ID != "B" {
		t.Fatalf("rows not sorted by arrival: %s, %s", a.ID, b.ID)
	}
	if a.E2E() != 3 || a.Prefill != 1 || a.Decode != 2 || a.Attempts != 0 {
		t.Fatalf("request A decomposition wrong: %+v", a)
	}
	if b.Arrival != 1 || b.Finish != 10 || b.Attempts != 1 || b.Track != "r1" {
		t.Fatalf("request B identity wrong: %+v", b)
	}
	if b.Ingress != 2 || b.RetryWait != 1 || b.AbortedWall != 2 || b.ReplicaWait != 0.5 {
		t.Fatalf("request B wait phases wrong: %+v", b)
	}
	if b.Stall != 0.5 || b.Restore != 0.25 || b.CachedTok != 64 {
		t.Fatalf("request B serve phases wrong: %+v", b)
	}
	for _, r := range rows {
		if res := math.Abs(r.Residual()); res > 1e-9 {
			t.Fatalf("request %s phases do not tile E2E: residual %g (%+v)", r.ID, res, r)
		}
		if r.Gap < -1e-9 {
			t.Fatalf("request %s has negative gap %g", r.ID, r.Gap)
		}
	}
}

func TestHistogramMergeAcrossTracks(t *testing.T) {
	tra := buildTrace()
	hs := tra.Histograms()
	var found bool
	for _, mh := range hs {
		if mh.Name != "ttft_seconds" {
			continue
		}
		found = true
		if mh.Hist.Count() != 2 {
			t.Fatalf("merged count = %d, want 2", mh.Hist.Count())
		}
		if len(mh.Labels) != 2 {
			t.Fatalf("labels = %v, want r0 and r1", mh.Labels)
		}
	}
	if !found {
		t.Fatal("ttft_seconds not in merged histograms")
	}
}
