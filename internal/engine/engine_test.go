package engine

import (
	"fmt"
	"math"
	"testing"

	"edgereasoning/internal/hw"
	"edgereasoning/internal/model"
)

func newOrinEngine(t *testing.T, id model.ID) *Engine {
	t.Helper()
	e, err := New(Config{Spec: model.MustLookup(id), Device: hw.JetsonAGXOrin64GB()})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestGenerateSingleRequest(t *testing.T) {
	e := newOrinEngine(t, model.DSR1Llama8B)
	m, err := e.Generate(Request{ID: "q1", PromptTokens: 256, OutputTokens: 811})
	if err != nil {
		t.Fatal(err)
	}
	if m.PrefillTime <= 0 || m.DecodeTime <= 0 {
		t.Fatalf("non-positive phase times: %+v", m)
	}
	// Table X: DSR1-Llama-8B Base averages 87.16 s for ~811 tokens.
	if m.TotalTime() < 50 || m.TotalTime() > 130 {
		t.Errorf("8B/811-token latency = %.1fs, paper reports ~87s", m.TotalTime())
	}
	// Takeaway #2: decode dominates.
	if m.DecodeTime/m.TotalTime() < 0.98 {
		t.Errorf("decode share = %.3f, want > 0.98", m.DecodeTime/m.TotalTime())
	}
	if m.Energy() <= 0 {
		t.Error("energy must be positive")
	}
	// All KV freed afterwards.
	if st := e.CacheStats(); st.UsedBlocks != 0 {
		t.Errorf("leaked KV blocks: %+v", st)
	}
}

func TestGenerateTPSMatchesPaperOrder(t *testing.T) {
	// Table II TPS column ordering: 1.5B ≈ 9.3 > 8B ≈ 7.8 > 14B ≈ 4.7.
	// Our simulator reproduces the ordering 1.5B > 8B > 14B.
	var tps []float64
	for _, id := range []model.ID{model.DSR1Qwen1_5B, model.DSR1Llama8B, model.DSR1Qwen14B} {
		e := newOrinEngine(t, id)
		m, err := e.Generate(Request{ID: "q", PromptTokens: 128, OutputTokens: 512})
		if err != nil {
			t.Fatal(err)
		}
		tps = append(tps, m.TPS())
	}
	if !(tps[0] > tps[1] && tps[1] > tps[2]) {
		t.Errorf("TPS ordering wrong: %v", tps)
	}
}

func TestModelTooLargeRejected(t *testing.T) {
	// A fictitious 80B model cannot fit Orin's 64 GB in FP16.
	spec := model.MustLookup(model.DSR1Qwen14B)
	spec.Arch.Layers *= 6
	if _, err := New(Config{Spec: spec, Device: hw.JetsonAGXOrin64GB()}); err == nil {
		t.Error("oversized model must be rejected")
	}
}

func TestRunContinuousBatching(t *testing.T) {
	e := newOrinEngine(t, model.DSR1Qwen1_5B)
	var reqs []Request
	for i := 0; i < 8; i++ {
		reqs = append(reqs, Request{ID: fmt.Sprintf("q%d", i), PromptTokens: 64, OutputTokens: 100 + 20*i})
	}
	b, err := e.Run(reqs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Requests) != 8 {
		t.Fatalf("completed %d of 8 requests", len(b.Requests))
	}
	if b.WallTime <= 0 || b.TotalEnergy <= 0 {
		t.Error("wall time and energy must be positive")
	}
	wantTokens := 0
	for _, r := range reqs {
		wantTokens += r.PromptTokens + r.OutputTokens
	}
	if b.TotalTokens != wantTokens {
		t.Errorf("token accounting: got %d, want %d", b.TotalTokens, wantTokens)
	}
	if st := e.CacheStats(); st.UsedBlocks != 0 {
		t.Errorf("leaked KV blocks: %+v", st)
	}
}

// Table III headline: batching amortizes weight reads — batch 30 completes
// the same workload far faster than batch 1.
func TestBatchingSpeedsUpThroughput(t *testing.T) {
	mkReqs := func() []Request {
		var reqs []Request
		for i := 0; i < 30; i++ {
			reqs = append(reqs, Request{ID: fmt.Sprintf("q%d", i), PromptTokens: 100, OutputTokens: 800})
		}
		return reqs
	}
	e1 := newOrinEngine(t, model.DSR1Qwen1_5B)
	b1, err := e1.Run(mkReqs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	e30 := newOrinEngine(t, model.DSR1Qwen1_5B)
	b30, err := e30.Run(mkReqs(), 30)
	if err != nil {
		t.Fatal(err)
	}
	speedup := b1.WallTime / b30.WallTime
	if speedup < 5 {
		t.Errorf("batch-30 speedup = %.1fx, paper reports ~11x", speedup)
	}
	if speedup > 30 {
		t.Errorf("batch-30 speedup = %.1fx is superlinear", speedup)
	}
	// Per-user TPS drops under batching (44 -> 21.2 in Table III).
	if b30.UserTPS() >= b1.UserTPS() {
		t.Errorf("user TPS should drop under batching: %.1f vs %.1f", b30.UserTPS(), b1.UserTPS())
	}
	// Total energy drops because wall time collapses.
	if b30.TotalEnergy >= b1.TotalEnergy {
		t.Errorf("batch-30 energy %.0f J should undercut batch-1 %.0f J", b30.TotalEnergy, b1.TotalEnergy)
	}
}

func TestRunParallelSharesPrefill(t *testing.T) {
	e := newOrinEngine(t, model.DSR1Llama8B)
	outputs := []int{128, 128, 128, 128}
	b, err := e.RunParallel(512, outputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Requests) != 4 {
		t.Fatalf("want 4 branches, got %d", len(b.Requests))
	}
	// Only branch 0 carries prefill cost.
	prefills := 0
	for _, m := range b.Requests {
		if m.PrefillTime > 0 {
			prefills++
		}
	}
	if prefills != 1 {
		t.Errorf("prefill charged to %d branches, want exactly 1", prefills)
	}
	if st := e.CacheStats(); st.UsedBlocks != 0 {
		t.Errorf("leaked KV blocks: %+v", st)
	}
}

// Fig 10a: parallel decode latency grows only mildly with SF.
func TestRunParallelLatencySublinear(t *testing.T) {
	lat := func(sf int) float64 {
		e := newOrinEngine(t, model.DSR1Llama8B)
		outputs := make([]int, sf)
		for i := range outputs {
			outputs[i] = 128
		}
		b, err := e.RunParallel(512, outputs)
		if err != nil {
			t.Fatal(err)
		}
		return b.WallTime
	}
	l1, l32 := lat(1), lat(32)
	if l32 <= l1 {
		t.Error("SF=32 must cost more than SF=1")
	}
	if l32/l1 > 2.5 {
		t.Errorf("SF=32/SF=1 latency ratio = %.2f, paper reports <2x up to SF=64", l32/l1)
	}
}

func TestRunParallelZeroOutputBranch(t *testing.T) {
	e := newOrinEngine(t, model.DSR1Qwen1_5B)
	b, err := e.RunParallel(64, []int{0, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Requests) != 2 {
		t.Fatalf("want 2 branches, got %d", len(b.Requests))
	}
	if st := e.CacheStats(); st.UsedBlocks != 0 {
		t.Errorf("leaked KV blocks: %+v", st)
	}
}

func TestRunRejectsEmptyPrompt(t *testing.T) {
	e := newOrinEngine(t, model.DSR1Qwen1_5B)
	if _, err := e.Run([]Request{{ID: "bad", PromptTokens: 0, OutputTokens: 5}}, 1); err == nil {
		t.Error("empty prompt must error")
	}
}

func TestFrameworkOverheadSlowsDecode(t *testing.T) {
	base, err := New(Config{Spec: model.MustLookup(model.DSR1Llama8B), Device: hw.JetsonAGXOrin64GB()})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := New(Config{
		Spec: model.MustLookup(model.DSR1Llama8B), Device: hw.JetsonAGXOrin64GB(),
		Framework: Overhead{Name: "HFT", PrefillFactor: 1.1, StepFactor: 1.0, PerStepHost: 0.012},
	})
	if err != nil {
		t.Fatal(err)
	}
	req := Request{ID: "q", PromptTokens: 64, OutputTokens: 128}
	mb, err := base.Generate(req)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := slow.Generate(req)
	if err != nil {
		t.Fatal(err)
	}
	ratio := ms.TotalTime() / mb.TotalTime()
	// Table IX: HF is ~1.12x slower than vLLM on 128-token decodes.
	if ratio < 1.05 || ratio > 1.25 {
		t.Errorf("HFT/vLLM ratio = %.3f, want ~1.12", ratio)
	}
}

func TestMetricsAccessors(t *testing.T) {
	m := Metrics{PrefillTime: 1, DecodeTime: 9, QueueTime: 2, OutputTokens: 90,
		PrefillEnergy: 10, DecodeEnergy: 40}
	if m.TotalTime() != 10 || m.Latency() != 12 || m.Energy() != 50 {
		t.Error("metrics arithmetic wrong")
	}
	if math.Abs(m.TPS()-9) > 1e-12 {
		t.Errorf("TPS = %v, want 9", m.TPS())
	}
}

// Energy conservation: the sum of per-request energies equals the batch
// total (within floating-point error).
func TestEnergyConservation(t *testing.T) {
	e := newOrinEngine(t, model.DSR1Qwen1_5B)
	var reqs []Request
	for i := 0; i < 6; i++ {
		reqs = append(reqs, Request{ID: fmt.Sprintf("q%d", i), PromptTokens: 64, OutputTokens: 80 + 30*i})
	}
	b, err := e.Run(reqs, 3)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, m := range b.Requests {
		sum += m.Energy()
	}
	if math.Abs(sum-b.TotalEnergy)/b.TotalEnergy > 1e-9 {
		t.Errorf("per-request energy sum %.3f != batch total %.3f", sum, b.TotalEnergy)
	}
}

// Wall time equals the sum of all phase advances: nothing happens off the
// simulated clock.
func TestWallTimeAccounting(t *testing.T) {
	e := newOrinEngine(t, model.DSR1Llama8B)
	before := e.Clock()
	b, err := e.Run([]Request{
		{ID: "a", PromptTokens: 100, OutputTokens: 50},
		{ID: "b", PromptTokens: 100, OutputTokens: 70},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs((e.Clock()-before)-b.WallTime) > 1e-9 {
		t.Errorf("clock advanced %.4f but WallTime = %.4f", e.Clock()-before, b.WallTime)
	}
}

// FCFS queueing: with maxBatch=1 the second request's queue time equals
// the first request's service time.
func TestQueueTimeFCFS(t *testing.T) {
	e := newOrinEngine(t, model.DSR1Qwen1_5B)
	b, err := e.Run([]Request{
		{ID: "first", PromptTokens: 64, OutputTokens: 100},
		{ID: "second", PromptTokens: 64, OutputTokens: 100},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var first, second Metrics
	for _, m := range b.Requests {
		if m.ID == "first" {
			first = m
		} else {
			second = m
		}
	}
	if first.QueueTime != 0 {
		t.Errorf("first request queued %.3fs, want 0", first.QueueTime)
	}
	if math.Abs(second.QueueTime-first.TotalTime()) > 1e-9 {
		t.Errorf("second queue time %.3f != first service time %.3f", second.QueueTime, first.TotalTime())
	}
}

// KV capacity pressure: a flood of long requests must still complete (the
// scheduler defers admissions rather than failing) and leave no blocks
// behind.
func TestKVPressureDefersAdmission(t *testing.T) {
	e := newOrinEngine(t, model.DSR1Qwen14B) // biggest KV footprint
	var reqs []Request
	for i := 0; i < 40; i++ {
		reqs = append(reqs, Request{ID: fmt.Sprintf("long%d", i), PromptTokens: 4096, OutputTokens: 2048})
	}
	b, err := e.Run(reqs, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Requests) != 40 {
		t.Fatalf("completed %d of 40", len(b.Requests))
	}
	if st := e.CacheStats(); st.UsedBlocks != 0 {
		t.Errorf("leaked blocks: %+v", st)
	}
	if b.PeakKVBlocks <= 0 {
		t.Error("peak KV must be recorded")
	}
}

// A single request larger than the whole cache is rejected with a clear
// error instead of deadlocking.
func TestOversizedRequestRejected(t *testing.T) {
	e := newOrinEngine(t, model.DSR1Qwen14B)
	total := e.CacheStats().TotalBlocks * 16 // tokens the cache can hold
	_, err := e.Run([]Request{{ID: "huge", PromptTokens: total, OutputTokens: total}}, 1)
	if err == nil {
		t.Fatal("impossible request must be rejected")
	}
	if st := e.CacheStats(); st.UsedBlocks != 0 {
		t.Errorf("rejection leaked blocks: %+v", st)
	}
}

// An oversized parallel fan-out fails the precheck cleanly.
func TestRunParallelCapacityPrecheck(t *testing.T) {
	e := newOrinEngine(t, model.DSR1Qwen14B)
	free := e.CacheStats().FreeBlocks
	branches := free/4 + 10 // each branch needs > 4 blocks of growth
	outputs := make([]int, branches)
	for i := range outputs {
		outputs[i] = 1024
	}
	if _, err := e.RunParallel(512, outputs); err == nil {
		t.Fatal("oversized fan-out must be rejected")
	}
	if st := e.CacheStats(); st.UsedBlocks != 0 {
		t.Errorf("precheck leaked blocks: %+v", st)
	}
}

func TestEngineClockAdvances(t *testing.T) {
	e := newOrinEngine(t, model.DSR1Qwen1_5B)
	if e.Clock() != 0 {
		t.Error("clock must start at 0")
	}
	_, err := e.Generate(Request{ID: "a", PromptTokens: 32, OutputTokens: 32})
	if err != nil {
		t.Fatal(err)
	}
	c1 := e.Clock()
	if c1 <= 0 {
		t.Error("clock must advance")
	}
	if err := e.Reset(); err != nil {
		t.Fatal(err)
	}
	if e.Clock() != 0 {
		t.Error("Reset must rewind the clock")
	}
}
