package gpusim

import (
	"math"

	"edgereasoning/internal/model"
)

// SpeculativeConfig parameterizes draft-and-verify speculative decoding,
// one of the §VI future-work optimizations: a small draft model proposes
// Gamma tokens per iteration and the target model verifies them in a
// single (token-parallel) forward pass. AcceptRate is the per-token
// probability a draft token survives verification.
type SpeculativeConfig struct {
	Draft      model.Arch
	DraftDType model.DType
	Gamma      int     // draft tokens proposed per iteration
	AcceptRate float64 // per-token acceptance probability α
}

// ExpectedTokensPerIteration returns the expected number of target tokens
// committed per draft-verify iteration: (1 − α^(γ+1)) / (1 − α), the
// standard speculative-sampling yield (Leviathan et al.). The verify pass
// always contributes at least one token.
func (c SpeculativeConfig) ExpectedTokensPerIteration() float64 {
	g := float64(c.Gamma)
	a := c.AcceptRate
	if c.Gamma <= 0 {
		return 1
	}
	if a <= 0 {
		return 1
	}
	if a >= 1 {
		return g + 1
	}
	return (1 - math.Pow(a, g+1)) / (1 - a)
}

// DecodeRunSpeculative times generating n tokens with the target
// architecture assisted by the draft model. Each iteration costs Gamma
// sequential draft steps plus one target verification pass over Gamma+1
// positions (tile-padded, so its cost is one target decode step on the
// memory side — the weights stream once either way). Returns the phase
// result and the realized speedup over plain decoding.
func (s *Sim) DecodeRunSpeculative(target model.Arch, dt model.DType, cfg SpeculativeConfig, startCtx, n int) (Result, float64) {
	plain := s.DecodeRun(target, dt, startCtx, n, 1)
	if n <= 0 || cfg.Gamma <= 0 {
		return plain, 1
	}
	yield := cfg.ExpectedTokensPerIteration()
	iters := int(math.Ceil(float64(n) / yield))
	// Context grows by the committed tokens; both models walk it.
	midCtx := startCtx + n/2

	// Draft cost: Gamma sequential small-model steps per iteration.
	draftStep := s.DecodeStep(cfg.Draft, cfg.DraftDType, []int{midCtx})
	// Verify cost: one target pass over Gamma+1 positions. Memory-bound
	// decode reads the weights once regardless of the (tiny) token count,
	// so a verify step costs one plain target step plus the extra KV/
	// activation traffic of the additional positions.
	verifyStep := s.DecodeStep(target, dt, []int{midCtx})
	extraKV := float64(cfg.Gamma) * float64(target.KVBytesPerToken()) / s.Device.EffectiveBandwidth()
	iterTime := float64(cfg.Gamma)*draftStep.Time + verifyStep.Time + extraKV

	res := Result{
		Phase:   PhaseDecode,
		Time:    float64(iters) * iterTime,
		FLOPs:   plain.FLOPs + float64(iters)*float64(cfg.Gamma)*draftStep.FLOPs,
		Bytes:   float64(iters) * (float64(cfg.Gamma)*draftStep.Bytes + verifyStep.Bytes),
		Kernels: iters * (cfg.Gamma*draftStep.Kernels + verifyStep.Kernels),
		Tokens:  n,
	}
	if res.Time > 0 {
		res.ComputeUtil = res.FLOPs / res.Time / s.Device.PeakFP16FLOPS
		res.BWUtil = res.Bytes / res.Time / s.Device.MemBandwidth
	}
	res.Occupancy = plain.Occupancy
	speedup := plain.Time / res.Time
	return res, speedup
}
