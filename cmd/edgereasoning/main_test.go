package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"edgereasoning/internal/experiments"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownCommand(t *testing.T) {
	if err := run([]string{"frobnicate"}); err == nil {
		t.Error("unknown command must fail")
	}
}

func TestRunMissingArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args must fail")
	}
	if err := run([]string{"run"}); err == nil {
		t.Error("run without id must fail")
	}
}

func TestRunExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"run", "saturation", "-quick", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no CSV files written")
	}
	data, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty CSV")
	}
}

func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	if err := run([]string{"run", "saturation", "-quick", "-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		info, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestProfileFlagBadPath(t *testing.T) {
	if err := run([]string{"run", "saturation", "-quick", "-cpuprofile", filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out")}); err == nil {
		t.Error("unwritable cpuprofile path must fail")
	}
}

func TestFleetSubcommand(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"fleet", "-quick", "-replicas", "2", "-policy", "deadline", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fleet.csv", "fleet-verify.csv"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("missing %s: %v", want, err)
		}
	}
}

func TestFleetSubcommandRejectsBadFlags(t *testing.T) {
	if err := run([]string{"fleet", "-policy", "chaos"}); err == nil {
		t.Error("unknown policy must fail before engines spin up")
	}
	if err := run([]string{"fleet", "-devices", "tpu"}); err == nil {
		t.Error("unknown device must fail before engines spin up")
	}
	if err := run([]string{"fleet", "-seeds", "1,2"}); err == nil {
		t.Error("-seeds must be rejected on fleet")
	}
	if err := run([]string{"run", "qps", "-replicas", "4"}); err == nil {
		t.Error("fleet flags must not leak into run")
	}
}

func TestSessionsSubcommand(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"sessions", "-quick", "-sessions", "3", "-turns", "2",
		"-branch", "1", "-policy", "sa", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sessions.csv", "sessions-affinity.csv", "sessions-verify.csv"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("missing %s: %v", want, err)
		}
	}
}

func TestSessionsSubcommandRejectsBadFlags(t *testing.T) {
	if err := run([]string{"sessions", "-policy", "chaos"}); err == nil {
		t.Error("unknown policy must fail before engines spin up")
	}
	if err := run([]string{"sessions", "-turns", "-3"}); err == nil {
		t.Error("negative turn count must be rejected")
	}
	if err := run([]string{"sessions", "-seeds", "1,2"}); err == nil {
		t.Error("-seeds must be rejected on sessions")
	}
	if err := run([]string{"run", "qps", "-turns", "4"}); err == nil {
		t.Error("sessions flags must not leak into run")
	}
	if err := run([]string{"fleet", "-turns", "4"}); err == nil {
		t.Error("sessions flags must not leak into fleet")
	}
}

func TestAutoscaleSubcommand(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"autoscale", "-quick", "-min", "1", "-max", "4",
		"-admission", "shed", "-scale-on", "depth", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"autoscale.csv", "autoscale-events.csv",
		"autoscale-admission.csv", "autoscale-verify.csv"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("missing %s: %v", want, err)
		}
	}
}

func TestAutoscaleSubcommandRejectsBadFlags(t *testing.T) {
	if err := run([]string{"autoscale", "-admission", "lifo"}); err == nil {
		t.Error("unknown admission discipline must fail before engines spin up")
	}
	if err := run([]string{"autoscale", "-scale-on", "vibes"}); err == nil {
		t.Error("unknown scale signal must fail before engines spin up")
	}
	if err := run([]string{"autoscale", "-devices", "tpu"}); err == nil {
		t.Error("unknown device must fail before engines spin up")
	}
	if err := run([]string{"autoscale", "-min", "4", "-max", "2"}); err == nil {
		t.Error("-max below -min must be rejected")
	}
	if err := run([]string{"autoscale", "-min", "-1"}); err == nil {
		t.Error("negative bounds must be rejected")
	}
	if err := run([]string{"autoscale", "-seeds", "1,2"}); err == nil {
		t.Error("-seeds must be rejected on autoscale")
	}
	if err := run([]string{"run", "qps", "-admission", "shed"}); err == nil {
		t.Error("autoscale flags must not leak into run")
	}
	if err := run([]string{"fleet", "-max", "4"}); err == nil {
		t.Error("autoscale flags must not leak into fleet")
	}
}

func TestSaturateSubcommand(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"saturate", "-quick", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"saturate.csv", "saturate-verify.csv"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("missing %s: %v", want, err)
		}
	}
}

func TestSaturateSubcommandRejectsBadFlags(t *testing.T) {
	if err := run([]string{"saturate", "-metric", "vibes"}); err == nil {
		t.Error("unknown metric must fail before probes spin up")
	}
	if err := run([]string{"saturate", "-slo", "-1"}); err == nil {
		t.Error("negative SLO must be rejected")
	}
	if err := run([]string{"saturate", "-metric", "hitrate", "-slo", "1.5"}); err == nil {
		t.Error("hit-rate SLO above 1 must be rejected")
	}
	if err := run([]string{"saturate", "-requests", "-5"}); err == nil {
		t.Error("negative probe size must be rejected")
	}
	if err := run([]string{"saturate", "-devices", "tpu"}); err == nil {
		t.Error("unknown device must fail before probes spin up")
	}
	if err := run([]string{"saturate", "-seeds", "1,2"}); err == nil {
		t.Error("-seeds must be rejected on saturate")
	}
	if err := run([]string{"run", "qps", "-slo", "3"}); err == nil {
		t.Error("saturate flags must not leak into run")
	}
	if err := run([]string{"fleet", "-metric", "p99"}); err == nil {
		t.Error("saturate flags must not leak into fleet")
	}
}

func TestSoakSubcommand(t *testing.T) {
	if err := run([]string{"soak", "-requests", "200", "-qps", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestSoakSubcommandRejectsBadFlags(t *testing.T) {
	if err := run([]string{"soak", "-requests", "0.5"}); err == nil {
		t.Error("fractional request count must be rejected")
	}
	if err := run([]string{"soak", "-requests", "0"}); err == nil {
		t.Error("zero request count must be rejected")
	}
	if err := run([]string{"soak", "-qps", "-1"}); err == nil {
		t.Error("non-positive qps must be rejected")
	}
	if err := run([]string{"soak", "extra"}); err == nil {
		t.Error("positional arguments must be rejected")
	}
	if err := run([]string{"run", "qps", "-requests", "100"}); err == nil {
		t.Error("soak flags must not leak into run")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"run", "fig999"}); err == nil {
		t.Error("unknown experiment must fail")
	}
}

func TestHelp(t *testing.T) {
	if err := run([]string{"help"}); err != nil {
		t.Error("help must succeed")
	}
}

func TestRunWithRunnerFlags(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"run", "saturation", "-quick", "-parallel", "2",
		"-timeout", "5m", "-metrics", "-csv", dir})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no CSV files written")
	}
}

func TestSweepCommand(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"sweep", "saturation", "-quick", "-seeds", "3,5", "-csv", dir})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d CSV files, want one per seed (2)", len(entries))
	}
	for _, e := range entries {
		if !strings.Contains(e.Name(), "seed") {
			t.Errorf("sweep CSV %q not tagged with its seed", e.Name())
		}
	}
}

func TestSweepMissingID(t *testing.T) {
	if err := run([]string{"sweep"}); err == nil {
		t.Error("sweep without id must fail")
	}
	if err := run([]string{"sweep", "tabl2"}); err == nil ||
		!strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("sweep with unknown id must fail up front, got %v", err)
	}
}

func TestSeedFlagsRejectedCrossCommand(t *testing.T) {
	// -seeds on run/all and -seed on sweep would otherwise be silently
	// ignored; the CLI must reject them instead.
	if err := run([]string{"run", "saturation", "-seeds", "1,2"}); err == nil {
		t.Error("run with -seeds must fail")
	}
	if err := run([]string{"all", "-quick", "-seeds", "1,2"}); err == nil {
		t.Error("all with -seeds must fail")
	}
	if err := run([]string{"sweep", "saturation", "-seed", "42"}); err == nil {
		t.Error("sweep with -seed must fail")
	}
}

func TestBadSeedList(t *testing.T) {
	if err := run([]string{"sweep", "saturation", "-seeds", "1,bogus"}); err == nil {
		t.Error("malformed seed list must fail")
	}
	if err := run([]string{"sweep", "saturation", "-seeds", "3,3"}); err == nil {
		t.Error("duplicate seeds must fail (they clobber seed-tagged CSVs)")
	}
	if err := run([]string{"sweep", "saturation", "-seeds", ""}); err == nil {
		t.Error("explicitly empty -seeds must fail, not silently sweep the defaults")
	}
}

func TestTrailingPositionalArgsRejected(t *testing.T) {
	// `sweep table2 5 7` looks like it passes seeds but flag.Parse would
	// silently drop the positionals; reject them instead.
	if err := run([]string{"sweep", "saturation", "5", "7"}); err == nil {
		t.Error("trailing positional args must fail")
	}
	if err := run([]string{"run", "saturation", "extra"}); err == nil {
		t.Error("trailing positional args must fail")
	}
}

func TestParseSeedsDefault(t *testing.T) {
	seeds, err := parseSeeds("")
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 8 || seeds[0] != 1 || seeds[7] != 8 {
		t.Errorf("default seeds = %v, want 1..8", seeds)
	}
}

func TestExecuteFailSoft(t *testing.T) {
	// A broken ID mixed into the list is reported at the end instead of
	// aborting the drivers scheduled after it: the good driver's CSV
	// still lands on disk.
	dir := t.TempDir()
	cfg := config{opts: experiments.Options{Seed: 7, Quick: true}, csvDir: dir, parallel: 1}
	err := execute([]string{"fig999", "saturation"}, cfg)
	if err == nil || !strings.Contains(err.Error(), "fig999") {
		t.Fatalf("err = %v, want failure naming fig999", err)
	}
	if _, statErr := os.Stat(filepath.Join(dir, "saturation.csv")); statErr != nil {
		t.Errorf("driver after the broken one must still run: %v", statErr)
	}
}
