package engine

import (
	"testing"

	"edgereasoning/internal/hw"
	"edgereasoning/internal/model"
)

func newPrefixEngine(t *testing.T, id model.ID) *Engine {
	t.Helper()
	e, err := New(Config{Spec: model.MustLookup(id), Device: hw.JetsonAGXOrin64GB(), PrefixCache: true})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// sessTimed builds a timed request with token identities derived from a
// shared history slice, the way internal/session emits them.
func sessTimed(id string, arrival float64, history []uint64, prompt, output int) TimedRequest {
	tr := TimedRequest{
		Request:    Request{ID: id, PromptTokens: prompt, OutputTokens: output},
		Arrival:    arrival,
		SessionID:  "s0",
		PromptSyms: history[:prompt],
	}
	if prompt+output <= len(history) {
		tr.OutputSyms = history[prompt : prompt+output]
	}
	return tr
}

func growingHistory(n int) []uint64 {
	h := make([]uint64, n)
	for i := range h {
		h[i] = 0x9e3779b97f4a7c15 + uint64(i)
	}
	return h
}

func TestServeWarmTurnReusesPrefix(t *testing.T) {
	history := growingHistory(2048)
	// Turn 0: 512-token prompt, 256-token output. Turn 1: the prompt is
	// the full turn-0 history plus 128 new tokens.
	turn0 := sessTimed("t0", 0, history, 512, 256)
	turn1 := sessTimed("t1", 200, history, 512+256+128, 64)

	warm := newPrefixEngine(t, model.DSR1Qwen1_5B)
	wm, err := warm.Serve([]TimedRequest{turn0, turn1}, 4, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	cold := newOrinEngine(t, model.DSR1Qwen1_5B)
	cm, err := cold.Serve([]TimedRequest{turn0, turn1}, 4, FCFS)
	if err != nil {
		t.Fatal(err)
	}

	if wm.PrefixLookups != 2 || wm.PrefixHits != 1 {
		t.Fatalf("prefix lookups/hits = %d/%d, want 2/1", wm.PrefixLookups, wm.PrefixHits)
	}
	// The whole turn-0 history is block-aligned (768 tokens, block 16),
	// so turn 1 reuses all of it.
	if wm.SavedPrefillTokens != 768 {
		t.Fatalf("saved %d prefill tokens, want 768", wm.SavedPrefillTokens)
	}
	if cm.SavedPrefillTokens != 0 || cm.PrefixLookups != 0 {
		t.Fatalf("cold engine reported prefix activity: %+v", cm)
	}

	// Completion order is request order here; index 1 is turn 1.
	wt1, ct1 := wm.Requests[1], cm.Requests[1]
	if wt1.CachedPromptTokens != 768 {
		t.Fatalf("turn-1 cached %d tokens, want 768", wt1.CachedPromptTokens)
	}
	if wt1.PrefillTime >= ct1.PrefillTime {
		t.Errorf("warm prefill %.4fs not faster than cold %.4fs", wt1.PrefillTime, ct1.PrefillTime)
	}
	if wt1.DecodeTime != ct1.DecodeTime {
		t.Errorf("decode time changed: warm %.4fs cold %.4fs", wt1.DecodeTime, ct1.DecodeTime)
	}
	// Turn 0 is identical either way (cold start).
	if wm.Requests[0].PrefillTime != cm.Requests[0].PrefillTime {
		t.Errorf("turn-0 prefill differs: warm %.4fs cold %.4fs",
			wm.Requests[0].PrefillTime, cm.Requests[0].PrefillTime)
	}
}

func TestServePrefixDisabledMatchesBaseline(t *testing.T) {
	// A prefix-enabled engine serving requests WITHOUT syms must behave
	// exactly like the baseline engine.
	reqs := []TimedRequest{
		timed("a", 0, 64, 100, 0),
		timed("b", 1, 128, 50, 20),
		timed("c", 2, 64, 100, 0),
	}
	base := newOrinEngine(t, model.DSR1Qwen1_5B)
	bm, err := base.Serve(reqs, 2, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	pref := newPrefixEngine(t, model.DSR1Qwen1_5B)
	pm, err := pref.Serve(reqs, 2, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if bm.WallTime != pm.WallTime || bm.TotalEnergy != pm.TotalEnergy {
		t.Fatalf("sym-less serving diverged: wall %.6f vs %.6f, energy %.3f vs %.3f",
			bm.WallTime, pm.WallTime, bm.TotalEnergy, pm.TotalEnergy)
	}
	if pm.PrefixLookups != 0 {
		t.Fatalf("sym-less requests consulted the prefix cache %d times", pm.PrefixLookups)
	}
}

func TestServeBranchesShareOneHistory(t *testing.T) {
	history := growingHistory(1024)
	e := newPrefixEngine(t, model.DSR1Qwen1_5B)
	// Seed the index with one completed turn.
	if _, err := e.Serve([]TimedRequest{sessTimed("t0", 0, history, 512, 256)}, 4, FCFS); err != nil {
		t.Fatal(err)
	}
	// Three parallel branches off the same 768-token history.
	branches := make([]TimedRequest, 3)
	for i := range branches {
		branches[i] = sessTimed("b"+string(rune('0'+i)), 1000, history, 768, 64)
		branches[i].OutputSyms = nil // dead-end samples
	}
	bm, err := e.Serve(branches, 4, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if bm.PrefixHits != 3 {
		t.Fatalf("prefix hits = %d, want 3", bm.PrefixHits)
	}
	// 768 tokens, block 16: the cap leaves the last block to prefill, so
	// each branch reuses 752 tokens.
	if want := 3 * 752; bm.SavedPrefillTokens != want {
		t.Fatalf("saved %d tokens, want %d", bm.SavedPrefillTokens, want)
	}
	if err := e.cache.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if st := e.CacheStats(); st.Sequences != 0 {
		t.Fatalf("leaked %d sequences", st.Sequences)
	}
}

func TestServePrefixMetricsAccumulate(t *testing.T) {
	history := growingHistory(512)
	e := newPrefixEngine(t, model.DSR1Qwen1_5B)
	if _, err := e.Serve([]TimedRequest{sessTimed("t0", 0, history, 256, 128)}, 1, FCFS); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Serve([]TimedRequest{sessTimed("t1", 500, history, 448, 32)}, 1, FCFS); err != nil {
		t.Fatal(err)
	}
	pm := e.PrefixMetrics()
	if pm.Lookups != 2 || pm.Hits != 1 || pm.SavedTokens == 0 {
		t.Fatalf("engine-lifetime prefix metrics wrong: %+v", pm)
	}
	// Reset discards the index along with the cache.
	if err := e.Reset(); err != nil {
		t.Fatal(err)
	}
	if pm := e.PrefixMetrics(); pm.Lookups != 0 {
		t.Fatalf("reset kept prefix metrics: %+v", pm)
	}
}
