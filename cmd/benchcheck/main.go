// Command benchcheck maintains and enforces the repository's benchmark
// trajectory file (BENCH_serve.json).
//
// It reads raw `go test -bench -benchmem` output on stdin and either:
//
//	benchcheck -baseline BENCH_serve.json -update   # rewrite the "current" section
//	benchcheck -baseline BENCH_serve.json           # gate: fail on allocs/op regression
//
// Only allocs/op is gated — it is deterministic across machines, while
// ns/op varies with hardware and is reported for information only. A
// fresh measurement fails the check when it exceeds
// baseline*(1+tolerance)+slack. The "pre_pr" section records the
// pre-optimization tree and is preserved verbatim on update, so the
// before/after story stays in the file. With -update -commit <hash>
// [-date <YYYY-MM-DD>], the measurement is additionally appended to the
// "history" list (deduplicated by commit), making the cross-PR perf
// trajectory machine-readable.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Measurement is one benchmark target's recorded numbers.
type Measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Section is one labelled set of measurements.
type Section struct {
	Note    string                 `json:"note,omitempty"`
	Go      string                 `json:"go,omitempty"`
	Targets map[string]Measurement `json:"targets"`
}

// HistoryEntry is one PR's frozen measurement in the cross-PR
// trajectory: the commit the tree was measured at, the (UTC) date, and
// the full target set of that run.
type HistoryEntry struct {
	Commit  string                 `json:"commit"`
	Date    string                 `json:"date,omitempty"`
	Go      string                 `json:"go,omitempty"`
	Targets map[string]Measurement `json:"targets"`
}

// File is the BENCH_serve.json schema.
type File struct {
	Schema  int     `json:"schema"`
	Note    string  `json:"note,omitempty"`
	PrePR   Section `json:"pre_pr"`
	Current Section `json:"current"`
	// History accumulates one entry per PR (appended by `-update -commit
	// <hash>`, deduplicated by commit), so the perf trajectory across
	// the repository's life stays machine-readable.
	History []HistoryEntry `json:"history,omitempty"`
}

// benchLine matches one `go test -bench -benchmem` result row, e.g.
//
//	BenchmarkServeHotLoop-8   35095   97204 ns/op   32184 B/op   60 allocs/op
//
// Custom b.ReportMetric columns land between ns/op and B/op
// (alphabetical by unit), so the middle of the line is matched loosely:
//
//	BenchmarkSoakServe   1   1672420452 ns/op   8.121 live-heap-MB   1893551 sim-events/s   65732960 B/op   1999923 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op.*?\s([0-9]+) B/op\s+([0-9]+) allocs/op`)

// parseBench extracts measurements from raw benchmark output. A line
// that names a Benchmark and carries ns/op but fails the full pattern
// is an error, not a skip: dropping it would silently lose the target —
// and under -update a lost target rewrites the baseline without it,
// retiring its own regression gate.
func parseBench(r io.Reader) (map[string]Measurement, error) {
	out := make(map[string]Measurement)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			if line := sc.Text(); strings.HasPrefix(line, "Benchmark") && strings.Contains(line, "ns/op") {
				return nil, fmt.Errorf("benchcheck: malformed benchmark line %q (truncated or missing -benchmem columns?)", line)
			}
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchcheck: bad ns/op in %q: %w", sc.Text(), err)
		}
		bytes, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchcheck: bad B/op in %q: %w", sc.Text(), err)
		}
		allocs, err := strconv.ParseInt(m[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchcheck: bad allocs/op in %q: %w", sc.Text(), err)
		}
		out[m[1]] = Measurement{NsPerOp: ns, BytesPerOp: bytes, AllocsPerOp: allocs}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchcheck: no benchmark result lines on stdin (need -benchmem output)")
	}
	return out, nil
}

// check compares fresh measurements against the baseline targets,
// returning one line per comparison and an error if any allocs/op
// regressed beyond tolerance. Targets missing from the fresh run fail:
// a silently dropped benchmark would otherwise retire its own gate.
func check(baseline, fresh map[string]Measurement, tolerance float64, slack int64, w io.Writer) error {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	var failed []string
	for _, name := range names {
		base := baseline[name]
		got, ok := fresh[name]
		if !ok {
			failed = append(failed, name)
			fmt.Fprintf(w, "MISS %s: target not present in this run\n", name)
			continue
		}
		limit := int64(float64(base.AllocsPerOp)*(1+tolerance)) + slack
		status := "ok  "
		if got.AllocsPerOp > limit {
			status = "FAIL"
			failed = append(failed, name)
		}
		fmt.Fprintf(w, "%s %s: allocs/op %d (baseline %d, limit %d); ns/op %.0f (baseline %.0f, informational)\n",
			status, name, got.AllocsPerOp, base.AllocsPerOp, limit, got.NsPerOp, base.NsPerOp)
	}
	if len(failed) > 0 {
		return fmt.Errorf("benchcheck: %d of %d targets regressed or missing: %v", len(failed), len(baseline), failed)
	}
	return nil
}

// update rewrites the file's "current" section with fresh measurements,
// preserving the pre-PR reference section byte-for-byte in meaning. When
// a commit is supplied, the measurement is also recorded in the history
// trajectory — replacing an existing entry for the same commit, so
// re-running update on one tree does not duplicate its point.
func update(f *File, fresh map[string]Measurement, commit, date string) {
	f.Schema = 1
	f.Current = Section{
		Note:    "latest committed measurement; regenerate with scripts/bench.sh update",
		Go:      runtime.Version(),
		Targets: fresh,
	}
	if commit == "" {
		return
	}
	entry := HistoryEntry{Commit: commit, Date: date, Go: runtime.Version(), Targets: fresh}
	for i := range f.History {
		if f.History[i].Commit == commit {
			f.History[i] = entry
			return
		}
	}
	f.History = append(f.History, entry)
}

func run(baselinePath string, doUpdate bool, commit, date string, tolerance float64, slack int64, hotpaths string, stdin io.Reader, stdout io.Writer) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("benchcheck: parse %s: %w", baselinePath, err)
	}
	fresh, err := parseBench(stdin)
	if err != nil {
		return err
	}
	if doUpdate {
		update(&f, fresh, commit, date)
		out, err := json.MarshalIndent(&f, "", "  ")
		if err != nil {
			return err
		}
		out = append(out, '\n')
		if err := os.WriteFile(baselinePath, out, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "benchcheck: wrote %d targets to %s\n", len(fresh), baselinePath)
		return nil
	}
	checkErr := check(f.Current.Targets, fresh, tolerance, slack, stdout)
	if hotpaths != "" {
		n, err := reportHotpaths(hotpaths, f.Current.Targets, stdout)
		if err != nil {
			return err
		}
		if n > 0 {
			fmt.Fprintf(stdout, "benchcheck: %d hotpath annotation(s) without a gated benchmark (warnings)\n", n)
		}
	}
	return checkErr
}

func main() {
	baseline := flag.String("baseline", "BENCH_serve.json", "benchmark trajectory file")
	doUpdate := flag.Bool("update", false, "rewrite the baseline's current section from stdin instead of checking")
	commit := flag.String("commit", "", "with -update: also record the measurement as this commit's history entry")
	date := flag.String("date", "", "with -update -commit: the measurement date (UTC, YYYY-MM-DD)")
	tolerance := flag.Float64("tolerance", 0.25, "fractional allocs/op headroom before a regression fails")
	slack := flag.Int64("slack", 8, "absolute allocs/op headroom added on top of the tolerance")
	hotpaths := flag.String("hotpaths", "", "with check: also warn about //edgereasoning:hotpath annotations in this source tree whose bench= target is not gated in the baseline")
	flag.Parse()
	if err := run(*baseline, *doUpdate, *commit, *date, *tolerance, *slack, *hotpaths, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
