package main

import (
	"flag"
	"fmt"
	"os"

	"edgereasoning/internal/engine"
	"edgereasoning/internal/faults"
	"edgereasoning/internal/fleet"
	"edgereasoning/internal/model"
	"edgereasoning/internal/telemetry"
	"edgereasoning/internal/workload"
)

// traceCmd serves a faulted, autoscaled open-loop run with telemetry on
// and exports the result: a Chrome trace-event JSON (load it at
// ui.perfetto.dev — one track per replica plus the shared ingress and
// faults tracks, flow arrows linking crash aborts to their retries) and
// an optional Prometheus text-format snapshot of the run's final
// series and histograms. The emitted JSON is validated before it is
// written, so a reported success is loadable by construction.
func traceCmd(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	out := fs.String("out", "trace.json", "Chrome trace-event JSON output path")
	metricsOut := fs.String("metrics-out", "", "Prometheus snapshot output path (empty = skip)")
	requests := fs.Int("requests", 400, "requests to stream")
	qps := fs.Float64("qps", 2.2, "offered load in requests/s")
	replicas := fs.Int("replicas", 2, "initial pool size")
	maxReplicas := fs.Int("max", 4, "autoscale pool ceiling")
	seed := fs.Uint64("seed", 7, "random seed")
	crashRate := fs.Float64("crash-rate", 1.5, "expected crashes per configured replica")
	throttle := fs.Float64("throttle", 2, "thermal-throttle slowdown factor (1 = none)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile at exit to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("trace: unexpected arguments %q", fs.Args())
	}
	switch {
	case *requests <= 0:
		return fmt.Errorf("trace: -requests must be positive")
	case *qps <= 0:
		return fmt.Errorf("trace: -qps must be positive")
	case *replicas <= 0:
		return fmt.Errorf("trace: -replicas must be positive")
	case *maxReplicas < *replicas:
		return fmt.Errorf("trace: -max %d below -replicas %d", *maxReplicas, *replicas)
	case *crashRate < 0 || *throttle < 0:
		return fmt.Errorf("trace: -crash-rate and -throttle must be non-negative")
	}
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProfiles()

	spec := model.MustLookup(model.Qwen25_1_5Bit)
	devices := fleet.DefaultDevices()
	profile := workload.InteractiveAssistant(*qps, *requests)
	profile.DeadlineSlack = 3
	profile.DeadlineSlackMax = 9
	reqs, err := workload.Generate(profile, *seed)
	if err != nil {
		return err
	}
	horizon := float64(*requests) / *qps
	sched, err := faults.Generate(faults.GenConfig{
		Replicas: *replicas, Horizon: horizon,
		CrashRate: *crashRate, RestartDelay: 6,
		StallRate: 1, StallDuration: 2,
		ThrottleRate: 1, ThrottleDuration: horizon / 8, ThrottleFactor: *throttle,
	}, *seed)
	if err != nil {
		return err
	}
	trace := telemetry.New(telemetry.Config{SpanCap: 1 << 17})
	m, err := fleet.ServeSource(fleet.Config{
		Replicas: fleet.HeterogeneousReplicas(*replicas, devices, spec),
		Policy:   fleet.DeadlineAware,
		Autoscale: &fleet.AutoscaleConfig{
			Min: 1, Max: *maxReplicas, Spec: spec, Devices: devices,
		},
		Faults: &sched,
		Retry:  &fleet.RetryPolicy{Hedge: true},
		Health: &fleet.HealthConfig{FailureThreshold: 2, ProbeAfter: 1},
		Trace:  trace,
	}, engine.NewSliceSource(reqs))
	if err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := trace.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	data, err := os.ReadFile(*out)
	if err != nil {
		return err
	}
	if err := telemetry.ValidateChromeTrace(data); err != nil {
		return fmt.Errorf("trace: emitted JSON failed validation: %w", err)
	}
	spans := 0
	for _, tr := range trace.Tracks() {
		spans += len(tr.Spans())
		if d := tr.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "trace: track %s dropped %d spans (raise SpanCap)\n", tr.Name(), d)
		}
	}
	fmt.Printf("trace: served %d/%d requests over %.0fs sim (%d crashes, %d aborted, %d retried, %d scale-ups)\n",
		m.Served, m.Offered, m.WallTime, m.Crashes, m.Aborted, m.Retried, m.ScaleUps)
	fmt.Printf("  wrote %s (%d tracks, %d spans) — open at ui.perfetto.dev\n",
		*out, len(trace.Tracks()), spans)
	if *metricsOut != "" {
		mf, err := os.Create(*metricsOut)
		if err != nil {
			return err
		}
		if err := trace.WritePrometheus(mf); err != nil {
			mf.Close()
			return err
		}
		if err := mf.Close(); err != nil {
			return err
		}
		fmt.Printf("  wrote %s (Prometheus text format)\n", *metricsOut)
	}
	fmt.Printf("  %-16s %8s %8s %8s\n", "replica", "served", "busy_s", "crashes")
	for _, rb := range m.PerReplica() {
		fmt.Printf("  %-16s %8d %8.1f %8d\n", rb.Name, rb.Served, rb.BusySeconds, rb.Crashes)
	}
	return nil
}
