// Fault-injection outage drill: the ROADMAP's robustness items in one
// walkthrough. A deadline-bearing stream is served through a small
// fleet while a generated fault schedule crashes replicas (losing their
// device KV caches and all in-flight work), freezes them in transient
// stalls, and stretches their decode under thermal throttling. The same
// stream and schedule run twice — once abandoning every aborted request
// and once with the recovery machinery: retry re-admission through the
// shared ingress, circuit breakers with half-open probes, and
// health-aware routing that steers around down, stalled, and
// breaker-open replicas.
package main

import (
	"fmt"
	"log"

	"edgereasoning/internal/faults"
	"edgereasoning/internal/fleet"
	"edgereasoning/internal/model"
	"edgereasoning/internal/workload"
)

func main() {
	const seed = 7
	spec := model.MustLookup(model.Qwen25_1_5Bit)
	devices := fleet.DefaultDevices()

	// ~0.8 QPS per replica: busy enough that a crash always has work to
	// abort, unsaturated enough that retries can land elsewhere.
	profile := workload.InteractiveAssistant(2.4, 300)
	profile.DeadlineSlack = 3
	profile.DeadlineSlackMax = 9
	reqs, err := workload.Generate(profile, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Workload: %d requests at 2.4 QPS, 3-9s deadline slack, 3 replicas\n", len(reqs))

	// Two crashes per replica (5s restart), plus stalls and a 2x
	// thermal-throttle window, over the stream's active span.
	sched, err := faults.Generate(faults.GenConfig{
		Replicas: 3, Horizon: 125,
		CrashRate: 2, RestartDelay: 5,
		StallRate: 1, StallDuration: 2,
		ThrottleRate: 2, ThrottleDuration: 15, ThrottleFactor: 2,
	}, seed)
	if err != nil {
		log.Fatal(err)
	}
	crashes := 0
	for _, ev := range sched.Events {
		if ev.Kind == faults.Crash {
			crashes++
		}
	}
	fmt.Printf("Schedule: %d events (%d crashes), host DRAM lost with the device\n\n", len(sched.Events), crashes)

	serve := func(recover bool) fleet.Metrics {
		cfg := fleet.Config{
			Replicas: fleet.HeterogeneousReplicas(3, devices, spec),
			Policy:   fleet.DeadlineAware,
			Faults:   &sched,
		}
		if recover {
			cfg.Retry = &fleet.RetryPolicy{Hedge: true}
			cfg.Health = &fleet.HealthConfig{FailureThreshold: 2, ProbeAfter: 1}
		}
		m, err := fleet.Serve(cfg, reqs)
		if err != nil {
			log.Fatal(err)
		}
		return m
	}

	show := func(name string, m fleet.Metrics) {
		fmt.Printf("%-14s crashes %d, aborted %d, retried %d, breaker opens %d\n",
			name, m.Crashes, m.Aborted, m.Retried, m.BreakerOpens)
		fmt.Printf("%-14s served %d/%d, dropped %d, hit rate %.1f%%, lost work %.1fs, p99 %.2fs\n\n",
			"", m.Served, m.Offered, m.Dropped, m.HitRate()*100, m.LostWorkSeconds, m.P99Latency)
		if m.Served+m.Dropped != m.Offered {
			log.Fatalf("conservation violated: %d + %d != %d", m.Served, m.Dropped, m.Offered)
		}
	}
	abandon := serve(false)
	show("no recovery:", abandon)
	recovered := serve(true)
	show("retry+health:", recovered)

	fmt.Printf("Recovery kept %d requests that abandonment lost, and every request is accounted for on both legs.\n",
		recovered.Served-abandon.Served)
}
