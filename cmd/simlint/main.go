// Command simlint runs the simulator's static-analysis suite (see
// internal/lint) over the module: determinism (simclock, seededrand,
// maporder), hot-path allocation discipline (hotpath), the
// zero-overhead tracing contract (traceoff), and the reimplemented
// shadow stock pass. CI runs it as the static-analysis job; locally:
//
//	go run ./cmd/simlint ./...
//	go run ./cmd/simlint -analyzers simclock,maporder ./...
//	go run ./cmd/simlint -list
//
// Exit status is 1 when any diagnostic is reported, 2 on usage or
// load errors — the go/analysis multichecker convention.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"edgereasoning/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list  = fs.Bool("list", false, "list the analyzers and exit")
		names = fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
		dir   = fs.String("C", ".", "module root to analyze (directory containing go.mod)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *names != "" {
		var subset []*lint.Analyzer
		for _, n := range strings.Split(*names, ",") {
			n = strings.TrimSpace(n)
			a, ok := lint.ByName(n)
			if !ok {
				fmt.Fprintf(stderr, "simlint: unknown analyzer %q (use -list)\n", n)
				return 2
			}
			subset = append(subset, a)
		}
		analyzers = subset
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}
	pkgs, err := loadPatterns(loader, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}
	diags, err := lint.RunAnalyzers(loader.Fset(), pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "simlint: %d diagnostic(s) across %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

// loadPatterns resolves "./..." (the whole module) or "./<dir>"
// package arguments against the loader, deduplicating while keeping a
// deterministic order.
func loadPatterns(loader *lint.Loader, patterns []string) ([]*lint.Package, error) {
	wantAll := false
	var dirs []string
	for _, p := range patterns {
		if p == "./..." || p == "..." {
			wantAll = true
			continue
		}
		dirs = append(dirs, strings.TrimPrefix(strings.TrimSuffix(p, "/"), "./"))
	}
	if wantAll {
		return loader.LoadAll()
	}
	seen := map[string]bool{}
	var out []*lint.Package
	sort.Strings(dirs)
	for _, d := range dirs {
		pkg, err := loader.LoadDir(d)
		if err != nil {
			return nil, err
		}
		if !seen[pkg.Path] {
			seen[pkg.Path] = true
			out = append(out, pkg)
		}
	}
	return out, nil
}
