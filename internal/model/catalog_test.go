package model

import "testing"

func TestLookupAllCatalogIDs(t *testing.T) {
	for _, s := range All() {
		got, err := Lookup(s.ID)
		if err != nil {
			t.Errorf("Lookup(%s): %v", s.ID, err)
			continue
		}
		if got.ID != s.ID {
			t.Errorf("Lookup(%s) returned %s", s.ID, got.ID)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("gpt-99"); err == nil {
		t.Error("expected error for unknown id")
	}
}

func TestLookupQuantizedSuffix(t *testing.T) {
	s, err := Lookup("dsr1-llama-8b-w4")
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsQuantized() {
		t.Error("suffix lookup should return quantized variant")
	}
	if s.Arch.Name != archLlama31_8B.Name {
		t.Error("quantized variant must keep the base architecture")
	}
}

func TestQuantizedVariant(t *testing.T) {
	base := MustLookup(DSR1Qwen14B)
	q := base.Quantized()
	if q.DType != W4A16 || q.ID != "dsr1-qwen-14b-w4" {
		t.Errorf("quantized spec wrong: %+v", q)
	}
	if base.DType != FP16 {
		t.Error("Quantized must not mutate the receiver")
	}
	if q.Arch.WeightBytes(q.DType) >= base.Arch.WeightBytes(base.DType) {
		t.Error("quantized weights must be smaller")
	}
}

func TestByClassOrdering(t *testing.T) {
	rs := ByClass(Reasoning)
	if len(rs) < 3 {
		t.Fatalf("want >=3 reasoning models, got %d", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Arch.ParamCount() < rs[i-1].Arch.ParamCount() {
			t.Error("ByClass not sorted by parameter count")
		}
	}
	for _, s := range ByClass(NonReasoning) {
		if s.Class != NonReasoning {
			t.Errorf("%s leaked into NonReasoning", s.ID)
		}
	}
}

func TestDSR1FamilySizeOrder(t *testing.T) {
	fam := DSR1Family()
	if len(fam) != 3 {
		t.Fatalf("want 3, got %d", len(fam))
	}
	if fam[0].ID != DSR1Qwen1_5B || fam[1].ID != DSR1Llama8B || fam[2].ID != DSR1Qwen14B {
		t.Errorf("family order wrong: %v %v %v", fam[0].ID, fam[1].ID, fam[2].ID)
	}
}

func TestL1SharesQwenArch(t *testing.T) {
	l1 := MustLookup(L1Max)
	dsr := MustLookup(DSR1Qwen1_5B)
	if l1.Arch.ParamCount() != dsr.Arch.ParamCount() {
		t.Error("L1 is a DSR1-Qwen-1.5B fine-tune; geometry must match")
	}
	if l1.Class != BudgetAware {
		t.Error("L1 must be BudgetAware")
	}
}

func TestAllReturnsCopy(t *testing.T) {
	a := All()
	a[0].DisplayName = "mutated"
	if All()[0].DisplayName == "mutated" {
		t.Error("All must return a copy")
	}
}

func TestClassString(t *testing.T) {
	if Reasoning.String() != "reasoning" || NonReasoning.String() != "non-reasoning" || BudgetAware.String() != "budget-aware" {
		t.Error("Class String wrong")
	}
}
