package fleet

import (
	"testing"

	"edgereasoning/internal/session"
)

func TestSessionAffinityParses(t *testing.T) {
	for _, s := range []string{"session-affinity", "session", "sa"} {
		p, err := ParsePolicy(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if p != SessionAffinity {
			t.Errorf("ParsePolicy(%q) = %v", s, p)
		}
	}
	if got, err := ParsePolicy(SessionAffinity.String()); err != nil || got != SessionAffinity {
		t.Errorf("String round-trip failed: %v, %v", got, err)
	}
	// The sweep list stays session-agnostic: affinity needs tagged
	// streams, which the fleet driver's workload does not carry.
	for _, p := range Policies() {
		if p == SessionAffinity {
			t.Error("Policies() must not include SessionAffinity")
		}
	}
}

func TestSessionAffinityPinsTurnsAndLiftsHitRate(t *testing.T) {
	reqs, err := session.Generate(session.AgentLoop(6, 3, 1), 7)
	if err != nil {
		t.Fatal(err)
	}
	run := func(p Policy) Metrics {
		cfg := homogeneousFleet(3, p)
		cfg.PrefixCache = true
		m, err := Serve(cfg, reqs)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	aff := run(SessionAffinity)
	rr := run(RoundRobin)

	if aff.Served != len(reqs) || rr.Served != len(reqs) {
		t.Fatalf("served %d/%d of %d", aff.Served, rr.Served, len(reqs))
	}
	if aff.PrefixLookups != len(reqs) {
		t.Fatalf("prefix lookups %d, want %d", aff.PrefixLookups, len(reqs))
	}
	// Pinning a session to the replica holding its history must beat
	// scattering its turns across the fleet.
	if aff.PrefixHitRate() <= rr.PrefixHitRate() {
		t.Errorf("affinity hit rate %.2f not above round-robin %.2f",
			aff.PrefixHitRate(), rr.PrefixHitRate())
	}
	if aff.SavedPrefillTokens <= rr.SavedPrefillTokens {
		t.Errorf("affinity saved %d tokens, round-robin %d",
			aff.SavedPrefillTokens, rr.SavedPrefillTokens)
	}
}

func TestSessionAffinityFallsBackWhenPinnedReplicaFails(t *testing.T) {
	reqs, err := session.Generate(session.AgentLoop(2, 4, 1), 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := homogeneousFleet(2, SessionAffinity)
	cfg.PrefixCache = true
	// Kill replica 0 partway through: pinned sessions must re-pin to the
	// survivor instead of dropping.
	cfg.Replicas[0].FailAt = reqs[len(reqs)/2].Arrival
	m, err := Serve(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dropped != 0 {
		t.Fatalf("dropped %d requests despite a live replica", m.Dropped)
	}
	if m.Served != len(reqs) {
		t.Fatalf("served %d of %d", m.Served, len(reqs))
	}
}

func TestSessionAffinityOnSessionlessStreamActsLikeLeastQueue(t *testing.T) {
	reqs := burst(24, 0.5, 0)
	aff, err := Serve(homogeneousFleet(3, SessionAffinity), reqs)
	if err != nil {
		t.Fatal(err)
	}
	lq, err := Serve(homogeneousFleet(3, LeastQueue), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range aff.Replicas {
		if aff.Replicas[i].Assigned != lq.Replicas[i].Assigned {
			t.Fatalf("sessionless affinity diverged from least-queue: %v vs %v",
				assignments(aff), assignments(lq))
		}
	}
}

func assignments(m Metrics) []int {
	out := make([]int, len(m.Replicas))
	for i, r := range m.Replicas {
		out[i] = r.Assigned
	}
	return out
}
