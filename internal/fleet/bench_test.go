package fleet

import (
	"testing"

	"edgereasoning/internal/faults"
	"edgereasoning/internal/workload"
)

// BenchmarkAutoscaleServe measures the elastic serving path end to end:
// ingress dispatch with shedding, burst-driven provisioning (engine
// construction and probe calibration included, as a real scale-up would
// pay), idle retirement, and the concurrent replica drain. Frozen into
// BENCH_serve.json and gated on allocs/op by scripts/bench.sh.
func BenchmarkAutoscaleServe(b *testing.B) {
	background := workload.InteractiveAssistant(0.3, 20)
	background.DeadlineSlack = 3
	background.DeadlineSlackMax = 8
	spike := workload.InteractiveAssistant(10, 60)
	spike.DeadlineSlack = 3
	spike.DeadlineSlackMax = 8
	reqs, err := workload.Bursty(background, spike, 30, 7)
	if err != nil {
		b.Fatal(err)
	}
	// Built once outside the timed loop: Config retains pointer fields
	// (Trace, Autoscale), so a literal constructed per iteration escapes
	// to the heap and the bench would charge that fixture allocation to
	// the serving path. The autoscaler copies the config up front and
	// never mutates it, so sharing one across iterations is safe.
	autoscale := &AutoscaleConfig{
		Min: 1, Max: 4,
		Spec:            smallSpec(),
		ColdStart:       2,
		DepthPerReplica: 2,
		IdleRetire:      10,
		Cooldown:        0.5,
	}
	mk := func() Config {
		cfg := homogeneousFleet(1, DeadlineAware)
		cfg.Admission = Shed
		cfg.Autoscale = autoscale
		return cfg
	}
	var sink Metrics
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := Serve(mk(), reqs)
		if err != nil {
			b.Fatal(err)
		}
		sink = m
	}
	if sink.Served+sink.Dropped != len(reqs) {
		b.Fatalf("conservation broke under the bench config: %d + %d != %d", sink.Served, sink.Dropped, len(reqs))
	}
}

// BenchmarkChaosServe measures the fault-tolerant serving path end to
// end: a fixed generated fault schedule (crashes, stalls, throttles)
// over a deadline-bearing stream with retry re-admission, circuit
// breakers, and health-aware routing all active — the full recovery
// machinery on top of dispatch and the concurrent drain. Frozen into
// BENCH_serve.json and gated on allocs/op by scripts/bench.sh.
func BenchmarkChaosServe(b *testing.B) {
	profile := workload.InteractiveAssistant(6, 150)
	profile.DeadlineSlack = 3
	profile.DeadlineSlackMax = 9
	reqs, err := workload.Generate(profile, 7)
	if err != nil {
		b.Fatal(err)
	}
	sched, err := faults.Generate(faults.GenConfig{
		Replicas: 3, Horizon: 30,
		CrashRate: 2, RestartDelay: 5,
		StallRate: 2, StallDuration: 2,
		ThrottleRate: 2, ThrottleDuration: 5, ThrottleFactor: 2,
	}, 7)
	if err != nil {
		b.Fatal(err)
	}
	mk := func() Config {
		cfg := homogeneousFleet(3, DeadlineAware)
		cfg.Admission = Shed
		cfg.Faults = &sched
		cfg.Retry = &RetryPolicy{}
		cfg.Health = &HealthConfig{}
		return cfg
	}
	var sink Metrics
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := Serve(mk(), reqs)
		if err != nil {
			b.Fatal(err)
		}
		sink = m
	}
	if sink.Served+sink.Dropped != len(reqs) {
		b.Fatalf("conservation broke under chaos: %d + %d != %d", sink.Served, sink.Dropped, len(reqs))
	}
	if sink.Crashes == 0 || sink.Retried == 0 {
		b.Fatalf("degenerate chaos bench: %d crashes, %d retried", sink.Crashes, sink.Retried)
	}
}
