// Package frameworks models the host-side overhead of the inference
// frameworks compared in §V-G (Table IX): Hugging Face Transformers,
// vLLM, and TensorRT-LLM. The GPU kernels are identical across them; what
// differs is host orchestration — Python-loop step dispatch for HFT
// versus fused, pre-captured execution for vLLM and TRT-LLM. On Orin's
// slow CPU complex that per-step host work is measurable: the paper finds
// vLLM 1.11–1.13× faster than HFT and on par with TRT-LLM.
package frameworks

import "edgereasoning/internal/engine"

// VLLM returns the baseline profile (v0.8.6 in the paper).
func VLLM() engine.Overhead {
	return engine.Overhead{Name: "vLLM", PrefillFactor: 1, StepFactor: 1}
}

// HFTransformers returns the Hugging Face Transformers profile (v4.46.2):
// an eager Python decode loop adds ~12 ms of host work per step on Orin,
// plus slower prompt preparation.
func HFTransformers() engine.Overhead {
	return engine.Overhead{Name: "HFT", PrefillFactor: 1.10, StepFactor: 1.0, PerStepHost: 0.0115}
}

// TRTLLM returns the TensorRT-LLM profile (v0.12): compiled engines land
// within a couple of percent of vLLM either side, faster on some shapes
// and slower on others.
func TRTLLM() engine.Overhead {
	return engine.Overhead{Name: "TRT-LLM", PrefillFactor: 0.97, StepFactor: 0.998}
}

// Profiles returns the Table IX lineup in presentation order.
func Profiles() []engine.Overhead {
	return []engine.Overhead{HFTransformers(), VLLM(), TRTLLM()}
}
