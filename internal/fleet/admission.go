package fleet

import (
	"fmt"

	"edgereasoning/internal/engine"
)

// Admission selects the ingress-queue discipline: the order in which
// requests waiting at the fleet's shared front door are handed to the
// router when replica capacity frees up. The zero value (FIFO) is the
// historical head-of-line-blocking queue, so existing configurations
// keep byte-identical behavior.
type Admission int

const (
	// FIFO dispatches strictly in arrival order: when every replica is
	// at capacity the stream head waits and everything queues behind it
	// (head-of-line blocking, as a shared ingress with no reordering).
	FIFO Admission = iota
	// EDF dispatches the waiting request with the earliest deadline
	// first (deadline-less requests go last, in arrival order), and the
	// replicas schedule their local queues EDF as well so the reorder
	// is honored end to end.
	EDF
	// SJF dispatches the waiting request with the shortest prompt
	// first — cheap interactive turns overtake long-context work parked
	// at the head, at the price of starving large prompts under load.
	SJF
	// Shed dispatches FIFO but drops hopeless deadline work instead of
	// serving it late: a waiting request whose deadline has already
	// passed at dispatch time, or whose batch-1 service time on even
	// the fastest available replica would overrun its deadline (a
	// certain miss), is routed to Metrics.Dropped (and counted in
	// Metrics.Shed) rather than stalling the stream. Deadline-less
	// requests are never shed.
	Shed
)

// Admissions lists the ingress disciplines in stable sweep order.
func Admissions() []Admission {
	return []Admission{FIFO, EDF, SJF, Shed}
}

// String names the discipline as used in tables and CLI flags.
func (a Admission) String() string {
	switch a {
	case FIFO:
		return "fifo"
	case EDF:
		return "edf"
	case SJF:
		return "sjf"
	case Shed:
		return "shed"
	default:
		return fmt.Sprintf("admission(%d)", int(a))
	}
}

// localDiscipline maps the ingress discipline onto each replica's local
// queue: an EDF ingress schedules EDF locally too (otherwise the reorder
// would be undone inside the replica); every other discipline defers to
// the routing policy's choice.
func (a Admission) localDiscipline(policy Policy) engine.SchedPolicy {
	if a == EDF {
		return engine.EDF
	}
	return policy.LocalDiscipline()
}

// ParseAdmission resolves a CLI spelling to an Admission. Accepted names
// are the String() forms plus the shorthands f, e, s, and drop.
func ParseAdmission(s string) (Admission, error) {
	switch trimLower(s) {
	case "fifo", "f":
		return FIFO, nil
	case "edf", "e":
		return EDF, nil
	case "sjf", "s":
		return SJF, nil
	case "shed", "drop":
		return Shed, nil
	}
	return 0, fmt.Errorf("fleet: unknown admission discipline %q (have fifo, edf, sjf, shed)", s)
}

// ingress is the fleet's shared admission queue. Requests are pushed in
// arrival order; pick selects the next dispatch per the discipline. The
// waiting slice is consumed from head, so the in-order disciplines
// (FIFO, Shed) dispatch in O(1) amortized; the reordering disciplines
// pay a linear scan per dispatch, which is the cost of looking at the
// whole waiting set.
type ingress struct {
	discipline Admission
	waiting    []engine.TimedRequest
	head       int // waiting[head:] is the live queue
}

//edgereasoning:hotpath bench=BenchmarkAutoscaleServe
func (q *ingress) push(tr engine.TimedRequest) {
	if q.waiting == nil {
		// A 64-slot floor skips the early append-growth doublings; a
		// congested ingress grows geometrically from there.
		q.waiting = make([]engine.TimedRequest, 0, 64) //edgereasoning:allow hotpath -- one-time 64-slot floor, paid once per ingress
	}
	q.waiting = append(q.waiting, tr)
}
func (q *ingress) len() int { return len(q.waiting) - q.head }

// pick returns the index (into waiting) of the request to dispatch
// next. The live region is arrival-ordered, so head is the FIFO choice
// and ties under the reordering disciplines break toward the earliest
// arrival.
//
//edgereasoning:hotpath bench=BenchmarkAutoscaleServe
func (q *ingress) pick() int {
	switch q.discipline {
	case EDF:
		best := q.head
		for i := q.head + 1; i < len(q.waiting); i++ {
			di, db := q.waiting[i].Deadline, q.waiting[best].Deadline
			if di == 0 {
				continue
			}
			if db == 0 || di < db {
				best = i
			}
		}
		return best
	case SJF:
		best := q.head
		for i := q.head + 1; i < len(q.waiting); i++ {
			if q.waiting[i].PromptTokens < q.waiting[best].PromptTokens {
				best = i
			}
		}
		return best
	default: // FIFO and Shed dispatch in arrival order
		return q.head
	}
}

// take removes and returns the request at index i, preserving the
// arrival order of the rest. Taking the head — the only case the
// in-order disciplines hit — is O(1); mid-queue removal shifts the
// tail.
//
//edgereasoning:hotpath bench=BenchmarkAutoscaleServe
func (q *ingress) take(i int) engine.TimedRequest {
	tr := q.waiting[i]
	if i == q.head {
		q.waiting[i] = engine.TimedRequest{} // release the slot's references
		q.head++
		// Amortized compaction keeps the backing array from growing
		// with the whole stream.
		if q.head >= 64 && q.head*2 >= len(q.waiting) {
			n := copy(q.waiting, q.waiting[q.head:])
			q.waiting = q.waiting[:n]
			q.head = 0
		}
		return tr
	}
	q.waiting = append(q.waiting[:i], q.waiting[i+1:]...)
	return tr
}

// drain removes every waiting request, reporting each through drop —
// the permanent-outage path.
func (q *ingress) drain(drop func(engine.TimedRequest)) {
	for _, tr := range q.waiting[q.head:] {
		drop(tr)
	}
	q.waiting = q.waiting[:0]
	q.head = 0
}

// dropLate removes every waiting request whose deadline precedes t,
// reporting each through drop — the Shed discipline's queue purge.
func (q *ingress) dropLate(t float64, drop func(engine.TimedRequest)) {
	kept := q.waiting[q.head:q.head]
	for _, tr := range q.waiting[q.head:] {
		if tr.Deadline > 0 && tr.Deadline < t {
			drop(tr)
			continue
		}
		kept = append(kept, tr)
	}
	q.waiting = q.waiting[:q.head+len(kept)]
}

// missPressure counts waiting deadline-bearing requests that will
// already be late if help only arrives after horizon more seconds — the
// raw material of the autoscaler's deadline-miss scale-up signal (the
// autoscaler nets out replicas that could start this work immediately).
func (q *ingress) missPressure(t, horizon float64) int {
	n := 0
	for _, tr := range q.waiting[q.head:] {
		if tr.Deadline > 0 && tr.Deadline <= t+horizon {
			n++
		}
	}
	return n
}
