package kvcache

import "testing"

// TestCrashResetWipesUntieredIndex pins the basic crash contract on a
// device-only index: every retained entry is dropped, the blocks return
// to the free pool, and the index keeps working afterwards.
func TestCrashResetWipesUntieredIndex(t *testing.T) {
	c, ix := newPrefixCache(t, 4, 16)
	prompt := syms(100, 8)
	runTurn(t, c, ix, "a0", prompt, nil)
	if m := ix.Metrics(); m.Retained != 2 {
		t.Fatalf("retained %d before crash, want 2", m.Retained)
	}
	free := c.FreeBlocks()

	ix.CrashReset(true) // keepHost is moot with no tier attached
	m := ix.Metrics()
	if m.CrashWipes != 1 || m.CrashDropped != 2 {
		t.Fatalf("wipes %d dropped %d, want 1/2", m.CrashWipes, m.CrashDropped)
	}
	if m.Retained != 0 {
		t.Fatalf("retained %d after crash, want 0", m.Retained)
	}
	if got := c.FreeBlocks(); got != free+2 {
		t.Fatalf("free %d after crash, want %d (index refs released)", got, free+2)
	}
	if got := ix.Probe(probeSyms(prompt)); got != 0 {
		t.Fatalf("probe matched %d blocks after wipe, want 0", got)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// The wiped index must serve the same traffic again from cold.
	if matched := runTurn(t, c, ix, "a1", probeSyms(prompt), nil); matched != 0 {
		t.Fatalf("post-crash acquire matched %d tokens, want 0 (cold)", matched)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashResetKeepHostSurvivesAllHostChains pins the survival rule on
// a tiered index: a chain fully demoted to host DRAM survives a
// keepHost crash, and remains promotable afterwards.
func TestCrashResetKeepHostSurvivesAllHostChains(t *testing.T) {
	c, ix := newTieredCache(t, 4, 8, 8, 0)
	prompt := syms(100, 8)
	runTurn(t, c, ix, "a0", prompt, nil)
	ix.EnsureFree(8) // demote the whole chain to host
	if m := ix.Metrics(); m.HostRetained != 2 || m.Retained != 0 {
		t.Fatalf("host %d device %d before crash, want 2/0", m.HostRetained, m.Retained)
	}

	ix.CrashReset(true)
	m := ix.Metrics()
	if m.CrashDropped != 0 || m.HostRetained != 2 {
		t.Fatalf("dropped %d host %d, want 0/2 (all-host chain survives)", m.CrashDropped, m.HostRetained)
	}
	if dev, host := ix.Peek(probeSyms(prompt)); dev != 0 || host != 2 {
		t.Fatalf("peek = (%d, %d) after keepHost crash, want (0, 2)", dev, host)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// The surviving history promotes back on the next matching turn.
	matched, err := ix.Acquire("a1", probeSyms(prompt))
	if err != nil {
		t.Fatal(err)
	}
	if matched != 8 {
		t.Fatalf("post-crash acquire matched %d tokens, want 8 (host restore)", matched)
	}
	if m := ix.Metrics(); m.Promotions != 2 || m.HostHits != 1 {
		t.Fatalf("promotions %d hostHits %d, want 2/1", m.Promotions, m.HostHits)
	}
	if h, err := c.Lookup("a1"); err == nil {
		if err := ix.Release(h, probeSyms(prompt), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashResetOrphansHostTails pins the other half of the survival
// rule: a host tail whose upper chain still lived on the device is
// unreachable after the wipe (its chained hashes start from a destroyed
// root) and must be dropped with it, even under keepHost.
func TestCrashResetOrphansHostTails(t *testing.T) {
	c, ix := newTieredCache(t, 4, 8, 8, 0)
	prompt := syms(100, 16) // 4 blocks
	runTurn(t, c, ix, "a0", prompt, nil)
	ix.EnsureFree(6) // demote the two coldest leaves: tail on host, root on device
	m := ix.Metrics()
	if m.Retained != 2 || m.HostRetained != 2 {
		t.Fatalf("device %d host %d after partial demotion, want 2/2", m.Retained, m.HostRetained)
	}

	ix.CrashReset(true)
	m = ix.Metrics()
	if m.Retained != 0 || m.HostRetained != 0 {
		t.Fatalf("device %d host %d after crash, want 0/0 (orphaned tail dropped)", m.Retained, m.HostRetained)
	}
	if m.CrashDropped != 4 {
		t.Fatalf("dropped %d, want 4", m.CrashDropped)
	}
	if dev, host := ix.Peek(probeSyms(prompt)); dev != 0 || host != 0 {
		t.Fatalf("peek = (%d, %d) after crash, want (0, 0)", dev, host)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashResetWithoutKeepHostClearsBothTiers models a cold restart
// with no persistent DRAM: nothing survives.
func TestCrashResetWithoutKeepHostClearsBothTiers(t *testing.T) {
	c, ix := newTieredCache(t, 4, 8, 8, 0)
	promptA := syms(100, 8)
	promptB := syms(2000, 8)
	runTurn(t, c, ix, "a0", promptA, nil)
	ix.EnsureFree(8) // chain A fully on host
	runTurn(t, c, ix, "b0", promptB, nil)

	ix.CrashReset(false)
	m := ix.Metrics()
	if m.Retained != 0 || m.HostRetained != 0 || m.CrashDropped != 4 {
		t.Fatalf("device %d host %d dropped %d, want 0/0/4", m.Retained, m.HostRetained, m.CrashDropped)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Both tiers are empty; the same sessions rebuild from cold.
	if matched := runTurn(t, c, ix, "a1", probeSyms(promptA), nil); matched != 0 {
		t.Fatalf("post-crash acquire matched %d tokens, want 0", matched)
	}
}

// TestCrashResetSurvivorLRUDeterministic crashes an index holding
// several all-host chains and checks that the rebuilt host LRU keeps
// demotion-recency order: the coldest surviving chain is the next to be
// dropped under host pressure.
func TestCrashResetSurvivorLRUDeterministic(t *testing.T) {
	c, ix := newTieredCache(t, 4, 8, 4, 0)
	promptA := syms(100, 8)  // colder
	promptB := syms(2000, 8) // warmer
	runTurn(t, c, ix, "a0", promptA, nil)
	runTurn(t, c, ix, "b0", promptB, nil)
	ix.EnsureFree(8) // both chains demote; host holds 4 blocks at capacity
	if m := ix.Metrics(); m.HostRetained != 4 {
		t.Fatalf("host %d before crash, want 4", m.HostRetained)
	}

	ix.CrashReset(true)
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// New traffic demoting into the full host tier must push chain A
	// (least recently used) out first, proving the rebuilt LRU order.
	promptC := syms(4000, 8)
	runTurn(t, c, ix, "c0", promptC, nil)
	ix.EnsureFree(8)
	if dev, host := ix.Peek(probeSyms(promptA)); dev != 0 || host != 0 {
		t.Fatalf("cold chain A peek = (%d, %d), want (0, 0): it must be evicted first", dev, host)
	}
	if dev, host := ix.Peek(probeSyms(promptB)); dev+host == 0 {
		t.Fatal("warm chain B must outlive chain A in the rebuilt host LRU")
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
