package fleet

import (
	"testing"

	"edgereasoning/internal/workload"
)

// BenchmarkAutoscaleServe measures the elastic serving path end to end:
// ingress dispatch with shedding, burst-driven provisioning (engine
// construction and probe calibration included, as a real scale-up would
// pay), idle retirement, and the concurrent replica drain. Frozen into
// BENCH_serve.json and gated on allocs/op by scripts/bench.sh.
func BenchmarkAutoscaleServe(b *testing.B) {
	background := workload.InteractiveAssistant(0.3, 20)
	background.DeadlineSlack = 3
	background.DeadlineSlackMax = 8
	spike := workload.InteractiveAssistant(10, 60)
	spike.DeadlineSlack = 3
	spike.DeadlineSlackMax = 8
	reqs, err := workload.Bursty(background, spike, 30, 7)
	if err != nil {
		b.Fatal(err)
	}
	mk := func() Config {
		cfg := homogeneousFleet(1, DeadlineAware)
		cfg.Admission = Shed
		cfg.Autoscale = &AutoscaleConfig{
			Min: 1, Max: 4,
			Spec:            smallSpec(),
			ColdStart:       2,
			DepthPerReplica: 2,
			IdleRetire:      10,
			Cooldown:        0.5,
		}
		return cfg
	}
	var sink Metrics
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := Serve(mk(), reqs)
		if err != nil {
			b.Fatal(err)
		}
		sink = m
	}
	if sink.Served+sink.Dropped != len(reqs) {
		b.Fatalf("conservation broke under the bench config: %d + %d != %d", sink.Served, sink.Dropped, len(reqs))
	}
}
