package kvcache

import (
	"math"
	"testing"
)

// newTieredCache builds a cache with a prefix index and host tier.
func newTieredCache(t *testing.T, blockSize, numBlocks, hostBlocks int, bw float64) (*Cache, *PrefixIndex) {
	t.Helper()
	c, err := New(Config{BlockSize: blockSize, NumBlocks: numBlocks, BytesPerToken: 1024})
	if err != nil {
		t.Fatal(err)
	}
	ix := NewPrefixIndex(c)
	if err := ix.AttachHostTier(HostTierConfig{Blocks: hostBlocks, LinkBandwidth: bw}); err != nil {
		t.Fatal(err)
	}
	return c, ix
}

// probeSyms extends a prompt by one symbol so a whole-block prompt can
// be fully probed (walk always leaves one token unmatched).
func probeSyms(prompt []uint64) []uint64 {
	return append(append([]uint64{}, prompt...), ^uint64(0))
}

func TestTierDemoteOnPressureKeepsState(t *testing.T) {
	c, ix := newTieredCache(t, 4, 8, 8, 0)
	promptA := syms(100, 8)
	promptB := syms(2000, 8)
	runTurn(t, c, ix, "a0", promptA, nil) // chain A: 2 blocks, colder
	runTurn(t, c, ix, "b0", promptB, nil) // chain B: 2 blocks, warmer
	if free := c.FreeBlocks(); free != 4 {
		t.Fatalf("free %d before pressure, want 4", free)
	}
	ix.EnsureFree(6)
	m := ix.Metrics()
	if m.Demotions != 2 || m.HostRetained != 2 || m.Retained != 2 {
		t.Fatalf("after pressure: demotions %d hostRetained %d retained %d, want 2/2/2", m.Demotions, m.HostRetained, m.Retained)
	}
	if m.Evictions != 0 {
		t.Fatalf("evictions %d, want 0 (demotion preserves state)", m.Evictions)
	}
	if free := c.FreeBlocks(); free != 6 {
		t.Fatalf("free %d after demotion, want 6", free)
	}
	// Probe counts device blocks only; Peek sees both tiers.
	if got := ix.Probe(probeSyms(promptA)); got != 0 {
		t.Fatalf("probe of demoted chain matched %d device blocks, want 0", got)
	}
	if dev, host := ix.Peek(probeSyms(promptA)); dev != 0 || host != 2 {
		t.Fatalf("peek = (%d, %d), want (0, 2)", dev, host)
	}
	if dev, host := ix.Peek(probeSyms(promptB)); dev != 2 || host != 0 {
		t.Fatalf("peek warm = (%d, %d), want (2, 0)", dev, host)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTierPromoteOnAcquireChargesRestore(t *testing.T) {
	const bw = 1e6 // 1 MB/s: restore cost large enough to assert exactly
	c, ix := newTieredCache(t, 4, 8, 8, bw)
	prompt := syms(100, 8)
	runTurn(t, c, ix, "a0", prompt, nil)
	ix.EnsureFree(8) // demote both blocks
	if m := ix.Metrics(); m.HostRetained != 2 {
		t.Fatalf("hostRetained %d after pressure, want 2", m.HostRetained)
	}
	matched, err := ix.Acquire("a1", probeSyms(prompt))
	if err != nil {
		t.Fatal(err)
	}
	if matched != 8 {
		t.Fatalf("acquire matched %d tokens, want 8 (host segment promoted)", matched)
	}
	m := ix.Metrics()
	if m.Promotions != 2 || m.HostRetained != 0 || m.Retained != 2 || m.HostHits != 1 {
		t.Fatalf("promotions %d hostRetained %d retained %d hostHits %d, want 2/0/2/1",
			m.Promotions, m.HostRetained, m.Retained, m.HostHits)
	}
	// 2 blocks x 4 tokens x 1024 B at 1 MB/s = 8192/1e6 seconds.
	want := 2 * 4 * 1024 / bw
	if math.Abs(m.RestoreSeconds-want) > 1e-12 {
		t.Fatalf("restore %.9f s, want %.9f", m.RestoreSeconds, want)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Re-demotion after the promoted turn completes a full cycle.
	if err := c.Free("a1"); err != nil {
		t.Fatal(err)
	}
	ix.EnsureFree(8)
	if m := ix.Metrics(); m.HostRetained != 2 || m.Demotions != 4 {
		t.Fatalf("re-demotion: hostRetained %d demotions %d, want 2/4", m.HostRetained, m.Demotions)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTierHostOverflowDropsColdest(t *testing.T) {
	c, ix := newTieredCache(t, 4, 8, 1, 0)
	promptA := syms(100, 4)
	promptB := syms(2000, 4)
	runTurn(t, c, ix, "a0", promptA, nil) // 1 block, colder
	runTurn(t, c, ix, "b0", promptB, nil) // 1 block, warmer
	ix.EnsureFree(8)                      // both demote; host holds 1 => A drops
	m := ix.Metrics()
	if m.Demotions != 2 || m.HostRetained != 1 || m.Evictions != 1 {
		t.Fatalf("demotions %d hostRetained %d evictions %d, want 2/1/1", m.Demotions, m.HostRetained, m.Evictions)
	}
	if _, host := ix.Peek(probeSyms(promptA)); host != 0 {
		t.Fatalf("cold chain A still host-resident after overflow")
	}
	if _, host := ix.Peek(probeSyms(promptB)); host != 1 {
		t.Fatalf("warm chain B lost to overflow")
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestTierReleaseBelowHostSegmentTruncates pins the chain-tail
// invariant at the Release boundary: a sequence whose history walks
// onto a host-resident segment must not grow device entries beneath it.
func TestTierReleaseBelowHostSegmentTruncates(t *testing.T) {
	c, ix := newTieredCache(t, 4, 16, 8, 0)
	prompt := syms(100, 8)
	runTurn(t, c, ix, "a0", prompt, nil)
	ix.EnsureFree(16) // demote chain A entirely
	if m := ix.Metrics(); m.HostRetained != 2 || m.Retained != 0 {
		t.Fatalf("hostRetained %d retained %d after pressure, want 2/0", m.HostRetained, m.Retained)
	}
	// A sequence holding A's content plus a fresh tail releases while the
	// front of its history is host-resident (demoted between its
	// admission and completion).
	ext := append(append([]uint64{}, prompt...), syms(9000, 4)...)
	if err := c.Allocate("ext", len(ext)); err != nil {
		t.Fatal(err)
	}
	h, err := c.Lookup("ext")
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Release(h, ext, nil); err != nil {
		t.Fatal(err)
	}
	// The host segment was touched, not duplicated; the new tail was not
	// retained beneath it.
	m := ix.Metrics()
	if m.Retained != 0 || m.HostRetained != 2 {
		t.Fatalf("retained %d hostRetained %d after release, want 0/2", m.Retained, m.HostRetained)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTierPeekLeavesRecencyAlone(t *testing.T) {
	c, ix := newTieredCache(t, 4, 8, 8, 0)
	promptA := syms(100, 4)
	promptB := syms(2000, 4)
	runTurn(t, c, ix, "a0", promptA, nil) // colder
	runTurn(t, c, ix, "b0", promptB, nil) // warmer
	// A Probe would refresh A past B; Peek must not.
	if dev, host := ix.Peek(probeSyms(promptA)); dev != 1 || host != 0 {
		t.Fatalf("peek = (%d, %d), want (1, 0)", dev, host)
	}
	ix.EnsureFree(7) // demote exactly one block: A is still the LRU head
	if _, host := ix.Peek(probeSyms(promptA)); host != 1 {
		t.Fatalf("peek perturbed recency: warm chain demoted before cold")
	}
	if dev, _ := ix.Peek(probeSyms(promptB)); dev != 1 {
		t.Fatalf("warm chain B no longer device-resident")
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAttachHostTierErrors(t *testing.T) {
	c, err := New(Config{BlockSize: 4, NumBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	ix := NewPrefixIndex(c)
	if err := ix.AttachHostTier(HostTierConfig{Blocks: 0}); err == nil {
		t.Fatal("attach with zero capacity did not fail")
	}
	if err := ix.AttachHostTier(HostTierConfig{Blocks: 4}); err != nil {
		t.Fatal(err)
	}
	if err := ix.AttachHostTier(HostTierConfig{Blocks: 4}); err == nil {
		t.Fatal("double attach did not fail")
	}

	c2, ix2 := newPrefixCache(t, 4, 8)
	runTurn(t, c2, ix2, "a0", syms(100, 4), nil)
	if err := ix2.AttachHostTier(HostTierConfig{Blocks: 4}); err == nil {
		t.Fatal("attach after retention did not fail")
	}
}

// TestEvictionOrderTable pins the global eviction order across chain
// shapes — in particular the parent re-entry path: when a leaf's
// eviction turns its parent back into a leaf, the parent re-enters the
// evictable list at its own recency (which a probe may have refreshed
// after the child was last matched), not at the list tail or head.
func TestEvictionOrderTable(t *testing.T) {
	// Chains: X = 2 blocks (8 syms), Y and Z = 1 block (4 syms) each.
	x, y, z := syms(100, 8), syms(2000, 4), syms(3000, 4)
	cases := []struct {
		name string
		// setup runs after X, Y, Z are retained in that order.
		setup func(t *testing.T, ix *PrefixIndex)
		// order lists the chains' expected block counts after each
		// successive eviction, as [x, y, z] triples.
		order [][3]int
	}{
		{
			name:  "untouched: strict retention order, tail first",
			setup: func(t *testing.T, ix *PrefixIndex) {},
			// Leaves by recency: x1, y0, z0. Evicting x1 re-leafs x0 at its
			// original recency — older than y0 — so x tears down fully first.
			order: [][3]int{{1, 1, 1}, {0, 1, 1}, {0, 0, 1}, {0, 0, 0}},
		},
		{
			name: "parent touched after child: re-leafed parent keeps refreshed recency",
			setup: func(t *testing.T, ix *PrefixIndex) {
				// A one-block probe refreshes x0 without touching x1 or the
				// other chains.
				if got := ix.Probe(x[:5]); got != 1 {
					t.Fatalf("short probe matched %d, want 1", got)
				}
			},
			// x1 is still the oldest leaf, but once it goes, x0's refreshed
			// recency outlives both y0 and z0.
			order: [][3]int{{1, 1, 1}, {1, 0, 1}, {1, 0, 0}, {0, 0, 0}},
		},
		{
			name: "whole chain touched: refreshed chain evicts last",
			setup: func(t *testing.T, ix *PrefixIndex) {
				if got := ix.Probe(probeSyms(x)); got != 2 {
					t.Fatalf("probe matched %d, want 2", got)
				}
			},
			// y0, then z0, then x tail-first.
			order: [][3]int{{2, 0, 1}, {2, 0, 0}, {1, 0, 0}, {0, 0, 0}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, ix := newPrefixCache(t, 4, 16)
			runTurn(t, c, ix, "x", x, nil)
			runTurn(t, c, ix, "y", y, nil)
			runTurn(t, c, ix, "z", z, nil)
			tc.setup(t, ix)
			devBlocks := func(prompt []uint64) int {
				d, _ := ix.Peek(probeSyms(prompt))
				return d
			}
			for step, want := range tc.order {
				if !ix.evictOne() {
					t.Fatalf("step %d: nothing left to evict", step)
				}
				got := [3]int{devBlocks(x), devBlocks(y), devBlocks(z)}
				if got != want {
					t.Fatalf("after eviction %d: surviving blocks %v, want %v", step+1, got, want)
				}
				if err := ix.CheckInvariants(); err != nil {
					t.Fatalf("after eviction %d: %v", step+1, err)
				}
			}
			if ix.evictOne() {
				t.Fatal("eviction succeeded on an empty index")
			}
		})
	}
}
