// Fleet autoscaling: an elastic replica pool driven by ingress pressure.
// The autoscaler watches the shared admission queue at every dispatch
// decision and provisions a new replica (cold, paying a warm-up) when
// the backlog per live replica or the deadline-miss pressure crosses its
// thresholds, and retires replicas that have sat idle, never shrinking
// below Min or growing beyond Max. Provisioned replicas come from the
// same device/quant profile cycle as HeterogeneousReplicas, so an
// elastic pool is drawn from the same hardware catalog as a fixed one.
package fleet

import (
	"fmt"
	"math"

	"edgereasoning/internal/hw"
	"edgereasoning/internal/model"
)

// AutoscaleConfig parameterizes the elastic pool. The zero value of
// Config.Autoscale (nil) disables autoscaling entirely; a non-nil config
// with zero fields gets the defaults documented per field.
type AutoscaleConfig struct {
	// Min and Max bound the live pool (replicas that are not retired and
	// not permanently failed). The initial Config.Replicas must satisfy
	// Min <= len(Replicas) <= Max.
	Min, Max int
	// Spec is the model served by provisioned replicas (weights
	// alternate FP16 / W4A16 across provisions, like
	// HeterogeneousReplicas).
	Spec model.Spec
	// Devices is the hardware cycle provisioned replicas draw from; an
	// empty list falls back to DefaultDevices.
	Devices []*hw.Device
	// ColdStart is the weight-loading warm-up a provisioned replica pays
	// before it becomes routable: a replica provisioned at time t serves
	// no request before t+ColdStart (modeled via ReplicaConfig.
	// WarmupDelay). Default 5 s.
	ColdStart float64
	// DepthPerReplica is the queue-depth scale-up trigger: provision
	// when more than DepthPerReplica x live requests wait at the
	// ingress. Default 4.
	DepthPerReplica int
	// IdleRetire retires a replica whose backlog has been drained for
	// this many seconds (never below Min). Default 30 s.
	IdleRetire float64
	// Cooldown is the minimum time between scale-ups, so one burst does
	// not provision the whole range at a single dispatch event.
	// Default 2 s.
	Cooldown float64
	// ScaleOn selects which pressure signals may trigger a scale-up.
	// The zero value enables both.
	ScaleOn ScaleSignal
}

// ScaleSignal selects the autoscaler's scale-up trigger set.
type ScaleSignal int

const (
	// ScaleOnBoth scales up on either queue depth or deadline-miss
	// pressure (the default).
	ScaleOnBoth ScaleSignal = iota
	// ScaleOnDepth scales up only when the ingress backlog exceeds
	// DepthPerReplica per live replica.
	ScaleOnDepth
	// ScaleOnMiss scales up only when waiting deadline-bearing requests
	// would already be late by the time a cold replica could help.
	ScaleOnMiss
)

// String names the signal as used in CLI flags and event reasons.
func (s ScaleSignal) String() string {
	switch s {
	case ScaleOnDepth:
		return "depth"
	case ScaleOnMiss:
		return "miss"
	case ScaleOnBoth:
		return "both"
	default:
		return fmt.Sprintf("signal(%d)", int(s))
	}
}

// ParseScaleSignal resolves a CLI spelling to a ScaleSignal.
func ParseScaleSignal(s string) (ScaleSignal, error) {
	switch lower := trimLower(s); lower {
	case "depth", "queue":
		return ScaleOnDepth, nil
	case "miss", "deadline":
		return ScaleOnMiss, nil
	case "both", "":
		return ScaleOnBoth, nil
	}
	return 0, fmt.Errorf("fleet: unknown scale signal %q (have depth, miss, both)", s)
}

func (c AutoscaleConfig) withDefaults() AutoscaleConfig {
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.ColdStart <= 0 {
		c.ColdStart = 5
	}
	if c.DepthPerReplica <= 0 {
		c.DepthPerReplica = 4
	}
	if c.IdleRetire <= 0 {
		c.IdleRetire = 30
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2
	}
	if len(c.Devices) == 0 {
		c.Devices = DefaultDevices()
	}
	return c
}

// validate rejects unusable configs against the initial pool size.
func (c AutoscaleConfig) validate(initial int) error {
	switch {
	case c.Max < c.Min:
		return fmt.Errorf("fleet: autoscale Max %d below Min %d", c.Max, c.Min)
	case initial < c.Min || initial > c.Max:
		return fmt.Errorf("fleet: initial pool of %d outside autoscale bounds [%d, %d]", initial, c.Min, c.Max)
	case c.Spec.ID == "":
		return fmt.Errorf("fleet: autoscale needs a Spec to provision replicas from")
	case math.IsNaN(c.ColdStart) || math.IsInf(c.ColdStart, 0) || c.ColdStart < 0:
		return fmt.Errorf("fleet: autoscale ColdStart must be finite and non-negative")
	}
	return nil
}

// ScaleEvent records one pool-size change.
type ScaleEvent struct {
	// Time is the simulated instant the pool changed. For retirements
	// this is the moment the replica's idle timer expired, which can
	// precede the dispatch event that detected it.
	Time float64
	// Up is true for a provision, false for a retirement.
	Up bool
	// Replica names the replica added or removed.
	Replica string
	// Live is the live pool size after the event.
	Live int
	// Reason is the trigger: "depth", "miss", or "outage" for
	// provisions, "idle" for retirements.
	Reason string
}

// autoscaler is the dispatch-time controller owned by one Serve run.
type autoscaler struct {
	cfg         AutoscaleConfig
	opts        cacheOptions // provisioned replicas match the pool's engines
	provisioned int          // replicas added so far (drives the profile cycle)
	lastUp      float64      // time of the last provision
	events      []ScaleEvent
	peak        int
}

func newAutoscaler(cfg *AutoscaleConfig, initial int, opts cacheOptions) (*autoscaler, error) {
	if cfg == nil {
		return nil, nil
	}
	c := cfg.withDefaults()
	if err := c.validate(initial); err != nil {
		return nil, err
	}
	return &autoscaler{
		cfg:    c,
		opts:   opts,
		lastUp: math.Inf(-1),
		peak:   initial,
		// The event log is bounded by provisions plus retirements —
		// O(Max) per run; reserving it up front keeps every scale
		// decision allocation-free.
		events: make([]ScaleEvent, 0, 2*c.Max),
	}, nil
}

// liveAt reports whether the replica counts toward the live pool at t:
// not retired, and not (permanently) failed or crash-dead — a replica
// whose FailAt (or permanent-crash instant) lands at or before the end
// of its warm-up is dead at birth and never counts. A replica down
// awaiting a crash restart still counts: it holds pool resources and
// will return.
func (r *replica) liveAt(t float64) bool {
	if r.retired {
		return false
	}
	if r.cfg.FailAt > 0 {
		if t >= r.cfg.FailAt {
			return false
		}
		if r.cfg.WarmupDelay >= r.cfg.FailAt {
			return false
		}
	}
	if r.tl != nil && !math.IsInf(r.tl.deadAt, 1) {
		if t >= r.tl.deadAt {
			return false
		}
		if r.cfg.WarmupDelay >= r.tl.deadAt {
			return false
		}
	}
	return true
}

func (ro *router) liveCount(t float64) int {
	n := 0
	for _, r := range ro.replicas {
		if r.liveAt(t) {
			n++
		}
	}
	return n
}

// observe runs the autoscaler at one dispatch decision: retire idle
// replicas first, then provision if the ingress shows pressure. It
// returns an error only when building a provisioned replica's engine
// fails.
func (as *autoscaler) observe(ro *router, q *ingress, t float64) error {
	as.retireIdle(ro, t)
	live := ro.liveCount(t)
	if live >= as.cfg.Max || t-as.lastUp < as.cfg.Cooldown {
		return nil
	}
	reason := ""
	switch {
	case (as.cfg.ScaleOn == ScaleOnBoth || as.cfg.ScaleOn == ScaleOnDepth) &&
		q.len() > as.cfg.DepthPerReplica*live:
		reason = "depth"
	case (as.cfg.ScaleOn == ScaleOnBoth || as.cfg.ScaleOn == ScaleOnMiss) &&
		q.missPressure(t, as.cfg.ColdStart) > ro.idleReplicas(t):
		// Soon-late waiting work beyond what idle replicas can start
		// immediately: a request about to be dispatched to an idle pool
		// is not pressure, however tight its slack — otherwise any
		// workload with slack below ColdStart would provision to Max
		// with zero congestion.
		reason = "miss"
	default:
		return nil
	}
	return as.provision(ro, t, reason)
}

// provision adds one cold replica from the profile cycle. Callers have
// already checked the Max bound except for the outage path, which
// re-checks here.
func (as *autoscaler) provision(ro *router, t float64, reason string) error {
	if ro.liveCount(t) >= as.cfg.Max {
		return fmt.Errorf("fleet: autoscale provision at Max %d", as.cfg.Max)
	}
	k := as.provisioned
	spec := as.cfg.Spec
	if k%2 == 1 {
		spec = spec.Quantized()
	}
	dev := as.cfg.Devices[k%len(as.cfg.Devices)]
	name := fmt.Sprintf("as%d-%s", k, dev.Name)
	if spec.IsQuantized() {
		name += "-w4"
	}
	rc := ReplicaConfig{
		Name:        name,
		Spec:        spec,
		Device:      dev,
		WarmupDelay: t + as.cfg.ColdStart,
	}.withDefaults(len(ro.replicas))
	r, err := newReplica(rc, as.opts)
	if err != nil {
		return fmt.Errorf("fleet: autoscale provision %s: %w", name, err)
	}
	r.provisionedAt = t
	r.idleFrom = rc.WarmupDelay
	ro.replicas = append(ro.replicas, r)
	as.provisioned++
	as.lastUp = t
	live := ro.liveCount(t)
	if live > as.peak {
		as.peak = live
	}
	as.events = append(as.events, ScaleEvent{Time: t, Up: true, Replica: rc.Name, Live: live, Reason: reason})
	return nil
}

// retireIdle drains replicas whose backlog has been empty for the idle
// window, in ascending index order for determinism. The retirement
// instant is when the idle timer actually expired, not when this
// dispatch event noticed it — clamped between the previous scale event
// and t so the event log stays monotone — which keeps replica-seconds
// accounting honest.
func (as *autoscaler) retireIdle(ro *router, t float64) {
	for i, r := range ro.replicas {
		if !r.liveAt(t) || r.depth(t) > 0 {
			continue
		}
		idleAt := math.Max(r.idleFrom, r.cfg.WarmupDelay)
		if t-idleAt < as.cfg.IdleRetire {
			continue
		}
		if ro.liveCount(t) <= as.cfg.Min {
			return
		}
		at := idleAt + as.cfg.IdleRetire
		if n := len(as.events); n > 0 && at < as.events[n-1].Time {
			at = as.events[n-1].Time
		}
		if at > t {
			at = t
		}
		r.retired = true
		r.retiredAt = at
		ro.purge(i)
		as.events = append(as.events, ScaleEvent{
			Time: at, Up: false, Replica: r.cfg.Name,
			Live: ro.liveCount(t), Reason: "idle",
		})
	}
}
