package session

import (
	"fmt"
	"testing"
)

func TestWarmTurnTable(t *testing.T) {
	cases := []struct {
		id   string
		warm bool
	}{
		{"s0t0", false},  // turn-0 canonical think: nothing written yet
		{"s12t0", false}, // multi-digit session index, still cold
		{"s0t0a", true},  // turn-0 act reads the think's output
		{"s0t0b1", true}, // turn-0 branch shares the admitted prompt
		{"s0t1", true},
		{"s3t10", true}, // multi-digit turn must not parse as turn 0
		{"s7t2b2", true},
		{"s7t2a", true},
		{"req3", false}, // non-session generators: conservatively cold
		{"st0", false},  // no session index
		{"s5", false},   // no turn marker
		{"", false},
	}
	for _, tc := range cases {
		if got := WarmTurn(tc.id); got != tc.warm {
			t.Errorf("WarmTurn(%q) = %v, want %v", tc.id, got, tc.warm)
		}
	}
}

// TestWarmTurnMatchesGenerator locks the helper to the generator's ID
// scheme: across a generated stream, the cold requests are exactly one
// per session — the bare turn-0 think.
func TestWarmTurnMatchesGenerator(t *testing.T) {
	p := AgentLoop(5, 3, 2)
	reqs, err := Generate(p, 11)
	if err != nil {
		t.Fatal(err)
	}
	cold := map[string]bool{}
	for _, r := range reqs {
		if !WarmTurn(r.ID) {
			if cold[r.ID] {
				t.Fatalf("duplicate cold ID %q", r.ID)
			}
			cold[r.ID] = true
		}
	}
	if len(cold) != p.Sessions {
		t.Fatalf("%d cold IDs, want exactly one per session (%d): %v", len(cold), p.Sessions, cold)
	}
	for i := 0; i < p.Sessions; i++ {
		if id := fmt.Sprintf("s%dt0", i); !cold[id] {
			t.Errorf("session %d's first think %q not classified cold", i, id)
		}
	}
}
