// Package fleet simulates serving one open-loop request stream across a
// pool of heterogeneous replica engines — mixed device profiles (AGX
// Orin power modes, server parts) and mixed weight formats (FP16 and
// W4A16). A deterministic router assigns each arriving request to a
// replica under a pluggable Policy; each replica then executes its
// sub-stream on the full vLLM-style engine (engine.Serve), and the
// per-replica results are folded into fleet-wide Metrics.
//
// The router works on calibrated estimates (a batch-1 probe of each
// replica's prefill and decode rates) while the replicas execute on the
// exact simulator, mirroring a real load balancer that routes on cheap
// health signals rather than ground truth. Admission is a shared ingress
// queue with per-replica capacity and a pluggable discipline
// (Config.Admission): the default FIFO blocks the stream head when every
// routable replica is at capacity, while EDF and SJF reorder the waiting
// set and Shed drops hopeless deadline work instead of serving it late.
// An optional autoscaler (Config.Autoscale) grows and shrinks the
// replica pool on ingress pressure, paying modeled cold starts.
package fleet

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"edgereasoning/internal/engine"
	"edgereasoning/internal/faults"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/model"
	"edgereasoning/internal/stats"
	"edgereasoning/internal/telemetry"
)

// ReplicaConfig describes one engine in the fleet.
type ReplicaConfig struct {
	// Name labels the replica in metrics (default "r<i>-<device>").
	Name   string
	Spec   model.Spec
	Device *hw.Device
	// MaxBatch bounds concurrent decoders on the replica (default 4).
	MaxBatch int
	// Capacity bounds outstanding (queued + executing) requests the
	// router may park on the replica (default 16).
	Capacity int
	// WarmupDelay keeps the replica unroutable before this simulated
	// time — a cold start loading weights. Zero means warm at t=0.
	WarmupDelay float64
	// FailAt, when positive, makes the replica unroutable at and after
	// this simulated time. Requests routed earlier still complete (a
	// drain-style failure, not a crash).
	//
	// The boundary with WarmupDelay is deliberate and relied on by the
	// autoscaler's warm-up accounting: routability requires
	// t >= WarmupDelay and t < FailAt, so a replica with
	// FailAt <= WarmupDelay is dead at birth — there is no instant at
	// which it can take a request, even when the two are exactly equal.
	// Only FailAt > WarmupDelay opens a routable window.
	FailAt float64
	// CrashAt, when positive, is FailAt's lossy counterpart: the replica
	// crashes at this simulated time, destroying its in-flight requests
	// and device KV cache (FailAt drains — routed work still completes;
	// CrashAt loses it). The crash is permanent; use Config.Faults for
	// crashes that restart. The dead-at-birth boundary mirrors FailAt:
	// CrashAt <= WarmupDelay leaves no instant at which the replica can
	// take a request.
	CrashAt float64
}

func (rc ReplicaConfig) withDefaults(i int) ReplicaConfig {
	if rc.MaxBatch <= 0 {
		rc.MaxBatch = 4
	}
	if rc.Capacity <= 0 {
		rc.Capacity = 16
	}
	if rc.Name == "" && rc.Device != nil {
		rc.Name = fmt.Sprintf("r%d-%s", i, rc.Device.Name)
	}
	return rc
}

// Config assembles a fleet.
type Config struct {
	Replicas []ReplicaConfig
	Policy   Policy
	// Admission selects the ingress-queue discipline. The zero value
	// (FIFO) preserves the historical head-of-line-blocking behavior.
	Admission Admission
	// Autoscale, when non-nil, lets the pool grow and shrink between
	// the configured bounds on ingress pressure. Nil keeps the replica
	// set fixed.
	Autoscale *AutoscaleConfig
	// PrefixCache builds every replica engine with a cross-request prefix
	// KV cache, so session-tagged streams reuse their history on whichever
	// replica holds it (see Policy SessionAffinity).
	PrefixCache bool
	// DeviceBlocks caps every replica's device KV cache (engine.Config.
	// DeviceBlocks); zero keeps the DRAM-derived size.
	DeviceBlocks int
	// HostTierBlocks attaches a host-DRAM second tier of that many blocks
	// to every replica's prefix index (requires PrefixCache); with the
	// tier on, SessionAffinity ranks re-pin candidates by where a
	// session's history resides — device-warm over host-warm over cold.
	HostTierBlocks int
	// HostLinkBandwidth prices tier promotions in bytes/second (default
	// kvcache.DefaultHostLinkBandwidth).
	HostLinkBandwidth float64
	// Faults, when non-nil, injects the schedule's crashes, stalls, and
	// throttles into the configured replicas (autoscaler provisions are
	// fault-free). See package faults for semantics.
	Faults *faults.Schedule
	// Retry, when non-nil, re-admits crash-aborted requests through the
	// shared ingress under the policy's attempt/backoff/deadline bounds.
	// Nil drops aborted work — the no-recovery baseline.
	Retry *RetryPolicy
	// Health, when non-nil, enables health-aware routing: per-replica
	// consecutive-failure circuit breakers with half-open probes, and
	// stall-window avoidance. Nil routes blind.
	Health *HealthConfig
	// Trace, when non-nil, records the run's telemetry into it: one span
	// track per replica (request phases from the engines), shared ingress
	// and faults tracks from the dispatch loop, and sampled fleet series.
	// Nil is the default and keeps the run byte-identical to untraced.
	Trace *telemetry.Trace
}

// cacheOptions carries the fleet-level engine cache knobs to replica
// construction — the initial pool and autoscaler provisions build
// identically-tiered engines.
type cacheOptions struct {
	prefixCache       bool
	deviceBlocks      int
	hostTierBlocks    int
	hostLinkBandwidth float64
	// trace rides along so autoscaler provisions register their tracks
	// the same way the initial pool does.
	trace *telemetry.Trace
}

func (cfg Config) cacheOpts() cacheOptions {
	return cacheOptions{
		prefixCache:       cfg.PrefixCache,
		deviceBlocks:      cfg.DeviceBlocks,
		hostTierBlocks:    cfg.HostTierBlocks,
		hostLinkBandwidth: cfg.HostLinkBandwidth,
		trace:             cfg.Trace,
	}
}

// ReplicaMetrics reports one replica's share of the run.
type ReplicaMetrics struct {
	Name   string
	Device string
	Model  string
	// Assigned counts requests routed to the replica.
	Assigned int
	engine.ServeMetrics
	// BusyTime sums per-request service time (prefill + decode); batched
	// decode double-counts overlap, so compare it across replicas, not
	// against wall time.
	BusyTime float64
	// Crashes counts crash events that struck this replica.
	Crashes int
	// ProvisionedAt is when the replica joined the pool (0 for the
	// initial set); RetiredAt is when the autoscaler drained it out
	// (0 when it stayed in the pool to the end).
	ProvisionedAt float64
	RetiredAt     float64
}

// Metrics aggregates a fleet run.
type Metrics struct {
	Policy   Policy
	Replicas []ReplicaMetrics
	// Offered counts every request that entered the fleet's ingress;
	// conservation holds as Served + Dropped == Offered on every run.
	Offered int
	// Served counts completed requests; Dropped counts requests that
	// never reached a replica — either no replica could ever take them
	// (all failed or never warm) or the Shed admission discipline
	// dropped them as hopeless. Shed is the subset of Dropped removed
	// by deadline shedding.
	Served  int
	Dropped int
	Shed    int
	// Events sums the replicas' clock-advancing simulation events
	// (prefills and decode chunks) — the unit soak throughput is
	// reported in.
	Events int
	// Fleet-wide latency distribution over all completions.
	P50Latency  float64
	P95Latency  float64
	P99Latency  float64
	MeanLatency float64
	// Deadline accounting; dropped deadline-bearing requests count as
	// missed.
	DeadlinesMet   int
	DeadlinesTotal int
	TotalEnergy    float64 // joules across the fleet
	// WallTime is the last completion time on any replica.
	WallTime float64
	// Imbalance is the coefficient of variation of per-replica BusyTime:
	// 0 is a perfectly even spread, higher means hot spots.
	Imbalance float64
	// Autoscale accounting (zero without Config.Autoscale). ScaleEvents
	// is the pool-change log in time order; PeakReplicas the largest
	// live pool; ReplicaSeconds sums each replica's provisioned span
	// (provision to retirement, failure, or wall), the elastic pool's
	// resource bill for equal-cost comparisons against fixed pools.
	ScaleEvents    []ScaleEvent
	ScaleUps       int
	ScaleDowns     int
	PeakReplicas   int
	ReplicaSeconds float64
	// Prefix-cache accounting summed over replicas (zero without
	// Config.PrefixCache or without PromptSyms on the stream).
	PrefixLookups      int
	PrefixHits         int
	PrefixLookupTokens int
	SavedPrefillTokens int
	// Host-tier accounting summed over replicas (zero without
	// Config.HostTierBlocks): demote/promote traffic, admissions whose
	// matched prefix was restored from host DRAM, and the host-link
	// seconds those restores charged into TTFT.
	TierDemotions  int
	TierPromotions int
	HostHits       int
	RestoreSeconds float64
	// Fault-injection and recovery accounting (zero without Config.Faults
	// or ReplicaConfig.CrashAt). Crashes counts crash events striking the
	// pool; Aborted the in-flight dispatches they destroyed (a request
	// aborted twice counts twice); Retried the aborts scheduled for
	// re-admission; AbortedDropped — a subset of Dropped, like Shed — the
	// aborts abandoned for good (retry disabled, attempts exhausted, no
	// deadline budget left, or a permanent outage drained the retry
	// queue); LostWorkSeconds the estimated service time destroyed
	// mid-flight; BreakerOpens the circuit-breaker opens under
	// health-aware routing. Conservation still holds as
	// Served + Dropped == Offered: retries are not re-offered, and every
	// abort either completes a later attempt or lands in Dropped once.
	Crashes         int
	Aborted         int
	Retried         int
	AbortedDropped  int
	LostWorkSeconds float64
	BreakerOpens    int
}

// HitRate returns the fraction of deadline-bearing requests that met
// their deadline (1.0 when none carry deadlines).
func (m Metrics) HitRate() float64 {
	if m.DeadlinesTotal == 0 {
		return 1
	}
	return float64(m.DeadlinesMet) / float64(m.DeadlinesTotal)
}

// PrefixHitRate is the fleet-wide token-weighted cache hit rate — saved
// prefill tokens over prompt tokens that consulted a replica's cache (0
// when never consulted).
func (m Metrics) PrefixHitRate() float64 {
	if m.PrefixLookupTokens == 0 {
		return 0
	}
	return float64(m.SavedPrefillTokens) / float64(m.PrefixLookupTokens)
}

// replica is the router-side state for one engine.
type replica struct {
	cfg ReplicaConfig
	eng *engine.Engine
	// Calibrated batch-1 rates from the warm-up probe.
	prefillPerTok float64
	decodePerTok  float64
	// assigned is the replica's sub-stream, in dispatch order; src is the
	// reusable source wrapper its drain feeds the engine through.
	assigned []engine.TimedRequest
	src      engine.SliceSource
	// finishes holds estimated completion times of outstanding requests,
	// sorted ascending; estFreeAt is the serial-backlog horizon.
	finishes  []float64
	estFreeAt float64
	wrrCredit float64
	// Autoscaler lifecycle: provisionedAt is when the replica joined the
	// pool; idleFrom estimates when its backlog drains (the idle timer's
	// start); retired marks an autoscaler drain at retiredAt.
	provisionedAt float64
	idleFrom      float64
	retired       bool
	retiredAt     float64
	// Fault machinery, nil/zero on fault-free replicas so the legacy
	// paths stay untouched: tl is the compiled fault timeline and hs the
	// circuit-breaker state; estFinish mirrors assigned with estimated
	// completion times (maintained only when trackEst — crash-prone
	// replicas — so fault-free dispatch stays allocation-identical) and
	// recovers the abort suffix at a crash; pendingWipe arms the next
	// take to mark its request as the cache-wipe boundary in wipes.
	tl          *timeline
	hs          *healthState
	estFinish   []float64
	trackEst    bool
	wipes       map[string]bool
	pendingWipe bool
	// crashes counts crash events that struck this replica (folded into
	// ReplicaMetrics.Crashes).
	crashes int
}

// newReplica builds the serving engine for one replica config and
// calibrates the router's service-time estimate from the engine's own
// kernel model. CalibrationRates is pure — the clock and cache are
// untouched — and returns exactly what the historical one-request probe
// run on a scratch engine measured, without constructing one.
func newReplica(rc ReplicaConfig, opts cacheOptions) (*replica, error) {
	engCfg := engine.Config{
		Spec: rc.Spec, Device: rc.Device, PrefixCache: opts.prefixCache,
		DeviceBlocks: opts.deviceBlocks, HostTierBlocks: opts.hostTierBlocks,
		HostLinkBandwidth: opts.hostLinkBandwidth,
	}
	if opts.trace != nil {
		engCfg.Trace = opts.trace.Track(rc.Name)
	}
	eng, err := engine.New(engCfg)
	if err != nil {
		return nil, fmt.Errorf("fleet: replica %s: %w", rc.Name, err)
	}
	prefillPerTok, decodePerTok, err := eng.CalibrationRates()
	if err != nil {
		return nil, fmt.Errorf("fleet: replica %s probe: %w", rc.Name, err)
	}
	return &replica{
		cfg:           rc,
		eng:           eng,
		prefillPerTok: prefillPerTok,
		decodePerTok:  decodePerTok,
		// finishes tracks at most Capacity outstanding estimates;
		// reserving that up front keeps every take allocation-free.
		finishes: make([]float64, 0, rc.Capacity),
	}, nil
}

// estService estimates the batch-1 service time of a request.
func (r *replica) estService(tr engine.TimedRequest) float64 {
	return r.prefillPerTok*float64(tr.PromptTokens) + r.decodePerTok*float64(tr.OutputTokens)
}

// estFinishFor estimates the completion time of tr started at start —
// but only under health-aware routing (r.hs != nil) does the estimate
// integrate the replica's thermal-throttle windows, so the router reads
// the device's thermal state and steers deadline-critical work toward
// cool replicas. A blind fleet estimates full speed and eats the
// stretch at drain time. This is a routing signal only: the recorded
// dispatch estimates (estFreeAt, finishes, estFinish) stay unstretched,
// so crash abort sets and capacity accounting are identical across
// health-aware and blind legs of the same schedule.
func (r *replica) estFinishFor(tr engine.TimedRequest, start float64) float64 {
	svc := r.estService(tr)
	if r.hs != nil && r.tl != nil && len(r.tl.throttles) > 0 {
		return r.tl.finishAfter(start, svc)
	}
	return start + svc
}

// speed is the router's weight for latency-weighted spreading: estimated
// throughput on a reference interactive request.
func (r *replica) speed() float64 {
	ref := engine.TimedRequest{Request: engine.Request{PromptTokens: 180, OutputTokens: 40}}
	if s := r.estService(ref); s > 0 {
		return 1 / s
	}
	return 0
}

// routableAt reports whether the router may hand the replica a request
// at time t (warm, not failed or crash-dead, not retired, not down
// awaiting restart, not breaker-blocked); capacity is checked
// separately. Under health-aware routing a replica inside a stall
// window is also unroutable — the health layer detects the stall and
// steers around it, while a blind fleet keeps dispatching into it and
// pays the freeze at drain time.
func (r *replica) routableAt(t float64) bool {
	if t < r.cfg.WarmupDelay {
		return false
	}
	if r.cfg.FailAt > 0 && t >= r.cfg.FailAt {
		return false
	}
	if r.retired {
		return false
	}
	if r.tl != nil {
		if down, _ := r.tl.downAt(t); down {
			return false
		}
	}
	if r.hs != nil {
		if blocked, _ := r.hs.blockedAt(t); blocked {
			return false
		}
		if r.tl != nil && r.tl.stallEnd(t) > t {
			return false
		}
	}
	return true
}

// availAt returns the earliest instant >= t at which the replica could
// be routable again — warm-ups, crash downtime, breaker opens, and
// (under health-aware routing) stall windows all push it out — or
// never=true when no such instant exists. Capacity is not considered.
func (r *replica) availAt(t float64) (float64, bool) {
	for {
		switch {
		case r.retired:
			return 0, true
		case r.cfg.FailAt > 0 && t >= r.cfg.FailAt:
			return 0, true
		case r.tl != nil && t >= r.tl.deadAt:
			return 0, true
		case t < r.cfg.WarmupDelay:
			if r.cfg.FailAt > 0 && r.cfg.WarmupDelay >= r.cfg.FailAt {
				return 0, true // dead at birth
			}
			if r.tl != nil && r.cfg.WarmupDelay >= r.tl.deadAt {
				return 0, true // crash-dead at birth
			}
			t = r.cfg.WarmupDelay
			continue
		}
		if r.tl != nil {
			if down, until := r.tl.downAt(t); down {
				if math.IsInf(until, 1) {
					return 0, true
				}
				t = until
				continue
			}
		}
		if r.hs != nil {
			if blocked, until := r.hs.blockedAt(t); blocked {
				t = until
				continue
			}
			if r.tl != nil {
				if end := r.tl.stallEnd(t); end > t {
					t = end
					continue
				}
			}
		}
		return t, false
	}
}

// depth drops completed estimates and returns outstanding count at t.
// Completed entries are compacted away in place — reslicing the head off
// would orphan the preallocated backing array and make every later take
// regrow it.
func (r *replica) depth(t float64) int {
	done := sort.Search(len(r.finishes), func(k int) bool { return r.finishes[k] > t })
	if done > 0 {
		n := copy(r.finishes, r.finishes[done:])
		r.finishes = r.finishes[:n]
	}
	return len(r.finishes)
}

// take records the dispatch of tr at time t.
func (r *replica) take(tr engine.TimedRequest, t float64) {
	est := math.Max(r.estFreeAt, t) + r.estService(tr)
	r.estFreeAt = est
	r.idleFrom = est
	i := sort.SearchFloat64s(r.finishes, est)
	r.finishes = append(r.finishes, 0)
	copy(r.finishes[i+1:], r.finishes[i:])
	r.finishes[i] = est
	if r.assigned == nil {
		// Seed the sub-stream at a 64-request floor so short runs skip the
		// early append-growth doublings.
		r.assigned = make([]engine.TimedRequest, 0, 64)
	}
	r.assigned = append(r.assigned, tr)
	if r.trackEst {
		// Estimated finishes are monotone in dispatch order (est is
		// max(estFreeAt, t) + service, and estFreeAt ratchets), so the
		// abort set at a crash is always a suffix of assigned.
		r.estFinish = append(r.estFinish, est)
	}
	if r.pendingWipe {
		if r.wipes == nil {
			r.wipes = make(map[string]bool)
		}
		r.wipes[tr.ID] = r.tl.keepHost
		r.pendingWipe = false
	}
	if r.hs != nil {
		r.hs.noteTake(tr.ID, t, est)
	}
}

// Serve routes the open-loop stream across the fleet and executes every
// replica's sub-stream. Requests must not predate t=0; the input slice
// is not modified. It is a thin collector over ServeSource.
func Serve(cfg Config, reqs []engine.TimedRequest) (Metrics, error) {
	stream := make([]engine.TimedRequest, len(reqs))
	copy(stream, reqs)
	sort.SliceStable(stream, func(i, j int) bool { return stream[i].Arrival < stream[j].Arrival })
	return ServeSource(cfg, engine.NewSliceSource(stream))
}

// ServeSource routes a pull-based stream (non-decreasing Arrival order,
// not predating t=0) across the fleet: the ingress consumes the source
// lazily as the dispatch clock reaches each arrival, so live memory
// scales with the waiting set plus the routed-but-undrained sub-streams,
// not the stream length.
func ServeSource(cfg Config, src engine.Source) (Metrics, error) {
	if len(cfg.Replicas) == 0 {
		return Metrics{}, fmt.Errorf("fleet: no replicas configured")
	}
	opts := cfg.cacheOpts()
	// The fleet tracer registers the shared ingress and faults tracks
	// before the replica constructors register theirs, fixing the export
	// layout; nil when tracing is off.
	ft := newFleetTracer(cfg.Trace)
	replicas := make([]*replica, len(cfg.Replicas))
	for i, rc := range cfg.Replicas {
		r, err := newReplica(rc.withDefaults(i), opts)
		if err != nil {
			return Metrics{}, err
		}
		replicas[i] = r
	}
	as, err := newAutoscaler(cfg.Autoscale, len(replicas), opts)
	if err != nil {
		return Metrics{}, err
	}

	stream := engine.NewPeekable(src)
	if tr, ok := stream.Peek(); ok && tr.Arrival < 0 {
		return Metrics{}, fmt.Errorf("fleet: request %q arrives at negative time %.3f", tr.ID, tr.Arrival)
	}

	var out Metrics
	out.Policy = cfg.Policy
	router := &router{replicas: replicas, policy: cfg.Policy, tiered: cfg.HostTierBlocks > 0}
	// delays records per-request global-queue wait (dispatch − arrival),
	// folded back into latency accounting after the engines run. One map
	// serves the whole run — request IDs are unique across replicas —
	// and it stays nil while the fleet keeps up.
	var delays map[string]float64
	crashes, err := compileFaults(cfg, replicas)
	if err != nil {
		return Metrics{}, err
	}
	if ft != nil {
		ft.faultWindows(replicas)
	}
	var cx *chaos
	if len(crashes) > 0 {
		cx = &chaos{ro: router, healthOn: cfg.Health != nil, events: crashes, delays: &delays, out: &out, ft: ft}
		if cfg.Retry != nil {
			if err := cfg.Retry.validate(); err != nil {
				return Metrics{}, err
			}
			cx.retry = cfg.Retry.withDefaults()
			cx.retryOn = true
		}
	}
	if cfg.Health != nil {
		h := cfg.Health.withDefaults()
		if err := h.validate(); err != nil {
			return Metrics{}, err
		}
		for _, r := range replicas {
			r.hs = &healthState{cfg: h}
		}
	}
	if err := dispatch(router, as, cx, ft, cfg.Admission, stream, &delays, &out); err != nil {
		return out, err
	}
	replicas = router.replicas // the autoscaler may have grown the pool

	discipline := cfg.Admission.localDiscipline(cfg.Policy)
	busy := make([]float64, 0, len(replicas))
	// The replicas' sub-streams are independent once routed, so their
	// drain phases simulate concurrently; results are folded back in
	// replica order, keeping the output deterministic at any parallelism.
	type drained struct {
		sm  engine.ServeMetrics
		err error
	}
	results := make([]drained, len(replicas))
	var wg sync.WaitGroup
	for i, r := range replicas {
		wg.Add(1)
		go func(i int, r *replica) {
			defer wg.Done()
			// The sub-stream is already in dispatch order (the dispatch
			// clock is monotone), so it feeds the engine directly — no
			// copy, no re-sort.
			r.src.Reset(r.assigned)
			sm, err := r.eng.ServeSource(&r.src,
				r.cfg.MaxBatch, discipline,
				engine.ServeOpts{SizeHint: len(r.assigned), Faults: r.injection()})
			results[i] = drained{sm: sm, err: err}
		}(i, r)
	}
	wg.Wait()
	total := 0
	for i := range results {
		total += results[i].sm.Served
	}
	latencies := make([]float64, 0, total)
	for i, r := range replicas {
		sm, err := results[i].sm, results[i].err
		if err != nil {
			return out, fmt.Errorf("fleet: replica %s: %w", r.cfg.Name, err)
		}
		// Fold the global-queue wait back into end-to-end latency.
		// Requests and Latencies are parallel slices in completion order.
		if len(delays) > 0 {
			for j := range sm.Requests {
				if d := delays[sm.Requests[j].ID]; d > 0 {
					sm.Requests[j].QueueTime += d
					sm.Latencies[j] += d
				}
			}
			if len(sm.Latencies) > 0 {
				sm.MeanLatency = stats.Mean(sm.Latencies)
				sm.P50Latency, sm.P95Latency, sm.P99Latency = stats.Percentiles3(sm.Latencies)
			}
		}
		rm := ReplicaMetrics{
			Name:          r.cfg.Name,
			Device:        r.cfg.Device.Name,
			Model:         string(r.cfg.Spec.ID),
			Assigned:      len(r.assigned),
			ServeMetrics:  sm,
			Crashes:       r.crashes,
			ProvisionedAt: r.provisionedAt,
			RetiredAt:     r.retiredAt,
		}
		for _, m := range sm.Requests {
			rm.BusyTime += m.TotalTime()
		}
		out.Replicas = append(out.Replicas, rm)
		out.Served += sm.Served
		out.Events += sm.Events
		out.DeadlinesMet += sm.DeadlinesMet
		out.DeadlinesTotal += sm.DeadlinesTotal
		out.TotalEnergy += sm.TotalEnergy
		out.PrefixLookups += sm.PrefixLookups
		out.PrefixHits += sm.PrefixHits
		out.PrefixLookupTokens += sm.PrefixLookupTokens
		out.SavedPrefillTokens += sm.SavedPrefillTokens
		out.HostHits += sm.HostHits
		out.RestoreSeconds += sm.RestoreSeconds
		pm := r.eng.PrefixMetrics()
		out.TierDemotions += pm.Demotions
		out.TierPromotions += pm.Promotions
		if r.eng.Clock() > out.WallTime {
			out.WallTime = r.eng.Clock()
		}
		latencies = append(latencies, sm.Latencies...)
		busy = append(busy, rm.BusyTime)
	}
	if len(latencies) > 0 {
		out.MeanLatency = stats.Mean(latencies)
		out.P50Latency, out.P95Latency, out.P99Latency = stats.Percentiles3(latencies)
	}
	out.Imbalance = imbalance(busy)
	if as != nil {
		foldAutoscale(&out, router, as)
	}
	if ft != nil {
		ft.finalize(&out, len(cfg.Replicas))
	}
	return out, nil
}

// dispatch routes the arrival-ordered stream through the ingress queue:
// requests are pulled from the source and enter the shared queue as the
// clock passes their arrivals, and whenever a replica can accept work
// the admission discipline picks which waiting request goes next. The
// dispatch clock is monotone — a request is never dispatched before an
// earlier decision's time.
func dispatch(ro *router, as *autoscaler, cx *chaos, ft *fleetTracer, admission Admission, stream *engine.Peekable, delays *map[string]float64, out *Metrics) error {
	q := &ingress{discipline: admission}
	drop := func(tr engine.TimedRequest) {
		out.Dropped++
		if tr.Deadline > 0 {
			out.DeadlinesTotal++
		}
	}
	shed := func(tr engine.TimedRequest) {
		out.Shed++
		drop(tr)
	}
	// admitUntil moves every stream request arriving at or before t into
	// the shared queue, counting it as offered — and, under fault
	// injection, re-admits crash-aborted requests whose retry time has
	// come (already offered on first arrival, so not re-counted).
	admitUntil := func(t float64) {
		for {
			tr, ok := stream.Peek()
			if !ok || tr.Arrival > t {
				break
			}
			stream.Next()
			out.Offered++
			q.push(tr)
		}
		if cx != nil {
			for {
				tr, ok := cx.popRetryUntil(t)
				if !ok {
					break
				}
				q.push(tr)
			}
		}
	}

	now := 0.0
	for {
		if !(stream.More() || q.len() > 0 || (cx != nil && cx.retryPending())) {
			// Nothing left to dispatch. Remaining crash events can still
			// abort already-routed work: processing them may refill the
			// retry queue (looping us back) or drop the aborts for good.
			if cx == nil || !cx.crashPending() {
				break
			}
			if at, _ := cx.nextCrashAt(); at > now {
				now = at
			}
			cx.processUpTo(now)
			continue
		}
		if q.len() == 0 {
			next := math.Inf(1)
			if tr, ok := stream.Peek(); ok {
				next = tr.Arrival
			}
			if cx != nil {
				if at, ok := cx.nextRetryAt(); ok && at < next {
					next = at
				}
				// Never advance past an unprocessed crash: its aborts may
				// spawn retries due before the next arrival.
				if at, ok := cx.nextCrashAt(); ok && at < next {
					next = at
				}
			}
			if next > now {
				now = next
			}
		}
		if cx != nil {
			cx.processUpTo(now)
		}
		admitUntil(now)
		if ft != nil {
			ft.sampleQueue(now, q.len())
		}
		if as != nil {
			if err := as.observe(ro, q, now); err != nil {
				return err
			}
		}
		if q.len() == 0 {
			// The idle advance landed on a crash instant rather than an
			// arrival or retry; the event is processed, nothing is waiting.
			continue
		}
		t, ok := ro.nextFree(now)
		if !ok {
			// Permanent outage: every replica is dead for good, with no
			// warm-ups, restarts, or breaker probes pending. An autoscaler
			// below Max revives the pool with an emergency provision
			// (ignoring cooldown); otherwise nothing can, so drop the rest
			// of the stream in O(1) per request instead of rescanning the
			// replicas for each one.
			if as != nil && ro.liveCount(now) < as.cfg.Max {
				if err := as.provision(ro, now, "outage"); err != nil {
					return err
				}
				continue
			}
			if cx != nil {
				// Remaining crash events can only abort work that nothing
				// can re-serve: account them, then drop the retry queue.
				cx.processUpTo(math.Inf(1))
				cx.drainRetries(func(tr engine.TimedRequest) {
					out.AbortedDropped++
					drop(tr)
				})
			}
			q.drain(drop)
			for {
				tr, ok := stream.Next()
				if !ok {
					break
				}
				out.Offered++
				drop(tr)
			}
			return nil
		}
		if cx != nil {
			// A crash between now and the planned dispatch instant
			// invalidates the plan — it may free capacity (aborts), kill
			// the chosen replica, or open a breaker. Process it and
			// re-route; dispatch never crosses an unprocessed crash.
			if at, ok := cx.nextCrashAt(); ok && at <= t {
				cx.processUpTo(at)
				now = at
				continue
			}
		}
		// Arrivals during the capacity wait join the queue before the
		// discipline picks, so a reordering ingress sees everything that
		// is actually waiting at dispatch time.
		admitUntil(t)
		if admission == Shed {
			q.dropLate(t, shed)
			if q.len() == 0 {
				now = t
				continue
			}
		}
		tr := q.take(q.pick())
		if admission == Shed && tr.Deadline > 0 && t+ro.bestService(tr, t) > tr.Deadline {
			// Even starting immediately on the fastest replica that could
			// take it, the batch-1 service time alone overruns the
			// deadline — a certain miss. Shed it and keep the capacity
			// for work that can still make it, before the routing policy
			// mutates any state for a request that never dispatches. (The
			// serial backlog horizon is deliberately not consulted: it
			// overestimates completion under batched decode and would
			// shed feasible work.)
			shed(tr)
			now = t
			continue
		}
		r := ro.chooseAt(tr, t)
		// The engine sees the dispatch time as the arrival; the wait in
		// the shared queue is re-added to the request's latency later.
		adjusted := tr
		adjusted.Arrival = t
		if t > tr.Arrival {
			if *delays == nil {
				*delays = make(map[string]float64)
			}
			(*delays)[tr.ID] = t - tr.Arrival
		}
		r.take(adjusted, t)
		if ft != nil {
			ft.dispatched(tr, t)
			ft.sampleQueue(t, q.len())
		}
		now = t
	}
	return nil
}

// foldAutoscale finalizes the elastic-pool accounting: retire remaining
// idle replicas for billing purposes, then fold the event log and
// replica-seconds into the metrics.
func foldAutoscale(out *Metrics, ro *router, as *autoscaler) {
	as.retireIdle(ro, math.Inf(1))
	out.ScaleEvents = as.events
	out.PeakReplicas = as.peak
	for _, ev := range as.events {
		if ev.Up {
			out.ScaleUps++
		} else {
			out.ScaleDowns++
		}
	}
	for i, r := range ro.replicas {
		end := out.WallTime
		switch {
		case r.retired:
			end = r.retiredAt
		default:
			if r.cfg.FailAt > 0 && r.cfg.FailAt < end {
				end = r.cfg.FailAt
			}
			// A permanent crash ends the replica's bill like a failure.
			if r.tl != nil && r.tl.deadAt < end {
				end = r.tl.deadAt
			}
		}
		if end < r.provisionedAt {
			end = r.provisionedAt
		}
		out.ReplicaSeconds += end - r.provisionedAt
		if r.retired {
			out.Replicas[i].RetiredAt = r.retiredAt
		}
	}
}

// imbalance is the population coefficient of variation.
func imbalance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mean := stats.Mean(xs)
	if mean <= 0 {
		return 0
	}
	ss := 0.0
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(xs))) / mean
}

// trimLower normalizes a CLI spelling.
func trimLower(s string) string { return strings.ToLower(strings.TrimSpace(s)) }

// router owns the dispatch-time state shared across requests.
type router struct {
	replicas []*replica
	policy   Policy
	// tiered enables warmth-ranked SessionAffinity pinning (set when the
	// fleet's replicas carry a host-DRAM tier); non-tiered fleets keep
	// the legacy least-pinned behavior bit for bit.
	tiered bool
	rrNext int
	// sticky maps a session ID to the replica index its turns are pinned
	// to (SessionAffinity only; re-pinned on fallback), and pinned counts
	// sessions per replica so new sessions spread instead of piling onto
	// the lowest index while queues are momentarily empty.
	sticky map[string]int
	pinned []int
	// scratch backs the candidate list between dispatches.
	scratch []int
}

// nextFree returns the earliest time >= t at which some replica can
// accept a dispatch (routable with spare capacity), pruning completed
// work as it scans. ok is false when no replica will ever accept again —
// a permanent outage.
func (ro *router) nextFree(t float64) (float64, bool) {
	for {
		for _, r := range ro.replicas {
			if r.routableAt(t) && r.depth(t) < r.cfg.Capacity {
				return t, true
			}
		}
		// Everyone is full, cold, dead, down, blocked, or retired:
		// advance to the next time a replica could accept — when it next
		// becomes available (warm-up end, crash restart, breaker probe),
		// or, if it is available but at capacity, when its earliest
		// outstanding completion frees a slot (provided it is still
		// available then).
		next := math.Inf(1)
		for _, r := range ro.replicas {
			at, never := r.availAt(t)
			if never {
				continue
			}
			if at > t {
				next = math.Min(next, at)
				continue
			}
			if len(r.finishes) > 0 {
				free := r.finishes[0]
				if at2, never2 := r.availAt(free); !never2 {
					next = math.Min(next, math.Max(free, at2))
				}
			}
		}
		if math.IsInf(next, 1) {
			return 0, false
		}
		t = next
	}
}

// bestService is the fastest batch-1 service estimate among replicas
// that could take the request at t — the certain-miss lower bound the
// Shed discipline tests against. It mutates nothing but the idempotent
// completed-work pruning in depth.
func (ro *router) bestService(tr engine.TimedRequest, t float64) float64 {
	best := math.Inf(1)
	for _, r := range ro.replicas {
		if r.routableAt(t) && r.depth(t) < r.cfg.Capacity {
			if s := r.estFinishFor(tr, t) - t; s < best {
				best = s
			}
		}
	}
	return best
}

// idleReplicas counts replicas that could start a request immediately —
// routable with an empty backlog — at time t.
func (ro *router) idleReplicas(t float64) int {
	n := 0
	for _, r := range ro.replicas {
		if r.routableAt(t) && r.depth(t) == 0 {
			n++
		}
	}
	return n
}

// chooseAt applies the routing policy at time t, when at least one
// replica is known to have capacity (nextFree said so).
func (ro *router) chooseAt(tr engine.TimedRequest, t float64) *replica {
	ro.scratch = ro.scratch[:0]
	for i, r := range ro.replicas {
		if r.routableAt(t) && r.depth(t) < r.cfg.Capacity {
			ro.scratch = append(ro.scratch, i)
		}
	}
	return ro.replicas[ro.choose(ro.scratch, tr, t)]
}

// purge drops sticky-session pins to a replica leaving the pool, so the
// session map cannot accumulate entries for replicas the autoscaler has
// retired. Displaced sessions re-pin on their next turn.
func (ro *router) purge(idx int) {
	if ro.sticky == nil {
		return
	}
	for sid, p := range ro.sticky {
		if p == idx {
			delete(ro.sticky, sid)
		}
	}
	if idx < len(ro.pinned) {
		ro.pinned[idx] = 0
	}
}

// choose applies the routing policy over the candidate indices (which
// are always non-empty and sorted ascending).
func (ro *router) choose(candidates []int, tr engine.TimedRequest, t float64) int {
	switch ro.policy {
	case LeastQueue:
		return leastQueued(ro.replicas, candidates)
	case SessionAffinity:
		// A session's turns chase their prefix KV: stay on the pinned
		// replica while it can take the request. A new (or displaced)
		// session pins to the replica carrying the fewest sessions —
		// least-connections, so concurrent sessions spread even while
		// queues are momentarily empty — with queue depth breaking ties.
		// When the pinned replica is saturated, cold, or failed, the turn
		// falls back the same way and re-pins; the history is rebuilt on
		// the new replica at that turn's cold prefill.
		if tr.SessionID != "" {
			if p, ok := ro.sticky[tr.SessionID]; ok {
				for _, c := range candidates {
					if c == p {
						return p
					}
				}
				ro.pinned[p]--
			}
		}
		if tr.SessionID == "" {
			return leastQueued(ro.replicas, candidates)
		}
		if ro.sticky == nil {
			ro.sticky = make(map[string]int)
		}
		// The autoscaler can have grown the pool since the last pin.
		for len(ro.pinned) < len(ro.replicas) {
			ro.pinned = append(ro.pinned, 0)
		}
		// Tiered fleets rank candidates by where the session's history
		// resides first — a replica still holding the prefix (even demoted
		// to host DRAM) restores it for a restore fee, while a cold one
		// re-prefills everything. Warmth ties (always, when untiered) fall
		// back to least-pinned with queue depth as the final tiebreak.
		best, bestWarm := candidates[0], ro.warmth(candidates[0], tr)
		for _, i := range candidates[1:] {
			w := ro.warmth(i, tr)
			if w > bestWarm ||
				(w == bestWarm && (ro.pinned[i] < ro.pinned[best] ||
					(ro.pinned[i] == ro.pinned[best] && len(ro.replicas[i].finishes) < len(ro.replicas[best].finishes)))) {
				best, bestWarm = i, w
			}
		}
		ro.sticky[tr.SessionID] = best
		ro.pinned[best]++
		return best
	case LatencyWeighted:
		// Smooth weighted round-robin (nginx-style): deterministic and
		// proportional to replica speed over any window.
		total := 0.0
		for _, i := range candidates {
			w := ro.replicas[i].speed()
			ro.replicas[i].wrrCredit += w
			total += w
		}
		best := candidates[0]
		for _, i := range candidates[1:] {
			if ro.replicas[i].wrrCredit > ro.replicas[best].wrrCredit {
				best = i
			}
		}
		ro.replicas[best].wrrCredit -= total
		return best
	case DeadlineAware:
		// Earliest estimated completion: the replica most likely to get
		// the request in under its deadline.
		best, bestFinish := candidates[0], math.Inf(1)
		for _, i := range candidates {
			r := ro.replicas[i]
			est := r.estFinishFor(tr, math.Max(r.estFreeAt, t))
			if est < bestFinish {
				best, bestFinish = i, est
			}
		}
		return best
	default: // RoundRobin
		n := len(ro.replicas)
		for off := 0; off < n; off++ {
			i := (ro.rrNext + off) % n
			for _, c := range candidates {
				if c == i {
					ro.rrNext = i + 1
					return i
				}
			}
		}
		return candidates[0] // unreachable: candidates is non-empty
	}
}

// warmth ranks a replica for a session turn by where the turn's prefix
// history resides: 2 when its leading blocks sit in the replica's
// device cache, 1 when only in its host tier (restorable for a fee),
// 0 when cold. Untiered fleets always report cold, so legacy routing
// is untouched.
func (ro *router) warmth(i int, tr engine.TimedRequest) int {
	if !ro.tiered || len(tr.PromptSyms) == 0 {
		return 0
	}
	dev, host := ro.replicas[i].eng.PeekPrefix(tr.PromptSyms)
	switch {
	case dev > 0:
		return 2
	case host > 0:
		return 1
	}
	return 0
}

// leastQueued picks the candidate with the fewest outstanding requests,
// breaking ties by index.
func leastQueued(replicas []*replica, candidates []int) int {
	best := candidates[0]
	for _, i := range candidates[1:] {
		if len(replicas[i].finishes) < len(replicas[best].finishes) {
			best = i
		}
	}
	return best
}
