package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"edgereasoning/internal/engine"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/kvcache"
	"edgereasoning/internal/model"
	"edgereasoning/internal/session"
	"edgereasoning/internal/stats"
)

func init() {
	register("tiering", tieringStudy)
}

// defaultTierDeviceBlocks is the device-cache sweep: the smallest point
// is starved (the agentic stream's working set overflows it, so the run
// demotes and promotes continuously), the largest holds most histories
// resident and shows the tier costing nothing when idle.
var defaultTierDeviceBlocks = []int{192, 384, 768}

// ParseDeviceBlocks resolves the tiering sweep's comma-separated
// device-cache sizes; an empty spelling selects the default sweep. The
// CLI calls it to reject a typo before engines spin up.
func ParseDeviceBlocks(csv string) ([]int, error) {
	if strings.TrimSpace(csv) == "" {
		return append([]int(nil), defaultTierDeviceBlocks...), nil
	}
	parts := strings.Split(csv, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("experiments: bad device-blocks entry %q (want positive block counts)", p)
		}
		out = append(out, n)
	}
	return out, nil
}

// tieringStudy is the host-DRAM KV tier experiment: the session-grade
// agentic workload served on a single Orin at several device-cache
// sizes, each size run twice — device cache only, and with the host
// tier attached — so the sweep isolates what a second tier buys when
// device HBM is the binding constraint. Under pressure the tier turns
// evictions into demotions: a returning turn's history is restored over
// the host link (bytes / bandwidth, charged into TTFT) instead of being
// re-prefilled, so the token-weighted hit rate and the warm-turn tail
// TTFT both improve while generated tokens stay bit-identical — the
// tier moves blocks, never tokens. A verify table locks those claims at
// the most starved sweep point.
func tieringStudy(opts Options) ([]Table, error) {
	sessions := opts.SessionCount
	turns := opts.SessionTurns
	branch := opts.SessionBranch
	if sessions <= 0 {
		sessions = 10
		if opts.Quick {
			sessions = 6
		}
	}
	if turns <= 0 {
		turns = 5
		if opts.Quick {
			turns = 3
		}
	}
	if branch <= 0 {
		branch = 2
	}
	deviceSizes, err := ParseDeviceBlocks(opts.TierDeviceBlocks)
	if err != nil {
		return nil, err
	}
	hostBlocks := opts.TierHostBlocks
	if hostBlocks <= 0 {
		hostBlocks = 1024
	}
	bw := opts.TierLinkBW
	if bw <= 0 {
		bw = kvcache.DefaultHostLinkBandwidth
	}

	reqs, err := session.Generate(session.AgentLoop(sessions, turns, branch), opts.Seed)
	if err != nil {
		return nil, err
	}
	spec := model.MustLookup(model.DSR1Qwen1_5B)
	const maxBatch = 8

	type run struct {
		sm engine.ServeMetrics
		pm kvcache.PrefixMetrics
	}
	serve := func(deviceBlocks, host int) (run, error) {
		e, err := engine.New(engine.Config{
			Spec: spec, Device: hw.JetsonAGXOrin64GB(), PrefixCache: true,
			DeviceBlocks: deviceBlocks, HostTierBlocks: host, HostLinkBandwidth: bw,
		})
		if err != nil {
			return run{}, err
		}
		sm, err := e.ServeSource(engine.NewSliceSource(reqs), maxBatch, engine.FCFS,
			engine.ServeOpts{SizeHint: len(reqs)})
		if err != nil {
			return run{}, err
		}
		return run{sm: sm, pm: e.PrefixMetrics()}, nil
	}

	sweep := Table{
		ID: "tiering",
		Title: fmt.Sprintf("Tiered prefix KV: %d agentic sessions x %d turns (branch %d) on DSR1-Qwen-1.5B/Orin, device cache swept with host tier off/on (%d host blocks, %.0f GB/s link)",
			sessions, turns, branch, hostBlocks, bw/1e9),
		Columns: []string{"device_blocks", "host_tier", "hit_rate_pct", "warm_p99_ttft_s",
			"p99_ttft_s", "demotions", "promotions", "host_hits", "restore_s"},
		Notes: []string{
			"hit rate is token-weighted (saved / looked-up prompt tokens); warm turns exclude each session's first request",
			"restore_s is total host-link transfer time charged into TTFT by promotions",
		},
	}
	type point struct{ off, on run }
	points := make([]point, len(deviceSizes))
	for i, dev := range deviceSizes {
		off, err := serve(dev, 0)
		if err != nil {
			return nil, err
		}
		on, err := serve(dev, hostBlocks)
		if err != nil {
			return nil, err
		}
		points[i] = point{off: off, on: on}
		for _, leg := range []struct {
			tier string
			r    run
		}{{"off", off}, {"on", on}} {
			sweep.AddRow(di(dev), leg.tier, f1(leg.r.sm.PrefixHitRate()*100),
				f3(warmTTFTP99(leg.r.sm)), f3(ttftPercentiles(leg.r.sm)[1]),
				di(leg.r.pm.Demotions), di(leg.r.pm.Promotions),
				di(leg.r.sm.HostHits), f3(leg.r.sm.RestoreSeconds))
		}
	}

	// Verify at the most starved point: the tier must buy hit rate and
	// warm tail TTFT, and across every sweep point it must leave the
	// generated stream untouched.
	starved := points[0]
	tokensSame := true
	for _, p := range points {
		if !sameTokens(p.off.sm, p.on.sm) {
			tokensSame = false
			break
		}
	}
	check := func(ok bool) string {
		if ok {
			return "pass"
		}
		return "FAIL"
	}
	offHit, onHit := starved.off.sm.PrefixHitRate(), starved.on.sm.PrefixHitRate()
	offWarm, onWarm := warmTTFTP99(starved.off.sm), warmTTFTP99(starved.on.sm)
	verify := Table{
		ID:      "tiering-verify",
		Title:   fmt.Sprintf("Tiering verify at the starved point (%d device blocks): restore beats re-prefill, tokens never move", deviceSizes[0]),
		Columns: []string{"metric", "tier_off", "tier_on", "check"},
		Notes:   []string{"the host tier may only change timing: per-request prompt/output token counts must match the untiered run at every sweep point"},
	}
	verify.AddRow("hit_rate_pct", f1(offHit*100), f1(onHit*100), check(onHit > offHit))
	verify.AddRow("warm_p99_ttft_s", f3(offWarm), f3(onWarm), check(onWarm < offWarm))
	verify.AddRow("tokens_identical", di(totalTokens(starved.off.sm)), di(totalTokens(starved.on.sm)), check(tokensSame))
	return []Table{sweep, verify}, nil
}

// warmTTFTP99 is the p99 time-to-first-token (queue + restore +
// prefill) over the warm turns only — the requests whose history an
// earlier request already wrote, where retention (or restoration) can
// actually pay off.
func warmTTFTP99(m engine.ServeMetrics) float64 {
	var ttfts []float64
	for _, r := range m.Requests {
		if session.WarmTurn(r.ID) {
			ttfts = append(ttfts, r.QueueTime+r.RestoreTime+r.PrefillTime)
		}
	}
	if len(ttfts) == 0 {
		return 0
	}
	return stats.Percentiles(ttfts, 99)[0]
}

// sameTokens reports whether two runs completed the same requests with
// identical per-request token counts — the tier's "timing only" contract.
func sameTokens(a, b engine.ServeMetrics) bool {
	if len(a.Requests) != len(b.Requests) {
		return false
	}
	type shape struct{ prompt, output int }
	want := make(map[string]shape, len(a.Requests))
	for _, r := range a.Requests {
		want[r.ID] = shape{r.PromptTokens, r.OutputTokens}
	}
	for _, r := range b.Requests {
		s, ok := want[r.ID]
		if !ok || s != (shape{r.PromptTokens, r.OutputTokens}) {
			return false
		}
	}
	return true
}

func totalTokens(m engine.ServeMetrics) int {
	n := 0
	for _, r := range m.Requests {
		n += r.PromptTokens + r.OutputTokens
	}
	return n
}
