package fleet

import (
	"math"
	"testing"

	"edgereasoning/internal/engine"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/workload"
)

// burstyReqs is the elastic-pool stress shape: a trickle of background
// traffic with a sharp deadline-bearing spike in the middle.
func burstyReqs(t *testing.T, seed uint64) []engine.TimedRequest {
	t.Helper()
	background := workload.InteractiveAssistant(0.2, 8)
	background.DeadlineSlack = 4
	background.DeadlineSlackMax = 12
	spike := workload.InteractiveAssistant(6, 36)
	spike.DeadlineSlack = 4
	spike.DeadlineSlackMax = 12
	reqs, err := workload.Bursty(background, spike, 30, seed)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func autoscaleConfig(initial int) Config {
	cfg := homogeneousFleet(initial, LeastQueue)
	cfg.Autoscale = &AutoscaleConfig{
		Min:             initial,
		Max:             5,
		Spec:            smallSpec(),
		Devices:         []*hw.Device{hw.JetsonAGXOrin64GB()},
		ColdStart:       2,
		DepthPerReplica: 2,
		IdleRetire:      10,
		Cooldown:        1,
	}
	return cfg
}

func TestAutoscaleConfigValidation(t *testing.T) {
	base := homogeneousFleet(2, RoundRobin)
	cases := []struct {
		name string
		cfg  AutoscaleConfig
	}{
		{"max below min", AutoscaleConfig{Min: 3, Max: 2, Spec: smallSpec()}},
		{"initial above max", AutoscaleConfig{Min: 1, Max: 1, Spec: smallSpec()}},
		{"initial below min", AutoscaleConfig{Min: 3, Max: 6, Spec: smallSpec()}},
		{"no spec", AutoscaleConfig{Min: 1, Max: 4}},
		{"nan cold start", AutoscaleConfig{Min: 1, Max: 4, Spec: smallSpec(), ColdStart: math.NaN()}},
	}
	for _, tc := range cases {
		cfg := base
		ac := tc.cfg
		cfg.Autoscale = &ac
		if _, err := Serve(cfg, burst(2, 1, 0)); err == nil {
			t.Errorf("%s: invalid autoscale config must be rejected", tc.name)
		}
	}
}

func TestScaleSignalParse(t *testing.T) {
	for _, s := range []ScaleSignal{ScaleOnBoth, ScaleOnDepth, ScaleOnMiss} {
		got, err := ParseScaleSignal(s.String())
		if err != nil || got != s {
			t.Errorf("round-trip %v: got %v, %v", s, got, err)
		}
	}
	if got, err := ParseScaleSignal(""); err != nil || got != ScaleOnBoth {
		t.Errorf("empty spelling must default to both, got %v, %v", got, err)
	}
	if _, err := ParseScaleSignal("vibes"); err == nil {
		t.Error("unknown signal must be rejected")
	}
}

func TestAutoscaleGrowsOnBurstAndRetiresOnIdle(t *testing.T) {
	reqs := burstyReqs(t, 7)
	m, err := Serve(autoscaleConfig(1), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Served+m.Dropped != len(reqs) {
		t.Fatalf("served %d + dropped %d != offered %d", m.Served, m.Dropped, len(reqs))
	}
	if m.ScaleUps == 0 {
		t.Error("burst must trigger at least one scale-up")
	}
	if m.ScaleDowns == 0 {
		t.Error("post-burst idle must retire at least one replica")
	}
	if m.PeakReplicas <= 1 {
		t.Errorf("peak pool %d, want growth beyond the initial single replica", m.PeakReplicas)
	}
	if m.PeakReplicas > m.ScaleUps+1 {
		t.Errorf("peak %d exceeds initial 1 + %d scale-ups", m.PeakReplicas, m.ScaleUps)
	}
	if m.ReplicaSeconds <= 0 {
		t.Error("replica-seconds must be accounted")
	}
	if len(m.Replicas) != 1+m.ScaleUps {
		t.Errorf("replica metrics %d, want initial + %d provisioned", len(m.Replicas), m.ScaleUps)
	}
	for _, rm := range m.Replicas[1:] {
		if rm.ProvisionedAt <= 0 {
			t.Errorf("%s: provisioned replica must record a provision time", rm.Name)
		}
	}
}

func TestAutoscaleOffKeepsPoolFixed(t *testing.T) {
	reqs := burstyReqs(t, 7)
	cfg := homogeneousFleet(2, LeastQueue)
	m, err := Serve(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.ScaleUps != 0 || m.ScaleDowns != 0 || len(m.ScaleEvents) != 0 ||
		m.PeakReplicas != 0 || m.ReplicaSeconds != 0 {
		t.Errorf("autoscale accounting must stay zero when off: %+v", m)
	}
	if len(m.Replicas) != 2 {
		t.Errorf("fixed pool grew to %d replicas", len(m.Replicas))
	}
}

// TestAutoscaleProperties is the CI property test: across seeds the pool
// must respect its bounds, the event log must be monotone in time, and
// every offered request must be either served or dropped.
func TestAutoscaleProperties(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		reqs := burstyReqs(t, seed)
		cfg := autoscaleConfig(1)
		m, err := Serve(cfg, reqs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if m.Served+m.Dropped != len(reqs) {
			t.Errorf("seed %d: served %d + dropped %d != offered %d", seed, m.Served, m.Dropped, len(reqs))
		}
		min, max := cfg.Autoscale.Min, cfg.Autoscale.Max
		if m.PeakReplicas < min || m.PeakReplicas > max {
			t.Errorf("seed %d: peak pool %d outside [%d, %d]", seed, m.PeakReplicas, min, max)
		}
		last := math.Inf(-1)
		for i, ev := range m.ScaleEvents {
			if ev.Time < last {
				t.Errorf("seed %d: event %d at %.3f precedes %.3f — log not monotone", seed, i, ev.Time, last)
			}
			last = ev.Time
			if ev.Live < min || ev.Live > max {
				t.Errorf("seed %d: event %d leaves live pool %d outside [%d, %d]", seed, i, ev.Live, min, max)
			}
			if ev.Up && ev.Reason != "depth" && ev.Reason != "miss" && ev.Reason != "outage" {
				t.Errorf("seed %d: scale-up reason %q unknown", seed, ev.Reason)
			}
			if !ev.Up && ev.Reason != "idle" {
				t.Errorf("seed %d: scale-down reason %q unknown", seed, ev.Reason)
			}
		}
		if m.ReplicaSeconds < 0 {
			t.Errorf("seed %d: negative replica-seconds %.3f", seed, m.ReplicaSeconds)
		}
	}
}

func TestAutoscaleRecoversFromTotalOutage(t *testing.T) {
	cfg := autoscaleConfig(1)
	cfg.Replicas[0].FailAt = 5 // the whole initial pool dies early
	// Deadline-less stream with a miss-only trigger: the ordinary
	// pressure signals stay silent, so only the emergency outage path
	// can revive the pool.
	cfg.Autoscale.ScaleOn = ScaleOnMiss
	reqs := burst(10, 2, 0) // arrivals 0..18s straddle the outage
	m, err := Serve(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Served != len(reqs) {
		t.Fatalf("served %d of %d: the autoscaler must revive a dead pool", m.Served, len(reqs))
	}
	outage := false
	for _, ev := range m.ScaleEvents {
		if ev.Up && ev.Reason == "outage" {
			outage = true
		}
	}
	if !outage {
		t.Error("expected an emergency outage provision in the event log")
	}
}

// TestScaleOnMissNeedsCongestion is the false-positive regression test:
// tight deadlines alone (slack below ColdStart) must not provision when
// the pool is keeping up — a request about to be dispatched to an idle
// replica is not miss pressure.
func TestScaleOnMissNeedsCongestion(t *testing.T) {
	cfg := autoscaleConfig(1)
	cfg.Autoscale.ScaleOn = ScaleOnMiss
	cfg.Autoscale.ColdStart = 5
	reqs := burst(10, 5, 2) // trickle, slack 2s < ColdStart 5s, zero queueing
	m, err := Serve(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.ScaleUps != 0 {
		t.Errorf("uncongested tight-slack stream provisioned %d replicas (events %+v)", m.ScaleUps, m.ScaleEvents)
	}
	if m.HitRate() < 1 {
		t.Errorf("workload not actually easy: hit rate %.2f", m.HitRate())
	}
	// The same signal must still fire when deadline work genuinely
	// queues behind a busy pool.
	cfg = autoscaleConfig(1)
	cfg.Autoscale.ScaleOn = ScaleOnMiss
	m, err = Serve(cfg, burst(30, 0.1, 3)) // overload, 3s slack
	if err != nil {
		t.Fatal(err)
	}
	if m.ScaleUps == 0 {
		t.Error("miss-only autoscaler must grow when queued deadline work will be late")
	}
}

func TestAutoscaleScaleOnMissIgnoresDepth(t *testing.T) {
	// Deadline-less overload: depth pressure only. With ScaleOn miss the
	// pool must never grow.
	cfg := autoscaleConfig(1)
	cfg.Autoscale.ScaleOn = ScaleOnMiss
	m, err := Serve(cfg, burst(20, 0.05, 0))
	if err != nil {
		t.Fatal(err)
	}
	if m.ScaleUps != 0 {
		t.Errorf("miss-only autoscaler scaled up %d times on a deadline-less stream", m.ScaleUps)
	}
	cfg = autoscaleConfig(1)
	cfg.Autoscale.ScaleOn = ScaleOnDepth
	m, err = Serve(cfg, burst(20, 0.05, 0))
	if err != nil {
		t.Fatal(err)
	}
	if m.ScaleUps == 0 {
		t.Error("depth-only autoscaler must grow under a deadline-less backlog")
	}
}

// TestStickySessionsPurgedOnRetirement drives the dispatcher directly:
// a session pins to a replica, the replica retires during a long lull,
// and the session's next turn must re-pin to a live replica while the
// sticky map drops every entry referencing the retired one.
func TestStickySessionsPurgedOnRetirement(t *testing.T) {
	mk := func() *replica {
		r, err := newReplica(ReplicaConfig{Spec: smallSpec(), Device: hw.JetsonAGXOrin64GB()}.withDefaults(0), cacheOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	ro := &router{replicas: []*replica{mk(), mk()}, policy: SessionAffinity}
	as, err := newAutoscaler(&AutoscaleConfig{
		Min: 1, Max: 2, Spec: smallSpec(),
		Devices:    []*hw.Device{hw.JetsonAGXOrin64GB()},
		IdleRetire: 5, Cooldown: 1, DepthPerReplica: 4,
	}, 2, cacheOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sess := func(id, sid string, at float64) engine.TimedRequest {
		tr := timed(id, at, 64, 20, 0)
		tr.SessionID = sid
		return tr
	}
	// Two sessions spread across both replicas, then a lull far longer
	// than the idle window, then one session returns.
	stream := []engine.TimedRequest{
		sess("a1", "sa", 0), sess("b1", "sb", 0.01),
		sess("a2", "sa", 100),
	}
	var out Metrics
	var delays map[string]float64
	if err := dispatch(ro, as, nil, nil, FIFO, engine.NewPeekable(engine.NewSliceSource(stream)), &delays, &out); err != nil {
		t.Fatal(err)
	}
	if out.Dropped != 0 {
		t.Fatalf("dropped %d requests", out.Dropped)
	}
	retired := 0
	for i, r := range ro.replicas {
		if !r.retired {
			continue
		}
		retired++
		for sid, p := range ro.sticky {
			if p == i {
				t.Errorf("sticky map leaks session %q pinned to retired replica %d", sid, i)
			}
		}
		if i < len(ro.pinned) && ro.pinned[i] != 0 {
			t.Errorf("pinned count %d left on retired replica %d", ro.pinned[i], i)
		}
	}
	if retired == 0 {
		t.Fatal("the lull must retire a replica (idle window 5s, gap 100s)")
	}
	// The returning session must hold a pin to a live replica.
	p, ok := ro.sticky["sa"]
	if !ok {
		t.Fatal("session sa lost its pin entirely")
	}
	if ro.replicas[p].retired {
		t.Errorf("session sa re-pinned to retired replica %d", p)
	}
}

// TestProvisionRefusesAtMax is the emergency-path regression: provision
// is the single place the Max bound is enforced for outage revivals
// (the pressure triggers check it in observe), so a provision attempt
// against a full pool must refuse rather than exceed the budget.
func TestProvisionRefusesAtMax(t *testing.T) {
	mk := func() *replica {
		r, err := newReplica(ReplicaConfig{Spec: smallSpec(), Device: hw.JetsonAGXOrin64GB()}.withDefaults(0), cacheOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	ro := &router{replicas: []*replica{mk(), mk()}, policy: LeastQueue}
	as, err := newAutoscaler(&AutoscaleConfig{
		Min: 1, Max: 2, Spec: smallSpec(),
		Devices: []*hw.Device{hw.JetsonAGXOrin64GB()},
	}, 2, cacheOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := as.provision(ro, 1, "outage"); err == nil {
		t.Fatal("provision at Max must refuse")
	}
	if len(ro.replicas) != 2 || as.peak != 2 || len(as.events) != 0 {
		t.Fatalf("refused provision mutated state: %d replicas, peak %d, %d events",
			len(ro.replicas), as.peak, len(as.events))
	}
	// One replica dies for good: the pool is below Max again and the
	// same emergency call must now succeed.
	ro.replicas[0].cfg.FailAt = 0.5
	if err := as.provision(ro, 1, "outage"); err != nil {
		t.Fatalf("provision below Max refused: %v", err)
	}
	if got := ro.liveCount(1); got != 2 {
		t.Fatalf("live %d after revival, want 2", got)
	}
}

// TestOutageRevivalBoundedByMax runs repeated permanent crashes through
// the emergency outage path end to end: however many revivals it takes,
// the pool never exceeds the Max budget.
func TestOutageRevivalBoundedByMax(t *testing.T) {
	cfg := autoscaleConfig(1)
	cfg.Autoscale.Max = 2
	cfg.Autoscale.ScaleOn = ScaleOnMiss // keep the ordinary triggers silent
	cfg.Replicas[0].CrashAt = 5         // the whole initial pool dies, lossily
	reqs := burst(10, 2, 0)             // arrivals 0..18s straddle the outage
	m, err := Serve(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.PeakReplicas > cfg.Autoscale.Max {
		t.Fatalf("peak %d exceeds Max %d", m.PeakReplicas, cfg.Autoscale.Max)
	}
	if m.Served+m.Dropped != m.Offered || m.Offered != len(reqs) {
		t.Fatalf("conservation: served %d + dropped %d != offered %d", m.Served, m.Dropped, m.Offered)
	}
	outage := false
	for _, ev := range m.ScaleEvents {
		if ev.Up && ev.Reason == "outage" {
			outage = true
		}
		if ev.Live > cfg.Autoscale.Max {
			t.Fatalf("scale event %+v exceeds Max %d", ev, cfg.Autoscale.Max)
		}
	}
	if !outage {
		t.Error("expected an emergency outage provision in the event log")
	}
	if m.Served == 0 {
		t.Error("revived pool served nothing")
	}
}
