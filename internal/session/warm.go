package session

import "strings"

// WarmTurn reports whether the request ID names a turn that can find
// earlier history in a prefix cache. Session request IDs follow the
// generator's scheme — "s<N>t<K>" for turn K's canonical think,
// "s<N>t<K>b<B>" for extra branch samples, "s<N>t<K>a" for the act —
// and only the bare turn-0 think ("s<N>t0") runs against a history no
// prior request of its session has written; every other ID re-reads
// prompt content an earlier request already produced. IDs from other
// generators (no "s<N>t..." shape) are conservatively reported cold.
//
// Per-request engine metrics carry only the ID, so experiment drivers
// use this to split tail latencies into cold first-turns (which must
// prefill either way) and warm turns (where prefix retention, and the
// host tier's restore-vs-recompute trade, actually shows up).
func WarmTurn(id string) bool {
	rest, ok := strings.CutPrefix(id, "s")
	if !ok {
		return false
	}
	i := 0
	for i < len(rest) && rest[i] >= '0' && rest[i] <= '9' {
		i++
	}
	if i == 0 || i == len(rest) || rest[i] != 't' {
		return false
	}
	return rest[i:] != "t0"
}
