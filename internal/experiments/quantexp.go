package experiments

import (
	"edgereasoning/internal/core"
	"edgereasoning/internal/data"
	"edgereasoning/internal/gpusim"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/model"
	"edgereasoning/internal/power"
	"edgereasoning/internal/quant"
)

func init() {
	register("quant", quantSuite)
	register("table9", table9Frameworks)
}

// quantSuite reproduces the §V-F quantization study: Figs 11–13 (latency,
// power, energy sweeps for the W4 models), Fig 14 (base-vs-W4 accuracy,
// tokens, latency), and Tables XVIII/XIX (sweep aggregates), plus the
// fitted W4 decode model parameters (Tables XXII/XXIII analogue).
func quantSuite(opts Options) ([]Table, error) {
	d := hw.JetsonAGXOrin64GB()
	sim := gpusim.New(d)
	meter := power.NewMeter(d)

	fig11 := Table{
		ID: "fig11", Title: "Quantized (W4) prefill and decode latency vs sequence length",
		Columns: []string{"model", "phase", "length", "latency_s"},
	}
	fig1213 := Table{
		ID: "fig12_13", Title: "Quantized (W4) power and energy/token by phase",
		Columns: []string{"model", "phase", "length", "power_w", "energy_j_per_tok"},
	}
	t18 := Table{
		ID: "table18", Title: "Prefill performance: base vs quantized (sweep [128,4096])",
		Columns: []string{"model", "variant", "time_s", "ktok_per_s", "power_w"},
	}
	t19 := Table{
		ID: "table19", Title: "Decode performance: base vs quantized (input 512, sweep [128,2048])",
		Columns: []string{"model", "variant", "time_s", "tok_per_s", "power_w"},
	}
	fig14 := Table{
		ID: "fig14", Title: "Base FP16 vs quantized W4: accuracy, tokens, latency",
		Columns: []string{"model", "variant", "acc_pct", "avg_toks", "latency_s", "decode_speedup"},
	}
	t23 := Table{
		ID: "table23", Title: "Fitted decode power/energy parameters, quantized models",
		Columns: []string{"model", "power_alpha", "power_beta", "energy_alpha", "energy_beta"},
	}

	for _, spec := range model.DSR1Family() {
		q := spec.Quantized()
		for _, n := range []int{512, 1024, 2048, 4096} {
			res := sim.Prefill(q.Arch, q.DType, n, 1)
			fig11.AddRow(string(q.ID), "prefill", di(n), f3(res.Time))
			fig1213.AddRow(string(q.ID), "prefill", di(n), f1(meter.ObservedPower(res)), f4(meter.EnergyPerToken(res)))
		}
		for _, o := range []int{128, 512, 1024, 2048} {
			res := sim.DecodeRun(q.Arch, q.DType, 512, o, 1)
			fig11.AddRow(string(q.ID), "decode", di(o), f2(res.Time))
			fig1213.AddRow(string(q.ID), "decode", di(o), f1(meter.Power(res)), f3(meter.EnergyPerToken(res)))
		}

		cmp, err := quant.Compare(sim, meter, spec, data.MMLURedux)
		if err != nil {
			return nil, err
		}
		t18.AddRow(string(spec.ID), "base", f2(cmp.BasePrefill.MeanTime), f1(cmp.BasePrefill.TokPerSec/1000), f1(cmp.BasePrefill.MeanPower))
		t18.AddRow(string(spec.ID), "awq-w4", f2(cmp.QuantPrefill.MeanTime), f1(cmp.QuantPrefill.TokPerSec/1000), f1(cmp.QuantPrefill.MeanPower))
		t19.AddRow(string(spec.ID), "base", f2(cmp.BaseDecode.MeanTime), f1(cmp.BaseDecode.TokPerSec), f1(cmp.BaseDecode.MeanPower))
		t19.AddRow(string(spec.ID), "awq-w4", f2(cmp.QuantDecode.MeanTime), f1(cmp.QuantDecode.TokPerSec), f1(cmp.QuantDecode.MeanPower))

		if cmp.HaveAccuracy {
			baseLat := sim.Prefill(spec.Arch, spec.DType, 180, 1).Time +
				sim.DecodeRun(spec.Arch, spec.DType, 180, int(cmp.BaseTokens), 1).Time
			quantLat := sim.Prefill(q.Arch, q.DType, 180, 1).Time +
				sim.DecodeRun(q.Arch, q.DType, 180, int(cmp.QuantTokens), 1).Time
			fig14.AddRow(string(spec.ID), "fp16", pct(cmp.BaseAccuracy), f1(cmp.BaseTokens), f2(baseLat), "1.0")
			fig14.AddRow(string(spec.ID), "w4", pct(cmp.QuantAccuracy), f1(cmp.QuantTokens), f2(quantLat), f2(cmp.DecodeSpeedup()))
		}

		dp, err := core.FitDecodePower(sim, meter, q.Arch, q.DType)
		if err != nil {
			return nil, err
		}
		de, err := core.FitDecodeEnergy(sim, meter, q.Arch, q.DType)
		if err != nil {
			return nil, err
		}
		pa, pb := logLinearTerms(dp.Curve.High)
		ea, eb := logLinearTerms(de.Curve.High)
		t23.AddRow(string(q.ID), f3(pa), f3(pb), f4(ea), f4(eb))
	}
	return []Table{fig11, fig1213, t18, t19, fig14, t23}, nil
}

// table9Frameworks reproduces Table IX: inference-engine latency
// comparison on DSR1-Llama-8B.
func table9Frameworks(opts Options) ([]Table, error) {
	t := Table{
		ID: "table9", Title: "Inference engine comparison, DSR1-Llama-8B (paper: vLLM 1.11-1.13x over HFT, ~parity with TRT-LLM)",
		Columns: []string{"input_len", "output_len", "hft_s", "vllm_s", "trt_s", "vllm_speedup_vs_hft"},
	}
	combos := [][2]int{{16, 128}, {64, 128}, {128, 128}}
	for _, combo := range combos {
		times := map[string]float64{}
		for _, profile := range frameworkProfiles() {
			eng, err := engineWithProfile(profile)
			if err != nil {
				return nil, err
			}
			m, err := eng.Generate(engineRequest(combo[0], combo[1]))
			if err != nil {
				return nil, err
			}
			times[profile.Name] = m.TotalTime()
		}
		t.AddRow(di(combo[0]), di(combo[1]),
			f2(times["HFT"]), f2(times["vLLM"]), f2(times["TRT-LLM"]),
			f2(times["HFT"]/times["vLLM"]))
	}
	return []Table{t}, nil
}
