// Package fit implements the curve-fitting toolbox used to derive the
// paper's analytical performance models from simulated measurements:
// polynomial least squares (Eqn 1, 2), log-linear fits (Eqn 4, 6 upper
// branches), exponential-decay fits (Eqn 5 lower branch), and piecewise
// composition with breakpoint search.
package fit

import (
	"errors"
	"math"
)

// ErrSingular is returned when a least-squares system has no unique
// solution (e.g. fewer distinct samples than coefficients).
var ErrSingular = errors.New("fit: singular system (not enough independent samples)")

// ErrNonFinite is returned when a fit sees NaN or ±Inf samples, or when
// the solve itself overflows. Fits must fail loudly rather than hand a
// silently poisoned curve to the latency and power models.
var ErrNonFinite = errors.New("fit: non-finite sample or solution")

// allFinite reports whether every value is a normal float (no NaN/±Inf).
func allFinite(xs []float64) bool {
	for _, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// solveLinear solves A x = b in place using Gaussian elimination with
// partial pivoting. A is row-major n×n; b has length n.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for i := range a {
		if len(a[i]) != n {
			return nil, errors.New("fit: non-square system")
		}
	}
	if len(b) != n {
		return nil, errors.New("fit: dimension mismatch")
	}
	// Forward elimination with partial pivoting.
	for col := 0; col < n; col++ {
		pivot := col
		for row := col + 1; row < n; row++ {
			if math.Abs(a[row][col]) > math.Abs(a[pivot][col]) {
				pivot = row
			}
		}
		if math.Abs(a[pivot][col]) < 1e-14 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for row := col + 1; row < n; row++ {
			f := a[row][col] / a[col][col]
			for k := col; k < n; k++ {
				a[row][k] -= f * a[col][k]
			}
			b[row] -= f * b[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for k := i + 1; k < n; k++ {
			sum -= a[i][k] * x[k]
		}
		x[i] = sum / a[i][i]
	}
	return x, nil
}

// LeastSquares solves the overdetermined system design·coef ≈ y via the
// normal equations. design is m×p (m samples, p basis functions). Callers
// supply arbitrary basis functions — e.g. the paper's decode model fits
// coefficients over the basis {O, I·O + O(O−1)/2} with no intercept.
func LeastSquares(design [][]float64, y []float64) ([]float64, error) {
	return leastSquares(design, y)
}

// leastSquares solves the overdetermined system design·coef ≈ y via the
// normal equations. design is m×p (m samples, p basis functions).
func leastSquares(design [][]float64, y []float64) ([]float64, error) {
	m := len(design)
	if m == 0 || len(y) != m {
		return nil, errors.New("fit: empty or mismatched data")
	}
	if !allFinite(y) {
		return nil, ErrNonFinite
	}
	p := len(design[0])
	// Normal equations: (XᵀX) coef = Xᵀy.
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	for r := 0; r < m; r++ {
		row := design[r]
		if len(row) != p {
			return nil, errors.New("fit: ragged design matrix")
		}
		if !allFinite(row) {
			return nil, ErrNonFinite
		}
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			xty[i] += row[i] * y[r]
		}
	}
	for i := range xtx {
		// Finite rows can still overflow the normal equations (x⁴ terms).
		if !allFinite(xtx[i]) || math.IsNaN(xty[i]) || math.IsInf(xty[i], 0) {
			return nil, ErrNonFinite
		}
	}
	coeffs, err := solveLinear(xtx, xty)
	if err != nil {
		return nil, err
	}
	if !allFinite(coeffs) {
		return nil, ErrNonFinite
	}
	return coeffs, nil
}
