package stats

import (
	"encoding/binary"
	"math"
	"testing"
)

// floatsFromBytes decodes the payload into float64s, passing raw bit
// patterns straight through — NaN, ±Inf, subnormals and all — so the
// percentile guards are genuinely exercised.
func floatsFromBytes(data []byte) []float64 {
	n := len(data) / 8
	if n > 256 {
		n = 256
	}
	xs := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		xs = append(xs, math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:])))
	}
	return xs
}

func addFloats(f *testing.F, p float64, xs []float64) {
	buf := make([]byte, 0, len(xs)*8)
	for _, x := range xs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	}
	f.Add(p, buf)
}

// FuzzPercentiles asserts the percentile toolbox's guarded contract on
// arbitrary samples and ranks: no panics; non-finite samples are ignored;
// with at least one finite sample and a finite p the result is finite and
// bounded by the finite min/max; Percentiles agrees element-wise with
// Percentile; and results are monotone in p.
func FuzzPercentiles(f *testing.F) {
	addFloats(f, 50, []float64{1, 2, 3, 4, 5})
	addFloats(f, 99, []float64{0.1, 7.5, 3.2, 9.9})
	addFloats(f, -10, []float64{2, 1})
	addFloats(f, 250, []float64{2, 1})
	addFloats(f, math.NaN(), []float64{1, math.NaN(), math.Inf(1)})
	addFloats(f, 95, []float64{math.Inf(-1), 4, math.NaN(), -4})
	addFloats(f, 50, nil)
	f.Fuzz(func(t *testing.T, p float64, data []byte) {
		xs := floatsFromBytes(data)

		got := Percentile(xs, p)
		multi := Percentiles(xs, 0, 25, p, 75, 100)
		if multi[2] != got && !(math.IsNaN(multi[2]) && math.IsNaN(got)) {
			t.Fatalf("Percentiles disagrees with Percentile at p=%v: %v vs %v", p, multi[2], got)
		}

		var finite []float64
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				finite = append(finite, x)
			}
		}
		if len(finite) == 0 {
			// No usable samples: every finite rank must report the 0
			// convention, NaN ranks report NaN.
			if math.IsNaN(p) {
				if !math.IsNaN(got) {
					t.Fatalf("Percentile(no finite, NaN) = %v, want NaN", got)
				}
				return
			}
			if got != 0 {
				t.Fatalf("Percentile(no finite samples, %v) = %v, want 0", p, got)
			}
			return
		}
		if math.IsNaN(p) {
			if !math.IsNaN(got) {
				t.Fatalf("Percentile(xs, NaN) = %v, want NaN", got)
			}
			return
		}
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("Percentile(%v finite samples, p=%v) = %v, want finite", len(finite), p, got)
		}
		lo, hi := finite[0], finite[0]
		for _, x := range finite {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		if got < lo || got > hi {
			t.Fatalf("Percentile(p=%v) = %v outside finite sample range [%v, %v]", p, got, lo, hi)
		}
		// Monotone in p over one shared sort.
		for i := 1; i < len(multi); i++ {
			a, b := multi[i-1], multi[i]
			if math.IsNaN(a) || math.IsNaN(b) {
				continue // only the injected p can be NaN, and only via NaN input p
			}
			// The probe ranks are ascending except the injected p, which
			// can land anywhere; compare only the fixed ascending ones.
			if i == 2 || i == 3 {
				continue
			}
			if b < a {
				t.Fatalf("percentiles not monotone: p-index %d: %v then %v (full %v)", i, a, b, multi)
			}
		}
	})
}
