package engine

import (
	"fmt"
	"math"
	"testing"

	"edgereasoning/internal/model"
)

func timed(id string, arrival float64, prompt, output int, deadline float64) TimedRequest {
	return TimedRequest{
		Request:  Request{ID: id, PromptTokens: prompt, OutputTokens: output},
		Arrival:  arrival,
		Deadline: deadline,
	}
}

func TestServeSingleRequest(t *testing.T) {
	e := newOrinEngine(t, model.DSR1Qwen1_5B)
	m, err := e.Serve([]TimedRequest{timed("a", 5, 64, 100, 0)}, 1, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Requests) != 1 {
		t.Fatalf("completed %d requests", len(m.Requests))
	}
	// The engine must idle-jump to the arrival, then serve.
	if len(m.Latencies) != 1 || m.Latencies[0] <= 0 {
		t.Errorf("latency accounting wrong: %v", m.Latencies)
	}
	// Latency excludes pre-arrival time.
	if m.Latencies[0] > 10 {
		t.Errorf("latency %.2f includes idle time before arrival", m.Latencies[0])
	}
	if st := e.CacheStats(); st.UsedBlocks != 0 {
		t.Errorf("leaked blocks: %+v", st)
	}
}

func TestServeRejectsPastArrivals(t *testing.T) {
	e := newOrinEngine(t, model.DSR1Qwen1_5B)
	if _, err := e.Generate(Request{ID: "warm", PromptTokens: 32, OutputTokens: 32}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Serve([]TimedRequest{timed("late", 0, 32, 32, 0)}, 1, FCFS); err == nil {
		t.Error("arrival before the engine clock must be rejected")
	}
}

func TestServeLatencyIncludesQueueing(t *testing.T) {
	e := newOrinEngine(t, model.DSR1Llama8B)
	// Two requests arriving together, served at batch 1: the second waits.
	m, err := e.Serve([]TimedRequest{
		timed("a", 0, 64, 200, 0),
		timed("b", 0, 64, 200, 0),
	}, 1, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Latencies) != 2 {
		t.Fatal("want 2 completions")
	}
	if m.Latencies[1] < m.Latencies[0]*1.8 {
		t.Errorf("second request should wait for the first: %.2f vs %.2f", m.Latencies[1], m.Latencies[0])
	}
}

func TestServeDeadlineAccounting(t *testing.T) {
	e := newOrinEngine(t, model.DSR1Qwen1_5B)
	m, err := e.Serve([]TimedRequest{
		timed("fits", 0, 64, 50, 60),     // generous deadline
		timed("misses", 0, 64, 2000, 10), // 2000 tokens cannot fit 10s
	}, 2, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if m.DeadlinesTotal != 2 {
		t.Fatalf("deadline total = %d, want 2", m.DeadlinesTotal)
	}
	if m.DeadlinesMet != 1 {
		t.Errorf("deadlines met = %d, want 1", m.DeadlinesMet)
	}
	if math.Abs(m.HitRate()-0.5) > 1e-9 {
		t.Errorf("hit rate = %v, want 0.5", m.HitRate())
	}
}

func TestServeEDFPrioritizesUrgent(t *testing.T) {
	// Three requests arrive together; the most urgent is listed last.
	// EDF must serve it first at batch 1; FCFS must not.
	build := func() []TimedRequest {
		return []TimedRequest{
			timed("loose1", 0, 64, 400, 500),
			timed("loose2", 0, 64, 400, 500),
			timed("urgent", 0, 64, 100, 18),
		}
	}
	run := func(pol SchedPolicy) ServeMetrics {
		e := newOrinEngine(t, model.DSR1Qwen1_5B)
		m, err := e.Serve(build(), 1, pol)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	fcfs := run(FCFS)
	edf := run(EDF)
	if edf.DeadlinesMet <= fcfs.DeadlinesMet {
		t.Errorf("EDF met %d deadlines, FCFS %d; EDF should win", edf.DeadlinesMet, fcfs.DeadlinesMet)
	}
	// EDF completes "urgent" first.
	if edf.Requests[0].ID != "urgent" {
		t.Errorf("EDF first completion = %s, want urgent", edf.Requests[0].ID)
	}
}

func TestServeIdleGapsDoNotBill(t *testing.T) {
	e := newOrinEngine(t, model.DSR1Qwen1_5B)
	// Two requests separated by a long idle gap.
	m, err := e.Serve([]TimedRequest{
		timed("a", 0, 64, 50, 0),
		timed("b", 1000, 64, 50, 0),
	}, 1, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	// Both latencies small despite the 1000s wall span.
	for _, l := range m.Latencies {
		if l > 30 {
			t.Errorf("latency %.1fs includes the idle gap", l)
		}
	}
	if m.WallTime < 1000 {
		t.Errorf("wall time %.1f should span the idle gap", m.WallTime)
	}
}

func TestServeEnergyConservation(t *testing.T) {
	e := newOrinEngine(t, model.DSR1Qwen1_5B)
	var reqs []TimedRequest
	for i := 0; i < 10; i++ {
		reqs = append(reqs, timed(fmt.Sprintf("q%d", i), float64(i)*2, 64, 60+10*i, 0))
	}
	m, err := e.Serve(reqs, 4, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, r := range m.Requests {
		sum += r.Energy()
	}
	if math.Abs(sum-m.TotalEnergy)/m.TotalEnergy > 1e-9 {
		t.Errorf("energy: per-request sum %.2f vs total %.2f", sum, m.TotalEnergy)
	}
	if st := e.CacheStats(); st.UsedBlocks != 0 {
		t.Errorf("leaked blocks: %+v", st)
	}
}

func TestServePercentilesOrdered(t *testing.T) {
	e := newOrinEngine(t, model.DSR1Qwen1_5B)
	var reqs []TimedRequest
	for i := 0; i < 30; i++ {
		reqs = append(reqs, timed(fmt.Sprintf("q%d", i), float64(i), 64, 40+5*i, 0))
	}
	m, err := e.Serve(reqs, 4, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if !(m.P50Latency <= m.P95Latency && m.P95Latency <= m.P99Latency) {
		t.Errorf("percentiles out of order: %v %v %v", m.P50Latency, m.P95Latency, m.P99Latency)
	}
	if m.MeanLatency <= 0 {
		t.Error("mean latency missing")
	}
}

func TestSchedPolicyString(t *testing.T) {
	if FCFS.String() != "FCFS" || EDF.String() != "EDF" {
		t.Error("policy names wrong")
	}
}
