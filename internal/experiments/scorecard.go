package experiments

import (
	"fmt"

	"edgereasoning/internal/control"
	"edgereasoning/internal/core"
	"edgereasoning/internal/cost"
	"edgereasoning/internal/data"
	"edgereasoning/internal/engine"
	"edgereasoning/internal/gpusim"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/llm"
	"edgereasoning/internal/model"
	"edgereasoning/internal/power"
	"edgereasoning/internal/tts"
)

func init() {
	register("verify", scorecard)
}

// Anchor is one paper-reported value the reproduction is scored against.
type Anchor struct {
	Name     string
	Paper    float64
	Measured float64
	// TolFrac is the allowed relative deviation.
	TolFrac float64
}

// Pass reports whether the measured value is within tolerance.
func (a Anchor) Pass() bool {
	if a.Paper == 0 {
		return a.Measured == 0
	}
	dev := (a.Measured - a.Paper) / a.Paper
	if dev < 0 {
		dev = -dev
	}
	return dev <= a.TolFrac
}

// Scorecard measures the headline anchors of the reproduction and
// compares each against the paper's published value. It is the machine
// behind `edgereasoning run verify` and backs EXPERIMENTS.md.
func Scorecard(opts Options) ([]Anchor, error) {
	d := hw.JetsonAGXOrin64GB()
	sim := gpusim.New(d)
	meter := power.NewMeter(d)
	var anchors []Anchor
	add := func(name string, paper, measured, tol float64) {
		anchors = append(anchors, Anchor{Name: name, Paper: paper, Measured: measured, TolFrac: tol})
	}

	// §IV-A: decode TBT for the DSR1 trio.
	tbtPaper := map[model.ID]float64{model.DSR1Qwen1_5B: 0.024, model.DSR1Llama8B: 0.096, model.DSR1Qwen14B: 0.187}
	for _, spec := range model.DSR1Family() {
		add("tbt_"+string(spec.ID), tbtPaper[spec.ID], sim.TBT(spec.Arch, spec.DType, 512), 0.15)
	}

	// Table IV: prefill constant c for the 8B.
	pm, _, err := core.FitPrefillModel(sim, model.MustLookup(model.DSR1Llama8B).Arch, model.FP16, 2048)
	if err != nil {
		return nil, err
	}
	add("prefill_c_8b", 0.104, pm.C, 0.30)

	// Table VII: decode dominates >99.5% of reasoning latency (8B, base
	// lengths).
	a8 := model.MustLookup(model.DSR1Llama8B).Arch
	pre := sim.Prefill(a8, model.FP16, 180, 1)
	dec := sim.DecodeRun(a8, model.FP16, 180, 811, 1)
	add("decode_share_8b", 0.995, dec.Time/(pre.Time+dec.Time), 0.01)

	// Table XIX: decode power for the trio.
	powPaper := map[model.ID]float64{model.DSR1Qwen1_5B: 19.6, model.DSR1Llama8B: 24.4, model.DSR1Qwen14B: 26.5}
	for _, spec := range model.DSR1Family() {
		res := sim.DecodeRun(spec.Arch, spec.DType, 512, 1024, 1)
		add("decode_power_"+string(spec.ID), powPaper[spec.ID], meter.Power(res), 0.20)
	}

	// Table XIX: W4 decode speedups.
	spdPaper := map[model.ID]float64{model.DSR1Qwen1_5B: 2.0, model.DSR1Llama8B: 2.9, model.DSR1Qwen14B: 3.1}
	for _, spec := range model.DSR1Family() {
		base := sim.DecodeRun(spec.Arch, model.FP16, 512, 1024, 1).Time
		w4 := sim.DecodeRun(spec.Arch, model.W4A16, 512, 1024, 1).Time
		add("w4_decode_speedup_"+string(spec.ID), spdPaper[spec.ID], base/w4, 0.20)
	}

	// Table X: Base accuracy of the strategy grid (twin sampling). An
	// ordered slice, not a map: row order must be byte-stable run to run.
	bank := data.MustLoad(data.MMLURedux, opts.Seed)
	accPaper := []struct {
		id   model.ID
		want float64
	}{
		{model.DSR1Qwen1_5B, 0.383},
		{model.DSR1Llama8B, 0.617},
		{model.DSR1Qwen14B, 0.806},
		{model.L1Max, 0.438},
	}
	for _, a := range accPaper {
		tw := llm.NewTwin(model.MustLookup(a.id), bank, opts.Seed)
		sub := bank.Subsample(opts.sample(bank.Size()))
		correct := 0
		for _, q := range sub.Questions {
			g, err := tw.Generate(q, control.BasePolicy())
			if err != nil {
				return nil, err
			}
			if g.Correct {
				correct++
			}
		}
		add("acc_base_"+string(a.id), a.want, float64(correct)/float64(sub.Size()), 0.08)
	}

	// Fig 9a: parallel-scaling gain at the 128 budget, 14B, SF32.
	tw14 := llm.NewTwin(model.MustLookup(model.DSR1Qwen14B), bank, opts.Seed)
	sub := bank.Subsample(opts.sample(1200))
	r1, err := tts.EvaluateBank(tw14, sub, control.HardLimit(128), 1)
	if err != nil {
		return nil, err
	}
	r32, err := tts.EvaluateBank(tw14, sub, control.HardLimit(128), 32)
	if err != nil {
		return nil, err
	}
	add("fig9a_gain_14b_sf32", 1.65, r32.Accuracy/r1.Accuracy, 0.20)

	// Table III: edge serving cost per 1M tokens at batch 1 and 30.
	spec := model.MustLookup(model.DeepScaleR1_5)
	aime := data.MustLoad(data.AIME2024, opts.Seed)
	twA := llm.NewTwin(spec, aime, opts.Seed)
	var reqs []engine.Request
	for _, q := range aime.Questions {
		g, err := twA.Generate(q, control.BasePolicy())
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, engine.Request{ID: fmt.Sprintf("q%d", q.Index), PromptTokens: q.PromptTokens, OutputTokens: g.OutputTokens})
	}
	runBatch := func(batch int) (cost.Breakdown, error) {
		eng, err := engine.New(engine.Config{Spec: spec, Device: hw.JetsonAGXOrin64GB()})
		if err != nil {
			return cost.Breakdown{}, err
		}
		cp := make([]engine.Request, len(reqs))
		copy(cp, reqs)
		b, err := eng.Run(cp, batch)
		if err != nil {
			return cost.Breakdown{}, err
		}
		return cost.Bill(cost.PaperRates(), b.TotalEnergy, b.WallTime, b.TotalTokens), nil
	}
	b1, err := runBatch(1)
	if err != nil {
		return nil, err
	}
	b30, err := runBatch(30)
	if err != nil {
		return nil, err
	}
	add("cost_per_1M_b1", 0.302, b1.PerMillionTokens(), 0.25)
	add("cost_per_1M_b30", 0.027, b30.PerMillionTokens(), 0.25)

	// Table IX: vLLM speedup over HF Transformers.
	hft, err := engine.New(engine.Config{Spec: model.MustLookup(model.DSR1Llama8B), Device: hw.JetsonAGXOrin64GB(),
		Framework: engine.Overhead{Name: "HFT", PrefillFactor: 1.10, StepFactor: 1.0, PerStepHost: 0.0115}})
	if err != nil {
		return nil, err
	}
	vllm, err := engine.New(engine.Config{Spec: model.MustLookup(model.DSR1Llama8B), Device: hw.JetsonAGXOrin64GB()})
	if err != nil {
		return nil, err
	}
	mh, err := hft.Generate(engine.Request{ID: "x", PromptTokens: 64, OutputTokens: 128})
	if err != nil {
		return nil, err
	}
	mv, err := vllm.Generate(engine.Request{ID: "x", PromptTokens: 64, OutputTokens: 128})
	if err != nil {
		return nil, err
	}
	add("vllm_speedup_vs_hft", 1.12, mh.TotalTime()/mv.TotalTime(), 0.05)

	return anchors, nil
}

// scorecard renders the anchors as the "verify" experiment.
func scorecard(opts Options) ([]Table, error) {
	anchors, err := Scorecard(opts)
	if err != nil {
		return nil, err
	}
	t := Table{
		ID: "verify", Title: "Reproduction scorecard: paper anchors vs this build",
		Columns: []string{"anchor", "paper", "measured", "tolerance", "status"},
	}
	passed := 0
	for _, a := range anchors {
		status := "FAIL"
		if a.Pass() {
			status = "ok"
			passed++
		}
		t.AddRow(a.Name, f3(a.Paper), f3(a.Measured), fmt.Sprintf("±%.0f%%", a.TolFrac*100), status)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d/%d anchors within tolerance", passed, len(anchors)))
	return []Table{t}, nil
}
