package telemetry

import (
	"fmt"
	"io"
	"strconv"
)

// promPrefix namespaces every exported metric.
const promPrefix = "edgereasoning_"

// WritePrometheus exports the trace's series and histograms as a
// Prometheus text-format (version 0.0.4) snapshot: each series' final
// sample becomes one gauge or counter line labeled by its track, and
// each histogram name is merged across its per-track instances into one
// fleet-wide histogram with cumulative le buckets. Families are sorted
// by name, samples by label, so the snapshot is byte-deterministic.
func (t *Trace) WritePrometheus(w io.Writer) error {
	series := t.Series()
	for i := 0; i < len(series); {
		j := i
		for j < len(series) && series[j].Name == series[i].Name {
			j++
		}
		name := promPrefix + series[i].Name
		if series[i].Kind == Counter {
			name += "_total"
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s sampled on the simulated clock\n# TYPE %s %s\n",
			name, series[i].Name, name, series[i].Kind); err != nil {
			return err
		}
		for _, s := range series[i:j] {
			last, ok := s.Last()
			if !ok {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", name, promLabel(s.Label), promFloat(last.V)); err != nil {
				return err
			}
		}
		i = j
	}
	for _, mh := range t.Histograms() {
		name := promPrefix + mh.Name
		if _, err := fmt.Fprintf(w, "# HELP %s %s merged across %d track(s)\n# TYPE %s histogram\n",
			name, mh.Name, len(mh.Labels), name); err != nil {
			return err
		}
		h := mh.Hist
		bounds := h.Bounds()
		for i := range bounds {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(bounds[i]), h.Cumulative(i)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			name, h.Count(), name, promFloat(h.Sum()), name, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

func promLabel(label string) string {
	if label == "" {
		return ""
	}
	return fmt.Sprintf("{replica=%q}", label)
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
