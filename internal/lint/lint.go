// Package lint is the simulator's static-analysis layer: a small,
// dependency-free core that mirrors the golang.org/x/tools/go/analysis
// API shape (Analyzer, Pass, diagnostics) plus the five project
// analyzers that turn the repository's dynamic contracts — determinism,
// seeded randomness, byte-stable reports, allocation-free hot loops,
// zero-overhead-when-off tracing — into compile-time checks.
//
// The x/tools module is not vendored here (the build must work fully
// offline), so the core re-implements the minimal surface the analyzers
// need: package loading over the standard library's go/parser +
// go/types (stdlib dependencies are type-checked through the "source"
// importer, so no pre-built export data is required), a Pass with
// resolved type information, and an analysistest-style fixture runner
// (see linttest.go). Swapping the core for the real go/analysis driver
// later is a mechanical change — the analyzer bodies only consume
// Fset/Files/Pkg/TypesInfo.
//
// # Directives
//
// The analyzers understand three comment directives:
//
//	//edgereasoning:hotpath [bench=BenchmarkName]
//	    on a function declaration: the function is a serving hot path
//	    and must stay free of allocating constructs (see hotpath.go).
//	    The optional bench= argument names the BENCH_serve.json target
//	    that gates the function dynamically; cmd/benchcheck warns when
//	    it is missing from the baseline.
//
//	//edgereasoning:wallclock -- <reason>
//	    on a function declaration: the function intentionally reads the
//	    host clock (driver UX, runner timeouts) and is exempt from the
//	    simclock analyzer.
//
//	//edgereasoning:tracer
//	    on a type declaration: values of this type are nil when tracing
//	    is off, so every method call on it must be nil-guarded (the
//	    traceoff analyzer enforces this alongside telemetry.Tracer).
//
//	//edgereasoning:allow <analyzer> [-- <reason>]
//	    on or immediately above a statement: suppresses that analyzer's
//	    diagnostics for the annotated line. Used for the handful of
//	    deliberate exceptions (e.g. the one-time block-table allocation
//	    inside kvcache.ReserveH).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. The shape deliberately
// matches golang.org/x/tools/go/analysis.Analyzer so the run functions
// port unchanged if the real driver becomes available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //edgereasoning:allow directives.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run inspects one package and reports diagnostics through the pass.
	Run func(*Pass) error
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report receives each diagnostic. The driver sets it; analyzers
	// call Reportf.
	Report func(Diagnostic)

	allowIndex map[string]map[int][]string // filename -> line -> allowed analyzer names
}

// A Diagnostic is one finding, positioned for editor navigation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos unless an
// //edgereasoning:allow directive suppresses this analyzer on that
// line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allowedAt(position) {
		return
	}
	p.Report(Diagnostic{Pos: position, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// allowedAt reports whether an allow directive for this pass's analyzer
// covers the line at position (the directive's own line and the line
// directly below it are both covered, so the comment can sit above or
// trail the flagged statement).
func (p *Pass) allowedAt(position token.Position) bool {
	if p.allowIndex == nil {
		p.allowIndex = buildAllowIndex(p.Fset, p.Files)
	}
	for _, name := range p.allowIndex[position.Filename][position.Line] {
		if name == p.Analyzer.Name {
			return true
		}
	}
	return false
}

func buildAllowIndex(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	idx := make(map[string]map[int][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					idx[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], names...)
				lines[pos.Line+1] = append(lines[pos.Line+1], names...)
			}
		}
	}
	return idx
}

// parseAllow extracts analyzer names from an
// "//edgereasoning:allow a b -- reason" comment.
func parseAllow(text string) ([]string, bool) {
	const prefix = "//edgereasoning:allow"
	if !strings.HasPrefix(text, prefix) {
		return nil, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = strings.TrimSpace(rest[:i])
	}
	names := strings.Fields(rest)
	return names, len(names) > 0
}

// Directive is one parsed //edgereasoning: function or type directive.
type Directive struct {
	// Kind is the word after the colon: "hotpath", "wallclock", "tracer".
	Kind string
	// Args holds key=value or bare arguments after the kind, before any
	// "--"-introduced free-form reason.
	Args []string
}

// Arg returns the value of a key=value argument, or "" when absent.
func (d Directive) Arg(key string) string {
	for _, a := range d.Args {
		if v, ok := strings.CutPrefix(a, key+"="); ok {
			return v
		}
	}
	return ""
}

// parseDirective recognizes "//edgereasoning:<kind> args... [-- reason]"
// comments, excluding allow (which is line-scoped, not decl-scoped).
func parseDirective(text string) (Directive, bool) {
	const prefix = "//edgereasoning:"
	if !strings.HasPrefix(text, prefix) {
		return Directive{}, false
	}
	rest := strings.TrimPrefix(text, prefix)
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = rest[:i]
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 || fields[0] == "allow" {
		return Directive{}, false
	}
	return Directive{Kind: fields[0], Args: fields[1:]}, true
}

// declDirectives parses every //edgereasoning: directive in a
// declaration's doc comment.
func declDirectives(doc *ast.CommentGroup) []Directive {
	if doc == nil {
		return nil
	}
	var out []Directive
	for _, c := range doc.List {
		if d, ok := parseDirective(c.Text); ok {
			out = append(out, d)
		}
	}
	return out
}

// FuncDirective returns the named directive from a function
// declaration's doc comment, if present.
func FuncDirective(fd *ast.FuncDecl, kind string) (Directive, bool) {
	for _, d := range declDirectives(fd.Doc) {
		if d.Kind == kind {
			return d, true
		}
	}
	return Directive{}, false
}

// pathHasSegment reports whether an import path contains seg as a whole
// path element ("edgereasoning/cmd/simlint" has segment "cmd").
func pathHasSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// pathHasSuffix reports whether path ends with the given slash-separated
// suffix on a path-element boundary.
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// isTestFile reports whether pos lies in a _test.go file. The standard
// loader skips test files entirely; this guard keeps the exemption
// explicit for fixture packages and future loaders that include them.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer —
// the deterministic order the multichecker prints in.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// funcScopeOf returns the types.Scope of the function literal or
// declaration node, or nil.
func funcScopeOf(info *types.Info, node ast.Node) *types.Scope {
	switch n := node.(type) {
	case *ast.FuncDecl:
		if obj, ok := info.Defs[n.Name].(*types.Func); ok {
			return obj.Scope()
		}
	case *ast.FuncLit:
		if sc, ok := info.Scopes[n.Type]; ok {
			return sc
		}
	}
	return nil
}
