package fleet

import (
	"testing"

	"edgereasoning/internal/engine"
	"edgereasoning/internal/workload"
)

func TestAdmissionParseRoundTrip(t *testing.T) {
	for _, a := range Admissions() {
		got, err := ParseAdmission(a.String())
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if got != a {
			t.Errorf("ParseAdmission(%q) = %v", a.String(), got)
		}
	}
	if _, err := ParseAdmission("lifo"); err == nil {
		t.Error("unknown admission discipline must be rejected")
	}
}

func TestAdmissionLocalDiscipline(t *testing.T) {
	if EDF.localDiscipline(RoundRobin) != engine.EDF {
		t.Error("EDF ingress must schedule EDF locally")
	}
	if FIFO.localDiscipline(DeadlineAware) != engine.EDF {
		t.Error("FIFO ingress must defer to the policy's local discipline")
	}
	if Shed.localDiscipline(RoundRobin) != engine.FCFS {
		t.Error("shed ingress with a blind policy must stay FCFS locally")
	}
}

func TestIngressPickOrder(t *testing.T) {
	reqs := []engine.TimedRequest{
		{Request: engine.Request{ID: "a", PromptTokens: 300}, Arrival: 0},
		{Request: engine.Request{ID: "b", PromptTokens: 50}, Arrival: 1, Deadline: 90},
		{Request: engine.Request{ID: "c", PromptTokens: 50}, Arrival: 2, Deadline: 40},
		{Request: engine.Request{ID: "d", PromptTokens: 120}, Arrival: 3},
	}
	fill := func(d Admission) *ingress {
		q := &ingress{discipline: d}
		for _, tr := range reqs {
			q.push(tr)
		}
		return q
	}
	if q := fill(FIFO); q.waiting[q.pick()].ID != "a" {
		t.Error("FIFO must pick the earliest arrival")
	}
	if q := fill(EDF); q.waiting[q.pick()].ID != "c" {
		t.Error("EDF must pick the earliest deadline")
	}
	// Deadline-less requests go last under EDF.
	q := fill(EDF)
	q.take(q.pick()) // c
	if got := q.waiting[q.pick()].ID; got != "b" {
		t.Errorf("EDF picked %q after c, want b (deadline-less last)", got)
	}
	if q := fill(SJF); q.waiting[q.pick()].ID != "b" {
		t.Error("SJF must pick the shortest prompt (earliest arrival on ties)")
	}
	// Shed dispatches FIFO order; dropLate purges only expired deadlines.
	q = fill(Shed)
	var dropped []string
	q.dropLate(50, func(tr engine.TimedRequest) { dropped = append(dropped, tr.ID) })
	if len(dropped) != 1 || dropped[0] != "c" {
		t.Errorf("dropLate(50) removed %v, want [c]", dropped)
	}
	if q.len() != 3 || q.waiting[q.pick()].ID != "a" {
		t.Errorf("shed queue after purge: len %d, head %q", q.len(), q.waiting[q.pick()].ID)
	}
}

// blockedStream is one long deadline-less request that hogs the sole
// replica, with two short requests queued behind it at the ingress.
func blockedStream(second, third engine.TimedRequest) []engine.TimedRequest {
	long := timed("long", 0, 512, 200, 0)
	return []engine.TimedRequest{long, second, third}
}

// completionOrder runs a capacity-1 single replica so dispatch order is
// completion order, and returns the request IDs in that order.
func completionOrder(t *testing.T, admission Admission, reqs []engine.TimedRequest) []string {
	t.Helper()
	cfg := homogeneousFleet(1, RoundRobin)
	cfg.Replicas[0].Capacity = 1
	cfg.Replicas[0].MaxBatch = 1
	cfg.Admission = admission
	m, err := Serve(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, rm := range m.Replicas {
		for _, r := range rm.Requests {
			ids = append(ids, r.ID)
		}
	}
	return ids
}

func TestEDFAdmissionReordersBlockedQueue(t *testing.T) {
	reqs := blockedStream(
		timed("loose", 0.1, 64, 20, 200),
		timed("tight", 0.2, 64, 20, 60),
	)
	fifo := completionOrder(t, FIFO, reqs)
	edf := completionOrder(t, EDF, reqs)
	if fifo[1] != "loose" || fifo[2] != "tight" {
		t.Errorf("FIFO order %v, want arrival order", fifo)
	}
	if edf[1] != "tight" || edf[2] != "loose" {
		t.Errorf("EDF order %v, want the tight deadline overtaking", edf)
	}
}

func TestSJFAdmissionReordersBlockedQueue(t *testing.T) {
	reqs := blockedStream(
		timed("big", 0.1, 400, 20, 0),
		timed("small", 0.2, 32, 20, 0),
	)
	fifo := completionOrder(t, FIFO, reqs)
	sjf := completionOrder(t, SJF, reqs)
	if fifo[1] != "big" || fifo[2] != "small" {
		t.Errorf("FIFO order %v, want arrival order", fifo)
	}
	if sjf[1] != "small" || sjf[2] != "big" {
		t.Errorf("SJF order %v, want the short prompt overtaking", sjf)
	}
}

// overloadedStream offers far more deadline-bearing work than one
// replica can serve in time.
func overloadedStream(t *testing.T) []engine.TimedRequest {
	t.Helper()
	profile := workload.InteractiveAssistant(4, 60)
	profile.DeadlineSlack = 2
	profile.DeadlineSlackMax = 6
	reqs, err := workload.Generate(profile, 11)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func TestShedBeatsBlockingFIFOUnderOverload(t *testing.T) {
	reqs := overloadedStream(t)
	run := func(a Admission) Metrics {
		cfg := homogeneousFleet(1, RoundRobin)
		cfg.Admission = a
		m, err := Serve(cfg, reqs)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if m.Served+m.Dropped != len(reqs) {
			t.Fatalf("%s: served %d + dropped %d != offered %d", a, m.Served, m.Dropped, len(reqs))
		}
		return m
	}
	fifo := run(FIFO)
	shed := run(Shed)
	if fifo.Dropped != 0 || fifo.Shed != 0 {
		t.Errorf("blocking FIFO must not drop: dropped %d shed %d", fifo.Dropped, fifo.Shed)
	}
	if shed.Shed == 0 || shed.Shed != shed.Dropped {
		t.Errorf("shed admission under overload: shed %d dropped %d, want equal and positive", shed.Shed, shed.Dropped)
	}
	if shed.HitRate() <= fifo.HitRate() {
		t.Errorf("shedding hit rate %.3f must beat blocking FIFO %.3f under overload",
			shed.HitRate(), fifo.HitRate())
	}
	if fifo.HitRate() >= 1 {
		t.Error("overload too mild: FIFO already meets every deadline, comparison is vacuous")
	}
}

// TestShedConsultsFastestReplica pins the certain-miss bound to the
// best available replica: a deadline only a fast replica can meet must
// not be shed just because a slow replica was also a candidate.
func TestShedConsultsFastestReplica(t *testing.T) {
	fast, _ := DeviceByName("orin")
	slow, _ := DeviceByName("orin-15w")
	cfg := Config{
		Replicas: []ReplicaConfig{
			{Spec: smallSpec(), Device: slow},
			{Spec: smallSpec(), Device: fast},
		},
		// Round-robin would offer the slow replica first; shedding must
		// still judge feasibility against the fast one.
		Policy:    RoundRobin,
		Admission: Shed,
	}
	probe, err := Serve(Config{Replicas: cfg.Replicas[1:], Policy: RoundRobin}, burst(1, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	fastService := probe.MeanLatency
	slowProbe, err := Serve(Config{Replicas: cfg.Replicas[:1], Policy: RoundRobin}, burst(1, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if slowProbe.MeanLatency <= 2*fastService {
		t.Skipf("devices not separated enough for the test: fast %.3f slow %.3f", fastService, slowProbe.MeanLatency)
	}
	// A deadline between the fast and slow service times: feasible on
	// the fast replica only.
	deadline := 1.5 * fastService
	reqs := []engine.TimedRequest{timed("edge", 0, 64, 40, deadline)}
	m, err := Serve(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Shed != 0 {
		t.Errorf("request feasible on the fast replica was shed (fast %.3fs, slow %.3fs, deadline %.3fs)",
			fastService, slowProbe.MeanLatency, deadline)
	}
}

func TestShedNeverDropsDeadlinelessWork(t *testing.T) {
	cfg := homogeneousFleet(1, RoundRobin)
	cfg.Admission = Shed
	m, err := Serve(cfg, burst(20, 0.05, 0)) // overload, but no deadlines
	if err != nil {
		t.Fatal(err)
	}
	if m.Dropped != 0 || m.Shed != 0 || m.Served != 20 {
		t.Errorf("deadline-less stream: served %d dropped %d shed %d, want 20/0/0", m.Served, m.Dropped, m.Shed)
	}
}

func TestNonFIFOAdmissionKeepsConservation(t *testing.T) {
	reqs := overloadedStream(t)
	for _, a := range Admissions() {
		cfg := homogeneousFleet(2, LeastQueue)
		cfg.Admission = a
		m, err := Serve(cfg, reqs)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if m.Served+m.Dropped != len(reqs) {
			t.Errorf("%s: served %d + dropped %d != offered %d", a, m.Served, m.Dropped, len(reqs))
		}
		if m.DeadlinesTotal != len(reqs) {
			t.Errorf("%s: deadline accounting %d, want every request counted", a, m.DeadlinesTotal)
		}
	}
}
