package model

import (
	"math"
	"testing"
	"testing/quick"
)

// Parameter counts must land on the public models' headline sizes. These
// anchor everything downstream: weight bytes drive decode TBT, which
// drives every latency figure.
func TestParamCountsMatchModelCards(t *testing.T) {
	cases := []struct {
		id      ID
		wantB   float64 // billions
		tolFrac float64
	}{
		{DSR1Qwen1_5B, 1.54, 0.03},
		{DSR1Llama8B, 8.03, 0.03},
		{DSR1Qwen14B, 14.77, 0.03},
		{Qwen25_7Bit, 7.62, 0.03},
		{Gemma7Bit, 8.54, 0.05},
	}
	for _, c := range cases {
		spec := MustLookup(c.id)
		got := float64(spec.Arch.ParamCount()) / 1e9
		if math.Abs(got-c.wantB)/c.wantB > c.tolFrac {
			t.Errorf("%s: params = %.3fB, want ~%.2fB", c.id, got, c.wantB)
		}
	}
}

func TestWeightBytesFP16(t *testing.T) {
	spec := MustLookup(DSR1Llama8B)
	gb := float64(spec.Arch.WeightBytes(FP16)) / 1e9
	if gb < 15.5 || gb > 16.6 {
		t.Errorf("8B FP16 weights = %.2f GB, want ~16.06", gb)
	}
}

func TestW4WeightsRoughlyQuarter(t *testing.T) {
	spec := MustLookup(DSR1Qwen14B)
	fp16 := float64(spec.Arch.WeightBytes(FP16))
	w4 := float64(spec.Arch.WeightBytes(W4A16))
	ratio := w4 / fp16
	if ratio < 0.25 || ratio > 0.30 {
		t.Errorf("W4/FP16 byte ratio = %.3f, want 0.25-0.30 (4-bit + scales)", ratio)
	}
}

func TestKVBytesPerToken(t *testing.T) {
	cases := []struct {
		id   ID
		want int64
	}{
		{DSR1Qwen1_5B, 2 * 28 * 2 * 128 * 2}, // 28,672
		{DSR1Llama8B, 2 * 32 * 8 * 128 * 2},  // 131,072
		{DSR1Qwen14B, 2 * 48 * 8 * 128 * 2},  // 196,608
		{Gemma7Bit, 2 * 28 * 16 * 256 * 2},   // MHA: 458,752
	}
	for _, c := range cases {
		got := MustLookup(c.id).Arch.KVBytesPerToken()
		if got != c.want {
			t.Errorf("%s: KV bytes/token = %d, want %d", c.id, got, c.want)
		}
	}
}

func TestPrefillFLOPsScale(t *testing.T) {
	a := MustLookup(DSR1Llama8B).Arch
	// Dense term should dominate at short lengths: ~2·P·n.
	n := 512
	got := a.PrefillFLOPs(n)
	lower := 2 * float64(a.ParamCount()) * float64(n) * 0.85
	upper := 2 * float64(a.ParamCount()) * float64(n) * 1.5
	if got < lower || got > upper {
		t.Errorf("PrefillFLOPs(512) = %.3g, want within [%.3g, %.3g]", got, lower, upper)
	}
	if a.PrefillFLOPs(0) != 0 {
		t.Error("PrefillFLOPs(0) must be 0")
	}
}

func TestPrefillFLOPsSuperlinear(t *testing.T) {
	a := MustLookup(DSR1Qwen14B).Arch
	// Quadratic attention term: doubling n must more than double FLOPs.
	f1 := a.PrefillFLOPs(2048)
	f2 := a.PrefillFLOPs(4096)
	if f2 <= 2*f1 {
		t.Errorf("prefill FLOPs not superlinear: f(4096)=%.3g vs 2·f(2048)=%.3g", f2, 2*f1)
	}
}

func TestDecodeFLOPsGrowWithContext(t *testing.T) {
	a := MustLookup(DSR1Llama8B).Arch
	if a.DecodeFLOPs(4096) <= a.DecodeFLOPs(1) {
		t.Error("decode FLOPs must grow with context")
	}
	// But the growth is linear and small relative to the dense term.
	growth := a.DecodeFLOPs(4096) / a.DecodeFLOPs(1)
	if growth > 1.2 {
		t.Errorf("decode FLOPs grew %vx over 4k context; attention term too large", growth)
	}
}

func TestDecodeReadBytesLinearInContext(t *testing.T) {
	a := MustLookup(DSR1Llama8B).Arch
	b0 := a.DecodeReadBytes(FP16, 0)
	b1 := a.DecodeReadBytes(FP16, 1000)
	if b1-b0 != 1000*a.KVBytesPerToken() {
		t.Error("context KV read not linear")
	}
	if b0 != a.WeightBytes(FP16) {
		t.Error("zero-context decode must read exactly the weights")
	}
}

func TestArchValidate(t *testing.T) {
	for _, s := range All() {
		if err := s.Arch.Validate(); err != nil {
			t.Errorf("%s: %v", s.ID, err)
		}
	}
	bad := archLlama31_8B
	bad.KVHeads = 7 // 32 % 7 != 0
	if err := bad.Validate(); err == nil {
		t.Error("expected GQA divisibility error")
	}
}

func TestDTypeStringsAndBytes(t *testing.T) {
	if FP16.String() != "fp16" || W4A16.String() != "w4a16" || FP32.String() != "fp32" {
		t.Error("DType String wrong")
	}
	if FP32.BytesPerParam() != 4 || FP16.BytesPerParam() != 2 {
		t.Error("BytesPerParam wrong")
	}
}

// Property: parameter count is monotone in every dimension.
func TestParamCountMonotoneProperty(t *testing.T) {
	base := archQwen25_1_5B
	f := func(extraLayers, extraHidden uint8) bool {
		a := base
		a.Layers += int(extraLayers % 16)
		b := a
		b.Hidden += 128 * int(extraHidden%8)
		return b.ParamCount() >= a.ParamCount() && a.ParamCount() >= base.ParamCount()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
