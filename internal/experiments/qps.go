package experiments

import (
	"edgereasoning/internal/engine"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/model"
	"edgereasoning/internal/workload"
)

func init() {
	register("qps", qpsSweep)
	register("sched", schedulerComparison)
}

// qpsSweep extends §III-B into an open-loop study: an interactive
// assistant workload (direct ~40-token responses on Qwen2.5-7B-it) under
// Poisson arrivals, sweeping offered load against p50/p99 latency and
// energy. Shows where the Orin saturates for interactive serving.
func qpsSweep(opts Options) ([]Table, error) {
	t := Table{
		ID: "qps", Title: "Open-loop QPS sweep: Qwen2.5-7B-it interactive workload (Poisson arrivals, batch<=8)",
		Columns: []string{"qps", "p50_s", "p95_s", "p99_s", "mean_s", "avg_power_w", "agg_tps"},
		Notes:   []string{"extends §III-B's 'costs benefit from batching and increased QPS' into a queueing study"},
	}
	n := 300
	if opts.Quick {
		n = 120
	}
	for _, qps := range []float64{0.05, 0.1, 0.2, 0.3, 0.4} {
		eng, err := engine.New(engine.Config{Spec: model.MustLookup(model.Qwen25_7Bit), Device: hw.JetsonAGXOrin64GB()})
		if err != nil {
			return nil, err
		}
		// The workload is generated lazily and pulled by the serve loop —
		// no materialized request slice anywhere in this driver.
		src, err := workload.NewSource(workload.InteractiveAssistant(qps, n), opts.Seed)
		if err != nil {
			return nil, err
		}
		m, err := eng.ServeSource(src, 8, engine.FCFS, engine.ServeOpts{SizeHint: n})
		if err != nil {
			return nil, err
		}
		aggTPS := float64(m.OutputTokens()) / m.WallTime
		t.AddRow(f2(qps), f2(m.P50Latency), f2(m.P95Latency), f2(m.P99Latency),
			f2(m.MeanLatency), f1(m.AvgPower()), f1(aggTPS))
	}
	return []Table{t}, nil
}

// schedulerComparison pits FCFS against EDF on a mixed-urgency workload
// (slacks drawn from [6, 60] s): at saturating load the deadline-aware
// discipline lifts the hit rate by prioritizing urgent requests.
func schedulerComparison(opts Options) ([]Table, error) {
	t := Table{
		ID: "sched", Title: "Scheduler comparison under mixed deadlines: FCFS vs EDF (Qwen2.5-7B-it, 6-60s slack)",
		Columns: []string{"policy", "qps", "hit_rate_pct", "p50_s", "p99_s"},
	}
	n := 200
	if opts.Quick {
		n = 100
	}
	for _, qps := range []float64{0.2, 0.4} {
		profile := workload.InteractiveAssistant(qps, n)
		profile.DeadlineSlack = 6
		profile.DeadlineSlackMax = 60
		for _, pol := range []engine.SchedPolicy{engine.FCFS, engine.EDF} {
			eng, err := engine.New(engine.Config{Spec: model.MustLookup(model.Qwen25_7Bit), Device: hw.JetsonAGXOrin64GB()})
			if err != nil {
				return nil, err
			}
			src, err := workload.NewSource(profile, opts.Seed)
			if err != nil {
				return nil, err
			}
			m, err := eng.ServeSource(src, 2, pol, engine.ServeOpts{SizeHint: n})
			if err != nil {
				return nil, err
			}
			t.AddRow(pol.String(), f2(qps), f1(m.HitRate()*100), f2(m.P50Latency), f2(m.P99Latency))
		}
	}
	return []Table{t}, nil
}
