// Benchmark harness: one testing.B target per table and figure in the
// paper (go test -bench=. -benchmem). Each bench regenerates the artifact
// through its experiment driver and reports the paper-relevant headline
// number as a custom metric, so `go test -bench` output doubles as a
// reproduction summary. Micro-benchmarks of the substrates follow at the
// end.
package edgereasoning

import (
	"context"
	"runtime"
	"strconv"
	"testing"
	"time"

	"edgereasoning/internal/control"
	"edgereasoning/internal/data"
	"edgereasoning/internal/experiments"
	"edgereasoning/internal/gpusim"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/kvcache"
	"edgereasoning/internal/llm"
	"edgereasoning/internal/model"
	"edgereasoning/internal/tts"
)

// runExperiment executes a driver once per bench iteration.
func runExperiment(b *testing.B, id string, quick bool) []experiments.Table {
	b.Helper()
	var tables []experiments.Table
	var err error
	opts := experiments.Options{Seed: 7, Quick: quick}
	for i := 0; i < b.N; i++ {
		tables, err = experiments.Run(id, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	return tables
}

// cell parses a numeric table cell inside a bench.
func cell(b *testing.B, t experiments.Table, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q: %v", row, col, t.Rows[row][col], err)
	}
	return v
}

func find(b *testing.B, tables []experiments.Table, id string) experiments.Table {
	b.Helper()
	for _, t := range tables {
		if t.ID == id {
			return t
		}
	}
	b.Fatalf("table %s missing", id)
	return experiments.Table{}
}

// ---------------------------------------------------------------- figures

func BenchmarkFig1Tradeoff(b *testing.B) {
	tables := runExperiment(b, "fig1", false)
	b.ReportMetric(float64(len(tables[0].Rows)), "configs")
}

func BenchmarkFig2PrefillLatency(b *testing.B) {
	tables := runExperiment(b, "fig2", false)
	t4 := find(b, tables, "table4")
	// Fitted 8B prefill constant c (paper: 0.104 s).
	b.ReportMetric(cell(b, t4, 1, 3), "fitted_c_8b_s")
}

func BenchmarkFig3DecodeLatency(b *testing.B) {
	tables := runExperiment(b, "fig3", false)
	t5 := find(b, tables, "table5")
	// Fitted TBT n for the three models (paper: 0.024 / ~0.096 / 0.187).
	b.ReportMetric(cell(b, t5, 0, 2), "tbt_1.5b_s")
	b.ReportMetric(cell(b, t5, 1, 2), "tbt_8b_s")
	b.ReportMetric(cell(b, t5, 2, 2), "tbt_14b_s")
}

func BenchmarkFig4PrefillPower(b *testing.B) {
	tables := runExperiment(b, "fig4", false)
	b.ReportMetric(float64(len(tables[0].Rows)), "points")
}

func BenchmarkFig5DecodePower(b *testing.B) {
	tables := runExperiment(b, "fig5", false)
	b.ReportMetric(float64(len(tables[0].Rows)), "points")
}

func BenchmarkFig6AccuracyVsTokens(b *testing.B) {
	tables := runExperiment(b, "fig6", false)
	b.ReportMetric(float64(len(tables)), "panels")
}

func BenchmarkFig7AccuracyVsLatency(b *testing.B) {
	tables := runExperiment(b, "fig7", false)
	b.ReportMetric(float64(len(tables)), "panels")
}

func BenchmarkFig8AccuracyVsCost(b *testing.B) {
	tables := runExperiment(b, "fig8", false)
	b.ReportMetric(float64(len(tables)), "panels")
}

func BenchmarkFig9ParallelAccuracy(b *testing.B) {
	tables := runExperiment(b, "fig9", true)
	t9a := find(b, tables, "fig9a")
	// First and last row of the 14B sweep at the 128 budget.
	var sf1, sf32 float64
	for i, row := range t9a.Rows {
		if row[0] == string(model.DSR1Qwen14B) {
			if row[1] == "1" {
				sf1 = cell(b, t9a, i, 2)
			}
			if row[1] == "32" {
				sf32 = cell(b, t9a, i, 2)
			}
		}
	}
	b.ReportMetric(sf32/sf1, "gain_14b_sf32_vs_sf1")
}

func BenchmarkFig10ParallelCost(b *testing.B) {
	tables := runExperiment(b, "fig10", false)
	b.ReportMetric(float64(len(tables[0].Rows)), "points")
}

// ----------------------------------------------------------------- tables

func BenchmarkTable2ModelComparison(b *testing.B) {
	tables := runExperiment(b, "table2", false)
	t2 := tables[0]
	// Reasoning-over-direct latency blowup (paper: >20x).
	var direct8b, reasoning8b float64
	for i, row := range t2.Rows {
		if row[0] == "Llama3.1-8B-it" {
			direct8b = cell(b, t2, i, 2)
		}
		if row[0] == "DSR1-Llama-8B" {
			reasoning8b = cell(b, t2, i, 2)
		}
	}
	b.ReportMetric(reasoning8b/direct8b, "reasoning_latency_blowup")
}

func BenchmarkTable3EdgeVsCloud(b *testing.B) {
	tables := runExperiment(b, "table3", false)
	t3 := tables[0]
	for i, row := range t3.Rows {
		if row[0] == "price_output_per_1M" {
			b.ReportMetric(cell(b, t3, i, 2), "edge_b1_usd_per_1M")
			b.ReportMetric(cell(b, t3, i, 3), "edge_b30_usd_per_1M")
		}
	}
}

func BenchmarkTable6LatencyMAPE(b *testing.B) {
	tables := runExperiment(b, "table6", false)
	t6 := tables[0]
	b.ReportMetric(cell(b, t6, 1, 3), "total_mape_8b_pct")
}

func BenchmarkTable7PrefillDecodeRatio(b *testing.B) {
	tables := runExperiment(b, "table7", true)
	t7 := tables[0]
	b.ReportMetric(cell(b, t7, 0, 5), "decode_share_1.5b_pct")
}

func BenchmarkTable8EnergyMAPE(b *testing.B) {
	tables := runExperiment(b, "table8", false)
	t8 := find(b, tables, "table8")
	b.ReportMetric(cell(b, t8, 1, 1), "total_mape_8b_pct")
}

func BenchmarkTable9Frameworks(b *testing.B) {
	tables := runExperiment(b, "table9", false)
	t9 := tables[0]
	b.ReportMetric(cell(b, t9, 2, 5), "vllm_speedup_vs_hft")
}

func BenchmarkTable10Table11Grid(b *testing.B) {
	t10 := runExperiment(b, "table10", false)
	t11 := runExperiment(b, "table11", false)
	b.ReportMetric(float64(len(t10[0].Rows)+len(t11[0].Rows)), "grid_rows")
}

func BenchmarkTable12MMLU15k(b *testing.B) {
	tables := runExperiment(b, "table12", true)
	b.ReportMetric(float64(len(tables[0].Rows)), "cells")
}

func BenchmarkNaturalPlan(b *testing.B) {
	tables := runExperiment(b, "naturalplan", true)
	b.ReportMetric(float64(len(tables)), "tables")
}

func BenchmarkCPUvsGPU(b *testing.B) {
	tables := runExperiment(b, "cpu", false)
	t17 := find(b, tables, "table17")
	b.ReportMetric(cell(b, t17, 0, 4), "gpu_speedup_8b_64tok")
}

func BenchmarkQuantizationSuite(b *testing.B) {
	tables := runExperiment(b, "quant", false)
	t19 := find(b, tables, "table19")
	// Decode speedup for the 14B (paper: ~3.1x).
	base := cell(b, t19, 4, 2)
	w4 := cell(b, t19, 5, 2)
	b.ReportMetric(base/w4, "decode_speedup_14b")
}

func BenchmarkParetoFrontier(b *testing.B) {
	tables := runExperiment(b, "pareto", false)
	front := find(b, tables, "pareto")
	b.ReportMetric(float64(len(front.Rows)), "frontier_size")
}

// ------------------------------------------------- extension ablations (§VI)

func BenchmarkAblationSpeculative(b *testing.B) {
	tables := runExperiment(b, "specdec", false)
	t := tables[0]
	best := 0.0
	for i := range t.Rows {
		if s := cell(b, t, i, 5); s > best {
			best = s
		}
	}
	b.ReportMetric(best, "best_speedup")
}

func BenchmarkAblationHostOffload(b *testing.B) {
	tables := runExperiment(b, "offload", false)
	t := tables[0]
	best := 0.0
	for i := range t.Rows {
		if r := cell(b, t, i, 3); r > best {
			best = r
		}
	}
	b.ReportMetric(best, "max_tbt_reduction_pct")
}

func BenchmarkAblationPowerModes(b *testing.B) {
	tables := runExperiment(b, "powermodes", false)
	b.ReportMetric(float64(len(tables[0].Rows)), "cells")
}

func BenchmarkAblationBatchSweep(b *testing.B) {
	tables := runExperiment(b, "batchsweep", false)
	t := tables[0]
	// Cost at the largest batch (the sweep's floor).
	b.ReportMetric(cell(b, t, len(t.Rows)-1, 5), "floor_usd_per_1M")
}

func BenchmarkSequentialSaturation(b *testing.B) {
	tables := runExperiment(b, "saturation", false)
	t := tables[0]
	b.ReportMetric(cell(b, t, 2, 1), "saturation_tokens_14b")
}

func BenchmarkRooflineAnalysis(b *testing.B) {
	tables := runExperiment(b, "roofline", false)
	t := find(b, tables, "roofline_machine")
	b.ReportMetric(cell(b, t, 2, 1), "machine_balance_flop_per_byte")
}

func BenchmarkQPSSweep(b *testing.B) {
	tables := runExperiment(b, "qps", true)
	t := tables[0]
	b.ReportMetric(cell(b, t, len(t.Rows)-1, 3), "p99_at_peak_qps_s")
}

func BenchmarkSchedulerComparison(b *testing.B) {
	tables := runExperiment(b, "sched", true)
	t := tables[0]
	// EDF hit rate at the higher load (last row).
	b.ReportMetric(cell(b, t, len(t.Rows)-1, 2), "edf_hit_rate_pct")
}

func BenchmarkReproductionScorecard(b *testing.B) {
	tables := runExperiment(b, "verify", true)
	t := tables[0]
	pass := 0
	for _, row := range t.Rows {
		if row[4] == "ok" {
			pass++
		}
	}
	b.ReportMetric(float64(pass), "anchors_passed")
	b.ReportMetric(float64(len(t.Rows)), "anchors_total")
}

// ------------------------------------------------------- suite scheduling

// benchSuite runs every registered driver through the concurrent runner
// at the given parallelism and fails on any driver error, so the
// sequential and parallel variants measure identical work.
func benchSuite(b *testing.B, parallelism int, quick bool) {
	b.Helper()
	ids := experiments.IDs()
	opts := experiments.Options{Seed: 7, Quick: quick}
	cfg := experiments.RunnerOptions{Parallelism: parallelism}
	for i := 0; i < b.N; i++ {
		results := experiments.RunAll(context.Background(), ids, opts, cfg)
		for _, r := range results {
			if r.Err != nil {
				b.Fatalf("%s: %v", r.ID, r.Err)
			}
		}
	}
}

// Full-suite wall clock, sequential vs. worker pool — the headline
// speedup of the concurrent runner on the complete paper reproduction.
func BenchmarkSuiteFullSequential(b *testing.B) { benchSuite(b, 1, false) }
func BenchmarkSuiteFullParallel(b *testing.B)   { benchSuite(b, runtime.GOMAXPROCS(0), false) }

// Quick-bank variants for fast comparisons on constrained machines.
func BenchmarkSuiteQuickSequential(b *testing.B) { benchSuite(b, 1, true) }
func BenchmarkSuiteQuickParallel(b *testing.B)   { benchSuite(b, runtime.GOMAXPROCS(0), true) }

// --------------------------------------------------- substrate micro-benches

func BenchmarkSimPrefill512(b *testing.B) {
	sim := gpusim.New(hw.JetsonAGXOrin64GB())
	a := model.MustLookup(model.DSR1Llama8B).Arch
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.Prefill(a, model.FP16, 512, 1)
	}
}

func BenchmarkSimDecodeRun(b *testing.B) {
	sim := gpusim.New(hw.JetsonAGXOrin64GB())
	a := model.MustLookup(model.DSR1Llama8B).Arch
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.DecodeRun(a, model.FP16, 512, 1024, 1)
	}
}

func BenchmarkKVCacheAppend(b *testing.B) {
	c, err := kvcache.New(kvcache.Config{BlockSize: 16, NumBlocks: 1 << 20, BytesPerToken: 131072})
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Allocate("s", 1); err != nil {
		b.Fatal(err)
	}
	// Recycle the sequence before the cache fills (1M-block cache holds
	// ~16.7M tokens; restart every 8M appends).
	const recycleAt = 8 << 20
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%recycleAt == recycleAt-1 {
			if err := c.Free("s"); err != nil {
				b.Fatal(err)
			}
			if err := c.Allocate("s", 1); err != nil {
				b.Fatal(err)
			}
		}
		if err := c.AppendToken("s"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTwinGenerate(b *testing.B) {
	bank := data.MustLoad(data.MMLURedux, 7)
	tw := llm.NewTwin(model.MustLookup(model.DSR1Qwen14B), bank, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tw.Generate(bank.Questions[i%bank.Size()], control.BasePolicy()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMajorityVote32(b *testing.B) {
	bank := data.MustLoad(data.MMLURedux, 7)
	tw := llm.NewTwin(model.MustLookup(model.DSR1Qwen14B), bank, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gens, err := tw.GenerateVotes(bank.Questions[i%bank.Size()], control.HardLimit(128), 32)
		if err != nil {
			b.Fatal(err)
		}
		tts.MajorityVote(gens)
	}
}

func BenchmarkDeployAndPlan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		platform := NewOrinPlatform()
		if _, _, err := platform.PlanRecipe(MMLURedux, 20*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}
