package hw

import (
	"testing"
	"testing/quick"
)

func TestOrinDescriptorValid(t *testing.T) {
	if err := JetsonAGXOrin64GB().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := OrinCortexA78AE().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOrinTableISpecs(t *testing.T) {
	d := JetsonAGXOrin64GB()
	if d.MemBandwidth != 204.8e9 {
		t.Errorf("bandwidth = %v, want 204.8 GB/s", d.MemBandwidth)
	}
	if d.MemCapacity != 64*GiB {
		t.Errorf("capacity = %v, want 64 GiB", d.MemCapacity)
	}
	if d.PeakFP32FLOPS != 5.3e12 {
		t.Errorf("FP32 = %v, want 5.3 TFLOPs", d.PeakFP32FLOPS)
	}
	if d.SMCount != 16 {
		t.Errorf("SMCount = %d, want 16", d.SMCount)
	}
}

func TestEffectiveRates(t *testing.T) {
	d := JetsonAGXOrin64GB()
	bw := d.EffectiveBandwidth()
	if bw < 150e9 || bw > 204.8e9 {
		t.Errorf("effective BW = %v out of plausible range", bw)
	}
	fl := d.EffectiveFP16FLOPS()
	if fl < 10e12 || fl > 30e12 {
		t.Errorf("effective FP16 = %v, want 10-30 TFLOPs (paper implies 15-19)", fl)
	}
}

func TestPadM(t *testing.T) {
	d := JetsonAGXOrin64GB()
	cases := []struct{ in, want int }{
		{0, 0}, {1, 128}, {127, 128}, {128, 128}, {129, 256}, {512, 512}, {513, 640},
	}
	for _, c := range cases {
		if got := d.PadM(c.in); got != c.want {
			t.Errorf("PadM(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestPadMIdentityOnCPU(t *testing.T) {
	c := OrinCortexA78AE()
	for _, m := range []int{1, 7, 100, 129} {
		if got := c.PadM(m); got != m {
			t.Errorf("CPU PadM(%d) = %d, want identity", m, got)
		}
	}
}

func TestPadMProperties(t *testing.T) {
	d := JetsonAGXOrin64GB()
	f := func(m uint16) bool {
		p := d.PadM(int(m))
		if m == 0 {
			return p == 0
		}
		return p >= int(m) && p%d.TileM == 0 && p-int(m) < d.TileM
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesBadDescriptors(t *testing.T) {
	base := JetsonAGXOrin64GB()
	mutations := []func(*Device){
		func(d *Device) { d.Name = "" },
		func(d *Device) { d.PeakFP16FLOPS = 0 },
		func(d *Device) { d.MemBandwidth = -1 },
		func(d *Device) { d.MemEff = 1.5 },
		func(d *Device) { d.ComputeEff = 0 },
		func(d *Device) { d.TileM = 0 },
		func(d *Device) { d.SMCount = 0 },
		func(d *Device) { d.MaxPower = d.IdlePower },
		func(d *Device) { d.PowerStates = 0 },
	}
	for i, mut := range mutations {
		d := *base
		mut(&d)
		if err := d.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestPowerModes(t *testing.T) {
	modes := OrinPowerModes()
	if len(modes) != 4 {
		t.Fatalf("want 4 power modes, got %d", len(modes))
	}
	if modes[3].Name != "MAXN" || modes[3].FreqScale != 1.0 {
		t.Errorf("MAXN mode wrong: %+v", modes[3])
	}
}

func TestApplyPowerModeDerates(t *testing.T) {
	d := JetsonAGXOrin64GB()
	derated := ApplyPowerMode(d, PowerMode{Name: "15W", CapWatts: 15, FreqScale: 0.35})
	if derated.PeakFP16FLOPS >= d.PeakFP16FLOPS {
		t.Error("15W mode should derate compute")
	}
	if derated.MaxPower != 15 {
		t.Errorf("MaxPower = %v, want 15", derated.MaxPower)
	}
	if d.PeakFP16FLOPS != 68.75e12 {
		t.Error("ApplyPowerMode must not mutate the source device")
	}
}

func TestH100Descriptor(t *testing.T) {
	h := H100SXM()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	orin := JetsonAGXOrin64GB()
	if h.EffectiveBandwidth() < 10*orin.EffectiveBandwidth() {
		t.Error("H100 bandwidth should dwarf Orin's by >10x")
	}
	if h.EffectiveFP16FLOPS() < 10*orin.EffectiveFP16FLOPS() {
		t.Error("H100 compute should dwarf Orin's by >10x")
	}
}

func TestApplyPowerModeMAXNIsIdentity(t *testing.T) {
	d := JetsonAGXOrin64GB()
	maxn := ApplyPowerMode(d, OrinPowerModes()[3])
	if maxn.PeakFP16FLOPS != d.PeakFP16FLOPS || maxn.MaxPower != d.MaxPower {
		t.Error("MAXN should not derate")
	}
}
