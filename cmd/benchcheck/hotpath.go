package main

import (
	"fmt"
	"io"
	"sort"

	"edgereasoning/internal/lint"
)

// hotpathWarnings cross-references the tree's //edgereasoning:hotpath
// annotations against the gated benchmark targets: an annotated
// function whose bench= argument names a target absent from
// BENCH_serve.json — or that carries no bench= at all — has a static
// allocation contract with no measurement behind it. Warnings only:
// the static analyzer (cmd/simlint) still enforces the construct-level
// contract, so a missing gate degrades coverage rather than breaking
// the build.
func hotpathWarnings(root string, targets map[string]Measurement) ([]string, error) {
	sites, err := lint.ScanHotPaths(root)
	if err != nil {
		return nil, err
	}
	var warns []string
	for _, s := range sites {
		switch {
		case s.Bench == "":
			warns = append(warns, fmt.Sprintf(
				"WARN hotpath %s (%s): no bench= argument; annotate with the gating benchmark target", s.Func, s.Pos))
		default:
			if _, ok := targets[s.Bench]; !ok {
				warns = append(warns, fmt.Sprintf(
					"WARN hotpath %s (%s): benchmark %s is not a gated target in the baseline", s.Func, s.Pos, s.Bench))
			}
		}
	}
	sort.Strings(warns)
	return warns, nil
}

// reportHotpaths prints the warnings, returning how many there were.
func reportHotpaths(root string, targets map[string]Measurement, w io.Writer) (int, error) {
	warns, err := hotpathWarnings(root, targets)
	if err != nil {
		return 0, err
	}
	for _, line := range warns {
		fmt.Fprintln(w, line)
	}
	return len(warns), nil
}
