// Package capacity finds the saturation knee of a serving configuration:
// the highest offered load (QPS) at which a service-level objective —
// a p99 latency bound, a deadline hit-rate floor — still holds. The
// search is a bracketing binary search over offered QPS against a
// caller-supplied probe, so it is agnostic to what actually serves the
// load (a single engine, a fixed fleet, an elastic pool).
//
// The knee is the capacity-planning number: offered load below it meets
// the SLO with headroom, load above it degrades past the objective. The
// probe is assumed monotone — once violated at some QPS, the SLO stays
// violated at every higher QPS — which holds for queueing systems whose
// latency grows with utilization. Simulation noise near the knee makes
// the assumption approximate; Resolution bounds how finely the search
// trusts it.
package capacity

import (
	"errors"
	"fmt"
)

// ErrSLONeverMet reports that the objective is violated even at the
// minimum probed load: the configuration cannot meet the SLO at any
// offered QPS, so no knee exists. (The fixed cost of serving a single
// request — prefill plus full decode — already exceeds the objective.)
var ErrSLONeverMet = errors.New("capacity: SLO violated even at minimum offered load")

// ErrSLOAlwaysMet reports that the objective holds even at the maximum
// probed load: the search bracket never contains the knee. Raise MaxQPS
// (or distrust the probe) rather than reading the bracket top as
// capacity.
var ErrSLOAlwaysMet = errors.New("capacity: SLO still met at maximum offered load")

// Probe measures one operating point: offer the load and report the
// observed metric value and whether the SLO held. Probes must be
// deterministic for a given QPS — the search may rely on remembering
// rather than re-measuring a point.
type Probe func(qps float64) (Sample, error)

// Sample is one probe observation.
type Sample struct {
	// Value is the measured metric at this load (p99 seconds, hit rate).
	Value float64
	// Met reports whether the SLO held.
	Met bool
}

// Point is a probed operating point, for reporting the search trajectory.
type Point struct {
	QPS float64
	Sample
}

// Options bounds the knee search.
type Options struct {
	// MinQPS and MaxQPS bracket the search. Defaults: 0.25 and 1024.
	MinQPS float64
	MaxQPS float64
	// Resolution stops the bisection when the bracket is within this
	// relative width (hi-lo <= Resolution*lo). Default 0.05.
	Resolution float64
	// MaxProbes bounds total probe invocations across bracketing and
	// bisection; the search returns its best bracket when exhausted.
	// Default 32.
	MaxProbes int
}

func (o Options) withDefaults() Options {
	if o.MinQPS <= 0 {
		o.MinQPS = 0.25
	}
	if o.MaxQPS <= 0 {
		o.MaxQPS = 1024
	}
	if o.Resolution <= 0 {
		o.Resolution = 0.05
	}
	if o.MaxProbes <= 0 {
		o.MaxProbes = 32
	}
	return o
}

// Knee is the located saturation point.
type Knee struct {
	// QPS is the highest probed load meeting the SLO.
	QPS float64
	// Value is the metric observed at QPS.
	Value float64
	// ViolatedQPS is the lowest probed load violating the SLO — the top
	// of the final bracket; the true knee lies in (QPS, ViolatedQPS).
	ViolatedQPS float64
	// Probes is the full search trajectory in probe order.
	Probes []Point
}

// FindKnee locates the saturation knee of probe within opts' bracket.
// It returns ErrSLONeverMet when the SLO is violated at MinQPS and
// ErrSLOAlwaysMet when it still holds at MaxQPS; both carry the probe
// trajectory via *SearchError for diagnosis.
func FindKnee(probe Probe, opts Options) (Knee, error) {
	o := opts.withDefaults()
	if o.MaxQPS < o.MinQPS {
		return Knee{}, fmt.Errorf("capacity: MaxQPS %.3g below MinQPS %.3g", o.MaxQPS, o.MinQPS)
	}
	var trail []Point
	budget := o.MaxProbes
	measure := func(qps float64) (Sample, error) {
		budget--
		s, err := probe(qps)
		if err != nil {
			return s, fmt.Errorf("capacity: probe at %.3g QPS: %w", qps, err)
		}
		trail = append(trail, Point{QPS: qps, Sample: s})
		return s, nil
	}

	// Floor check: the SLO must hold somewhere for a knee to exist.
	lo := o.MinQPS
	loSample, err := measure(lo)
	if err != nil {
		return Knee{}, err
	}
	if !loSample.Met {
		return Knee{}, &SearchError{Err: ErrSLONeverMet, Probes: trail}
	}

	// Bracket: double the load until the SLO breaks (or the ceiling or
	// probe budget is hit). Every passing point advances the floor, so
	// the bisection below starts from the tightest known bracket.
	hi := lo
	bracketed := false
	for budget > 0 {
		next := hi * 2
		if next > o.MaxQPS {
			next = o.MaxQPS
		}
		if next <= hi { // ceiling reached without a violation
			break
		}
		s, err := measure(next)
		if err != nil {
			return Knee{}, err
		}
		if !s.Met {
			hi, bracketed = next, true
			break
		}
		lo, loSample = next, s
		hi = next
	}
	if !bracketed {
		return Knee{}, &SearchError{Err: ErrSLOAlwaysMet, Probes: trail}
	}

	// Bisect the (met, violated) bracket down to Resolution.
	for budget > 0 && hi-lo > o.Resolution*lo {
		mid := (lo + hi) / 2
		s, err := measure(mid)
		if err != nil {
			return Knee{}, err
		}
		if s.Met {
			lo, loSample = mid, s
		} else {
			hi = mid
		}
	}
	return Knee{QPS: lo, Value: loSample.Value, ViolatedQPS: hi, Probes: trail}, nil
}

// SearchError wraps a terminal search outcome with the probe trajectory
// that led to it. errors.Is matches the wrapped sentinel.
type SearchError struct {
	Err    error
	Probes []Point
}

func (e *SearchError) Error() string { return e.Err.Error() }
func (e *SearchError) Unwrap() error { return e.Err }
