// Agent loop: session-grade serving in miniature. An on-device agent
// (DSR1-Qwen-1.5B on an AGX Orin) runs multi-turn think/act loops whose
// prompts are the session's full growing history. Served the way the
// paper models single-turn traffic, every turn re-prefills that history
// from scratch; with the cross-request prefix KV cache, each turn
// matches its history against retained blocks and only prefills the new
// suffix. The walkthrough prints the per-turn anatomy of one session,
// the warm-vs-cold comparison, and the fleet view where session-affinity
// routing keeps turns next to their KV.
package main

import (
	"fmt"
	"log"

	"edgereasoning/internal/engine"
	"edgereasoning/internal/fleet"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/model"
	"edgereasoning/internal/session"
	"edgereasoning/internal/stats"
)

func main() {
	const seed = 7
	profile := session.AgentLoop(8, 4, 2)
	reqs, err := session.Generate(profile, seed)
	if err != nil {
		log.Fatal(err)
	}
	spec := model.MustLookup(model.DSR1Qwen1_5B)

	fmt.Printf("Workload: %d sessions x %d turns (think/act, branch of %d every %d turns), %d requests\n",
		profile.Sessions, profile.Turns, profile.Branch, profile.BranchEvery, len(reqs))
	fmt.Printf("Shared system prompt: %d tokens; prompts grow with the session history\n\n", profile.SystemPromptTokens)

	serve := func(prefix bool) engine.ServeMetrics {
		e, err := engine.New(engine.Config{Spec: spec, Device: hw.JetsonAGXOrin64GB(), PrefixCache: prefix})
		if err != nil {
			log.Fatal(err)
		}
		m, err := e.Serve(reqs, 8, engine.FCFS)
		if err != nil {
			log.Fatal(err)
		}
		return m
	}
	cold := serve(false)
	warm := serve(true)

	// Anatomy of one session under the prefix cache: what each turn
	// prefilled versus reused.
	fmt.Println("Session s0 under the prefix cache (completion order):")
	fmt.Println("  request    prompt  reused  prefilled  ttft(s)")
	for _, r := range warm.Requests {
		if len(r.ID) < 2 || r.ID[:2] != "s0" {
			continue
		}
		fmt.Printf("  %-9s  %6d  %6d  %9d  %7.2f\n",
			r.ID, r.PromptTokens, r.CachedPromptTokens, r.PromptTokens-r.CachedPromptTokens,
			r.QueueTime+r.PrefillTime)
	}

	ttft := func(m engine.ServeMetrics) (p50, p99 float64) {
		xs := make([]float64, 0, len(m.Requests))
		for _, r := range m.Requests {
			xs = append(xs, r.QueueTime+r.PrefillTime)
		}
		p := stats.Percentiles(xs, 50, 99)
		return p[0], p[1]
	}
	c50, c99 := ttft(cold)
	w50, w99 := ttft(warm)
	fmt.Println("\nSingle Orin, cold prefill vs prefix cache:")
	fmt.Println("  mode          p50-ttft  p99-ttft  p99-lat  saved-prefill  hit-rate")
	fmt.Printf("  cold-prefill  %7.2fs  %7.2fs  %6.2fs  %10dtok  %7.1f%%\n",
		c50, c99, cold.P99Latency, cold.SavedPrefillTokens, 0.0)
	fmt.Printf("  warm-prefix   %7.2fs  %7.2fs  %6.2fs  %10dtok  %7.1f%%\n",
		w50, w99, warm.P99Latency, warm.SavedPrefillTokens, warm.PrefixHitRate()*100)

	fmt.Println("\nFleet of 3 Orin power modes, prefix caches on:")
	fmt.Println("  policy            hit-rate  saved-prefill  p99(s)")
	for _, p := range []fleet.Policy{fleet.RoundRobin, fleet.LeastQueue, fleet.SessionAffinity} {
		cfg := fleet.Config{
			Replicas:    fleet.HeterogeneousReplicas(3, fleet.DefaultDevices(), spec),
			Policy:      p,
			PrefixCache: true,
		}
		m, err := fleet.Serve(cfg, reqs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s  %7.1f%%  %10dtok  %6.2f\n",
			p.String(), m.PrefixHitRate()*100, m.SavedPrefillTokens, m.P99Latency)
	}
	fmt.Println("\nSession-affinity keeps a session's turns on the replica that already")
	fmt.Println("holds its history, so reuse survives fleet-scale routing.")
}
