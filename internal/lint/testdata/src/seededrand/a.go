// Package seededrand is the fixture for the seededrand analyzer: global
// math/rand draws and RNG construction outside the provider package are
// rejected.
package seededrand

import (
	"math/rand"
	randv2 "math/rand/v2"
)

func global() int {
	return rand.Intn(10) // want "rand.Intn draws from the global math/rand source"
}

func globalV2() float64 {
	return randv2.Float64() // want "rand.Float64 draws from the global math/rand source"
}

func shuffle(xs []int) {
	randv2.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "rand.Shuffle draws from the global math/rand source"
}

func construct(seed uint64) {
	_ = randv2.New(randv2.NewPCG(seed, 1)) // want "rand.New constructs an RNG outside" "rand.NewPCG constructs an RNG outside"
}

func allowedLine(seed int64) {
	_ = rand.New(rand.NewSource(seed)) //edgereasoning:allow seededrand -- fixture escape hatch
}
