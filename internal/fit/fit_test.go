package fit

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPolyFitExactQuadratic(t *testing.T) {
	// y = 2x² + 3x + 4
	x := []float64{-2, -1, 0, 1, 2, 3}
	y := make([]float64, len(x))
	for i, xv := range x {
		y[i] = 2*xv*xv + 3*xv + 4
	}
	p, err := PolyFit(x, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 3, 2}
	for i := range want {
		if !approx(p.Coeffs[i], want[i], 1e-9) {
			t.Errorf("coeff[%d] = %v, want %v", i, p.Coeffs[i], want[i])
		}
	}
}

func TestPolyFitUnderdetermined(t *testing.T) {
	_, err := PolyFit([]float64{1, 2}, []float64{1, 2}, 2)
	if err == nil {
		t.Error("expected error with fewer samples than coefficients")
	}
}

func TestPolyFitMismatched(t *testing.T) {
	if _, err := PolyFit([]float64{1, 2, 3}, []float64{1}, 1); err == nil {
		t.Error("expected error on x/y mismatch")
	}
}

func TestPolyEvalHorner(t *testing.T) {
	p := Poly{Coeffs: []float64{1, 2, 3}} // 3x²+2x+1
	if got := p.Eval(2); got != 17 {
		t.Errorf("Eval(2) = %v, want 17", got)
	}
}

func TestPolyString(t *testing.T) {
	p := Poly{Coeffs: []float64{0.046, 2.31e-6, 1.56e-7}}
	s := p.String()
	if s == "" || s == "0" {
		t.Errorf("unexpected String: %q", s)
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 2x+1
	m, n, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(m, 2, 1e-9) || !approx(n, 1, 1e-9) {
		t.Errorf("m,n = %v,%v want 2,1", m, n)
	}
}

func TestLogLinearFitRecovers(t *testing.T) {
	// y = 8.8·ln(x) + 2.7 (the paper's 8B decode power fit, Table XXI)
	x := []float64{64, 128, 256, 512, 1024, 2048}
	y := make([]float64, len(x))
	for i, xv := range x {
		y[i] = 8.806744*math.Log(xv) + 2.701709
	}
	ll, err := LogLinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(ll.Alpha, 8.806744, 1e-6) || !approx(ll.Beta, 2.701709, 1e-5) {
		t.Errorf("got α=%v β=%v", ll.Alpha, ll.Beta)
	}
}

func TestLogLinearFitRejectsNonPositiveX(t *testing.T) {
	if _, err := LogLinearFit([]float64{0, 1, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("expected error for x<=0")
	}
}

func TestExpDecayFitRecovers(t *testing.T) {
	// Paper Table XX 1.5B prefill energy: A=0.07308, λ=0.03195, C=0.000923
	truth := ExpDecay{A: 0.07308, Lambda: 0.03195, C: 0.000923}
	var x, y []float64
	for i := 8; i <= 512; i += 16 {
		x = append(x, float64(i))
		y = append(y, truth.Eval(float64(i)))
	}
	got, err := ExpDecayFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got.Lambda, truth.Lambda, truth.Lambda*0.05) {
		t.Errorf("lambda = %v, want ~%v", got.Lambda, truth.Lambda)
	}
	if !approx(got.A, truth.A, truth.A*0.05) {
		t.Errorf("A = %v, want ~%v", got.A, truth.A)
	}
	// MAPE of reconstruction should be tiny.
	for i := range x {
		if !approx(got.Eval(x[i]), y[i], math.Abs(y[i])*0.02+1e-9) {
			t.Fatalf("reconstruction off at x=%v: %v vs %v", x[i], got.Eval(x[i]), y[i])
		}
	}
}

func TestExpDecayFitTooFewSamples(t *testing.T) {
	if _, err := ExpDecayFit([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("expected error with <3 samples")
	}
}

func TestPiecewiseConstLogFitRecovers(t *testing.T) {
	// Eqn 6 shape: 5.9 W below 64, then y = y·ln(O) + z above.
	truth := Piecewise{
		Breakpoint: 64,
		Low:        Constant{Value: 5.9},
		High:       LogLinear{Alpha: 3.0, Beta: -6.0},
	}
	var x, y []float64
	for _, xv := range []float64{4, 8, 16, 32, 48, 64, 96, 128, 256, 512, 1024, 2048} {
		x = append(x, xv)
		y = append(y, truth.Eval(xv))
	}
	got, err := PiecewiseConstLogFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !approx(got.Eval(x[i]), y[i], math.Abs(y[i])*0.05+0.3) {
			t.Errorf("x=%v: got %v want %v", x[i], got.Eval(x[i]), y[i])
		}
	}
}

func TestPiecewiseExpLogFitRecovers(t *testing.T) {
	// Table XX 8B shape: exp decay then log.
	truth := Piecewise{
		Breakpoint: 640,
		Low:        ExpDecay{A: 0.15871, Lambda: 0.03240, C: 0.00553},
		High:       LogLinear{Alpha: 0.01233, Beta: -0.07349},
	}
	var x, y []float64
	for _, xv := range []float64{16, 32, 64, 96, 128, 192, 256, 384, 512, 640, 768, 1024, 1536, 2048, 3072, 4096} {
		x = append(x, xv)
		y = append(y, truth.Eval(xv))
	}
	got, err := PiecewiseExpLogFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		want := y[i]
		if !approx(got.Eval(x[i]), want, math.Abs(want)*0.15+0.002) {
			t.Errorf("x=%v: got %v want %v", x[i], got.Eval(x[i]), want)
		}
	}
}

func TestSolveLinearKnownSystem(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := solveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x[0], 1, 1e-9) || !approx(x[1], 3, 1e-9) {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := solveLinear(a, b); err == nil {
		t.Error("expected singular error")
	}
}

// Property: PolyFit round-trips random quadratics through noiseless samples.
func TestPolyFitRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 1))
		a := r.Float64()*4 - 2
		b := r.Float64()*4 - 2
		c := r.Float64()*4 - 2
		var x, y []float64
		for i := 0; i < 12; i++ {
			xv := float64(i) * 0.7
			x = append(x, xv)
			y = append(y, a*xv*xv+b*xv+c)
		}
		p, err := PolyFit(x, y, 2)
		if err != nil {
			return false
		}
		return approx(p.Coeffs[2], a, 1e-6) && approx(p.Coeffs[1], b, 1e-6) && approx(p.Coeffs[0], c, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: piecewise Eval picks the correct branch at and around the
// breakpoint.
func TestPiecewiseBranchSelection(t *testing.T) {
	p := Piecewise{Breakpoint: 10, Low: Constant{Value: 1}, High: Constant{Value: 2}}
	if p.Eval(10) != 1 {
		t.Error("x == breakpoint must use low branch")
	}
	if p.Eval(10.01) != 2 {
		t.Error("x > breakpoint must use high branch")
	}
}
