// Command tracecheck validates telemetry artifacts emitted by the
// `edgereasoning trace` subcommand, for use as a CI gate:
//
//	tracecheck -trace trace.json                        # Chrome trace JSON only
//	tracecheck -trace trace.json -metrics metrics.prom  # plus Prometheus snapshot
//
// The trace check parses the Chrome trace-event JSON and enforces the
// structural invariants Perfetto relies on: metadata naming for every
// referenced pid/tid, non-negative monotonic-compatible timestamps,
// known phase types, and every flow-start ("s") event paired with a
// matching flow-finish ("f") by id. The metrics check enforces
// Prometheus text-format 0.0.4: HELP/TYPE headers before samples,
// counter samples ending in _total, histogram bucket/sum/count
// consistency, and parseable values. Exits non-zero with a diagnostic
// on the first violation.
package main

import (
	"flag"
	"fmt"
	"os"

	"edgereasoning/internal/telemetry"
)

func main() {
	tracePath := flag.String("trace", "", "Chrome trace-event JSON file to validate")
	metricsPath := flag.String("metrics", "", "Prometheus text-format snapshot to validate (optional)")
	flag.Parse()
	if *tracePath == "" && *metricsPath == "" {
		fmt.Fprintln(os.Stderr, "tracecheck: nothing to do (need -trace and/or -metrics)")
		os.Exit(2)
	}
	if *tracePath != "" {
		data, err := os.ReadFile(*tracePath)
		if err != nil {
			fatal(err)
		}
		if err := telemetry.ValidateChromeTrace(data); err != nil {
			fatal(fmt.Errorf("%s: %w", *tracePath, err))
		}
		fmt.Printf("tracecheck: %s ok (%d bytes)\n", *tracePath, len(data))
	}
	if *metricsPath != "" {
		data, err := os.ReadFile(*metricsPath)
		if err != nil {
			fatal(err)
		}
		if err := telemetry.ValidatePrometheus(data); err != nil {
			fatal(fmt.Errorf("%s: %w", *metricsPath, err))
		}
		fmt.Printf("tracecheck: %s ok (%d bytes)\n", *metricsPath, len(data))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracecheck:", err)
	os.Exit(1)
}
