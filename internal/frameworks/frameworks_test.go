package frameworks

import (
	"testing"

	"edgereasoning/internal/engine"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/model"
)

func runWith(t *testing.T, o engine.Overhead, in, out int) float64 {
	t.Helper()
	e, err := engine.New(engine.Config{
		Spec:      model.MustLookup(model.DSR1Llama8B),
		Device:    hw.JetsonAGXOrin64GB(),
		Framework: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.Generate(engine.Request{ID: "q", PromptTokens: in, OutputTokens: out})
	if err != nil {
		t.Fatal(err)
	}
	return m.TotalTime()
}

// Table IX: vLLM is 1.11-1.13x faster than HFT on the DSR1-Llama-8B
// 128-output workloads; TRT-LLM lands within a few percent of vLLM.
func TestTableIXSpeedups(t *testing.T) {
	for _, in := range []int{16, 64, 128} {
		hft := runWith(t, HFTransformers(), in, 128)
		vllm := runWith(t, VLLM(), in, 128)
		trt := runWith(t, TRTLLM(), in, 128)
		speedup := hft / vllm
		if speedup < 1.08 || speedup > 1.18 {
			t.Errorf("in=%d: HFT/vLLM = %.3f, paper reports 1.11-1.13", in, speedup)
		}
		rel := vllm / trt
		if rel < 0.95 || rel > 1.08 {
			t.Errorf("in=%d: vLLM/TRT = %.3f, paper reports ~1.0", in, rel)
		}
	}
}

// Table IX absolute scale: ~12.7s for vLLM on the 128-output workloads.
func TestTableIXAbsoluteScale(t *testing.T) {
	vllm := runWith(t, VLLM(), 64, 128)
	if vllm < 9 || vllm > 18 {
		t.Errorf("vLLM 64/128 latency = %.2fs, paper measures 12.75s", vllm)
	}
}

func TestProfilesOrder(t *testing.T) {
	ps := Profiles()
	if len(ps) != 3 {
		t.Fatalf("want 3 profiles, got %d", len(ps))
	}
	if ps[0].Name != "HFT" || ps[1].Name != "vLLM" || ps[2].Name != "TRT-LLM" {
		t.Errorf("profile order wrong: %v %v %v", ps[0].Name, ps[1].Name, ps[2].Name)
	}
}
