package fit

import (
	"math"
	"math/rand/v2"
	"testing"
)

// Fits must tolerate measurement noise at the level real power/latency
// sweeps carry (a few percent), since the drivers feed them simulated
// measurements with deterministic jitter.

func TestPolyFitWithNoise(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 22))
	truth := Poly{Coeffs: []float64{0.104, 2.9e-4, 6.65e-7}} // paper 8B prefill
	var x, y []float64
	for i := 64; i <= 4096; i += 64 {
		xv := float64(i)
		noise := 1 + 0.03*(2*r.Float64()-1)
		x = append(x, xv)
		y = append(y, truth.Eval(xv)*noise)
	}
	got, err := PolyFit(x, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Predictions (not coefficients) are the robust comparison under
	// noise. Unweighted least squares privileges the large end of the
	// sweep, so small-x predictions get an absolute-slack allowance.
	for _, xv := range []float64{128, 1024, 4096} {
		want := truth.Eval(xv)
		if math.Abs(got.Eval(xv)-want) > want*0.05+0.03 {
			t.Errorf("at x=%v: fit %.4f vs truth %.4f", xv, got.Eval(xv), want)
		}
	}
}

func TestLogLinearFitWithNoise(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 6))
	truth := LogLinear{Alpha: 8.8, Beta: 2.7}
	var x, y []float64
	for _, xv := range []float64{64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048} {
		x = append(x, xv)
		y = append(y, truth.Eval(xv)*(1+0.04*(2*r.Float64()-1)))
	}
	got, err := LogLinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for _, xv := range []float64{100, 1000, 2000} {
		want := truth.Eval(xv)
		if math.Abs(got.Eval(xv)-want)/want > 0.08 {
			t.Errorf("at x=%v: fit %.3f vs truth %.3f", xv, got.Eval(xv), want)
		}
	}
}

func TestExpDecayFitWithNoise(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 8))
	truth := ExpDecay{A: 0.159, Lambda: 0.0324, C: 0.0055}
	var x, y []float64
	for i := 8; i <= 640; i += 24 {
		x = append(x, float64(i))
		y = append(y, truth.Eval(float64(i))*(1+0.05*(2*r.Float64()-1)))
	}
	got, err := ExpDecayFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for _, xv := range []float64{16, 64, 256, 512} {
		want := truth.Eval(xv)
		if math.Abs(got.Eval(xv)-want)/want > 0.12 {
			t.Errorf("at x=%v: fit %.5f vs truth %.5f", xv, got.Eval(xv), want)
		}
	}
}

func TestPiecewiseConstLogFitWithNoise(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 10))
	truth := Piecewise{Breakpoint: 64, Low: Constant{Value: 5.9}, High: LogLinear{Alpha: 3.0, Beta: -6.0}}
	var x, y []float64
	for _, xv := range []float64{4, 8, 16, 32, 48, 64, 96, 128, 192, 256, 512, 1024, 2048} {
		x = append(x, xv)
		y = append(y, truth.Eval(xv)*(1+0.03*(2*r.Float64()-1)))
	}
	got, err := PiecewiseConstLogFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	// The fitted breakpoint should land within a factor of ~3 of truth,
	// and predictions should track.
	if got.Breakpoint < 16 || got.Breakpoint > 192 {
		t.Errorf("breakpoint %v too far from 64", got.Breakpoint)
	}
	for _, xv := range []float64{8, 512, 2048} {
		want := truth.Eval(xv)
		if math.Abs(got.Eval(xv)-want) > math.Abs(want)*0.10+0.5 {
			t.Errorf("at x=%v: fit %.3f vs truth %.3f", xv, got.Eval(xv), want)
		}
	}
}
