package quant

import (
	"testing"

	"edgereasoning/internal/data"
	"edgereasoning/internal/gpusim"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/model"
	"edgereasoning/internal/power"
)

func setup() (*gpusim.Sim, *power.Meter) {
	d := hw.JetsonAGXOrin64GB()
	return gpusim.New(d), power.NewMeter(d)
}

// Tables XVIII/XIX: quantization speeds up both phases, more for larger
// models (Takeaway #11: decode gains of 2.0x / 2.9x / 3.1x).
func TestCompareSpeedups(t *testing.T) {
	sim, meter := setup()
	var prevDecode float64
	for _, id := range []model.ID{model.DSR1Qwen1_5B, model.DSR1Llama8B, model.DSR1Qwen14B} {
		c, err := Compare(sim, meter, model.MustLookup(id), data.MMLURedux)
		if err != nil {
			t.Fatal(err)
		}
		if s := c.DecodeSpeedup(); s < 1.5 || s > 4.0 {
			t.Errorf("%s: decode speedup = %.2fx, paper reports 2.0-3.1x", id, s)
		}
		if s := c.PrefillSpeedup(); s < 1.2 || s > 5.0 {
			t.Errorf("%s: prefill speedup = %.2fx out of range", id, s)
		}
		if c.DecodeSpeedup() < prevDecode-0.3 {
			t.Errorf("%s: decode speedup should grow with model size", id)
		}
		prevDecode = c.DecodeSpeedup()
	}
}

// Fig 14: accuracy deltas are small — 1.04% (1.5B), 6.16% (8B), 0.62%
// (14B) relative loss.
func TestCompareAccuracyDeltas(t *testing.T) {
	sim, meter := setup()
	cases := []struct {
		id   model.ID
		want float64 // percent relative loss
		tol  float64
	}{
		{model.DSR1Qwen1_5B, 1.04, 1.0},
		{model.DSR1Llama8B, 6.16, 1.0},
		{model.DSR1Qwen14B, 0.62, 0.5},
	}
	for _, cse := range cases {
		c, err := Compare(sim, meter, model.MustLookup(cse.id), data.MMLURedux)
		if err != nil {
			t.Fatal(err)
		}
		if !c.HaveAccuracy {
			t.Fatalf("%s: no accuracy calibration", cse.id)
		}
		got := c.AccuracyDropPct()
		if got < cse.want-cse.tol || got > cse.want+cse.tol {
			t.Errorf("%s: accuracy drop = %.2f%%, paper %.2f%%", cse.id, got, cse.want)
		}
	}
}

// Fig 14a: quantized models emit fewer tokens than FP16.
func TestQuantizedGeneratesFewerTokens(t *testing.T) {
	sim, meter := setup()
	for _, id := range []model.ID{model.DSR1Qwen1_5B, model.DSR1Llama8B, model.DSR1Qwen14B} {
		c, err := Compare(sim, meter, model.MustLookup(id), data.MMLURedux)
		if err != nil {
			t.Fatal(err)
		}
		if c.QuantTokens >= c.BaseTokens {
			t.Errorf("%s: W4 tokens (%.0f) should undercut FP16 (%.0f)", id, c.QuantTokens, c.BaseTokens)
		}
	}
}

// Figs 12/13: quantized models use less energy per token.
func TestQuantizedEnergyPerTokenLower(t *testing.T) {
	sim, meter := setup()
	c, err := Compare(sim, meter, model.MustLookup(model.DSR1Qwen14B), data.MMLURedux)
	if err != nil {
		t.Fatal(err)
	}
	if c.QuantDecode.MeanEnergy >= c.BaseDecode.MeanEnergy {
		t.Errorf("W4 decode energy/token (%.3f J) should undercut FP16 (%.3f J)",
			c.QuantDecode.MeanEnergy, c.BaseDecode.MeanEnergy)
	}
}

func TestCompareRejectsQuantizedInput(t *testing.T) {
	sim, meter := setup()
	q := model.MustLookup(model.DSR1Llama8B).Quantized()
	if _, err := Compare(sim, meter, q, data.MMLURedux); err == nil {
		t.Error("Compare must reject already-quantized specs")
	}
}

func TestSweepStatsSanity(t *testing.T) {
	sim, meter := setup()
	a := model.MustLookup(model.DSR1Llama8B).Arch
	s := DecodeSweep(sim, meter, a, model.FP16)
	if s.MeanTime <= 0 || s.TokPerSec <= 0 || s.MeanPower <= 0 || s.MeanEnergy <= 0 {
		t.Errorf("sweep stats must be positive: %+v", s)
	}
	// Decode throughput at batch 1 is bounded by TBT: ~9-10 tok/s for 8B.
	if s.TokPerSec < 5 || s.TokPerSec > 15 {
		t.Errorf("8B decode throughput = %.1f tok/s, paper reports ~9", s.TokPerSec)
	}
}
