package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42, "stream")
	b := NewRNG(42, "stream")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed+name must produce identical streams")
		}
	}
}

func TestRNGStreamIndependence(t *testing.T) {
	a := NewRNG(42, "alpha")
	b := NewRNG(42, "beta")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different streams coincide %d/100 times", same)
	}
}

func TestLogNormalMeanApproximatesMean(t *testing.T) {
	r := NewRNG(1, "lognormal")
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.LogNormalMean(500, 0.5)
	}
	got := sum / n
	if math.Abs(got-500)/500 > 0.02 {
		t.Errorf("lognormal mean = %v, want ~500", got)
	}
}

func TestLogNormalMeanZero(t *testing.T) {
	r := NewRNG(1, "ln0")
	if r.LogNormalMean(0, 0.5) != 0 {
		t.Error("mean 0 should yield 0")
	}
}

func TestBetaInUnitInterval(t *testing.T) {
	r := NewRNG(7, "beta")
	for i := 0; i < 10000; i++ {
		x := r.Beta(2, 5)
		if x < 0 || x > 1 {
			t.Fatalf("beta sample out of range: %v", x)
		}
	}
}

func TestBetaMean(t *testing.T) {
	r := NewRNG(7, "betamean")
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Beta(2, 3)
	}
	got := sum / n
	want := 2.0 / 5.0
	if math.Abs(got-want) > 0.01 {
		t.Errorf("Beta(2,3) mean = %v, want %v", got, want)
	}
}

func TestCategoricalDistribution(t *testing.T) {
	r := NewRNG(3, "cat")
	weights := []float64{1, 2, 7}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Categorical(weights)]++
	}
	for i, w := range weights {
		want := w / 10 * n
		if math.Abs(float64(counts[i])-want)/want > 0.05 {
			t.Errorf("category %d: count %d, want ~%v", i, counts[i], want)
		}
	}
}

func TestCategoricalPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on empty weights")
		}
	}()
	NewRNG(1, "x").Categorical(nil)
}

func TestCategoricalPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative weight")
		}
	}()
	NewRNG(1, "x").Categorical([]float64{1, -1})
}

func TestBernoulliExtremes(t *testing.T) {
	r := NewRNG(1, "bern")
	if r.Bernoulli(0) {
		t.Error("p=0 must be false")
	}
	if !r.Bernoulli(1) {
		t.Error("p=1 must be true")
	}
}

func TestBernoulliRate(t *testing.T) {
	r := NewRNG(9, "bernrate")
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRNG(5, "jit")
	for i := 0; i < 1000; i++ {
		x := r.Jitter(100, 0.05)
		if x < 95 || x > 105 {
			t.Fatalf("jitter out of bounds: %v", x)
		}
	}
}

func TestHashJitterDeterministic(t *testing.T) {
	a := HashJitter(100, 0.1, 12345)
	b := HashJitter(100, 0.1, 12345)
	if a != b {
		t.Error("HashJitter must be deterministic for a fixed key")
	}
	if a < 90 || a > 110 {
		t.Errorf("HashJitter out of bounds: %v", a)
	}
	c := HashJitter(100, 0.1, 54321)
	if a == c {
		t.Error("different keys should (almost surely) differ")
	}
}
