// Package hw describes the edge hardware the simulator models: the NVIDIA
// Jetson AGX Orin 64GB GPU (Table I of the paper) and its 12-core ARM
// Cortex-A78AE CPU complex (Appendix C). A Device carries the roofline
// parameters (peak compute, memory bandwidth, achievable efficiencies),
// tensor-core tile geometry responsible for the paper's stepped prefill
// latency, and the power envelope used by the power model.
package hw

import "fmt"

// Device describes one execution engine (a GPU or a CPU complex) with the
// roofline and power parameters the simulator needs.
type Device struct {
	Name string

	// Compute capability.
	PeakFP16FLOPS float64 // dense FP16 tensor throughput, FLOP/s
	PeakFP32FLOPS float64 // FP32 CUDA-core / NEON throughput, FLOP/s
	PeakINT8OPS   float64 // dense INT8 throughput, OP/s

	// Memory system.
	MemBandwidth float64 // peak DRAM bandwidth, bytes/s
	MemCapacity  int64   // DRAM capacity, bytes
	L2Bytes      int64   // last-level cache size, bytes

	// Achievable fractions of peak. MemEff is the fraction of MemBandwidth
	// streaming kernels achieve (the paper's decode measurements imply
	// ~0.80 on Orin); ComputeEff is the matmul MFU ceiling for large,
	// well-shaped GEMMs (~0.27 on Orin per the prefill measurements).
	MemEff     float64
	ComputeEff float64

	// Tensor-core tile geometry. Kernels pad their M (token) and batch
	// dimensions up to TileM, producing the 128-token steps in Fig 2.
	// Devices without tensor cores (the CPU) use TileM = 1.
	TileM int

	// SMCount is the number of streaming multiprocessors (or CPU cores);
	// kernels that spawn fewer thread blocks than SMCount leave the device
	// partially occupied, which feeds the power model.
	SMCount int

	// KernelOverhead is the fixed host-side launch + synchronization cost
	// charged per kernel invocation, in seconds.
	KernelOverhead float64

	// Power envelope (see internal/power).
	IdlePower    float64 // rail power with the engine idle, watts
	MaxPower     float64 // engine power at full utilization, watts
	PowerStates  int     // number of discrete DVFS utilization states
	PowerGamma   float64 // curvature of the utilization→power mapping
	StaticSystem float64 // always-on SoC overhead attributed to runs, watts
}

// Validate reports whether the descriptor is internally consistent.
func (d *Device) Validate() error {
	switch {
	case d.Name == "":
		return fmt.Errorf("hw: device missing name")
	case d.PeakFP16FLOPS <= 0:
		return fmt.Errorf("hw: %s: PeakFP16FLOPS must be positive", d.Name)
	case d.MemBandwidth <= 0:
		return fmt.Errorf("hw: %s: MemBandwidth must be positive", d.Name)
	case d.MemEff <= 0 || d.MemEff > 1:
		return fmt.Errorf("hw: %s: MemEff must be in (0,1]", d.Name)
	case d.ComputeEff <= 0 || d.ComputeEff > 1:
		return fmt.Errorf("hw: %s: ComputeEff must be in (0,1]", d.Name)
	case d.TileM < 1:
		return fmt.Errorf("hw: %s: TileM must be >= 1", d.Name)
	case d.SMCount < 1:
		return fmt.Errorf("hw: %s: SMCount must be >= 1", d.Name)
	case d.IdlePower < 0 || d.MaxPower <= d.IdlePower:
		return fmt.Errorf("hw: %s: power envelope invalid", d.Name)
	case d.PowerStates < 1:
		return fmt.Errorf("hw: %s: PowerStates must be >= 1", d.Name)
	}
	return nil
}

// EffectiveBandwidth returns the achievable streaming bandwidth in bytes/s.
func (d *Device) EffectiveBandwidth() float64 { return d.MemBandwidth * d.MemEff }

// EffectiveFP16FLOPS returns the achievable dense FP16 throughput.
func (d *Device) EffectiveFP16FLOPS() float64 { return d.PeakFP16FLOPS * d.ComputeEff }

// PadM rounds a token count up to the device tile size, modelling the
// tensor-quantization padding CUTLASS applies (I_pad in Eqn 1).
func (d *Device) PadM(m int) int {
	if m <= 0 {
		return 0
	}
	t := d.TileM
	if t <= 1 {
		return m
	}
	return (m + t - 1) / t * t
}

// GiB is a byte-count helper for descriptor literals.
const GiB = 1 << 30

// JetsonAGXOrin64GB returns the descriptor for the paper's platform
// (Table I): Ampere GPU, 2048 CUDA cores (5.3 FP32 TFLOPs), 64 tensor
// cores, 64 GB LPDDR5 at 204.8 GB/s, MAXN power mode.
//
// Calibration notes (see DESIGN.md §5): MemEff 0.80 reproduces the
// measured decode TBT of the three DSR1 models within a few percent;
// ComputeEff 0.27 reproduces the 15–19 effective prefill TFLOPs implied by
// Table XVI. The 275 TOPS figure in Table I is sparse INT8; dense FP16 is
// one quarter of it.
func JetsonAGXOrin64GB() *Device {
	return &Device{
		Name:           "jetson-agx-orin-64gb",
		PeakFP16FLOPS:  68.75e12, // 275 sparse INT8 TOPS / 2 (dense) / 2 (FP16)
		PeakFP32FLOPS:  5.3e12,
		PeakINT8OPS:    137.5e12,
		MemBandwidth:   204.8e9,
		MemCapacity:    64 * GiB,
		L2Bytes:        4 << 20,
		MemEff:         0.80,
		ComputeEff:     0.27,
		TileM:          128,
		SMCount:        16,
		KernelOverhead: 40e-6, // Orin's slow host side: eager-mode launches cost ~40µs

		IdlePower:    5.0,
		MaxPower:     38.0,
		PowerStates:  8,
		PowerGamma:   0.85,
		StaticSystem: 0.0,
	}
}

// OrinCortexA78AE returns the descriptor for Orin's 12-core ARM
// Cortex-A78AE CPU complex, the alternative inference engine evaluated in
// Appendix C. Effective GEMM throughput (~45 GFLOPs) and streaming
// bandwidth (~33 GB/s) are calibrated from Tables XVI–XVII.
func OrinCortexA78AE() *Device {
	return &Device{
		Name:           "orin-cortex-a78ae",
		PeakFP16FLOPS:  211e9, // 12 cores × 2.2 GHz × 8 FP32 FMA lanes
		PeakFP32FLOPS:  211e9,
		PeakINT8OPS:    422e9,
		MemBandwidth:   204.8e9, // shared LPDDR5; CPU cannot saturate it
		MemCapacity:    64 * GiB,
		L2Bytes:        3 << 20,
		MemEff:         0.16, // ~33 GB/s achievable from the CPU complex
		ComputeEff:     0.21, // ~45 GFLOPs effective GEMM throughput
		TileM:          1,
		SMCount:        12,
		KernelOverhead: 1e-6,
		IdlePower:      3.0,
		MaxPower:       15.0,
		PowerStates:    4,
		PowerGamma:     0.9,
		StaticSystem:   0.0,
	}
}

// H100SXM returns a server-class reference device. The paper's artifact
// runs the accuracy-oriented evaluations (MMLU grids, Natural-Plan) on
// server hosts ("x86_64 servers with NVIDIA GPUs: H100, RTX A6000"), so
// its Natural-Plan latencies reflect this class of machine — the
// naturalplan driver times against it. Dense FP16 ~989 TFLOPs, HBM3 at
// 3.35 TB/s.
func H100SXM() *Device {
	return &Device{
		Name:           "h100-sxm",
		PeakFP16FLOPS:  989e12,
		PeakFP32FLOPS:  67e12,
		PeakINT8OPS:    1979e12,
		MemBandwidth:   3.35e12,
		MemCapacity:    80 * GiB,
		L2Bytes:        50 << 20,
		MemEff:         0.80,
		ComputeEff:     0.45, // server-class MFU on large GEMMs
		TileM:          128,
		SMCount:        132,
		KernelOverhead: 5e-6, // fast host: pre-captured graphs
		IdlePower:      80,
		MaxPower:       700,
		PowerStates:    16,
		PowerGamma:     0.9,
	}
}

// PowerMode is one of the Jetson's configurable power envelopes.
type PowerMode struct {
	Name     string
	CapWatts float64 // 0 means uncapped (MAXN)
	// FreqScale derates compute and bandwidth relative to MAXN.
	FreqScale float64
}

// OrinPowerModes lists the Jetson AGX Orin's four configurable modes. All
// paper experiments run in MAXN; the other modes are exposed so users can
// study capped deployments.
func OrinPowerModes() []PowerMode {
	return []PowerMode{
		{Name: "15W", CapWatts: 15, FreqScale: 0.35},
		{Name: "30W", CapWatts: 30, FreqScale: 0.60},
		{Name: "50W", CapWatts: 50, FreqScale: 0.85},
		{Name: "MAXN", CapWatts: 0, FreqScale: 1.0},
	}
}

// ApplyPowerMode returns a copy of the device derated to the given mode.
func ApplyPowerMode(d *Device, mode PowerMode) *Device {
	out := *d
	if mode.FreqScale > 0 && mode.FreqScale < 1 {
		out.PeakFP16FLOPS *= mode.FreqScale
		out.PeakFP32FLOPS *= mode.FreqScale
		out.PeakINT8OPS *= mode.FreqScale
		out.MemBandwidth *= mode.FreqScale
	}
	if mode.CapWatts > 0 && mode.CapWatts < out.MaxPower {
		out.MaxPower = mode.CapWatts
	}
	out.Name = d.Name + "-" + mode.Name
	return &out
}
