package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// TraceOff preserves the zero-overhead-when-off tracing contract: a
// telemetry.Tracer held by a serve loop is nil when tracing is off, so
// every method call on it must be dominated by a nil check — otherwise
// the traced-off hot path either panics or (worse) silently pays for
// telemetry. The same applies to nil-when-off concrete wrappers (the
// fleet's dispatch-side tracer), which mark themselves with an
// //edgereasoning:tracer directive on their type declaration.
//
// Recognized guards:
//
//	if tra != nil { tra.Record(...) }          // including && chains
//	if tra == nil { return }; tra.Record(...)  // early exit
//	if tra == nil { ... } else { tra.Record(...) }
//
// Inside a method of an annotated tracer type the receiver itself is
// treated as guarded — the contract is that callers guard before
// entering.
var TraceOff = &Analyzer{
	Name: "traceoff",
	Doc: "require a nil guard on every telemetry.Tracer (or " +
		"//edgereasoning:tracer type) method call",
	Run: runTraceOff,
}

func runTraceOff(pass *Pass) error {
	tc := &traceChecker{pass: pass, annotated: annotatedTracerTypes(pass)}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			guarded := map[string]bool{}
			if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
				name := fd.Recv.List[0].Names[0]
				if obj := pass.TypesInfo.Defs[name]; obj != nil && tc.isTracerType(obj.Type()) {
					guarded[name.Name] = true
				}
			}
			tc.block(fd.Body.List, guarded)
		}
	}
	return nil
}

// annotatedTracerTypes collects this package's type declarations
// carrying //edgereasoning:tracer.
func annotatedTracerTypes(pass *Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				docs := declDirectives(gd.Doc)
				docs = append(docs, declDirectives(ts.Doc)...)
				for _, d := range docs {
					if d.Kind == "tracer" {
						if obj := pass.TypesInfo.Defs[ts.Name]; obj != nil {
							out[obj] = true
						}
					}
				}
			}
		}
	}
	return out
}

type traceChecker struct {
	pass      *Pass
	annotated map[types.Object]bool
}

// isTracerType reports whether t is the telemetry.Tracer interface (or
// a pointer to / instance of a type annotated //edgereasoning:tracer).
func (tc *traceChecker) isTracerType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if tc.annotated[n.Obj()] {
		return true
	}
	if _, isIface := n.Underlying().(*types.Interface); !isIface {
		return false
	}
	return n.Obj().Name() == "Tracer" && n.Obj().Pkg() != nil && n.Obj().Pkg().Name() == "telemetry"
}

// block walks one statement list. guarded is owned by the caller per
// block; early-exit nil checks extend it for the remaining statements.
func (tc *traceChecker) block(stmts []ast.Stmt, guarded map[string]bool) {
	local := copySet(guarded)
	for _, s := range stmts {
		tc.stmt(s, local)
	}
}

func (tc *traceChecker) stmt(s ast.Stmt, guarded map[string]bool) {
	switch s := s.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			tc.stmt(s.Init, guarded)
		}
		tc.exprs(s.Cond, guarded)
		then := copySet(guarded)
		for _, g := range nilGuards(s.Cond, token.NEQ) {
			then[g] = true
		}
		tc.block(s.Body.List, then)
		eqGuards := nilGuards(s.Cond, token.EQL)
		if s.Else != nil {
			els := copySet(guarded)
			for _, g := range eqGuards {
				els[g] = true
			}
			tc.stmt(s.Else, els)
		} else if len(eqGuards) > 0 && terminates(s.Body) {
			// `if x == nil { return }`: x is non-nil afterwards.
			for _, g := range eqGuards {
				guarded[g] = true
			}
		}
	case *ast.BlockStmt:
		tc.block(s.List, guarded)
	case *ast.ForStmt:
		if s.Init != nil {
			tc.stmt(s.Init, guarded)
		}
		if s.Cond != nil {
			tc.exprs(s.Cond, guarded)
		}
		if s.Post != nil {
			tc.stmt(s.Post, guarded)
		}
		tc.block(s.Body.List, guarded)
	case *ast.RangeStmt:
		tc.exprs(s.X, guarded)
		tc.block(s.Body.List, guarded)
	case *ast.SwitchStmt:
		if s.Init != nil {
			tc.stmt(s.Init, guarded)
		}
		if s.Tag != nil {
			tc.exprs(s.Tag, guarded)
		}
		tc.block(s.Body.List, guarded)
	case *ast.TypeSwitchStmt, *ast.SelectStmt:
		// Clause bodies are blocks of statements reached below.
		switch sw := s.(type) {
		case *ast.TypeSwitchStmt:
			tc.block(sw.Body.List, guarded)
		case *ast.SelectStmt:
			tc.block(sw.Body.List, guarded)
		}
	case *ast.CaseClause:
		for _, e := range s.List {
			tc.exprs(e, guarded)
		}
		tc.block(s.Body, guarded)
	case *ast.CommClause:
		if s.Comm != nil {
			tc.stmt(s.Comm, guarded)
		}
		tc.block(s.Body, guarded)
	case *ast.LabeledStmt:
		tc.stmt(s.Stmt, guarded)
	default:
		tc.exprs(s, guarded)
	}
}

// exprs scans a statement or expression for tracer method calls,
// reporting any whose receiver is not in the guarded set. Function
// literals start a fresh guard scope: they may run later, when the
// enclosing guard no longer holds.
func (tc *traceChecker) exprs(n ast.Node, guarded map[string]bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch node := m.(type) {
		case *ast.FuncLit:
			tc.block(node.Body.List, map[string]bool{})
			return false
		case *ast.CallExpr:
			sel, ok := node.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			tv, ok := tc.pass.TypesInfo.Types[sel.X]
			if !ok || !tc.isTracerType(tv.Type) {
				return true
			}
			if !guarded[types.ExprString(sel.X)] {
				tc.pass.Reportf(node.Pos(),
					"%s.%s on a nil-when-off tracer without a nil guard; wrap in `if %s != nil` to keep tracing-off free",
					types.ExprString(sel.X), sel.Sel.Name, types.ExprString(sel.X))
			}
		}
		return true
	})
}

// nilGuards extracts the expressions proven non-nil by cond when it
// evaluates true (op NEQ: conjuncts `x != nil`) or false (op EQL:
// disjuncts `x == nil`, all of which must be nil-comparisons for the
// negation to pin every one).
func nilGuards(cond ast.Expr, op token.Token) []string {
	var out []string
	if op == token.NEQ {
		for _, c := range splitBool(cond, token.LAND) {
			if x, ok := nilCompare(c, token.NEQ); ok {
				out = append(out, x)
			}
		}
		return out
	}
	disj := splitBool(cond, token.LOR)
	for _, c := range disj {
		x, ok := nilCompare(c, token.EQL)
		if !ok {
			return nil
		}
		out = append(out, x)
	}
	return out
}

// splitBool flattens a chain of op (&& or ||) into its operands.
func splitBool(e ast.Expr, op token.Token) []ast.Expr {
	if p, ok := e.(*ast.ParenExpr); ok {
		return splitBool(p.X, op)
	}
	if b, ok := e.(*ast.BinaryExpr); ok && b.Op == op {
		return append(splitBool(b.X, op), splitBool(b.Y, op)...)
	}
	return []ast.Expr{e}
}

// nilCompare matches `x <op> nil` or `nil <op> x`, returning x's
// rendering.
func nilCompare(e ast.Expr, op token.Token) (string, bool) {
	if p, ok := e.(*ast.ParenExpr); ok {
		return nilCompare(p.X, op)
	}
	b, ok := e.(*ast.BinaryExpr)
	if !ok || b.Op != op {
		return "", false
	}
	if isNilIdent(b.Y) {
		return types.ExprString(b.X), true
	}
	if isNilIdent(b.X) {
		return types.ExprString(b.Y), true
	}
	return "", false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// terminates reports whether a block certainly transfers control out
// (return, branch, or panic as its last statement).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func copySet(in map[string]bool) map[string]bool {
	out := make(map[string]bool, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}
