package tts

import (
	"testing"

	"edgereasoning/internal/control"
	"edgereasoning/internal/data"
	"edgereasoning/internal/llm"
	"edgereasoning/internal/model"
)

const seed = 7

func twinFor(id model.ID, bank *data.Bank) *llm.Twin {
	return llm.NewTwin(model.MustLookup(id), bank, seed)
}

func TestMajorityVoteBasics(t *testing.T) {
	gens := []llm.Generation{{Answer: 0}, {Answer: 1}, {Answer: 0}, {Answer: 2}, {Answer: 0}}
	a, v := MajorityVote(gens)
	if a != 0 || v != 3 {
		t.Errorf("vote = (%d, %d), want (0, 3)", a, v)
	}
}

func TestMajorityVoteTieBreaksOnFirstSeen(t *testing.T) {
	gens := []llm.Generation{{Answer: 2}, {Answer: 0}, {Answer: 2}, {Answer: 0}}
	a, v := MajorityVote(gens)
	if a != 2 || v != 2 {
		t.Errorf("tie should break to first-seen answer 2, got (%d, %d)", a, v)
	}
}

func TestMajorityVoteEmpty(t *testing.T) {
	if a, v := MajorityVote(nil); a != 0 || v != 0 {
		t.Errorf("empty vote = (%d, %d)", a, v)
	}
}

func TestMajorityVotePermutationInvariantCount(t *testing.T) {
	gens := []llm.Generation{{Answer: 1}, {Answer: 0}, {Answer: 0}, {Answer: 3}, {Answer: 0}, {Answer: 1}}
	_, v1 := MajorityVote(gens)
	rev := make([]llm.Generation, len(gens))
	for i := range gens {
		rev[len(gens)-1-i] = gens[i]
	}
	_, v2 := MajorityVote(rev)
	if v1 != v2 {
		t.Errorf("winning count must be permutation invariant: %d vs %d", v1, v2)
	}
}

// Fig 9a: at a 128-token budget, scaling 1x -> 32x lifts accuracy by
// roughly 1.5-1.8x for the 8B and 14B models.
func TestParallelScalingGainsAt128(t *testing.T) {
	bank := data.MustLoad(data.MMLURedux, seed)
	cases := []struct {
		id      model.ID
		minGain float64
		maxGain float64
	}{
		{model.DSR1Llama8B, 1.3, 2.2},
		{model.DSR1Qwen14B, 1.3, 2.1},
	}
	for _, c := range cases {
		tw := twinFor(c.id, bank)
		r1, err := EvaluateBank(tw, bank, control.HardLimit(128), 1)
		if err != nil {
			t.Fatal(err)
		}
		r32, err := EvaluateBank(tw, bank, control.HardLimit(128), 32)
		if err != nil {
			t.Fatal(err)
		}
		gain := r32.Accuracy / r1.Accuracy
		if gain < c.minGain || gain > c.maxGain {
			t.Errorf("%s: SF32/SF1 gain = %.2f (%.1f%% -> %.1f%%), want %.1f-%.1f",
				c.id, gain, r1.Accuracy*100, r32.Accuracy*100, c.minGain, c.maxGain)
		}
	}
}

// Fig 9b: at a 512-token budget the gains plateau — SF4 -> SF32 adds
// little for the large models.
func TestParallelScalingPlateauAt512(t *testing.T) {
	bank := data.MustLoad(data.MMLURedux, seed)
	tw := twinFor(model.DSR1Qwen14B, bank)
	r4, err := EvaluateBank(tw, bank, control.HardLimit(512), 4)
	if err != nil {
		t.Fatal(err)
	}
	r32, err := EvaluateBank(tw, bank, control.HardLimit(512), 32)
	if err != nil {
		t.Fatal(err)
	}
	if r32.Accuracy-r4.Accuracy > 0.06 {
		t.Errorf("SF4->SF32 at 512 tokens gained %.1f points; paper reports a plateau",
			(r32.Accuracy-r4.Accuracy)*100)
	}
}

// Accuracy is (weakly) increasing over small scaling factors for mid-size
// models.
func TestScalingMonotoneEarly(t *testing.T) {
	bank := data.MustLoad(data.MMLURedux, seed)
	tw := twinFor(model.DSR1Llama8B, bank)
	rs, err := Sweep(tw, bank, control.HardLimit(128), []int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if !(rs[1].Accuracy >= rs[0].Accuracy-0.01 && rs[2].Accuracy >= rs[1].Accuracy-0.01) {
		t.Errorf("accuracy should rise with SF: %.3f, %.3f, %.3f",
			rs[0].Accuracy, rs[1].Accuracy, rs[2].Accuracy)
	}
}

// L1's budget-tuned outputs are near-deterministic, so voting brings
// little (§V-E: "negligible benefits beyond 2x").
func TestL1LimitedVotingGains(t *testing.T) {
	bank := data.MustLoad(data.MMLURedux, seed)
	tw := twinFor(model.L1Max, bank)
	r1, err := EvaluateBank(tw, bank, control.HardLimit(128), 1)
	if err != nil {
		t.Fatal(err)
	}
	r32, err := EvaluateBank(tw, bank, control.HardLimit(128), 32)
	if err != nil {
		t.Fatal(err)
	}
	gain := r32.Accuracy / r1.Accuracy
	// The 1.5B-class models gain far less than the big ones.
	if gain > 1.9 {
		t.Errorf("L1 voting gain = %.2f, should be modest", gain)
	}
}

func TestEvaluateBankTokenAccounting(t *testing.T) {
	bank := data.MustLoad(data.MMLURedux, seed).Subsample(100)
	tw := twinFor(model.DSR1Qwen14B, bank)
	r, err := EvaluateBank(tw, bank, control.HardLimit(128), 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanMaxTokens > 128 {
		t.Errorf("max branch tokens %.1f exceeds the hard cap", r.MeanMaxTokens)
	}
	if r.MeanTokens < r.MeanMaxTokens {
		t.Error("summed branch tokens must exceed the longest branch")
	}
	if r.MeanTokens > 8*128 {
		t.Error("summed tokens exceed SF x cap")
	}
	if r.MeanAgreement <= 0 || r.MeanAgreement > 1 {
		t.Errorf("agreement out of range: %v", r.MeanAgreement)
	}
}

func TestEvaluateBankRejectsBadSF(t *testing.T) {
	bank := data.MustLoad(data.MMLURedux, seed).Subsample(10)
	tw := twinFor(model.DSR1Qwen14B, bank)
	if _, err := EvaluateBank(tw, bank, control.BasePolicy(), 0); err == nil {
		t.Error("SF=0 must fail")
	}
}

func TestPaperScalingFactors(t *testing.T) {
	fs := PaperScalingFactors()
	want := []int{1, 2, 4, 8, 16, 32}
	if len(fs) != len(want) {
		t.Fatal("wrong factor count")
	}
	for i := range want {
		if fs[i] != want[i] {
			t.Errorf("factors = %v, want %v", fs, want)
		}
	}
}

// Exact-match voting: unique wrong answers cannot form majorities, so two
// agreeing correct votes beat any number of scattered unique wrongs.
func TestExactMatchVotingDynamics(t *testing.T) {
	gens := []llm.Generation{
		{Answer: 1001}, {Answer: 0}, {Answer: 1003}, {Answer: 0}, {Answer: 1004},
	}
	a, v := MajorityVote(gens)
	if a != 0 || v != 2 {
		t.Errorf("repeated correct answer should win, got (%d, %d)", a, v)
	}
	// All-singleton ties break to the first-generated answer.
	single := []llm.Generation{{Answer: 1001}, {Answer: 0}}
	if a, _ := MajorityVote(single); a != 1001 {
		t.Errorf("singleton tie should break first-seen, got %d", a)
	}
}
