package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownCommand(t *testing.T) {
	if err := run([]string{"frobnicate"}); err == nil {
		t.Error("unknown command must fail")
	}
}

func TestRunMissingArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args must fail")
	}
	if err := run([]string{"run"}); err == nil {
		t.Error("run without id must fail")
	}
}

func TestRunExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"run", "saturation", "-quick", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no CSV files written")
	}
	data, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty CSV")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"run", "fig999"}); err == nil {
		t.Error("unknown experiment must fail")
	}
}

func TestHelp(t *testing.T) {
	if err := run([]string{"help"}); err != nil {
		t.Error("help must succeed")
	}
}
