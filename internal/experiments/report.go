// Package experiments contains one driver per table and figure in the
// paper's evaluation. Each driver runs the relevant workload on the
// simulated platform and renders the same rows/series the paper reports,
// so EXPERIMENTS.md can put paper values and reproduced values side by
// side. Drivers are deterministic in Options.Seed.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Options configures a driver run.
type Options struct {
	// Seed drives all randomness.
	Seed uint64
	// Quick subsamples the large banks so the full suite stays fast
	// (useful in tests; benches run full size).
	Quick bool

	// Fleet* parameterize the "fleet" driver (the CLI's fleet
	// subcommand threads them through); zero values select the driver's
	// defaults and other drivers ignore them.
	FleetReplicas int     // fleet size (default 4)
	FleetPolicy   string  // routing policy, or ""/"all" for every policy
	FleetQPS      float64 // offered load (default 2.0)
	FleetDevices  string  // comma-separated device cycle (default heterogeneous Orin mix)

	// Auto* parameterize the "autoscale" driver (the CLI's autoscale
	// subcommand threads them through); zero values select the driver's
	// defaults and other drivers ignore them. The driver also honors
	// FleetQPS (background load) and FleetDevices (provision cycle).
	AutoMin       int    // pool floor (default 1)
	AutoMax       int    // pool ceiling (default 6)
	AutoAdmission string // ingress discipline for the elastic run (default fifo)
	AutoScaleOn   string // scale-up signals: depth, miss, or both (default both)

	// Session* parameterize the "sessions" driver (the CLI's sessions
	// subcommand threads them through); zero values select the driver's
	// defaults and other drivers ignore them.
	SessionCount  int    // concurrent sessions (default 10; quick 6)
	SessionTurns  int    // agent-loop turns per session (default 5; quick 3)
	SessionBranch int    // parallel think samples at branch turns (default 2)
	SessionPolicy string // affinity-table policy, or ""/"all" for the comparison set

	// Tier* parameterize the "tiering" driver (the CLI's tiering
	// subcommand threads them through); zero values select the driver's
	// defaults and other drivers ignore them. The driver also honors the
	// Session* workload knobs above.
	TierDeviceBlocks string  // comma-separated device-cache sizes in blocks (default 192,384,768)
	TierHostBlocks   int     // host-tier capacity in blocks (default 1024)
	TierLinkBW       float64 // host-link bandwidth in bytes/s (default kvcache.DefaultHostLinkBandwidth)

	// Drill* parameterize the "drills" driver (the CLI's drills
	// subcommand threads them through); zero values select the driver's
	// defaults and other drivers ignore them. The driver also honors
	// FleetDevices (replica provision cycle).
	DrillReplicas int     // pool size under fault injection (default 3)
	DrillRestart  float64 // crash restart delay in seconds (default 10)

	// Sat* parameterize the "saturate" driver (the CLI's saturate
	// subcommand threads them through); zero values select the driver's
	// defaults and other drivers ignore them. The driver also honors
	// FleetDevices (replica provision cycle).
	SatSLO      float64 // objective: p99 bound in seconds, or hit-rate floor in [0,1]
	SatMetric   string  // "p99" (default) or "hitrate"
	SatRequests int     // requests offered per probe (default 240; quick 120)
}

// DefaultOptions is the standard full-fidelity configuration.
func DefaultOptions() Options { return Options{Seed: 7} }

// sample returns the bank subsample size for a nominal full size.
func (o Options) sample(full int) int {
	if !o.Quick {
		return full
	}
	quick := full / 10
	if quick < 150 {
		quick = 150
	}
	if quick > full {
		quick = full
	}
	return quick
}

// Table is one rendered artifact (a paper table, or a figure's underlying
// series).
type Table struct {
	ID      string // "table2", "fig7b", ...
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carry caveats (interpolated cells, known deviations).
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		_, err := fmt.Fprintln(w, b.String())
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV emits the table as CSV (header + rows).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Formatting helpers used across drivers.
func f1(x float64) string  { return fmt.Sprintf("%.1f", x) }
func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string  { return fmt.Sprintf("%.3f", x) }
func f4(x float64) string  { return fmt.Sprintf("%.4f", x) }
func sci(x float64) string { return fmt.Sprintf("%.3g", x) }
func pct(x float64) string { return fmt.Sprintf("%.1f", x*100) }
func di(x int) string      { return fmt.Sprintf("%d", x) }

// Driver produces one or more artifacts.
type Driver func(Options) ([]Table, error)

// registry maps experiment IDs to drivers; populated by init functions in
// the driver files.
var registry = map[string]Driver{}

// register installs a driver (panics on duplicates — programmer error).
func register(id string, d Driver) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate driver " + id)
	}
	registry[id] = d
}

// Run executes one experiment by ID.
func Run(id string, opts Options) ([]Table, error) {
	d, ok := registry[id]
	if !ok {
		return nil, UnknownIDError(id)
	}
	return d(opts)
}

// UnknownIDError is the canonical error for an unregistered experiment
// ID, listing the valid IDs so a typo is self-correcting.
func UnknownIDError(id string) error {
	return fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
}

// Known reports whether an experiment ID is registered.
func Known(id string) bool {
	_, ok := registry[id]
	return ok
}

// IDs lists registered experiments in a stable order.
func IDs() []string {
	order := []string{
		"fig1", "table2", "table3",
		"fig2", "fig3", "table6", "table7",
		"fig4", "fig5", "table8",
		"fig6", "fig7", "fig8", "table10", "table11",
		"fig9", "fig10",
		"quant", "table9",
		"table12", "naturalplan", "cpu",
		"pareto",
		// Extensions beyond the paper's measured artifacts (§VI future
		// work and design-choice ablations).
		"saturation", "batchsweep", "powermodes", "specdec", "offload",
		"fleet", "sessions", "tiering", "autoscale", "saturate", "drills",
		"breakdown",
	}
	out := make([]string, 0, len(registry))
	for _, id := range order {
		if _, ok := registry[id]; ok {
			out = append(out, id)
		}
	}
	// Append anything registered but not in the preferred order, sorted
	// for stable output.
	var rest []string
	for id := range registry {
		found := false
		for _, o := range out {
			if o == id {
				found = true
				break
			}
		}
		if !found {
			rest = append(rest, id)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}
