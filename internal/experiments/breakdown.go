package experiments

import (
	"fmt"
	"math"
	"reflect"

	"edgereasoning/internal/engine"
	"edgereasoning/internal/faults"
	"edgereasoning/internal/fleet"
	"edgereasoning/internal/model"
	"edgereasoning/internal/telemetry"
	"edgereasoning/internal/workload"
)

func init() {
	register("breakdown", breakdownStudy)
}

// breakdownStudy is the TTFT/latency decomposition table: a faulted,
// retry-enabled fleet run is traced end to end, and every served
// request's latency is split into its phase spans — shared-ingress
// queue wait, crash-retry backoff, destroyed attempts, replica-local
// wait, stall, host-tier restore, prefill, decode, and the continuous-
// batching gap. The verify table locks the tracing claims: the phases
// of every request tile its measured end-to-end latency exactly, the
// span ledger matches the fleet's abort/retry accounting one for one,
// spans nest cleanly on every replica lane, and the traced run's
// Metrics are deep-equal to an untraced run of the same stream — the
// zero-overhead-when-off contract, observed from the on side.
func breakdownStudy(opts Options) ([]Table, error) {
	const replicas = 3
	devices, err := fleet.ParseDevices(opts.FleetDevices)
	if err != nil {
		return nil, err
	}
	spec := model.MustLookup(model.Qwen25_1_5Bit)

	const qps = 2.2
	n := opts.sample(400)
	profile := workload.InteractiveAssistant(qps, n)
	profile.DeadlineSlack = 3
	profile.DeadlineSlackMax = 9
	reqs, err := workload.Generate(profile, opts.Seed)
	if err != nil {
		return nil, err
	}
	horizon := float64(n) / qps
	sched, err := faults.Generate(faults.GenConfig{
		Replicas: replicas, Horizon: horizon,
		CrashRate: 1.5, RestartDelay: 6,
		StallRate: 1, StallDuration: 2,
		ThrottleRate: 1, ThrottleDuration: horizon / 8, ThrottleFactor: 2,
	}, opts.Seed)
	if err != nil {
		return nil, err
	}
	cfgFor := func(trace *telemetry.Trace) fleet.Config {
		return fleet.Config{
			Replicas: fleet.HeterogeneousReplicas(replicas, devices, spec),
			Policy:   fleet.DeadlineAware,
			Faults:   &sched,
			Retry:    &fleet.RetryPolicy{Hedge: true},
			Health:   &fleet.HealthConfig{FailureThreshold: 2, ProbeAfter: 1},
			Trace:    trace,
		}
	}
	// Untraced leg first: the baseline the traced run must reproduce
	// bit for bit.
	plain, err := fleet.ServeSource(cfgFor(nil), engine.NewSliceSource(reqs))
	if err != nil {
		return nil, err
	}
	trace := telemetry.New(telemetry.Config{SpanCap: 1 << 16})
	traced, err := fleet.ServeSource(cfgFor(trace), engine.NewSliceSource(reqs))
	if err != nil {
		return nil, err
	}

	rows := trace.Breakdown()
	// Measured per-request latency (global queue wait folded in), for
	// the tiling check against the trace's own decomposition.
	measured := make(map[string]float64, traced.Served)
	for _, rm := range traced.Replicas {
		for j := range rm.Requests {
			measured[rm.Requests[j].ID] = rm.Latencies[j]
		}
	}
	maxResidual, maxVsMeasured := 0.0, 0.0
	matched := 0
	var aggregate telemetry.RequestPhases
	for _, r := range rows {
		if res := math.Abs(r.Residual()); res > maxResidual {
			maxResidual = res
		}
		if lat, ok := measured[r.ID]; ok {
			matched++
			if d := math.Abs(r.E2E() - lat); d > maxVsMeasured {
				maxVsMeasured = d
			}
		}
		aggregate.Ingress += r.Ingress
		aggregate.RetryWait += r.RetryWait
		aggregate.AbortedWall += r.AbortedWall
		aggregate.LostWork += r.LostWork
		aggregate.ReplicaWait += r.ReplicaWait
		aggregate.Stall += r.Stall
		aggregate.Restore += r.Restore
		aggregate.Prefill += r.Prefill
		aggregate.Decode += r.Decode
		aggregate.Gap += r.Gap
	}

	head := Table{
		ID: "breakdown",
		Title: fmt.Sprintf("Latency decomposition: first requests of %d at %.1f QPS on a faulted %d-replica pool (all times seconds)",
			n, qps, replicas),
		Columns: []string{"request", "replica", "try", "ingress", "retry", "aborted", "rwait",
			"stall", "restore", "prefill", "decode", "gap", "e2e", "tile"},
		Notes: []string{
			"try counts crash-destroyed attempts before the served one; aborted is their wall time, retry the backoff windows between attempts",
			"gap is serving-window time spent on batchmates (continuous batching) — the cost of sharing the replica",
			"tile passes when the phases sum to the measured end-to-end latency within 1e-9 s",
		},
	}
	headN := len(rows)
	if headN > 12 {
		headN = 12
	}
	for _, r := range rows[:headN] {
		tile := math.Abs(r.Residual()) <= 1e-9
		if lat, ok := measured[r.ID]; ok {
			tile = tile && math.Abs(r.E2E()-lat) <= 1e-9
		}
		head.AddRow(r.ID, r.Track, di(r.Attempts), f3(r.Ingress), f3(r.RetryWait),
			f3(r.AbortedWall), f3(r.ReplicaWait), f3(r.Stall), f3(r.Restore),
			f3(r.Prefill), f3(r.Decode), f3(r.Gap), f3(r.E2E()), check(tile))
	}

	phases := Table{
		ID:      "breakdown-phases",
		Title:   fmt.Sprintf("Phase totals across all %d served requests", len(rows)),
		Columns: []string{"phase", "total_s", "share_pct"},
		Notes: []string{
			"shares are of summed end-to-end latency; lost_work is informational (estimated seconds executed then destroyed, not a latency phase)",
		},
	}
	totalE2E := aggregate.Ingress + aggregate.RetryWait + aggregate.AbortedWall +
		aggregate.ReplicaWait + aggregate.Stall + aggregate.Restore +
		aggregate.Prefill + aggregate.Decode + aggregate.Gap
	share := func(x float64) string {
		if totalE2E <= 0 {
			return pct(0)
		}
		return pct(x / totalE2E)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"ingress_queue", aggregate.Ingress},
		{"retry_backoff", aggregate.RetryWait},
		{"aborted_attempts", aggregate.AbortedWall},
		{"replica_wait", aggregate.ReplicaWait},
		{"stall", aggregate.Stall},
		{"restore", aggregate.Restore},
		{"prefill", aggregate.Prefill},
		{"decode", aggregate.Decode},
		{"batch_gap", aggregate.Gap},
	} {
		phases.AddRow(p.name, f2(p.v), share(p.v))
	}
	phases.AddRow("lost_work", f2(aggregate.LostWork), "-")

	ttft := Table{
		ID:      "breakdown-ttft",
		Title:   "TTFT distribution (merged across replicas, from the trace's histogram registry)",
		Columns: []string{"le_seconds", "count", "cumulative"},
	}
	for _, mh := range trace.Histograms() {
		if mh.Name != "ttft_seconds" {
			continue
		}
		for i, b := range mh.Hist.Bounds() {
			if c := mh.Hist.BucketCount(i); c > 0 || mh.Hist.Cumulative(i) > 0 {
				ttft.AddRow(sci(b), di(int(c)), di(int(mh.Hist.Cumulative(i))))
			}
		}
		ttft.AddRow("+Inf", di(int(mh.Hist.Count())-cumAll(mh)), di(int(mh.Hist.Count())))
	}

	// Span-ledger counts against the fleet's own accounting.
	abortSpans, retrySpans := 0, 0
	for _, tr := range trace.Tracks() {
		for _, s := range tr.Spans() {
			switch s.Kind {
			case telemetry.KindAborted:
				abortSpans++
			case telemetry.KindRetryWait:
				retrySpans++
			}
		}
	}
	nestErr := telemetry.ValidateSpans(trace)
	nested := "pass"
	if nestErr != nil {
		nested = "FAIL: " + nestErr.Error()
	}
	verify := Table{
		ID:      "breakdown-verify",
		Title:   "Breakdown verify: trace consistency against the run's metrics",
		Columns: []string{"claim", "observed", "expected", "check"},
		Notes: []string{
			"tiling requires every served request's phase spans to sum exactly to its measured end-to-end latency",
			"transparent requires the traced run's Metrics to be deep-equal to an untraced run of the same stream and schedule",
		},
	}
	verify.AddRow("served_rows", di(len(rows)), di(traced.Served), check(len(rows) == traced.Served))
	verify.AddRow("measured_matched", di(matched), di(len(rows)), check(matched == len(rows)))
	verify.AddRow("max_tile_residual_s", sci(maxResidual), "<=1e-9", check(maxResidual <= 1e-9))
	verify.AddRow("max_vs_measured_s", sci(maxVsMeasured), "<=1e-9", check(maxVsMeasured <= 1e-9))
	verify.AddRow("abort_spans", di(abortSpans), di(traced.Aborted), check(abortSpans == traced.Aborted))
	verify.AddRow("retry_wait_spans", di(retrySpans), di(traced.Retried), check(retrySpans == traced.Retried))
	verify.AddRow("spans_nested", nested, "pass", check(nestErr == nil))
	verify.AddRow("conserved", di(traced.Served+traced.Dropped), di(traced.Offered),
		check(traced.Served+traced.Dropped == traced.Offered))
	verify.AddRow("transparent", fmt.Sprintf("%v", reflect.DeepEqual(plain, traced)), "true",
		check(reflect.DeepEqual(plain, traced)))
	return []Table{head, phases, ttft, verify}, nil
}

// cumAll is the cumulative count through the last finite bucket.
func cumAll(mh telemetry.MergedHistogram) int {
	n := len(mh.Hist.Bounds())
	if n == 0 {
		return 0
	}
	return int(mh.Hist.Cumulative(n - 1))
}

// check renders a verify-table mark.
func check(ok bool) string {
	if ok {
		return "pass"
	}
	return "FAIL"
}
