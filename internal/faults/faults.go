// Package faults defines deterministic, seedable fault schedules for
// fleet-level outage drills: replica crashes (lossy — in-flight work and
// the device KV cache are destroyed, with an optional restart after a
// cold-start delay), transient stall windows (the replica makes no
// progress), and thermal-throttle windows (the decode rate is scaled
// down, modeling a sustained power/temperature cap on an Orin-class
// part). A Schedule is pure data: the serving layer compiles it into
// per-replica timelines and the recovery machinery around them, so the
// same schedule replayed against the same stream yields the same run.
package faults

import (
	"fmt"
	"math"
	"sort"

	"edgereasoning/internal/stats"
)

// Kind enumerates the injected fault types.
type Kind int

const (
	// Crash destroys the replica's in-flight work and device KV cache at
	// Event.At; the replica rejoins after Event.Restart seconds (never,
	// when Restart is zero).
	Crash Kind = iota
	// Stall freezes the replica for [At, At+Duration): work that would
	// start inside the window starts at its end instead.
	Stall
	// Throttle stretches decode time by Event.Factor over
	// [At, At+Duration) — a thermal cap that slows token generation
	// without losing state.
	Throttle
)

// String names the kind as used in tables and errors.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Stall:
		return "stall"
	case Throttle:
		return "throttle"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one scheduled fault against one replica, identified by its
// index into the fleet's configured (initial) replica set.
type Event struct {
	Replica int
	Kind    Kind
	// At is the fault instant for a crash, or the window start for a
	// stall or throttle.
	At float64
	// Restart (crash only) is the cold-start delay before the replica
	// rejoins the pool; zero means it never comes back.
	Restart float64
	// Duration (stall and throttle only) is the window length: the fault
	// covers [At, At+Duration).
	Duration float64
	// Factor (throttle only) is the decode-time multiplier, >= 1: a
	// factor of 2 halves the decode rate for the window.
	Factor float64
}

// Schedule is a deterministic fault plan for one serving run.
type Schedule struct {
	Events []Event
	// HostSurvivesCrash models persistent host DRAM: a crash always
	// wipes the device KV cache, but with this set the host tier of a
	// tiered prefix index survives, so a restarted replica restores
	// demoted session histories over the host link instead of
	// re-prefilling them from scratch.
	HostSurvivesCrash bool
}

// Validate rejects unusable schedules against a fleet of the given
// replica count.
func (s *Schedule) Validate(replicas int) error {
	for i, ev := range s.Events {
		if ev.Replica < 0 || ev.Replica >= replicas {
			return fmt.Errorf("faults: event %d targets replica %d of a %d-replica fleet", i, ev.Replica, replicas)
		}
		if math.IsNaN(ev.At) || math.IsInf(ev.At, 0) || ev.At < 0 {
			return fmt.Errorf("faults: event %d at non-finite or negative time %v", i, ev.At)
		}
		switch ev.Kind {
		case Crash:
			if math.IsNaN(ev.Restart) || math.IsInf(ev.Restart, 0) || ev.Restart < 0 {
				return fmt.Errorf("faults: crash event %d has bad restart delay %v", i, ev.Restart)
			}
		case Stall, Throttle:
			if math.IsNaN(ev.Duration) || math.IsInf(ev.Duration, 0) || ev.Duration <= 0 {
				return fmt.Errorf("faults: %s event %d needs a positive finite duration, got %v", ev.Kind, i, ev.Duration)
			}
			if ev.Kind == Throttle && (!(ev.Factor >= 1) || math.IsInf(ev.Factor, 0)) {
				return fmt.Errorf("faults: throttle event %d needs a finite factor >= 1, got %v", i, ev.Factor)
			}
		default:
			return fmt.Errorf("faults: event %d has unknown kind %d", i, int(ev.Kind))
		}
	}
	return nil
}

// Sorted returns the events ordered by (At, Replica, Kind), the
// canonical processing order; the receiver is not modified.
func (s *Schedule) Sorted() []Event {
	out := append([]Event(nil), s.Events...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Replica != out[j].Replica {
			return out[i].Replica < out[j].Replica
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// GenConfig parameterizes the seeded schedule generator. Rates are
// expected event counts per replica over the horizon; fractional rates
// are resolved by an extra Bernoulli draw, so a rate of 1.5 yields one
// guaranteed event and a second with probability one half.
type GenConfig struct {
	// Replicas is the fleet size events are drawn against.
	Replicas int
	// Horizon bounds event start times: every fault lands in [0, Horizon).
	Horizon float64
	// CrashRate is the expected crashes per replica over the horizon.
	CrashRate float64
	// RestartDelay is the cold-start delay a crashed replica pays before
	// rejoining (zero: crashes are permanent).
	RestartDelay float64
	// StallRate and StallDuration shape the transient stall windows.
	StallRate     float64
	StallDuration float64
	// ThrottleRate, ThrottleDuration, and ThrottleFactor shape the
	// thermal-throttle windows; a factor <= 1 disables throttling even
	// with a positive rate.
	ThrottleRate     float64
	ThrottleDuration float64
	ThrottleFactor   float64
}

// Validate rejects unusable generator configs.
func (c GenConfig) Validate() error {
	switch {
	case c.Replicas <= 0:
		return fmt.Errorf("faults: generator needs a positive replica count, got %d", c.Replicas)
	case math.IsNaN(c.Horizon) || math.IsInf(c.Horizon, 0) || c.Horizon <= 0:
		return fmt.Errorf("faults: generator needs a positive finite horizon, got %v", c.Horizon)
	case c.CrashRate < 0 || c.StallRate < 0 || c.ThrottleRate < 0:
		return fmt.Errorf("faults: negative event rate")
	case c.RestartDelay < 0 || math.IsNaN(c.RestartDelay) || math.IsInf(c.RestartDelay, 0):
		return fmt.Errorf("faults: bad restart delay %v", c.RestartDelay)
	}
	return nil
}

// Generate draws a deterministic schedule from the config and seed: each
// replica gets an independent named stream, so adding replicas never
// perturbs the faults of existing ones, and the same (config, seed) pair
// always yields the same schedule. Events come back in canonical sorted
// order and always pass Validate against cfg.Replicas.
func Generate(cfg GenConfig, seed uint64) (Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return Schedule{}, err
	}
	var s Schedule
	for r := 0; r < cfg.Replicas; r++ {
		rng := stats.NewRNG(seed, fmt.Sprintf("faults-replica-%d", r))
		for i, n := 0, drawCount(rng, cfg.CrashRate); i < n; i++ {
			s.Events = append(s.Events, Event{
				Replica: r, Kind: Crash,
				At:      rng.Float64() * cfg.Horizon,
				Restart: cfg.RestartDelay,
			})
		}
		for i, n := 0, drawCount(rng, cfg.StallRate); i < n; i++ {
			s.Events = append(s.Events, Event{
				Replica: r, Kind: Stall,
				At:       rng.Float64() * cfg.Horizon,
				Duration: cfg.StallDuration,
			})
		}
		if cfg.ThrottleFactor > 1 && cfg.ThrottleDuration > 0 {
			for i, n := 0, drawCount(rng, cfg.ThrottleRate); i < n; i++ {
				s.Events = append(s.Events, Event{
					Replica: r, Kind: Throttle,
					At:       rng.Float64() * cfg.Horizon,
					Duration: cfg.ThrottleDuration,
					Factor:   cfg.ThrottleFactor,
				})
			}
		}
	}
	s.Events = Schedule{Events: s.Events}.sortedInPlace()
	return s, nil
}

// sortedInPlace is Sorted without the defensive copy, for the generator.
func (s Schedule) sortedInPlace() []Event {
	sort.SliceStable(s.Events, func(i, j int) bool {
		if s.Events[i].At != s.Events[j].At {
			return s.Events[i].At < s.Events[j].At
		}
		if s.Events[i].Replica != s.Events[j].Replica {
			return s.Events[i].Replica < s.Events[j].Replica
		}
		return s.Events[i].Kind < s.Events[j].Kind
	})
	return s.Events
}

// drawCount resolves an expected event count into a concrete one: the
// integer part is guaranteed, the fractional part is one Bernoulli draw.
func drawCount(rng *stats.RNG, rate float64) int {
	if rate <= 0 {
		return 0
	}
	n := int(rate)
	if rng.Bernoulli(rate - float64(n)) {
		n++
	}
	return n
}
