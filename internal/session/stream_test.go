package session

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"edgereasoning/internal/engine"
	"edgereasoning/internal/stats"
)

// legacyGenerate is the frozen pre-streaming Generate implementation:
// materialize every session eagerly, concatenate in session order, and
// stable sort by arrival. The lazy k-way merge Source must reproduce it
// element-for-element forever.
func legacyGenerate(p Profile, seed uint64) ([]engine.TimedRequest, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	shared := stats.NewRNG(seed, fmt.Sprintf("session/shared/n%d", p.Sessions))
	system := make([]uint64, p.SystemPromptTokens)
	for i := range system {
		system[i] = symOf(shared)
	}
	var out []engine.TimedRequest
	start := 0.0
	for si := 0; si < p.Sessions; si++ {
		start += expSample(shared, 1/p.StartRate)
		rng := stats.NewRNG(seed, fmt.Sprintf("session/%d", si))
		out = append(out, generateSession(p, si, start, system, rng)...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Arrival < out[j].Arrival })
	return out, nil
}

// TestSourceMatchesLegacyGenerate pins stream-vs-slice equivalence for
// the session generator across seeds and profile shapes, including
// overlapping sessions (high start rate) where the lazy merge is
// actually interleaving many cursors.
func TestSourceMatchesLegacyGenerate(t *testing.T) {
	profiles := map[string]Profile{
		"agentloop": AgentLoop(12, 5, 2),
		"overlap": func() Profile {
			p := AgentLoop(20, 4, 3)
			p.StartRate = 10 // near-simultaneous starts: deep merge interleave
			return p
		}(),
		"nobranch": func() Profile {
			p := AgentLoop(8, 6, 0)
			p.PhaseGapMean, p.TurnGapMean = 0, 0 // arrival ties inside a session
			return p
		}(),
	}
	seeds := []uint64{1, 2, 3, 7, 42, 1337, 99991, 1 << 40}
	for name, p := range profiles {
		for _, seed := range seeds {
			want, err := legacyGenerate(p, seed)
			if err != nil {
				t.Fatalf("%s/seed %d: legacy: %v", name, seed, err)
			}
			src, err := NewSource(p, seed)
			if err != nil {
				t.Fatalf("%s/seed %d: NewSource: %v", name, seed, err)
			}
			got := engine.Collect(src)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s/seed %d: streamed output diverges from legacy slice", name, seed)
			}
			viaGen, err := Generate(p, seed)
			if err != nil {
				t.Fatalf("%s/seed %d: Generate: %v", name, seed, err)
			}
			if !reflect.DeepEqual(viaGen, want) {
				t.Fatalf("%s/seed %d: collector Generate diverges from legacy slice", name, seed)
			}
		}
	}
}
