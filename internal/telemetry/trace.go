package telemetry

import (
	"sort"
	"sync"

	"edgereasoning/internal/stats"
)

// Tracer is the recording interface a producer (an engine serve loop)
// holds. The concrete recorder is a *Track; a nil Tracer disables
// tracing — every producer call site guards on nil, so the traced-off
// hot path is a branch, not a virtual call.
type Tracer interface {
	// Record copies one span into the track's bounded ring.
	Record(Span)
	// Gauge and CounterSeries return the track-labeled series, creating
	// it on first use.
	Gauge(name string) *Series
	CounterSeries(name string) *Series
	// Histogram returns the track-labeled fixed-bucket histogram,
	// creating it on first use (bounds must match across calls).
	Histogram(name string, bounds []float64) *stats.Histogram
}

// Config sizes a Trace. The zero value gets usable defaults.
type Config struct {
	// SpanCap bounds spans retained per track; older spans are
	// overwritten ring-style and counted as dropped. Default 32768.
	SpanCap int
	// SeriesCap bounds points per series; overflow thins uniformly in
	// time. Default 4096.
	SeriesCap int
	// SampleInterval is the minimum simulated-seconds gap between stored
	// samples of one series (closer samples update the last point in
	// place). Default 0 — keep every sample until SeriesCap forces
	// thinning.
	SampleInterval float64
}

func (c Config) withDefaults() Config {
	if c.SpanCap <= 0 {
		c.SpanCap = 32768
	}
	if c.SeriesCap <= 0 {
		c.SeriesCap = 4096
	}
	return c
}

// Trace owns a run's telemetry: the track registry, the series and
// histogram registries, and the flow-ID counter. Track registration and
// series/histogram lookup take a mutex (replica drains register their
// series concurrently at serve start); recording into a track or
// sampling a series is lock-free single-writer.
type Trace struct {
	cfg Config

	mu     sync.Mutex
	tracks []*Track
	series []*Series
	byKey  map[string]*Series
	hists  []*histEntry
	histBy map[string]*histEntry
	flow   uint64
}

type histEntry struct {
	name, label string
	h           *stats.Histogram
}

// New builds an empty trace.
func New(cfg Config) *Trace {
	return &Trace{
		cfg:    cfg.withDefaults(),
		byKey:  make(map[string]*Series),
		histBy: make(map[string]*histEntry),
	}
}

// Track registers (or returns) the named track. Registration order is
// the export order, so register shared tracks (ingress, faults) before
// replica tracks for a stable Perfetto layout.
func (t *Trace) Track(name string) *Track {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, tr := range t.tracks {
		if tr.name == name {
			return tr
		}
	}
	tr := &Track{trace: t, name: name, spans: make([]Span, 0, t.cfg.SpanCap)}
	t.tracks = append(t.tracks, tr)
	return tr
}

// Tracks returns the registered tracks in registration order.
func (t *Trace) Tracks() []*Track {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Track, len(t.tracks))
	copy(out, t.tracks)
	return out
}

// NextFlow allocates a flow ID linking spans across tracks (crash abort
// to retry). IDs start at 1 so zero means "no flow".
func (t *Trace) NextFlow() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.flow++
	return t.flow
}

// GaugeSeries returns the (name, label) gauge, creating it on first use.
func (t *Trace) GaugeSeries(name, label string) *Series {
	return t.seriesFor(name, label, Gauge)
}

// CounterFor returns the (name, label) counter, creating it on first
// use.
func (t *Trace) CounterFor(name, label string) *Series {
	return t.seriesFor(name, label, Counter)
}

func (t *Trace) seriesFor(name, label string, kind SeriesKind) *Series {
	key := name + "\x00" + label
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.byKey[key]; ok {
		return s
	}
	s := &Series{
		Name: name, Label: label, Kind: kind,
		minGap: t.cfg.SampleInterval,
		pts:    make([]Point, 0, t.cfg.SeriesCap),
	}
	t.byKey[key] = s
	t.series = append(t.series, s)
	return s
}

// HistogramFor returns the (name, label) histogram, creating it on
// first use. Bounds are taken from the first call; later calls reuse
// the existing instance.
func (t *Trace) HistogramFor(name, label string, bounds []float64) *stats.Histogram {
	key := name + "\x00" + label
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.histBy[key]; ok {
		return e.h
	}
	e := &histEntry{name: name, label: label, h: stats.MustHistogram(bounds)}
	t.histBy[key] = e
	t.hists = append(t.hists, e)
	return e.h
}

// Series returns every registered series sorted by (name, label) —
// replica drains register concurrently, so registration order is not
// deterministic, but the sorted view is.
func (t *Trace) Series() []*Series {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Series, len(t.series))
	copy(out, t.series)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// MergedHistogram is one histogram name folded across all its labels
// (per-replica instances merged element-wise).
type MergedHistogram struct {
	Name   string
	Labels []string // contributing labels, sorted
	Hist   *stats.Histogram
}

// Histograms returns every histogram name merged across labels, sorted
// by name. Merging is the point of the fixed-bucket design: per-replica
// distributions fold into fleet-wide ones without re-observing.
func (t *Trace) Histograms() []MergedHistogram {
	t.mu.Lock()
	entries := make([]*histEntry, len(t.hists))
	copy(entries, t.hists)
	t.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].name != entries[j].name {
			return entries[i].name < entries[j].name
		}
		return entries[i].label < entries[j].label
	})
	var out []MergedHistogram
	for _, e := range entries {
		if n := len(out); n > 0 && out[n-1].Name == e.name {
			out[n-1].Labels = append(out[n-1].Labels, e.label)
			// Bounds mismatches cannot happen through HistogramFor (the
			// first registration fixes them per name in practice), but a
			// direct registry user could: skip rather than corrupt.
			_ = out[n-1].Hist.Merge(e.h)
			continue
		}
		out = append(out, MergedHistogram{Name: e.name, Labels: []string{e.label}, Hist: e.h.Clone()})
	}
	return out
}

// Track is one single-writer span recorder: a bounded ring that
// overwrites its oldest spans when full. A *Track is the concrete
// Tracer handed to an engine.
type Track struct {
	trace   *Trace
	name    string
	spans   []Span
	next    int // overwrite cursor once the ring is full
	dropped int
}

// Name returns the track's name.
func (tr *Track) Name() string { return tr.name }

// Dropped counts spans lost to ring overflow.
func (tr *Track) Dropped() int { return tr.dropped }

// Record copies s into the ring.
//
//edgereasoning:hotpath bench=BenchmarkTracedServeOff
func (tr *Track) Record(s Span) {
	if len(tr.spans) < cap(tr.spans) {
		tr.spans = append(tr.spans, s)
		return
	}
	tr.spans[tr.next] = s
	tr.next++
	if tr.next == len(tr.spans) {
		tr.next = 0
	}
	tr.dropped++
}

// Spans returns the retained spans in record order.
func (tr *Track) Spans() []Span {
	if tr.dropped == 0 {
		return tr.spans
	}
	out := make([]Span, 0, len(tr.spans))
	out = append(out, tr.spans[tr.next:]...)
	out = append(out, tr.spans[:tr.next]...)
	return out
}

// Gauge returns the track-labeled gauge series.
func (tr *Track) Gauge(name string) *Series { return tr.trace.GaugeSeries(name, tr.name) }

// CounterSeries returns the track-labeled counter series.
func (tr *Track) CounterSeries(name string) *Series { return tr.trace.CounterFor(name, tr.name) }

// Histogram returns the track-labeled histogram.
func (tr *Track) Histogram(name string, bounds []float64) *stats.Histogram {
	return tr.trace.HistogramFor(name, tr.name, bounds)
}

// Standard bucket tables producers share, so per-track instances merge.
var (
	// TTFTBuckets cover time-to-first-token seconds: 10 ms to ~82 s.
	TTFTBuckets = stats.ExpBuckets(0.01, 2, 13)
	// DecodeRateBuckets cover decode tokens/second: 1 to 512.
	DecodeRateBuckets = stats.ExpBuckets(1, 2, 10)
	// LatencyBuckets cover end-to-end request seconds: 50 ms to ~205 s.
	LatencyBuckets = stats.ExpBuckets(0.05, 2, 12)
)
