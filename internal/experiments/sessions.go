package experiments

import (
	"fmt"

	"edgereasoning/internal/engine"
	"edgereasoning/internal/fleet"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/model"
	"edgereasoning/internal/session"
	"edgereasoning/internal/stats"
)

func init() {
	register("sessions", sessionStudy)
}

// sessionStudy is the session-grade serving experiment: a multi-turn
// agentic workload (think/act phases over a growing shared history, with
// branch-of-N test-time scaling) served three ways. First on a single
// Orin cold — every turn re-prefills its whole history, the paper's
// single-turn serving model — then on the same Orin with the
// cross-request prefix KV cache, and finally across a small fleet where
// session-affinity routing is pitted against blind policies on prefix
// hit rate. A verify table locks the claims: warm-prefix p99 TTFT and
// saved prefill tokens must strictly beat the cold baseline, and
// affinity must beat round-robin on hit rate.
func sessionStudy(opts Options) ([]Table, error) {
	sessions := opts.SessionCount
	turns := opts.SessionTurns
	branch := opts.SessionBranch
	if sessions <= 0 {
		sessions = 10
		if opts.Quick {
			sessions = 6
		}
	}
	if turns <= 0 {
		turns = 5
		if opts.Quick {
			turns = 3
		}
	}
	if branch <= 0 {
		branch = 2
	}
	profile := session.AgentLoop(sessions, turns, branch)
	reqs, err := session.Generate(profile, opts.Seed)
	if err != nil {
		return nil, err
	}

	spec := model.MustLookup(model.DSR1Qwen1_5B)
	const maxBatch = 8
	serve := func(prefix bool) (engine.ServeMetrics, error) {
		e, err := engine.New(engine.Config{Spec: spec, Device: hw.JetsonAGXOrin64GB(), PrefixCache: prefix})
		if err != nil {
			return engine.ServeMetrics{}, err
		}
		// The stream is already arrival-sorted, so it feeds the serve loop
		// directly; results are element-identical to the slice path.
		return e.ServeSource(engine.NewSliceSource(reqs), maxBatch, engine.FCFS,
			engine.ServeOpts{SizeHint: len(reqs)})
	}
	cold, err := serve(false)
	if err != nil {
		return nil, err
	}
	warm, err := serve(true)
	if err != nil {
		return nil, err
	}

	single := Table{
		ID: "sessions",
		Title: fmt.Sprintf("Session serving: %d agentic sessions x %d turns (think/act, branch %d) on DSR1-Qwen-1.5B/Orin, cold vs prefix-cached",
			sessions, turns, branch),
		Columns: []string{"mode", "requests", "p50_ttft_s", "p99_ttft_s", "p99_lat_s",
			"hit_rate_pct", "saved_prefill_ktok", "energy_kj"},
		Notes: []string{"TTFT = queue + prefill; hit rate is token-weighted (saved / looked-up prompt tokens)"},
	}
	coldTTFT := ttftPercentiles(cold)
	warmTTFT := ttftPercentiles(warm)
	single.AddRow("cold-prefill", di(len(cold.Requests)), f2(coldTTFT[0]), f2(coldTTFT[1]),
		f2(cold.P99Latency), f1(0), f1(0), f2(cold.TotalEnergy/1e3))
	single.AddRow("warm-prefix", di(len(warm.Requests)), f2(warmTTFT[0]), f2(warmTTFT[1]),
		f2(warm.P99Latency), f1(warm.PrefixHitRate()*100), f1(float64(warm.SavedPrefillTokens)/1e3),
		f2(warm.TotalEnergy/1e3))

	// Fleet leg: the same stream across three Orin power modes, prefix
	// caches on everywhere, so the only variable is where a session's
	// turns land relative to their history.
	policies := []fleet.Policy{fleet.RoundRobin, fleet.LeastQueue, fleet.SessionAffinity}
	if opts.SessionPolicy != "" && opts.SessionPolicy != "all" {
		p, err := fleet.ParsePolicy(opts.SessionPolicy)
		if err != nil {
			return nil, err
		}
		policies = []fleet.Policy{p}
	}
	cache := map[fleet.Policy]fleet.Metrics{}
	fleetRun := func(p fleet.Policy) (fleet.Metrics, error) {
		if m, ok := cache[p]; ok {
			return m, nil
		}
		cfg := fleet.Config{
			Replicas:    fleet.HeterogeneousReplicas(3, fleet.DefaultDevices(), spec),
			Policy:      p,
			PrefixCache: true,
		}
		m, err := fleet.ServeSource(cfg, engine.NewSliceSource(reqs))
		if err != nil {
			return fleet.Metrics{}, err
		}
		cache[p] = m
		return m, nil
	}
	affinity := Table{
		ID:      "sessions-affinity",
		Title:   "Session routing across a 3-replica Orin fleet (prefix caches on): where do a session's turns land?",
		Columns: []string{"policy", "served", "hit_rate_pct", "saved_prefill_ktok", "p99_ttft_s", "p99_s"},
		Notes:   []string{"session-affinity pins turns to the replica holding the session's prefix KV, falling back least-connections"},
	}
	for _, p := range policies {
		m, err := fleetRun(p)
		if err != nil {
			return nil, err
		}
		affinity.AddRow(p.String(), di(m.Served), f1(m.PrefixHitRate()*100),
			f1(float64(m.SavedPrefillTokens)/1e3), f2(fleetTTFTP99(m)), f2(m.P99Latency))
	}

	rr, err := fleetRun(fleet.RoundRobin)
	if err != nil {
		return nil, err
	}
	aff, err := fleetRun(fleet.SessionAffinity)
	if err != nil {
		return nil, err
	}
	check := func(ok bool) string {
		if ok {
			return "pass"
		}
		return "FAIL"
	}
	verify := Table{
		ID:      "sessions-verify",
		Title:   "Sessions verify: prefix reuse and session-affinity routing against their blind baselines",
		Columns: []string{"metric", "baseline", "prefix-aware", "check"},
		Notes:   []string{"warm-prefix must strictly beat cold prefill on tail TTFT and saved prefill; affinity must beat round-robin on hit rate"},
	}
	verify.AddRow("p99_ttft_s (cold vs warm)", f2(coldTTFT[1]), f2(warmTTFT[1]), check(warmTTFT[1] < coldTTFT[1]))
	verify.AddRow("saved_prefill_tok (cold vs warm)", di(cold.SavedPrefillTokens), di(warm.SavedPrefillTokens),
		check(warm.SavedPrefillTokens > cold.SavedPrefillTokens))
	verify.AddRow("fleet_hit_rate_pct (rr vs affinity)", f1(rr.PrefixHitRate()*100), f1(aff.PrefixHitRate()*100),
		check(aff.PrefixHitRate() > rr.PrefixHitRate()))
	return []Table{single, affinity, verify}, nil
}

// ttftPercentiles returns the p50/p99 time-to-first-token (queue +
// host-tier restore + prefill) over a run's completions.
func ttftPercentiles(m engine.ServeMetrics) [2]float64 {
	ttfts := make([]float64, 0, len(m.Requests))
	for _, r := range m.Requests {
		ttfts = append(ttfts, r.QueueTime+r.RestoreTime+r.PrefillTime)
	}
	if len(ttfts) == 0 {
		return [2]float64{}
	}
	p := stats.Percentiles(ttfts, 50, 99)
	return [2]float64{p[0], p[1]}
}

// fleetTTFTP99 pools per-request TTFT across every replica.
func fleetTTFTP99(m fleet.Metrics) float64 {
	var ttfts []float64
	for _, rm := range m.Replicas {
		for _, r := range rm.Requests {
			ttfts = append(ttfts, r.QueueTime+r.RestoreTime+r.PrefillTime)
		}
	}
	if len(ttfts) == 0 {
		return 0
	}
	return stats.Percentiles(ttfts, 99)[0]
}
