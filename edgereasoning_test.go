package edgereasoning

import (
	"fmt"
	"math"
	"testing"
	"time"

	"edgereasoning/internal/engine"
)

// engineRequest builds a small indexed request for serving tests.
func engineRequest(i int) engine.Request {
	return engine.Request{ID: fmt.Sprintf("r%d", i), PromptTokens: 128, OutputTokens: 40}
}

func TestDeployAndPredict(t *testing.T) {
	p := NewOrinPlatform()
	dep, err := p.Deploy(DSR1Qwen14B)
	if err != nil {
		t.Fatal(err)
	}
	lat := dep.PredictLatency(180, 256)
	// ~256 tokens at ~0.19 s/token ≈ 48-55 s.
	if lat < 35 || lat > 75 {
		t.Errorf("14B latency for 256 tokens = %.1fs, want ~50", lat)
	}
	tbt := dep.PredictTBT(512)
	if math.Abs(tbt-0.187)/0.187 > 0.2 {
		t.Errorf("14B TBT = %.3f, paper 0.187", tbt)
	}
}

func TestDeployUnknownModel(t *testing.T) {
	if _, err := NewOrinPlatform().Deploy("nonexistent"); err == nil {
		t.Error("unknown model must fail")
	}
}

func TestDeployQuantizedVariant(t *testing.T) {
	p := NewOrinPlatform()
	base, err := p.Deploy(DSR1Llama8B)
	if err != nil {
		t.Fatal(err)
	}
	w4, err := p.Deploy(DSR1Llama8B + "-w4")
	if err != nil {
		t.Fatal(err)
	}
	if w4.PredictTBT(512) >= base.PredictTBT(512) {
		t.Error("quantized TBT must undercut FP16")
	}
}

func TestMaxTokensWithinDeadline(t *testing.T) {
	p := NewOrinPlatform()
	dep, err := p.Deploy(DSR1Qwen14B)
	if err != nil {
		t.Fatal(err)
	}
	n := dep.MaxTokensWithin(180, 21*time.Second)
	if n < 85 || n > 140 {
		t.Errorf("tokens within 21s = %d, paper implies ~113", n)
	}
}

func TestGenerateThroughEngine(t *testing.T) {
	p := NewOrinPlatform()
	dep, err := p.Deploy(DSR1Qwen1_5B)
	if err != nil {
		t.Fatal(err)
	}
	g, err := dep.Generate(128, 512)
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalTime() <= 0 || g.Energy <= 0 || g.AvgPower <= 0 {
		t.Errorf("implausible generation result: %+v", g)
	}
	if g.DecodeTime < g.PrefillTime {
		t.Error("decode must dominate")
	}
}

func TestEvaluateBenchmark(t *testing.T) {
	p := NewOrinPlatform()
	dep, err := p.Deploy(DSR1Llama8B)
	if err != nil {
		t.Fatal(err)
	}
	r, err := dep.Evaluate(MMLURedux, Base(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Accuracy-0.617) > 0.03 {
		t.Errorf("8B Base accuracy = %.3f, paper 0.617", r.Accuracy)
	}
	if r.MeanLatency < 50 || r.MeanLatency > 130 {
		t.Errorf("8B Base latency = %.1fs, paper 87.2", r.MeanLatency)
	}
}

func TestEvaluateParallelScaling(t *testing.T) {
	p := NewOrinPlatform()
	dep, err := p.Deploy(DSR1Qwen14B)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := dep.Evaluate(MMLURedux, Hard(128), 1)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := dep.Evaluate(MMLURedux, Hard(128), 8)
	if err != nil {
		t.Fatal(err)
	}
	if r8.Accuracy <= r1.Accuracy {
		t.Errorf("SF8 (%.3f) should beat SF1 (%.3f)", r8.Accuracy, r1.Accuracy)
	}
	// Parallel scaling adds only modest latency (Takeaway #9).
	if r8.MeanLatency > 2*r1.MeanLatency {
		t.Errorf("SF8 latency %.1fs vs SF1 %.1fs: overhead too large", r8.MeanLatency, r1.MeanLatency)
	}
}

func TestPlanRecipeBudgets(t *testing.T) {
	p := NewOrinPlatform()
	fast, ok, err := p.PlanRecipe(MMLURedux, 3*time.Second)
	if err != nil || !ok {
		t.Fatalf("3s plan: ok=%v err=%v", ok, err)
	}
	slow, ok, err := p.PlanRecipe(MMLURedux, 5*time.Minute)
	if err != nil || !ok {
		t.Fatalf("5m plan: ok=%v err=%v", ok, err)
	}
	if fast.Latency > 3 {
		t.Errorf("fast recipe misses budget: %.1fs", fast.Latency)
	}
	if slow.Accuracy <= fast.Accuracy {
		t.Error("larger budget must buy more accuracy")
	}
}

func TestPlanRecipeWithEnergy(t *testing.T) {
	p := NewOrinPlatform()
	free, ok, err := p.PlanRecipeWithEnergy(MMLURedux, 5*time.Minute, 0)
	if err != nil || !ok {
		t.Fatalf("unconstrained: %v %v", ok, err)
	}
	capped, ok, err := p.PlanRecipeWithEnergy(MMLURedux, 5*time.Minute, 150)
	if err != nil || !ok {
		t.Fatalf("capped: %v %v", ok, err)
	}
	if capped.EnergyPerQ > 150 {
		t.Errorf("energy cap violated: %.0f J", capped.EnergyPerQ)
	}
	if capped.Accuracy > free.Accuracy {
		t.Error("an energy cap cannot improve accuracy")
	}
}

func TestFrontierShape(t *testing.T) {
	front, err := NewOrinPlatform().Frontier(MMLURedux)
	if err != nil {
		t.Fatal(err)
	}
	if len(front) < 3 {
		t.Fatalf("frontier too small: %d", len(front))
	}
	for i := 1; i < len(front); i++ {
		if front[i].Accuracy <= front[i-1].Accuracy || front[i].Latency <= front[i-1].Latency {
			t.Error("frontier must strictly improve in both axes")
		}
	}
}

func TestModelsCatalog(t *testing.T) {
	ms := Models()
	if len(ms) != 10 {
		t.Fatalf("catalog size = %d, want 10", len(ms))
	}
	var reasoning, direct int
	for _, m := range ms {
		if m.Params <= 0 || m.DisplayName == "" {
			t.Errorf("bad catalog entry: %+v", m)
		}
		if m.Reasoning {
			reasoning++
		} else {
			direct++
		}
	}
	if reasoning < 4 || direct < 4 {
		t.Errorf("catalog split wrong: %d reasoning, %d direct", reasoning, direct)
	}
}

func TestEdgeCostMatchesPaper(t *testing.T) {
	got := EdgeCost(0.0317*3.6e6, 4358, 195624)
	if math.Abs(got-0.302) > 0.005 {
		t.Errorf("edge cost = %.4f, paper 0.302", got)
	}
}

func TestRunExperimentQuick(t *testing.T) {
	tables, err := RunExperimentQuick("table2")
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 || len(tables[0].Rows) == 0 {
		t.Error("experiment produced nothing")
	}
}

func TestExperimentIDsNonEmpty(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 20 {
		t.Errorf("only %d experiment ids", len(ids))
	}
}

func TestCPUPlatform(t *testing.T) {
	p := NewOrinCPUPlatform()
	dep, err := p.Deploy(DSR1Qwen1_5B)
	if err != nil {
		t.Fatal(err)
	}
	gpuDep, err := NewOrinPlatform().Deploy(DSR1Qwen1_5B)
	if err != nil {
		t.Fatal(err)
	}
	if dep.PredictTBT(512) <= gpuDep.PredictTBT(512) {
		t.Error("CPU TBT must exceed GPU TBT")
	}
}

func TestServeOpenLoop(t *testing.T) {
	p := NewOrinPlatform()
	dep, err := p.Deploy(Qwen25_7Bit)
	if err != nil {
		t.Fatal(err)
	}
	var reqs []TimedRequest
	for i := 0; i < 12; i++ {
		reqs = append(reqs, TimedRequest{
			Request: engineRequest(i),
			Arrival: float64(i) * 3,
		})
	}
	res, err := dep.Serve(reqs, 4, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 12 {
		t.Fatalf("served %d of 12", res.Requests)
	}
	if !(res.P50Latency <= res.P95Latency && res.P95Latency <= res.P99Latency) {
		t.Error("percentiles out of order")
	}
	if res.HitRate != 1 {
		t.Error("no deadlines -> hit rate must be 1")
	}
}

func TestVerifyReproductionAnchors(t *testing.T) {
	if testing.Short() {
		t.Skip("full scorecard in -short mode")
	}
	anchors, err := VerifyReproduction()
	if err != nil {
		t.Fatal(err)
	}
	if len(anchors) < 15 {
		t.Fatalf("only %d anchors", len(anchors))
	}
	failed := 0
	for _, a := range anchors {
		if !a.Pass() {
			failed++
			t.Logf("anchor %s: paper %.3f measured %.3f", a.Name, a.Paper, a.Measured)
		}
	}
	if failed > 0 {
		t.Errorf("%d/%d anchors outside tolerance", failed, len(anchors))
	}
}

func TestWithSeedIsolated(t *testing.T) {
	p := NewOrinPlatform()
	q := p.WithSeed(99)
	if p.seed == q.seed {
		t.Error("WithSeed must change the seed")
	}
	if p.DeviceName() != q.DeviceName() {
		t.Error("WithSeed must keep the device")
	}
}
