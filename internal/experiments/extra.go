package experiments

import (
	"edgereasoning/internal/control"
	"edgereasoning/internal/data"
	"edgereasoning/internal/engine"
	"edgereasoning/internal/frameworks"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/llm"
	"edgereasoning/internal/model"
)

func init() {
	register("table12", table12MMLU15k)
	register("naturalplan", naturalPlan)
}

// frameworkProfiles and engine helpers shared with the Table IX driver.
func frameworkProfiles() []engine.Overhead { return frameworks.Profiles() }

func engineWithProfile(o engine.Overhead) (*engine.Engine, error) {
	return engine.New(engine.Config{
		Spec:      model.MustLookup(model.DSR1Llama8B),
		Device:    hw.JetsonAGXOrin64GB(),
		Framework: o,
	})
}

func engineRequest(in, out int) engine.Request {
	return engine.Request{ID: "bench", PromptTokens: in, OutputTokens: out}
}

// evalCell runs a twin over a bank and returns (accuracy, mean tokens).
func evalCell(id model.ID, bank *data.Bank, sub *data.Bank, pol control.Policy, seed uint64) (float64, float64, error) {
	spec, err := model.Lookup(id)
	if err != nil {
		return 0, 0, err
	}
	tw := llm.NewTwin(spec, bank, seed)
	correct, tokens := 0, 0
	for _, q := range sub.Questions {
		g, err := tw.Generate(q, pol)
		if err != nil {
			return 0, 0, err
		}
		if g.Correct {
			correct++
		}
		tokens += g.OutputTokens
	}
	n := float64(sub.Size())
	return float64(correct) / n, float64(tokens) / n, nil
}

// table12MMLU15k reproduces Table XII: the 15k-question MMLU grid of
// base, budgeted, and quantized DSR1 models.
func table12MMLU15k(opts Options) ([]Table, error) {
	bank := data.MustLoad(data.MMLU, opts.Seed)
	sub := bank.Subsample(opts.sample(bank.Size()))
	t := Table{
		ID: "table12", Title: "MMLU (15k questions): base, budgeted, and W4-quantized DSR1 models",
		Columns: []string{"model", "configuration", "acc_pct", "avg_toks"},
	}
	type row struct {
		id    model.ID
		pol   control.Policy
		label string
	}
	var rows []row
	for _, base := range []model.ID{model.DSR1Qwen1_5B, model.DSR1Llama8B, model.DSR1Qwen14B} {
		w4 := base + "-w4"
		rows = append(rows,
			row{base, control.BasePolicy(), "Base"},
			row{base, control.HardLimit(128), "Budget 128T"},
			row{base, control.HardLimit(256), "Budget 256T"},
			row{w4, control.BasePolicy(), "LLMC-AWQ-W4"},
			row{w4, control.HardLimit(128), "W4 Budget 128T"},
			row{w4, control.HardLimit(256), "W4 Budget 256T"},
		)
	}
	for _, r := range rows {
		acc, toks, err := evalCell(r.id, bank, sub, r.pol, opts.Seed)
		if err != nil {
			return nil, err
		}
		t.AddRow(string(r.id), r.label, pct(acc), f1(toks))
	}
	return []Table{t}, nil
}

// naturalPlan reproduces Tables XIII-XV: the three Natural-Plan tasks
// under base reasoning, NR+512T budgeting, and direct Qwen2.5 models,
// with engine-timed latency.
func naturalPlan(opts Options) ([]Table, error) {
	baseline := Table{
		ID: "table13", Title: "Natural-Plan: baseline reasoning models",
		Columns: []string{"task", "model", "acc_pct", "avg_toks", "latency_h100_s"},
		Notes: []string{
			"latency is H100-timed: the paper's artifact runs Natural-Plan on server hosts ('make planner'), which is why its Table XIII latencies are ~10x below Orin decode rates",
		},
	}
	budget := Table{
		ID: "table14", Title: "Natural-Plan: budgeting (NR + hard limit at 512)",
		Columns: []string{"task", "model", "acc_pct", "avg_toks", "latency_h100_s"},
	}
	direct := Table{
		ID: "table15", Title: "Natural-Plan: direct models (Qwen2.5)",
		Columns: []string{"task", "model", "acc_pct", "avg_toks", "latency_h100_s"},
	}
	addRows := func(t *Table, ids []model.ID, pol control.Policy) error {
		for _, task := range data.NaturalPlanTasks() {
			bank := data.MustLoad(task, opts.Seed)
			sub := bank.Subsample(opts.sample(bank.Size()))
			for _, id := range ids {
				if _, ok := llm.Calibrated(id, task, pol.Key()); !ok {
					continue
				}
				acc, toks, err := evalCell(id, bank, sub, pol, opts.Seed)
				if err != nil {
					return err
				}
				spec := model.MustLookup(id)
				// Natural-Plan ran on server hosts in the paper's artifact.
				eng, err := engine.New(engine.Config{Spec: spec, Device: hw.H100SXM()})
				if err != nil {
					return err
				}
				prompt := meanPrompt(sub)
				m, err := eng.Generate(engine.Request{ID: "np", PromptTokens: prompt, OutputTokens: int(toks + 0.5)})
				if err != nil {
					return err
				}
				t.AddRow(string(task), string(id), pct(acc), f1(toks), f2(m.TotalTime()))
			}
		}
		return nil
	}
	reasoning := []model.ID{model.DSR1Qwen1_5B, model.DSR1Llama8B, model.DSR1Qwen14B}
	if err := addRows(&baseline, reasoning, control.BasePolicy()); err != nil {
		return nil, err
	}
	if err := addRows(&budget, reasoning, control.HardLimit(512)); err != nil {
		return nil, err
	}
	if err := addRows(&direct, []model.ID{model.Qwen25_1_5Bit, model.Qwen25_14Bit}, control.DirectAnswer()); err != nil {
		return nil, err
	}
	return []Table{baseline, budget, direct}, nil
}

func meanPrompt(b *data.Bank) int {
	if b.Size() == 0 {
		return 1
	}
	sum := 0
	for _, q := range b.Questions {
		sum += q.PromptTokens
	}
	return sum / b.Size()
}
