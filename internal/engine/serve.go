package engine

import (
	"fmt"
	"sort"

	"edgereasoning/internal/stats"
)

// TimedRequest is a request with an arrival time and an optional absolute
// deadline, for open-loop serving studies (QPS sweeps, SLA audits).
// Session-grade workloads additionally carry token identities and a
// session tag; plain open-loop streams leave them zero.
type TimedRequest struct {
	Request
	Arrival  float64 // seconds on the simulated clock
	Deadline float64 // absolute seconds; 0 means no deadline
	// SessionID groups the turns of one multi-turn conversation; routing
	// policies with session affinity key on it ("" means sessionless).
	SessionID string
	// PromptSyms are per-token content identities for the prompt (the
	// simulator's stand-in for token IDs). When the engine has a prefix
	// cache and len(PromptSyms) >= PromptTokens, admission matches the
	// longest cached prefix and prefills only the unmatched suffix.
	PromptSyms []uint64
	// OutputSyms identify the generated tokens (the workload generator
	// decides output lengths ahead of execution, so it knows them). They
	// let a finished sequence's full prompt+output history be retained
	// for the session's next turn.
	OutputSyms []uint64
}

// SchedPolicy selects the ready-queue discipline.
type SchedPolicy int

const (
	// FCFS admits in arrival order.
	FCFS SchedPolicy = iota
	// EDF admits earliest-deadline-first (deadline-less requests last).
	EDF
)

// String names the policy.
func (p SchedPolicy) String() string {
	if p == EDF {
		return "EDF"
	}
	return "FCFS"
}

// ServeMetrics extends BatchMetrics with latency percentiles, deadline
// accounting, and prefix-cache accounting over an open-loop run.
type ServeMetrics struct {
	BatchMetrics
	P50Latency     float64
	P95Latency     float64
	P99Latency     float64
	MeanLatency    float64
	DeadlinesMet   int
	DeadlinesTotal int
	// Latencies holds per-request (finish − arrival), in completion order.
	Latencies []float64
	// PrefixLookups counts admissions that consulted the prefix cache;
	// PrefixHits those that matched at least one block;
	// PrefixLookupTokens sums the prompt tokens of consulted admissions.
	// All stay zero without a prefix cache or without PromptSyms on the
	// requests.
	PrefixLookups      int
	PrefixHits         int
	PrefixLookupTokens int
	// SavedPrefillTokens is the prefill work the prefix cache avoided.
	SavedPrefillTokens int
}

// PrefixHitRate is the token-weighted cache hit rate — saved prefill
// tokens over prompt tokens that consulted the cache (the convention
// vLLM and SGLang report) — or 0 when the cache was never consulted.
func (s ServeMetrics) PrefixHitRate() float64 {
	if s.PrefixLookupTokens == 0 {
		return 0
	}
	return float64(s.SavedPrefillTokens) / float64(s.PrefixLookupTokens)
}

// HitRate returns the fraction of deadline-bearing requests that met
// their deadline (1.0 when none carry deadlines).
func (s ServeMetrics) HitRate() float64 {
	if s.DeadlinesTotal == 0 {
		return 1
	}
	return float64(s.DeadlinesMet) / float64(s.DeadlinesTotal)
}

// Serve executes an open-loop workload: requests become visible at their
// arrival times, are admitted per the scheduling policy up to maxBatch
// concurrent decoders, and complete under the same continuous-batching
// loop as Run. The engine clock must be at or before the earliest arrival.
func (e *Engine) Serve(reqs []TimedRequest, maxBatch int, policy SchedPolicy) (ServeMetrics, error) {
	if maxBatch <= 0 {
		maxBatch = 1
	}
	pending := make([]TimedRequest, len(reqs))
	copy(pending, reqs)
	sort.SliceStable(pending, func(i, j int) bool { return pending[i].Arrival < pending[j].Arrival })
	if len(pending) > 0 && e.clock > pending[0].Arrival {
		return ServeMetrics{}, fmt.Errorf("engine: clock %.3f already past first arrival %.3f", e.clock, pending[0].Arrival)
	}

	var ready []TimedRequest
	active := make([]*activeSeq, 0, maxBatch)
	// Arena of sequence bookkeeping: fixed-size, so slot pointers are
	// stable for the run's lifetime.
	arena := make([]activeSeq, len(reqs))
	admitted := 0
	var out ServeMetrics
	out.Requests = make([]Metrics, 0, len(reqs))
	out.Latencies = make([]float64, 0, len(reqs))

	blocksFor := func(tokens int) int {
		if tokens <= 0 {
			return 0
		}
		return (tokens + e.cfg.BlockSize - 1) / e.cfg.BlockSize
	}
	// futureGrowth reserves the active set's worst-case remaining block
	// demand, maintained incrementally (admit adds, append subtracts)
	// instead of rescanned per admission attempt.
	futureGrowth := 0
	ctxs := make([]int, 0, maxBatch) // scratch, reused every decode event
	promote := func() {
		for len(pending) > 0 && pending[0].Arrival <= e.clock+1e-12 {
			ready = append(ready, pending[0])
			pending = pending[1:]
		}
		if policy == EDF {
			sort.SliceStable(ready, func(i, j int) bool {
				di, dj := ready[i].Deadline, ready[j].Deadline
				if di == 0 {
					return false
				}
				if dj == 0 {
					return true
				}
				return di < dj
			})
		}
	}
	finish := func(s *activeSeq) error {
		if e.prefix != nil && len(s.promptSyms) >= s.req.PromptTokens {
			// Retain the finished history (prompt + known output identities)
			// for the session's next turn instead of dropping the blocks.
			outSyms := s.outputSyms
			if len(outSyms) > s.req.OutputTokens {
				outSyms = outSyms[:s.req.OutputTokens]
			}
			if err := e.prefix.Release(s.handle, s.promptSyms[:s.req.PromptTokens], outSyms); err != nil {
				return err
			}
		} else if err := e.cache.FreeH(s.handle); err != nil {
			return err
		}
		lat := e.clock - s.arrival
		out.Latencies = append(out.Latencies, lat)
		if s.deadline > 0 {
			out.DeadlinesTotal++
			if e.clock <= s.deadline {
				out.DeadlinesMet++
			}
		}
		s.metrics.QueueTime = lat - s.metrics.TotalTime()
		out.Requests = append(out.Requests, s.metrics)
		out.TotalTokens += s.req.PromptTokens + s.req.OutputTokens
		return nil
	}

	start := e.clock
	for len(pending) > 0 || len(ready) > 0 || len(active) > 0 {
		promote()
		// Idle: jump to the next arrival.
		if len(active) == 0 && len(ready) == 0 {
			if len(pending) == 0 {
				break
			}
			e.clock = pending[0].Arrival
			continue
		}
		// Admit from the ready queue.
		for len(ready) > 0 && len(active) < maxBatch {
			tr := ready[0]
			if tr.PromptTokens <= 0 {
				return out, fmt.Errorf("engine: request %q has no prompt", tr.ID)
			}
			worstCase := blocksFor(tr.PromptTokens + tr.OutputTokens)
			// With a prefix cache, retained blocks are reclaimable
			// capacity. Probe first — touching the matched chain makes it
			// MRU, so eviction spares it — then evict cold prefixes until
			// the unmatched demand fits. Under extreme pressure eviction
			// can still trim the probed chain itself (growing the demand),
			// so re-probe and repeat until the demand fits or nothing is
			// left to evict; the final probe is exactly what Acquire finds.
			var syms []uint64
			probedBlocks := 0
			if e.prefix != nil {
				if len(tr.PromptSyms) >= tr.PromptTokens {
					syms = tr.PromptSyms[:tr.PromptTokens]
					probedBlocks = e.prefix.Probe(syms)
				}
				for worstCase-probedBlocks+futureGrowth > e.cache.FreeBlocks() {
					before := e.prefix.Metrics().Evictions
					e.prefix.EnsureFree(worstCase - probedBlocks + futureGrowth)
					if e.prefix.Metrics().Evictions == before {
						break
					}
					if syms != nil {
						probedBlocks = e.prefix.Probe(syms)
					}
				}
			}
			if worstCase-probedBlocks+futureGrowth > e.cache.FreeBlocks() {
				if len(active) > 0 {
					break
				}
				return out, fmt.Errorf("engine: request %q exceeds KV capacity even alone", tr.ID)
			}
			ready = ready[1:]
			matched := 0
			if syms != nil {
				m, err := e.prefix.Acquire(tr.ID, syms)
				if err != nil {
					return out, err
				}
				matched = m
				out.PrefixLookups++
				out.PrefixLookupTokens += tr.PromptTokens
				if matched > 0 {
					out.PrefixHits++
					out.SavedPrefillTokens += matched
				}
			} else if err := e.cache.Allocate(tr.ID, tr.PromptTokens); err != nil {
				return out, err
			}
			s := &arena[admitted]
			admitted++
			*s = activeSeq{req: tr.Request, ctx: tr.PromptTokens, remaining: tr.OutputTokens,
				arrival: tr.Arrival, deadline: tr.Deadline}
			if e.prefix != nil {
				s.promptSyms, s.outputSyms = tr.PromptSyms, tr.OutputSyms
			}
			h, err := e.cache.Lookup(tr.ID)
			if err != nil {
				return out, err
			}
			s.handle = h
			if err := e.cache.ReserveH(h, tr.PromptTokens+tr.OutputTokens); err != nil {
				return out, err
			}
			if syms != nil {
				// Acquire seeded only the matched blocks; append the
				// suffix the prefill below computes (the whole prompt on a
				// cold start).
				if err := e.cache.AppendTokensH(h, tr.PromptTokens-matched); err != nil {
					return out, err
				}
			}
			futureGrowth += worstCase - blocksFor(tr.PromptTokens)
			s.metrics = Metrics{ID: tr.ID, PromptTokens: tr.PromptTokens,
				OutputTokens: tr.OutputTokens, CachedPromptTokens: matched}
			res, err := e.prefill(tr.PromptTokens - matched)
			if err != nil {
				return out, err
			}
			e.clock += res.Time
			s.metrics.PrefillTime = res.Time
			s.metrics.PrefillEnergy = e.meter.Energy(res)
			out.TotalEnergy += s.metrics.PrefillEnergy
			active = append(active, s)
			promote()
		}
		if len(active) == 0 {
			continue
		}
		// Decode until the next event: completion, arrival, or the
		// admission grain.
		chunk := active[0].remaining
		for _, s := range active {
			if s.remaining < chunk {
				chunk = s.remaining
			}
		}
		if chunk <= 0 {
			var err error
			if active, err = reap(active, finish); err != nil {
				return out, err
			}
			continue
		}
		const admitGrain = 16
		if (len(pending) > 0 || len(ready) > 0) && chunk > admitGrain {
			chunk = admitGrain
		}
		ctxs = ctxs[:0]
		for _, s := range active {
			ctxs = append(ctxs, s.ctx)
		}
		res := e.decodeChunk(ctxs, chunk)
		energy := e.meter.Energy(res)
		e.clock += res.Time
		out.TotalEnergy += energy
		perSeqEnergy := energy / float64(len(active))
		for _, s := range active {
			if err := e.cache.AppendTokensH(s.handle, chunk); err != nil {
				return out, err
			}
			futureGrowth -= blocksFor(s.ctx+chunk) - blocksFor(s.ctx)
			s.ctx += chunk
			s.remaining -= chunk
			s.metrics.DecodeTime += res.Time
			s.metrics.DecodeEnergy += perSeqEnergy
		}
		var err error
		if active, err = reap(active, finish); err != nil {
			return out, err
		}
	}
	out.WallTime = e.clock - start
	out.PeakKVBlocks = e.cache.PeakUsed()
	if len(out.Latencies) > 0 {
		out.MeanLatency = stats.Mean(out.Latencies)
		p := stats.Percentiles(out.Latencies, 50, 95, 99)
		out.P50Latency, out.P95Latency, out.P99Latency = p[0], p[1], p[2]
	}
	return out, nil
}
