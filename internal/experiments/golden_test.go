package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenReports locks byte-exact renderings of representative
// drivers at the default seed: the scheduler comparison (guarding the
// deterministic-report fix), the fleet sweep (guarding its verify table,
// including its pass marks), the session study (guarding the
// prefix-cache wins — warm TTFT, saved prefill, affinity hit rate — as
// rendered pass marks), the autoscale study (guarding the elastic-
// vs-fixed and shed-vs-FIFO verify marks plus the scale-event
// timeline), the saturation study (guarding the knee-vs-fleet-size
// scaling and the analyzer's typed edge errors), and the tiering study
// (guarding the host-tier verify marks — starved-point hit rate, warm
// tail TTFT, token identity), and the outage drills (guarding the
// recovery verify marks — retry+health beating abandonment on served
// and hit rate at every fault point, with exact conservation).
// Regenerate intentionally with
//
//	go test ./internal/experiments -run TestGoldenReports -update
func TestGoldenReports(t *testing.T) {
	for _, id := range []string{"sched", "fleet", "sessions", "tiering", "autoscale", "saturate", "drills", "breakdown"} {
		t.Run(id, func(t *testing.T) {
			tables, err := Run(id, Options{Seed: 7, Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			for i := range tables {
				if err := tables[i].Render(&buf); err != nil {
					t.Fatal(err)
				}
			}
			golden := filepath.Join("testdata", id+"_seed7_quick.golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s report drifted from golden file %s.\nIf the change is intentional, regenerate with -update.\ngot:\n%s\nwant:\n%s",
					id, golden, buf.Bytes(), want)
			}
		})
	}
}
