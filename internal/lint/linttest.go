package lint

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
)

// expectation is one `// want "regex"` mark in a fixture file.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// CheckFixture loads the fixture package at pkgPath under srcRoot,
// runs one analyzer over it, and compares the diagnostics against the
// `// want "regex"` expectations in the fixture sources —
// analysistest's contract, implemented over the offline loader. It
// returns one error message per mismatch (unexpected diagnostic, or
// unmatched expectation).
func CheckFixture(a *Analyzer, srcRoot, pkgPath string) ([]string, error) {
	loader := NewFixtureLoader(srcRoot)
	pkg, err := loader.Load(pkgPath)
	if err != nil {
		return nil, err
	}
	diags, err := RunAnalyzers(loader.Fset(), []*Package{pkg}, []*Analyzer{a})
	if err != nil {
		return nil, err
	}

	var wants []*expectation
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := loader.Fset().Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(c.Text[idx:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}

	var problems []string
	for _, d := range diags {
		if !consume(wants, d.Pos, d.Message) {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic at %s:%d: %s", d.Pos.Filename, d.Pos.Line, d.Message))
		}
	}
	for _, w := range wants {
		if !w.matched {
			problems = append(problems, fmt.Sprintf("no diagnostic matched want %q at %s:%d", w.pattern, w.file, w.line))
		}
	}
	return problems, nil
}

func consume(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.pattern.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}
