package telemetry

import (
	"encoding/json"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// nestEps tolerates float re-rounding at span boundaries (microseconds;
// 1e-6 µs = one picosecond of simulated time).
const nestEps = 1e-6

// ValidateChromeTrace checks an exported Chrome trace-event JSON
// document: well-formed JSON with the traceEvents wrapper, only known
// phase types, non-negative timestamps and durations, globally
// non-decreasing timestamps (metadata aside), a process_name metadata
// record for every pid a content event references, no flow-finish ("f")
// without a same-id flow-start ("s") at or before it, and — on every
// (pid, tid) lane — complete spans that are properly nested: each span
// either encloses the next or is disjoint from it. A flow-start without
// a finish is legal (a crash abort whose request was never retried).
// cmd/tracecheck and the CI trace-validation step run exactly this.
func ValidateChromeTrace(data []byte) error {
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("telemetry: trace JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("telemetry: trace has no events")
	}
	known := map[string]bool{"M": true, "X": true, "i": true, "C": true, "s": true, "f": true, "t": true}
	named := map[int]bool{}
	flowStart := map[string]float64{} // flow id -> start timestamp
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			named[ev.Pid] = true
		}
		if ev.Ph == "s" {
			flowStart[ev.ID] = ev.Ts
		}
	}
	lastTs := map[[2]int][]float64{} // (pid,tid) -> stack of open span ends
	prevTs := 0.0
	seenTs := false
	for i, ev := range doc.TraceEvents {
		if !known[ev.Ph] {
			return fmt.Errorf("telemetry: event %d has unknown phase %q", i, ev.Ph)
		}
		if ev.Ph == "M" {
			continue
		}
		if ev.Name == "" {
			return fmt.Errorf("telemetry: event %d has no name", i)
		}
		if !named[ev.Pid] {
			return fmt.Errorf("telemetry: event %d (%s %q) references pid %d with no process_name metadata",
				i, ev.Ph, ev.Name, ev.Pid)
		}
		if ev.Ts < 0 {
			return fmt.Errorf("telemetry: event %d (%s %q) has negative timestamp %.3f", i, ev.Ph, ev.Name, ev.Ts)
		}
		if seenTs && ev.Ts < prevTs-nestEps {
			return fmt.Errorf("telemetry: event %d (%s %q) timestamp %.3f precedes %.3f — not monotone",
				i, ev.Ph, ev.Name, ev.Ts, prevTs)
		}
		prevTs, seenTs = ev.Ts, true
		if ev.Ph == "f" {
			st, ok := flowStart[ev.ID]
			if !ok {
				return fmt.Errorf("telemetry: event %d is a flow finish for id %q with no flow start", i, ev.ID)
			}
			if ev.Ts < st-nestEps {
				return fmt.Errorf("telemetry: flow %q finishes at %.3f before its start %.3f", ev.ID, ev.Ts, st)
			}
		}
		if ev.Ph != "X" {
			continue
		}
		if ev.Dur < 0 {
			return fmt.Errorf("telemetry: event %d (%q) has negative duration %.3f", i, ev.Name, ev.Dur)
		}
		key := [2]int{ev.Pid, ev.Tid}
		stack := lastTs[key]
		for len(stack) > 0 && stack[len(stack)-1] <= ev.Ts+nestEps {
			stack = stack[:len(stack)-1]
		}
		end := ev.Ts + ev.Dur
		if len(stack) > 0 && end > stack[len(stack)-1]+nestEps {
			return fmt.Errorf("telemetry: event %d (%q) [%.3f, %.3f] overlaps but does not nest within its enclosing span ending %.3f on pid %d tid %d",
				i, ev.Name, ev.Ts, end, stack[len(stack)-1], ev.Pid, ev.Tid)
		}
		lastTs[key] = append(stack, end)
	}
	return nil
}

// ValidateSpans checks the recorded spans directly (before export): on
// every track lane, spans sorted by start must be properly nested —
// each one either lies fully inside the previously open span or starts
// at or after its end — and no span may end before it starts. The
// breakdown driver's verify table and the tracing property tests call
// this.
func ValidateSpans(t *Trace) error {
	for _, tr := range t.Tracks() {
		lanes := map[int][]Span{}
		for _, s := range tr.Spans() {
			if s.End < s.Start {
				return fmt.Errorf("telemetry: track %s span %s/%s ends %.6f before start %.6f",
					tr.Name(), s.Kind, s.ID, s.End, s.Start)
			}
			lanes[s.Lane] = append(lanes[s.Lane], s)
		}
		laneIDs := make([]int, 0, len(lanes))
		for l := range lanes {
			laneIDs = append(laneIDs, l)
		}
		sort.Ints(laneIDs)
		for _, l := range laneIDs {
			spans := lanes[l]
			sort.SliceStable(spans, func(i, j int) bool {
				if spans[i].Start != spans[j].Start {
					return spans[i].Start < spans[j].Start
				}
				return spans[i].Dur() > spans[j].Dur()
			})
			var open []Span // stack of enclosing spans
			for _, s := range spans {
				for len(open) > 0 && open[len(open)-1].End <= s.Start+nestEps/secToUS {
					open = open[:len(open)-1]
				}
				if len(open) > 0 && s.End > open[len(open)-1].End+nestEps/secToUS {
					top := open[len(open)-1]
					return fmt.Errorf("telemetry: track %s lane %d: %s/%s [%.6f, %.6f] overlaps sibling/parent %s/%s ending %.6f",
						tr.Name(), l, s.Kind, s.ID, s.Start, s.End, top.Kind, top.ID, top.End)
				}
				open = append(open, s)
			}
		}
	}
	return nil
}

var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9+.eEInf]+$`)

// ValidatePrometheus checks a text-format snapshot line by line: every
// non-comment, non-blank line must be a metric sample with a legal name
// and a parseable value.
func ValidatePrometheus(data []byte) error {
	for i, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			return fmt.Errorf("telemetry: metrics line %d is not a valid sample: %q", i+1, line)
		}
		val := line[strings.LastIndexByte(line, ' ')+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			return fmt.Errorf("telemetry: metrics line %d has unparseable value %q", i+1, val)
		}
	}
	return nil
}
