package kvcache

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"
	"testing"
)

// snapshot serializes a cache's complete observable state — per-sequence
// lengths and block tables, refcounts, and the free list — so two caches
// driven through different APIs can be compared exactly.
func snapshot(c *Cache) string {
	var b strings.Builder
	ids := make([]string, 0, len(c.seqs))
	for id := range c.seqs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		s := c.seqs[id]
		fmt.Fprintf(&b, "seq %s len=%d blocks=%v\n", id, s.length, s.blocks)
	}
	fmt.Fprintf(&b, "refcount=%v\nfree=%v\n", c.refcount, c.free)
	return b.String()
}

// appendLoop emulates the engine's historical per-token decode loop:
// n AppendToken calls, stopping at the first error.
func appendLoop(c *Cache, id string, n int) error {
	for t := 0; t < n; t++ {
		if err := c.AppendToken(id); err != nil {
			return err
		}
	}
	return nil
}

// TestAppendTokensEquivalence drives three caches through one random
// workload — allocate, fork, free, and variable-size appends — using the
// per-token loop, the bulk AppendTokens call, and the Handle fast path
// respectively. After every operation all three must agree on the error
// returned and on the full cache state (lengths, block tables, refcounts,
// free-list order), including the partial progress left behind when an
// append runs out of blocks.
func TestAppendTokensEquivalence(t *testing.T) {
	for _, bs := range []int{1, 3, 16} {
		for _, blocks := range []int{8, 64} {
			t.Run(fmt.Sprintf("bs%d_blocks%d", bs, blocks), func(t *testing.T) {
				for seed := uint64(0); seed < 8; seed++ {
					testEquivalenceSeed(t, bs, blocks, seed)
				}
			})
		}
	}
}

func testEquivalenceSeed(t *testing.T, blockSize, numBlocks int, seed uint64) {
	t.Helper()
	cfg := Config{BlockSize: blockSize, NumBlocks: numBlocks, BytesPerToken: 64}
	newCache := func() *Cache {
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	tokenwise, bulk, handled := newCache(), newCache(), newCache()
	handles := map[string]Handle{}

	r := rand.New(rand.NewPCG(seed, 41))
	var live []string
	next := 0
	check := func(op string, errA, errB, errC error) {
		t.Helper()
		if errA != errB || errA != errC {
			t.Fatalf("seed %d %s: error divergence: tokenwise=%v bulk=%v handle=%v", seed, op, errA, errB, errC)
		}
		a, b, c := snapshot(tokenwise), snapshot(bulk), snapshot(handled)
		if a != b || a != c {
			t.Fatalf("seed %d %s: state divergence\ntokenwise:\n%s\nbulk:\n%s\nhandle:\n%s", seed, op, a, b, c)
		}
		for name, c := range map[string]*Cache{"tokenwise": tokenwise, "bulk": bulk, "handle": handled} {
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("seed %d %s: %s invariants: %v", seed, op, name, err)
			}
		}
	}

	for op := 0; op < 250; op++ {
		switch r.IntN(5) {
		case 0: // allocate
			id := fmt.Sprintf("s%d", next)
			next++
			tokens := r.IntN(3 * blockSize)
			errA := tokenwise.Allocate(id, tokens)
			errB := bulk.Allocate(id, tokens)
			errC := handled.Allocate(id, tokens)
			if errC == nil {
				h, err := handled.Lookup(id)
				if err != nil {
					t.Fatalf("Lookup(%s) after Allocate: %v", id, err)
				}
				handles[id] = h
				live = append(live, id)
			}
			check(fmt.Sprintf("allocate %s %d", id, tokens), errA, errB, errC)
		case 1, 2: // append a variable-size chunk (the interesting op)
			if len(live) == 0 {
				continue
			}
			id := live[r.IntN(len(live))]
			n := r.IntN(3*blockSize + 5)
			errA := appendLoop(tokenwise, id, n)
			errB := bulk.AppendTokens(id, n)
			errC := handled.AppendTokensH(handles[id], n)
			check(fmt.Sprintf("append %s %d", id, n), errA, errB, errC)
		case 3: // fork
			if len(live) == 0 {
				continue
			}
			parent := live[r.IntN(len(live))]
			id := fmt.Sprintf("s%d", next)
			next++
			errA := tokenwise.Fork(parent, id)
			errB := bulk.Fork(parent, id)
			errC := handled.Fork(parent, id)
			if errC == nil {
				h, err := handled.Lookup(id)
				if err != nil {
					t.Fatalf("Lookup(%s) after Fork: %v", id, err)
				}
				handles[id] = h
				live = append(live, id)
			}
			check(fmt.Sprintf("fork %s->%s", parent, id), errA, errB, errC)
		case 4: // free
			if len(live) == 0 {
				continue
			}
			i := r.IntN(len(live))
			id := live[i]
			live = append(live[:i], live[i+1:]...)
			errA := tokenwise.Free(id)
			errB := bulk.Free(id)
			errC := handled.FreeH(handles[id])
			delete(handles, id)
			check(fmt.Sprintf("free %s", id), errA, errB, errC)
		}
	}
}

func TestAppendTokensZeroAndUnknown(t *testing.T) {
	c := newTestCache(t, 8)
	if err := c.AppendTokens("ghost", 4); err != ErrUnknownSequence {
		t.Errorf("AppendTokens on ghost = %v, want ErrUnknownSequence", err)
	}
	if _, err := c.Lookup("ghost"); err != ErrUnknownSequence {
		t.Errorf("Lookup on ghost = %v, want ErrUnknownSequence", err)
	}
	if err := c.Allocate("a", 10); err != nil {
		t.Fatal(err)
	}
	if err := c.AppendTokens("a", 0); err != nil {
		t.Errorf("AppendTokens n=0 = %v, want nil", err)
	}
	if err := c.AppendTokens("a", -3); err != nil {
		t.Errorf("AppendTokens n<0 = %v, want nil (no-op)", err)
	}
	if n, _ := c.Length("a"); n != 10 {
		t.Errorf("length after no-op appends = %d, want 10", n)
	}
}

// TestHandleLifecycle pins the staleness contract: a handle dies with its
// sequence, whichever API freed it, and handles from another cache are
// rejected.
func TestHandleLifecycle(t *testing.T) {
	c := newTestCache(t, 16)
	if err := c.Allocate("a", 20); err != nil {
		t.Fatal(err)
	}
	h, err := c.Lookup("a")
	if err != nil {
		t.Fatal(err)
	}
	if h.ID() != "a" {
		t.Errorf("handle ID = %q, want a", h.ID())
	}
	if err := c.AppendTokensH(h, 30); err != nil {
		t.Fatal(err)
	}
	if n, err := c.LengthH(h); err != nil || n != 50 {
		t.Errorf("LengthH = %d/%v, want 50", n, err)
	}
	if n, _ := c.Length("a"); n != 50 {
		t.Errorf("Length = %d, want 50", n)
	}
	if err := c.FreeH(h); err != nil {
		t.Fatal(err)
	}
	if err := c.FreeH(h); err != ErrUnknownSequence {
		t.Errorf("double FreeH = %v, want ErrUnknownSequence", err)
	}
	if err := c.AppendTokensH(h, 1); err != ErrUnknownSequence {
		t.Errorf("append through stale handle = %v, want ErrUnknownSequence", err)
	}
	// Free through the map API must also invalidate handles.
	if err := c.Allocate("b", 4); err != nil {
		t.Fatal(err)
	}
	hb, err := c.Lookup("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Free("b"); err != nil {
		t.Fatal(err)
	}
	if err := c.AppendTokensH(hb, 1); err != ErrUnknownSequence {
		t.Errorf("append after map Free = %v, want ErrUnknownSequence", err)
	}
	// Handles are cache-scoped.
	other := newTestCache(t, 16)
	if err := other.Allocate("a", 4); err != nil {
		t.Fatal(err)
	}
	ha, err := other.Lookup("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AppendTokensH(ha, 1); err != ErrUnknownSequence {
		t.Errorf("foreign handle = %v, want ErrUnknownSequence", err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestAppendTokensPartialProgress pins the documented out-of-blocks
// behavior: the sequence is left exactly where a token-wise loop would
// have stopped.
func TestAppendTokensPartialProgress(t *testing.T) {
	c := newTestCache(t, 4)                     // 4 blocks of 16 tokens
	if err := c.Allocate("a", 24); err != nil { // 2 blocks, 8 free slots in tail
		t.Fatal(err)
	}
	err := c.AppendTokens("a", 100) // wants 8 more blocks; only 2 exist
	if err != ErrOutOfBlocks {
		t.Fatalf("got %v, want ErrOutOfBlocks", err)
	}
	// Tail filled (8) plus two whole grabbed blocks (32) = 64 tokens.
	if n, _ := c.Length("a"); n != 64 {
		t.Errorf("partial length = %d, want 64", n)
	}
	if st := c.Stats(); st.UsedBlocks != 4 || st.FreeBlocks != 0 {
		t.Errorf("after partial append: %+v", st)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
