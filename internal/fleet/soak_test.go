package fleet

import (
	"testing"

	"edgereasoning/internal/faults"
	"edgereasoning/internal/workload"
)

// TestSoakStreamConservation streams a large open-loop workload through
// the fleet ingress — generated lazily, never materialized — and checks
// the conservation invariant end to end: every request that entered the
// ingress is accounted for as served or dropped. Run under -race in CI
// (the soak-smoke step) it also exercises the concurrent replica drain
// at a scale the unit tests never reach. The deadline slack plus shed
// admission keeps both sides of the ledger non-trivial: an overloaded
// pool must actually drop work for the invariant to mean anything.
func TestSoakStreamConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("1e5-request soak; skipped in -short")
	}
	const requests = 100_000
	// 4 QPS across two small replicas is a sustained overload; the tight
	// slack makes shed admission exercise the Dropped path.
	profile := workload.InteractiveAssistant(4, requests)
	profile.DeadlineSlack = 2
	profile.DeadlineSlackMax = 6
	src, err := workload.NewSource(profile, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := homogeneousFleet(2, LeastQueue)
	cfg.Admission = Shed
	m, err := ServeSource(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	if m.Offered != requests {
		t.Fatalf("Offered = %d, want %d (stream truncated?)", m.Offered, requests)
	}
	if m.Served+m.Dropped != m.Offered {
		t.Fatalf("conservation violated: Served %d + Dropped %d != Offered %d",
			m.Served, m.Dropped, m.Offered)
	}
	if m.Served == 0 || m.Dropped == 0 {
		t.Fatalf("degenerate soak: Served %d, Dropped %d — want both paths exercised", m.Served, m.Dropped)
	}
}

// TestSoakFaultedConservation is the chaos variant of the soak: the
// same scale of lazily-streamed traffic, but with a generated fault
// schedule (crashes, stalls, throttles) plus retry and health-aware
// routing active the whole run. Run under -race in CI. Conservation
// must hold exactly through every abort/retry cycle — a request lost
// between a crash and its re-admission is precisely the bug class this
// soak exists to catch.
func TestSoakFaultedConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("1e5-request soak; skipped in -short")
	}
	const requests = 100_000
	profile := workload.InteractiveAssistant(4, requests)
	profile.DeadlineSlack = 2
	profile.DeadlineSlackMax = 6
	src, err := workload.NewSource(profile, 7)
	if err != nil {
		t.Fatal(err)
	}
	// The stream runs ~25000s; faults over the first 20000s, roughly a
	// crash per replica per ~17 min plus regular stalls and throttles.
	sched, err := faults.Generate(faults.GenConfig{
		Replicas: 3, Horizon: 20_000,
		CrashRate: 20, RestartDelay: 10,
		StallRate: 40, StallDuration: 3,
		ThrottleRate: 20, ThrottleDuration: 30, ThrottleFactor: 2,
	}, 11)
	if err != nil {
		t.Fatal(err)
	}
	cfg := homogeneousFleet(3, LeastQueue)
	cfg.Admission = Shed
	cfg.Faults = &sched
	cfg.Retry = &RetryPolicy{}
	cfg.Health = &HealthConfig{}
	m, err := ServeSource(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	if m.Offered != requests {
		t.Fatalf("Offered = %d, want %d (stream truncated?)", m.Offered, requests)
	}
	if m.Served+m.Dropped != m.Offered {
		t.Fatalf("conservation violated: Served %d + Dropped %d != Offered %d",
			m.Served, m.Dropped, m.Offered)
	}
	if m.Crashes == 0 || m.Aborted == 0 || m.Retried == 0 {
		t.Fatalf("degenerate chaos soak: %d crashes, %d aborted, %d retried", m.Crashes, m.Aborted, m.Retried)
	}
	if m.Retried+m.AbortedDropped < m.Aborted {
		t.Fatalf("abort accounting leaked: %d aborted, %d retried + %d dropped",
			m.Aborted, m.Retried, m.AbortedDropped)
	}
	if m.Shed+m.AbortedDropped > m.Dropped {
		t.Fatalf("drop ledger overlaps: shed %d + aborted %d > dropped %d", m.Shed, m.AbortedDropped, m.Dropped)
	}
}
