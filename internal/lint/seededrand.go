package lint

import (
	"go/ast"
	"go/types"
)

// SeededRand enforces the named-seeded-RNG-stream discipline: no use of
// the global math/rand (or math/rand/v2) top-level functions anywhere —
// the global source is shared mutable state whose consumption order
// depends on goroutine interleaving and package wiring, which is
// exactly how seed-reproducibility dies — and no RNG construction
// outside the designated provider package (internal/stats, whose
// stats.NewRNG derives per-purpose seeded streams; internal/faults and
// the workload generators draw from those).
//
// Exempt: _test.go files, and the internal/stats provider itself for
// construction (its whole job is wrapping rand.New around a derived
// seed).
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc: "forbid global math/rand functions and RNG construction outside " +
		"the seeded-stream provider (internal/stats)",
	Run: runSeededRand,
}

// randConstructors are the math/rand(/v2) names that build an explicit
// generator or source rather than drawing from the global one. Types
// (Rand, Source, PCG, Zipf, ChaCha8) are referenced via selectors too
// and are equally construction-side.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
	"NewZipf": true,
	"Rand":    true, "Source": true, "Source64": true, "PCG": true,
	"Zipf": true, "ChaCha8": true,
}

func runSeededRand(pass *Pass) error {
	providerPkg := pathHasSuffix(pass.Pkg.Path(), "internal/stats")
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			path := pn.Imported().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			name := sel.Sel.Name
			if !randConstructors[name] {
				pass.Reportf(sel.Pos(),
					"rand.%s draws from the global math/rand source; use a named seeded stream (stats.NewRNG)", name)
				return true
			}
			if !providerPkg {
				pass.Reportf(sel.Pos(),
					"rand.%s constructs an RNG outside the seeded-stream provider; derive a stream via stats.NewRNG instead", name)
			}
			return true
		})
	}
	return nil
}
