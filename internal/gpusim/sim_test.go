package gpusim

import (
	"math"
	"testing"
	"testing/quick"

	"edgereasoning/internal/hw"
	"edgereasoning/internal/model"
)

func orinSim() *Sim { return New(hw.JetsonAGXOrin64GB()) }

func withinFrac(got, want, frac float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want)/math.Abs(want) <= frac
}

// Calibration anchor: the paper's measured time-between-tokens at short
// context (§IV-A: 0.024 s for 1.5B, 0.092–0.10 s for 8B, 0.186–0.187 s
// for 14B). The simulator must land within 15%.
func TestDecodeTBTMatchesPaper(t *testing.T) {
	s := orinSim()
	cases := []struct {
		id   model.ID
		want float64
	}{
		{model.DSR1Qwen1_5B, 0.024},
		{model.DSR1Llama8B, 0.096},
		{model.DSR1Qwen14B, 0.187},
	}
	for _, c := range cases {
		spec := model.MustLookup(c.id)
		got := s.TBT(spec.Arch, model.FP16, 512)
		if !withinFrac(got, c.want, 0.15) {
			t.Errorf("%s: TBT = %.4fs, want %.3fs ±15%%", c.id, got, c.want)
		}
	}
}

// Fig 3b: TBT grows only slightly with context (the paper measures +3.1%
// from 1 to 4k on the 8B model).
func TestTBTNearlyFlatInContext(t *testing.T) {
	s := orinSim()
	a := model.MustLookup(model.DSR1Llama8B).Arch
	t1 := s.TBT(a, model.FP16, 1)
	t4k := s.TBT(a, model.FP16, 4096)
	growth := (t4k - t1) / t1
	if growth <= 0 {
		t.Errorf("TBT must grow with context, got %.4f", growth)
	}
	if growth > 0.10 {
		t.Errorf("TBT grew %.1f%% over 4k context, paper measures ~3%%", growth*100)
	}
}

// Fig 2: prefill latency is stepped — constant within a 128-token tile,
// jumping at tile boundaries.
func TestPrefillSteppedPattern(t *testing.T) {
	s := orinSim()
	a := model.MustLookup(model.DSR1Llama8B).Arch
	inTile1 := s.Prefill(a, model.FP16, 129, 1).Time
	inTile2 := s.Prefill(a, model.FP16, 255, 1).Time
	nextTile := s.Prefill(a, model.FP16, 257, 1).Time
	if math.Abs(inTile1-inTile2) > 1e-4 {
		t.Errorf("within-tile latencies differ: %.4f vs %.4f", inTile1, inTile2)
	}
	if nextTile <= inTile2 {
		t.Errorf("crossing a tile boundary must increase latency: %.4f -> %.4f", inTile2, nextTile)
	}
}

// Table XVI GPU column: prefill at 512 tokens ≈ 0.095 / 0.554 / 0.764 s.
// The effective throughput implied (15–19 TFLOPs) is the key shape; allow
// a generous ±40% on absolute values.
func TestPrefillLatencyBallpark(t *testing.T) {
	s := orinSim()
	cases := []struct {
		id   model.ID
		want float64
	}{
		{model.DSR1Qwen1_5B, 0.095},
		{model.DSR1Llama8B, 0.554},
		{model.DSR1Qwen14B, 0.764},
	}
	for _, c := range cases {
		a := model.MustLookup(c.id).Arch
		got := s.Prefill(a, model.FP16, 512, 1).Time
		if !withinFrac(got, c.want, 0.40) {
			t.Errorf("%s prefill@512 = %.3fs, want %.3fs ±40%%", c.id, got, c.want)
		}
	}
}

// Table VII: with reasoning workloads, decode dominates >99% of latency.
func TestDecodeDominatesReasoningWorkload(t *testing.T) {
	s := orinSim()
	a := model.MustLookup(model.DSR1Llama8B).Arch
	prefill := s.Prefill(a, model.FP16, 256, 1)
	decode := s.DecodeRun(a, model.FP16, 256, 811, 1)
	share := decode.Time / (decode.Time + prefill.Time)
	if share < 0.98 {
		t.Errorf("decode share = %.3f, paper reports >0.995", share)
	}
}

// DecodeRun must equal the sum of individual DecodeSteps (closed form vs
// step loop).
func TestDecodeRunEqualsStepSum(t *testing.T) {
	s := orinSim()
	s.JitterFrac = 0
	a := model.MustLookup(model.DSR1Qwen1_5B).Arch
	const start, n, batch = 100, 50, 4
	run := s.DecodeRun(a, model.FP16, start, n, batch)
	var total float64
	ctxs := make([]int, batch)
	for step := 0; step < n; step++ {
		for b := range ctxs {
			ctxs[b] = start + step
		}
		total += s.DecodeStep(a, model.FP16, ctxs).Time
	}
	if !withinFrac(run.Time, total, 1e-9) {
		t.Errorf("DecodeRun = %.6fs, step sum = %.6fs", run.Time, total)
	}
}

// Parallel scaling (Fig 10a): decode latency grows sublinearly in batch —
// roughly 2× from SF=1 to SF=64.
func TestDecodeBatchSublinear(t *testing.T) {
	s := orinSim()
	a := model.MustLookup(model.DSR1Llama8B).Arch
	t1 := s.DecodeRun(a, model.FP16, 512, 128, 1).Time
	t64 := s.DecodeRun(a, model.FP16, 512, 128, 64).Time
	ratio := t64 / t1
	if ratio < 1.05 {
		t.Errorf("batch-64 decode should cost more than batch-1 (ratio %.2f)", ratio)
	}
	if ratio > 3.0 {
		t.Errorf("batch-64 decode ratio = %.2f, paper reports ~2x", ratio)
	}
}

// W4A16 decode speedup: the paper measures 2.0× (1.5B), 2.9× (8B),
// 3.1× (14B) on the decode sweep (Table XIX).
func TestQuantizedDecodeSpeedup(t *testing.T) {
	s := orinSim()
	cases := []struct {
		id      model.ID
		minWant float64
		maxWant float64
	}{
		{model.DSR1Qwen1_5B, 1.4, 2.8},
		{model.DSR1Llama8B, 2.2, 3.8},
		{model.DSR1Qwen14B, 2.4, 4.0},
	}
	for _, c := range cases {
		a := model.MustLookup(c.id).Arch
		base := s.DecodeRun(a, model.FP16, 512, 256, 1).Time
		w4 := s.DecodeRun(a, model.W4A16, 512, 256, 1).Time
		speedup := base / w4
		if speedup < c.minWant || speedup > c.maxWant {
			t.Errorf("%s: W4 decode speedup = %.2fx, want in [%.1f, %.1f]", c.id, speedup, c.minWant, c.maxWant)
		}
	}
}

// CPU substrate: Table XVII implies GPU decode is ~4–6× faster than CPU.
func TestCPUDecodeSlower(t *testing.T) {
	gpu := orinSim()
	cpu := New(hw.OrinCortexA78AE())
	a := model.MustLookup(model.DSR1Llama8B).Arch
	tg := gpu.DecodeRun(a, model.FP16, 512, 128, 1).Time
	tc := cpu.DecodeRun(a, model.FP16, 512, 128, 1).Time
	ratio := tc / tg
	if ratio < 3 || ratio > 8 {
		t.Errorf("CPU/GPU decode ratio = %.1f, Table XVII implies ~5x", ratio)
	}
}

func TestPrefillZeroAndNegative(t *testing.T) {
	s := orinSim()
	a := model.MustLookup(model.DSR1Qwen1_5B).Arch
	if s.Prefill(a, model.FP16, 0, 1).Time != 0 {
		t.Error("zero-token prefill must cost nothing")
	}
	if s.DecodeRun(a, model.FP16, 10, 0, 1).Time != 0 {
		t.Error("zero-step decode must cost nothing")
	}
	if s.DecodeStep(a, model.FP16, nil).Time != 0 {
		t.Error("empty-batch step must cost nothing")
	}
}

func TestUtilizationSignalsBounded(t *testing.T) {
	s := orinSim()
	a := model.MustLookup(model.DSR1Qwen14B).Arch
	for _, res := range []Result{
		s.Prefill(a, model.FP16, 1024, 1),
		s.DecodeRun(a, model.FP16, 512, 64, 8),
	} {
		if res.BWUtil < 0 || res.BWUtil > 1.001 {
			t.Errorf("BWUtil out of range: %v", res.BWUtil)
		}
		if res.ComputeUtil < 0 || res.ComputeUtil > 1.001 {
			t.Errorf("ComputeUtil out of range: %v", res.ComputeUtil)
		}
		if res.Occupancy < 0 || res.Occupancy > 1.001 {
			t.Errorf("Occupancy out of range: %v", res.Occupancy)
		}
	}
}

// Property: prefill latency is non-decreasing in input length.
func TestPrefillMonotoneProperty(t *testing.T) {
	s := orinSim()
	s.JitterFrac = 0
	a := model.MustLookup(model.DSR1Llama8B).Arch
	f := func(x, y uint16) bool {
		i, j := int(x%4096)+1, int(y%4096)+1
		if i > j {
			i, j = j, i
		}
		return s.Prefill(a, model.FP16, i, 1).Time <= s.Prefill(a, model.FP16, j, 1).Time+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: decode time is additive-monotone in steps and batch.
func TestDecodeMonotoneProperty(t *testing.T) {
	s := orinSim()
	a := model.MustLookup(model.DSR1Qwen1_5B).Arch
	f := func(n1, n2, b uint8) bool {
		steps1 := int(n1%100) + 1
		steps2 := steps1 + int(n2%100)
		batch := int(b%16) + 1
		t1 := s.DecodeRun(a, model.FP16, 64, steps1, batch).Time
		t2 := s.DecodeRun(a, model.FP16, 64, steps2, batch).Time
		tb := s.DecodeRun(a, model.FP16, 64, steps1, batch+1).Time
		return t2 >= t1 && tb >= t1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestKernelKindString(t *testing.T) {
	if GEMM.String() != "gemm" || Attention.String() != "attention" {
		t.Error("KernelKind String wrong")
	}
}

func TestMergeWeightsUtilByTime(t *testing.T) {
	r1 := Result{Time: 1, BWUtil: 0.2, ComputeUtil: 0.4, Occupancy: 1}
	r2 := Result{Time: 3, BWUtil: 0.6, ComputeUtil: 0.0, Occupancy: 0.5}
	r1.merge(r2)
	if !withinFrac(r1.BWUtil, 0.5, 1e-9) {
		t.Errorf("merged BWUtil = %v, want 0.5", r1.BWUtil)
	}
	if !withinFrac(r1.ComputeUtil, 0.1, 1e-9) {
		t.Errorf("merged ComputeUtil = %v, want 0.1", r1.ComputeUtil)
	}
	if r1.Time != 4 {
		t.Errorf("merged Time = %v, want 4", r1.Time)
	}
}
