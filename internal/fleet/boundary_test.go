package fleet

import (
	"testing"

	"edgereasoning/internal/engine"
)

// TestWarmupFailBoundary pins the ReplicaConfig contract the autoscaler's
// warm-up accounting relies on: routability needs t >= WarmupDelay and
// t < FailAt, so FailAt == WarmupDelay is dead at birth and only
// FailAt > WarmupDelay opens a window.
func TestWarmupFailBoundary(t *testing.T) {
	const eps = 1e-9
	cases := []struct {
		name         string
		warmup, fail float64
		at           float64
		routable     bool
	}{
		{"warm replica at fail instant", 0, 10, 10, false},
		{"warm replica just before fail", 0, 10, 10 - eps, true},
		{"dead at birth: fail == warmup, at the boundary", 10, 10, 10, false},
		{"dead at birth: fail == warmup, before warmup", 10, 10, 10 - eps, false},
		{"dead at birth: fail == warmup, after fail", 10, 10, 10 + eps, false},
		{"dead at birth: fail below warmup", 10, 10 - eps, 10, false},
		{"window open: fail just above warmup", 10, 10 + eps, 10, true},
		{"window closed again past fail", 10, 10 + eps, 10 + eps, false},
	}
	for _, tc := range cases {
		r := &replica{cfg: ReplicaConfig{WarmupDelay: tc.warmup, FailAt: tc.fail}}
		if got := r.routableAt(tc.at); got != tc.routable {
			t.Errorf("%s: routableAt(%v) = %v, want %v", tc.name, tc.at, got, tc.routable)
		}
	}
}

// TestDeadAtBirthNeverCountsLive locks the autoscaler's side of the same
// boundary: a FailAt <= WarmupDelay replica never counts toward the live
// pool, and one with an open window counts only until FailAt.
func TestDeadAtBirthNeverCountsLive(t *testing.T) {
	dead := &replica{cfg: ReplicaConfig{WarmupDelay: 10, FailAt: 10}}
	for _, at := range []float64{0, 5, 10, 20} {
		if dead.liveAt(at) {
			t.Errorf("dead-at-birth replica counted live at t=%v", at)
		}
	}
	windowed := &replica{cfg: ReplicaConfig{WarmupDelay: 10, FailAt: 15}}
	if !windowed.liveAt(0) || !windowed.liveAt(12) {
		t.Error("replica with an open window must count live before FailAt")
	}
	if windowed.liveAt(15) {
		t.Error("replica must stop counting live at FailAt")
	}
}

// TestDeadAtBirthReplicaTakesNothing runs the boundary end to end: with
// FailAt == WarmupDelay the replica must take no traffic, and the
// warm-up must not hold the ingress waiting for a window that never
// opens.
func TestDeadAtBirthReplicaTakesNothing(t *testing.T) {
	cfg := homogeneousFleet(2, RoundRobin)
	cfg.Replicas[1].WarmupDelay = 5
	cfg.Replicas[1].FailAt = 5
	reqs := burst(8, 2, 0)
	m, err := Serve(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Served != len(reqs) || m.Dropped != 0 {
		t.Fatalf("served %d dropped %d, want all served on the live replica", m.Served, m.Dropped)
	}
	if m.Replicas[1].Assigned != 0 {
		t.Errorf("dead-at-birth replica took %d requests", m.Replicas[1].Assigned)
	}

	// Alone, the same replica is a permanent outage from t=0.
	solo := homogeneousFleet(1, RoundRobin)
	solo.Replicas[0].WarmupDelay = 5
	solo.Replicas[0].FailAt = 5
	m, err = Serve(solo, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Served != 0 || m.Dropped != len(reqs) {
		t.Errorf("served %d dropped %d, want everything dropped", m.Served, m.Dropped)
	}
}

// TestTotalOutageMidStreamConservation is the total-outage drain
// regression test: once every replica is permanently dead, the rest of
// the stream is dropped without rescanning the pool per request, and
// nothing is lost or double-counted.
func TestTotalOutageMidStreamConservation(t *testing.T) {
	cfg := homogeneousFleet(2, LeastQueue)
	cfg.Replicas[0].FailAt = 6
	cfg.Replicas[1].FailAt = 9
	reqs := burst(400, 0.05, 30) // arrivals 0..20s, fleet dead by t=9
	m, err := Serve(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Served+m.Dropped != len(reqs) {
		t.Fatalf("served %d + dropped %d != offered %d", m.Served, m.Dropped, len(reqs))
	}
	if m.Served == 0 {
		t.Error("pre-outage arrivals must still be served")
	}
	if m.Dropped == 0 {
		t.Error("post-outage arrivals must be dropped")
	}
	if m.DeadlinesTotal != len(reqs) {
		t.Errorf("deadline accounting %d, want every deadline-bearing request counted (dropped count as missed)",
			m.DeadlinesTotal)
	}
	// The outage drop must also cover requests still waiting in the
	// ingress queue when the pool dies, not only later arrivals.
	var assigned int
	for _, rm := range m.Replicas {
		assigned += rm.Assigned
	}
	if assigned != m.Served {
		t.Errorf("assigned %d != served %d: outage must not strand dispatched work", assigned, m.Served)
	}
}

// TestRetireAtDrainBoundaryBilledOnce pins ReplicaSeconds accounting at
// the end-of-run drain: foldAutoscale retires remaining idle replicas
// and then bills every replica exactly once — a replica whose idle
// timer expires exactly at the wall is billed to that single instant
// (not to the wall AND the retirement), a mid-run retiree to its
// retirement, a failed replica to its FailAt, a survivor to the wall,
// and a dead-at-birth provision never bills negative time.
func TestRetireAtDrainBoundaryBilledOnce(t *testing.T) {
	mk := func(provisionedAt, idleFrom float64, cfg ReplicaConfig) *replica {
		return &replica{cfg: cfg, provisionedAt: provisionedAt, idleFrom: idleFrom}
	}
	boundary := mk(0, 90, ReplicaConfig{Name: "boundary"}) // idle timer expires at exactly wall=100
	survivor := mk(50, 95, ReplicaConfig{Name: "survivor"})
	early := mk(20, 0, ReplicaConfig{Name: "early"})
	early.retired, early.retiredAt = true, 80
	failed := mk(0, 0, ReplicaConfig{Name: "failed", FailAt: 70})
	stillborn := mk(80, 80, ReplicaConfig{Name: "stillborn", FailAt: 70})

	ro := &router{replicas: []*replica{boundary, survivor, early, failed, stillborn}}
	as, err := newAutoscaler(&AutoscaleConfig{Min: 1, Max: 8, Spec: smallSpec(), IdleRetire: 10}, 5, cacheOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out := Metrics{WallTime: 100, Replicas: make([]ReplicaMetrics, 5)}
	foldAutoscale(&out, ro, as)

	if !boundary.retired || boundary.retiredAt != 100 {
		t.Fatalf("boundary replica retired=%v at %.3f, want retirement at exactly the 100s wall",
			boundary.retired, boundary.retiredAt)
	}
	if survivor.retired {
		t.Fatal("Min floor must keep the last live replica")
	}
	// boundary 100-0, survivor 100-50, early 80-20, failed 70-0,
	// stillborn clamped to 0: each span billed exactly once.
	if want := 100.0 + 50 + 60 + 70 + 0; out.ReplicaSeconds != want {
		t.Fatalf("ReplicaSeconds %.3f, want %.3f (each replica billed once)", out.ReplicaSeconds, want)
	}
	if out.ScaleDowns != 1 {
		t.Fatalf("scale-downs %d, want 1 (only the boundary replica retires at drain)", out.ScaleDowns)
	}
	if out.Replicas[0].RetiredAt != 100 {
		t.Fatalf("boundary replica metrics RetiredAt %.3f, want 100", out.Replicas[0].RetiredAt)
	}
}

// TestOutageDropPreservesFIFOSemantics cross-checks the O(1) drain
// against the per-request scan it replaced: a request whose arrival
// predates the outage but whose turn comes after it is dropped, exactly
// as the old head-of-line scan decided.
func TestOutageDropPreservesFIFOSemantics(t *testing.T) {
	cfg := homogeneousFleet(1, RoundRobin)
	cfg.Replicas[0].Capacity = 1
	cfg.Replicas[0].FailAt = 2
	reqs := []engine.TimedRequest{
		timed("first", 0, 1024, 600, 0), // dispatched at t=0, holds the replica well past FailAt
		timed("second", 0.5, 64, 10, 0),
	}
	m, err := Serve(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Served != 1 || m.Dropped != 1 {
		t.Errorf("served %d dropped %d, want 1/1: the queued request's turn never comes", m.Served, m.Dropped)
	}
}

// TestWarmupCrashBoundary mirrors TestWarmupFailBoundary for CrashAt,
// the lossy counterpart of FailAt: routability needs t >= WarmupDelay
// and t < CrashAt, so CrashAt <= WarmupDelay is dead at birth — the
// replica crashes before (or the instant) it would come up, and with no
// restart it never opens a window.
func TestWarmupCrashBoundary(t *testing.T) {
	const eps = 1e-9
	cases := []struct {
		name          string
		warmup, crash float64
		at            float64
		routable      bool
	}{
		{"warm replica at crash instant", 0, 10, 10, false},
		{"warm replica just before crash", 0, 10, 10 - eps, true},
		{"dead at birth: crash == warmup, at the boundary", 10, 10, 10, false},
		{"dead at birth: crash == warmup, before warmup", 10, 10, 10 - eps, false},
		{"dead at birth: crash == warmup, after crash", 10, 10, 10 + eps, false},
		{"dead at birth: crash below warmup", 10, 10 - eps, 10, false},
		{"window open: crash just above warmup", 10, 10 + eps, 10, true},
		{"window closed again past crash", 10, 10 + eps, 10 + eps, false},
	}
	for _, tc := range cases {
		r := &replica{cfg: ReplicaConfig{WarmupDelay: tc.warmup, CrashAt: tc.crash}}
		if _, err := compileFaults(Config{}, []*replica{r}); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := r.routableAt(tc.at); got != tc.routable {
			t.Errorf("%s: routableAt(%v) = %v, want %v", tc.name, tc.at, got, tc.routable)
		}
		if live := r.liveAt(tc.at); tc.warmup >= tc.crash && live {
			t.Errorf("%s: dead-at-birth replica counted live at t=%v", tc.name, tc.at)
		}
	}
}

// TestCrashAtVsFailAtSemantics pins the behavioral difference between
// the two single-replica failure knobs on identical traffic: FailAt
// drains cleanly (in-flight work finishes, nothing is aborted), CrashAt
// is lossy (the in-flight suffix is aborted and, without a retry
// policy, dropped). Both conserve every request.
func TestCrashAtVsFailAtSemantics(t *testing.T) {
	reqs := burst(20, 0, 0) // deep t=0 backlog on both replicas
	run := func(mut func(*Config)) Metrics {
		cfg := homogeneousFleet(2, LeastQueue)
		mut(&cfg)
		m, err := Serve(cfg, reqs)
		if err != nil {
			t.Fatal(err)
		}
		if m.Served+m.Dropped != m.Offered || m.Offered != len(reqs) {
			t.Fatalf("conservation: served %d + dropped %d != offered %d", m.Served, m.Dropped, m.Offered)
		}
		return m
	}
	drained := run(func(c *Config) { c.Replicas[0].FailAt = 1 })
	if drained.Crashes != 0 || drained.Aborted != 0 || drained.LostWorkSeconds != 0 {
		t.Errorf("FailAt must drain, not crash: %d crashes, %d aborted, %.3f lost seconds",
			drained.Crashes, drained.Aborted, drained.LostWorkSeconds)
	}
	crashed := run(func(c *Config) { c.Replicas[0].CrashAt = 1 })
	if crashed.Crashes != 1 || crashed.Aborted == 0 {
		t.Fatalf("CrashAt must abort in-flight work: %d crashes, %d aborted", crashed.Crashes, crashed.Aborted)
	}
	if crashed.AbortedDropped != crashed.Aborted {
		t.Errorf("without a retry policy every abort drops: %d aborted, %d dropped",
			crashed.Aborted, crashed.AbortedDropped)
	}
	if crashed.LostWorkSeconds <= 0 {
		t.Error("a lossy crash must account lost work")
	}
	// The drained replica keeps everything it was assigned; the crashed
	// one loses its aborted suffix.
	if drained.Served <= crashed.Served {
		t.Errorf("drained leg served %d, crashed leg %d: a clean drain must not lose work",
			drained.Served, crashed.Served)
	}
}
