package main

import (
	"testing"
	"time"

	"edgereasoning"
)

func TestRunPlan(t *testing.T) {
	if err := run(20*time.Second, edgereasoning.MMLURedux, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunPlanWithTokens(t *testing.T) {
	if err := run(20*time.Second, edgereasoning.MMLURedux, false, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunFrontier(t *testing.T) {
	if err := run(time.Second, edgereasoning.MMLURedux, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunInfeasibleBudget(t *testing.T) {
	// A microsecond budget fits nothing; must not error, just report.
	if err := run(time.Microsecond, edgereasoning.MMLURedux, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if err := run(time.Second, "not-a-benchmark", false, false); err == nil {
		t.Error("unknown benchmark must fail")
	}
}
