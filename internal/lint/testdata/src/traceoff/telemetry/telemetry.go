// Package telemetry is a fixture stand-in for the real telemetry
// package: the traceoff analyzer matches the Tracer interface by name
// and package name, so this minimal copy exercises the same paths.
package telemetry

// Span is a recorded interval.
type Span struct{ ID string }

// Series is a sampled time series.
type Series struct{}

// Sample records one point.
func (s *Series) Sample(t, v float64) {}

// Tracer is the nil-when-off recording interface.
type Tracer interface {
	Record(Span)
	Gauge(name string) *Series
}

// Track is the concrete recorder.
type Track struct{}

// Record stores a span.
func (t *Track) Record(Span) {}

// Gauge returns a named series.
func (t *Track) Gauge(string) *Series { return nil }
