package llm

import (
	"math"
	"sort"
	"testing"

	"edgereasoning/internal/control"
	"edgereasoning/internal/data"
	"edgereasoning/internal/model"
)

// Per-question accuracy must correlate with difficulty: easy questions
// (bottom quartile) are answered correctly far more often than hard ones
// (top quartile).
func TestDifficultyCorrelation(t *testing.T) {
	bank := data.MustLoad(data.MMLURedux, testSeed)
	tw := NewTwin(model.MustLookup(model.DSR1Llama8B), bank, testSeed)

	qs := make([]data.Question, len(bank.Questions))
	copy(qs, bank.Questions)
	sort.Slice(qs, func(i, j int) bool { return qs[i].Difficulty < qs[j].Difficulty })
	quart := len(qs) / 4

	accOf := func(sub []data.Question) float64 {
		correct := 0
		for _, q := range sub {
			g, err := tw.Generate(q, control.BasePolicy())
			if err != nil {
				t.Fatal(err)
			}
			if g.Correct {
				correct++
			}
		}
		return float64(correct) / float64(len(sub))
	}
	easy := accOf(qs[:quart])
	hard := accOf(qs[len(qs)-quart:])
	if easy-hard < 0.10 {
		t.Errorf("easy-quartile acc %.3f vs hard-quartile %.3f: difficulty has no bite", easy, hard)
	}
}

// Harder questions elicit longer reasoning chains.
func TestLengthDifficultyCorrelation(t *testing.T) {
	bank := data.MustLoad(data.MMLURedux, testSeed)
	tw := NewTwin(model.MustLookup(model.DSR1Qwen14B), bank, testSeed)
	var lowSum, highSum, lowN, highN float64
	for _, q := range bank.Questions {
		g, err := tw.Generate(q, control.BasePolicy())
		if err != nil {
			t.Fatal(err)
		}
		if q.Difficulty < 0.3 {
			lowSum += float64(g.OutputTokens)
			lowN++
		} else if q.Difficulty > 0.7 {
			highSum += float64(g.OutputTokens)
			highN++
		}
	}
	if lowN == 0 || highN == 0 {
		t.Skip("bank has no extreme-difficulty questions at this seed")
	}
	if highSum/highN <= lowSum/lowN {
		t.Errorf("hard questions (%.0f toks) should out-think easy ones (%.0f toks)",
			highSum/highN, lowSum/lowN)
	}
}

// The paper's NR anomaly on the 1.5B (NR at 41.0%% beats Base at 38.3%%)
// is preserved by calibration.
func TestNRAnomalyOn1_5B(t *testing.T) {
	nr := MustCalibrated(model.DSR1Qwen1_5B, data.MMLURedux, "nr")
	base := MustCalibrated(model.DSR1Qwen1_5B, data.MMLURedux, "base")
	if nr.Accuracy <= base.Accuracy {
		t.Errorf("1.5B NR (%.3f) must beat Base (%.3f) per the paper", nr.Accuracy, base.Accuracy)
	}
	// And the opposite holds for the larger models.
	nr8 := MustCalibrated(model.DSR1Llama8B, data.MMLURedux, "nr")
	base8 := MustCalibrated(model.DSR1Llama8B, data.MMLURedux, "base")
	if nr8.Accuracy >= base8.Accuracy {
		t.Errorf("8B NR (%.3f) must trail Base (%.3f)", nr8.Accuracy, base8.Accuracy)
	}
}

// DeepScaleR on AIME2024: the Table III accuracy (43.1%) and chain length
// (~6,520 tokens) reproduce through the twin.
func TestDeepScaleRAIMECell(t *testing.T) {
	bank := data.MustLoad(data.AIME2024, testSeed)
	tw := NewTwin(model.MustLookup(model.DeepScaleR1_5), bank, testSeed)
	correct, tokens := 0, 0
	// 30 questions is small; average over repeated seeds for a stable
	// accuracy estimate.
	runs := 40
	for s := uint64(0); s < uint64(runs); s++ {
		tws := NewTwin(model.MustLookup(model.DeepScaleR1_5), bank, s)
		for _, q := range bank.Questions {
			g, err := tws.Generate(q, control.BasePolicy())
			if err != nil {
				t.Fatal(err)
			}
			if g.Correct {
				correct++
			}
			tokens += g.OutputTokens
		}
	}
	n := float64(bank.Size() * runs)
	acc := float64(correct) / n
	if math.Abs(acc-0.431) > 0.05 {
		t.Errorf("DeepScaleR AIME accuracy = %.3f, paper 0.431", acc)
	}
	meanToks := float64(tokens) / n
	if math.Abs(meanToks-6520)/6520 > 0.10 {
		t.Errorf("DeepScaleR AIME tokens = %.0f, paper ~6520", meanToks)
	}
	_ = tw
}

// Interpolated cells must be flagged so downstream consumers can caveat
// them.
func TestInterpolatedCellsFlagged(t *testing.T) {
	for _, c := range []struct {
		id  model.ID
		cfg string
	}{
		{model.Qwen25_1_5Bit, "direct"},
		{model.Qwen25_14Bit, "direct"},
		{model.DSR1Llama8B, "hard-512"},
	} {
		beh, ok := Calibrated(c.id, data.MMLURedux, c.cfg)
		if !ok {
			t.Fatalf("%s/%s missing", c.id, c.cfg)
		}
		if !beh.Interpolated {
			t.Errorf("%s/%s should be flagged interpolated", c.id, c.cfg)
		}
	}
	// Paper-tabulated cells are not flagged.
	if MustCalibrated(model.DSR1Qwen14B, data.MMLURedux, "base").Interpolated {
		t.Error("tabulated cell wrongly flagged interpolated")
	}
}

// Output lengths vary question to question (lognormal spread), yet the
// bank mean stays calibrated — checked elsewhere; here we check the
// spread exists.
func TestLengthSpreadExists(t *testing.T) {
	bank := data.MustLoad(data.MMLURedux, testSeed)
	tw := NewTwin(model.MustLookup(model.DSR1Llama8B), bank, testSeed)
	lengths := map[int]bool{}
	for _, q := range bank.Questions[:200] {
		g, err := tw.Generate(q, control.BasePolicy())
		if err != nil {
			t.Fatal(err)
		}
		lengths[g.OutputTokens] = true
	}
	if len(lengths) < 100 {
		t.Errorf("only %d distinct lengths in 200 questions; spread too narrow", len(lengths))
	}
}

// Vote correlation leaves single-sample accuracy untouched: SF=1 accuracy
// for a high-correlation cell (L1) still matches its calibration.
func TestVoteCorrDoesNotBiasSingleSample(t *testing.T) {
	bank := data.MustLoad(data.MMLURedux, testSeed)
	tw := NewTwin(model.MustLookup(model.L1Max), bank, testSeed)
	correct := 0
	for _, q := range bank.Questions {
		g, err := tw.Generate(q, control.HardLimit(128))
		if err != nil {
			t.Fatal(err)
		}
		if g.Correct {
			correct++
		}
	}
	acc := float64(correct) / float64(bank.Size())
	if math.Abs(acc-0.162) > 0.025 {
		t.Errorf("L1 hard-128 SF=1 accuracy = %.3f, calibration 0.162", acc)
	}
}
