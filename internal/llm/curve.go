package llm

import (
	"sort"

	"edgereasoning/internal/data"
	"edgereasoning/internal/model"
)

// CurvePoint is one (mean output tokens, accuracy) measurement.
type CurvePoint struct {
	Tokens   float64
	Accuracy float64
	Config   string
}

// AccuracyCurve is the model's sequential-scaling response on a benchmark:
// accuracy as a function of average generated tokens (§V-C). It is built
// from the natural-completion calibration cells (base, soft limits, NR)
// and interpolated linearly between them.
type AccuracyCurve struct {
	Model  model.ID
	Bench  data.Benchmark
	Points []CurvePoint // sorted by Tokens ascending
}

// NaturalCurve assembles the sequential-scaling curve for a model. It
// returns false when fewer than two natural-completion cells exist.
func NaturalCurve(m model.ID, b data.Benchmark) (AccuracyCurve, bool) {
	keys := []string{"nr", "soft-128", "soft-256", "base", "direct"}
	var pts []CurvePoint
	for _, k := range keys {
		if beh, ok := Calibrated(m, b, k); ok {
			pts = append(pts, CurvePoint{Tokens: beh.MeanTokens, Accuracy: beh.Accuracy, Config: k})
		}
	}
	if len(pts) < 2 {
		return AccuracyCurve{}, false
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Tokens < pts[j].Tokens })
	return AccuracyCurve{Model: m, Bench: b, Points: pts}, true
}

// At interpolates accuracy at a mean token count, clamping outside the
// measured range.
func (c AccuracyCurve) At(tokens float64) float64 {
	if len(c.Points) == 0 {
		return 0
	}
	if tokens <= c.Points[0].Tokens {
		return c.Points[0].Accuracy
	}
	last := c.Points[len(c.Points)-1]
	if tokens >= last.Tokens {
		return last.Accuracy
	}
	for i := 1; i < len(c.Points); i++ {
		if tokens <= c.Points[i].Tokens {
			a, b := c.Points[i-1], c.Points[i]
			f := (tokens - a.Tokens) / (b.Tokens - a.Tokens)
			return a.Accuracy + f*(b.Accuracy-a.Accuracy)
		}
	}
	return last.Accuracy
}

// SaturationTokens estimates where sequential scaling stops paying: the
// smallest measured token count achieving at least (1-slack) of the
// curve's maximum accuracy. The paper reports ~300 tokens for the 1.5B
// and ~400 for the 8B/14B models (§V-C).
func (c AccuracyCurve) SaturationTokens(slack float64) float64 {
	if len(c.Points) == 0 {
		return 0
	}
	maxAcc := 0.0
	for _, p := range c.Points {
		if p.Accuracy > maxAcc {
			maxAcc = p.Accuracy
		}
	}
	threshold := maxAcc * (1 - slack)
	// Scan interpolated curve left to right at 16-token resolution.
	lo := c.Points[0].Tokens
	hi := c.Points[len(c.Points)-1].Tokens
	for t := lo; t <= hi; t += 16 {
		if c.At(t) >= threshold {
			return t
		}
	}
	return hi
}

// InterpolateHardBudget synthesizes a Behavior for an arbitrary hard
// budget from the model's calibrated hard cells (and the Base cell as the
// unconstrained limit). Accuracy and the utilization ratio
// (mean tokens / budget) interpolate piecewise-linearly in budget space.
func InterpolateHardBudget(m model.ID, b data.Benchmark, budget int) (Behavior, bool) {
	type anchor struct {
		budget float64
		beh    Behavior
	}
	var anchors []anchor
	for _, k := range []struct {
		key    string
		budget float64
	}{{"hard-128", 128}, {"hard-256", 256}, {"hard-512", 512}} {
		if beh, ok := Calibrated(m, b, k.key); ok {
			anchors = append(anchors, anchor{k.budget, beh})
		}
	}
	base, haveBase := Calibrated(m, b, "base")
	if haveBase {
		// Beyond ~1.5x the base mean output, a hard cap no longer binds.
		anchors = append(anchors, anchor{base.MeanTokens * 1.5, base})
	}
	if len(anchors) < 2 || budget <= 0 {
		return Behavior{}, false
	}
	sort.Slice(anchors, func(i, j int) bool { return anchors[i].budget < anchors[j].budget })

	bf := float64(budget)
	out := Behavior{Sigma: anchors[0].beh.Sigma, Dispersion: anchors[0].beh.Dispersion, Interpolated: true}
	switch {
	case bf <= anchors[0].budget:
		// Scale below the smallest anchor: utilization ratio held, accuracy
		// shrunk proportionally toward chance.
		a := anchors[0]
		frac := bf / a.budget
		out.MeanTokens = a.beh.MeanTokens * frac
		out.Accuracy = a.beh.Accuracy * (0.5 + 0.5*frac)
	case bf >= anchors[len(anchors)-1].budget:
		last := anchors[len(anchors)-1]
		out.MeanTokens = last.beh.MeanTokens
		out.Accuracy = last.beh.Accuracy
	default:
		for i := 1; i < len(anchors); i++ {
			if bf <= anchors[i].budget {
				a, c := anchors[i-1], anchors[i]
				f := (bf - a.budget) / (c.budget - a.budget)
				out.MeanTokens = a.beh.MeanTokens + f*(c.beh.MeanTokens-a.beh.MeanTokens)
				out.Accuracy = a.beh.Accuracy + f*(c.beh.Accuracy-a.beh.Accuracy)
				break
			}
		}
	}
	if out.MeanTokens > bf {
		out.MeanTokens = bf
	}
	return out, true
}

// BudgetForLatency inverts a latency model: given the time budget left
// after prefill and a per-token decode rate, it returns the largest hard
// token budget that fits. It is the hardware-aware "latency → max
// decodable tokens" mapping the introduction calls for; the core package
// wires it to the fitted models.
func BudgetForLatency(latencyBudget, prefillTime, timePerToken float64) int {
	if timePerToken <= 0 {
		return 0
	}
	remaining := latencyBudget - prefillTime
	if remaining <= 0 {
		return 0
	}
	n := int(remaining / timePerToken)
	if n < 0 {
		n = 0
	}
	return n
}
