package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: edgereasoning/internal/engine
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkServeHotLoop 	   35095	     97204 ns/op	   32184 B/op	      60 allocs/op
BenchmarkRunHotLoop-8 	   79651	     45502.5 ns/op	   29640 B/op	      41 allocs/op
BenchmarkSoakServe 	       1	1672420452 ns/op	         8.121 live-heap-MB	   1893551 sim-events/s	65732960 B/op	 1999923 allocs/op
PASS
ok  	edgereasoning/internal/engine	18.945s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d targets, want 3: %v", len(got), got)
	}
	serve := got["BenchmarkServeHotLoop"]
	if serve.NsPerOp != 97204 || serve.BytesPerOp != 32184 || serve.AllocsPerOp != 60 {
		t.Errorf("ServeHotLoop = %+v", serve)
	}
	// The -8 GOMAXPROCS suffix must be stripped and fractional ns parsed.
	run := got["BenchmarkRunHotLoop"]
	if run.NsPerOp != 45502.5 || run.AllocsPerOp != 41 {
		t.Errorf("RunHotLoop = %+v", run)
	}
	// Custom b.ReportMetric columns between ns/op and B/op must not hide
	// the allocation figures.
	soak := got["BenchmarkSoakServe"]
	if soak.NsPerOp != 1672420452 || soak.BytesPerOp != 65732960 || soak.AllocsPerOp != 1999923 {
		t.Errorf("SoakServe = %+v", soak)
	}
}

func TestParseBenchEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok\n")); err == nil {
		t.Error("no result lines must fail")
	}
}

// TestParseBenchMalformedLineErrors pins the loud-failure contract: a
// line that claims to be a benchmark result but cannot be parsed in
// full must abort the parse rather than silently dropping the target
// (which, under -update, would rewrite the baseline without it and
// retire its own gate).
func TestParseBenchMalformedLineErrors(t *testing.T) {
	cases := []struct {
		name, line string
	}{
		{"truncated after B/op", "BenchmarkServeHotLoop-8 \t35095\t     97204 ns/op\t   32184 B/"},
		{"truncated before B/op", "BenchmarkServeHotLoop-8 \t35095\t     97204 ns/op"},
		{"missing allocs column", "BenchmarkServeHotLoop-8 \t35095\t     97204 ns/op\t   32184 B/op"},
		{"no -benchmem columns", "BenchmarkTieredServe-8 \t721\t   1620042 ns/op"},
	}
	for _, tc := range cases {
		in := "goos: linux\n" + sampleBench[:strings.Index(sampleBench, "PASS")] + tc.line + "\nPASS\n"
		if _, err := parseBench(strings.NewReader(in)); err == nil {
			t.Errorf("%s: malformed line %q parsed without error", tc.name, tc.line)
		} else if !strings.Contains(err.Error(), "malformed benchmark line") {
			t.Errorf("%s: error %q does not name the malformed line", tc.name, err)
		}
	}
	// Non-result chatter (progress names, test framework lines) must
	// still pass through silently.
	benign := "BenchmarkServeHotLoop\n--- BENCH: BenchmarkServeHotLoop-8\n" + sampleBench
	if got, err := parseBench(strings.NewReader(benign)); err != nil || len(got) != 3 {
		t.Errorf("benign non-result lines rejected: %v (%d targets)", err, len(got))
	}
}

func TestCheckPassAndFail(t *testing.T) {
	baseline := map[string]Measurement{
		"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 60},
		"BenchmarkB": {NsPerOp: 100, AllocsPerOp: 10},
	}
	// Within tolerance: 60 -> 70 with 25% + 8 slack (limit 83).
	fresh := map[string]Measurement{
		"BenchmarkA": {NsPerOp: 500, AllocsPerOp: 70}, // ns/op never gates
		"BenchmarkB": {NsPerOp: 100, AllocsPerOp: 10},
	}
	var out strings.Builder
	if err := check(baseline, fresh, 0.25, 8, &out); err != nil {
		t.Fatalf("within-tolerance check failed: %v\n%s", err, out.String())
	}
	// Beyond tolerance.
	fresh["BenchmarkB"] = Measurement{AllocsPerOp: 25} // limit 10*1.25+8 = 20
	if err := check(baseline, fresh, 0.25, 8, &out); err == nil {
		t.Error("allocs regression beyond tolerance must fail")
	}
}

func TestCheckMissingTargetFails(t *testing.T) {
	baseline := map[string]Measurement{"BenchmarkA": {AllocsPerOp: 5}}
	var out strings.Builder
	if err := check(baseline, map[string]Measurement{}, 0.25, 8, &out); err == nil {
		t.Error("a baseline target absent from the run must fail the gate")
	}
}

func TestUpdatePreservesPrePR(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_serve.json")
	seed := File{
		Schema: 1,
		PrePR: Section{
			Note:    "frozen reference",
			Targets: map[string]Measurement{"BenchmarkServeHotLoop": {NsPerOp: 847534, AllocsPerOp: 396}},
		},
		Current: Section{Targets: map[string]Measurement{"BenchmarkServeHotLoop": {NsPerOp: 1, AllocsPerOp: 1}}},
	}
	data, err := json.MarshalIndent(seed, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout strings.Builder
	if err := run(path, true, "", "", 0.25, 8, "", strings.NewReader(sampleBench), &stdout); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got File
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.PrePR.Note != "frozen reference" || got.PrePR.Targets["BenchmarkServeHotLoop"].AllocsPerOp != 396 {
		t.Errorf("pre_pr section not preserved: %+v", got.PrePR)
	}
	if got.Current.Targets["BenchmarkServeHotLoop"].AllocsPerOp != 60 {
		t.Errorf("current section not rewritten: %+v", got.Current)
	}
	// And the rewritten file must pass its own gate on the same input.
	if err := run(path, false, "", "", 0.25, 8, "", strings.NewReader(sampleBench), &stdout); err != nil {
		t.Errorf("self-check after update failed: %v", err)
	}
}

func TestUpdateAppendsAndDedupesHistory(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_serve.json")
	if err := os.WriteFile(path, []byte(`{"schema":1,"pre_pr":{"targets":{}},"current":{"targets":{}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout strings.Builder
	read := func() File {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var f File
		if err := json.Unmarshal(raw, &f); err != nil {
			t.Fatal(err)
		}
		return f
	}
	// Update without a commit: current rewritten, no history point.
	if err := run(path, true, "", "", 0.25, 8, "", strings.NewReader(sampleBench), &stdout); err != nil {
		t.Fatal(err)
	}
	if got := read(); len(got.History) != 0 {
		t.Fatalf("commitless update must not append history: %+v", got.History)
	}
	// Two PRs append two entries in order.
	if err := run(path, true, "abc1234", "2026-07-26", 0.25, 8, "", strings.NewReader(sampleBench), &stdout); err != nil {
		t.Fatal(err)
	}
	if err := run(path, true, "def5678", "2026-08-02", 0.25, 8, "", strings.NewReader(sampleBench), &stdout); err != nil {
		t.Fatal(err)
	}
	got := read()
	if len(got.History) != 2 || got.History[0].Commit != "abc1234" || got.History[1].Commit != "def5678" {
		t.Fatalf("history = %+v, want [abc1234, def5678]", got.History)
	}
	if got.History[0].Date != "2026-07-26" {
		t.Errorf("history entry lost its date: %+v", got.History[0])
	}
	if got.History[1].Targets["BenchmarkServeHotLoop"].AllocsPerOp != 60 {
		t.Errorf("history entry lost its targets: %+v", got.History[1])
	}
	// Re-measuring the same commit replaces its entry instead of
	// duplicating the trajectory point.
	if err := run(path, true, "def5678", "2026-08-03", 0.25, 8, "", strings.NewReader(sampleBench), &stdout); err != nil {
		t.Fatal(err)
	}
	got = read()
	if len(got.History) != 2 {
		t.Fatalf("same-commit update duplicated history: %+v", got.History)
	}
	if got.History[1].Date != "2026-08-03" {
		t.Errorf("same-commit update must refresh the entry: %+v", got.History[1])
	}
}
