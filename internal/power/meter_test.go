package power

import (
	"math"
	"testing"

	"edgereasoning/internal/gpusim"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/model"
)

func meterAndSim() (*Meter, *gpusim.Sim) {
	d := hw.JetsonAGXOrin64GB()
	return NewMeter(d), gpusim.New(d)
}

// Table XIX: decode power for the DSR1 trio ≈ 19.6 / 24.4 / 26.5 W.
func TestDecodePowerMatchesPaper(t *testing.T) {
	m, s := meterAndSim()
	cases := []struct {
		id   model.ID
		want float64
	}{
		{model.DSR1Qwen1_5B, 19.6},
		{model.DSR1Llama8B, 24.4},
		{model.DSR1Qwen14B, 26.5},
	}
	for _, c := range cases {
		a := model.MustLookup(c.id).Arch
		res := s.DecodeRun(a, model.FP16, 512, 1024, 1)
		got := m.Power(res)
		if math.Abs(got-c.want)/c.want > 0.20 {
			t.Errorf("%s decode power = %.1f W, want %.1f ±20%%", c.id, got, c.want)
		}
	}
}

// Fig 5a: decode power grows (logarithmically) with output length.
func TestDecodePowerGrowsWithOutputLength(t *testing.T) {
	m, s := meterAndSim()
	a := model.MustLookup(model.DSR1Llama8B).Arch
	var prev float64
	for i, o := range []int{64, 256, 1024, 2048} {
		p := m.Power(s.DecodeRun(a, model.FP16, 512, o, 1))
		if i > 0 && p <= prev {
			t.Errorf("power must grow with O: O=%d gives %.2f <= %.2f", o, p, prev)
		}
		prev = p
	}
}

// Fig 4a: prefill power grows with input length, and the 1.5B model reads
// far lower than 8B/14B at 4K through the sampling window.
func TestPrefillPowerShape(t *testing.T) {
	m, s := meterAndSim()
	small := model.MustLookup(model.DSR1Qwen1_5B).Arch
	large := model.MustLookup(model.DSR1Llama8B).Arch

	pSmall := m.ObservedPower(s.Prefill(small, model.FP16, 4096, 1))
	pLarge := m.ObservedPower(s.Prefill(large, model.FP16, 4096, 1))
	if pLarge < 18 {
		t.Errorf("8B prefill@4k observed power = %.1f W, paper reports >20 W", pLarge)
	}
	if pSmall >= pLarge-8 {
		t.Errorf("1.5B prefill power (%.1f W) should sit well below 8B (%.1f W)", pSmall, pLarge)
	}

	p512 := m.ObservedPower(s.Prefill(large, model.FP16, 512, 1))
	if p512 >= pLarge {
		t.Errorf("prefill power must grow with I: %.1f W @512 vs %.1f W @4096", p512, pLarge)
	}
}

// Fig 10c: power rises with the parallel scaling factor (14→25 W for
// 1.5B, ~25→35 W for the larger models).
func TestParallelScalingPowerRises(t *testing.T) {
	m, s := meterAndSim()
	for _, id := range []model.ID{model.DSR1Qwen1_5B, model.DSR1Qwen14B} {
		a := model.MustLookup(id).Arch
		p1 := m.Power(s.DecodeRun(a, model.FP16, 512, 128, 1))
		p32 := m.Power(s.DecodeRun(a, model.FP16, 512, 128, 32))
		if p32 <= p1 {
			t.Errorf("%s: power at SF=32 (%.1f) must exceed SF=1 (%.1f)", id, p32, p1)
		}
		if p32 > m.Device.MaxPower {
			t.Errorf("%s: power %.1f exceeds device cap", id, p32)
		}
	}
}

// Energy is power × time and is never distorted by the sampling window.
func TestEnergyConsistency(t *testing.T) {
	m, s := meterAndSim()
	a := model.MustLookup(model.DSR1Qwen1_5B).Arch
	res := s.Prefill(a, model.FP16, 128, 1) // far shorter than the window
	e := m.Energy(res)
	if math.Abs(e-m.Power(res)*res.Time) > 1e-12 {
		t.Error("Energy must equal true Power × Time")
	}
	if m.ObservedPower(res) >= m.Power(res) {
		t.Error("a short phase must read lower through the sampling window")
	}
}

// Fig 5b: energy per decode token — the 1.5B model is several times
// cheaper than the 14B (the paper reports ~7×).
func TestEnergyPerTokenModelGap(t *testing.T) {
	m, s := meterAndSim()
	small := model.MustLookup(model.DSR1Qwen1_5B).Arch
	large := model.MustLookup(model.DSR1Qwen14B).Arch
	eSmall := m.EnergyPerToken(s.DecodeRun(small, model.FP16, 512, 1024, 1))
	eLarge := m.EnergyPerToken(s.DecodeRun(large, model.FP16, 512, 1024, 1))
	ratio := eLarge / eSmall
	if ratio < 4 || ratio > 12 {
		t.Errorf("14B/1.5B energy-per-token ratio = %.1f, paper reports ~7x", ratio)
	}
}

func TestIdlePhaseReadsIdlePower(t *testing.T) {
	m, _ := meterAndSim()
	if got := m.Power(gpusim.Result{}); got != m.Device.IdlePower {
		t.Errorf("empty phase power = %v, want idle", got)
	}
}

func TestQuantizeStates(t *testing.T) {
	m, s := meterAndSim()
	m.QuantizeStates = true
	a := model.MustLookup(model.DSR1Llama8B).Arch
	p := m.Power(s.DecodeRun(a, model.FP16, 512, 128, 4))
	d := m.Device
	step := (d.MaxPower - d.IdlePower) / float64(d.PowerStates)
	rem := math.Mod(p-d.IdlePower, step)
	if math.Min(rem, step-rem) > 1e-9 {
		t.Errorf("quantized power %.3f not on the %d-state ladder", p, d.PowerStates)
	}
}

func TestGPUUtilizationRange(t *testing.T) {
	m, s := meterAndSim()
	a := model.MustLookup(model.DSR1Qwen14B).Arch
	u1 := m.GPUUtilization(s.DecodeRun(a, model.FP16, 512, 128, 1))
	u32 := m.GPUUtilization(s.DecodeRun(a, model.FP16, 512, 128, 32))
	if u1 < 0 || u1 > 100 || u32 < 0 || u32 > 100 {
		t.Errorf("utilization out of range: %v, %v", u1, u32)
	}
	if u32 < u1 {
		t.Errorf("utilization must rise with parallel scaling: %v -> %v", u1, u32)
	}
}

func TestPowerNeverExceedsCap(t *testing.T) {
	m, s := meterAndSim()
	for _, spec := range model.All() {
		res := s.DecodeRun(spec.Arch, model.FP16, 2048, 512, 64)
		if p := m.Power(res); p > m.Device.MaxPower+1e-9 {
			t.Errorf("%s: power %.1f exceeds cap %.1f", spec.ID, p, m.Device.MaxPower)
		}
	}
}
