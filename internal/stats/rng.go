// Package stats provides deterministic random number streams, summary
// statistics, error metrics, and the distribution samplers used across the
// EdgeReasoning simulator.
//
// Every experiment in this repository must be reproducible run-to-run, so
// all randomness flows through named, seeded streams created by NewRNG.
package stats

import (
	"hash/fnv"
	"math"
	"math/rand/v2"
)

// RNG is a deterministic random stream. It wraps the stdlib PCG generator
// and adds the distribution samplers the simulator needs (lognormal, beta,
// categorical). The zero value is not usable; construct with NewRNG.
type RNG struct {
	src *rand.Rand
}

// NewRNG returns a deterministic stream derived from a global seed and a
// stream name. Two streams with different names are statistically
// independent; the same (seed, name) pair always yields the same sequence.
// Deriving streams by name (rather than sequential seeding) keeps
// experiments independent of the order in which they run.
func NewRNG(seed uint64, name string) *RNG {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return &RNG{src: rand.New(rand.NewPCG(seed, h.Sum64()))}
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// IntN returns a uniform sample in [0, n). It panics if n <= 0.
func (r *RNG) IntN(n int) int { return r.src.IntN(n) }

// NormFloat64 returns a standard normal sample.
func (r *RNG) NormFloat64() float64 { return r.src.NormFloat64() }

// Normal returns a normal sample with the given mean and standard deviation.
func (r *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.src.NormFloat64()
}

// LogNormal returns a sample whose logarithm is normal with parameters mu
// and sigma. The mean of the distribution is exp(mu + sigma²/2).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.src.NormFloat64())
}

// LogNormalMean returns a lognormal sample parameterized by its arithmetic
// mean and the sigma of the underlying normal. This is the form used for
// output-token-length distributions: the paper reports mean tokens per
// configuration, and sigma controls question-to-question spread.
func (r *RNG) LogNormalMean(mean, sigma float64) float64 {
	if mean <= 0 {
		return 0
	}
	mu := math.Log(mean) - sigma*sigma/2
	return r.LogNormal(mu, sigma)
}

// Beta returns a Beta(a, b) sample via Jöhnk/gamma composition. Both shape
// parameters must be positive.
func (r *RNG) Beta(a, b float64) float64 {
	x := r.gamma(a)
	y := r.gamma(b)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// gamma draws from Gamma(shape, 1) using Marsaglia–Tsang for shape >= 1 and
// the boost transform for shape < 1.
func (r *RNG) gamma(shape float64) float64 {
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a)
		u := r.src.Float64()
		for u == 0 {
			u = r.src.Float64()
		}
		return r.gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := r.src.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.src.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Categorical returns an index sampled from the (unnormalized, non-negative)
// weight vector. It panics if the weights are empty or sum to zero.
func (r *RNG) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("stats: negative categorical weight")
		}
		total += w
	}
	if len(weights) == 0 || total == 0 {
		panic("stats: empty or zero categorical weights")
	}
	u := r.src.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.src.Float64() < p
}

// Jitter returns x scaled by a uniform factor in [1-frac, 1+frac]. Used for
// small measurement-noise perturbations.
func (r *RNG) Jitter(x, frac float64) float64 {
	return x * (1 + frac*(2*r.src.Float64()-1))
}

// HashJitter returns x scaled by a deterministic factor in [1-frac, 1+frac]
// derived from the key. Unlike Jitter it consumes no stream state, so it is
// used where the paper observes deterministic-but-irregular effects (e.g.
// CUTLASS kernel-variant selection by GEMM shape).
func HashJitter(x, frac float64, key uint64) float64 {
	// SplitMix64 finalizer: cheap, well-distributed.
	z := key + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	u := float64(z>>11) / float64(1<<53) // [0,1)
	return x * (1 + frac*(2*u-1))
}
