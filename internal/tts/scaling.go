// Package tts implements test-time scaling evaluation (§II-B, §V-C, §V-E):
// sequential scaling (longer chains via token budgets) is exercised through
// the control policies; this package adds parallel scaling — SF samples
// decoded as one batch and aggregated by majority (plurality) voting —
// plus the accuracy/latency/energy accounting of Figs 9 and 10.
package tts

import (
	"fmt"
	"sort"

	"edgereasoning/internal/control"
	"edgereasoning/internal/data"
	"edgereasoning/internal/llm"
)

// MajorityVote aggregates parallel generations by plurality over answer
// identities. Ties break toward the answer appearing earliest among the
// votes (a deterministic stand-in for vLLM's first-completion tie break).
// The second return is the winning cluster's vote count.
func MajorityVote(gens []llm.Generation) (answer int, votes int) {
	if len(gens) == 0 {
		return 0, 0
	}
	counts := make(map[int]int, len(gens))
	firstSeen := make(map[int]int, len(gens))
	for i, g := range gens {
		counts[g.Answer]++
		if _, ok := firstSeen[g.Answer]; !ok {
			firstSeen[g.Answer] = i
		}
	}
	type entry struct {
		answer, count, first int
	}
	entries := make([]entry, 0, len(counts))
	for a, c := range counts {
		entries = append(entries, entry{a, c, firstSeen[a]})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].count != entries[j].count {
			return entries[i].count > entries[j].count
		}
		return entries[i].first < entries[j].first
	})
	return entries[0].answer, entries[0].count
}

// QuestionResult is one question evaluated at a scaling factor.
type QuestionResult struct {
	Correct      bool
	VotedAnswer  int
	Agreement    float64 // winning votes / SF
	OutputTokens int     // summed across branches
	MaxTokens    int     // longest branch (drives latency)
}

// EvaluateQuestion runs SF parallel samples of one question and votes.
func EvaluateQuestion(tw *llm.Twin, q data.Question, pol control.Policy, sf int) (QuestionResult, error) {
	gens, err := tw.GenerateVotes(q, pol, sf)
	if err != nil {
		return QuestionResult{}, err
	}
	answer, votes := MajorityVote(gens)
	res := QuestionResult{
		Correct:     answer == 0,
		VotedAnswer: answer,
		Agreement:   float64(votes) / float64(len(gens)),
	}
	for _, g := range gens {
		res.OutputTokens += g.OutputTokens
		if g.OutputTokens > res.MaxTokens {
			res.MaxTokens = g.OutputTokens
		}
	}
	return res, nil
}

// BankResult aggregates a full benchmark at one scaling factor.
type BankResult struct {
	SF            int
	Accuracy      float64
	MeanAgreement float64
	MeanTokens    float64 // per question, summed over branches
	MeanMaxTokens float64 // per question, longest branch
	Questions     int
}

// EvaluateBank runs the whole bank at a scaling factor.
func EvaluateBank(tw *llm.Twin, bank *data.Bank, pol control.Policy, sf int) (BankResult, error) {
	if sf < 1 {
		return BankResult{}, fmt.Errorf("tts: scaling factor must be >= 1, got %d", sf)
	}
	out := BankResult{SF: sf, Questions: bank.Size()}
	if bank.Size() == 0 {
		return out, nil
	}
	correct := 0
	for _, q := range bank.Questions {
		r, err := EvaluateQuestion(tw, q, pol, sf)
		if err != nil {
			return out, err
		}
		if r.Correct {
			correct++
		}
		out.MeanAgreement += r.Agreement
		out.MeanTokens += float64(r.OutputTokens)
		out.MeanMaxTokens += float64(r.MaxTokens)
	}
	n := float64(bank.Size())
	out.Accuracy = float64(correct) / n
	out.MeanAgreement /= n
	out.MeanTokens /= n
	out.MeanMaxTokens /= n
	return out, nil
}

// Sweep evaluates the bank across scaling factors (the Fig 9 x-axis).
func Sweep(tw *llm.Twin, bank *data.Bank, pol control.Policy, factors []int) ([]BankResult, error) {
	out := make([]BankResult, 0, len(factors))
	for _, sf := range factors {
		r, err := EvaluateBank(tw, bank, pol, sf)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// PaperScalingFactors returns Fig 9/10's x-axis.
func PaperScalingFactors() []int { return []int{1, 2, 4, 8, 16, 32} }
