// Package stats is the seededrand provider fixture: RNG construction is
// the package's job and passes, but global draws are still rejected.
package stats

import "math/rand/v2"

// RNG mirrors the real provider's shape: a seeded stream wrapper.
type RNG struct{ src *rand.Rand }

// NewRNG derives a named seeded stream — the one sanctioned
// construction site.
func NewRNG(seed uint64) *RNG {
	return &RNG{src: rand.New(rand.NewPCG(seed, 1))}
}

func badGlobal() int {
	return rand.IntN(3) // want "rand.IntN draws from the global math/rand source"
}
